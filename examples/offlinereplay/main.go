// Offline replay: record one drive, then debug it many times without
// re-simulating — re-monitor under different threshold configurations,
// diff the outcomes, and zoom into the attack window. This mirrors the
// original study's workflow of analysing recorded shuttle drives.
//
//	go run ./examples/offlinereplay
package main

import (
	"bytes"
	"fmt"
	"log"

	"adassure"
)

func main() {
	// 1. Record one attacked drive (this is the only simulation run).
	out, err := adassure.Scenario{
		Attack:       adassure.AttackMeander,
		Seed:         1,
		RecordFrames: true,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	rec := out.Recording
	fmt.Printf("recorded %d frames (%.1f s of driving)\n\n", len(rec.Frames), rec.Duration())

	// 2. Persist and reload — in practice this is a file handed to the
	// debugging engineer.
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := adassure.ReadRecording(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Re-monitor offline at the default configuration: identical to the
	// online result, no simulator needed.
	vs := loaded.Monitor(adassure.CatalogConfig{IncludeGroundTruth: true})
	fmt.Printf("offline monitoring: %d violation episodes (online saw %d)\n\n", len(vs), len(out.Violations))

	// 4. What would tightening every threshold by 25%% change on this
	// exact drive?
	diff := loaded.Diff(
		adassure.CatalogConfig{IncludeGroundTruth: true},
		adassure.CatalogConfig{IncludeGroundTruth: true, ThresholdScale: 0.75},
	)
	fmt.Println("episode deltas when tightening thresholds to 0.75×:")
	for _, d := range diff {
		fmt.Printf("  %-4s %d → %d\n", d.AssertionID, d.Before, d.After)
	}
	if len(diff) == 0 {
		fmt.Println("  (no change)")
	}

	// 5. Zoom into the attack window and diagnose just that slice.
	slice, err := loaded.Slice(18, 52)
	if err != nil {
		log.Fatal(err)
	}
	hyps := slice.Diagnose(adassure.CatalogConfig{IncludeGroundTruth: true})
	fmt.Printf("\ndiagnosis of the 18–52 s slice: %s (%.0f%%)\n", hyps[0].Cause, hyps[0].Confidence*100)
}
