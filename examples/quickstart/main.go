// Quickstart: run one attacked driving scenario with the ADAssure monitor
// attached and print the debugging report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"adassure"
)

func main() {
	// A campus shuttle follows the urban loop with a Pure Pursuit
	// controller. From t=20 s a GNSS drift spoof pulls its position
	// estimate sideways at 0.5 m/s — slowly enough that no jump detector
	// ever fires.
	scn := adassure.Scenario{
		Track:      adassure.TrackUrbanLoop,
		Controller: adassure.ControllerPurePursuit,
		Attack:     adassure.AttackDriftSpoof,
		Seed:       1,
		Duration:   70,
	}
	out, err := scn.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("The shuttle believes its worst cross-track error was %.2f m.\n", out.Sim.MaxEstCTE)
	fmt.Printf("In reality it deviated up to %.2f m from the route.\n\n", out.Sim.MaxTrueCTE)

	// The assertion monitor saw through it. The report lists the violation
	// timeline and the ranked root-cause hypotheses.
	fmt.Print(out.Report())
}
