// Custom assertion: extend the catalog with a project-specific invariant
// using the assertion DSL and run it against a custom simulation
// configuration — the integration path for teams with their own safety
// requirements.
//
//	go run ./examples/customassertion
package main

import (
	"fmt"
	"log"
	"math"

	"adassure"
)

func main() {
	// Project rule: on this deployment route the shuttle must never be
	// commanded above 5 m/s within 15 m of route start/end (a depot zone).
	depot := adassure.BoundAssertion(
		"D1", "depot-speed-cap",
		"target speed <= 5 m/s inside the depot zone", adassure.SeverityCritical,
		func(f adassure.Frame) (float64, bool) {
			const zone = 15.0
			if f.Progress > zone { // only the first 15 m of the route
				return 0, false
			}
			return f.TargetSpeed, true
		},
		math.Inf(-1), 5,
	)

	// Second rule via the rate combinator: steering rate as commanded must
	// stay under the actuator's slew capability with margin.
	steerRate := adassure.RateAssertion(
		"D2", "steer-rate-cap",
		"commanded steering slew <= 1.6 rad/s", adassure.SeverityWarning,
		func(f adassure.Frame) (float64, bool) { return f.CmdSteer, true },
		1.6,
	)

	// Assemble: built-in catalog + the two custom assertions.
	mon := adassure.NewCatalogMonitor(adassure.CatalogConfig{})
	mon.Add(depot, adassure.Debounce{K: 2, N: 3})
	mon.Add(steerRate, adassure.Debounce{K: 3, N: 4})

	trk, err := adassure.BuiltinTrack(adassure.TrackUrbanLoop, 8) // 8 m/s limit > depot cap
	if err != nil {
		log.Fatal(err)
	}
	res, err := adassure.RunSim(adassure.SimConfig{
		Track:      trk,
		Controller: string(adassure.ControllerLQRMPC),
		Seed:       1,
		Duration:   60,
		Monitor:    mon,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run finished: %.1f m progress, max CTE %.2f m\n\n", res.ProgressTotal, res.MaxTrueCTE)
	fmt.Printf("monitored assertions: %v\n", mon.AssertionIDs())
	fmt.Printf("violations: %d\n", len(mon.Violations()))
	for _, v := range mon.Violations() {
		fmt.Printf("  t=%6.2fs %-4s %s\n", v.T, v.AssertionID, v.Message)
	}
	if len(mon.Violations()) == 0 {
		fmt.Println("  (none — the speed plan already honours the depot cap; try raising the route limit)")
	}
}
