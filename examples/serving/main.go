// Serving: run the scenario-execution service in-process, execute a
// GNSS-spoof scenario through the typed client, then repeat the request
// to show the content-addressed cache serving byte-identical evidence
// without a second simulation.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"adassure/internal/service"
)

func main() {
	// An in-process server: the same code path adassure-server wires to a
	// real listener.
	svc := service.New(service.Config{Workers: 2})
	hs := httptest.NewServer(svc.Handler())
	defer hs.Close()
	defer svc.Close(context.Background())

	client := service.NewClient(hs.URL)
	ctx := context.Background()

	// A campus shuttle on the urban loop under a slow GNSS drift spoof —
	// the quickstart scenario, now requested over HTTP.
	req := service.Request{
		Attack:   "gnss-drift-spoof",
		Seed:     1,
		Duration: 70,
	}

	resp, first, err := client.Run(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first call  : %-5s  %d violations, %d hypotheses\n",
		first.Cache, len(resp.Violations), len(resp.Hypotheses))
	if len(resp.Hypotheses) > 0 {
		h := resp.Hypotheses[0]
		fmt.Printf("top cause   : %s (confidence %.2f)\n", h.Cause, h.Confidence)
	}

	// The identical request again: served from the cache, byte-identical.
	_, second, err := client.Run(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second call : %-5s  byte-identical body: %v\n",
		second.Cache, bytes.Equal(first.Body, second.Body))

	// The server's own counters confirm one simulation served both calls.
	snap, err := client.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server ran %d simulation(s); cache hits: %d\n",
		snap.Counters["sim.runs"], snap.Counters["service.cache.hits"])
}
