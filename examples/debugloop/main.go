// Debug loop: the full ADAssure methodology in one program.
//
//  1. Drive the scenario with the monitor attached and observe the failure.
//
//  2. Diagnose the root cause from the violation signature.
//
//  3. Apply the fix the diagnosis recommends (the assertion-guarded stack).
//
//  4. Re-run and confirm the failure is mitigated.
//
//     go run ./examples/debugloop
package main

import (
	"fmt"
	"log"
	"os"

	"adassure"
)

func main() {
	base := adassure.Scenario{
		Track:      adassure.TrackUrbanLoop,
		Controller: adassure.ControllerPurePursuit,
		Attack:     adassure.AttackDriftSpoof,
		Seed:       3,
		Duration:   70,
	}

	// Step 1: observe the failure.
	fmt.Println("step 1 — drive the scenario (unguarded stack)")
	before, err := base.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  max true deviation: %.2f m — the shuttle silently left its route\n\n", before.Sim.MaxTrueCTE)

	// Step 2: diagnose.
	fmt.Println("step 2 — diagnose from the assertion evidence")
	top := before.Hypotheses[0]
	fmt.Printf("  top hypothesis: %s (%.0f%% confidence)\n", top.Cause, top.Confidence*100)
	fmt.Printf("  rationale: %s\n\n", top.Rationale)

	// Step 3: apply the fix — the χ²-gated fusion with assertion-triggered
	// dead-reckoning fallback and minimum-risk stop.
	fmt.Println("step 3 — apply the guarded stack the diagnosis recommends")
	fixed := base
	fixed.Guarded = true

	// Step 4: re-run and verify.
	fmt.Println("step 4 — re-run and verify")
	after, err := fixed.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  max true deviation: %.2f m (was %.2f m) — %.1f× improvement\n",
		after.Sim.MaxTrueCTE, before.Sim.MaxTrueCTE,
		before.Sim.MaxTrueCTE/after.Sim.MaxTrueCTE)
	fmt.Printf("  fallback active for %.1f s of the attack window\n\n", after.Sim.FallbackTime)

	// The comparison report is the artifact you attach to the ticket.
	if err := adassure.WriteComparisonReport(os.Stdout, "drift spoof: unguarded vs guarded", before, after); err != nil {
		log.Fatal(err)
	}
}
