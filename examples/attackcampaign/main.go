// Attack campaign: sweep every built-in attack class against the same
// stack and print a detection/diagnosis summary — a compact version of the
// paper-style evaluation loop. The sweep fans out across a worker pool
// (adassure.RunScenarios), one goroutine per core; the rows come back in
// attack order regardless of which scenario finishes first.
//
//	go run ./examples/attackcampaign
package main

import (
	"context"
	"fmt"
	"log"
)

import "adassure"

func main() {
	fmt.Printf("%-22s %-10s %-8s %-10s %-22s\n",
		"attack", "detected", "by", "latency", "diagnosed as")
	fmt.Println("---------------------------------------------------------------------------")

	const onset = 20.0
	attackNames := adassure.AttackNames()
	scns := make([]adassure.Scenario, len(attackNames))
	for i, attack := range attackNames {
		scns[i] = adassure.Scenario{Attack: attack, Seed: 1}
	}
	outs, err := adassure.RunScenarios(context.Background(), scns, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i, out := range outs {
		attack := attackNames[i]

		detected, by, latency := "NO", "-", "-"
		for _, v := range out.Violations {
			if v.T >= onset {
				detected = "yes"
				by = v.AssertionID
				latency = fmt.Sprintf("%.2f s", v.T-onset)
				break
			}
		}
		diagnosed := string(out.Hypotheses[0].Cause)
		marker := " "
		if diagnosed == string(attack) {
			marker = "*"
		}
		fmt.Printf("%-22s %-10s %-8s %-10s %-22s%s\n",
			attack, detected, by, latency, diagnosed, marker)
	}
	fmt.Println("\n(* = top-1 diagnosis matches the injected ground truth)")
}
