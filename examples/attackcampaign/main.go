// Attack campaign: sweep every built-in attack class against the same
// stack and print a detection/diagnosis summary — a compact version of the
// paper-style evaluation loop.
//
//	go run ./examples/attackcampaign
package main

import (
	"fmt"
	"log"
)

import "adassure"

func main() {
	fmt.Printf("%-22s %-10s %-8s %-10s %-22s\n",
		"attack", "detected", "by", "latency", "diagnosed as")
	fmt.Println("---------------------------------------------------------------------------")

	const onset = 20.0
	for _, attack := range adassure.AttackNames() {
		out, err := adassure.Scenario{
			Attack: attack,
			Seed:   1,
		}.Run()
		if err != nil {
			log.Fatal(err)
		}

		detected, by, latency := "NO", "-", "-"
		for _, v := range out.Violations {
			if v.T >= onset {
				detected = "yes"
				by = v.AssertionID
				latency = fmt.Sprintf("%.2f s", v.T-onset)
				break
			}
		}
		diagnosed := string(out.Hypotheses[0].Cause)
		marker := " "
		if diagnosed == string(attack) {
			marker = "*"
		}
		fmt.Printf("%-22s %-10s %-8s %-10s %-22s%s\n",
			attack, detected, by, latency, diagnosed, marker)
	}
	fmt.Println("\n(* = top-1 diagnosis matches the injected ground truth)")
}
