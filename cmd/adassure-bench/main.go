// Command adassure-bench regenerates the evaluation tables and figures
// (T1–T6, F1–F6, extensions X1–X5, mutation matrix M1) from fresh runs and prints them as aligned
// plain-text tables — the reproduction counterpart of the paper's
// evaluation section. See EXPERIMENTS.md for the expected shapes.
//
// Usage:
//
//	adassure-bench            # all experiments, default seeds
//	adassure-bench -id T2     # one experiment
//	adassure-bench -seeds 5   # more repetitions
//	adassure-bench -quick     # fast smoke pass
//	adassure-bench -workers 8 # scenario-pool size (default GOMAXPROCS)
//
// The scenario grid of every experiment fans out across -workers
// goroutines; the tables are byte-identical for any worker count
// (including 1), so -workers only changes wall-clock time.
//
// Observability: -metrics out.json writes a JSON runtime-metrics snapshot
// aggregated across every scenario the selected experiments ran (runner
// job stats, sim step histograms, per-assertion monitoring cost), and
// -pprof addr serves net/http/pprof plus the live snapshot under expvar.
// Attaching the registry never changes the rendered tables.
//
// Forensics: -events out.json records the structured event timeline of
// every scenario the experiments fan out (tracks scoped per grid cell,
// plus one runner lane per pool worker) and writes it as JSON; -perfetto
// out.json exports the same timeline as Chrome trace-event JSON loadable
// in ui.perfetto.dev; -flight N bounds the recorder to the newest N
// events; -bundles dir/ writes one forensic bundle per violation episode
// of every attacked grid cell. None of these change the rendered tables.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"time"

	"adassure"
)

// startObs builds the registry for -metrics/-pprof, starting the pprof
// server when addr is non-empty. Returns nil when both flags are off.
func startObs(metricsPath, pprofAddr string) *adassure.Registry {
	if metricsPath == "" && pprofAddr == "" {
		return nil
	}
	reg := adassure.NewRegistry()
	if pprofAddr != "" {
		expvar.Publish("adassure", expvar.Func(func() any { return reg.Snapshot() }))
		go func() {
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "adassure-bench: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof+expvar serving on http://%s/debug/pprof (metrics at /debug/vars)\n", pprofAddr)
	}
	return reg
}

// writeMetrics dumps the registry snapshot to path.
func writeMetrics(reg *adassure.Registry, path string) {
	if reg == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err == nil {
		err = reg.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "adassure-bench: write metrics:", err)
		os.Exit(1)
	}
	fmt.Printf("metrics written to %s\n", path)
}

func main() {
	var (
		id         = flag.String("id", "", "single experiment to run (T1..T6, F1..F6, X1..X5, M1); empty = all")
		seeds      = flag.Int("seeds", 3, "seeds per configuration")
		quick      = flag.Bool("quick", false, "shorten runs for a smoke pass")
		controller = flag.String("controller", "pure-pursuit", "default lateral controller")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "scenario-execution pool size")
		metricsOut = flag.String("metrics", "", "write a JSON runtime-metrics snapshot (sim/monitor/runner) to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and expvar metrics on this address (e.g. localhost:6060)")
		eventsOut  = flag.String("events", "", "write the structured event timeline as JSON to this file")
		perfOut    = flag.String("perfetto", "", "write the event timeline as Chrome trace-event JSON (open in ui.perfetto.dev)")
		flightCap  = flag.Int("flight", 0, "flight-recorder mode: keep only the newest N events (0 = unbounded)")
		bundleDir  = flag.String("bundles", "", "write one forensic bundle JSON per violation episode into this directory")
	)
	flag.Parse()

	reg := startObs(*metricsOut, *pprofAddr)
	var rec *adassure.EventRecorder
	if *eventsOut != "" || *perfOut != "" {
		rec = adassure.NewEventRecorder(*flightCap)
	}
	opts := adassure.ExperimentOptions{
		Seeds: *seeds, Quick: *quick, Controller: *controller, Workers: *workers,
		Obs: reg, Events: rec, BundleDir: *bundleDir,
	}

	run := func(eid string) {
		start := time.Now()
		tb, err := adassure.RunExperiment(eid, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adassure-bench: %s: %v\n", eid, err)
			os.Exit(1)
		}
		if err := tb.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "adassure-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("(%s regenerated in %.1fs)\n\n", eid, time.Since(start).Seconds())
	}

	if *id != "" {
		run(*id)
	} else {
		for _, e := range adassure.Experiments() {
			run(e.ID)
		}
	}
	writeMetrics(reg, *metricsOut)
	writeEventOutputs(rec, *eventsOut, *perfOut)
}

// writeEventOutputs persists the recorded timeline: raw event JSON to
// eventsPath and/or a Perfetto-loadable Chrome trace to perfettoPath.
func writeEventOutputs(rec *adassure.EventRecorder, eventsPath, perfettoPath string) {
	if rec == nil {
		return
	}
	write := func(path, what string, fn func(io.Writer) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err == nil {
			err = fn(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "adassure-bench: write %s: %v\n", what, err)
			os.Exit(1)
		}
		fmt.Printf("%s written to %s\n", what, path)
	}
	write(eventsPath, "events", rec.WriteJSON)
	write(perfettoPath, "perfetto trace", func(f io.Writer) error {
		return adassure.WritePerfetto(f, rec.Events())
	})
}
