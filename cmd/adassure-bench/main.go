// Command adassure-bench regenerates the evaluation tables and figures
// (T1–T6, F1–F6) from fresh simulation runs and prints them as aligned
// plain-text tables — the reproduction counterpart of the paper's
// evaluation section. See EXPERIMENTS.md for the expected shapes.
//
// Usage:
//
//	adassure-bench            # all experiments, default seeds
//	adassure-bench -id T2     # one experiment
//	adassure-bench -seeds 5   # more repetitions
//	adassure-bench -quick     # fast smoke pass
//	adassure-bench -workers 8 # scenario-pool size (default GOMAXPROCS)
//
// The scenario grid of every experiment fans out across -workers
// goroutines; the tables are byte-identical for any worker count
// (including 1), so -workers only changes wall-clock time.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"adassure"
)

func main() {
	var (
		id         = flag.String("id", "", "single experiment to run (T1..T6, F1..F6); empty = all")
		seeds      = flag.Int("seeds", 3, "seeds per configuration")
		quick      = flag.Bool("quick", false, "shorten runs for a smoke pass")
		controller = flag.String("controller", "pure-pursuit", "default lateral controller")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "scenario-execution pool size")
	)
	flag.Parse()

	opts := adassure.ExperimentOptions{Seeds: *seeds, Quick: *quick, Controller: *controller, Workers: *workers}

	run := func(eid string) {
		start := time.Now()
		tb, err := adassure.RunExperiment(eid, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adassure-bench: %s: %v\n", eid, err)
			os.Exit(1)
		}
		if err := tb.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "adassure-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("(%s regenerated in %.1fs)\n\n", eid, time.Since(start).Seconds())
	}

	if *id != "" {
		run(*id)
		return
	}
	for _, e := range adassure.Experiments() {
		run(e.ID)
	}
}
