// Command adassure-dataset generates a labelled violation-signature corpus
// as CSV: it runs every attack class (plus clean runs) across seeds and
// emits one feature row per run — per-assertion episode counts, longest
// episode durations and first-detection latencies — for external analysis
// or ML experimentation on top of the ADAssure evidence.
//
// Usage:
//
//	adassure-dataset -seeds 5 > corpus.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"adassure/internal/attacks"
	"adassure/internal/core"
	"adassure/internal/coverage"
	"adassure/internal/sim"
	"adassure/internal/track"
)

func main() {
	var (
		seeds      = flag.Int("seeds", 5, "seeds per class")
		controller = flag.String("controller", "pure-pursuit", "lateral controller")
		duration   = flag.Float64("duration", 70, "run duration (s)")
		onset      = flag.Float64("onset", 20, "attack onset (s)")
		end        = flag.Float64("end", 50, "attack end (s)")
	)
	flag.Parse()

	tr, err := track.UrbanLoop(6)
	if err != nil {
		fail(err)
	}
	classes := append([]attacks.Class{attacks.ClassNone}, attacks.StandardClasses()...)
	var runs []coverage.Run
	for _, class := range classes {
		for seed := int64(1); seed <= int64(*seeds); seed++ {
			camp, err := attacks.Standard(class, attacks.Window{Start: *onset, End: *end}, seed)
			if err != nil {
				fail(err)
			}
			mon := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true})
			if _, err := sim.Run(sim.Config{
				Track: tr, Controller: *controller, Seed: seed, Duration: *duration,
				Campaign: camp, Monitor: mon, DisableTrace: true,
			}); err != nil {
				fail(err)
			}
			o := *onset
			if class == attacks.ClassNone {
				o = -1
			}
			runs = append(runs, coverage.Run{Label: string(class), Onset: o, Violations: mon.Violations()})
			fmt.Fprintf(os.Stderr, "ran %s seed %d (%d violations)\n", class, seed, len(mon.Violations()))
		}
	}
	ids := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true}).AssertionIDs()
	if err := coverage.WriteDatasetCSV(os.Stdout, runs, ids); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "adassure-dataset:", err)
	os.Exit(1)
}
