// Command adassure-dataset generates a labelled violation-signature corpus
// as CSV: it runs every attack class (plus clean runs) across seeds and
// emits one feature row per run — per-assertion episode counts, longest
// episode durations and first-detection latencies — for external analysis
// or ML experimentation on top of the ADAssure evidence.
//
// Usage:
//
//	adassure-dataset -seeds 5 [-workers N] > corpus.csv
//
// The (class × seed) grid fans across -workers goroutines (default
// GOMAXPROCS) on the internal/runner pool. Results are index-ordered and
// every run is deterministic in its seed, so the CSV on stdout is
// byte-identical for any worker count, including 1.
//
// Observability: -metrics out.json writes a JSON metrics snapshot of the
// whole campaign (sim step histogram, per-assertion monitoring cost,
// runner job stats), -pprof addr serves net/http/pprof plus the live
// snapshot under expvar while the campaign runs, -events out.json records
// the structured event timeline across all runs, -perfetto out.json
// exports that timeline as Chrome trace-event JSON (one lane per pool
// worker; open in ui.perfetto.dev) and -flight N bounds the recorder to
// the newest N events.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"

	"adassure/internal/attacks"
	"adassure/internal/core"
	"adassure/internal/coverage"
	"adassure/internal/events"
	"adassure/internal/obs"
	"adassure/internal/runner"
	"adassure/internal/sim"
	"adassure/internal/track"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "adassure-dataset:", err)
		os.Exit(1)
	}
}

// datasetJob is one (class × seed) cell of the campaign grid.
type datasetJob struct {
	class attacks.Class
	seed  int64
}

// run generates the corpus onto stdout; it is main minus process exit so
// tests can compare the CSV bytes across worker counts.
func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("adassure-dataset", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seeds       = fs.Int("seeds", 5, "seeds per class")
		controller  = fs.String("controller", "pure-pursuit", "lateral controller")
		duration    = fs.Float64("duration", 70, "run duration (s)")
		onset       = fs.Float64("onset", 20, "attack onset (s)")
		end         = fs.Float64("end", 50, "attack end (s)")
		workers     = fs.Int("workers", 0, "parallel simulation workers (default GOMAXPROCS; 1 = sequential)")
		metricsPath = fs.String("metrics", "", "write a JSON metrics snapshot of the campaign to this file")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof and live metrics on this address while running")
		eventsPath  = fs.String("events", "", "write the structured event timeline as JSON to this file")
		perfPath    = fs.String("perfetto", "", "write the event timeline as Chrome trace-event JSON (open in ui.perfetto.dev)")
		flightCap   = fs.Int("flight", 0, "flight-recorder mode: keep only the newest N events (0 = unbounded)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	var reg *obs.Registry
	if *metricsPath != "" || *pprofAddr != "" {
		reg = obs.NewRegistry()
	}
	if *pprofAddr != "" {
		expvar.Publish("adassure", expvar.Func(func() any { return reg.Snapshot() }))
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(stderr, "adassure-dataset: pprof server:", err)
			}
		}()
		fmt.Fprintf(stderr, "pprof+expvar serving on http://%s/debug/pprof (metrics at /debug/vars)\n", *pprofAddr)
	}
	var rec *events.Recorder
	if *eventsPath != "" || *perfPath != "" {
		rec = events.NewRecorder(*flightCap)
	}

	tr, err := track.UrbanLoop(6)
	if err != nil {
		return err
	}
	var jobs []datasetJob
	for _, class := range append([]attacks.Class{attacks.ClassNone}, attacks.StandardClasses()...) {
		for seed := int64(1); seed <= int64(*seeds); seed++ {
			jobs = append(jobs, datasetJob{class: class, seed: seed})
		}
	}

	runs, err := runner.Map(runner.Options{
		Workers: *workers,
		Obs:     reg,
		Events:  rec,
	}, jobs, func(_ context.Context, _ int, job datasetJob) (coverage.Run, error) {
		camp, err := attacks.Standard(job.class, attacks.Window{Start: *onset, End: *end}, job.seed)
		if err != nil {
			return coverage.Run{}, err
		}
		mon := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true})
		if _, err := sim.Run(sim.Config{
			Track: tr, Controller: *controller, Seed: job.seed, Duration: *duration,
			Campaign: camp, Monitor: mon, DisableTrace: true, Obs: reg,
		}); err != nil {
			return coverage.Run{}, err
		}
		o := *onset
		if job.class == attacks.ClassNone {
			o = -1
		}
		return coverage.Run{Label: string(job.class), Onset: o, Violations: mon.Violations()}, nil
	})
	if err != nil {
		return err
	}
	// Progress lines go out after collection, in grid order, so stderr is
	// as deterministic as the CSV regardless of worker interleaving.
	for i, r := range runs {
		fmt.Fprintf(stderr, "ran %s seed %d (%d violations)\n", jobs[i].class, jobs[i].seed, len(r.Violations))
	}

	ids := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true}).AssertionIDs()
	if err := coverage.WriteDatasetCSV(stdout, runs, ids); err != nil {
		return err
	}
	if reg != nil && *metricsPath != "" {
		if err := writeFile(*metricsPath, reg.WriteJSON); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
		fmt.Fprintf(stderr, "metrics written to %s\n", *metricsPath)
	}
	if rec != nil {
		if *eventsPath != "" {
			if err := writeFile(*eventsPath, rec.WriteJSON); err != nil {
				return fmt.Errorf("write events: %w", err)
			}
			fmt.Fprintf(stderr, "events written to %s\n", *eventsPath)
		}
		if *perfPath != "" {
			if err := writeFile(*perfPath, func(w io.Writer) error {
				return events.WritePerfetto(w, rec.Events())
			}); err != nil {
				return fmt.Errorf("write perfetto trace: %w", err)
			}
			fmt.Fprintf(stderr, "perfetto trace written to %s\n", *perfPath)
		}
	}
	return nil
}

// writeFile creates path and streams fn into it.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
