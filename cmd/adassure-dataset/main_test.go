package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDatasetDeterministicAcrossWorkers: the CSV on stdout — and the
// post-collection stderr progress log — must be byte-identical whether
// the grid runs sequentially or fanned across the pool.
func TestDatasetDeterministicAcrossWorkers(t *testing.T) {
	gen := func(workers int) (string, string) {
		var out, errb bytes.Buffer
		argv := []string{"-seeds", "1", "-duration", "10", "-workers", fmt.Sprint(workers)}
		if err := run(argv, &out, &errb); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out.String(), errb.String()
	}
	csv1, log1 := gen(1)
	csv4, log4 := gen(4)
	if csv1 != csv4 {
		t.Fatalf("CSV differs between workers=1 (%d bytes) and workers=4 (%d bytes)", len(csv1), len(csv4))
	}
	if log1 != log4 {
		t.Fatalf("stderr progress log differs between worker counts:\n--- 1\n%s\n--- 4\n%s", log1, log4)
	}
	lines := strings.Split(strings.TrimSpace(csv1), "\n")
	if len(lines) < 2 {
		t.Fatalf("corpus has %d lines, want header plus at least one row", len(lines))
	}
	if !strings.HasPrefix(lines[0], "label,") {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
}

// TestDatasetObservabilityOutputs: -metrics and -events write parseable,
// non-empty artifacts.
func TestDatasetObservabilityOutputs(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	events := filepath.Join(dir, "events.json")
	var out, errb bytes.Buffer
	argv := []string{
		"-seeds", "1", "-duration", "5", "-workers", "2",
		"-metrics", metrics, "-events", events,
	}
	if err := run(argv, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{metrics, events} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 || b[0] != '{' && b[0] != '[' {
			t.Fatalf("%s is not a JSON document (starts %q)", p, b[:min(8, len(b))])
		}
	}
	if !strings.Contains(errb.String(), "metrics written to") {
		t.Fatalf("stderr missing metrics confirmation:\n%s", errb.String())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
