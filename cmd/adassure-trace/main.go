// Command adassure-trace inspects recorded run traces: it lists the
// signals of a JSON trace with summary statistics, or converts it to CSV.
//
// Usage:
//
//	adassure-trace stats run.json
//	adassure-trace csv run.json > run.csv
package main

import (
	"fmt"
	"os"

	"adassure/internal/trace"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: adassure-trace (stats|csv) <trace.json>")
	os.Exit(2)
}

func main() {
	if len(os.Args) != 3 {
		usage()
	}
	mode, path := os.Args[1], os.Args[2]

	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adassure-trace:", err)
		os.Exit(1)
	}
	tr, err := trace.ReadJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "adassure-trace:", err)
		os.Exit(1)
	}

	switch mode {
	case "stats":
		fmt.Printf("%-16s %8s %12s %12s %12s %12s\n", "signal", "samples", "min", "max", "mean", "rms")
		for _, sig := range tr.Signals() {
			st := tr.SignalStats(sig)
			fmt.Printf("%-16s %8d %12.4f %12.4f %12.4f %12.4f\n",
				sig, st.Count, st.Min, st.Max, st.Mean, st.RMS)
		}
	case "csv":
		if err := tr.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "adassure-trace:", err)
			os.Exit(1)
		}
	default:
		usage()
	}
}
