// Command adassure-trace inspects the debugging artifacts ADAssure runs
// produce: signal traces, structured event timelines, forensic bundles
// and distributed-trace span exports.
//
// Usage:
//
//	adassure-trace stats run.json          # signal summary statistics
//	adassure-trace csv run.json > run.csv  # trace as CSV
//	adassure-trace events run-events.json  # plain-text event timeline
//	adassure-trace bundle bundle_000_*.json  # pretty-print one bundle
//	adassure-trace spans trace.json        # span tree from /debug/traces/<id>
//	adassure-trace perfetto run-events.json > trace.json  # Chrome trace JSON
//
// perfetto accepts either input shape — a flight-recorder events file or
// a span export fetched from the server's /debug/traces/<id> endpoint —
// and sniffs which converter applies from the document's schema field.
//
// Every subcommand accepts "-" as the file argument to read from stdin,
// e.g. piping an events file straight out of adassure-sim, or a span
// export straight off a server:
//
//	adassure-sim -attack gnss-drift-spoof -events /dev/stdout | adassure-trace events -
//	curl -s localhost:8080/debug/traces/$ID | adassure-trace spans -
//
// Exit status: 0 on success, 1 on file-read or parse errors, 2 on bad
// invocation (unknown subcommand or wrong argument count).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"adassure"
	"adassure/internal/telemetry"
	"adassure/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point: it executes one subcommand against the
// given streams and returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	usage := func() int {
		fmt.Fprintln(stderr, "usage: adassure-trace (stats|csv|events|bundle|spans|perfetto) <file.json | ->")
		return 2
	}
	if len(args) != 2 {
		return usage()
	}
	mode, path := args[0], args[1]

	var cmd func(io.Reader, io.Writer) error
	switch mode {
	case "stats":
		cmd = runStats
	case "csv":
		cmd = runCSV
	case "events":
		cmd = runEvents
	case "bundle":
		cmd = runBundle
	case "spans":
		cmd = runSpans
	case "perfetto":
		cmd = runPerfetto
	default:
		return usage()
	}

	in := stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, "adassure-trace:", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	if err := cmd(in, stdout); err != nil {
		fmt.Fprintln(stderr, "adassure-trace:", err)
		return 1
	}
	return 0
}

// runStats lists the signals of a JSON trace with summary statistics.
func runStats(in io.Reader, out io.Writer) error {
	tr, err := trace.ReadJSON(in)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-16s %8s %12s %12s %12s %12s\n", "signal", "samples", "min", "max", "mean", "rms")
	for _, sig := range tr.Signals() {
		st := tr.SignalStats(sig)
		fmt.Fprintf(out, "%-16s %8d %12.4f %12.4f %12.4f %12.4f\n",
			sig, st.Count, st.Min, st.Max, st.Mean, st.RMS)
	}
	return nil
}

// runCSV converts a JSON trace to CSV.
func runCSV(in io.Reader, out io.Writer) error {
	tr, err := trace.ReadJSON(in)
	if err != nil {
		return err
	}
	return tr.WriteCSV(out)
}

// runEvents renders an events file as a plain-text timeline.
func runEvents(in io.Reader, out io.Writer) error {
	log, err := adassure.ReadEventLog(in)
	if err != nil {
		return err
	}
	if log.Dropped > 0 {
		fmt.Fprintf(out, "flight recorder: %d older event(s) dropped (capacity %d)\n",
			log.Dropped, log.Capacity)
	}
	return adassure.WriteEventTimeline(out, log.Events)
}

// runBundle pretty-prints one forensic bundle.
func runBundle(in io.Reader, out io.Writer) error {
	b, err := adassure.ReadForensicBundle(in)
	if err != nil {
		return err
	}
	return b.Render(out)
}

// runSpans renders a span export (the body of /debug/traces/<id>) as an
// indented per-span tree with durations and attributes.
func runSpans(in io.Reader, out io.Writer) error {
	tr, err := telemetry.ReadTrace(in)
	if err != nil {
		return err
	}
	return tr.Render(out)
}

// runPerfetto converts either artifact to Chrome trace-event JSON for
// ui.perfetto.dev / chrome://tracing: flight-recorder events files and
// span exports, told apart by the document's schema field.
func runPerfetto(in io.Reader, out io.Writer) error {
	data, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if json.Unmarshal(data, &probe) == nil && probe.Schema == telemetry.Schema {
		tr, err := telemetry.ReadTrace(bytes.NewReader(data))
		if err != nil {
			return err
		}
		return telemetry.WritePerfetto(out, tr)
	}
	log, err := adassure.ReadEventLog(bytes.NewReader(data))
	if err != nil {
		return err
	}
	return adassure.WritePerfetto(out, log.Events)
}
