package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adassure"
	"adassure/internal/telemetry"
	"adassure/internal/trace"
)

// traceFile writes a small valid trace JSON to a temp file and returns
// its path.
func traceFile(t *testing.T) string {
	t.Helper()
	tr := trace.New()
	for i := 0; i < 10; i++ {
		tr.Record("cte_true", float64(i)*0.1, float64(i))
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// eventsJSON returns a small valid events file as bytes.
func eventsJSON(t *testing.T) []byte {
	t.Helper()
	rec := adassure.NewEventRecorder(0).WithoutWallClock()
	rec.Begin("attack", "attack", "drift", 20, nil)
	rec.End("attack", "attack", "drift", 50, nil)
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRunStatsAndCSVFromFile(t *testing.T) {
	path := traceFile(t)
	for _, mode := range []string{"stats", "csv"} {
		var out, errOut bytes.Buffer
		if code := run([]string{mode, path}, strings.NewReader(""), &out, &errOut); code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", mode, code, errOut.String())
		}
		if !strings.Contains(out.String(), "cte_true") {
			t.Errorf("%s: output missing signal name:\n%s", mode, out.String())
		}
	}
}

func TestRunReadsStdin(t *testing.T) {
	// satellite contract: "-" reads the input from stdin for every mode.
	data, err := os.ReadFile(traceFile(t))
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"stats", "-"}, bytes.NewReader(data), &out, &errOut); code != 0 {
		t.Fatalf("stats from stdin: exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "cte_true") {
		t.Errorf("stats from stdin missing signal:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"events", "-"}, bytes.NewReader(eventsJSON(t)), &out, &errOut); code != 0 {
		t.Fatalf("events from stdin: exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "drift") {
		t.Errorf("timeline missing span name:\n%s", out.String())
	}
}

// spanExportJSON builds a small two-span trace export — the shape
// /debug/traces/<id> serves.
func spanExportJSON(t *testing.T) []byte {
	t.Helper()
	tr := telemetry.New(telemetry.Config{})
	root := tr.StartSpan("http /v1/run", "")
	child := root.StartChild("execute")
	child.SetAttr("disposition", "miss")
	child.End()
	root.End()
	exp, ok := tr.Export(root.TraceID())
	if !ok {
		t.Fatal("trace not retained")
	}
	var buf bytes.Buffer
	if err := exp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRunSpansRendersExport(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"spans", "-"}, bytes.NewReader(spanExportJSON(t)), &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"http /v1/run", "execute", "disposition=miss"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("spans output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunPerfettoSniffsSpanExport: the perfetto subcommand accepts both
// input shapes, dispatching on the schema field.
func TestRunPerfettoSniffsSpanExport(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"perfetto", "-"}, bytes.NewReader(spanExportJSON(t)), &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{`"traceEvents"`, `"ph":"X"`, `"http /v1/run"`, `"execute"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("perfetto span output missing %s:\n%s", want, out.String())
		}
	}
}

func TestRunPerfettoConversion(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"perfetto", "-"}, bytes.NewReader(eventsJSON(t)), &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{`"traceEvents"`, `"ph":"B"`, `"ph":"E"`, `"pid"`, `"tid"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("perfetto output missing %s:\n%s", want, out.String())
		}
	}
}

// TestExitCodes pins the satellite contract: 2 only for bad invocation,
// 1 for file-read and parse errors, so scripts can tell them apart.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		stdin string
		want  int
	}{
		{"no args", nil, "", 2},
		{"one arg", []string{"stats"}, "", 2},
		{"extra args", []string{"stats", "a", "b"}, "", 2},
		{"unknown subcommand", []string{"zap", "x.json"}, "", 2},
		{"missing file", []string{"stats", filepath.Join(t.TempDir(), "nope.json")}, "", 1},
		{"parse error stats", []string{"stats", "-"}, "not json", 1},
		{"parse error events", []string{"events", "-"}, "not json", 1},
		{"parse error bundle", []string{"bundle", "-"}, `{"schema":"wrong"}`, 1},
		{"parse error perfetto", []string{"perfetto", "-"}, "{}", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			got := run(tc.args, strings.NewReader(tc.stdin), &out, &errOut)
			if got != tc.want {
				t.Errorf("exit = %d, want %d (stderr: %s)", got, tc.want, errOut.String())
			}
			if errOut.Len() == 0 {
				t.Error("no diagnostic on stderr")
			}
		})
	}
}
