// Command adassure-load drives an adassure-server with N concurrent
// scenario requests and prints throughput plus the client-observed
// latency distribution (p50/p95/p99 from the obs histogram).
//
// Usage:
//
//	adassure-load -target http://localhost:8080 [-n 100] [-c 8]
//	    [-attack gnss-drift-spoof] [-duration 20] [-spread-seeds 0]
//	    [-backoff] [-metrics out.json]
//	adassure-load -stream [-n 16] [-c 4] [-heartbeat 0] ...
//	adassure-load -jobs [-n 100] [-c 8] ...
//
// With -jobs each logical request goes through the async job API (POST
// /v1/jobs → poll → GET /v1/jobs/{id}/result) instead of the blocking
// /v1/run, so the tool measures the whole submit-to-terminal cycle —
// against either a standalone server or a fleet coordinator.
//
// With -spread-seeds 0 (the default) every request is identical, so
// after the first simulation the run measures the cache-hit/coalescing
// hot path. -spread-seeds K cycles the seed over K values, forcing K
// distinct simulations and exercising the pool + backpressure instead.
//
// With -stream the tool records one scenario locally, then drives
// POST /v1/stream with -n concurrent NDJSON frame-upload sessions and
// reports frame throughput plus whole-session latency.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adassure"
	"adassure/internal/obs"
	"adassure/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "adassure-load:", err)
		os.Exit(1)
	}
}

func run(argv []string, stdout, stderr *os.File) error {
	fs := flag.NewFlagSet("adassure-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target      = fs.String("target", "http://localhost:8080", "server base URL")
		n           = fs.Int("n", 100, "total requests")
		conc        = fs.Int("c", 8, "concurrent in-flight requests")
		track       = fs.String("track", "urban-loop", "route name")
		controller  = fs.String("controller", "pure-pursuit", "lateral controller")
		attack      = fs.String("attack", "gnss-drift-spoof", "attack class (none for clean runs)")
		duration    = fs.Float64("duration", 20, "simulated seconds per request")
		guarded     = fs.Bool("guard", false, "run the defended stack")
		spreadSeeds = fs.Int("spread-seeds", 0, "cycle the seed over K values to force cache misses (0 = identical requests)")
		backoff     = fs.Bool("backoff", false, "honour 429 Retry-After hints instead of recording and moving on")
		metricsPath = fs.String("metrics", "", "write the client-side metrics snapshot to this file")
		timeout     = fs.Duration("timeout", 10*time.Minute, "overall load-run budget")
		streamMode  = fs.Bool("stream", false, "drive POST /v1/stream with NDJSON frame sessions instead of /v1/run")
		jobsMode    = fs.Bool("jobs", false, "drive the async job API (submit → wait → result) instead of /v1/run")
		heartbeat   = fs.Int("heartbeat", 0, "stream-mode heartbeat cadence in frames (0 = off)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := service.NewClient(*target)
	if err := client.Healthz(ctx); err != nil {
		return fmt.Errorf("target %s not healthy: %w", *target, err)
	}

	reg := obs.NewRegistry()
	if *streamMode {
		if err := runStream(ctx, client, reg, stdout, stderr, streamArgs{
			track: *track, controller: *controller, attack: *attack,
			duration: *duration, sessions: *n, concurrency: *conc,
			heartbeat: *heartbeat,
		}); err != nil {
			return err
		}
		return writeMetricsIfAsked(reg, *metricsPath, stdout)
	}
	base := service.Request{
		Track:      *track,
		Controller: *controller,
		Attack:     *attack,
		Duration:   *duration,
		Guarded:    *guarded,
	}
	mode, runLoad := "requests", service.RunLoad
	if *jobsMode {
		mode, runLoad = "jobs", service.RunJobLoad
	}
	fmt.Fprintf(stderr, "adassure-load: %d %s x %d in flight against %s\n", *n, mode, *conc, *target)
	report, err := runLoad(ctx, client, base, service.LoadOptions{
		Requests:    *n,
		Concurrency: *conc,
		SpreadSeeds: *spreadSeeds,
		Backoff:     *backoff,
		Obs:         reg,
	})
	if err != nil {
		return err
	}
	report.Print(stdout)
	return writeMetricsIfAsked(reg, *metricsPath, stdout)
}

type streamArgs struct {
	track, controller, attack string
	duration                  float64
	sessions, concurrency     int
	heartbeat                 int
}

// runStream records the scenario once locally, renders its frames as
// NDJSON and replays that document over the streaming endpoint with
// args.concurrency parallel sessions.
func runStream(ctx context.Context, client *service.Client, reg *obs.Registry, stdout, stderr *os.File, args streamArgs) error {
	res, err := adassure.Scenario{
		Track:        adassure.TrackName(args.track),
		Controller:   adassure.ControllerName(args.controller),
		Attack:       adassure.AttackName(args.attack),
		Seed:         1,
		Duration:     args.duration,
		RecordFrames: true,
	}.Run()
	if err != nil {
		return fmt.Errorf("record scenario: %w", err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range res.Recording.Frames {
		if err := enc.Encode(&res.Recording.Frames[i]); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "adassure-load: streaming %d frames x %d sessions (%d in flight)\n",
		len(res.Recording.Frames), args.sessions, args.concurrency)
	report, err := service.RunStreamLoad(ctx, client, buf.Bytes(), service.StreamLoadOptions{
		Sessions:    args.sessions,
		Concurrency: args.concurrency,
		Heartbeat:   args.heartbeat,
		Obs:         reg,
	})
	if err != nil {
		return err
	}
	report.Print(stdout)
	return nil
}

func writeMetricsIfAsked(reg *obs.Registry, path string, stdout *os.File) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("write metrics: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "metrics written to %s\n", path)
	return nil
}
