// Command adassure-search runs an adversarial attack search against the
// assertion catalog: for each track × channel it descends toward the
// minimal attack magnitude that evades every assertion, and prints the
// resulting evasion frontier with a minimality certificate per point (the
// smallest still-detected magnitude bracketing the converged point from
// above).
//
// Usage:
//
//	adassure-search                                  # default channels, urban-loop + hairpin
//	adassure-search -tracks urban-loop -budget 24
//	adassure-search -channels sense-gnss-quantize=0.05:2.5,ctrl-lookahead-skip
//	adassure-search -mode cem -seed 7                # cross-entropy search over channel × window
//	adassure-search -assertions A1,A2,A13            # weakened catalog (what-if)
//	adassure-search -json report.json                # machine-readable report ("-" = stdout)
//	adassure-search -workers 8                       # pool size (default GOMAXPROCS)
//
// -channels takes a comma-separated list of operator names, each optionally
// bounded as op=min:max (a bare op searches the operator's full registry
// range). The report is byte-identical for any -workers value and for
// repeated runs at the same seed.
//
// Observability: -metrics out.json writes a JSON runtime-metrics snapshot
// aggregated across every probe run, and -events out.json records the
// structured event timeline (scoped per probe). Neither changes the report.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"adassure"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adassure-search: "+format+"\n", args...)
	os.Exit(1)
}

// parseChannels turns "op,op=min:max,..." into channel specs.
func parseChannels(s string) ([]adassure.SearchSpec, error) {
	if s == "" {
		return nil, nil
	}
	var specs []adassure.SearchSpec
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		spec := adassure.SearchSpec{Op: item}
		if op, bounds, ok := strings.Cut(item, "="); ok {
			lo, hi, ok := strings.Cut(bounds, ":")
			if !ok {
				return nil, fmt.Errorf("channel %q: bounds must be min:max", item)
			}
			min, err := strconv.ParseFloat(lo, 64)
			if err != nil {
				return nil, fmt.Errorf("channel %q: bad min %q", item, lo)
			}
			max, err := strconv.ParseFloat(hi, 64)
			if err != nil {
				return nil, fmt.Errorf("channel %q: bad max %q", item, hi)
			}
			spec = adassure.SearchSpec{Op: op, Min: min, Max: max}
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// parseCSV splits a comma-separated list, dropping empty items.
func parseCSV(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func main() {
	var (
		controller  = flag.String("controller", "pure-pursuit", "lateral controller under test")
		tracksCSV   = flag.String("tracks", "", "comma-separated route names (default urban-loop,hairpin)")
		channelsCSV = flag.String("channels", "", "comma-separated channels, op or op=min:max (default: monotone channel set; see -ops)")
		assertsCSV  = flag.String("assertions", "", "comma-separated assertion IDs to restrict the catalog (default: full catalog)")
		listOps     = flag.Bool("ops", false, "list the default search channels and exit")
		mode        = flag.String("mode", "descent", "search mode: descent or cem")
		seed        = flag.Int64("seed", 1, "seed for all stochastic components")
		budget      = flag.Int("budget", 0, "oracle evaluations per track × channel (descent) or per track (cem); 0 = mode default")
		duration    = flag.Float64("duration", 60, "simulated seconds per probe run")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "probe pool size")
		jsonOut     = flag.String("json", "", "write the report as JSON to this file (\"-\" = stdout)")
		metricsOut  = flag.String("metrics", "", "write a JSON runtime-metrics snapshot to this file")
		eventsOut   = flag.String("events", "", "write the structured event timeline as JSON to this file")
	)
	flag.Parse()

	if *listOps {
		for _, ch := range adassure.DefaultSearchChannels() {
			cc, err := ch.Canonicalize()
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("%s [%g, %g]\n", cc.Op, cc.Min, cc.Max)
		}
		return
	}

	channels, err := parseChannels(*channelsCSV)
	if err != nil {
		fatalf("%v", err)
	}
	var reg *adassure.Registry
	if *metricsOut != "" {
		reg = adassure.NewRegistry()
	}
	var rec *adassure.EventRecorder
	if *eventsOut != "" {
		rec = adassure.NewEventRecorder(0)
	}

	start := time.Now()
	rep, err := adassure.RunSearch(adassure.SearchConfig{
		Controller: *controller,
		Tracks:     parseCSV(*tracksCSV),
		Channels:   channels,
		Assertions: parseCSV(*assertsCSV),
		Mode:       *mode,
		Seed:       *seed,
		Budget:     *budget,
		Duration:   *duration,
		Workers:    *workers,
		Obs:        reg,
		Events:     rec,
	})
	if err != nil {
		fatalf("%v", err)
	}

	if *jsonOut == "-" {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatalf("write report: %v", err)
		}
	} else {
		if err := rep.WriteFrontierReport(os.Stdout); err != nil {
			fatalf("write frontier report: %v", err)
		}
		fmt.Printf("\n(%d frontier points, %d probe runs in %.1fs)\n",
			len(rep.Frontier), rep.TotalEvals, time.Since(start).Seconds())
	}

	writeFile := func(path, what string, fn func(io.Writer) error) {
		if path == "" || path == "-" {
			return
		}
		f, err := os.Create(path)
		if err == nil {
			err = fn(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fatalf("write %s: %v", what, err)
		}
		fmt.Fprintf(os.Stderr, "%s written to %s\n", what, path)
	}
	if *jsonOut != "" && *jsonOut != "-" {
		writeFile(*jsonOut, "report", rep.WriteJSON)
	}
	if reg != nil {
		writeFile(*metricsOut, "metrics", reg.WriteJSON)
	}
	if rec != nil {
		writeFile(*eventsOut, "events", rec.WriteJSON)
	}
}
