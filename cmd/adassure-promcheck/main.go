// Command adassure-promcheck validates a Prometheus exposition document
// on stdin — the CI gate behind "curl /metrics | adassure-promcheck".
//
// Parsing alone is already a strict structural check (obs.ParseProm
// verifies TYPE declarations, suffix discipline, cumulative buckets, the
// +Inf/_count invariant and the # EOF terminator). On top of that, flags
// assert facts about the scrape's content:
//
//	adassure-promcheck \
//	    -counter sim_runs_total=1 \
//	    -family runner_pool_queue_wait_ns=histogram \
//	    -exemplar service_request_ns < scrape.txt
//
// Usage:
//
//	adassure-promcheck [-counter name=min]... [-family name[=type]]...
//	    [-exemplar family]... [-q]
//
// -counter asserts the summed value of a counter sample name across all
// label sets is at least min; -family asserts a metric family exists
// (optionally with the given type); -exemplar asserts at least one
// bucket of the family carries a trace_id exemplar. Each flag repeats.
//
// Exit status: 0 when the document parses and every assertion holds,
// 1 otherwise, 2 on bad invocation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"adassure/internal/obs"
)

// repeatable collects every occurrence of a string flag.
type repeatable []string

func (r *repeatable) String() string     { return strings.Join(*r, ",") }
func (r *repeatable) Set(s string) error { *r = append(*r, s); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point: it validates the exposition on in and
// returns the process exit code.
func run(args []string, in io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("adassure-promcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		counters  repeatable
		families  repeatable
		exemplars repeatable
		quiet     = fs.Bool("q", false, "suppress the success summary")
	)
	fs.Var(&counters, "counter", "assert sample `name=min`: summed counter value >= min (repeatable)")
	fs.Var(&families, "family", "assert metric family `name[=type]` exists (repeatable)")
	fs.Var(&exemplars, "exemplar", "assert histogram `family` has a trace_id exemplar (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "adassure-promcheck: reads the exposition from stdin; no positional arguments")
		return 2
	}

	doc, err := obs.ParseProm(in)
	if err != nil {
		fmt.Fprintln(stderr, "adassure-promcheck:", err)
		return 1
	}

	var failures []string
	for _, spec := range counters {
		name, minStr, ok := strings.Cut(spec, "=")
		min := 1.0
		if ok {
			v, err := strconv.ParseFloat(minStr, 64)
			if err != nil {
				fmt.Fprintf(stderr, "adassure-promcheck: -counter %q: bad minimum: %v\n", spec, err)
				return 2
			}
			min = v
		}
		total, series := doc.Sum(name)
		if series == 0 {
			failures = append(failures, fmt.Sprintf("counter %s: no series", name))
		} else if total < min {
			failures = append(failures, fmt.Sprintf("counter %s: total %g < required %g", name, total, min))
		}
	}
	for _, spec := range families {
		name, typ, _ := strings.Cut(spec, "=")
		f := doc.Family(name)
		if f == nil {
			failures = append(failures, fmt.Sprintf("family %s: not declared", name))
		} else if typ != "" && f.Type != typ {
			failures = append(failures, fmt.Sprintf("family %s: type %s, want %s", name, f.Type, typ))
		}
	}
	for _, name := range exemplars {
		if doc.Family(name) == nil {
			failures = append(failures, fmt.Sprintf("exemplar %s: family not declared", name))
		} else if !doc.HasExemplar(name) {
			failures = append(failures, fmt.Sprintf("exemplar %s: no bucket carries a trace_id exemplar", name))
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(stderr, "adassure-promcheck: FAIL:", f)
		}
		return 1
	}
	if !*quiet {
		samples := 0
		for _, f := range doc.Families {
			samples += len(f.Samples)
		}
		fmt.Fprintf(stdout, "ok: %d families, %d samples, %d assertions\n",
			len(doc.Families), samples, len(counters)+len(families)+len(exemplars))
	}
	return 0
}
