package main

import (
	"bytes"
	"strings"
	"testing"

	"adassure/internal/obs"
)

// scrape renders a registry with one counter, one labeled counter and
// one histogram carrying a trace-ID exemplar — a miniature of a live
// /metrics scrape.
func scrape(t *testing.T) []byte {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("sim.runs").Inc()
	reg.CounterL("service.http.requests", "route", "/v1/run", "status", "200").Add(3)
	h := reg.Histogram("service.request_ns")
	h.ObserveEx(1500, "0af7651916cd43dd8448eb211c80319c")
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPromcheckPasses(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-counter", "sim_runs_total=1",
		"-counter", "service_http_requests_total=3",
		"-family", "service_request_ns=histogram",
		"-exemplar", "service_request_ns",
	}, bytes.NewReader(scrape(t)), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ok:") {
		t.Errorf("missing success summary:\n%s", out.String())
	}
}

func TestPromcheckFailures(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"counter too low", []string{"-counter", "sim_runs_total=2"}, "total 1 < required 2"},
		{"counter absent", []string{"-counter", "nope_total"}, "no series"},
		{"family absent", []string{"-family", "nope"}, "not declared"},
		{"family wrong type", []string{"-family", "sim_runs=histogram"}, "type counter, want histogram"},
		{"exemplar absent", []string{"-exemplar", "sim_runs"}, "no bucket carries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run(tc.args, bytes.NewReader(scrape(t)), &out, &errOut); code != 1 {
				t.Fatalf("exit %d, want 1 (stderr: %s)", code, errOut.String())
			}
			if !strings.Contains(errOut.String(), tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, errOut.String())
			}
		})
	}
}

func TestPromcheckRejectsMalformed(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, strings.NewReader("sim_runs_total 1\n# EOF\n"), &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1 for sample without TYPE", code)
	}
	if code := run(nil, strings.NewReader("# TYPE sim_runs counter\nsim_runs_total 1\n"), &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1 for missing # EOF", code)
	}
	if code := run([]string{"extra.txt"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2 for positional argument", code)
	}
}
