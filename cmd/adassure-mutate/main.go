// Command adassure-mutate runs a mutation-testing campaign against the
// assertion catalog: it injects exactly one controller mutant or
// sensor/actuator fault per simulation run, scores each assertion by the
// mutants it kills (fires on the mutated run but not on the clean baseline
// of the same track and seed), and prints the kill matrix plus the ranked
// surviving-mutant report.
//
// Usage:
//
//	adassure-mutate                              # default grid (15 mutants × 2 tracks)
//	adassure-mutate -tracks urban-loop           # single route
//	adassure-mutate -mutants identity,ctrl-gain-flip,ctrl-gain-scale=0.25
//	adassure-mutate -controller stanley -duration 40
//	adassure-mutate -json report.json            # machine-readable report ("-" = stdout)
//	adassure-mutate -workers 8                   # pool size (default GOMAXPROCS)
//
// -mutants takes a comma-separated list of operator names, each optionally
// parameterised as op=value (a bare op uses its default). The report is
// byte-identical for any -workers value.
//
// Observability: -metrics out.json writes a JSON runtime-metrics snapshot
// aggregated across every run of the campaign, and -events out.json
// records the structured event timeline (tracks scoped per grid cell).
// Neither changes the report.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"adassure"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adassure-mutate: "+format+"\n", args...)
	os.Exit(1)
}

// parseMutants turns "op,op=param,..." into canonical specs.
func parseMutants(s string) ([]adassure.MutantSpec, error) {
	if s == "" {
		return nil, nil
	}
	var specs []adassure.MutantSpec
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		spec := adassure.MutantSpec{Op: item}
		if op, val, ok := strings.Cut(item, "="); ok {
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("mutant %q: bad parameter %q", item, val)
			}
			spec = adassure.MutantSpec{Op: op, Param: p}
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// parseTracks splits the CSV track list.
func parseTracks(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// renderMatrix prints the kill matrix as an aligned table: one row per
// mutant, an X per killing assertion, plus the aggregate columns.
func renderMatrix(w io.Writer, rep *adassure.MutationReport) {
	headers := append(append([]string{"mutant", "kind"}, rep.Assertions...), "killed", "first", "latency (s)", "max |cte| (m)")
	rows := [][]string{headers}
	for _, s := range rep.Scores {
		row := []string{s.Mutant, string(s.Kind)}
		for _, id := range rep.Assertions {
			cell := "."
			if rep.Killed(s.Mutant, id) {
				cell = "X"
			}
			row = append(row, cell)
		}
		killed, first, latency := "no", "-", "-"
		if s.Killed {
			killed, first = "yes", s.FirstKill
			latency = strconv.FormatFloat(s.Latency, 'f', 2, 64)
		}
		rows = append(rows, append(row, killed, first, latency, strconv.FormatFloat(s.MaxTrueCTE, 'f', 2, 64)))
	}
	widths := make([]int, len(headers))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		parts := make([]string, len(row))
		for i, cell := range row {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		if ri == 0 {
			total := 0
			for _, wd := range widths {
				total += wd + 2
			}
			fmt.Fprintln(w, strings.Repeat("-", total))
		}
	}
	fmt.Fprintln(w)
}

func main() {
	var (
		controller = flag.String("controller", "pure-pursuit", "lateral controller under test")
		tracksCSV  = flag.String("tracks", "", "comma-separated route names (default urban-loop,hairpin)")
		mutantsCSV = flag.String("mutants", "", "comma-separated mutants, op or op=param (default: full catalog; see -ops)")
		listOps    = flag.Bool("ops", false, "list the mutation operators and exit")
		seed       = flag.Int64("seed", 1, "seed for all stochastic components")
		duration   = flag.Float64("duration", 60, "simulated seconds per run")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "campaign pool size")
		jsonOut    = flag.String("json", "", "write the report as JSON to this file (\"-\" = stdout)")
		metricsOut = flag.String("metrics", "", "write a JSON runtime-metrics snapshot to this file")
		eventsOut  = flag.String("events", "", "write the structured event timeline as JSON to this file")
	)
	flag.Parse()

	if *listOps {
		for _, op := range adassure.MutantOps() {
			fmt.Println(op)
		}
		return
	}

	mutants, err := parseMutants(*mutantsCSV)
	if err != nil {
		fatalf("%v", err)
	}
	var reg *adassure.Registry
	if *metricsOut != "" {
		reg = adassure.NewRegistry()
	}
	var rec *adassure.EventRecorder
	if *eventsOut != "" {
		rec = adassure.NewEventRecorder(0)
	}

	start := time.Now()
	rep, err := adassure.RunMutationCampaign(adassure.MutationConfig{
		Controller: *controller,
		Tracks:     parseTracks(*tracksCSV),
		Mutants:    mutants,
		Seed:       *seed,
		Duration:   *duration,
		Workers:    *workers,
		Obs:        reg,
		Events:     rec,
	})
	if err != nil {
		fatalf("%v", err)
	}

	if *jsonOut == "-" {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatalf("write report: %v", err)
		}
	} else {
		renderMatrix(os.Stdout, rep)
		if err := rep.WriteSurvivorReport(os.Stdout); err != nil {
			fatalf("write survivor report: %v", err)
		}
		fmt.Printf("\n(%d mutants × %d tracks scored in %.1fs)\n",
			len(rep.Scores), len(rep.Tracks), time.Since(start).Seconds())
	}

	writeFile := func(path, what string, fn func(io.Writer) error) {
		if path == "" || path == "-" {
			return
		}
		f, err := os.Create(path)
		if err == nil {
			err = fn(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fatalf("write %s: %v", what, err)
		}
		fmt.Fprintf(os.Stderr, "%s written to %s\n", what, path)
	}
	if *jsonOut != "" && *jsonOut != "-" {
		writeFile(*jsonOut, "report", rep.WriteJSON)
	}
	if reg != nil {
		writeFile(*metricsOut, "metrics", reg.WriteJSON)
	}
	if rec != nil {
		writeFile(*eventsOut, "events", rec.WriteJSON)
	}
}
