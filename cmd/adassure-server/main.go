// Command adassure-server exposes the ADAssure scenario-execution engine
// over HTTP/JSON. Clients POST scenario requests (attack class, window,
// seed, assertion-catalog selection) to /v1/run and receive the full
// evidence chain: run summary, violation record, ranked diagnosis
// hypotheses and — on request — per-episode forensic bundles.
//
// Because every run is deterministic in its canonicalized request, the
// server front-ends the worker pool with a content-addressed result
// cache (canonical request hash → response bytes, LRU bounded by
// -cache-bytes) plus single-flight coalescing, so repeated or concurrent
// identical requests cost exactly one simulation. When the bounded
// admission queue is full the server sheds load with 429 + Retry-After
// instead of queueing unboundedly.
//
// Usage:
//
//	adassure-server [-addr :8080] [-workers N] [-queue N]
//	    [-cache-bytes 67108864] [-timeout 60s] [-max-duration 600]
//	    [-retry-after 1s] [-pprof] [-metrics out.json]
//	    [-stream-hz 2000] [-stream-session 5m] [-stream-error-budget 0]
//	    [-log-format text|json] [-trace-store 256] [-readiness-grace 0s]
//	    [-role standalone|worker|coordinator] [-peers url,url,...]
//	    [-store-dir DIR] [-store-bytes N]
//	    [-jobs-workers 2] [-jobs-queue 16] [-jobs-retention 256] [-no-jobs]
//
// Fleet roles: the default "standalone" executes everything locally.
// "worker" is a standalone execution node addressed by a coordinator
// (give it -store-dir so its shard of results survives restarts).
// "coordinator" requires -peers and executes nothing itself: every keyed
// request — synchronous /v1/run and async /v1/jobs alike — is routed to
// its content-address owner on a consistent-hash ring over the workers,
// with health-checked failover. POST /v1/jobs returns 202 + a job id;
// poll GET /v1/jobs/{id}, stream NDJSON progress from
// /v1/jobs/{id}/events, fetch bytes from /v1/jobs/{id}/result, cancel
// with DELETE.
//
// -store-dir enables the persistent result store (append-only CRC-checked
// segments): cache misses fall through to it before simulating, and every
// fresh result is appended, so cached evidence survives restarts.
//
// All resource limits are validated together at boot — nonsense
// combinations (a cache cap that cannot hold one response, -store-bytes
// without -store-dir, a job tier wider than 4x the simulation pool) are
// rejected with one error listing every violation, and the resolved
// values are logged as a single "limits" record.
//
// POST /v1/stream serves online monitoring: chunked NDJSON frames in,
// NDJSON events out over one full-duplex exchange, with per-session
// limits on frame rate (-stream-hz), wall-clock lifetime
// (-stream-session) and malformed-line tolerance (-stream-error-budget;
// 0 = default of 10, negative = none).
//
// Observability: every /v1/* request is traced end to end (W3C
// traceparent in, X-Adassure-Trace out, spans retrievable from
// /debug/traces/{id}; -trace-store bounds the in-memory store, 0
// disables tracing). /metrics serves the Prometheus text exposition with
// trace-ID exemplars; /metrics.json keeps the JSON snapshot. One
// structured log record per request — -log-format picks text or JSON —
// carries the same trace_id for correlation.
//
// Endpoints: POST /v1/run, POST /v1/stream, POST /v1/mutate,
// GET /v1/catalog, GET /healthz, GET /readyz, GET /metrics,
// GET /metrics.json, GET /debug/buildinfo, GET /debug/traces[/{id}], and
// GET /debug/pprof (with -pprof). SIGINT/SIGTERM trigger a graceful
// shutdown: /readyz flips to 503 immediately, -readiness-grace gives
// load balancers time to observe it, then the listener stops accepting,
// in-flight simulations drain and open streaming sessions are closed
// with a drain event (up to -drain-timeout), and with -metrics a final
// registry snapshot is written on exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strings"

	"adassure/internal/obs"
	"adassure/internal/service"
	"adassure/internal/store"
	"adassure/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "adassure-server:", err)
		os.Exit(1)
	}
}

// run is main minus process exit, so tests can drive the full lifecycle.
func run(argv []string, stdout, stderr *os.File) error {
	fs := flag.NewFlagSet("adassure-server", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "simulation workers (default GOMAXPROCS)")
		queue        = fs.Int("queue", 0, "admission queue depth (default 2x workers)")
		cacheBytes   = fs.Int64("cache-bytes", 64<<20, "result cache cap in bytes (negative disables)")
		timeout      = fs.Duration("timeout", 60*time.Second, "per-request simulation budget")
		maxDuration  = fs.Float64("max-duration", 600, "max simulated seconds per request (negative disables)")
		retryAfter   = fs.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		pprofOn      = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof")
		metricsPath  = fs.String("metrics", "", "write a final metrics snapshot to this file on shutdown")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight runs on shutdown")
		streamHz     = fs.Float64("stream-hz", 0, "per-stream-session frame rate cap (default 2000, negative disables)")
		streamSess   = fs.Duration("stream-session", 0, "per-stream-session wall-clock cap (default 5m, negative disables)")
		streamBudget = fs.Int("stream-error-budget", 0, "malformed NDJSON lines tolerated per stream session (default 10, negative = none)")
		streamBeat   = fs.Int("stream-heartbeat", 0, "default stream heartbeat cadence in frames (default 200, negative = off)")
		logFormat    = fs.String("log-format", "text", "structured log format: text or json (stderr)")
		traceStore   = fs.Int("trace-store", 256, "completed traces retained for /debug/traces (0 disables tracing)")
		readyGrace   = fs.Duration("readiness-grace", 0, "after /readyz flips to 503 on shutdown, wait this long before closing the listener")
		role         = fs.String("role", "standalone", "fleet role: standalone, worker, or coordinator")
		peers        = fs.String("peers", "", "comma-separated worker base URLs (coordinator role)")
		storeDir     = fs.String("store-dir", "", "persistent result store directory (empty disables)")
		storeBytes   = fs.Int64("store-bytes", 0, "persistent store cap in bytes (default 256 MiB)")
		jobsWorkers  = fs.Int("jobs-workers", 0, "async job dispatchers (default 2)")
		jobsQueue    = fs.Int("jobs-queue", 0, "async job queue depth (default 8x job workers)")
		jobsKeep     = fs.Int("jobs-retention", 0, "finished jobs retained for polling (default 256)")
		noJobs       = fs.Bool("no-jobs", false, "disable the /v1/jobs endpoints")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	var logger *slog.Logger
	switch *logFormat {
	case "json":
		logger = slog.New(slog.NewJSONHandler(stderr, nil))
	case "text":
		logger = slog.New(slog.NewTextHandler(stderr, nil))
	default:
		return fmt.Errorf("-log-format must be text or json, got %q", *logFormat)
	}
	var tracer *telemetry.Tracer
	if *traceStore > 0 {
		tracer = telemetry.New(telemetry.Config{MaxTraces: *traceStore})
	}

	// Role / peer-set sanity, then the combined limits validation: every
	// violation is reported at once, and the resolved envelope is logged
	// as one "limits" record before anything starts.
	switch *role {
	case "standalone", "worker":
		if *peers != "" {
			return fmt.Errorf("-peers is only meaningful with -role coordinator")
		}
	case "coordinator":
		if *peers == "" {
			return fmt.Errorf("-role coordinator requires -peers")
		}
		if *storeDir != "" {
			return fmt.Errorf("-store-dir is a worker/standalone setting; the coordinator holds no results (each key's owner does)")
		}
	default:
		return fmt.Errorf("-role must be standalone, worker or coordinator, got %q", *role)
	}
	limits := service.Limits{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheBytes:   *cacheBytes,
		Timeout:      *timeout,
		MaxDuration:  *maxDuration,
		StoreDir:     *storeDir,
		StoreBytes:   *storeBytes,
		JobWorkers:   *jobsWorkers,
		JobQueue:     *jobsQueue,
		JobRetention: *jobsKeep,
	}
	if err := limits.Validate(); err != nil {
		return fmt.Errorf("invalid limits:\n%w", err)
	}
	limits.LogSummary(logger, *role)

	reg := obs.NewRegistry()
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{MaxBytes: *storeBytes, Obs: reg})
		if err != nil {
			return fmt.Errorf("open store: %w", err)
		}
		logger.Info("store opened",
			slog.String("dir", *storeDir),
			slog.Int("entries", st.Len()),
			slog.Int64("bytes", st.SizeBytes()),
		)
	}
	var fleet *service.Fleet
	if *role == "coordinator" {
		var err error
		fleet, err = service.NewFleet(service.FleetConfig{
			Peers:  strings.Split(*peers, ","),
			Obs:    reg,
			Logger: logger,
		})
		if err != nil {
			if st != nil {
				st.Close()
			}
			return err
		}
	}
	svc := service.New(service.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		CacheBytes:  *cacheBytes,
		Timeout:     *timeout,
		MaxDuration: *maxDuration,
		RetryAfter:  *retryAfter,
		Obs:         reg,
		Tracer:      tracer,
		Logger:      logger,
		EnablePprof: *pprofOn,
		Store:       st,
		Fleet:       fleet,
		Jobs: service.JobsLimits{
			Workers:    *jobsWorkers,
			QueueDepth: *jobsQueue,
			Retention:  *jobsKeep,
			Disable:    *noJobs,
		},
		Stream: service.StreamLimits{
			MaxFrameHz:         *streamHz,
			MaxSessionDuration: *streamSess,
			ErrorBudget:        *streamBudget,
			Heartbeat:          *streamBeat,
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(stdout, "adassure-server listening on http://%s\n", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(stderr, "adassure-server: %s, draining (up to %s)\n", sig, *drainTimeout)
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	}

	// Shutdown order: flip readiness first so load balancers stop routing
	// new traffic (with -readiness-grace to let them observe the 503),
	// then stop accepting, then drain the simulation pool so every
	// admitted request still gets its response.
	svc.BeginDrain()
	if *readyGrace > 0 {
		time.Sleep(*readyGrace)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(stderr, "adassure-server: http shutdown:", err)
	}
	if err := svc.Close(ctx); err != nil {
		fmt.Fprintln(stderr, "adassure-server: drain:", err)
	}
	if *metricsPath != "" {
		if err := writeMetrics(reg, *metricsPath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "metrics written to %s\n", *metricsPath)
	}
	return nil
}

func writeMetrics(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("write metrics: %w", err)
	}
	return f.Close()
}
