// Command adassure-offline debugs recorded frame streams without
// re-simulating: it re-monitors a recording (produced by
// `adassure-sim -record`), renders single- or multi-incident reports, and
// diffs threshold configurations — the record-once / debug-many half of
// the methodology.
//
// Usage:
//
//	adassure-offline report rec.json                  # monitor + diagnosis
//	adassure-offline segments rec.json                # multi-incident report
//	adassure-offline diff rec.json -scale 0.75        # what tightening changes
//	adassure-offline slice rec.json -from 18 -to 52   # diagnose a time window
package main

import (
	"flag"
	"fmt"
	"os"

	"adassure"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: adassure-offline (report|segments|diff|slice) <recording.json> [flags]")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	mode, path := os.Args[1], os.Args[2]
	fs := flag.NewFlagSet("adassure-offline", flag.ExitOnError)
	scale := fs.Float64("scale", 0.75, "threshold scale for diff")
	gap := fs.Float64("gap", 5, "quiet gap (s) separating incidents")
	from := fs.Float64("from", 0, "slice start (s)")
	to := fs.Float64("to", 0, "slice end (s)")
	if err := fs.Parse(os.Args[3:]); err != nil {
		os.Exit(2)
	}

	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adassure-offline:", err)
		os.Exit(1)
	}
	rec, err := adassure.ReadRecording(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "adassure-offline:", err)
		os.Exit(1)
	}
	fmt.Printf("recording: %s on %s (%s, seed %d), %d frames over %.1f s\n\n",
		rec.Meta.Attack, rec.Meta.Track, rec.Meta.Controller, rec.Meta.Seed,
		len(rec.Frames), rec.Duration())

	cfg := adassure.CatalogConfig{IncludeGroundTruth: true}
	switch mode {
	case "report":
		vs := rec.Monitor(cfg)
		fmt.Print(adassure.DiagnosisReport(vs, 3))
	case "segments":
		vs := rec.Monitor(cfg)
		fmt.Print(adassure.SegmentReport(vs, *gap))
	case "diff":
		diff := rec.Diff(cfg, adassure.CatalogConfig{IncludeGroundTruth: true, ThresholdScale: *scale})
		if len(diff) == 0 {
			fmt.Printf("no episode changes at scale %.2f\n", *scale)
			return
		}
		fmt.Printf("episode deltas at threshold scale %.2f:\n", *scale)
		for _, d := range diff {
			fmt.Printf("  %-4s %d → %d\n", d.AssertionID, d.Before, d.After)
		}
	case "slice":
		if *to <= *from {
			fmt.Fprintln(os.Stderr, "adassure-offline: slice needs -from < -to")
			os.Exit(2)
		}
		sub, err := rec.Slice(*from, *to)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adassure-offline:", err)
			os.Exit(1)
		}
		vs := sub.Monitor(cfg)
		fmt.Print(adassure.DiagnosisReport(vs, 3))
	default:
		usage()
	}
}
