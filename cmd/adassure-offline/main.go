// Command adassure-offline debugs recorded frame streams without
// re-simulating: it re-monitors a recording (produced by
// `adassure-sim -record`), renders single- or multi-incident reports, and
// diffs threshold configurations — the record-once / debug-many half of
// the methodology.
//
// Usage:
//
//	adassure-offline report rec.json                  # monitor + diagnosis
//	adassure-offline segments rec.json                # multi-incident report
//	adassure-offline diff rec.json -scale 0.75        # what tightening changes
//	adassure-offline slice rec.json -from 18 -to 52   # diagnose a time window
//	adassure-offline stream rec.json -speed 10        # replay as a live stream
//
// stream replays the recording through the online monitoring session
// (internal/stream) at -speed times native rate (0 = as fast as
// possible), writing the NDJSON event transcript to stdout and a
// summary to stderr — the same events POST /v1/stream serves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"adassure"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: adassure-offline (report|segments|diff|slice|stream) <recording.json> [flags]")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	mode, path := os.Args[1], os.Args[2]
	fs := flag.NewFlagSet("adassure-offline", flag.ExitOnError)
	scale := fs.Float64("scale", 0.75, "threshold scale for diff")
	gap := fs.Float64("gap", 5, "quiet gap (s) separating incidents")
	from := fs.Float64("from", 0, "slice start (s)")
	to := fs.Float64("to", 0, "slice end (s)")
	speed := fs.Float64("speed", 0, "stream replay rate multiplier (1 = native, 0 = as fast as possible)")
	heartbeat := fs.Int("heartbeat", 200, "stream heartbeat cadence in frames (0 = off)")
	if err := fs.Parse(os.Args[3:]); err != nil {
		os.Exit(2)
	}

	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adassure-offline:", err)
		os.Exit(1)
	}
	rec, err := adassure.ReadRecording(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "adassure-offline:", err)
		os.Exit(1)
	}
	// In stream mode stdout carries the NDJSON event transcript, so the
	// provenance banner goes to stderr with the summary instead.
	banner := os.Stdout
	if mode == "stream" {
		banner = os.Stderr
	}
	fmt.Fprintf(banner, "recording: %s on %s (%s, seed %d), %d frames over %.1f s\n\n",
		rec.Meta.Attack, rec.Meta.Track, rec.Meta.Controller, rec.Meta.Seed,
		len(rec.Frames), rec.Duration())

	cfg := adassure.CatalogConfig{IncludeGroundTruth: true}
	switch mode {
	case "report":
		vs := rec.Monitor(cfg)
		fmt.Print(adassure.DiagnosisReport(vs, 3))
	case "segments":
		vs := rec.Monitor(cfg)
		fmt.Print(adassure.SegmentReport(vs, *gap))
	case "diff":
		diff := rec.Diff(cfg, adassure.CatalogConfig{IncludeGroundTruth: true, ThresholdScale: *scale})
		if len(diff) == 0 {
			fmt.Printf("no episode changes at scale %.2f\n", *scale)
			return
		}
		fmt.Printf("episode deltas at threshold scale %.2f:\n", *scale)
		for _, d := range diff {
			fmt.Printf("  %-4s %d → %d\n", d.AssertionID, d.Before, d.After)
		}
	case "slice":
		if *to <= *from {
			fmt.Fprintln(os.Stderr, "adassure-offline: slice needs -from < -to")
			os.Exit(2)
		}
		sub, err := rec.Slice(*from, *to)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adassure-offline:", err)
			os.Exit(1)
		}
		vs := sub.Monitor(cfg)
		fmt.Print(adassure.DiagnosisReport(vs, 3))
	case "stream":
		if err := streamReplay(rec, cfg, *speed, *heartbeat); err != nil {
			fmt.Fprintln(os.Stderr, "adassure-offline:", err)
			os.Exit(1)
		}
	default:
		usage()
	}
}

// streamReplay pushes the recording through an online monitoring session
// frame by frame, pacing inter-frame sleeps by the recorded timestamps
// divided by speed (speed <= 0 replays without pacing). Events stream to
// stdout as NDJSON; the closing summary lands on stderr.
func streamReplay(rec *adassure.Recording, cfg adassure.CatalogConfig, speed float64, heartbeat int) error {
	enc := json.NewEncoder(os.Stdout)
	var events int64
	sess, err := adassure.NewStreamSession(adassure.StreamConfig{
		Catalog:   cfg,
		Heartbeat: heartbeat,
		Sink: func(e adassure.StreamEvent) {
			events++
			enc.Encode(&e)
		},
	})
	if err != nil {
		return err
	}
	start := time.Now()
	for i := range rec.Frames {
		if speed > 0 && i > 0 {
			if dt := rec.Frames[i].T - rec.Frames[i-1].T; dt > 0 {
				time.Sleep(time.Duration(dt / speed * float64(time.Second)))
			}
		}
		if err := sess.Ingest(rec.Frames[i]); err != nil {
			sess.Close()
			return fmt.Errorf("frame %d: %w", i, err)
		}
	}
	st := sess.Close()
	elapsed := time.Since(start)
	rate := float64(st.Frames) / elapsed.Seconds()
	fmt.Fprintf(os.Stderr, "\nstreamed %d frames in %.2f s (%.0f frames/s): %d violations, %d events\n",
		st.Frames, elapsed.Seconds(), rate, st.Violations, events)
	for _, h := range sess.Diagnose() {
		fmt.Fprintf(os.Stderr, "  %.2f  %s — %s\n", h.Confidence, h.Cause, h.Rationale)
	}
	return nil
}
