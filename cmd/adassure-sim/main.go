// Command adassure-sim runs one simulated driving scenario with the
// ADAssure monitor attached and prints the run summary plus the debugging
// report (violation timeline and ranked root causes).
//
// Usage:
//
//	adassure-sim -track urban-loop -controller pure-pursuit \
//	    -attack gnss-drift-spoof -seed 1 -duration 70 [-guard] \
//	    [-trace out.csv] [-json out.json]
//
// With -seeds N (N > 1) the same scenario is repeated for N consecutive
// seeds, fanned across -workers goroutines (default GOMAXPROCS), and a
// per-seed detection summary is printed instead of the single-run report.
//
// Observability: -metrics out.json writes a JSON metrics snapshot of the
// run (sim step histogram, per-assertion monitoring cost, runner job
// stats; see the README "Observability" section), and -pprof addr serves
// net/http/pprof plus the live snapshot under expvar for the lifetime of
// the process.
//
// Forensics: -events out.json records the structured event timeline
// (scenario span, attack window, violation episodes, guard fallback) and
// writes it as JSON; -perfetto out.json exports the same timeline as
// Chrome trace-event JSON loadable in ui.perfetto.dev; -flight N bounds
// the recorder to the newest N events; -bundles dir/ writes one forensic
// bundle per violation episode (trace slice, frames, attack state, eval
// history, diagnosis) into the directory. Inspect any of these files with
// adassure-trace events|perfetto|bundle.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"

	"adassure"
)

// startObs builds the registry for -metrics/-pprof, starting the pprof
// server when addr is non-empty. Returns nil when both flags are off.
func startObs(metricsPath, pprofAddr string) *adassure.Registry {
	if metricsPath == "" && pprofAddr == "" {
		return nil
	}
	reg := adassure.NewRegistry()
	if pprofAddr != "" {
		expvar.Publish("adassure", expvar.Func(func() any { return reg.Snapshot() }))
		go func() {
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "adassure-sim: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof+expvar serving on http://%s/debug/pprof (metrics at /debug/vars)\n", pprofAddr)
	}
	return reg
}

// writeMetrics dumps the registry snapshot to path.
func writeMetrics(reg *adassure.Registry, path string) {
	if reg == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err == nil {
		err = reg.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "adassure-sim: write metrics:", err)
		os.Exit(1)
	}
	fmt.Printf("metrics written to %s\n", path)
}

// writeEventOutputs persists the recorded timeline: raw event JSON to
// eventsPath and/or a Perfetto-loadable Chrome trace to perfettoPath.
func writeEventOutputs(rec *adassure.EventRecorder, eventsPath, perfettoPath string) {
	if rec == nil {
		return
	}
	write := func(path, what string, fn func(io.Writer) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err == nil {
			err = fn(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "adassure-sim: write %s: %v\n", what, err)
			os.Exit(1)
		}
		fmt.Printf("%s written to %s\n", what, path)
	}
	write(eventsPath, "events", rec.WriteJSON)
	write(perfettoPath, "perfetto trace", func(f io.Writer) error {
		return adassure.WritePerfetto(f, rec.Events())
	})
}

// writeBundles emits one forensic bundle per violation episode of the run
// into dir, filenames prefixed to keep multi-seed sweeps collision-free.
// Returns the number of bundles written.
func writeBundles(out *adassure.ScenarioResult, dir, prefix string) int {
	if dir == "" {
		return 0
	}
	bundles := out.ForensicBundles(0)
	if len(bundles) == 0 {
		return 0
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "adassure-sim: create bundle dir:", err)
		os.Exit(1)
	}
	for i := range bundles {
		b := &bundles[i]
		path := filepath.Join(dir, prefix+b.Filename())
		f, err := os.Create(path)
		if err == nil {
			err = b.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "adassure-sim: write bundle:", err)
			os.Exit(1)
		}
	}
	return len(bundles)
}

func main() {
	var (
		trackName  = flag.String("track", "urban-loop", "track: straight|circle|s-curve|figure-eight|double-lane-change|urban-loop|hairpin")
		controller = flag.String("controller", "pure-pursuit", "lateral controller: pure-pursuit|stanley|pid-lateral|lqr-mpc")
		attack     = flag.String("attack", "none", "attack class (see adassure.AttackNames) or none")
		seed       = flag.Int64("seed", 1, "random seed")
		duration   = flag.Float64("duration", 70, "simulated seconds")
		onset      = flag.Float64("attack-start", 20, "attack onset (s)")
		end        = flag.Float64("attack-end", 50, "attack end (s)")
		speedLimit = flag.Float64("speed-limit", 6, "route speed limit (m/s)")
		guard      = flag.Bool("guard", false, "enable the assertion-guarded stack")
		scale      = flag.Float64("threshold-scale", 1, "catalog threshold scale")
		traceCSV   = flag.String("trace", "", "write the signal trace as CSV to this file")
		traceJSON  = flag.String("json", "", "write the signal trace as JSON to this file")
		reportMD   = flag.String("report", "", "write the full Markdown debugging report to this file")
		recordOut  = flag.String("record", "", "write the frame recording (for offline re-monitoring) to this file")
		list       = flag.Bool("list", false, "list available tracks, controllers and attacks, then exit")
		seedCount  = flag.Int("seeds", 1, "run this many consecutive seeds (starting at -seed) and print a per-seed summary")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "scenario-execution pool size for -seeds > 1")
		metricsOut = flag.String("metrics", "", "write a JSON runtime-metrics snapshot (sim/monitor/runner) to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and expvar metrics on this address (e.g. localhost:6060)")
		eventsOut  = flag.String("events", "", "write the structured event timeline as JSON to this file")
		perfOut    = flag.String("perfetto", "", "write the event timeline as Chrome trace-event JSON (open in ui.perfetto.dev)")
		flightCap  = flag.Int("flight", 0, "flight-recorder mode: keep only the newest N events (0 = unbounded)")
		bundleDir  = flag.String("bundles", "", "write one forensic bundle JSON per violation episode into this directory")
	)
	flag.Parse()

	if *list {
		fmt.Println("tracks:      straight circle s-curve figure-eight double-lane-change urban-loop hairpin")
		fmt.Println("controllers: pure-pursuit stanley pid-lateral lqr-mpc")
		fmt.Print("attacks:     none")
		for _, a := range adassure.AttackNames() {
			fmt.Printf(" %s", a)
		}
		fmt.Println()
		return
	}

	reg := startObs(*metricsOut, *pprofAddr)
	// Bundles need the frame stream around each violation, and carry the
	// assertion eval history when a registry is attached — force both on.
	if *bundleDir != "" && reg == nil {
		reg = adassure.NewRegistry()
	}
	var rec *adassure.EventRecorder
	if *eventsOut != "" || *perfOut != "" {
		rec = adassure.NewEventRecorder(*flightCap)
	}
	scn := adassure.Scenario{
		Track:          adassure.TrackName(*trackName),
		Controller:     adassure.ControllerName(*controller),
		Attack:         adassure.AttackName(*attack),
		AttackStart:    *onset,
		AttackEnd:      *end,
		Seed:           *seed,
		Duration:       *duration,
		SpeedLimit:     *speedLimit,
		Guarded:        *guard,
		ThresholdScale: *scale,
		RecordFrames:   *recordOut != "" || *bundleDir != "",
	}

	if *seedCount > 1 {
		if *traceCSV != "" || *traceJSON != "" || *reportMD != "" || *recordOut != "" {
			fmt.Fprintln(os.Stderr, "adassure-sim: file outputs (-trace/-json/-report/-record) apply to single-seed runs only")
			os.Exit(1)
		}
		runSweep(scn, *seedCount, *workers, reg, rec, *bundleDir)
		writeMetrics(reg, *metricsOut)
		writeEventOutputs(rec, *eventsOut, *perfOut)
		return
	}

	// Single runs still go through the scenario runner so the snapshot
	// carries runner job stats alongside the sim/monitor metrics.
	outs, err := adassure.RunScenarioBatch(adassure.BatchOptions{Workers: 1, Obs: reg, Events: rec}, []adassure.Scenario{scn})
	if err != nil {
		fmt.Fprintln(os.Stderr, "adassure-sim:", err)
		os.Exit(1)
	}
	out := outs[0]

	r := out.Sim
	fmt.Printf("run: track=%s controller=%s attack=%s seed=%d guard=%v\n",
		*trackName, *controller, *attack, *seed, *guard)
	fmt.Printf("sim time %.1f s, %d control steps, progress %.1f m (%d laps)\n",
		r.SimTime, r.Steps, r.ProgressTotal, r.Laps)
	fmt.Printf("max |true CTE| %.2f m, RMS %.2f m, believed max %.2f m\n",
		r.MaxTrueCTE, r.RMSTrueCTE, r.MaxEstCTE)
	if r.Diverged {
		fmt.Println("RUN DIVERGED: vehicle left the 100 m corridor")
	}
	if r.FallbackTime > 0 {
		fmt.Printf("guard fallback active %.1f s\n", r.FallbackTime)
	}
	fmt.Println()
	fmt.Print(out.Report())

	if *traceCSV != "" && r.Trace != nil {
		f, err := os.Create(*traceCSV)
		if err == nil {
			err = r.Trace.WriteCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "adassure-sim: write trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *traceCSV)
	}
	if *reportMD != "" {
		f, err := os.Create(*reportMD)
		if err == nil {
			err = out.WriteMarkdownReport(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "adassure-sim: write report:", err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *reportMD)
	}
	if *recordOut != "" && out.Recording != nil {
		f, err := os.Create(*recordOut)
		if err == nil {
			err = out.Recording.Write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "adassure-sim: write recording:", err)
			os.Exit(1)
		}
		fmt.Printf("recording written to %s\n", *recordOut)
	}
	if *traceJSON != "" && r.Trace != nil {
		f, err := os.Create(*traceJSON)
		if err == nil {
			err = r.Trace.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "adassure-sim: write trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *traceJSON)
	}
	if n := writeBundles(out, *bundleDir, ""); n > 0 {
		fmt.Printf("%d forensic bundle(s) written to %s\n", n, *bundleDir)
	} else if *bundleDir != "" {
		fmt.Println("no violations: no forensic bundles written")
	}
	writeMetrics(reg, *metricsOut)
	writeEventOutputs(rec, *eventsOut, *perfOut)
}

// runSweep repeats the scenario for n consecutive seeds across the worker
// pool and prints a per-seed detection summary. Results are seed-ordered
// and identical to running each seed on its own.
func runSweep(scn adassure.Scenario, n, workers int, reg *adassure.Registry, rec *adassure.EventRecorder, bundleDir string) {
	scns := make([]adassure.Scenario, n)
	for i := range scns {
		scns[i] = scn
		scns[i].Seed = scn.Seed + int64(i)
	}
	outs, err := adassure.RunScenarioBatch(adassure.BatchOptions{Workers: workers, Obs: reg, Events: rec}, scns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adassure-sim:", err)
		os.Exit(1)
	}
	if bundleDir != "" {
		total := 0
		for i, out := range outs {
			total += writeBundles(out, bundleDir, fmt.Sprintf("seed%d_", scns[i].Seed))
		}
		fmt.Printf("%d forensic bundle(s) written to %s\n", total, bundleDir)
	}

	fmt.Printf("sweep: track=%s controller=%s attack=%s seeds=%d..%d guard=%v workers=%d\n\n",
		scn.Track, scn.Controller, scn.Attack, scn.Seed, scn.Seed+int64(n-1), scn.Guarded, workers)
	fmt.Printf("%-6s %-14s %-10s %-8s %-10s %-22s\n",
		"seed", "max|CTE| (m)", "detected", "by", "latency", "top cause")
	fmt.Println("-------------------------------------------------------------------------")
	detected := 0
	for i, out := range outs {
		det, by, lat := "no", "-", "-"
		for _, v := range out.Violations {
			if v.T >= scn.AttackStart {
				det, by = "yes", v.AssertionID
				lat = fmt.Sprintf("%.2f s", v.T-scn.AttackStart)
				detected++
				break
			}
		}
		cause := "-"
		if len(out.Hypotheses) > 0 {
			cause = string(out.Hypotheses[0].Cause)
		}
		fmt.Printf("%-6d %-14.2f %-10s %-8s %-10s %-22s\n",
			scns[i].Seed, out.Sim.MaxTrueCTE, det, by, lat, cause)
	}
	if scn.Attack != adassure.AttackNone {
		fmt.Printf("\ndetected %d/%d runs post-onset\n", detected, n)
	}
}
