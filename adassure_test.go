package adassure

import (
	"bytes"
	"strings"
	"testing"
)

func TestScenarioDefaultsCleanRun(t *testing.T) {
	out, err := Scenario{Duration: 30}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Sim == nil || out.Sim.Steps == 0 {
		t.Fatal("simulation did not run")
	}
	if len(out.Violations) != 0 {
		t.Errorf("clean default scenario raised %d violations", len(out.Violations))
	}
	if len(out.Hypotheses) == 0 || out.Hypotheses[0].Cause != Cause("none") {
		t.Errorf("clean scenario diagnosis = %+v", out.Hypotheses)
	}
	if !strings.Contains(out.Report(), "nominal") {
		t.Error("clean report should read nominal")
	}
}

func TestScenarioAttackDetectedAndDiagnosed(t *testing.T) {
	out, err := Scenario{Attack: AttackStepSpoof}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected(20) {
		t.Fatal("step spoof undetected")
	}
	if out.Hypotheses[0].Cause != Cause(AttackStepSpoof) {
		t.Errorf("diagnosed %s, want step spoof", out.Hypotheses[0].Cause)
	}
	if !strings.Contains(out.Report(), "gnss-step-spoof") {
		t.Error("report should name the top hypothesis")
	}
}

func TestScenarioGuardedReducesImpact(t *testing.T) {
	unguarded, err := Scenario{Attack: AttackDriftSpoof}.Run()
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := Scenario{Attack: AttackDriftSpoof, Guarded: true}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if guarded.Sim.MaxTrueCTE >= unguarded.Sim.MaxTrueCTE {
		t.Errorf("guard did not reduce CTE: %.2f vs %.2f",
			guarded.Sim.MaxTrueCTE, unguarded.Sim.MaxTrueCTE)
	}
}

func TestScenarioUnknownTrack(t *testing.T) {
	if _, err := (Scenario{Track: "nowhere"}).Run(); err == nil {
		t.Error("unknown track accepted")
	}
}

func TestScenarioUnknownAttack(t *testing.T) {
	if _, err := (Scenario{Attack: "quantum"}).Run(); err == nil {
		t.Error("unknown attack accepted")
	}
}

func TestCustomAssertionViaDSL(t *testing.T) {
	// A user-defined invariant: target speed must never exceed 10 m/s.
	a := BoundAssertion("U1", "user-speed-cap", "target speed <= 10", SeverityWarning,
		func(f Frame) (float64, bool) { return f.TargetSpeed, true }, 0, 10)
	m := NewMonitor()
	m.Add(a, Debounce{K: 1, N: 1})
	m.Step(Frame{T: 1, Dt: 0.05, TargetSpeed: 12})
	if len(m.Violations()) != 1 {
		t.Fatal("custom assertion did not fire")
	}
	if m.Violations()[0].AssertionID != "U1" {
		t.Error("wrong assertion id")
	}
}

func TestAttackNames(t *testing.T) {
	names := AttackNames()
	if len(names) != 12 {
		t.Errorf("attack names = %v", names)
	}
}

func TestRunExperimentByID(t *testing.T) {
	tb, err := RunExperiment("F4", ExperimentOptions{Quick: true, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "F4" || len(tb.Rows) == 0 {
		t.Errorf("experiment table = %+v", tb)
	}
	if _, err := RunExperiment("T99", ExperimentOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(Experiments()) != 19 {
		t.Errorf("registry size = %d, want 19", len(Experiments()))
	}
}

func TestScenarioCustomTrackWithZones(t *testing.T) {
	base, err := TrackFromWaypoints("plant-route", []Waypoint{
		{X: 0, Y: 0}, {X: 40, Y: 0}, {X: 80, Y: 15}, {X: 120, Y: 15}, {X: 170, Y: 0},
	}, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := base.WithZones(SpeedZone{Start: 0, End: 20, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Scenario{CustomTrack: tr, Controller: ControllerLQRMPC, Duration: 90}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Sim.Finished {
		t.Errorf("custom route not completed: progress %.1f m", out.Sim.ProgressTotal)
	}
	if len(out.Violations) != 0 {
		t.Errorf("clean custom route raised %v", out.Violations)
	}
	// The zone must cap the speed near route start.
	if v, ok := out.Sim.Trace.At("target_speed", 3); !ok || v > 2.01 {
		t.Errorf("zone target speed = %.2f, want <= 2", v)
	}
}

func TestScenarioRecordFramesRoundtrip(t *testing.T) {
	out, err := Scenario{Attack: AttackStepSpoof, Duration: 40, RecordFrames: true}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Recording == nil || len(out.Recording.Frames) == 0 {
		t.Fatal("recording missing")
	}
	if out.Recording.Meta.Attack != string(AttackStepSpoof) {
		t.Errorf("meta = %+v", out.Recording.Meta)
	}
	var buf bytes.Buffer
	if err := out.Recording.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Offline re-monitoring reproduces the online violations exactly.
	vs := back.Monitor(CatalogConfig{IncludeGroundTruth: true})
	if len(vs) != len(out.Violations) {
		t.Errorf("offline %d vs online %d violations", len(vs), len(out.Violations))
	}
}

func TestSegmentizePublicAPI(t *testing.T) {
	vs := []Violation{
		{AssertionID: "A1", T: 20, Duration: 0.3},
		{AssertionID: "A5", T: 50, Duration: 10},
	}
	segs := Segmentize(vs, 5)
	if len(segs) != 2 {
		t.Fatalf("segments = %d", len(segs))
	}
	if !strings.Contains(SegmentReport(vs, 5), "incident 2") {
		t.Error("segment report missing incident 2")
	}
}

func TestMarkdownReportPublicAPI(t *testing.T) {
	out, err := Scenario{Attack: AttackFreeze, Duration: 40}.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := out.WriteMarkdownReport(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# ADAssure report", "## Detection", "gnss-freeze"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("markdown report missing %q", want)
		}
	}
}

func TestScenarioComplementaryLocalizer(t *testing.T) {
	out, err := Scenario{Localizer: "complementary", Duration: 30}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) != 0 {
		t.Errorf("clean complementary run raised %v", out.Violations)
	}
	if out.Sim.MaxTrueCTE > 1 {
		t.Errorf("complementary tracking CTE %.2f m", out.Sim.MaxTrueCTE)
	}
	if _, err := (Scenario{Localizer: "kalman9000"}).Run(); err == nil {
		t.Error("unknown localizer accepted")
	}
}

func TestWriteComparisonReportPublicAPI(t *testing.T) {
	base := Scenario{Attack: AttackDriftSpoof, Seed: 3, Duration: 50}
	before, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	guarded := base
	guarded.Guarded = true
	after, err := guarded.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteComparisonReport(&buf, "cmp", before, after); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# cmp", "| before | after |", "max |true CTE|"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("comparison missing %q", want)
		}
	}
	if err := WriteComparisonReport(&buf, "x", nil, after); err == nil {
		t.Error("nil before accepted")
	}
}

func TestRunMutationCampaignFacade(t *testing.T) {
	rep, err := RunMutationCampaign(MutationConfig{
		Tracks:   []string{"urban-loop"},
		Mutants:  []MutantSpec{{Op: "identity"}, {Op: "ctrl-gain-flip"}},
		Duration: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := rep.Score("ctrl-gain-flip"); !ok || !s.Killed {
		t.Errorf("gain-flip not killed: %+v", s)
	}
	if s, _ := rep.Score("identity"); s.Killed {
		t.Errorf("identity killed: %+v", s)
	}
	if len(DefaultMutantCatalog()) == 0 || len(MutantOps()) == 0 {
		t.Error("mutant catalog accessors empty")
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMutationReport(&buf)
	if err != nil || back.MutationScore != rep.MutationScore {
		t.Errorf("report round trip failed: %v", err)
	}
}
