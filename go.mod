module adassure

go 1.22
