# Developer / CI entry points. `make check` is the gate every change must
# pass: vet, build, the full test suite under the race detector (the
# harness fans scenario grids across goroutines, so -race exercises the
# concurrent paths on every run), the golden-file regression suite and a
# short fuzz smoke of every native fuzz target.

GO ?= go

# Per-target budget for the fuzz smoke pass.
FUZZTIME ?= 10s

.PHONY: check vet build test race bench bench-json tables golden golden-update fuzz-smoke stream-smoke fleet-smoke search-smoke

check: vet build race golden stream-smoke fleet-smoke search-smoke fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark snapshot: run the Benchmark* suite and write
# name / ns_per_op / allocs_per_op per benchmark to BENCH_5.json, so the
# perf trajectory accumulates as comparable artifacts across changes.
BENCHTIME ?= 1s
bench-json:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime $(BENCHTIME) ./... \
		| $(GO) run ./internal/tools/benchjson > BENCH_5.json

# Golden-file regression suite: every deterministic experiment rendering,
# the event-timeline render and the diagnosis report must match their
# committed snapshots byte-for-byte.
golden:
	$(GO) test ./internal/harness -run TestGolden
	$(GO) test ./internal/events -run TestGoldenTimelineT4
	$(GO) test ./internal/diagnosis -run TestGoldenReport
	$(GO) test ./internal/service -run TestStreamGoldenTranscript
	$(GO) test ./internal/obs -run TestPromGolden

# Rewrite the golden files after an intentional behaviour change; review
# the diff before committing.
golden-update:
	$(GO) test ./internal/harness -run TestGolden -update
	$(GO) test ./internal/events -run TestGoldenTimelineT4 -update
	$(GO) test ./internal/diagnosis -run TestGoldenReport -update
	$(GO) test ./internal/service -run TestStreamGoldenTranscript -update-stream
	$(GO) test ./internal/obs -run TestPromGolden -update

# Streaming-vs-batch equivalence gate: the differential suite feeding the
# six scenario tracks through the online session at several chunk sizes,
# plus the end-to-end streaming service tests (limits, drain, golden
# transcript).
stream-smoke:
	$(GO) test ./internal/stream -run 'TestStreamMatchesBatch|TestSessionStreamsViolations' -count=1
	$(GO) test ./internal/service -run 'TestStream' -count=1

# Fleet-tier gate: the consistent-hash ring, async job manager and
# persistent store package suites, plus the in-process coordinator /
# failover / store-restart / limits-validation service tests.
fleet-smoke:
	$(GO) test ./internal/shard ./internal/jobs ./internal/store -count=1
	$(GO) test ./internal/service -run 'TestJob|TestCoordinator|TestStoreTier|TestLimits' -count=1

# Adversarial-search gate: the optimizer property/determinism suite, the
# S1 frontier-retreat acceptance test and the /v1/search endpoint tests.
search-smoke:
	$(GO) test ./internal/search -count=1
	$(GO) test ./internal/harness -run 'TestSearchFrontierRetreat' -count=1
	$(GO) test ./internal/service -run 'TestSearch' -count=1

# Run each native fuzz target for $(FUZZTIME) on top of its committed seed
# corpus — a cheap crash/contract smoke, not a deep campaign.
fuzz-smoke:
	$(GO) test ./internal/geom -run '^$$' -fuzz FuzzSplineProject -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzTraceRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mutate -run '^$$' -fuzz FuzzMutantSpec -fuzztime $(FUZZTIME)
	$(GO) test ./internal/stream -run '^$$' -fuzz FuzzStreamNDJSON -fuzztime $(FUZZTIME)
	$(GO) test ./internal/search -run '^$$' -fuzz FuzzSearchSpec -fuzztime $(FUZZTIME)

# Regenerate every evaluation table/figure (see EXPERIMENTS.md).
tables:
	$(GO) run ./cmd/adassure-bench -seeds 3
