# Developer / CI entry points. `make check` is the gate every change must
# pass: vet, build, and the full test suite under the race detector (the
# harness fans scenario grids across goroutines, so -race exercises the
# concurrent paths on every run).

GO ?= go

.PHONY: check vet build test race bench tables

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every evaluation table/figure (see EXPERIMENTS.md).
tables:
	$(GO) run ./cmd/adassure-bench -seeds 3
