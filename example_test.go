package adassure_test

import (
	"context"
	"fmt"

	"adassure"
)

// The canonical workflow: run an attacked scenario, check detection, read
// the top diagnosis.
func ExampleScenario() {
	out, err := adassure.Scenario{
		Track:      adassure.TrackUrbanLoop,
		Controller: adassure.ControllerPurePursuit,
		Attack:     adassure.AttackStepSpoof,
		Seed:       1,
		Duration:   40,
	}.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println("detected after onset:", out.Detected(20))
	fmt.Println("top cause:", out.Hypotheses[0].Cause)
	// Output:
	// detected after onset: true
	// top cause: gnss-step-spoof
}

// Run executes one scenario end to end: simulator, monitor and diagnosis.
// A clean drive on the default stack raises no violations.
func ExampleScenario_Run() {
	out, err := adassure.Scenario{
		Track:      adassure.TrackUrbanLoop,
		Controller: adassure.ControllerStanley,
		Seed:       1,
		Duration:   30,
	}.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println("violations:", len(out.Violations))
	fmt.Println("detected:", out.Detected(0))
	// Output:
	// violations: 0
	// detected: false
}

// RunScenarios fans independent scenarios across a worker pool; results
// come back in input order, identical to running each sequentially.
func ExampleRunScenarios() {
	scns := make([]adassure.Scenario, 3)
	for i := range scns {
		scns[i] = adassure.Scenario{
			Attack:   adassure.AttackStepSpoof,
			Seed:     int64(i + 1),
			Duration: 30,
		}
	}
	outs, err := adassure.RunScenarios(context.Background(), scns, 0)
	if err != nil {
		panic(err)
	}
	for i, out := range outs {
		fmt.Printf("seed %d detected: %v\n", i+1, out.Detected(20))
	}
	// Output:
	// seed 1 detected: true
	// seed 2 detected: true
	// seed 3 detected: true
}

// Custom invariants compose with the built-in catalog through the DSL.
func ExampleBoundAssertion() {
	speedCap := adassure.BoundAssertion(
		"U1", "speed-cap", "target speed <= 10 m/s", adassure.SeverityWarning,
		func(f adassure.Frame) (float64, bool) { return f.TargetSpeed, true },
		0, 10,
	)
	m := adassure.NewMonitor()
	m.Add(speedCap, adassure.Debounce{K: 1, N: 1})
	m.Step(adassure.Frame{T: 1, Dt: 0.05, TargetSpeed: 12})
	for _, v := range m.Violations() {
		fmt.Printf("%s at t=%.2f\n", v.AssertionID, v.T)
	}
	// Output:
	// U1 at t=1.00
}

// Diagnose works directly on violation records — no simulator required.
func ExampleDiagnose() {
	record := []adassure.Violation{
		{AssertionID: "A5", T: 20.55, Duration: 30},
		{AssertionID: "A4", T: 51.0, Duration: 1},
	}
	hyps := adassure.Diagnose(record)
	fmt.Println(hyps[0].Cause)
	// Output:
	// gnss-dropout
}

// Segmentize untangles drives containing several incidents.
func ExampleSegmentize() {
	record := []adassure.Violation{
		{AssertionID: "A1", T: 20.0, Duration: 0.3},
		{AssertionID: "A10", T: 20.2, Duration: 1},
		{AssertionID: "A5", T: 50.0, Duration: 10},
	}
	for i, seg := range adassure.Segmentize(record, 5) {
		fmt.Printf("incident %d: %d episodes from t=%.1f\n", i+1, len(seg.Violations), seg.Start)
	}
	// Output:
	// incident 1: 2 episodes from t=20.0
	// incident 2: 1 episodes from t=50.0
}
