// Package adassure is the public API of ADAssure, an assertion-based
// debugging methodology for autonomous-driving control algorithms.
//
// The library provides, end to end:
//
//   - a deterministic closed-loop driving simulator (vehicle models,
//     sensors, tracks, localization fusion, four lateral controllers);
//   - an attack-injection framework over the GNSS/IMU/odometry channels;
//   - the ADAssure runtime-assertion catalog (A1–A15) with a k-of-n
//     debounced monitor engine and an assertion DSL for custom invariants;
//   - a root-cause diagnosis engine mapping violation signatures to ranked
//     hypotheses with rationales;
//   - an experiment harness regenerating every table and figure of the
//     evaluation.
//
// # Quick start
//
//	scn := adassure.Scenario{
//		Track:      adassure.TrackUrbanLoop,
//		Controller: adassure.ControllerPurePursuit,
//		Attack:     adassure.AttackDriftSpoof,
//		Seed:       1,
//	}
//	out, err := scn.Run()
//	if err != nil { ... }
//	fmt.Println(out.Report()) // violation timeline + ranked root causes
//
// The subsystems are exposed through type aliases so advanced users can
// compose them directly: see Monitor, Assertion, Campaign, SimConfig.
package adassure

import (
	"context"
	"fmt"
	"io"

	"adassure/internal/attacks"
	"adassure/internal/core"
	"adassure/internal/diagnosis"
	"adassure/internal/events"
	"adassure/internal/forensics"
	"adassure/internal/geom"
	"adassure/internal/harness"
	"adassure/internal/mutate"
	"adassure/internal/obs"
	"adassure/internal/offline"
	"adassure/internal/report"
	"adassure/internal/runner"
	"adassure/internal/search"
	"adassure/internal/sim"
	"adassure/internal/stream"
	"adassure/internal/telemetry"
	"adassure/internal/trace"
	"adassure/internal/track"
	"adassure/internal/vehicle"
)

// Re-exported core types: the assertion framework.
type (
	// Frame is one control-period signal sample consumed by the monitor.
	Frame = core.Frame
	// Limits scales assertion thresholds to a platform envelope.
	Limits = core.Limits
	// Assertion is one runtime invariant.
	Assertion = core.Assertion
	// Outcome is an assertion evaluation result.
	Outcome = core.Outcome
	// Monitor evaluates assertions over the frame stream.
	Monitor = core.Monitor
	// Violation is one raised assertion episode.
	Violation = core.Violation
	// Debounce is the k-of-n raise policy.
	Debounce = core.Debounce
	// CatalogConfig tunes the built-in catalog.
	CatalogConfig = core.CatalogConfig
	// Severity grades violations.
	Severity = core.Severity
)

// Re-exported severities.
const (
	SeverityInfo     = core.Info
	SeverityWarning  = core.Warning
	SeverityCritical = core.Critical
)

// Re-exported simulation and diagnosis types.
type (
	// SimConfig is the full simulation configuration for direct use.
	SimConfig = sim.Config
	// SimResult is a simulation outcome.
	SimResult = sim.Result
	// GuardConfig configures the defended stack.
	GuardConfig = sim.GuardConfig
	// Campaign is an attack configuration.
	Campaign = attacks.Campaign
	// AttackWindow is an attack activation interval.
	AttackWindow = attacks.Window
	// Hypothesis is a ranked root-cause candidate.
	Hypothesis = diagnosis.Hypothesis
	// Cause identifies a diagnosed root cause.
	Cause = diagnosis.Cause
	// VehicleParams describes the simulated platform.
	VehicleParams = vehicle.Params
	// Track is a reference route with a speed limit.
	Track = track.Track
	// SpeedZone restricts speed over an arc-length range of a track.
	SpeedZone = track.SpeedZone
	// Waypoint is a planar route point for custom tracks.
	Waypoint = geom.Vec2
	// Trace is the recorded signal time-series of a run.
	Trace = trace.Trace
	// Table is a rendered experiment result.
	Table = harness.Table
	// ExperimentOptions configures experiment regeneration.
	ExperimentOptions = harness.Options
	// Recording is a persisted frame stream for offline re-monitoring.
	Recording = offline.Recording
	// RecordingMeta is the recording provenance.
	RecordingMeta = offline.Meta
	// StreamConfig configures an online monitoring session.
	StreamConfig = stream.Config
	// StreamSession is an incremental monitor over an unbounded frame
	// stream (see internal/stream): bounded memory via a flight-recorder
	// ring, a rolling diagnosis re-ranked on every closed violation
	// episode, and typed events to an optional sink — with results
	// identical to batch monitoring of the same frames.
	StreamSession = stream.Session
	// StreamEvent is one typed event emitted by a streaming session
	// (violation opened/closed, diagnosis, heartbeat, frame rejected,
	// session closed).
	StreamEvent = stream.Event
	// StreamStats is a concurrent-safe streaming-session counter
	// snapshot.
	StreamStats = stream.Stats
	// Registry is the runtime-metrics registry (see internal/obs): atomic
	// counters, gauges and fixed-bucket latency histograms the sim step
	// loop, assertion monitor and scenario runner report into. Attach one
	// via Scenario.Obs, BatchOptions.Obs or ExperimentOptions.Obs; a nil
	// registry costs nothing.
	Registry = obs.Registry
	// MetricsSnapshot is a point-in-time JSON-serialisable registry view
	// with p50/p95/p99 per histogram.
	MetricsSnapshot = obs.Snapshot
	// EventRecorder is the structured event timeline — the "flight
	// recorder" (see internal/events): typed spans and instants for
	// scenario lifecycle, attack windows, violation episodes, guard
	// fallback, diagnosis hypotheses and runner job spans, with an
	// optional bounded ring buffer so long runs stay O(1) memory. Attach
	// one via Scenario.Events, BatchOptions.Events or
	// ExperimentOptions.Events; a nil recorder costs nothing.
	EventRecorder = events.Recorder
	// Event is one recorded timeline entry.
	Event = events.Event
	// EventLog is the serialised form of a recorded event stream.
	EventLog = events.Log
	// ForensicBundle is one violation-triggered debugging artifact: the
	// evidence-window trace slice, the in-window frames, the attack state,
	// the assertion's eval history and the top diagnosis hypotheses (see
	// internal/forensics).
	ForensicBundle = forensics.Bundle
	// AttackInfo snapshots campaign state inside a forensic bundle.
	AttackInfo = forensics.AttackInfo
	// TraceSpan is one span of a distributed request trace (see
	// internal/telemetry). The serving layer threads its per-request span
	// into Scenario.Span so the run's sim+monitor and diagnosis phases
	// appear as children in the request's trace; a nil span costs nothing.
	TraceSpan = telemetry.Span
)

// NewEventRecorder builds an event recorder. capacity > 0 bounds it to
// the newest events (flight-recorder mode); capacity <= 0 keeps all.
func NewEventRecorder(capacity int) *EventRecorder { return events.NewRecorder(capacity) }

// WriteEventTimeline renders an event stream as a plain-text timeline.
func WriteEventTimeline(w io.Writer, evs []Event) error { return events.WriteTimeline(w, evs) }

// WritePerfetto exports an event stream in Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WritePerfetto(w io.Writer, evs []Event) error { return events.WritePerfetto(w, evs) }

// ReadEventLog parses an events file written by EventRecorder.WriteJSON.
func ReadEventLog(r io.Reader) (EventLog, error) { return events.ReadJSON(r) }

// ReadForensicBundle parses a bundle file written by Bundle.WriteJSON.
func ReadForensicBundle(r io.Reader) (*ForensicBundle, error) { return forensics.ReadJSON(r) }

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewCatalogMonitor builds a Monitor loaded with the built-in assertion
// catalog A1–A15.
func NewCatalogMonitor(cfg CatalogConfig) *Monitor { return core.NewCatalogMonitor(cfg) }

// NewMonitor builds an empty Monitor for custom assertion sets.
func NewMonitor() *Monitor { return core.NewMonitor() }

// NewStreamSession opens an online monitoring session for incremental
// frame ingest. Feed it typed frames with Ingest, NDJSON lines with
// IngestLine, or a whole reader with Consume; Close flushes the final
// session-closed event and returns the stats.
func NewStreamSession(cfg StreamConfig) (*StreamSession, error) { return stream.New(cfg) }

// NewAssertion wraps an evaluation closure as a custom Assertion; see also
// the DSL helpers BoundAssertion, RateAssertion, ConsistencyAssertion.
func NewAssertion(id, name, desc string, sev Severity, eval func(Frame) Outcome, reset func()) Assertion {
	return core.NewAssertion(id, name, desc, sev, eval, reset)
}

// BoundAssertion asserts lo ≤ extract(frame) ≤ hi.
func BoundAssertion(id, name, desc string, sev Severity, extract func(Frame) (float64, bool), lo, hi float64) Assertion {
	return core.Bound(id, name, desc, sev, core.Extractor(extract), lo, hi)
}

// RateAssertion asserts |d extract/dt| ≤ maxRate.
func RateAssertion(id, name, desc string, sev Severity, extract func(Frame) (float64, bool), maxRate float64) Assertion {
	return core.Rate(id, name, desc, sev, core.Extractor(extract), maxRate)
}

// ConsistencyAssertion asserts |a − b| ≤ tol whenever both apply.
func ConsistencyAssertion(id, name, desc string, sev Severity, a, b func(Frame) (float64, bool), tol float64) Assertion {
	return core.Consistency(id, name, desc, sev, core.Extractor(a), core.Extractor(b), nil, tol)
}

// Diagnose ranks root-cause hypotheses for a violation record.
func Diagnose(vs []Violation) []Hypothesis { return diagnosis.Diagnose(vs) }

// DiagnosisReport renders the human-readable debugging report.
func DiagnosisReport(vs []Violation, topN int) string { return diagnosis.Report(vs, topN) }

// Segment is one temporally-coherent incident with its own diagnosis.
type Segment = diagnosis.Segment

// Segmentize splits a violation record into incident segments separated by
// quiet gaps (default 5 s) and diagnoses each — for drives containing
// multiple incidents.
func Segmentize(vs []Violation, quietGap float64) []Segment {
	return diagnosis.Segmentize(vs, diagnosis.SegmentOptions{QuietGap: quietGap})
}

// SegmentReport renders the multi-incident debugging report.
func SegmentReport(vs []Violation, quietGap float64) string {
	return diagnosis.SegmentReport(vs, diagnosis.SegmentOptions{QuietGap: quietGap})
}

// TrackName selects a built-in test route.
type TrackName string

// Built-in tracks.
const (
	TrackStraight         TrackName = "straight"
	TrackCircle           TrackName = "circle"
	TrackSCurve           TrackName = "s-curve"
	TrackFigureEight      TrackName = "figure-eight"
	TrackDoubleLaneChange TrackName = "double-lane-change"
	TrackUrbanLoop        TrackName = "urban-loop"
	TrackHairpin          TrackName = "hairpin"
)

// ControllerName selects a built-in lateral controller.
type ControllerName string

// Built-in controllers.
const (
	ControllerPurePursuit ControllerName = "pure-pursuit"
	ControllerStanley     ControllerName = "stanley"
	ControllerPIDLateral  ControllerName = "pid-lateral"
	ControllerLQRMPC      ControllerName = "lqr-mpc"
)

// AttackName selects a built-in attack class with canonical parameters.
type AttackName string

// Built-in attacks.
const (
	AttackNone           AttackName = "none"
	AttackStepSpoof      AttackName = "gnss-step-spoof"
	AttackDriftSpoof     AttackName = "gnss-drift-spoof"
	AttackReplay         AttackName = "gnss-replay"
	AttackFreeze         AttackName = "gnss-freeze"
	AttackDelay          AttackName = "gnss-delay"
	AttackDropout        AttackName = "gnss-dropout"
	AttackNoiseInflation AttackName = "gnss-noise-inflation"
	AttackMeander        AttackName = "gnss-meander"
	AttackIMUHeadingBias AttackName = "imu-heading-bias"
	AttackOdomScale      AttackName = "odom-scale"
	AttackStuckSteer     AttackName = "actuator-stuck-steer"
	AttackSteerOffset    AttackName = "actuator-steer-offset"
)

// AttackNames lists the built-in attack classes in stable order.
func AttackNames() []AttackName {
	out := []AttackName{}
	for _, c := range attacks.StandardClasses() {
		out = append(out, AttackName(c))
	}
	return out
}

// Scenario is the high-level entry point: one named configuration that can
// be run with a single call.
type Scenario struct {
	// Track is the route (default TrackUrbanLoop).
	Track TrackName
	// CustomTrack overrides Track with a user-built route (e.g. from
	// TrackFromWaypoints, optionally with zones).
	CustomTrack *Track
	// Controller is the lateral controller (default ControllerPurePursuit).
	Controller ControllerName
	// Attack is the injected attack class (default AttackNone).
	Attack AttackName
	// AttackStart/AttackEnd bound the attack window (defaults 20/50 s).
	AttackStart, AttackEnd float64
	// Seed drives all stochastic components (default 1).
	Seed int64
	// Duration is the simulated time in seconds (default 70).
	Duration float64
	// SpeedLimit of the route in m/s (default 6).
	SpeedLimit float64
	// Guarded enables the defended stack (gate + assertion-triggered
	// fallback).
	Guarded bool
	// ThresholdScale loosens (>1) or tightens (<1) the catalog thresholds.
	ThresholdScale float64
	// RecordFrames captures the frame stream into the result's Recording
	// for offline re-monitoring.
	RecordFrames bool
	// Localizer selects the fusion stack: "ekf" (default) or
	// "complementary" (fixed-gain filter without innovation gating).
	Localizer string
	// Obs, when non-nil, collects runtime metrics for the run: control-step
	// count and latency histogram, achieved steps/s, and the per-assertion
	// monitoring cost (eval latency, eval and violation counts). Read the
	// results with Registry.Snapshot or Registry.WriteJSON. Nil (the
	// default) adds no overhead.
	Obs *Registry
	// Events, when non-nil, records the run's structured event timeline:
	// the scenario lifecycle span, the attack activation window, guard
	// fallback intervals, every violation episode and the top diagnosis
	// hypotheses. Render with WriteEventTimeline, export with
	// WritePerfetto, persist with EventRecorder.WriteJSON. Nil (the
	// default) adds no overhead.
	Events *EventRecorder
	// EventScope prefixes every event track of the run (e.g. "s3/"),
	// keeping tracks distinct when several scenarios share one recorder;
	// RunScenarioBatch assigns per-index scopes automatically.
	EventScope string
	// Assertions, when non-empty, restricts the monitor to the named
	// catalog assertion IDs (e.g. "A1", "A3", "A12"); unknown IDs are an
	// error. Empty (the default) loads the full catalog. Used by the
	// serving layer's per-request catalog selection.
	Assertions []string
	// Span, when non-nil, is the parent span the run's phases report
	// under: RunContext opens one child span covering the simulation +
	// monitoring loop and one covering diagnosis. Phase spans are
	// constant-count per run (never per step), and a nil span (the
	// default) is a single-branch no-op.
	Span *TraceSpan
}

// Outcome of a Scenario run.
type ScenarioResult struct {
	// Sim is the raw simulation result, including the signal trace.
	Sim *SimResult
	// Violations is the monitor's episode record.
	Violations []Violation
	// Hypotheses is the ranked diagnosis.
	Hypotheses []Hypothesis
	// Recording holds the frame stream when Scenario.RecordFrames was set.
	Recording *Recording

	scenario Scenario
}

// Report renders the combined debugging report.
func (r *ScenarioResult) Report() string {
	return diagnosis.Report(r.Violations, 3)
}

// WriteMarkdownReport renders the full Markdown debugging report (scenario
// metadata, run summary, detection, timeline, diagnosis, signal summary).
func (r *ScenarioResult) WriteMarkdownReport(w io.Writer) error {
	onset := -1.0
	if r.scenario.Attack != AttackNone {
		onset = r.scenario.AttackStart
	}
	return report.Write(w, report.Input{
		Title: fmt.Sprintf("ADAssure report — %s on %s (%s, seed %d)",
			r.scenario.Attack, r.scenario.Track, r.scenario.Controller, r.scenario.Seed),
		Scenario: map[string]string{
			"track":      string(r.scenario.Track),
			"controller": string(r.scenario.Controller),
			"attack":     string(r.scenario.Attack),
			"seed":       fmt.Sprintf("%d", r.scenario.Seed),
			"guarded":    fmt.Sprintf("%v", r.scenario.Guarded),
		},
		Result:      r.Sim,
		Violations:  r.Violations,
		AttackOnset: onset,
	})
}

// ForensicBundles builds one self-contained debugging bundle per violation
// episode of the run: a ±halfWindow trace slice around the violation
// (extended back to the episode's first breach), the in-window frames (when
// Scenario.RecordFrames was set), the attack state, the assertion's eval
// history (when Scenario.Obs was set) and the top diagnosis hypotheses.
// halfWindow <= 0 uses the 2 s default. Persist each with
// ForensicBundle.WriteJSON; re-read with ReadForensicBundle.
func (r *ScenarioResult) ForensicBundles(halfWindow float64) []ForensicBundle {
	var attack *AttackInfo
	if r.scenario.Attack != AttackNone {
		attack = &AttackInfo{
			Name:  string(r.scenario.Attack),
			Class: string(r.scenario.Attack),
			Start: r.scenario.AttackStart,
			End:   r.scenario.AttackEnd,
		}
	}
	return forensics.Build(forensics.Input{
		Scenario: map[string]string{
			"track":      string(r.scenario.Track),
			"controller": string(r.scenario.Controller),
			"attack":     string(r.scenario.Attack),
			"seed":       fmt.Sprintf("%d", r.scenario.Seed),
			"guarded":    fmt.Sprintf("%v", r.scenario.Guarded),
		},
		Violations: r.Violations,
		Trace:      r.Sim.Trace,
		Frames:     r.Sim.Frames,
		Attack:     attack,
		Obs:        r.scenario.Obs,
		Hypotheses: r.Hypotheses,
		HalfWindow: halfWindow,
	})
}

// Detected reports whether any violation was raised at or after t.
func (r *ScenarioResult) Detected(after float64) bool {
	for _, v := range r.Violations {
		if v.T >= after {
			return true
		}
	}
	return false
}

// Run executes the scenario.
func (s Scenario) Run() (*ScenarioResult, error) {
	return s.RunContext(context.Background())
}

// RunContext executes the scenario under ctx: cancelling it (or hitting
// its deadline) aborts the simulation within one control step and returns
// an error wrapping ctx.Err(). nil means context.Background().
func (s Scenario) RunContext(ctx context.Context) (*ScenarioResult, error) {
	if s.Track == "" {
		s.Track = TrackUrbanLoop
	}
	if s.Controller == "" {
		s.Controller = ControllerPurePursuit
	}
	if s.Attack == "" {
		s.Attack = AttackNone
	}
	if s.AttackStart == 0 {
		s.AttackStart = 20
	}
	if s.AttackEnd == 0 {
		s.AttackEnd = 50
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Duration == 0 {
		s.Duration = 70
	}
	if s.SpeedLimit == 0 {
		s.SpeedLimit = 6
	}

	tr := s.CustomTrack
	if tr == nil {
		cat, err := track.Catalog(s.SpeedLimit)
		if err != nil {
			return nil, err
		}
		var ok bool
		tr, ok = cat[string(s.Track)]
		if !ok {
			return nil, fmt.Errorf("adassure: unknown track %q (have %v)", s.Track, track.Names(cat))
		}
	}

	var camp Campaign
	if s.Attack != AttackNone {
		var err error
		camp, err = attacks.Standard(attacks.Class(s.Attack), attacks.Window{Start: s.AttackStart, End: s.AttackEnd}, s.Seed)
		if err != nil {
			return nil, err
		}
	}

	mon, err := buildCatalogMonitor(core.CatalogConfig{
		ThresholdScale:     s.ThresholdScale,
		IncludeGroundTruth: true,
	}, s.Assertions)
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{
		Context:      ctx,
		Track:        tr,
		Controller:   string(s.Controller),
		Seed:         s.Seed,
		Duration:     s.Duration,
		Campaign:     camp,
		Monitor:      mon,
		RecordFrames: s.RecordFrames,
		Localizer:    s.Localizer,
		Obs:          s.Obs,
		Events:       s.Events,
		EventScope:   s.EventScope,
	}
	if s.Guarded {
		cfg.Guard = sim.GuardConfig{Enabled: true, AssertionTrigger: true}
	}
	simSpan := s.Span.StartChild("phase.sim+monitor")
	res, err := sim.Run(cfg)
	if err != nil {
		simSpan.End()
		return nil, err
	}
	vs := mon.Violations()
	if simSpan.Enabled() {
		simSpan.SetInt("steps", int64(res.Steps))
		simSpan.SetInt("violations", int64(len(vs)))
	}
	simSpan.End()
	diagSpan := s.Span.StartChild("phase.diagnosis")
	hyps := diagnosis.Diagnose(vs)
	if diagSpan.Enabled() {
		diagSpan.SetInt("hypotheses", int64(len(hyps)))
	}
	diagSpan.End()
	out := &ScenarioResult{
		Sim:        res,
		Violations: vs,
		Hypotheses: hyps,
		scenario:   s,
	}
	if s.Events != nil && len(vs) > 0 {
		diagnosis.RecordHypotheses(s.Events, s.EventScope, res.SimTime, out.Hypotheses, 3)
	}
	if s.RecordFrames {
		out.Recording = &Recording{
			Meta: RecordingMeta{
				Track:      string(s.Track),
				Controller: string(s.Controller),
				Attack:     string(s.Attack),
				Seed:       s.Seed,
				Duration:   s.Duration,
			},
			Frames: res.Frames,
		}
	}
	return out, nil
}

// buildCatalogMonitor loads the built-in catalog, optionally restricted
// to an explicit assertion-ID subset. IDs are matched against the catalog
// the config produces, so requesting e.g. "A12" without ground truth
// enabled is an error rather than a silent no-op.
func buildCatalogMonitor(cfg CatalogConfig, ids []string) (*Monitor, error) {
	m, err := core.NewCatalogMonitorWith(cfg, ids)
	if err != nil {
		return nil, fmt.Errorf("adassure: %w", err)
	}
	return m, nil
}

// RunScenarios executes independent scenarios concurrently across a
// worker pool of the given size (workers <= 0 means runtime.GOMAXPROCS)
// and returns the results in scenario order. Each scenario builds its own
// simulator, sensors and monitor, so results are identical to calling
// Run sequentially — only wall-clock time changes. Cancelling ctx (nil
// means context.Background) stops undispatched scenarios; a scenario that
// fails or panics cancels the rest, and the lowest-indexed failure is
// returned alongside the partial results.
func RunScenarios(ctx context.Context, scenarios []Scenario, workers int) ([]*ScenarioResult, error) {
	return RunScenarioBatch(BatchOptions{Workers: workers, Context: ctx}, scenarios)
}

// BatchOptions configures RunScenarioBatch.
type BatchOptions struct {
	// Workers is the pool size (<= 0 means runtime.GOMAXPROCS).
	Workers int
	// Context cancels undispatched scenarios (nil means Background).
	Context context.Context
	// Obs, when non-nil, collects pool metrics (jobs completed/failed,
	// queue wait, per-job duration) and is attached to every scenario that
	// does not already carry its own registry, aggregating sim and monitor
	// metrics across the batch. The registry is goroutine-safe.
	Obs *Registry
	// Events, when non-nil, records the runner's per-worker job spans and
	// is attached to every scenario that does not already carry its own
	// recorder; such scenarios get track scope "s<index>/" so their
	// timelines stay distinct on the shared recorder. The recorder is
	// goroutine-safe.
	Events *EventRecorder
	// Progress, when non-nil, receives (done, total) after each scenario.
	Progress func(done, total int)
}

// RunScenarioBatch is RunScenarios with explicit options — use it to attach
// a metrics Registry or a progress callback to the batch.
func RunScenarioBatch(opts BatchOptions, scenarios []Scenario) ([]*ScenarioResult, error) {
	return runner.Map(runner.Options{
		Workers:    opts.Workers,
		Context:    opts.Context,
		OnProgress: opts.Progress,
		Obs:        opts.Obs,
		Events:     opts.Events,
	}, scenarios,
		func(ctx context.Context, i int, s Scenario) (*ScenarioResult, error) {
			if s.Obs == nil {
				s.Obs = opts.Obs
			}
			if s.Events == nil && opts.Events != nil {
				s.Events = opts.Events
				s.EventScope = fmt.Sprintf("s%d/", i)
			}
			// The pool context reaches the simulator, so cancelling the
			// batch aborts in-flight simulations, not just undispatched
			// ones.
			return s.RunContext(ctx)
		})
}

// ReadRecording parses a recording previously persisted with
// Recording.Write.
func ReadRecording(r io.Reader) (*Recording, error) { return offline.Read(r) }

// WriteComparisonReport renders a before/after Markdown comparison of two
// runs of the same scenario — one iteration of the debug loop.
func WriteComparisonReport(w io.Writer, title string, before, after *ScenarioResult) error {
	if before == nil || after == nil {
		return fmt.Errorf("adassure: comparison needs both results")
	}
	onset := -1.0
	if before.scenario.Attack != AttackNone {
		onset = before.scenario.AttackStart
	}
	return report.WriteCompare(w, report.CompareInput{
		Title:       title,
		BeforeLabel: "before",
		AfterLabel:  "after",
		Before:      before.Sim,
		After:       after.Sim,
		BeforeViol:  before.Violations,
		AfterViol:   after.Violations,
		AttackOnset: onset,
	})
}

// BuiltinTrack constructs one of the built-in routes with the given speed
// limit, for use with SimConfig directly.
func BuiltinTrack(name TrackName, speedLimit float64) (*Track, error) {
	cat, err := track.Catalog(speedLimit)
	if err != nil {
		return nil, err
	}
	tr, ok := cat[string(name)]
	if !ok {
		return nil, fmt.Errorf("adassure: unknown track %q (have %v)", name, track.Names(cat))
	}
	return tr, nil
}

// TrackFromWaypoints builds a custom deployment route through the given
// waypoints (splined; closed loops must not repeat the first point). Use
// Track.WithZones to add per-segment speed restrictions.
func TrackFromWaypoints(name string, waypoints []Waypoint, closed bool, speedLimit float64) (*Track, error) {
	return track.FromWaypoints(name, waypoints, closed, speedLimit)
}

// StandardCampaign builds the canonical attack campaign for a class over
// the given window, for use with SimConfig directly.
func StandardCampaign(name AttackName, window AttackWindow, seed int64) (Campaign, error) {
	return attacks.Standard(attacks.Class(name), window, seed)
}

// ShuttleParams returns the default low-speed shuttle platform parameters.
func ShuttleParams() VehicleParams { return vehicle.ShuttleParams() }

// SedanParams returns the faster passenger-car parameter set.
func SedanParams() VehicleParams { return vehicle.SedanParams() }

// RunSim executes a fully custom simulation configuration.
func RunSim(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// DefaultLimits derives assertion limits from a vehicle envelope.
func DefaultLimits(p VehicleParams) Limits {
	return core.DefaultLimits(p.MaxSpeed, p.MaxLatAccel, p.MaxJerk, p.MaxSteer, p.MaxSteerRate, p.Wheelbase)
}

// Mutation-testing types (see internal/mutate): the engine that scores the
// assertion catalog by which injected faults each assertion kills.
type (
	// MutantSpec identifies one mutant: an operator plus one parameter.
	MutantSpec = mutate.Spec
	// MutantKind classifies where a mutant interposes (controller, sensor,
	// actuator).
	MutantKind = mutate.Kind
	// MutantScore aggregates one mutant's outcome across the campaign grid.
	MutantScore = mutate.MutantScore
	// MutationConfig describes one mutation campaign.
	MutationConfig = mutate.Config
	// MutationReport is a campaign outcome: kill matrix, per-mutant
	// detection latency and the ranked surviving-mutant list.
	MutationReport = mutate.Report
)

// RunMutationCampaign executes a mutation-testing campaign: one pristine
// baseline per track, then exactly one mutant per run over the mutant ×
// track grid, fanned across a worker pool. The report is deterministic in
// the config for any worker count. The zero-value config runs the default
// grid (DefaultMutantCatalog on urban-loop + hairpin, pure-pursuit,
// seed 1, 60 s per run).
func RunMutationCampaign(cfg MutationConfig) (*MutationReport, error) { return mutate.Run(cfg) }

// DefaultMutantCatalog returns the default mutant grid: the identity
// guard, every controller mutant, then the sensor/actuator fault models.
func DefaultMutantCatalog() []MutantSpec { return mutate.DefaultCatalog() }

// MutantOps lists every mutation-operator name in sorted order.
func MutantOps() []string { return mutate.OpNames() }

// ReadMutationReport parses a report written by MutationReport.WriteJSON.
func ReadMutationReport(r io.Reader) (*MutationReport, error) { return mutate.ReadJSON(r) }

// Adversarial-search types (see internal/search): the black-box optimizer
// that maps, per track × channel, the minimal attack magnitude that evades
// the assertion catalog.
type (
	// SearchSpec is one attack channel: an operator name plus optional
	// magnitude range and activation window.
	SearchSpec = search.Spec
	// SearchWindow is a half-open [Start, End) activation window in
	// simulated seconds.
	SearchWindow = search.Window
	// SearchConfig describes one adversarial-search campaign.
	SearchConfig = search.Config
	// SearchReport is a campaign outcome: the evasion frontier with one
	// point (and minimality certificate) per track × channel.
	SearchReport = search.Report
	// SearchFrontierPoint is one converged frontier point: the largest
	// undetected magnitude and the smallest detected neighbor above it.
	SearchFrontierPoint = search.FrontierPoint
)

// RunSearch executes an adversarial-search campaign: a clean baseline per
// track, then a deterministic descent (or cross-entropy search) toward the
// minimal evading attack per channel, with candidate probes fanned across a
// worker pool. The report is deterministic in the config for any worker
// count. The zero-value config searches the default monotone channels on
// urban-loop + hairpin with pure-pursuit at seed 1.
func RunSearch(cfg SearchConfig) (*SearchReport, error) { return search.Run(cfg) }

// DefaultSearchChannels returns the default search space: the monotone
// sensor/controller channels over their full registry magnitude ranges.
func DefaultSearchChannels() []SearchSpec { return search.DefaultChannels() }

// ReadSearchReport parses a report written by SearchReport.WriteJSON.
func ReadSearchReport(r io.Reader) (*SearchReport, error) { return search.ReadJSON(r) }

// Experiments returns the evaluation experiment registry (T1–T6, F1–F6);
// each entry regenerates one table or figure of the paper reproduction.
func Experiments() []harness.Experiment { return harness.All() }

// RunExperiment regenerates one experiment by ID (e.g. "T1", "F4"). The
// scenario grid behind the experiment fans out across
// ExperimentOptions.Workers goroutines (default GOMAXPROCS); the rendered
// table is byte-identical for any worker count.
func RunExperiment(id string, opts ExperimentOptions) (*Table, error) {
	e, err := harness.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(opts)
}
