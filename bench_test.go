// Benchmark harness: one testing.B benchmark per evaluation table and
// figure (T1–T6, F1–F6), each regenerating the experiment from fresh
// simulation runs, plus micro-benchmarks of the hot paths (monitor step,
// EKF update, controller step, full closed-loop simulation second).
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The per-experiment benchmarks use Quick options with a single seed so one
// iteration stays in the seconds range; `cmd/adassure-bench` regenerates
// the full-fidelity tables.
package adassure

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"adassure/internal/attacks"
	"adassure/internal/control"
	"adassure/internal/core"
	"adassure/internal/fusion"
	"adassure/internal/geom"
	"adassure/internal/sensors"
	"adassure/internal/sim"
	"adassure/internal/track"
	"adassure/internal/vehicle"
)

func benchOpts() ExperimentOptions {
	return ExperimentOptions{Quick: true, Seeds: 1}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := RunExperiment(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := tb.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per table -------------------------------------------

func BenchmarkTable1DetectionMatrix(b *testing.B)      { benchExperiment(b, "T1") }
func BenchmarkTable2DetectionLatency(b *testing.B)     { benchExperiment(b, "T2") }
func BenchmarkTable3DetectionRates(b *testing.B)       { benchExperiment(b, "T3") }
func BenchmarkTable4DiagnosisAccuracy(b *testing.B)    { benchExperiment(b, "T4") }
func BenchmarkTable5ControllerComparison(b *testing.B) { benchExperiment(b, "T5") }
func BenchmarkTable6DebugLoop(b *testing.B)            { benchExperiment(b, "T6") }

// --- one benchmark per figure --------------------------------------------

func BenchmarkFigure1CrossTrackSeries(b *testing.B)  { benchExperiment(b, "F1") }
func BenchmarkFigure2Trajectory(b *testing.B)        { benchExperiment(b, "F2") }
func BenchmarkFigure3LatencyCDF(b *testing.B)        { benchExperiment(b, "F3") }
func BenchmarkFigure4MonitorOverhead(b *testing.B)   { benchExperiment(b, "F4") }
func BenchmarkFigure5ThresholdAblation(b *testing.B) { benchExperiment(b, "F5") }
func BenchmarkFigure6DebounceAblation(b *testing.B)  { benchExperiment(b, "F6") }

// --- extension experiments -------------------------------------------------

func BenchmarkExtensionX1GuardAblation(b *testing.B)      { benchExperiment(b, "X1") }
func BenchmarkExtensionX2DriftRateSweep(b *testing.B)     { benchExperiment(b, "X2") }
func BenchmarkExtensionX3StepMagnitudeSweep(b *testing.B) { benchExperiment(b, "X3") }
func BenchmarkExtensionX4AssertionUtility(b *testing.B)   { benchExperiment(b, "X4") }
func BenchmarkExtensionX5FusionAblation(b *testing.B)     { benchExperiment(b, "X5") }

// --- parallel harness path -------------------------------------------------

// BenchmarkHarnessWorkers compares the experiment harness at workers=1
// (the sequential path) against workers=GOMAXPROCS on the T1 detection
// matrix — the headline number for the internal/runner scenario pool. The
// rendered table is byte-identical at every worker count (see
// internal/harness TestParallelDeterminism), so the two sub-benchmarks
// measure the same work; only wall-clock changes. On a single-core
// machine the two are expected to tie.
func BenchmarkHarnessWorkers(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := benchOpts()
			opts.Workers = workers
			for i := 0; i < b.N; i++ {
				tb, err := RunExperiment("T1", opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := tb.Render(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunScenarios measures the public parallel scenario batch API
// on an 8-scenario attack sweep, workers=1 vs workers=GOMAXPROCS.
func BenchmarkRunScenarios(b *testing.B) {
	scns := make([]Scenario, 8)
	for i := range scns {
		scns[i] = Scenario{
			Attack:   AttackStepSpoof,
			Seed:     int64(i + 1),
			Duration: 30,
		}
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunScenarios(context.Background(), scns, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- micro-benchmarks of the hot paths -----------------------------------

// BenchmarkMonitorStepFullCatalog measures the runtime-monitoring cost per
// control frame with the complete catalog loaded — the number behind the
// "negligible overhead" claim.
func BenchmarkMonitorStepFullCatalog(b *testing.B) {
	mon := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true})
	f := core.Frame{
		T: 0, Dt: 0.05, EstSpeed: 5, GNSSValid: true, GNSSAge: 0.02,
		GNSSSpeed: 5, OdomSpeed: 5, NIS: 1, NISFresh: true, TrueSpeed: 5,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.T += 0.05
		f.EstX += 0.25
		f.GNSSX = f.EstX
		f.Progress += 0.25
		mon.Step(f)
	}
}

// BenchmarkEKFPredictUpdate measures one IMU predict plus one GNSS update.
func BenchmarkEKFPredictUpdate(b *testing.B) {
	f := fusion.NewEKF(fusion.EKFConfig{}, 0, geom.NewPose(0, 0, 0), 5)
	t := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t += 0.01
		f.PredictIMU(sensors.IMUReading{T: t, YawRate: 0.01, Valid: true})
		f.UpdateGNSS(sensors.GNSSFix{T: t, Pos: geom.V(5*t, 0), Valid: true})
	}
}

// BenchmarkControllerSteer measures one lateral control step per built-in
// controller on the urban loop.
func BenchmarkControllerSteer(b *testing.B) {
	tr, err := track.UrbanLoop(6)
	if err != nil {
		b.Fatal(err)
	}
	for _, ctrl := range control.All(vehicle.ShuttleParams()) {
		b.Run(ctrl.Name(), func(b *testing.B) {
			est := fusion.Estimate{Pose: geom.NewPose(10, 0.5, 0.05), Speed: 5}
			for i := 0; i < b.N; i++ {
				ctrl.Steer(est, tr.Path(), 0.05)
			}
		})
	}
}

// BenchmarkPathProject measures point-to-path projection on the urban-loop
// spline lattice (the geometry hot path of every control step).
func BenchmarkPathProject(b *testing.B) {
	tr, err := track.UrbanLoop(6)
	if err != nil {
		b.Fatal(err)
	}
	p := geom.V(45, 33)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Path().Project(p)
	}
}

// BenchmarkSimSecond measures one simulated second of the full closed loop
// (physics + sensors + fusion + control + monitor) — the end-to-end
// throughput number.
func BenchmarkSimSecond(b *testing.B) {
	tr, err := track.UrbanLoop(6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true})
		_, err := sim.Run(sim.Config{
			Track: tr, Controller: "pure-pursuit", Seed: 1,
			Duration: 1, Monitor: mon, DisableTrace: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepWithObs compares the full closed loop with and without a
// metrics registry attached — the "observability is ≤5% overhead" number
// from DESIGN.md §9. The obs=off case exercises the nil-registry path the
// instrumented code always runs through; obs=on adds the step histogram,
// per-assertion timing and the snapshot-ready counters.
func BenchmarkStepWithObs(b *testing.B) {
	tr, err := track.UrbanLoop(6)
	if err != nil {
		b.Fatal(err)
	}
	for _, attach := range []bool{false, true} {
		name := "obs=off"
		if attach {
			name = "obs=on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var reg *Registry
				if attach {
					reg = NewRegistry()
				}
				mon := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true})
				_, err := sim.Run(sim.Config{
					Track: tr, Controller: "pure-pursuit", Seed: 1,
					Duration: 1, Monitor: mon, DisableTrace: true, Obs: reg,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAttackApply measures the per-fix cost of the attack transforms.
func BenchmarkAttackApply(b *testing.B) {
	camp, err := attacks.Standard(attacks.ClassDriftSpoof, attacks.Window{Start: 0, End: 1e9}, 1)
	if err != nil {
		b.Fatal(err)
	}
	fix := sensors.GNSSFix{T: 10, Pos: geom.V(1, 2), Valid: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		camp.GNSS.Apply(fix, 10)
	}
}

// BenchmarkDiagnose measures the diagnosis cost on a realistic violation
// record.
func BenchmarkDiagnose(b *testing.B) {
	var vs []Violation
	for i := 0; i < 30; i++ {
		vs = append(vs, Violation{AssertionID: "A10", T: 20 + float64(i), Duration: 0.5})
	}
	vs = append(vs, Violation{AssertionID: "A4", T: 20.15, Duration: 25})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Diagnose(vs)
	}
}
