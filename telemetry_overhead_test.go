package adassure

import (
	"context"
	"testing"

	"adassure/internal/telemetry"
)

// tracedScenario is the overhead fixture: a spoofed run long enough to
// exercise sim, monitor and diagnosis under a live span.
func tracedScenario(sp *TraceSpan) Scenario {
	return Scenario{Attack: AttackDriftSpoof, Duration: 30, Span: sp}
}

// TestTracedRunSpanBudget pins the instrumentation density: one run emits
// exactly two phase spans (sim+monitor, diagnosis) regardless of how many
// steps or violations it produced — tracing cost is per-run constant,
// never per-step.
func TestTracedRunSpanBudget(t *testing.T) {
	tr := telemetry.New(telemetry.Config{})
	root := tr.StartSpan("test run", "")
	out, err := tracedScenario(root).RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if out.Sim.Steps == 0 || len(out.Violations) == 0 {
		t.Fatalf("fixture did not exercise the full path: %d steps, %d violations",
			out.Sim.Steps, len(out.Violations))
	}
	exp, ok := tr.Export(root.TraceID())
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(exp.Spans) != 3 { // root + phase.sim+monitor + phase.diagnosis
		names := make([]string, 0, len(exp.Spans))
		for _, sp := range exp.Spans {
			names = append(names, sp.Name)
		}
		t.Fatalf("span count %d, want 3 (constant per run); got %v", len(exp.Spans), names)
	}
	byName := map[string]telemetry.SpanExport{}
	for _, sp := range exp.Spans {
		byName[sp.Name] = sp
	}
	if byName["phase.sim+monitor"].Attrs["steps"] == "" {
		t.Error("phase.sim+monitor span missing the steps attribute")
	}
	if byName["phase.diagnosis"].Attrs["hypotheses"] == "" {
		t.Error("phase.diagnosis span missing the hypotheses attribute")
	}
}

// TestTracedRunAllocOverhead bounds the absolute allocation cost of
// attaching a span to a run: the delta over an untraced run must stay a
// small constant (the two phase spans plus their attributes), not scale
// with simulated duration. Absolute counts — not wall-time ratios — keep
// the gate immune to runner noise; the paired benchmarks below supply the
// ns/op evidence for the ≤5% budget.
func TestTracedRunAllocOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation fixture")
	}
	tr := telemetry.New(telemetry.Config{})
	run := func(sp *TraceSpan) {
		if _, err := tracedScenario(sp).RunContext(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	baseline := testing.AllocsPerRun(3, func() { run(nil) })
	traced := testing.AllocsPerRun(3, func() {
		root := tr.StartSpan("bench run", "")
		run(root)
		root.End()
	})
	delta := traced - baseline
	// Root span + 2 phase spans + ~4 attrs each, with headroom for map
	// growth inside the trace store.
	if delta > 64 {
		t.Fatalf("tracing adds %.0f allocs/run (baseline %.0f), budget 64", delta, baseline)
	}
}

// BenchmarkScenarioUntraced and BenchmarkScenarioTraced are the committed
// overhead evidence pair: same spoofed run, with and without an attached
// span. DESIGN.md §15 records the measured delta.
func BenchmarkScenarioUntraced(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tracedScenario(nil).RunContext(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScenarioTraced(b *testing.B) {
	tr := telemetry.New(telemetry.Config{})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.StartSpan("bench run", "")
		if _, err := tracedScenario(root).RunContext(ctx); err != nil {
			b.Fatal(err)
		}
		root.End()
	}
}
