// Command benchjson converts `go test -bench -benchmem` text output on
// stdin into a machine-readable JSON array on stdout, so benchmark runs
// can accumulate as comparable artifacts (see the Makefile bench-json
// target, which writes BENCH_5.json).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | go run ./internal/tools/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark identifier without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in ("" when the input
	// carries no "pkg:" header, e.g. a single-package run).
	Package string `json:"package,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

func main() {
	results, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Parse extracts benchmark results from go test output. Non-benchmark
// lines (PASS, ok, test logs) are ignored; "pkg:" headers attribute the
// following benchmarks to their package.
func Parse(r io.Reader) ([]Result, error) {
	var (
		out = []Result{}
		pkg string
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseLine(line)
		if !ok {
			continue
		}
		res.Package = pkg
		out = append(out, res)
	}
	return out, sc.Err()
}

// parseLine parses one "BenchmarkName-N  iters  X ns/op [Y B/op  Z
// allocs/op]" line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if res.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, false
			}
			seen = true
		case "B/op":
			if res.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
		case "allocs/op":
			if res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
		}
	}
	return res, seen
}
