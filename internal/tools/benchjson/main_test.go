package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: adassure
cpu: some CPU @ 2.40GHz
BenchmarkSimCleanRun-8   	     100	  11223344 ns/op	  524288 B/op	    1024 allocs/op
BenchmarkNilRegistry-8   	1000000000	         0.2504 ns/op	       0 B/op	       0 allocs/op
--- BENCH: BenchmarkWeird
    some log output
BenchmarkNoMem-8         	    5000	    240000 ns/op
PASS
ok  	adassure	12.345s
pkg: adassure/internal/obs
BenchmarkCounterInc-8    	50000000	        21.5 ns/op	       0 B/op	       0 allocs/op
ok  	adassure/internal/obs	1.234s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(got), got)
	}

	first := got[0]
	if first.Name != "BenchmarkSimCleanRun" {
		t.Errorf("name = %q, want BenchmarkSimCleanRun (GOMAXPROCS suffix stripped)", first.Name)
	}
	if first.Package != "adassure" {
		t.Errorf("package = %q, want adassure", first.Package)
	}
	if first.Iterations != 100 || first.NsPerOp != 11223344 || first.BytesPerOp != 524288 || first.AllocsPerOp != 1024 {
		t.Errorf("unexpected first result: %+v", first)
	}

	if got[1].NsPerOp != 0.2504 || got[1].AllocsPerOp != 0 {
		t.Errorf("fractional ns/op not parsed: %+v", got[1])
	}

	if got[2].Name != "BenchmarkNoMem" || got[2].BytesPerOp != 0 {
		t.Errorf("memless line not parsed: %+v", got[2])
	}

	if got[3].Package != "adassure/internal/obs" {
		t.Errorf("pkg header not tracked: %+v", got[3])
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	got, err := Parse(strings.NewReader("hello\nBenchmarkBroken-8 notanumber 5 ns/op\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected no results from malformed input, got %+v", got)
	}
}
