// Package search is the adversarial attack searcher: a deterministic
// black-box optimizer that probes the assertion catalog for *minimal*
// evading attacks. Where internal/mutate scores the catalog against a
// fixed parameter grid, search moves along each attack channel's magnitude
// axis — seeded coordinate descent with geometric shrink, or a
// cross-entropy mode over magnitude × window × channel combinations — and
// converges on the evasion frontier: per track × channel, the largest
// attack the catalog misses, paired with a minimality certificate (the
// smallest detected neighbor). The frontier report is the actionable
// output of the debug loop: every nonzero frontier point is a fault class
// that needs a new or tighter assertion, and a strengthened catalog must
// show the frontier retreating.
package search

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"adassure/internal/mutate"
)

// Spec-rejection reasons. Every Canonicalize failure wraps exactly one of
// these, so callers (service validation, fuzzing) can classify rejections
// with errors.Is instead of string matching.
var (
	// ErrUnknownChannel rejects operators the mutation registry does not
	// know, and parameterless operators (identity, gain-flip, …) that have
	// no magnitude axis to search.
	ErrUnknownChannel = errors.New("unknown or unsearchable channel")
	// ErrNonFinite rejects NaN or infinite magnitude/window bounds.
	ErrNonFinite = errors.New("non-finite bound")
	// ErrInvertedRange rejects magnitude ranges with min > max.
	ErrInvertedRange = errors.New("inverted magnitude range")
	// ErrOutOfRange rejects magnitude ranges outside the operator's
	// canonical parameter bounds.
	ErrOutOfRange = errors.New("magnitude range outside operator bounds")
	// ErrInvertedWindow rejects windows with negative start or end <= start.
	ErrInvertedWindow = errors.New("inverted window")
	// ErrWindowUnsupported rejects windows on controller channels: gating a
	// stateful controller wrapper mid-run would double-step the wrapped
	// controller, so only sensor/actuator faults can be windowed.
	ErrWindowUnsupported = errors.New("window unsupported for controller channels")
)

// SpecError is the typed rejection a non-canonical search spec produces.
type SpecError struct {
	Op     string // the offending channel
	Reason error  // one of the sentinel reasons above
	Detail string // human-readable specifics
}

// Error implements error.
func (e *SpecError) Error() string {
	return fmt.Sprintf("search: channel %q: %v: %s", e.Op, e.Reason, e.Detail)
}

// Unwrap exposes the sentinel reason to errors.Is.
func (e *SpecError) Unwrap() error { return e.Reason }

func specErr(op string, reason error, format string, args ...any) error {
	return &SpecError{Op: op, Reason: reason, Detail: fmt.Sprintf(format, args...)}
}

// Window bounds an attack's activation interval in simulated seconds
// [Start, End). Only sensor/actuator channels support windows.
type Window struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Spec is one search channel: a mutation operator whose parameter is the
// magnitude axis the optimizer moves along, with optional range overrides
// and an optional activation window. The JSON form is the wire format of
// the /v1/search endpoint. Zero Min/Max select the operator's full
// canonical parameter range.
type Spec struct {
	Op     string  `json:"op"`
	Min    float64 `json:"min,omitempty"`
	Max    float64 `json:"max,omitempty"`
	Window *Window `json:"window,omitempty"`
}

// Canonicalize validates the spec and resolves the magnitude range
// defaults, so equivalent specs collapse onto one identity. It is
// idempotent and does not mutate the receiver; rejections are typed
// *SpecError values wrapping the package sentinels.
func (s Spec) Canonicalize() (Spec, error) {
	opMin, opMax, ok := mutate.OpRange(s.Op)
	if !ok {
		return s, specErr(s.Op, ErrUnknownChannel,
			"want a parameterised mutation operator (have %v)", searchableOps())
	}
	for _, b := range [2]float64{s.Min, s.Max} {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return s, specErr(s.Op, ErrNonFinite, "magnitude bounds [%g, %g]", s.Min, s.Max)
		}
	}
	if s.Min == 0 {
		s.Min = opMin
	}
	if s.Max == 0 {
		s.Max = opMax
	}
	if s.Min > s.Max {
		return s, specErr(s.Op, ErrInvertedRange, "[%g, %g]", s.Min, s.Max)
	}
	if s.Min < opMin || s.Max > opMax {
		return s, specErr(s.Op, ErrOutOfRange,
			"[%g, %g] outside operator bounds [%g, %g]", s.Min, s.Max, opMin, opMax)
	}
	if s.Window != nil {
		w := *s.Window
		if math.IsNaN(w.Start) || math.IsInf(w.Start, 0) || math.IsNaN(w.End) || math.IsInf(w.End, 0) {
			return s, specErr(s.Op, ErrNonFinite, "window [%g, %g)", w.Start, w.End)
		}
		if w.Start < 0 || w.End <= w.Start {
			return s, specErr(s.Op, ErrInvertedWindow, "[%g, %g)", w.Start, w.End)
		}
		if mutate.OpKind(s.Op) == mutate.KindController {
			return s, specErr(s.Op, ErrWindowUnsupported, "[%g, %g)", w.Start, w.End)
		}
		s.Window = &w // detach from the caller's pointer
	}
	return s, nil
}

// ID is the canonical display identity of a (canonical) spec:
// "sense-gnss-quantize[0.05,100]", optionally "@[20,50)".
func (s Spec) ID() string {
	id := s.Op + "[" + strconv.FormatFloat(s.Min, 'g', -1, 64) +
		"," + strconv.FormatFloat(s.Max, 'g', -1, 64) + "]"
	if s.Window != nil {
		id += "@[" + strconv.FormatFloat(s.Window.Start, 'g', -1, 64) +
			"," + strconv.FormatFloat(s.Window.End, 'g', -1, 64) + ")"
	}
	return id
}

// searchableOps lists every operator with a magnitude axis, sorted.
func searchableOps() []string {
	var out []string
	for _, op := range mutate.OpNames() {
		if _, _, ok := mutate.OpRange(op); ok {
			out = append(out, op)
		}
	}
	return out
}

// DefaultChannels returns the default search space: the channels whose
// fault severity grows monotonically with the parameter, one per fault
// family — the sub-noise quantization channel that produced the M1
// survivor, the GNSS latency channel, and the two parameterised
// controller-defect channels. ctrl-gain-scale is deliberately excluded:
// its severity is non-monotone (param 1 is the identity, both extremes
// are bad), which breaks the descent-mode bracketing invariant.
func DefaultChannels() []Spec {
	return []Spec{
		{Op: mutate.OpGNSSQuantize},
		{Op: mutate.OpGNSSLatency},
		{Op: mutate.OpFrozenInput},
		{Op: mutate.OpLookaheadSkip},
	}
}
