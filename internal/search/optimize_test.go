package search

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// probeLog records every oracle call DescendMagnitude makes, so the
// property tests can check the optimizer's contract against the actual
// call sequence rather than trusting the returned Point.
type probeLog struct {
	mags []float64
	dets []bool
}

// thresholdOracle models a monotone detector: magnitudes >= threshold are
// detected. This is exactly the shape the descent contract assumes.
func (l *probeLog) thresholdOracle(threshold float64) Oracle {
	return func(mag float64) (bool, error) {
		det := mag >= threshold
		l.mags = append(l.mags, mag)
		l.dets = append(l.dets, det)
		return det, nil
	}
}

// result reports whether a magnitude was probed and what the answer was.
func (l *probeLog) result(mag float64) (det, probed bool) {
	for i, m := range l.mags {
		if m == mag {
			return l.dets[i], true
		}
	}
	return false, false
}

// TestDescendProperties drives DescendMagnitude over randomized monotone
// oracles and checks the four optimizer invariants on every run:
//  1. the returned evading attack was probed and evaded,
//  2. its certificate neighbor was probed and detected,
//  3. the magnitude never increases across shrink-ladder iterations,
//  4. the eval budget is never exceeded.
func TestDescendProperties(t *testing.T) {
	prop := func(thrRaw, minRaw, spanRaw uint32, shrinkRaw uint16, budgetRaw uint8) bool {
		// Map raw fuzz inputs onto a valid option space.
		min := 0.01 + float64(minRaw%10000)/100                          // [0.01, 100)
		max := min * (1 + float64(spanRaw%100000)/100)                   // [min, min*1001)
		threshold := min * math.Pow(max/min+1, float64(thrRaw%1000)/999) // may exceed max
		shrink := 0.05 + 0.9*float64(shrinkRaw%1000)/1000                // [0.05, 0.95)
		budget := 1 + int(budgetRaw%64)                                  // [1, 64]

		log := &probeLog{}
		pt, err := DescendMagnitude(log.thresholdOracle(threshold), DescendOptions{
			Min: min, Max: max, Shrink: shrink, Budget: budget,
		})
		if err != nil {
			t.Logf("descend error: %v", err)
			return false
		}

		// (4) Budget never exceeded, and Evals is honest.
		if pt.Evals > budget || pt.Evals != len(log.mags) {
			t.Logf("evals %d, budget %d, calls %d", pt.Evals, budget, len(log.mags))
			return false
		}
		// (1) The returned attack always evades.
		if pt.Evading != 0 {
			if det, probed := log.result(pt.Evading); !probed || det {
				t.Logf("evading %g: probed=%v detected=%v", pt.Evading, probed, det)
				return false
			}
		}
		// (2) The certificate neighbor is always detected, above the attack.
		if pt.Detected != 0 {
			if det, probed := log.result(pt.Detected); !probed || !det {
				t.Logf("certificate %g: probed=%v detected=%v", pt.Detected, probed, det)
				return false
			}
			if pt.Evading != 0 && pt.Detected <= pt.Evading {
				t.Logf("certificate %g not above evading %g", pt.Detected, pt.Evading)
				return false
			}
		}
		// (3) Magnitude never increases across shrink iterations: the
		// ladder prefix (all probes up to and including the first evasion)
		// is strictly non-increasing.
		for i := 1; i < len(log.mags); i++ {
			if log.dets[i-1] && log.mags[i] > log.mags[i-1] {
				t.Logf("ladder increased: %v", log.mags[:i+1])
				return false
			}
			if !log.dets[i-1] {
				break // ladder ended; bisection probes move both ways
			}
		}
		// All probes stay inside the configured axis.
		for _, m := range log.mags {
			if m < min-1e-12 || m > max+1e-12 {
				t.Logf("probe %g outside [%g, %g]", m, min, max)
				return false
			}
		}
		// Status is consistent with the point's shape.
		switch pt.Status {
		case StatusAllDetected:
			if pt.Evading != 0 {
				return false
			}
		case StatusAllEvading:
			if pt.Detected != 0 {
				return false
			}
		case StatusConverged:
			if pt.Evading == 0 || pt.Detected == 0 {
				return false
			}
		case StatusBudget:
			if pt.Evals < budget {
				return false
			}
		default:
			t.Logf("unknown status %q", pt.Status)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestDescendConvergesTight pins the bracket quality on an easy instance:
// with budget to spare, the certificate ends within Ratio of the attack.
func TestDescendConvergesTight(t *testing.T) {
	log := &probeLog{}
	pt, err := DescendMagnitude(log.thresholdOracle(1.0), DescendOptions{
		Min: 0.01, Max: 100, Ratio: 1.05, Budget: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Status != StatusConverged {
		t.Fatalf("status %q, want converged (point %+v)", pt.Status, pt)
	}
	if pt.Detected/pt.Evading > 1.05 {
		t.Errorf("bracket [%g, %g] looser than ratio 1.05", pt.Evading, pt.Detected)
	}
	if !(pt.Evading < 1.0 && pt.Detected >= 1.0) {
		t.Errorf("bracket [%g, %g] does not straddle the true threshold 1.0", pt.Evading, pt.Detected)
	}
}

// TestDescendRejectsBadOptions covers the option validation.
func TestDescendRejectsBadOptions(t *testing.T) {
	noop := func(float64) (bool, error) { return true, nil }
	bad := []DescendOptions{
		{Min: 0, Max: 1},
		{Min: -1, Max: 1},
		{Min: 2, Max: 1},
		{Min: 1, Max: math.Inf(1)},
		{Min: 1, Max: 2, Shrink: 1.5},
		{Min: 1, Max: 2, Ratio: 0.9},
		{Min: 1, Max: 2, Budget: -1},
	}
	for _, o := range bad {
		if _, err := DescendMagnitude(noop, o); err == nil {
			t.Errorf("options %+v accepted, want error", o)
		}
	}
}

// TestCEMSamplerDeterministic asserts two same-seed samplers emit the
// identical candidate stream through sampling and refitting.
func TestCEMSamplerDeterministic(t *testing.T) {
	specs := make([]Spec, 0, len(DefaultChannels()))
	for _, ch := range DefaultChannels() {
		c, err := ch.Canonicalize()
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, c)
	}
	mk := func() *CEMSampler {
		s, err := NewCEMSampler(CEMOptions{Specs: specs, Duration: 60, Budget: 36, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	for g := 0; g < a.Generations(); g++ {
		ca, cb := a.Sample(), b.Sample()
		if !reflect.DeepEqual(ca, cb) {
			t.Fatalf("generation %d diverged:\n%v\nvs\n%v", g, ca, cb)
		}
		// Synthetic scores: detection iff magnitude above the channel's
		// geometric midpoint.
		scores := make([]float64, len(ca))
		for i, c := range ca {
			mid := math.Sqrt(specs[c.Channel].Min * specs[c.Channel].Max)
			if c.Mag < mid {
				scores[i] = c.Mag
			}
		}
		a.Refit(ca, scores)
		b.Refit(cb, scores)
	}
	// Candidates respect channel bounds and window validity throughout.
	for _, c := range mk().Sample() {
		s := specs[c.Channel]
		if c.Mag < s.Min || c.Mag > s.Max {
			t.Errorf("candidate magnitude %g outside %q bounds [%g, %g]", c.Mag, s.Op, s.Min, s.Max)
		}
		if windowable(s.Op) {
			if c.Window == nil {
				t.Errorf("windowable channel %q sampled without a window", s.Op)
			} else if c.Window.Start < 0 || c.Window.End <= c.Window.Start || c.Window.End > 60 {
				t.Errorf("invalid sampled window %+v", c.Window)
			}
		} else if c.Window != nil {
			t.Errorf("controller channel %q sampled with a window", s.Op)
		}
	}
}
