package search

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzSearchSpec checks the search-spec wire contract over arbitrary JSON:
// undecodable payloads and non-canonical specs are rejected — NaN/Inf
// magnitudes, inverted windows/ranges and unknown channels as typed
// *SpecError values wrapping the package sentinels — while any accepted
// spec canonicalizes stably (idempotent, stable ID) and round-trips
// through JSON.
func FuzzSearchSpec(f *testing.F) {
	seeds := []string{
		`{"op":"sense-gnss-quantize"}`,
		`{"op":"sense-gnss-quantize","min":0.05,"max":2.5}`,
		`{"op":"sense-gnss-latency","window":{"start":10,"end":30}}`,
		`{"op":"ctrl-lookahead-skip","min":0.5,"max":20}`,
		`{"op":"ctrl-frozen-input"}`,
		`{"op":"no-such-op"}`,
		`{"op":"identity"}`,
		`{"op":"sense-gnss-quantize","min":2,"max":1}`,
		`{"op":"sense-gnss-quantize","min":1e999}`,
		`{"op":"sense-gnss-latency","window":{"start":30,"end":10}}`,
		`{"op":"sense-gnss-latency","window":{"start":-1,"end":10}}`,
		`{"op":"ctrl-frozen-input","window":{"start":1,"end":2}}`,
		`{"op":""}`,
		`{}`,
		`not json`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data string) {
		var spec Spec
		if err := json.Unmarshal([]byte(data), &spec); err != nil {
			return // undecodable payloads are out of contract
		}
		canon, err := spec.Canonicalize()
		if err != nil {
			// Rejections must carry the typed taxonomy, never a bare error.
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("rejection of %s is not a *SpecError: %v", data, err)
			}
			sentinels := []error{
				ErrUnknownChannel, ErrNonFinite, ErrInvertedRange,
				ErrOutOfRange, ErrInvertedWindow, ErrWindowUnsupported,
			}
			matched := false
			for _, s := range sentinels {
				if errors.Is(err, s) {
					matched = true
					break
				}
			}
			if !matched {
				t.Fatalf("rejection of %s wraps no sentinel: %v", data, err)
			}
			return
		}

		// Canonicalization is a fixed point with a stable identity.
		again, err := canon.Canonicalize()
		if err != nil {
			t.Fatalf("canonical spec %+v rejected on re-canonicalize: %v", canon, err)
		}
		if again.ID() != canon.ID() || canon.ID() == "" {
			t.Fatalf("unstable ID: %q vs %q", canon.ID(), again.ID())
		}
		if !(canon.Min > 0 && canon.Max >= canon.Min) {
			t.Fatalf("accepted spec %+v has a degenerate range", canon)
		}

		// JSON round trip preserves the canonical spec exactly.
		b, err := json.Marshal(canon)
		if err != nil {
			t.Fatalf("marshal %+v: %v", canon, err)
		}
		var back Spec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back.ID() != canon.ID() {
			t.Fatalf("JSON round trip drifted: %+v -> %s -> %+v", canon, b, back)
		}
	})
}
