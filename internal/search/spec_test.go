package search

import (
	"errors"
	"math"
	"testing"

	"adassure/internal/mutate"
)

func TestCanonicalizeDefaultsToOpRange(t *testing.T) {
	c, err := Spec{Op: mutate.OpGNSSQuantize}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Min != 0.05 || c.Max != 100 {
		t.Errorf("quantize range defaulted to [%g, %g], want the operator bounds [0.05, 100]", c.Min, c.Max)
	}
	if got := c.ID(); got != "sense-gnss-quantize[0.05,100]" {
		t.Errorf("ID = %q", got)
	}
	c2, err := c.Canonicalize()
	if err != nil || c2.ID() != c.ID() {
		t.Errorf("Canonicalize not idempotent: %+v -> %+v (%v)", c, c2, err)
	}
}

func TestCanonicalizeWindow(t *testing.T) {
	w := &Window{Start: 10, End: 30}
	c, err := Spec{Op: mutate.OpGNSSLatency, Window: w}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Window == w {
		t.Error("canonical spec aliases the caller's window pointer")
	}
	if *c.Window != *w {
		t.Errorf("window drifted: %+v", c.Window)
	}
	if got := c.ID(); got != "sense-gnss-latency[0.05,10]@[10,30)" {
		t.Errorf("ID = %q", got)
	}
}

// TestCanonicalizeTypedErrors pins the error taxonomy the fuzz target and
// the service layer classify on.
func TestCanonicalizeTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want error
	}{
		{"unknown op", Spec{Op: "no-such-op"}, ErrUnknownChannel},
		{"parameterless op", Spec{Op: mutate.OpIdentity}, ErrUnknownChannel},
		{"parameterless gain-flip", Spec{Op: mutate.OpGainFlip}, ErrUnknownChannel},
		{"nan min", Spec{Op: mutate.OpGNSSQuantize, Min: math.NaN()}, ErrNonFinite},
		{"inf max", Spec{Op: mutate.OpGNSSQuantize, Max: math.Inf(1)}, ErrNonFinite},
		{"inverted range", Spec{Op: mutate.OpGNSSQuantize, Min: 2, Max: 1}, ErrInvertedRange},
		{"below op min", Spec{Op: mutate.OpGNSSQuantize, Min: 0.001, Max: 1}, ErrOutOfRange},
		{"above op max", Spec{Op: mutate.OpGNSSQuantize, Min: 1, Max: 5000}, ErrOutOfRange},
		{"negative window", Spec{Op: mutate.OpGNSSLatency, Window: &Window{Start: -1, End: 5}}, ErrInvertedWindow},
		{"empty window", Spec{Op: mutate.OpGNSSLatency, Window: &Window{Start: 5, End: 5}}, ErrInvertedWindow},
		{"nan window", Spec{Op: mutate.OpGNSSLatency, Window: &Window{Start: math.NaN(), End: 5}}, ErrNonFinite},
		{"window on controller", Spec{Op: mutate.OpFrozenInput, Window: &Window{Start: 1, End: 5}}, ErrWindowUnsupported},
	}
	for _, tc := range cases {
		_, err := tc.spec.Canonicalize()
		if err == nil {
			t.Errorf("%s: accepted, want %v", tc.name, tc.want)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want sentinel %v", tc.name, err, tc.want)
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("%s: rejection %v is not a *SpecError", tc.name, err)
		}
	}
}

func TestDefaultChannelsCanonical(t *testing.T) {
	for _, ch := range DefaultChannels() {
		c, err := ch.Canonicalize()
		if err != nil {
			t.Errorf("default channel %q rejected: %v", ch.Op, err)
			continue
		}
		if !(c.Min > 0 && c.Max > c.Min) {
			t.Errorf("default channel %q canonical range [%g, %g] degenerate", ch.Op, c.Min, c.Max)
		}
	}
}
