package search

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"adassure/internal/core"
	"adassure/internal/events"
	"adassure/internal/mutate"
	"adassure/internal/obs"
	"adassure/internal/runner"
	"adassure/internal/sensors"
	"adassure/internal/sim"
	"adassure/internal/track"
	"adassure/internal/vehicle"
)

// Search modes.
const (
	// ModeDescent runs DescendMagnitude per track × channel: deterministic
	// bracketing of the evasion frontier with a minimality certificate.
	ModeDescent = "descent"
	// ModeCEM runs the cross-entropy sampler per track over magnitude ×
	// window × channel combinations, reporting the best evading candidate
	// per channel. Broader coverage, weaker certificates.
	ModeCEM = "cem"
)

// Config describes one adversarial search campaign. The zero value of
// every field is the campaign default.
type Config struct {
	// Controller is the lateral controller under test (default
	// "pure-pursuit").
	Controller string
	// Tracks are the route names from the track catalog (default
	// urban-loop + hairpin, mirroring the mutation campaign).
	Tracks []string
	// Channels is the search space (default DefaultChannels()). Duplicate
	// canonical IDs are rejected.
	Channels []Spec
	// Assertions optionally restricts the catalog to an explicit ID subset
	// (nil = full catalog). The S1 experiment searches the same space
	// against the weakened and full catalogs to render the frontier
	// retreat.
	Assertions []string
	// Mode is ModeDescent (default) or ModeCEM.
	Mode string
	// Seed drives all stochastic components of every run (default 1).
	Seed int64
	// Budget caps oracle evaluations: per track × channel pair in descent
	// mode (default 16), per track in cem mode (default 48).
	Budget int
	// Shrink and Ratio tune the descent ladder (defaults 0.5 and 1.15).
	Shrink float64
	Ratio  float64
	// Duration is the simulated seconds per probe run (default 60).
	Duration float64
	// SpeedLimit of the routes in m/s (default 6).
	SpeedLimit float64
	// Workers sizes the runner pool (default GOMAXPROCS). The report is
	// byte-identical for any value.
	Workers int
	// Obs, when non-nil, aggregates runtime metrics across every probe run
	// (sim.runs counts one per oracle evaluation plus one baseline per
	// track).
	Obs *obs.Registry
	// Events, when non-nil, records every probe's timeline, scoped
	// "search/<op>/<track>/<n>/" ("search/baseline/<track>/" for
	// baselines).
	Events *events.Recorder
	// Progress, when non-nil, receives (done, total) job counts: first the
	// baseline batch, then the search batch.
	Progress func(done, total int)
	// Context, when non-nil, cancels the campaign early.
	Context context.Context
}

func (c *Config) defaults() error {
	if c.Controller == "" {
		c.Controller = "pure-pursuit"
	}
	if len(c.Tracks) == 0 {
		c.Tracks = []string{"urban-loop", "hairpin"}
	}
	if len(c.Channels) == 0 {
		c.Channels = DefaultChannels()
	}
	if c.Mode == "" {
		c.Mode = ModeDescent
	}
	if c.Mode != ModeDescent && c.Mode != ModeCEM {
		return fmt.Errorf("search: unknown mode %q (want %q or %q)", c.Mode, ModeDescent, ModeCEM)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Budget == 0 {
		if c.Mode == ModeCEM {
			c.Budget = 48
		} else {
			c.Budget = 16
		}
	}
	if c.Budget < 1 {
		return fmt.Errorf("search: budget must be >= 1, got %d", c.Budget)
	}
	if c.Shrink == 0 {
		c.Shrink = 0.5
	}
	if c.Ratio == 0 {
		c.Ratio = 1.15
	}
	if c.Duration == 0 {
		c.Duration = 60
	}
	if c.Duration <= 0 || math.IsNaN(c.Duration) || math.IsInf(c.Duration, 0) {
		return fmt.Errorf("search: duration must be positive and finite, got %g", c.Duration)
	}
	if c.SpeedLimit == 0 {
		c.SpeedLimit = 6
	}
	if c.SpeedLimit <= 0 || math.IsNaN(c.SpeedLimit) || math.IsInf(c.SpeedLimit, 0) {
		return fmt.Errorf("search: speed limit must be positive and finite, got %g", c.SpeedLimit)
	}
	canon := make([]Spec, len(c.Channels))
	seen := map[string]bool{}
	for i, ch := range c.Channels {
		cc, err := ch.Canonicalize()
		if err != nil {
			return err
		}
		if seen[cc.ID()] {
			return fmt.Errorf("search: duplicate channel %q", cc.ID())
		}
		seen[cc.ID()] = true
		canon[i] = cc
	}
	c.Channels = canon
	return nil
}

// FrontierPoint is one converged point of the evasion frontier: per track
// × channel, the largest attack the catalog missed and its minimality
// certificate.
type FrontierPoint struct {
	Track   string `json:"track"`
	Channel string `json:"channel"`
	Point
	// DetectedBy is the kill set at the certificate magnitude (assertions
	// that fired there but not on the track baseline), in catalog order.
	DetectedBy []string `json:"detected_by,omitempty"`
	// Window is the activation window of the best evading candidate (cem
	// mode only; descent attacks are active for the whole run).
	Window *Window `json:"window,omitempty"`
}

// Report is the outcome of one search campaign: the evasion frontier. Its
// JSON encoding is canonical (struct fields and slices only), so
// byte-identical reports mean identical campaigns.
type Report struct {
	Controller string   `json:"controller"`
	Mode       string   `json:"mode"`
	Seed       int64    `json:"seed"`
	Duration   float64  `json:"duration_s"`
	Budget     int      `json:"budget"`
	Shrink     float64  `json:"shrink"`
	Ratio      float64  `json:"ratio"`
	Tracks     []string `json:"tracks"`
	Channels   []string `json:"channels"`
	// Assertions is the active catalog subset, in catalog order.
	Assertions []string `json:"assertions"`
	// Frontier has one point per track × channel, track-major in config
	// order.
	Frontier []FrontierPoint `json:"frontier"`
	// TotalEvals is the number of oracle evaluations spent (excluding the
	// per-track baselines).
	TotalEvals int `json:"total_evals"`
}

// Run executes the campaign: one pristine baseline per track (under the
// same assertion subset), then the optimizer per track × channel, fanned
// across the runner pool with index-ordered collection, so the report is
// deterministic in Config for any worker count.
func Run(cfg Config) (*Report, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	catalog, err := track.Catalog(cfg.SpeedLimit)
	if err != nil {
		return nil, err
	}
	tracks := make([]*track.Track, len(cfg.Tracks))
	for i, name := range cfg.Tracks {
		tr, ok := catalog[name]
		if !ok {
			return nil, fmt.Errorf("search: unknown track %q (have %v)", name, track.Names(catalog))
		}
		tracks[i] = tr
	}
	// Validate the assertion subset once, and pin the active catalog order
	// for the report and kill sorting.
	orderMon, err := core.NewCatalogMonitorWith(core.CatalogConfig{IncludeGroundTruth: true}, cfg.Assertions)
	if err != nil {
		return nil, err
	}
	assertionOrder := orderMon.AssertionIDs()
	orderIdx := make(map[string]int, len(assertionOrder))
	for i, id := range assertionOrder {
		orderIdx[id] = i
	}

	e := &engine{cfg: cfg, tracks: tracks, orderIdx: orderIdx}

	// Phase 1: pristine baselines, one per track, fanned across the pool.
	baselines, err := runner.Map(runner.Options{
		Workers:    cfg.Workers,
		Context:    cfg.Context,
		OnProgress: cfg.Progress,
		Obs:        cfg.Obs,
		Events:     cfg.Events,
	}, tracks, func(ctx context.Context, ti int, _ *track.Track) ([]string, error) {
		return e.probe(ctx, ti, "search/baseline/"+cfg.Tracks[ti]+"/", nil)
	})
	if err != nil {
		return nil, err
	}
	e.baselineFired = make([]map[string]bool, len(tracks))
	for ti, fired := range baselines {
		e.baselineFired[ti] = make(map[string]bool, len(fired))
		for _, id := range fired {
			e.baselineFired[ti][id] = true
		}
	}

	rep := &Report{
		Controller: cfg.Controller,
		Mode:       cfg.Mode,
		Seed:       cfg.Seed,
		Duration:   cfg.Duration,
		Budget:     cfg.Budget,
		Shrink:     cfg.Shrink,
		Ratio:      cfg.Ratio,
		Tracks:     append([]string(nil), cfg.Tracks...),
		Assertions: assertionOrder,
	}
	for _, ch := range cfg.Channels {
		rep.Channels = append(rep.Channels, ch.ID())
	}

	// Phase 2: the optimizer.
	if cfg.Mode == ModeCEM {
		err = e.runCEM(rep)
	} else {
		err = e.runDescent(rep)
	}
	if err != nil {
		return nil, err
	}
	for _, p := range rep.Frontier {
		rep.TotalEvals += p.Evals
	}
	return rep, nil
}

// engine carries the per-campaign state shared by both modes.
type engine struct {
	cfg           Config
	tracks        []*track.Track
	orderIdx      map[string]int
	baselineFired []map[string]bool
}

// probe runs one simulation — pristine when attack is nil — and returns
// the sorted fired-assertion IDs.
func (e *engine) probe(ctx context.Context, ti int, scope string, attack *attack) ([]string, error) {
	mon, err := core.NewCatalogMonitorWith(core.CatalogConfig{IncludeGroundTruth: true}, e.cfg.Assertions)
	if err != nil {
		return nil, err
	}
	sc := sim.Config{
		Track:      e.tracks[ti],
		Controller: e.cfg.Controller,
		Vehicle:    vehicle.ShuttleParams(),
		Seed:       e.cfg.Seed,
		Duration:   e.cfg.Duration,
		Monitor:    mon,
		// Probe runs never read traces, and instrumented configs must not
		// record them (mirrors the mutation campaign).
		DisableTrace: true,
		Obs:          e.cfg.Obs,
		Events:       e.cfg.Events,
		EventScope:   scope,
		Context:      ctx,
	}
	if attack != nil {
		spec, err := mutate.Spec{Op: attack.op, Param: attack.mag}.Canonicalize()
		if err != nil {
			return nil, err
		}
		if err := mutate.Instrument(&sc, spec); err != nil {
			return nil, err
		}
		if attack.window != nil {
			if sc.Faults == nil {
				return nil, fmt.Errorf("search: channel %q is not windowable", attack.op)
			}
			sc.Faults = gateFaults(sc.Faults, *attack.window)
		}
	}
	if _, err := sim.Run(sc); err != nil {
		return nil, err
	}
	return mon.FiredIDs(), nil
}

// attack is one concrete probe: an operator at a magnitude, optionally
// windowed.
type attack struct {
	op     string
	mag    float64
	window *Window
}

// kills returns fired minus the track baseline, in catalog order —
// detection attributable to the attack rather than to the clean run.
func (e *engine) kills(ti int, fired []string) []string {
	var out []string
	for _, id := range fired {
		if !e.baselineFired[ti][id] {
			out = append(out, id)
		}
	}
	// fired is already in catalog order (Monitor.FiredIDs), so out is too.
	return out
}

// runDescent fans DescendMagnitude over every track × channel pair. The
// descent inside a pair is sequential (each probe depends on the last),
// so determinism needs only index-ordered pair collection.
func (e *engine) runDescent(rep *Report) error {
	cfg := e.cfg
	type pair struct{ ti, ci int }
	var pairs []pair
	for ti := range e.tracks {
		for ci := range cfg.Channels {
			pairs = append(pairs, pair{ti, ci})
		}
	}
	points, err := runner.Map(runner.Options{
		Workers:    cfg.Workers,
		Context:    cfg.Context,
		OnProgress: cfg.Progress,
		Obs:        cfg.Obs,
		Events:     cfg.Events,
	}, pairs, func(ctx context.Context, _ int, p pair) (FrontierPoint, error) {
		ch := cfg.Channels[p.ci]
		evalN := 0
		killsAt := map[float64][]string{}
		oracle := func(mag float64) (bool, error) {
			evalN++
			scope := "search/" + ch.Op + "/" + cfg.Tracks[p.ti] + "/" + strconv.Itoa(evalN) + "/"
			fired, err := e.probe(ctx, p.ti, scope, &attack{op: ch.Op, mag: mag, window: ch.Window})
			if err != nil {
				return false, err
			}
			kills := e.kills(p.ti, fired)
			killsAt[mag] = kills
			return len(kills) > 0, nil
		}
		pt, err := DescendMagnitude(oracle, DescendOptions{
			Min: ch.Min, Max: ch.Max,
			Shrink: cfg.Shrink, Ratio: cfg.Ratio, Budget: cfg.Budget,
		})
		if err != nil {
			return FrontierPoint{}, err
		}
		fp := FrontierPoint{
			Track:   cfg.Tracks[p.ti],
			Channel: ch.Op,
			Point:   pt,
			Window:  ch.Window,
		}
		if pt.Detected > 0 {
			fp.DetectedBy = killsAt[pt.Detected]
		}
		return fp, nil
	})
	if err != nil {
		return err
	}
	rep.Frontier = points
	return nil
}

// runCEM runs the cross-entropy sampler per track: generations are
// sequential (the refit needs the previous generation's scores) and each
// generation's population is evaluated via runner.Map with index-ordered
// collection, so the report stays deterministic at any worker count.
func (e *engine) runCEM(rep *Report) error {
	cfg := e.cfg
	for ti := range e.tracks {
		sampler, err := NewCEMSampler(CEMOptions{
			Specs:    cfg.Channels,
			Duration: cfg.Duration,
			Budget:   cfg.Budget,
			Seed:     cfg.Seed + int64(ti),
		})
		if err != nil {
			return err
		}
		// Per-channel running frontier across all generations.
		best := make([]FrontierPoint, len(cfg.Channels))
		for ci, ch := range cfg.Channels {
			best[ci] = FrontierPoint{
				Track:   cfg.Tracks[ti],
				Channel: ch.Op,
				Point:   Point{Status: StatusAllDetected},
			}
		}
		evalN := 0
		for g := 0; g < sampler.Generations(); g++ {
			cands := sampler.Sample()
			type outcome struct {
				kills []string
			}
			outs, err := runner.Map(runner.Options{
				Workers:    cfg.Workers,
				Context:    cfg.Context,
				OnProgress: cfg.Progress,
				Obs:        cfg.Obs,
				Events:     cfg.Events,
			}, cands, func(ctx context.Context, i int, cand Candidate) (outcome, error) {
				ch := cfg.Channels[cand.Channel]
				scope := "search/" + ch.Op + "/" + cfg.Tracks[ti] + "/" +
					strconv.Itoa(evalN+i+1) + "/"
				fired, err := e.probe(ctx, ti, scope, &attack{op: ch.Op, mag: cand.Mag, window: cand.Window})
				if err != nil {
					return outcome{}, err
				}
				return outcome{kills: e.kills(ti, fired)}, nil
			})
			if err != nil {
				return err
			}
			evalN += len(cands)
			scores := make([]float64, len(cands))
			for i, cand := range cands {
				p := &best[cand.Channel]
				p.Evals++
				if len(outs[i].kills) == 0 {
					scores[i] = cand.Mag // evading: bigger is a better attack
					if cand.Mag > p.Evading {
						p.Evading, p.Window = cand.Mag, cand.Window
					}
				} else if p.Detected == 0 || cand.Mag < p.Detected {
					p.Detected, p.DetectedBy = cand.Mag, outs[i].kills
				}
			}
			sampler.Refit(cands, scores)
		}
		for ci := range best {
			p := &best[ci]
			if p.Evading > 0 && p.Detected > p.Evading {
				p.Status = StatusConverged
			} else if p.Evading > 0 {
				p.Status = StatusAllEvading
			} else if p.Detected > 0 {
				p.Status = StatusAllDetected
			} else {
				p.Status = StatusBudget // channel never sampled this campaign
			}
		}
		rep.Frontier = append(rep.Frontier, best...)
	}
	return nil
}

// gateFaults wraps a FaultSet so its hooks apply only inside the window
// [Start, End); outside it readings and commands pass through untouched.
// The wrapped closures keep their own state, so a latency queue simply
// stops advancing outside the window.
func gateFaults(fs *sim.FaultSet, w Window) *sim.FaultSet {
	g := &sim.FaultSet{}
	if f := fs.GNSS; f != nil {
		g.GNSS = func(fix sensors.GNSSFix, t float64) (sensors.GNSSFix, bool) {
			if t < w.Start || t >= w.End {
				return fix, true
			}
			return f(fix, t)
		}
	}
	if f := fs.IMU; f != nil {
		g.IMU = func(r sensors.IMUReading, t float64) (sensors.IMUReading, bool) {
			if t < w.Start || t >= w.End {
				return r, true
			}
			return f(r, t)
		}
	}
	if f := fs.Odom; f != nil {
		g.Odom = func(r sensors.OdomReading, t float64) (sensors.OdomReading, bool) {
			if t < w.Start || t >= w.End {
				return r, true
			}
			return f(r, t)
		}
	}
	if f := fs.Actuator; f != nil {
		g.Actuator = func(cmd vehicle.Command, t float64) vehicle.Command {
			if t < w.Start || t >= w.End {
				return cmd
			}
			return f(cmd, t)
		}
	}
	return g
}

// WriteJSON writes the canonical JSON encoding of the report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON decodes a report written by WriteJSON.
func ReadJSON(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("search: decode report: %w", err)
	}
	return &rep, nil
}

// PointFor returns the frontier point of one track × channel.
func (r *Report) PointFor(trackName, channel string) (FrontierPoint, bool) {
	for _, p := range r.Frontier {
		if p.Track == trackName && p.Channel == channel {
			return p, true
		}
	}
	return FrontierPoint{}, false
}

// WriteFrontierReport renders the evasion frontier as text: per track ×
// channel, the largest undetected attack and its minimality certificate.
// Every line with a nonzero evading magnitude is a fault class the
// catalog needs a new or tighter assertion for.
func (r *Report) WriteFrontierReport(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "evasion-frontier report — %s, mode %s, tracks %v, seed %d, %.0f s/run, budget %d\n",
		r.Controller, r.Mode, r.Tracks, r.Seed, r.Duration, r.Budget); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "assertions: %d active (%s … %s)\n",
		len(r.Assertions), first(r.Assertions), last(r.Assertions)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "frontier (largest undetected attack per track × channel; certificate = smallest detected neighbor):"); err != nil {
		return err
	}
	for _, p := range r.Frontier {
		evading := "none"
		if p.Evading > 0 {
			evading = fmtMag(p.Evading)
			if p.Window != nil {
				evading += fmt.Sprintf("@[%s,%s)", fmtMag(p.Window.Start), fmtMag(p.Window.End))
			}
		}
		cert := "none"
		if p.Detected > 0 {
			cert = fmtMag(p.Detected)
			if len(p.DetectedBy) > 0 {
				cert += fmt.Sprintf(" by %v", p.DetectedBy)
			}
		}
		if _, err := fmt.Fprintf(w, "  %-12s %-22s evading %-28s certificate %-28s %s, %d evals\n",
			p.Track, p.Channel, evading, cert, p.Status, p.Evals); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "total probe runs: %d (plus %d baselines)\n", r.TotalEvals, len(r.Tracks))
	return err
}

// fmtMag renders a magnitude compactly and stably.
func fmtMag(v float64) string { return strconv.FormatFloat(v, 'g', 4, 64) }

func first(s []string) string {
	if len(s) == 0 {
		return "-"
	}
	return s[0]
}

func last(s []string) string {
	if len(s) == 0 {
		return "-"
	}
	return s[len(s)-1]
}
