package search

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"adassure/internal/events"
	"adassure/internal/mutate"
	"adassure/internal/obs"
)

// smallConfig is a cheap campaign for structural tests: one track, two
// channels, tiny budget, short runs.
func smallConfig() Config {
	return Config{
		Tracks: []string{"urban-loop"},
		Channels: []Spec{
			{Op: mutate.OpGNSSQuantize, Min: 0.05, Max: 2.5},
			{Op: mutate.OpLookaheadSkip},
		},
		Budget:   6,
		Duration: 20,
	}
}

// renderAll captures every deterministic artifact of a report: the
// canonical JSON export and the frontier report.
func renderAll(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteFrontierReport(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSearchDeterministicAcrossWorkers asserts the frontier report and its
// JSON export are byte-identical at workers=1, 4 and GOMAXPROCS, across
// two same-seed runs, and with or without obs/event recorders attached —
// the same guarantee the mutation engine and the harness experiments make.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	base := smallConfig()
	base.Workers = 1
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, ref)

	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		cfg := smallConfig()
		cfg.Workers = workers
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderAll(t, rep); !bytes.Equal(got, want) {
			t.Errorf("report at workers=%d differs from workers=1\n--- want\n%s\n--- got\n%s", workers, want, got)
		}
	}

	// Recorders attached must not perturb the report, and a repeat run with
	// the same seed must reproduce it.
	cfg := smallConfig()
	cfg.Workers = 4
	cfg.Obs = obs.NewRegistry()
	cfg.Events = events.NewRecorder(0)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAll(t, rep); !bytes.Equal(got, want) {
		t.Errorf("report with recorders attached differs\n--- want\n%s\n--- got\n%s", want, got)
	}
	if rep2, err := Run(cfg); err != nil || !bytes.Equal(renderAll(t, rep2), want) {
		t.Errorf("repeat same-seed run differs (err=%v)", err)
	}
}

// TestSearchClosesQuantizeGap is the package-level statement of the S1
// result: against the full catalog the sub-noise GNSS quantize channel has
// no evasion region left (the A15 lattice detector holds the frontier at
// zero), while the same search against the catalog without A15 finds a
// nonzero evading magnitude with a certified detected neighbor — the gap
// the adversarial search surfaced and the catalog strengthening closed.
func TestSearchClosesQuantizeGap(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-probe simulation campaign")
	}
	quantize := []Spec{{Op: mutate.OpGNSSQuantize, Min: 0.05, Max: 2.5}}

	after, err := Run(Config{
		Tracks: []string{"urban-loop"}, Channels: quantize, Budget: 10, Duration: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	ap, ok := after.PointFor("urban-loop", mutate.OpGNSSQuantize)
	if !ok {
		t.Fatal("no frontier point for the quantize channel")
	}
	if ap.Status != StatusAllDetected || ap.Evading != 0 {
		t.Errorf("full catalog: quantize frontier %+v, want all-detected with zero evasion region", ap.Point)
	}

	weakened := make([]string, 0, len(after.Assertions)-1)
	for _, id := range after.Assertions {
		if id != "A15" {
			weakened = append(weakened, id)
		}
	}
	before, err := Run(Config{
		Tracks: []string{"urban-loop"}, Channels: quantize, Assertions: weakened,
		Budget: 10, Duration: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	bp, _ := before.PointFor("urban-loop", mutate.OpGNSSQuantize)
	if bp.Evading == 0 {
		t.Fatalf("without A15 the quantize channel should have an evasion region, got %+v", bp.Point)
	}
	if bp.Detected <= bp.Evading || len(bp.DetectedBy) == 0 {
		t.Errorf("weakened-catalog point lacks a minimality certificate: %+v (killed by %v)", bp.Point, bp.DetectedBy)
	}
}

// TestSearchCEMMode runs the cross-entropy mode end-to-end on a tiny
// budget: structure, determinism across a repeat run, and window validity.
func TestSearchCEMMode(t *testing.T) {
	cfg := Config{
		Tracks:   []string{"urban-loop"},
		Channels: []Spec{{Op: mutate.OpGNSSQuantize, Min: 0.05, Max: 2.5}, {Op: mutate.OpFrozenInput}},
		Mode:     ModeCEM,
		Budget:   12,
		Duration: 20,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Frontier) != 2 {
		t.Fatalf("cem frontier has %d points, want one per channel", len(rep.Frontier))
	}
	if rep.TotalEvals == 0 || rep.TotalEvals > cfg.Budget {
		t.Errorf("cem spent %d evals, want within (0, %d]", rep.TotalEvals, cfg.Budget)
	}
	for _, p := range rep.Frontier {
		if p.Channel == mutate.OpFrozenInput && p.Window != nil {
			t.Errorf("controller channel carries a window: %+v", p)
		}
	}
	rep2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderAll(t, rep), renderAll(t, rep2)) {
		t.Error("cem mode not deterministic across same-seed runs")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Tracks: []string{"no-such-track"}, Duration: 1, Budget: 1}); err == nil ||
		!strings.Contains(err.Error(), "unknown track") {
		t.Errorf("unknown track not rejected: %v", err)
	}
	if _, err := Run(Config{Channels: []Spec{{Op: "bogus"}}, Duration: 1, Budget: 1}); err == nil {
		t.Error("unknown channel not rejected")
	}
	if _, err := Run(Config{Channels: []Spec{{Op: mutate.OpGNSSLatency}, {Op: mutate.OpGNSSLatency}}, Duration: 1, Budget: 1}); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Error("duplicate channel not rejected")
	}
	if _, err := Run(Config{Mode: "anneal", Duration: 1, Budget: 1}); err == nil {
		t.Error("unknown mode not rejected")
	}
	if _, err := Run(Config{Duration: -5, Budget: 1}); err == nil {
		t.Error("negative duration not rejected")
	}
	if _, err := Run(Config{Assertions: []string{"A99"}, Duration: 1, Budget: 1}); err == nil {
		t.Error("unknown assertion subset not rejected")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(back)
	if !bytes.Equal(a, b) {
		t.Errorf("report JSON round trip drifted\n--- want\n%s\n--- got\n%s", a, b)
	}
}
