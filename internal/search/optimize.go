package search

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"adassure/internal/mutate"
)

// Oracle answers one black-box probe: does the catalog detect an attack of
// this magnitude? The optimizer treats detection as monotone in magnitude
// — larger attacks are at least as detectable — which holds for every
// DefaultChannels operator.
type Oracle func(mag float64) (detected bool, err error)

// Point is one converged frontier point on a magnitude axis.
type Point struct {
	// Evading is the largest magnitude found that the catalog missed
	// (0 when every probed magnitude was detected: the channel has no
	// evasion region above Min).
	Evading float64 `json:"evading"`
	// Detected is the minimality certificate: the smallest magnitude found
	// that the catalog caught, bracketing Evading from above (0 when even
	// Max evaded — there is no detected neighbor to certify against).
	Detected float64 `json:"detected"`
	// Evals is the number of oracle calls spent.
	Evals int `json:"evals"`
	// Status: "converged" (bracket tightened to within Ratio), "budget"
	// (budget exhausted with a valid but loose bracket), "all-detected"
	// (detection held all the way down to Min) or "all-evading" (even Max
	// evaded).
	Status string `json:"status"`
}

// Descent statuses.
const (
	StatusConverged   = "converged"
	StatusBudget      = "budget"
	StatusAllDetected = "all-detected"
	StatusAllEvading  = "all-evading"
)

// DescendOptions tunes DescendMagnitude. Zero values select the defaults.
type DescendOptions struct {
	// Min and Max bound the magnitude axis (required, 0 < Min <= Max).
	Min, Max float64
	// Shrink is the geometric step of the descent ladder, in (0, 1)
	// (default 0.5: halve the magnitude until the catalog goes quiet).
	Shrink float64
	// Ratio is the convergence target: the bracket is converged once
	// Detected/Evading <= Ratio (default 1.15).
	Ratio float64
	// Budget caps the number of oracle calls (default 32).
	Budget int
}

func (o *DescendOptions) defaults() error {
	if o.Shrink == 0 {
		o.Shrink = 0.5
	}
	if o.Ratio == 0 {
		o.Ratio = 1.15
	}
	if o.Budget == 0 {
		o.Budget = 32
	}
	switch {
	case !(o.Min > 0) || math.IsInf(o.Min, 0) || !(o.Max >= o.Min) || math.IsInf(o.Max, 0):
		return fmt.Errorf("search: descent needs 0 < Min <= Max, got [%g, %g]", o.Min, o.Max)
	case !(o.Shrink > 0 && o.Shrink < 1):
		return fmt.Errorf("search: shrink must be in (0, 1), got %g", o.Shrink)
	case !(o.Ratio > 1):
		return fmt.Errorf("search: ratio must be > 1, got %g", o.Ratio)
	case o.Budget < 1:
		return fmt.Errorf("search: budget must be >= 1, got %d", o.Budget)
	}
	return nil
}

// DescendMagnitude runs seeded coordinate descent along one magnitude
// axis: a geometric shrink ladder from Max down until the first evading
// magnitude, then geometric bisection of the (evading, detected) bracket
// until the certificate neighbor is within Ratio of the evading point.
// The returned Point always satisfies: Evading was probed and evaded,
// Detected was probed and detected, Detected > Evading when both are set,
// and Evals <= Budget. The procedure is deterministic in its inputs.
func DescendMagnitude(oracle Oracle, opts DescendOptions) (Point, error) {
	if err := opts.defaults(); err != nil {
		return Point{}, err
	}
	evals := 0
	probe := func(m float64) (bool, error) {
		evals++
		return oracle(m)
	}

	// Shrink ladder: walk down from Max until the catalog goes quiet.
	var detected, evading float64
	m := opts.Max
	for {
		if evals >= opts.Budget {
			return Point{Evading: evading, Detected: detected, Evals: evals, Status: StatusBudget}, nil
		}
		det, err := probe(m)
		if err != nil {
			return Point{}, err
		}
		if !det {
			evading = m
			break
		}
		detected = m
		if m <= opts.Min {
			return Point{Detected: detected, Evals: evals, Status: StatusAllDetected}, nil
		}
		if m *= opts.Shrink; m < opts.Min {
			m = opts.Min
		}
	}
	if detected == 0 {
		// Max itself evaded: nothing above to certify minimality against.
		return Point{Evading: evading, Evals: evals, Status: StatusAllEvading}, nil
	}

	// Geometric bisection of the bracket until the certificate is tight.
	for detected/evading > opts.Ratio {
		if evals >= opts.Budget {
			return Point{Evading: evading, Detected: detected, Evals: evals, Status: StatusBudget}, nil
		}
		mid := math.Sqrt(evading * detected)
		if mid <= evading || mid >= detected {
			break // float64 resolution exhausted
		}
		det, err := probe(mid)
		if err != nil {
			return Point{}, err
		}
		if det {
			detected = mid
		} else {
			evading = mid
		}
	}
	return Point{Evading: evading, Detected: detected, Evals: evals, Status: StatusConverged}, nil
}

// Candidate is one cross-entropy sample: a magnitude on a channel, with an
// activation window for windowable (sensor/actuator) channels.
type Candidate struct {
	Channel int // index into the spec list the sampler was built over
	Mag     float64
	Window  *Window
}

// CEMOptions tunes the cross-entropy sampler.
type CEMOptions struct {
	// Specs are the canonical channels sampled over (required).
	Specs []Spec
	// Duration bounds sampled windows, in simulated seconds (required when
	// any spec's channel is windowable).
	Duration float64
	// Population per generation (default 12) and elite fraction retained
	// for the refit (default 1/4, at least 1).
	Population int
	// Generations (default Budget/Population, at least 1).
	Generations int
	// Budget caps total samples across all generations (default 48).
	Budget int
	// Seed drives the sampler (default 1).
	Seed int64
}

func (o *CEMOptions) defaults() error {
	if len(o.Specs) == 0 {
		return fmt.Errorf("search: cem needs at least one channel")
	}
	if o.Budget == 0 {
		o.Budget = 48
	}
	if o.Population == 0 {
		o.Population = 12
	}
	if o.Population > o.Budget {
		o.Population = o.Budget
	}
	if o.Generations == 0 {
		o.Generations = o.Budget / o.Population
		if o.Generations < 1 {
			o.Generations = 1
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	for _, s := range o.Specs {
		if windowable(s.Op) && o.Duration <= 0 {
			return fmt.Errorf("search: cem over windowable channel %q needs a positive duration", s.Op)
		}
	}
	return nil
}

// cemDist is the sampling distribution the refit updates: per channel, a
// log-normal over magnitude and (for windowable channels) normals over
// window start and length, plus a categorical weight over channels.
type cemDist struct {
	weight   []float64 // channel selection mass
	muLogM   []float64
	sigLogM  []float64
	muStart  []float64
	sigStart []float64
	muLen    []float64
	sigLen   []float64
}

// CEMSampler searches magnitude × window × channel combinations with the
// cross-entropy method: sample a population from the current distribution,
// score it, refit the distribution on the elite set. All randomness flows
// from the seed and samples are drawn sequentially, so the candidate
// sequence — and everything downstream — is deterministic.
type CEMSampler struct {
	opts CEMOptions
	rng  *rand.Rand
	dist cemDist
}

// NewCEMSampler builds a sampler over canonical specs.
func NewCEMSampler(opts CEMOptions) (*CEMSampler, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	n := len(opts.Specs)
	d := cemDist{
		weight:   make([]float64, n),
		muLogM:   make([]float64, n),
		sigLogM:  make([]float64, n),
		muStart:  make([]float64, n),
		sigStart: make([]float64, n),
		muLen:    make([]float64, n),
		sigLen:   make([]float64, n),
	}
	for i, s := range opts.Specs {
		d.weight[i] = 1 / float64(n)
		lo, hi := math.Log(s.Min), math.Log(s.Max)
		d.muLogM[i] = (lo + hi) / 2
		d.sigLogM[i] = (hi - lo) / 4
		if d.sigLogM[i] == 0 {
			d.sigLogM[i] = 0.1
		}
		d.muStart[i] = opts.Duration / 4
		d.sigStart[i] = opts.Duration / 4
		d.muLen[i] = opts.Duration / 2
		d.sigLen[i] = opts.Duration / 4
	}
	return &CEMSampler{opts: opts, rng: rand.New(rand.NewSource(opts.Seed)), dist: d}, nil
}

// Population returns the configured population size.
func (c *CEMSampler) Population() int { return c.opts.Population }

// Generations returns the configured generation count.
func (c *CEMSampler) Generations() int { return c.opts.Generations }

// Sample draws one generation of candidates.
func (c *CEMSampler) Sample() []Candidate {
	out := make([]Candidate, c.opts.Population)
	for i := range out {
		ch := c.pickChannel()
		s := c.opts.Specs[ch]
		mag := clamp(math.Exp(c.dist.muLogM[ch]+c.dist.sigLogM[ch]*c.rng.NormFloat64()), s.Min, s.Max)
		cand := Candidate{Channel: ch, Mag: mag}
		if windowable(s.Op) {
			start := clamp(c.dist.muStart[ch]+c.dist.sigStart[ch]*c.rng.NormFloat64(), 0, c.opts.Duration-0.5)
			length := clamp(c.dist.muLen[ch]+c.dist.sigLen[ch]*c.rng.NormFloat64(), 0.5, c.opts.Duration-start)
			cand.Window = &Window{Start: start, End: start + length}
		}
		out[i] = cand
	}
	return out
}

// Refit updates the distribution from the elite candidates of the last
// generation — the evading candidates with the largest magnitudes (the
// search wants the worst attack the catalog still misses). Scores pair
// with the candidates slice by index; higher is better, and only
// candidates with score > 0 (evading) join the elite set.
func (c *CEMSampler) Refit(cands []Candidate, scores []float64) {
	type scored struct {
		i     int
		score float64
	}
	var elite []scored
	for i, s := range scores {
		if s > 0 {
			elite = append(elite, scored{i, s})
		}
	}
	if len(elite) == 0 {
		return // nothing evaded: keep exploring from the same distribution
	}
	sort.SliceStable(elite, func(a, b int) bool { return elite[a].score > elite[b].score })
	keep := len(cands) / 4
	if keep < 1 {
		keep = 1
	}
	if len(elite) > keep {
		elite = elite[:keep]
	}

	// Per-channel moment refit over the elite members, smoothed 50/50 with
	// the previous distribution so a lucky generation cannot collapse it.
	n := len(c.opts.Specs)
	count := make([]float64, n)
	sumLogM := make([]float64, n)
	sumStart := make([]float64, n)
	sumLen := make([]float64, n)
	for _, e := range elite {
		cand := cands[e.i]
		count[cand.Channel]++
		sumLogM[cand.Channel] += math.Log(cand.Mag)
		if cand.Window != nil {
			sumStart[cand.Channel] += cand.Window.Start
			sumLen[cand.Channel] += cand.Window.End - cand.Window.Start
		}
	}
	const blend = 0.5
	for i := 0; i < n; i++ {
		c.dist.weight[i] = blend*c.dist.weight[i] + (1-blend)*(count[i]/float64(len(elite)))
		if count[i] == 0 {
			continue
		}
		c.dist.muLogM[i] = blend*c.dist.muLogM[i] + (1-blend)*(sumLogM[i]/count[i])
		c.dist.sigLogM[i] *= 0.8 // geometric variance decay toward the elite mode
		if windowable(c.opts.Specs[i].Op) {
			c.dist.muStart[i] = blend*c.dist.muStart[i] + (1-blend)*(sumStart[i]/count[i])
			c.dist.muLen[i] = blend*c.dist.muLen[i] + (1-blend)*(sumLen[i]/count[i])
			c.dist.sigStart[i] *= 0.8
			c.dist.sigLen[i] *= 0.8
		}
	}
}

// pickChannel draws a channel index from the categorical weights.
func (c *CEMSampler) pickChannel() int {
	total := 0.0
	for _, w := range c.dist.weight {
		total += w
	}
	u := c.rng.Float64() * total
	for i, w := range c.dist.weight {
		if u -= w; u < 0 {
			return i
		}
	}
	return len(c.dist.weight) - 1
}

// windowable reports whether the operator's fault hooks can be gated on
// simulated time (sensor/actuator channels only — see ErrWindowUnsupported).
func windowable(op string) bool {
	switch mutate.OpKind(op) {
	case mutate.KindSensor, mutate.KindActuator:
		return true
	}
	return false
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
