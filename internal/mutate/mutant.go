package mutate

import (
	"fmt"
	"math"

	"adassure/internal/control"
	"adassure/internal/fusion"
	"adassure/internal/geom"
	"adassure/internal/sensors"
	"adassure/internal/sim"
	"adassure/internal/vehicle"
)

// Instrument installs one mutant into a sim config: controller mutants via
// Config.WrapLateral/WrapSpeed, sensor and actuator faults via
// Config.Faults. The spec must be canonical. Hooks hold per-run state, so
// Instrument must be called once per run config — never share an
// instrumented config across runs. The NaN-leak mutant emits non-finite
// commands, so every instrumented run disables trace recording.
func Instrument(cfg *sim.Config, spec Spec) error {
	canon, err := spec.Canonicalize()
	if err != nil {
		return err
	}
	if canon != spec {
		return fmt.Errorf("mutate: spec %+v is not canonical (want %+v)", spec, canon)
	}
	switch spec.Kind() {
	case KindController:
		if spec.Op == OpSatRemove {
			cfg.WrapSpeed = func(inner control.Longitudinal) control.Longitudinal {
				return newUnsaturatedSpeed(inner, cfg.Vehicle)
			}
		} else {
			cfg.WrapLateral = func(inner control.Lateral) control.Lateral {
				return &mutatedLateral{inner: inner, spec: spec}
			}
		}
	case KindSensor, KindActuator:
		cfg.Faults = buildFaults(spec)
	default:
		return fmt.Errorf("mutate: operator %q has no registered kind", spec.Op)
	}
	return nil
}

// mutatedLateral wraps a pristine lateral controller and perturbs its
// input estimate, its reference path, or its output command according to
// the mutant operator. One instance serves one run.
type mutatedLateral struct {
	inner control.Lateral
	spec  Spec

	t       float64 // accumulated control time since Reset
	steps   int
	held    fusion.Estimate // frozen-input latch
	heldAt  float64
	hasHeld bool
}

// Name implements control.Lateral.
func (m *mutatedLateral) Name() string { return m.inner.Name() + "+" + m.spec.ID() }

// Reset implements control.Lateral.
func (m *mutatedLateral) Reset() {
	m.inner.Reset()
	m.t, m.steps, m.hasHeld = 0, 0, false
}

// Steer implements control.Lateral.
func (m *mutatedLateral) Steer(est fusion.Estimate, path geom.Path, dt float64) float64 {
	m.t += dt
	m.steps++

	// Input-side mutations.
	switch m.spec.Op {
	case OpFrozenInput:
		if !m.hasHeld || m.t-m.heldAt >= m.spec.Param {
			m.held, m.heldAt, m.hasHeld = est, m.t, true
		}
		est = m.held
	case OpHeadingDrop:
		s, _ := path.Project(est.Pose.Pos)
		est.Pose.Heading = path.HeadingAt(s)
	case OpLookaheadSkip:
		path = shiftedPath{Path: path, offset: m.spec.Param}
	}

	raw := m.inner.Steer(est, path, dt)

	// Output-side mutations.
	switch m.spec.Op {
	case OpGainFlip:
		raw = -raw
	case OpGainScale:
		raw *= m.spec.Param
	case OpNaNLeak:
		if m.steps%int(m.spec.Param) == 0 {
			raw = math.NaN()
		}
	}
	return raw
}

// shiftedPath presents the reference path with every projection advanced
// by a fixed arc offset — the geometry of an off-by-N waypoint-indexing
// bug in the follower. Closed paths wrap the advanced arc length; open
// paths clamp it (both handled by the underlying Path's accessors).
type shiftedPath struct {
	geom.Path
	offset float64
}

// Project implements geom.Path.
func (p shiftedPath) Project(q geom.Vec2) (s, lateral float64) {
	s, lateral = p.Path.Project(q)
	return s + p.offset, lateral
}

// unsaturatedSpeed re-derives the pristine speed PID's command with both
// saturations deleted: the anti-windup clamp on the integrator and the
// output acceleration clamp. Gains are copied from the pristine
// controller so the only behavioural difference is the missing clamps.
type unsaturatedSpeed struct {
	inner      control.Longitudinal
	kp, ki, kd float64
	integral   float64
	prevErr    float64
	hasPrev    bool
}

func newUnsaturatedSpeed(inner control.Longitudinal, p vehicle.Params) *unsaturatedSpeed {
	ref := control.NewSpeedPID(p)
	return &unsaturatedSpeed{inner: inner, kp: ref.Kp, ki: ref.Ki, kd: ref.Kd}
}

// Name implements control.Longitudinal.
func (c *unsaturatedSpeed) Name() string { return c.inner.Name() + "+" + OpSatRemove }

// Reset implements control.Longitudinal.
func (c *unsaturatedSpeed) Reset() {
	c.inner.Reset()
	c.integral, c.prevErr, c.hasPrev = 0, 0, false
}

// Accel implements control.Longitudinal.
func (c *unsaturatedSpeed) Accel(currentSpeed, targetSpeed, dt float64) float64 {
	err := targetSpeed - currentSpeed
	c.integral += err * dt // anti-windup clamp deleted
	var deriv float64
	if c.hasPrev && dt > 0 {
		deriv = (err - c.prevErr) / dt
	}
	c.prevErr = err
	c.hasPrev = true
	// Output saturation deleted.
	return c.kp*err + c.ki*c.integral + c.kd*deriv
}

// buildFaults constructs the FaultSet of a sensor/actuator mutant. Each
// call builds fresh closures (latency queues, stuck-at latches), so the
// returned set belongs to exactly one run.
func buildFaults(spec Spec) *sim.FaultSet {
	switch spec.Op {
	case OpGNSSDropout:
		onset := spec.Param
		return &sim.FaultSet{GNSS: func(fix sensors.GNSSFix, t float64) (sensors.GNSSFix, bool) {
			return fix, t < onset
		}}
	case OpGNSSLatency:
		// Stateful delay line, mirroring the standard delay attack: fixes
		// queue for Param seconds and are released (at most one per
		// incoming poll) once due, so delivered content is stale and the
		// stream opens with a silent gap while the pipeline fills.
		extra := spec.Param
		var queue []sensors.GNSSFix
		return &sim.FaultSet{GNSS: func(fix sensors.GNSSFix, t float64) (sensors.GNSSFix, bool) {
			fix.T += extra
			queue = append(queue, fix)
			if queue[0].T <= t {
				out := queue[0]
				queue = queue[1:]
				return out, true
			}
			return fix, false
		}}
	case OpGNSSQuantize:
		q := spec.Param
		return &sim.FaultSet{GNSS: func(fix sensors.GNSSFix, t float64) (sensors.GNSSFix, bool) {
			fix.Pos.X = math.Round(fix.Pos.X/q) * q
			fix.Pos.Y = math.Round(fix.Pos.Y/q) * q
			return fix, true
		}}
	case OpOdomStuck:
		onset := spec.Param
		var held float64
		var has bool
		return &sim.FaultSet{Odom: func(r sensors.OdomReading, t float64) (sensors.OdomReading, bool) {
			if t >= onset {
				if !has {
					held, has = r.Speed, true
				}
				r.Speed = held // timestamp stays fresh: stuck-at, not stale
			}
			return r, true
		}}
	case OpSteerStuck:
		onset := spec.Param
		var held float64
		var has bool
		return &sim.FaultSet{Actuator: func(cmd vehicle.Command, t float64) vehicle.Command {
			if t >= onset {
				if !has {
					held, has = cmd.Steer, true
				}
				cmd.Steer = held
			}
			return cmd
		}}
	}
	return nil
}
