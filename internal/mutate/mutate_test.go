package mutate

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"adassure/internal/events"
	"adassure/internal/obs"
)

// smallConfig is a cheap campaign for structural tests: one track, a
// three-mutant grid, short runs.
func smallConfig() Config {
	return Config{
		Tracks:   []string{"urban-loop"},
		Mutants:  []Spec{{Op: OpIdentity}, {Op: OpGainFlip}, {Op: OpGNSSDropout, Param: 5}},
		Duration: 25,
	}
}

// renderAll captures every deterministic artifact of a report: the
// canonical JSON export and the surviving-mutant report.
func renderAll(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteSurvivorReport(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMutationDeterministicAcrossWorkers asserts the kill matrix and its
// JSON export are byte-identical at workers=1, 4 and GOMAXPROCS, and with
// or without obs/event recorders attached — the same guarantee the
// harness experiments make (TestParallelDeterminism).
func TestMutationDeterministicAcrossWorkers(t *testing.T) {
	base := smallConfig()
	base.Workers = 1
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, ref)

	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		cfg := smallConfig()
		cfg.Workers = workers
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderAll(t, rep); !bytes.Equal(got, want) {
			t.Errorf("report at workers=%d differs from workers=1\n--- want\n%s\n--- got\n%s", workers, want, got)
		}
	}

	// Recorders attached must not perturb the report.
	cfg := smallConfig()
	cfg.Workers = 4
	cfg.Obs = obs.NewRegistry()
	cfg.Events = events.NewRecorder(0)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAll(t, rep); !bytes.Equal(got, want) {
		t.Errorf("report with recorders attached differs\n--- want\n%s\n--- got\n%s", want, got)
	}
	if rep2, err := Run(cfg); err != nil || !bytes.Equal(renderAll(t, rep2), want) {
		t.Errorf("repeat run with recorders differs (err=%v)", err)
	}
}

// TestDefaultGridKills pins the acceptance criteria of the default grid:
// every non-identity mutant is killed by at least one catalog assertion
// and the identity mutant survives all of them. The grid's long-time
// demonstration survivor — sub-noise GNSS quantize, invisible to every
// amplitude-based check — is now killed by the A15 lattice detector the
// adversarial-search loop (internal/search, experiment S1) motivated.
func TestDefaultGridKills(t *testing.T) {
	rep, err := Run(Config{Duration: 40})
	if err != nil {
		t.Fatal(err)
	}
	former := Spec{Op: OpGNSSQuantize, Param: 0.25}.ID()
	for _, s := range rep.Scores {
		switch {
		case s.Mutant == OpIdentity:
			if s.Killed {
				t.Errorf("identity mutant killed by %v: the wrapper perturbs the loop", s.KilledBy)
			}
		case !s.Killed:
			t.Errorf("mutant %s survived the full catalog", s.Mutant)
		case s.Latency < 0:
			t.Errorf("%s killed but latency %g", s.Mutant, s.Latency)
		}
		if s.Mutant == former && !killedBy(s, "A15") {
			t.Errorf("%s should be killed by the A15 lattice detector, got %v", former, s.KilledBy)
		}
	}
	if n := len(rep.Survivors()); n != 0 {
		t.Errorf("default grid ranked %d survivors, want none after the catalog strengthening", n)
	}
	if rep.MutationScore != 1 {
		t.Errorf("default-grid mutation score %.2f, want 1.0: every non-identity mutant killed", rep.MutationScore)
	}
}

// killedBy reports whether the assertion appears in the score's kill set.
func killedBy(s MutantScore, id string) bool {
	for _, k := range s.KilledBy {
		if k == id {
			return true
		}
	}
	return false
}

func TestCanonicalizeIdempotent(t *testing.T) {
	for _, s := range DefaultCatalog() {
		c, err := s.Canonicalize()
		if err != nil {
			t.Fatalf("catalog spec %+v rejected: %v", s, err)
		}
		if c != s {
			t.Errorf("DefaultCatalog entry %+v is not canonical (got %+v)", s, c)
		}
		c2, err := c.Canonicalize()
		if err != nil || c2 != c {
			t.Errorf("Canonicalize not idempotent for %+v: %+v, %v", c, c2, err)
		}
	}
}

func TestCanonicalizeDefaults(t *testing.T) {
	c, err := Spec{Op: OpGainScale}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Param != 3 {
		t.Errorf("gain-scale default param = %g, want 3", c.Param)
	}
	if got := c.ID(); got != "ctrl-gain-scale(3)" {
		t.Errorf("ID = %q", got)
	}
}

func TestCanonicalizeRejects(t *testing.T) {
	cases := []Spec{
		{Op: "no-such-op"},
		{Op: OpIdentity, Param: 1},      // no-param op with a parameter
		{Op: OpGainScale, Param: -3},    // below range
		{Op: OpGainScale, Param: 1e9},   // above range
		{Op: OpFrozenInput, Param: 100}, // above range
	}
	for _, s := range cases {
		if _, err := s.Canonicalize(); err == nil {
			t.Errorf("Canonicalize(%+v) accepted, want error", s)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Tracks: []string{"no-such-track"}, Duration: 1}); err == nil ||
		!strings.Contains(err.Error(), "unknown track") {
		t.Errorf("unknown track not rejected: %v", err)
	}
	if _, err := Run(Config{Mutants: []Spec{{Op: OpGainFlip}, {Op: OpGainFlip}}, Duration: 1}); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate mutant not rejected: %v", err)
	}
	if _, err := Run(Config{Mutants: []Spec{{Op: "bogus"}}, Duration: 1}); err == nil {
		t.Error("unknown operator not rejected")
	}
	if _, err := Run(Config{Duration: -5}); err == nil {
		t.Error("negative duration not rejected")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	cfg := smallConfig()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(back)
	if !bytes.Equal(a, b) {
		t.Errorf("report JSON round trip drifted\n--- want\n%s\n--- got\n%s", a, b)
	}
}

func TestKilledLookup(t *testing.T) {
	rep, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Killed(OpGainFlip, "A2") {
		t.Error("gain-flip should be killed by A2 on urban-loop")
	}
	if rep.Killed(OpIdentity, "A2") {
		t.Error("identity must not be killed")
	}
	if rep.Killed("no-such-mutant", "A2") {
		t.Error("unknown mutant should report false")
	}
	if _, ok := rep.Score(OpGainFlip); !ok {
		t.Error("Score lookup failed for grid mutant")
	}
}
