// Package mutate is the deterministic fault-injection and mutation-testing
// engine: it defines a catalog of controller-level mutants and
// sensor/actuator fault models, applies exactly one mutant per simulation
// run via wrappers around the pristine internal/control and
// internal/sensors pipelines, fans the mutant × track grid across the
// runner pool, and scores the ADAssure assertion catalog by which mutants
// each assertion kills (kill matrix, per-mutant detection latency, ranked
// surviving-mutant report). A mutant is "killed" by an assertion when the
// assertion fires on the mutated run but not on the pristine baseline of
// the same track and seed, so assertions that legitimately fire on a clean
// run can never claim a kill, and the identity mutant survives by
// construction unless the wrapper itself perturbs the loop.
package mutate

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// Kind classifies where in the stack a mutant interposes.
type Kind string

const (
	// KindController mutants wrap the control algorithms.
	KindController Kind = "controller"
	// KindSensor mutants corrupt a sensor channel upstream of fusion.
	KindSensor Kind = "sensor"
	// KindActuator mutants corrupt the executed command downstream of the
	// monitor.
	KindActuator Kind = "actuator"
)

// Operator names. Each is one fault class; the parameter (where the
// operator takes one) selects the severity/onset within the class.
const (
	// OpIdentity is the no-op mutant: the wrapper is installed but changes
	// nothing. It is the engine's false-positive guard — any assertion
	// that kills it is reacting to the instrumentation, not to a fault.
	OpIdentity = "identity"
	// OpGainFlip negates the steering command (sign error in the control
	// law — the classic "+= vs -=" mutation).
	OpGainFlip = "ctrl-gain-flip"
	// OpGainScale multiplies the steering command by Param (mistuned or
	// unit-confused gain; >1 overdrives, <1 underdrives).
	OpGainScale = "ctrl-gain-scale"
	// OpSatRemove removes the longitudinal controller's saturation: both
	// the PID anti-windup clamp and the output acceleration clamp
	// (deleted-clamp mutation; the integrator winds up and the commanded
	// accel leaves the comfort envelope).
	OpSatRemove = "ctrl-sat-remove"
	// OpFrozenInput refreshes the controller's localization input only
	// every Param seconds (stale-state bug: the controller acts on a
	// frozen estimate between refreshes).
	OpFrozenInput = "ctrl-frozen-input"
	// OpLookaheadSkip advances every path projection by Param metres
	// (off-by-N waypoint-indexing bug in the follower).
	OpLookaheadSkip = "ctrl-lookahead-skip"
	// OpNaNLeak makes every Param-th steering command NaN (uninitialised
	// value / division-by-zero leak on a periodic code path).
	OpNaNLeak = "ctrl-nan-leak"
	// OpHeadingDrop replaces the estimate's heading with the path tangent
	// at the projection (dropped heading-error correction: the controller
	// believes it is always aligned with the road).
	OpHeadingDrop = "ctrl-heading-drop"
	// OpGNSSDropout drops every GNSS fix from t = Param seconds on.
	OpGNSSDropout = "sense-gnss-dropout"
	// OpGNSSLatency delays every GNSS fix by Param seconds (stale content
	// delivered late, plus a silent gap while the pipeline fills).
	OpGNSSLatency = "sense-gnss-latency"
	// OpGNSSQuantize snaps GNSS positions to a Param-metre grid
	// (catastrophic loss of resolution, e.g. a truncated fixed-point
	// conversion).
	OpGNSSQuantize = "sense-gnss-quantize"
	// OpOdomStuck freezes the reported wheel speed at its t = Param value
	// (stuck-at sensor fault with fresh timestamps).
	OpOdomStuck = "sense-odom-stuck"
	// OpSteerStuck freezes the executed steering at its t = Param value
	// while the controller keeps commanding normally (seized actuator).
	OpSteerStuck = "act-steer-stuck"
)

// opInfo is one operator's registry entry.
type opInfo struct {
	kind    Kind
	noParam bool    // operator takes no parameter (Param must be 0)
	def     float64 // default when Param is 0
	min     float64 // inclusive bounds for the canonical parameter
	max     float64
	integer bool   // parameter is rounded to the nearest integer
	unit    string // parameter unit, for documentation
	desc    string
}

// ops is the operator registry. Parameter minima are strictly positive so
// "Param == 0 means the default" is unambiguous.
var ops = map[string]opInfo{
	OpIdentity:      {kind: KindController, noParam: true, desc: "no-op wrapper (false-positive guard)"},
	OpGainFlip:      {kind: KindController, noParam: true, desc: "steering command negated"},
	OpGainScale:     {kind: KindController, def: 3, min: 0.05, max: 20, unit: "×", desc: "steering command scaled by Param"},
	OpSatRemove:     {kind: KindController, noParam: true, desc: "longitudinal anti-windup and output saturation removed"},
	OpFrozenInput:   {kind: KindController, def: 1, min: 0.1, max: 10, unit: "s", desc: "localization input refreshed only every Param s"},
	OpLookaheadSkip: {kind: KindController, def: 8, min: 0.5, max: 20, unit: "m", desc: "path projection advanced by Param m"},
	OpNaNLeak:       {kind: KindController, def: 2, min: 2, max: 50, integer: true, unit: "steps", desc: "every Param-th steering command is NaN"},
	OpHeadingDrop:   {kind: KindController, noParam: true, desc: "estimate heading replaced by path tangent"},
	OpGNSSDropout:   {kind: KindSensor, def: 15, min: 0.5, max: 1000, unit: "s", desc: "all GNSS fixes dropped from t = Param s"},
	OpGNSSLatency:   {kind: KindSensor, def: 0.8, min: 0.05, max: 10, unit: "s", desc: "GNSS fixes delivered Param s late"},
	OpGNSSQuantize:  {kind: KindSensor, def: 2.5, min: 0.05, max: 100, unit: "m", desc: "GNSS positions snapped to a Param m grid"},
	OpOdomStuck:     {kind: KindSensor, def: 2, min: 0.5, max: 1000, unit: "s", desc: "wheel-speed reading frozen from t = Param s"},
	OpSteerStuck:    {kind: KindActuator, def: 12, min: 0.5, max: 1000, unit: "s", desc: "executed steering frozen from t = Param s"},
}

// OpNames returns every operator name in sorted order.
func OpNames() []string {
	names := make([]string, 0, len(ops))
	for n := range ops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OpKind returns the Kind of an operator ("" for unknown operators).
func OpKind(op string) Kind {
	return ops[op].kind
}

// OpRange returns the canonical parameter bounds of an operator. ok is
// false for unknown operators and for operators that take no parameter —
// callers that sweep or search a magnitude axis (internal/search) have no
// axis to move on those.
func OpRange(op string) (min, max float64, ok bool) {
	info, exists := ops[op]
	if !exists || info.noParam {
		return 0, 0, false
	}
	return info.min, info.max, true
}

// Spec identifies one mutant: an operator plus one numeric parameter.
// Param == 0 selects the operator's default; operators marked "no
// parameter" require Param == 0. The JSON form is the wire format of the
// /v1/mutate endpoint and the -json CLI output.
type Spec struct {
	Op    string  `json:"op"`
	Param float64 `json:"param,omitempty"`
}

// Canonicalize validates the spec and resolves the parameter default, so
// equivalent specs collapse onto one identity. It is idempotent: the
// canonical form of a canonical spec is itself. The receiver is not
// mutated.
func (s Spec) Canonicalize() (Spec, error) {
	info, ok := ops[s.Op]
	if !ok {
		return s, fmt.Errorf("mutate: unknown operator %q (have %v)", s.Op, OpNames())
	}
	if info.noParam {
		if s.Param != 0 {
			return s, fmt.Errorf("mutate: operator %q takes no parameter, got %g", s.Op, s.Param)
		}
		return s, nil
	}
	if s.Param == 0 {
		s.Param = info.def
	}
	if math.IsNaN(s.Param) || math.IsInf(s.Param, 0) {
		return s, fmt.Errorf("mutate: operator %q parameter must be finite, got %g", s.Op, s.Param)
	}
	if info.integer {
		s.Param = math.Round(s.Param)
	}
	if s.Param < info.min || s.Param > info.max {
		return s, fmt.Errorf("mutate: operator %q parameter %g outside [%g, %g] %s",
			s.Op, s.Param, info.min, info.max, info.unit)
	}
	return s, nil
}

// Kind reports where the mutant interposes.
func (s Spec) Kind() Kind { return ops[s.Op].kind }

// ID is the canonical display identity of a (canonical) spec:
// "ctrl-gain-scale(3)", "identity". Two canonical specs are the same
// mutant iff their IDs are equal.
func (s Spec) ID() string {
	if ops[s.Op].noParam {
		return s.Op
	}
	return s.Op + "(" + strconv.FormatFloat(s.Param, 'g', -1, 64) + ")"
}

// DefaultCatalog returns the default mutant grid: the identity guard
// first, then every controller mutant, then the sensor/actuator fault
// models. All entries are canonical.
func DefaultCatalog() []Spec {
	return []Spec{
		{Op: OpIdentity},
		{Op: OpGainFlip},
		{Op: OpGainScale, Param: 3},
		{Op: OpGainScale, Param: 0.25},
		{Op: OpSatRemove},
		{Op: OpFrozenInput, Param: 1},
		{Op: OpLookaheadSkip, Param: 8},
		{Op: OpNaNLeak, Param: 2},
		{Op: OpHeadingDrop},
		{Op: OpGNSSDropout, Param: 15},
		{Op: OpGNSSLatency, Param: 0.8},
		{Op: OpGNSSQuantize, Param: 2.5},
		// Sub-noise-floor quantization: invisible to every amplitude-based
		// check, this was the default grid's demonstration survivor until
		// the A15 lattice detector (motivated by the internal/search evasion
		// frontier, experiment S1) closed the gap.
		{Op: OpGNSSQuantize, Param: 0.25},
		{Op: OpOdomStuck, Param: 2},
		{Op: OpSteerStuck, Param: 12},
	}
}
