package mutate

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"adassure/internal/core"
	"adassure/internal/events"
	"adassure/internal/obs"
	"adassure/internal/runner"
	"adassure/internal/sim"
	"adassure/internal/track"
	"adassure/internal/vehicle"
)

// Config describes one mutation campaign. The zero value of every field is
// the campaign default.
type Config struct {
	// Controller is the lateral controller under test (default
	// "pure-pursuit").
	Controller string
	// Tracks are the route names from the track catalog (default
	// urban-loop + hairpin: one nominal route where the baseline runs
	// clean and one demanding route that stresses marginal mutants).
	Tracks []string
	// Mutants is the grid (default DefaultCatalog()). Duplicate canonical
	// IDs are rejected.
	Mutants []Spec
	// Seed drives all stochastic components of every run (default 1).
	Seed int64
	// Duration is the simulated seconds per run (default 60).
	Duration float64
	// SpeedLimit of the routes in m/s (default 6).
	SpeedLimit float64
	// Workers sizes the runner pool (default GOMAXPROCS). The report is
	// byte-identical for any value.
	Workers int
	// Obs, when non-nil, aggregates runtime metrics across every run of
	// the campaign (sim.runs counts one per grid cell plus one baseline
	// per track).
	Obs *obs.Registry
	// Events, when non-nil, records every run's timeline; tracks are
	// scoped "<mutantID>/<track>/" ("baseline/<track>/" for baselines) so
	// each cell's violation episodes stay distinct.
	Events *events.Recorder
	// Progress, when non-nil, receives (done, total) run counts.
	Progress func(done, total int)
	// Context, when non-nil, cancels the campaign early.
	Context context.Context
}

func (c *Config) defaults() error {
	if c.Controller == "" {
		c.Controller = "pure-pursuit"
	}
	if len(c.Tracks) == 0 {
		c.Tracks = []string{"urban-loop", "hairpin"}
	}
	if len(c.Mutants) == 0 {
		c.Mutants = DefaultCatalog()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Duration == 0 {
		c.Duration = 60
	}
	if c.Duration <= 0 || math.IsNaN(c.Duration) || math.IsInf(c.Duration, 0) {
		return fmt.Errorf("mutate: duration must be positive and finite, got %g", c.Duration)
	}
	if c.SpeedLimit == 0 {
		c.SpeedLimit = 6
	}
	if c.SpeedLimit <= 0 || math.IsNaN(c.SpeedLimit) || math.IsInf(c.SpeedLimit, 0) {
		return fmt.Errorf("mutate: speed limit must be positive and finite, got %g", c.SpeedLimit)
	}
	canon := make([]Spec, len(c.Mutants))
	seen := map[string]bool{}
	for i, m := range c.Mutants {
		cm, err := m.Canonicalize()
		if err != nil {
			return err
		}
		if seen[cm.ID()] {
			return fmt.Errorf("mutate: duplicate mutant %q in grid", cm.ID())
		}
		seen[cm.ID()] = true
		canon[i] = cm
	}
	c.Mutants = canon
	return nil
}

// CellResult is one (mutant × track) run scored against that track's
// pristine baseline. Baseline rows have Mutant == "baseline" and empty
// kill fields.
type CellResult struct {
	Mutant string `json:"mutant"`
	Track  string `json:"track"`
	// Fired is the sorted set of assertion IDs that fired during the run.
	Fired []string `json:"fired,omitempty"`
	// Kills is Fired minus the baseline's fired set: the assertions whose
	// firing is attributable to the mutant.
	Kills []string `json:"kills,omitempty"`
	// FirstKill is the assertion of the earliest kill-qualifying
	// violation; Latency is its raise time (the mutant is active from
	// t=0). Latency is -1 when the mutant survives this cell.
	FirstKill  string  `json:"first_kill,omitempty"`
	Latency    float64 `json:"latency_s"`
	Violations int     `json:"violations"`
	MaxTrueCTE float64 `json:"max_true_cte"`
	Diverged   bool    `json:"diverged,omitempty"`
	Finished   bool    `json:"finished,omitempty"`
}

// MutantScore aggregates one mutant across every track of the grid.
type MutantScore struct {
	Mutant string `json:"mutant"`
	Kind   Kind   `json:"kind"`
	Killed bool   `json:"killed"`
	// KilledBy is the union of per-track kills, in catalog order.
	KilledBy []string `json:"killed_by,omitempty"`
	// FirstKill/Latency are the assertion and raise time of the fastest
	// detection across tracks (-1 when the mutant survives everywhere).
	FirstKill string  `json:"first_kill,omitempty"`
	Latency   float64 `json:"latency_s"`
	// MaxTrueCTE is the worst physical deviation the mutant caused on any
	// track — the danger metric the surviving-mutant ranking sorts by.
	MaxTrueCTE float64 `json:"max_true_cte"`
	Diverged   bool    `json:"diverged,omitempty"`
}

// Report is the outcome of one campaign: the kill matrix and its
// aggregates. Its JSON encoding is canonical (struct fields and slices
// only), so byte-identical reports mean identical campaigns.
type Report struct {
	Controller string   `json:"controller"`
	Seed       int64    `json:"seed"`
	Duration   float64  `json:"duration_s"`
	Tracks     []string `json:"tracks"`
	// Assertions is the catalog column order of the kill matrix.
	Assertions []string     `json:"assertions"`
	Baselines  []CellResult `json:"baselines"`
	Cells      []CellResult `json:"cells"`
	// Scores has one entry per mutant, in grid order.
	Scores []MutantScore `json:"scores"`
	// MutationScore is killed ÷ total over the non-identity mutants.
	MutationScore float64 `json:"mutation_score"`
}

// Run executes the campaign: one pristine baseline per track, then the
// full mutant × track grid, fanned across the runner pool with
// index-ordered collection, so the report is deterministic in Config for
// any worker count.
func Run(cfg Config) (*Report, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	catalog, err := track.Catalog(cfg.SpeedLimit)
	if err != nil {
		return nil, err
	}
	tracks := make([]*track.Track, len(cfg.Tracks))
	for i, name := range cfg.Tracks {
		tr, ok := catalog[name]
		if !ok {
			return nil, fmt.Errorf("mutate: unknown track %q (have %v)", name, track.Names(catalog))
		}
		tracks[i] = tr
	}

	// Job grid: baselines first (track order), then mutant-major.
	type job struct {
		mutant int // -1 = baseline
		track  int
	}
	jobs := make([]job, 0, len(tracks)*(len(cfg.Mutants)+1))
	for ti := range tracks {
		jobs = append(jobs, job{mutant: -1, track: ti})
	}
	for mi := range cfg.Mutants {
		for ti := range tracks {
			jobs = append(jobs, job{mutant: mi, track: ti})
		}
	}

	type cellOut struct {
		fired      []string
		violations []core.Violation
		maxTrueCTE float64
		diverged   bool
		finished   bool
	}
	outs, err := runner.Map(runner.Options{
		Workers:    cfg.Workers,
		Context:    cfg.Context,
		OnProgress: cfg.Progress,
		Obs:        cfg.Obs,
		Events:     cfg.Events,
	}, jobs, func(ctx context.Context, _ int, j job) (cellOut, error) {
		scope := "baseline/" + cfg.Tracks[j.track] + "/"
		if j.mutant >= 0 {
			scope = cfg.Mutants[j.mutant].ID() + "/" + cfg.Tracks[j.track] + "/"
		}
		mon := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true})
		sc := sim.Config{
			Track:      tracks[j.track],
			Controller: cfg.Controller,
			Vehicle:    vehicle.ShuttleParams(),
			Seed:       cfg.Seed,
			Duration:   cfg.Duration,
			Monitor:    mon,
			// The NaN-leak mutant emits non-finite commands the trace
			// layer would reject, and the campaign never reads traces.
			DisableTrace: true,
			Obs:          cfg.Obs,
			Events:       cfg.Events,
			EventScope:   scope,
			Context:      ctx,
		}
		if j.mutant >= 0 {
			if err := Instrument(&sc, cfg.Mutants[j.mutant]); err != nil {
				return cellOut{}, err
			}
		}
		res, err := sim.Run(sc)
		if err != nil {
			return cellOut{}, err
		}
		return cellOut{
			fired:      mon.FiredIDs(),
			violations: res.Violations,
			maxTrueCTE: res.MaxTrueCTE,
			diverged:   res.Diverged,
			finished:   res.Finished,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	// Assertion catalog order for matrix columns and kill sorting.
	assertionOrder := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true}).AssertionIDs()
	orderIdx := make(map[string]int, len(assertionOrder))
	for i, id := range assertionOrder {
		orderIdx[id] = i
	}

	rep := &Report{
		Controller: cfg.Controller,
		Seed:       cfg.Seed,
		Duration:   cfg.Duration,
		Tracks:     append([]string(nil), cfg.Tracks...),
		Assertions: assertionOrder,
	}

	baselineFired := make([]map[string]bool, len(tracks))
	for ti := range tracks {
		o := outs[ti]
		baselineFired[ti] = map[string]bool{}
		for _, id := range o.fired {
			baselineFired[ti][id] = true
		}
		rep.Baselines = append(rep.Baselines, CellResult{
			Mutant:     "baseline",
			Track:      cfg.Tracks[ti],
			Fired:      o.fired,
			Latency:    -1,
			Violations: len(o.violations),
			MaxTrueCTE: o.maxTrueCTE,
			Diverged:   o.diverged,
			Finished:   o.finished,
		})
	}

	killedNonIdentity, nonIdentity := 0, 0
	for mi, spec := range cfg.Mutants {
		score := MutantScore{
			Mutant:  spec.ID(),
			Kind:    spec.Kind(),
			Latency: -1,
		}
		killedBy := map[string]bool{}
		for ti := range tracks {
			o := outs[len(tracks)+mi*len(tracks)+ti]
			cell := CellResult{
				Mutant:     spec.ID(),
				Track:      cfg.Tracks[ti],
				Fired:      o.fired,
				Latency:    -1,
				Violations: len(o.violations),
				MaxTrueCTE: o.maxTrueCTE,
				Diverged:   o.diverged,
				Finished:   o.finished,
			}
			for _, id := range o.fired {
				if !baselineFired[ti][id] {
					cell.Kills = append(cell.Kills, id)
					killedBy[id] = true
				}
			}
			sortByCatalog(cell.Kills, orderIdx)
			// Detection latency: the first violation of a kill-qualifying
			// assertion (violations are in raise order; mutants are active
			// from t=0, so the raise time is the latency).
			for _, v := range o.violations {
				if !baselineFired[ti][v.AssertionID] {
					cell.FirstKill, cell.Latency = v.AssertionID, v.T
					break
				}
			}
			if cell.Latency >= 0 && (score.Latency < 0 || cell.Latency < score.Latency) {
				score.FirstKill, score.Latency = cell.FirstKill, cell.Latency
			}
			if cell.MaxTrueCTE > score.MaxTrueCTE {
				score.MaxTrueCTE = cell.MaxTrueCTE
			}
			score.Diverged = score.Diverged || cell.Diverged
			rep.Cells = append(rep.Cells, cell)
		}
		for id := range killedBy {
			score.KilledBy = append(score.KilledBy, id)
		}
		sortByCatalog(score.KilledBy, orderIdx)
		score.Killed = len(score.KilledBy) > 0
		if spec.Op != OpIdentity {
			nonIdentity++
			if score.Killed {
				killedNonIdentity++
			}
		}
		rep.Scores = append(rep.Scores, score)
	}
	if nonIdentity > 0 {
		rep.MutationScore = float64(killedNonIdentity) / float64(nonIdentity)
	}
	return rep, nil
}

// sortByCatalog orders assertion IDs by catalog registration order
// (unknown IDs last, alphabetically).
func sortByCatalog(ids []string, orderIdx map[string]int) {
	sort.Slice(ids, func(i, j int) bool {
		oi, iok := orderIdx[ids[i]]
		oj, jok := orderIdx[ids[j]]
		if iok != jok {
			return iok
		}
		if !iok {
			return ids[i] < ids[j]
		}
		return oi < oj
	})
}

// Score returns the aggregate score of one mutant ID.
func (r *Report) Score(mutantID string) (MutantScore, bool) {
	for _, s := range r.Scores {
		if s.Mutant == mutantID {
			return s, true
		}
	}
	return MutantScore{}, false
}

// Killed reports whether the assertion killed the mutant on any track.
func (r *Report) Killed(mutantID, assertionID string) bool {
	s, ok := r.Score(mutantID)
	if !ok {
		return false
	}
	for _, id := range s.KilledBy {
		if id == assertionID {
			return true
		}
	}
	return false
}

// Survivors returns the non-identity mutants no assertion killed, ranked
// most dangerous first: by worst physical deviation descending, then by
// mutant ID for stability.
func (r *Report) Survivors() []MutantScore {
	var out []MutantScore
	for _, s := range r.Scores {
		if !s.Killed && s.Mutant != OpIdentity {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Diverged != out[j].Diverged {
			return out[i].Diverged
		}
		if out[i].MaxTrueCTE != out[j].MaxTrueCTE {
			return out[i].MaxTrueCTE > out[j].MaxTrueCTE
		}
		return out[i].Mutant < out[j].Mutant
	})
	return out
}

// WriteJSON writes the canonical JSON encoding of the report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON decodes a report written by WriteJSON.
func ReadJSON(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("mutate: decode report: %w", err)
	}
	return &rep, nil
}

// WriteSurvivorReport renders the ranked surviving-mutant report: the
// mutants the whole assertion catalog missed, most dangerous first. This
// is the actionable output of a campaign — each line is a fault class the
// catalog needs a new or tighter assertion for.
func (r *Report) WriteSurvivorReport(w io.Writer) error {
	killed := 0
	total := 0
	for _, s := range r.Scores {
		if s.Mutant == OpIdentity {
			continue
		}
		total++
		if s.Killed {
			killed++
		}
	}
	if _, err := fmt.Fprintf(w, "surviving-mutant report — %s, tracks %v, seed %d, %.0f s/run\n",
		r.Controller, r.Tracks, r.Seed, r.Duration); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "mutation score: %d/%d non-identity mutants killed (%.0f%%)\n",
		killed, total, 100*r.MutationScore); err != nil {
		return err
	}
	if id, ok := r.Score(OpIdentity); ok {
		status := "survived all assertions (no false positives from the instrumentation)"
		if id.Killed {
			status = fmt.Sprintf("KILLED by %v — the wrapper perturbs the loop; the matrix is unsound", id.KilledBy)
		}
		if _, err := fmt.Fprintf(w, "identity mutant: %s\n", status); err != nil {
			return err
		}
	}
	survivors := r.Survivors()
	if len(survivors) == 0 {
		_, err := fmt.Fprintln(w, "survivors: none — every non-identity mutant was killed")
		return err
	}
	if _, err := fmt.Fprintf(w, "survivors (%d, ranked by worst physical deviation):\n", len(survivors)); err != nil {
		return err
	}
	for i, s := range survivors {
		divergedNote := ""
		if s.Diverged {
			divergedNote = "  DIVERGED"
		}
		if _, err := fmt.Fprintf(w, "  %d. %-28s %-10s max|trueCTE|=%.2f m%s\n",
			i+1, s.Mutant, s.Kind, s.MaxTrueCTE, divergedNote); err != nil {
			return err
		}
	}
	return nil
}
