package mutate

import (
	"encoding/json"
	"math"
	"testing"

	"adassure/internal/control"
	"adassure/internal/fusion"
	"adassure/internal/geom"
	"adassure/internal/sensors"
	"adassure/internal/vehicle"
)

// FuzzMutantSpec checks the spec contract over arbitrary (op, param)
// inputs: any accepted spec canonicalizes stably (idempotent, stable ID),
// round-trips through JSON, and its mutant never produces a non-finite
// controller command on a clean synthetic drive — with the single
// documented exception of the NaN-leak operator, whose leaked NaN is the
// mutation itself (the simulator's plant sanitises it and the monitor
// skips the affected frames).
func FuzzMutantSpec(f *testing.F) {
	for _, s := range DefaultCatalog() {
		f.Add(s.Op, s.Param)
	}
	f.Add("no-such-op", 1.0)
	f.Add(OpGainScale, math.NaN())
	f.Add(OpGainScale, math.Inf(1))
	f.Add(OpNaNLeak, 2.7)
	f.Add(OpIdentity, 0.5)
	f.Add("", 0.0)

	f.Fuzz(func(t *testing.T, op string, param float64) {
		spec := Spec{Op: op, Param: param}
		canon, err := spec.Canonicalize()
		if err != nil {
			return // rejected specs are out of contract
		}

		// Canonicalization is a fixed point with a stable identity.
		again, err := canon.Canonicalize()
		if err != nil {
			t.Fatalf("canonical spec %+v rejected on re-canonicalize: %v", canon, err)
		}
		if again != canon {
			t.Fatalf("Canonicalize not idempotent: %+v -> %+v", canon, again)
		}
		if canon.ID() == "" || canon.ID() != again.ID() {
			t.Fatalf("unstable ID for %+v: %q vs %q", canon, canon.ID(), again.ID())
		}
		if canon.Kind() == "" {
			t.Fatalf("accepted spec %+v has no kind", canon)
		}

		// JSON round trip preserves the canonical spec exactly.
		b, err := json.Marshal(canon)
		if err != nil {
			t.Fatalf("marshal %+v: %v", canon, err)
		}
		var back Spec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != canon {
			t.Fatalf("JSON round trip drifted: %+v -> %s -> %+v", canon, b, back)
		}

		// Clean synthetic drive: the mutated controllers and fault hooks
		// must keep every command finite (NaN-leak steering excepted).
		driveClean(t, canon)
	})
}

// driveClean exercises the mutant's hooks against a synthetic clean run:
// a circular reference path with on-path estimates for the controller
// wrappers, nominal readings for the fault hooks.
func driveClean(t *testing.T, spec Spec) {
	t.Helper()
	params := vehicle.ShuttleParams()

	const radius = 20.0
	pts := make([]geom.Vec2, 36)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / float64(len(pts))
		pts[i] = geom.V(radius*math.Cos(a), radius*math.Sin(a))
	}
	path, err := geom.NewClosedPolyline(pts)
	if err != nil {
		t.Fatalf("build fuzz path: %v", err)
	}

	if spec.Kind() == KindController && spec.Op != OpSatRemove {
		inner, err := control.ByName("pure-pursuit", params)
		if err != nil {
			t.Fatal(err)
		}
		m := &mutatedLateral{inner: inner, spec: spec}
		leakEvery := 0
		if spec.Op == OpNaNLeak {
			leakEvery = int(spec.Param)
		}
		for i := 1; i <= 200; i++ {
			a := 0.02 * float64(i)
			est := fusion.Estimate{
				T:       0.05 * float64(i),
				Pose:    geom.NewPose(radius*math.Cos(a), radius*math.Sin(a), a+math.Pi/2),
				Speed:   5,
				YawRate: 5 / radius,
			}
			raw := m.Steer(est, path, 0.05)
			if math.IsInf(raw, 0) {
				t.Fatalf("%s: infinite steer at step %d", spec.ID(), i)
			}
			if math.IsNaN(raw) && (leakEvery == 0 || i%leakEvery != 0) {
				t.Fatalf("%s: NaN steer at step %d outside the leak schedule", spec.ID(), i)
			}
		}
		m.Reset()
	}

	if spec.Op == OpSatRemove {
		sp := newUnsaturatedSpeed(control.NewSpeedPID(params), params)
		v := 1.0
		for i := 0; i < 200; i++ {
			accel := sp.Accel(v, 6, 0.05)
			if math.IsNaN(accel) || math.IsInf(accel, 0) {
				t.Fatalf("%s: non-finite accel %g at step %d", spec.ID(), accel, i)
			}
			v += geom.Clamp(accel, -params.MaxBrake, params.MaxAccel) * 0.05
		}
		sp.Reset()
	}

	if spec.Kind() == KindSensor || spec.Kind() == KindActuator {
		faults := buildFaults(spec)
		if faults == nil {
			t.Fatalf("%s: no fault set built", spec.ID())
		}
		for i := 0; i < 100; i++ {
			tm := 0.1 * float64(i)
			if faults.GNSS != nil {
				fix := sensors.GNSSFix{T: tm, Pos: geom.V(tm*5, 1), Speed: 5, Valid: true}
				if out, deliver := faults.GNSS(fix, tm); deliver {
					if !out.Pos.IsFinite() || math.IsNaN(out.T) {
						t.Fatalf("%s: non-finite GNSS output %+v", spec.ID(), out)
					}
				}
			}
			if faults.Odom != nil {
				r := sensors.OdomReading{T: tm, Speed: 5, Valid: true}
				if out, deliver := faults.Odom(r, tm); deliver {
					if math.IsNaN(out.Speed) || math.IsInf(out.Speed, 0) {
						t.Fatalf("%s: non-finite odom output %+v", spec.ID(), out)
					}
				}
			}
			if faults.Actuator != nil {
				cmd := faults.Actuator(vehicle.Command{Steer: 0.1, Accel: 0.5}, tm)
				if math.IsNaN(cmd.Steer) || math.IsInf(cmd.Steer, 0) ||
					math.IsNaN(cmd.Accel) || math.IsInf(cmd.Accel, 0) {
					t.Fatalf("%s: non-finite actuator output %+v", spec.ID(), cmd)
				}
			}
		}
	}
}
