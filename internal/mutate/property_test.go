package mutate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adassure/internal/events"
)

// propertyTracks keeps property-test campaigns cheap: one short run per
// mutant on one route.
var propertyTracks = []string{"urban-loop", "hairpin"}

// TestPropertyKillHasEpisodeAndLatency checks, over randomly drawn
// (mutant, track, seed) cells, the engine's cross-layer invariants:
//
//  1. every kill recorded in the matrix has a corresponding violation
//     episode in the event timeline (a Begin on the cell's scoped
//     "assertion/<ID>" track),
//  2. detection latency is non-negative whenever a mutant is killed and
//     -1 exactly when it survives.
func TestPropertyKillHasEpisodeAndLatency(t *testing.T) {
	catalog := DefaultCatalog()
	property := func(mutantPick, trackPick uint8, seedPick uint8) bool {
		spec := catalog[int(mutantPick)%len(catalog)]
		trackName := propertyTracks[int(trackPick)%len(propertyTracks)]
		rec := events.NewRecorder(0)
		rep, err := Run(Config{
			Tracks:   []string{trackName},
			Mutants:  []Spec{spec},
			Seed:     int64(seedPick%4) + 1,
			Duration: 30,
			Events:   rec,
		})
		if err != nil {
			t.Logf("run failed for %s: %v", spec.ID(), err)
			return false
		}
		evs := rec.Events()
		for _, cell := range rep.Cells {
			if (cell.Latency >= 0) != (len(cell.Kills) > 0) {
				t.Logf("%s/%s: latency %g inconsistent with kills %v",
					cell.Mutant, cell.Track, cell.Latency, cell.Kills)
				return false
			}
			for _, id := range cell.Kills {
				wantTrack := cell.Mutant + "/" + cell.Track + "/assertion/" + id
				found := false
				for _, e := range evs {
					if e.Kind == events.Begin && e.Cat == events.CatViolation && e.Track == wantTrack {
						found = true
						break
					}
				}
				if !found {
					t.Logf("%s/%s: kill by %s has no violation episode on track %q",
						cell.Mutant, cell.Track, id, wantTrack)
					return false
				}
			}
		}
		for _, s := range rep.Scores {
			if s.Killed && s.Latency < 0 {
				t.Logf("%s: killed but latency %g", s.Mutant, s.Latency)
				return false
			}
			if !s.Killed && s.Latency != -1 {
				t.Logf("%s: survived but latency %g", s.Mutant, s.Latency)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 8,
		Rand:     rand.New(rand.NewSource(1)),
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyIdentityNeverKilled is the false-positive guard: over random
// (track, seed) draws, the identity mutant — whose run is definitionally
// the baseline run — must never be killed by any assertion.
func TestPropertyIdentityNeverKilled(t *testing.T) {
	property := func(trackPick, seedPick uint8) bool {
		trackName := propertyTracks[int(trackPick)%len(propertyTracks)]
		rep, err := Run(Config{
			Tracks:   []string{trackName},
			Mutants:  []Spec{{Op: OpIdentity}},
			Seed:     int64(seedPick%5) + 1,
			Duration: 30,
		})
		if err != nil {
			t.Logf("run failed: %v", err)
			return false
		}
		s := rep.Scores[0]
		if s.Killed || len(s.KilledBy) > 0 || s.Latency != -1 {
			t.Logf("identity killed on %s seed %d: %+v", trackName, int64(seedPick%5)+1, s)
			return false
		}
		// The identity cell must reproduce the baseline exactly: same
		// fired set and violation count.
		base, cell := rep.Baselines[0], rep.Cells[0]
		if cell.Violations != base.Violations || len(cell.Fired) != len(base.Fired) {
			t.Logf("identity cell drifted from baseline: %+v vs %+v", cell, base)
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 6,
		Rand:     rand.New(rand.NewSource(2)),
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}
