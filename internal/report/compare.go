package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"adassure/internal/core"
	"adassure/internal/sim"
)

// CompareInput bundles a before/after pair of runs of the same scenario —
// the artifact of one iteration of the debug loop (e.g. unguarded vs
// guarded stack, or two controller tunings).
type CompareInput struct {
	Title         string
	BeforeLabel   string
	AfterLabel    string
	Before, After *sim.Result
	BeforeViol    []core.Violation
	AfterViol     []core.Violation
	// AttackOnset for post-onset violation counting; negative = count all.
	AttackOnset float64
}

// WriteCompare renders the before/after comparison as Markdown.
func WriteCompare(w io.Writer, in CompareInput) error {
	if in.Before == nil || in.After == nil {
		return fmt.Errorf("report: compare needs both results")
	}
	if in.Title == "" {
		in.Title = "ADAssure debug-loop comparison"
	}
	if in.BeforeLabel == "" {
		in.BeforeLabel = "before"
	}
	if in.AfterLabel == "" {
		in.AfterLabel = "after"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n\n", in.Title)
	fmt.Fprintf(&b, "| metric | %s | %s | change |\n|---|---|---|---|\n", in.BeforeLabel, in.AfterLabel)

	row := func(name string, bv, av float64, unit string, lowerBetter bool) {
		change := "-"
		switch {
		case bv == av:
			change = "unchanged"
		case av == 0 && bv != 0:
			change = "eliminated"
		case bv != 0:
			f := av / bv
			arrow := "worse"
			if (av < bv) == lowerBetter {
				arrow = "better"
			}
			change = fmt.Sprintf("%.2f× (%s)", f, arrow)
		}
		fmt.Fprintf(&b, "| %s | %.2f%s | %.2f%s | %s |\n", name, bv, unit, av, unit, change)
	}
	row("max |true CTE|", in.Before.MaxTrueCTE, in.After.MaxTrueCTE, " m", true)
	row("RMS true CTE", in.Before.RMSTrueCTE, in.After.RMSTrueCTE, " m", true)
	row("route progress", in.Before.ProgressTotal, in.After.ProgressTotal, " m", false)
	row("fallback time", in.Before.FallbackTime, in.After.FallbackTime, " s", false)

	countPost := func(vs []core.Violation) int {
		if in.AttackOnset < 0 {
			return len(vs)
		}
		n := 0
		for _, v := range vs {
			if v.T >= in.AttackOnset {
				n++
			}
		}
		return n
	}
	row("violation episodes", float64(countPost(in.BeforeViol)), float64(countPost(in.AfterViol)), "", true)
	if in.Before.Diverged && !in.After.Diverged {
		b.WriteString("\n**The before-run diverged; the after-run did not.**\n")
	}

	// Which assertions cleared, which remain.
	set := func(vs []core.Violation) map[string]bool {
		m := map[string]bool{}
		for _, v := range vs {
			if in.AttackOnset < 0 || v.T >= in.AttackOnset {
				m[v.AssertionID] = true
			}
		}
		return m
	}
	before, after := set(in.BeforeViol), set(in.AfterViol)
	var cleared, remaining []string
	for id := range before {
		if !after[id] {
			cleared = append(cleared, id)
		}
	}
	for id := range after {
		remaining = append(remaining, id)
	}
	sort.Strings(cleared)
	sort.Strings(remaining)
	if len(cleared) > 0 {
		fmt.Fprintf(&b, "\ncleared assertions: %s\n", strings.Join(cleared, " "))
	}
	if len(remaining) > 0 {
		fmt.Fprintf(&b, "\nstill firing: %s\n", strings.Join(remaining, " "))
	} else {
		b.WriteString("\nno assertions firing after the fix.\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
