// Package report renders complete Markdown debugging reports for a run:
// scenario metadata, tracking summary, comfort measures, the violation
// timeline with evidence, the ranked root-cause diagnosis, and key signal
// excerpts — the artifact an engineer files with a bug ticket.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"adassure/internal/core"
	"adassure/internal/diagnosis"
	"adassure/internal/metrics"
	"adassure/internal/sim"
)

// Input bundles everything a report covers.
type Input struct {
	// Title heads the report.
	Title string
	// Scenario metadata rendered as a key/value table.
	Scenario map[string]string
	// Result is the simulation outcome (required).
	Result *sim.Result
	// Violations is the monitor record (may be empty).
	Violations []core.Violation
	// AttackOnset marks the ground-truth onset for latency reporting;
	// negative when unknown/clean.
	AttackOnset float64
	// MaxTimelineRows bounds the violation listing (default 25).
	MaxTimelineRows int
}

// Write renders the report as Markdown.
func Write(w io.Writer, in Input) error {
	if in.Result == nil {
		return fmt.Errorf("report: nil result")
	}
	if in.Title == "" {
		in.Title = "ADAssure run report"
	}
	if in.MaxTimelineRows <= 0 {
		in.MaxTimelineRows = 25
	}
	var b strings.Builder

	fmt.Fprintf(&b, "# %s\n\n", in.Title)

	// Scenario block.
	if len(in.Scenario) > 0 {
		b.WriteString("## Scenario\n\n")
		keys := make([]string, 0, len(in.Scenario))
		for k := range in.Scenario {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("| key | value |\n|---|---|\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "| %s | %s |\n", k, in.Scenario[k])
		}
		b.WriteString("\n")
	}

	// Run summary.
	r := in.Result
	b.WriteString("## Run summary\n\n")
	fmt.Fprintf(&b, "- simulated time: **%.1f s** (%d control steps)\n", r.SimTime, r.Steps)
	fmt.Fprintf(&b, "- route progress: **%.1f m** (%d laps, finished=%v)\n", r.ProgressTotal, r.Laps, r.Finished)
	fmt.Fprintf(&b, "- tracking: max |true CTE| **%.2f m**, RMS %.2f m, believed max %.2f m\n",
		r.MaxTrueCTE, r.RMSTrueCTE, r.MaxEstCTE)
	if r.Diverged {
		b.WriteString("- **RUN DIVERGED** — the vehicle left the 100 m corridor\n")
	}
	if r.FallbackTime > 0 {
		fmt.Fprintf(&b, "- guard fallback active for **%.1f s**\n", r.FallbackTime)
	}
	if c := metrics.ComfortFrom(r.Trace); c.MaxLatAccel > 0 {
		fmt.Fprintf(&b, "- comfort: max lateral accel %.2f m/s² (RMS %.2f), max jerk %.1f m/s³, %.1f steering reversals/min\n",
			c.MaxLatAccel, c.RMSLatAccel, c.MaxJerk, c.SteerReversalsPerMin)
	}
	b.WriteString("\n")

	// Detection block.
	if in.AttackOnset >= 0 {
		d := metrics.Detect(in.Violations, in.AttackOnset)
		b.WriteString("## Detection\n\n")
		if d.Detected {
			fmt.Fprintf(&b, "- attack onset t=%.1f s detected by **%s** after **%.2f s**\n", in.AttackOnset, d.ByID, d.Latency)
		} else {
			fmt.Fprintf(&b, "- attack onset t=%.1f s **not detected**\n", in.AttackOnset)
		}
		fmt.Fprintf(&b, "- pre-onset violations (false positives): %d\n\n", d.FalsePositives)
	}

	// Violation timeline.
	b.WriteString("## Violation timeline\n\n")
	if len(in.Violations) == 0 {
		b.WriteString("No assertion violations — nominal run.\n\n")
	} else {
		b.WriteString("| t (s) | id | assertion | severity | duration (s) | key evidence |\n|---|---|---|---|---|---|\n")
		shown := in.Violations
		if len(shown) > in.MaxTimelineRows {
			shown = shown[:in.MaxTimelineRows]
		}
		for _, v := range shown {
			dur := "open"
			if v.Duration > 0 {
				dur = fmt.Sprintf("%.2f", v.Duration)
			}
			fmt.Fprintf(&b, "| %.2f | %s | %s | %s | %s | %s |\n",
				v.T, v.AssertionID, v.Name, v.Severity, dur, evidenceSummary(v.Evidence))
		}
		if len(in.Violations) > in.MaxTimelineRows {
			fmt.Fprintf(&b, "\n… %d further episodes omitted.\n", len(in.Violations)-in.MaxTimelineRows)
		}
		b.WriteString("\n")
	}

	// Diagnosis.
	b.WriteString("## Root-cause diagnosis\n\n")
	hyps := diagnosis.Diagnose(in.Violations)
	top := hyps
	if len(top) > 3 {
		top = top[:3]
	}
	for i, h := range top {
		fmt.Fprintf(&b, "%d. **%s** (%.0f%%) — %s\n", i+1, h.Cause, h.Confidence*100, h.Rationale)
	}
	b.WriteString("\n")

	// Signal excerpts.
	if r.Trace != nil {
		b.WriteString("## Signal summary\n\n")
		b.WriteString("| signal | samples | min | max | mean | rms |\n|---|---|---|---|---|---|\n")
		for _, sig := range r.Trace.Signals() {
			st := r.Trace.SignalStats(sig)
			fmt.Fprintf(&b, "| %s | %d | %.3f | %.3f | %.3f | %.3f |\n",
				sig, st.Count, st.Min, st.Max, st.Mean, st.RMS)
		}
		b.WriteString("\n")
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// evidenceSummary renders up to three evidence entries compactly, sorted
// by key for determinism.
func evidenceSummary(ev map[string]float64) string {
	if len(ev) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(ev))
	for k := range ev {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > 3 {
		keys = keys[:3]
	}
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%.3g", k, ev[k])
	}
	return strings.Join(parts, ", ")
}
