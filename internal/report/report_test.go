package report

import (
	"bytes"
	"strings"
	"testing"

	"adassure/internal/attacks"
	"adassure/internal/core"
	"adassure/internal/sim"
	"adassure/internal/track"
)

func attackedRun(t *testing.T) (*sim.Result, []core.Violation) {
	t.Helper()
	tr, err := track.UrbanLoop(6)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := attacks.Standard(attacks.ClassFreeze, attacks.Window{Start: 20, End: 50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	mon := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true})
	res, err := sim.Run(sim.Config{
		Track: tr, Controller: "pure-pursuit", Seed: 1, Duration: 60,
		Campaign: camp, Monitor: mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, mon.Violations()
}

func TestWriteFullReport(t *testing.T) {
	res, vs := attackedRun(t)
	var buf bytes.Buffer
	err := Write(&buf, Input{
		Title:       "freeze attack investigation",
		Scenario:    map[string]string{"track": "urban-loop", "attack": "gnss-freeze", "seed": "1"},
		Result:      res,
		Violations:  vs,
		AttackOnset: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# freeze attack investigation",
		"## Scenario",
		"| track | urban-loop |",
		"## Run summary",
		"## Detection",
		"detected by **A10**",
		"## Violation timeline",
		"## Root-cause diagnosis",
		"**gnss-freeze**",
		"## Signal summary",
		"| cte_true |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteCleanReport(t *testing.T) {
	tr, err := track.UrbanLoop(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{Track: tr, Controller: "lqr-mpc", Seed: 1, Duration: 20})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, Input{Result: res, AttackOnset: -1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "nominal run") {
		t.Error("clean report should state nominal")
	}
	if strings.Contains(out, "## Detection") {
		t.Error("clean report should omit the detection block")
	}
	if !strings.Contains(out, "# ADAssure run report") {
		t.Error("default title missing")
	}
}

func TestWriteValidation(t *testing.T) {
	if err := Write(&bytes.Buffer{}, Input{}); err == nil {
		t.Error("nil result accepted")
	}
}

func TestTimelineTruncation(t *testing.T) {
	res, _ := attackedRun(t)
	var many []core.Violation
	for i := 0; i < 40; i++ {
		many = append(many, core.Violation{AssertionID: "A1", Name: "position-jump", T: float64(i), Duration: 0.1})
	}
	var buf bytes.Buffer
	if err := Write(&buf, Input{Result: res, Violations: many, AttackOnset: -1, MaxTimelineRows: 10}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "30 further episodes omitted") {
		t.Error("long timeline not truncated")
	}
}

func TestEvidenceSummary(t *testing.T) {
	if got := evidenceSummary(nil); got != "-" {
		t.Errorf("empty evidence = %q", got)
	}
	got := evidenceSummary(map[string]float64{"b": 2, "a": 1, "c": 3, "d": 4})
	if !strings.HasPrefix(got, "a=1, b=2, c=3") {
		t.Errorf("evidence summary = %q (want sorted, capped at 3)", got)
	}
}

func TestWriteCompare(t *testing.T) {
	before, beforeViol := attackedRun(t)
	// Guarded re-run of the same scenario.
	tr, err := track.UrbanLoop(6)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := attacks.Standard(attacks.ClassFreeze, attacks.Window{Start: 20, End: 50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	mon := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true})
	after, err := sim.Run(sim.Config{
		Track: tr, Controller: "pure-pursuit", Seed: 1, Duration: 60,
		Campaign: camp, Monitor: mon,
		Guard: sim.GuardConfig{Enabled: true, AssertionTrigger: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = WriteCompare(&buf, CompareInput{
		Title:       "freeze: unguarded vs guarded",
		BeforeLabel: "unguarded", AfterLabel: "guarded",
		Before: before, After: after,
		BeforeViol: beforeViol, AfterViol: mon.Violations(),
		AttackOnset: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# freeze: unguarded vs guarded",
		"| max |true CTE|",
		"better",
		"fallback time",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare report missing %q:\n%s", want, out)
		}
	}
	if err := WriteCompare(&buf, CompareInput{}); err == nil {
		t.Error("nil results accepted")
	}
}
