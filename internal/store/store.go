// Package store is the persistent result store of the serving tier: an
// append-only log of (content-address key → response body) records that
// backs the in-memory LRU, so cached evidence survives process restarts.
//
// Layout. A store directory holds numbered segment files
// (00000001.seg, 00000002.seg, …). Records are appended to the highest
// segment until it reaches MaxSegmentBytes, then a fresh segment is
// started. Each record is framed as
//
//	magic   uint32  "ADSR" (0x41445352), little-endian
//	keyLen  uint32
//	bodyLen uint32
//	key     keyLen bytes
//	body    bodyLen bytes
//	crc     uint32  CRC-32C (Castagnoli) over magic..body
//
// so a reader can verify every byte it trusts. Keys are the service's
// canonical-request SHA-256 addresses; a re-put of an existing key
// appends a fresh record and repoints the index (the old record becomes
// garbage that leaves with its segment).
//
// Durability and recovery. Writes are appended and (by default) fsynced
// per put; Open replays every segment to rebuild the in-memory index.
// A torn tail — a record cut short by a crash, or one whose CRC does
// not match — ends the replay of its segment: in the final segment the
// tail is truncated so the file ends on the last committed record, in
// earlier segments the remainder is ignored. Committed records are
// never lost to a crash mid-append.
//
// Capacity. The store is a cache, not a ledger: when the directory
// exceeds MaxBytes the oldest whole segments are deleted (dropping any
// index entries still pointing into them) until the cap holds. Byte
// accounting mirrors the in-memory LRU: each record is charged its
// on-disk frame size, so a cap of N bytes bounds real disk usage by N
// plus at most one segment of slack.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"adassure/internal/obs"
)

// recordMagic opens every committed record frame ("ADSR" little-endian).
const recordMagic = 0x41445352

// headerSize is the fixed frame prefix: magic + keyLen + bodyLen.
const headerSize = 12

// crcSize trails every record.
const crcSize = 4

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// ErrTooLarge is returned by Put when one record alone would exceed the
// byte cap (storing it would immediately evict everything else and then
// itself be the next victim).
var ErrTooLarge = errors.New("store: record exceeds byte cap")

// CorruptError reports a record that failed its CRC or frame check on
// read — evidence of disk damage after the record was committed (torn
// tails found during Open are recovered silently, not reported).
type CorruptError struct {
	Segment string
	Offset  int64
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: corrupt record in %s at offset %d: %s", e.Segment, e.Offset, e.Reason)
}

// Options tunes a Store.
type Options struct {
	// MaxBytes caps the total on-disk size (default 256 MiB). When an
	// append pushes the total over the cap, whole oldest segments are
	// deleted until it holds again.
	MaxBytes int64
	// MaxSegmentBytes bounds one segment file (default 8 MiB). Smaller
	// segments evict in finer increments at the cost of more files.
	MaxSegmentBytes int64
	// NoSync skips the per-put fsync. Faster, but a crash can lose the
	// most recent puts (never corrupt the store: recovery still truncates
	// to the last complete record that reached the disk).
	NoSync bool
	// Obs, when non-nil, receives store.hits / store.misses / store.puts /
	// store.evicted_segments counters and the store.bytes / store.segments /
	// store.entries gauges.
	Obs *obs.Registry
}

func (o *Options) defaults() {
	if o.MaxBytes <= 0 {
		o.MaxBytes = 256 << 20
	}
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 8 << 20
	}
	if o.MaxSegmentBytes > o.MaxBytes {
		o.MaxSegmentBytes = o.MaxBytes
	}
}

// segment is one on-disk log file plus its read handle.
type segment struct {
	id   uint64
	path string
	f    *os.File
	size int64
}

// entry locates one live record inside a segment.
type entry struct {
	seg    *segment
	offset int64
	length int64 // whole frame: header + key + body + crc
}

// Store is the persistent result store. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	segments []*segment // ascending id; last is the active append target
	index    map[string]*entry
	bytes    int64 // sum of segment sizes
	closed   bool

	hits       *obs.Counter
	misses     *obs.Counter
	puts       *obs.Counter
	evictions  *obs.Counter
	recovered  *obs.Counter
	bytesGau   *obs.Gauge
	segGau     *obs.Gauge
	entriesGau *obs.Gauge
}

// Open opens (creating if needed) the store rooted at dir, replaying
// every segment to rebuild the index and truncating a torn tail left by
// a crash mid-append.
func Open(dir string, opts Options) (*Store, error) {
	opts.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		index: map[string]*entry{},

		hits:       opts.Obs.Counter("store.hits"),
		misses:     opts.Obs.Counter("store.misses"),
		puts:       opts.Obs.Counter("store.puts"),
		evictions:  opts.Obs.Counter("store.evicted_segments"),
		recovered:  opts.Obs.Counter("store.recovered_tails"),
		bytesGau:   opts.Obs.Gauge("store.bytes"),
		segGau:     opts.Obs.Gauge("store.segments"),
		entriesGau: opts.Obs.Gauge("store.entries"),
	}
	if err := s.load(); err != nil {
		s.closeSegments()
		return nil, err
	}
	s.publishGauges()
	return s, nil
}

// segmentPath names segment id inside the store directory.
func (s *Store) segmentPath(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%08d.seg", id))
}

// load scans the directory, replays each segment in id order and leaves
// the highest segment open for appending.
func (s *Store) load() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "*.seg"))
	if err != nil {
		return fmt.Errorf("store: scan dir: %w", err)
	}
	sort.Strings(names)
	var ids []uint64
	for _, name := range names {
		var id uint64
		if _, err := fmt.Sscanf(filepath.Base(name), "%d.seg", &id); err != nil {
			continue // not ours; leave foreign files alone
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		final := i == len(ids)-1
		if err := s.replaySegment(id, final); err != nil {
			return err
		}
	}
	if len(s.segments) == 0 {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment opens one segment, walks its records into the index and
// — when it is the final (append-target) segment — truncates any torn
// tail so appends resume on a committed boundary.
func (s *Store) replaySegment(id uint64, final bool) error {
	path := s.segmentPath(id)
	flags := os.O_RDONLY
	if final {
		flags = os.O_RDWR
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return fmt.Errorf("store: open segment: %w", err)
	}
	seg := &segment{id: id, path: path, f: f}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: read segment %s: %w", path, err)
	}
	valid := int64(0)
	for {
		key, frameLen, ok := parseRecord(data[valid:])
		if !ok {
			break
		}
		s.index[key] = &entry{seg: seg, offset: valid, length: frameLen}
		valid += frameLen
	}
	if int64(len(data)) != valid {
		// Torn or corrupt tail. Only the final segment may legitimately
		// carry one (a crash mid-append); truncating it there restores the
		// append invariant. Earlier segments are immutable — ignore the
		// damaged remainder but keep the committed prefix serving.
		if final {
			if err := f.Truncate(valid); err != nil {
				f.Close()
				return fmt.Errorf("store: truncate torn tail of %s: %w", path, err)
			}
		}
		s.recovered.Inc()
	}
	seg.size = valid
	if final {
		if _, err := f.Seek(valid, io.SeekStart); err != nil {
			f.Close()
			return fmt.Errorf("store: seek segment %s: %w", path, err)
		}
	}
	s.segments = append(s.segments, seg)
	s.bytes += seg.size
	return nil
}

// parseRecord reads one record frame from the head of data, returning
// its key and total frame length. ok is false for an empty, truncated
// or CRC-damaged head.
func parseRecord(data []byte) (key string, frameLen int64, ok bool) {
	if len(data) < headerSize {
		return "", 0, false
	}
	if binary.LittleEndian.Uint32(data[0:4]) != recordMagic {
		return "", 0, false
	}
	keyLen := int64(binary.LittleEndian.Uint32(data[4:8]))
	bodyLen := int64(binary.LittleEndian.Uint32(data[8:12]))
	frameLen = headerSize + keyLen + bodyLen + crcSize
	if frameLen > int64(len(data)) {
		return "", 0, false
	}
	payloadEnd := headerSize + keyLen + bodyLen
	want := binary.LittleEndian.Uint32(data[payloadEnd : payloadEnd+crcSize])
	if crc32.Checksum(data[:payloadEnd], castagnoli) != want {
		return "", 0, false
	}
	return string(data[headerSize : headerSize+keyLen]), frameLen, true
}

// appendFrame renders the on-disk frame for one record.
func appendFrame(key string, body []byte) []byte {
	frame := make([]byte, headerSize+len(key)+len(body)+crcSize)
	binary.LittleEndian.PutUint32(frame[0:4], recordMagic)
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(key)))
	binary.LittleEndian.PutUint32(frame[8:12], uint32(len(body)))
	copy(frame[headerSize:], key)
	copy(frame[headerSize+len(key):], body)
	payloadEnd := headerSize + len(key) + len(body)
	crc := crc32.Checksum(frame[:payloadEnd], castagnoli)
	binary.LittleEndian.PutUint32(frame[payloadEnd:], crc)
	return frame
}

// FrameSize reports the on-disk bytes one record charges against the
// cap — the analogue of the in-memory LRU's per-entry cost function.
func FrameSize(key string, body []byte) int64 {
	return int64(headerSize + len(key) + len(body) + crcSize)
}

// rotateLocked starts a fresh segment after the current highest id.
// Caller holds mu (or is inside Open before the store is shared).
func (s *Store) rotateLocked() error {
	var next uint64 = 1
	if n := len(s.segments); n > 0 {
		next = s.segments[n-1].id + 1
	}
	path := s.segmentPath(next)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	s.segments = append(s.segments, &segment{id: next, path: path, f: f})
	return nil
}

// Put appends one record and repoints the index. The body is copied to
// disk; the caller keeps ownership of its slice.
func (s *Store) Put(key string, body []byte) error {
	frame := appendFrame(key, body)
	if int64(len(frame)) > s.opts.MaxBytes {
		return ErrTooLarge
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	active := s.segments[len(s.segments)-1]
	if active.size > 0 && active.size+int64(len(frame)) > s.opts.MaxSegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
		active = s.segments[len(s.segments)-1]
	}
	offset := active.size
	if _, err := active.f.Write(frame); err != nil {
		// The segment may now carry a torn tail; recovery on next Open
		// truncates it. Resync size with the file to stay consistent.
		if sz, serr := active.f.Seek(0, io.SeekEnd); serr == nil {
			s.bytes += sz - active.size
			active.size = sz
		}
		return fmt.Errorf("store: append: %w", err)
	}
	if !s.opts.NoSync {
		if err := active.f.Sync(); err != nil {
			return fmt.Errorf("store: sync: %w", err)
		}
	}
	active.size += int64(len(frame))
	s.bytes += int64(len(frame))
	s.index[key] = &entry{seg: active, offset: offset, length: int64(len(frame))}
	s.puts.Inc()
	s.evictLocked()
	s.publishGauges()
	return nil
}

// evictLocked deletes whole oldest segments until the byte cap holds.
// The active segment is never evicted (rotation bounds it by
// MaxSegmentBytes ≤ MaxBytes).
func (s *Store) evictLocked() {
	for s.bytes > s.opts.MaxBytes && len(s.segments) > 1 {
		victim := s.segments[0]
		s.segments = s.segments[1:]
		for key, e := range s.index {
			if e.seg == victim {
				delete(s.index, key)
			}
		}
		s.bytes -= victim.size
		victim.f.Close()
		os.Remove(victim.path)
		s.evictions.Inc()
	}
}

func (s *Store) publishGauges() {
	s.bytesGau.Set(float64(s.bytes))
	s.segGau.Set(float64(len(s.segments)))
	s.entriesGau.Set(float64(len(s.index)))
}

// Get returns the stored body for key, re-verifying the record's CRC on
// the way out. A missing key returns (nil, false, nil); a damaged
// record returns a *CorruptError (and drops the entry so later gets
// miss cleanly).
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	e, ok := s.index[key]
	if !ok {
		s.misses.Inc()
		s.mu.Unlock()
		return nil, false, nil
	}
	frame := make([]byte, e.length)
	_, err := e.seg.f.ReadAt(frame, e.offset)
	if err != nil {
		delete(s.index, key)
		s.mu.Unlock()
		return nil, false, &CorruptError{Segment: e.seg.path, Offset: e.offset, Reason: err.Error()}
	}
	gotKey, frameLen, valid := parseRecord(frame)
	if !valid || frameLen != e.length || gotKey != key {
		delete(s.index, key)
		s.mu.Unlock()
		return nil, false, &CorruptError{Segment: e.seg.path, Offset: e.offset, Reason: "crc or frame mismatch"}
	}
	s.hits.Inc()
	s.mu.Unlock()
	body := frame[headerSize+len(key) : int64(len(frame))-crcSize]
	return body, true, nil
}

// Len reports the live (indexed) record count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// SizeBytes reports the total on-disk size across segments.
func (s *Store) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Segments reports the current segment-file count.
func (s *Store) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segments)
}

// Keys returns the live keys in unspecified order (test and tooling
// helper).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dir reports the directory the store is rooted at.
func (s *Store) Dir() string { return s.dir }

func (s *Store) closeSegments() {
	for _, seg := range s.segments {
		if seg.f != nil {
			seg.f.Close()
		}
	}
}

// Close syncs the active segment and releases every file handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if n := len(s.segments); n > 0 && !s.opts.NoSync {
		err = s.segments[n-1].f.Sync()
	}
	s.closeSegments()
	return err
}
