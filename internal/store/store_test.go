package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"adassure/internal/obs"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func key(i int) string { return fmt.Sprintf("%064d", i) }

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	body := []byte(`{"violations":[1,2,3]}`)
	if err := s.Put(key(1), body); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok, err := s.Get(key(1))
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body mismatch: got %q want %q", got, body)
	}
	if _, ok, _ := s.Get(key(2)); ok {
		t.Fatal("Get of absent key reported ok")
	}
	// Re-put repoints to the newest body.
	body2 := []byte("updated")
	if err := s.Put(key(1), body2); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	got, _, _ = s.Get(key(1))
	if !bytes.Equal(got, body2) {
		t.Fatalf("after re-put got %q want %q", got, body2)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestReopenServesCommittedRecords(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	want := map[string][]byte{}
	for i := 0; i < 20; i++ {
		body := bytes.Repeat([]byte{byte('a' + i%26)}, 100+i)
		want[key(i)] = body
		if err := s.Put(key(i), body); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := mustOpen(t, dir, Options{})
	for k, body := range want {
		got, ok, err := s2.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%s) after reopen: ok=%v err=%v", k, ok, err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("Get(%s) after reopen: body mismatch", k)
		}
	}
	if s2.Len() != len(want) {
		t.Fatalf("Len after reopen = %d, want %d", s2.Len(), len(want))
	}
}

// TestCrashRecoveryTruncatesTornTail simulates a crash mid-append: the
// final segment ends in a partial record. Reopening must truncate the
// torn tail, serve every committed record, and append cleanly afterwards.
func TestCrashRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if err := s.Put(key(i), bytes.Repeat([]byte{byte(i)}, 200)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	s.Close()

	seg := filepath.Join(dir, "00000001.seg")
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// "Kill mid-append": a fresh record's first half reaches the disk.
	torn := appendFrame(key(99), bytes.Repeat([]byte{0xEE}, 300))
	if err := os.WriteFile(seg, append(append([]byte{}, full...), torn[:len(torn)/2]...), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	s2 := mustOpen(t, dir, Options{Obs: reg})
	if got := reg.Counter("store.recovered_tails").Value(); got != 1 {
		t.Fatalf("recovered_tails = %d, want 1", got)
	}
	// The torn record is gone; every committed record is CRC-verified back.
	if _, ok, _ := s2.Get(key(99)); ok {
		t.Fatal("torn record served after recovery")
	}
	for i := 0; i < 10; i++ {
		got, ok, err := s2.Get(key(i))
		if err != nil || !ok {
			t.Fatalf("Get(%d) after recovery: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 200)) {
			t.Fatalf("Get(%d) after recovery: body mismatch", i)
		}
	}
	// The file ends exactly on the last committed record.
	if info, _ := os.Stat(seg); info.Size() != int64(len(full)) {
		t.Fatalf("segment size after recovery = %d, want %d", info.Size(), len(full))
	}
	// Appends resume on the committed boundary.
	if err := s2.Put(key(100), []byte("fresh")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	got, ok, err := s2.Get(key(100))
	if err != nil || !ok || !bytes.Equal(got, []byte("fresh")) {
		t.Fatalf("Get after post-recovery put: %q ok=%v err=%v", got, ok, err)
	}
	s2.Close()
	s3 := mustOpen(t, dir, Options{})
	if got, ok, _ := s3.Get(key(100)); !ok || !bytes.Equal(got, []byte("fresh")) {
		t.Fatal("post-recovery append lost on second reopen")
	}
}

// TestCorruptRecordDetectedOnGet flips a committed body byte on disk and
// expects Get to refuse the record with a CorruptError instead of
// serving damaged evidence.
func TestCorruptRecordDetectedOnGet(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put(key(1), bytes.Repeat([]byte{0x42}, 256)); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "00000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+64+10] ^= 0xFF // flip one body byte
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, err := s.Get(key(1))
	var ce *CorruptError
	if ok || !errors.As(err, &ce) {
		t.Fatalf("Get on corrupt record: ok=%v err=%v, want CorruptError", ok, err)
	}
	// The damaged entry is dropped: the next get is a clean miss.
	if _, ok, err := s.Get(key(1)); ok || err != nil {
		t.Fatalf("second Get after corruption: ok=%v err=%v, want clean miss", ok, err)
	}
}

// TestEvictionHonoursByteCap fills the store past its cap and asserts
// oldest segments are deleted, accounting matches the real files, and
// the newest records survive.
func TestEvictionHonoursByteCap(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := mustOpen(t, dir, Options{MaxBytes: 16 << 10, MaxSegmentBytes: 4 << 10, Obs: reg})
	body := bytes.Repeat([]byte{0xAB}, 900)
	n := 40
	for i := 0; i < n; i++ {
		if err := s.Put(key(i), body); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		if s.SizeBytes() > 16<<10 {
			t.Fatalf("after put %d store holds %d bytes, cap is %d", i, s.SizeBytes(), 16<<10)
		}
	}
	if reg.Counter("store.evicted_segments").Value() == 0 {
		t.Fatal("no segments evicted despite cap pressure")
	}
	// Accounting parity: the tracked byte total equals the bytes on disk.
	var diskBytes int64
	files, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	for _, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		diskBytes += info.Size()
	}
	if diskBytes != s.SizeBytes() {
		t.Fatalf("accounting drift: disk %d bytes, tracked %d", diskBytes, s.SizeBytes())
	}
	// The newest record always survives, the oldest were evicted.
	if _, ok, _ := s.Get(key(n - 1)); !ok {
		t.Fatal("newest record evicted")
	}
	if _, ok, _ := s.Get(key(0)); ok {
		t.Fatal("oldest record survived a full wrap of the cap")
	}
}

func TestPutTooLargeRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 1 << 10})
	err := s.Put(key(1), bytes.Repeat([]byte{1}, 2<<10))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Put oversized: err=%v, want ErrTooLarge", err)
	}
}

func TestClosedStoreRefusesWork(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	s.Close()
	if err := s.Put(key(1), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: %v, want ErrClosed", err)
	}
	if _, _, err := s.Get(key(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close: %v, want ErrClosed", err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{NoSync: true})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(w*50 + i)
				body := bytes.Repeat([]byte{byte(w)}, 64+i)
				if err := s.Put(k, body); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				got, ok, err := s.Get(k)
				if err != nil || !ok || !bytes.Equal(got, body) {
					t.Errorf("Get(%s): ok=%v err=%v", k, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Fatalf("Len = %d, want 400", s.Len())
	}
}

// TestReplayIgnoresForeignFiles: non-.seg files in the directory are left
// alone and do not break Open.
func TestReplayIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, Options{})
	if err := s.Put(key(1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Fatalf("foreign file disturbed: %v", err)
	}
}
