package offline

import (
	"bytes"
	"strings"
	"testing"

	"adassure/internal/attacks"
	"adassure/internal/core"
	"adassure/internal/sim"
	"adassure/internal/track"
)

// record runs one attacked simulation with frame recording enabled.
func record(t *testing.T, class attacks.Class) *Recording {
	t.Helper()
	tr, err := track.UrbanLoop(6)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := attacks.Standard(class, attacks.Window{Start: 20, End: 50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Track: tr, Controller: "pure-pursuit", Seed: 1, Duration: 60,
		Campaign: camp, RecordFrames: true, DisableTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Recording{
		Meta:   Meta{Track: "urban-loop", Controller: "pure-pursuit", Attack: string(class), Seed: 1, Duration: 60},
		Frames: res.Frames,
	}
}

func TestRecordingCapturedAndValid(t *testing.T) {
	r := record(t, attacks.ClassStepSpoof)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// 60 s at 20 Hz → ~1200 frames.
	if n := len(r.Frames); n < 1100 || n > 1250 {
		t.Errorf("frame count = %d, want ~1200", n)
	}
	if r.Duration() < 55 {
		t.Errorf("duration = %g", r.Duration())
	}
}

func TestOfflineMonitorMatchesOnline(t *testing.T) {
	tr, err := track.UrbanLoop(6)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := attacks.Standard(attacks.ClassStepSpoof, attacks.Window{Start: 20, End: 50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.CatalogConfig{IncludeGroundTruth: true}
	online := core.NewCatalogMonitor(cfg)
	res, err := sim.Run(sim.Config{
		Track: tr, Controller: "pure-pursuit", Seed: 1, Duration: 60,
		Campaign: camp, Monitor: online, RecordFrames: true, DisableTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recording{Frames: res.Frames}
	offline := rec.Monitor(cfg)
	onlineVs := online.Violations()
	if len(offline) != len(onlineVs) {
		t.Fatalf("offline %d violations vs online %d", len(offline), len(onlineVs))
	}
	for i := range offline {
		if offline[i].AssertionID != onlineVs[i].AssertionID || offline[i].T != onlineVs[i].T {
			t.Fatalf("violation %d differs: offline %+v online %+v", i, offline[i], onlineVs[i])
		}
	}
}

func TestRecordingRoundtrip(t *testing.T) {
	r := record(t, attacks.ClassFreeze)
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Frames) != len(r.Frames) {
		t.Fatalf("roundtrip frames %d vs %d", len(got.Frames), len(r.Frames))
	}
	if got.Meta != r.Meta {
		t.Errorf("meta roundtrip: %+v vs %+v", got.Meta, r.Meta)
	}
	// Violations identical after roundtrip.
	cfg := core.CatalogConfig{}
	a, b := r.Monitor(cfg), got.Monitor(cfg)
	if len(a) != len(b) {
		t.Errorf("roundtrip monitor mismatch: %d vs %d", len(a), len(b))
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	if _, err := Read(strings.NewReader("{")); err == nil {
		t.Error("corrupt JSON accepted")
	}
	if _, err := Read(strings.NewReader(`{"meta":{},"frames":[]}`)); err == nil {
		t.Error("empty recording accepted")
	}
	bad := `{"meta":{},"frames":[{"T":5},{"T":1}]}`
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Error("out-of-order recording accepted")
	}
}

func TestDiagnoseOffline(t *testing.T) {
	r := record(t, attacks.ClassFreeze)
	hyps := r.Diagnose(core.CatalogConfig{IncludeGroundTruth: true})
	if len(hyps) == 0 || string(hyps[0].Cause) != string(attacks.ClassFreeze) {
		t.Errorf("offline diagnosis = %v", hyps[0].Cause)
	}
}

func TestDiffThresholds(t *testing.T) {
	r := record(t, attacks.ClassNone)
	// Default vs very tight thresholds: tight must add violations.
	diff := r.Diff(core.CatalogConfig{}, core.CatalogConfig{ThresholdScale: 0.3})
	if len(diff) == 0 {
		t.Fatal("tightening thresholds changed nothing on a noisy drive")
	}
	for _, d := range diff {
		if d.After < d.Before {
			t.Errorf("%s: tightening reduced episodes %d → %d", d.AssertionID, d.Before, d.After)
		}
	}
	// Identical configs diff to nothing.
	if diff := r.Diff(core.CatalogConfig{}, core.CatalogConfig{}); len(diff) != 0 {
		t.Errorf("identical configs produced diff %v", diff)
	}
}

func TestSlice(t *testing.T) {
	r := record(t, attacks.ClassStepSpoof)
	sub, err := r.Slice(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Duration() > 10.1 || sub.Duration() < 9 {
		t.Errorf("slice duration = %g", sub.Duration())
	}
	for _, f := range sub.Frames {
		if f.T < 20 || f.T > 30 {
			t.Fatalf("frame at %g escaped slice", f.T)
		}
	}
	if _, err := r.Slice(30, 20); err == nil {
		t.Error("inverted slice accepted")
	}
	if _, err := r.Slice(1e6, 2e6); err == nil {
		t.Error("empty slice accepted")
	}
}

func TestMonitorWithCustomSet(t *testing.T) {
	r := record(t, attacks.ClassStepSpoof)
	lim := core.DefaultLimits(8, 2.5, 2, 0.55, 0.8, 2.8)
	m := core.NewMonitor().Add(core.A1PositionJump(lim, 1), core.Debounce{K: 1, N: 1})
	vs := r.MonitorWith(m)
	if len(vs) == 0 {
		t.Fatal("A1-only monitor missed the step spoof")
	}
	for _, v := range vs {
		if v.AssertionID != "A1" {
			t.Fatalf("unexpected assertion %s", v.AssertionID)
		}
	}
	// Reusable: second replay gives identical results.
	vs2 := r.MonitorWith(m)
	if len(vs2) != len(vs) {
		t.Error("MonitorWith not reset between replays")
	}
}
