// Package offline implements the record-once / debug-many half of the
// ADAssure methodology: frame streams captured from a run (or, on a real
// platform, from drive logs) are persisted, re-monitored under different
// catalog configurations without re-simulating, and compared — the
// workflow the original study applied to recorded shuttle drives.
package offline

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"adassure/internal/core"
	"adassure/internal/diagnosis"
)

// Recording is a persisted frame stream with provenance metadata.
type Recording struct {
	// Meta describes where the frames came from.
	Meta Meta `json:"meta"`
	// Frames is the control-rate frame stream in time order.
	Frames []core.Frame `json:"frames"`
}

// Meta is the recording provenance.
type Meta struct {
	Track      string  `json:"track"`
	Controller string  `json:"controller"`
	Attack     string  `json:"attack"`
	Seed       int64   `json:"seed"`
	Duration   float64 `json:"duration"`
}

// Validate checks the recording invariants (time-ordered, finite count).
func (r *Recording) Validate() error {
	if len(r.Frames) == 0 {
		return fmt.Errorf("offline: recording has no frames")
	}
	for i := 1; i < len(r.Frames); i++ {
		if r.Frames[i].T < r.Frames[i-1].T {
			return fmt.Errorf("offline: frames out of order at index %d (%g after %g)",
				i, r.Frames[i].T, r.Frames[i-1].T)
		}
	}
	return nil
}

// Write persists the recording as JSON.
func (r *Recording) Write(w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("offline: encode recording: %w", err)
	}
	return nil
}

// Read parses a recording previously written by Write.
func Read(rd io.Reader) (*Recording, error) {
	var r Recording
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("offline: decode recording: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Monitor replays the recording through a fresh monitor built from the
// catalog configuration and returns the violation record — the offline
// equivalent of an online run, bit-identical for the same frames.
func (r *Recording) Monitor(cfg core.CatalogConfig) []core.Violation {
	m := core.NewCatalogMonitor(cfg)
	for _, f := range r.Frames {
		m.Step(f)
	}
	return m.Violations()
}

// MonitorWith replays the recording through a caller-assembled monitor
// (custom assertion sets). The monitor is reset first.
func (r *Recording) MonitorWith(m *core.Monitor) []core.Violation {
	m.Reset()
	for _, f := range r.Frames {
		m.Step(f)
	}
	return m.Violations()
}

// Diagnose runs the full offline pipeline: monitor + root-cause ranking.
func (r *Recording) Diagnose(cfg core.CatalogConfig) []diagnosis.Hypothesis {
	return diagnosis.Diagnose(r.Monitor(cfg))
}

// DiffEntry is one assertion's episode-count change between two
// configurations.
type DiffEntry struct {
	AssertionID string
	Before      int
	After       int
}

// Diff re-monitors the recording under two configurations and reports the
// per-assertion episode deltas, sorted by assertion ID — the tool for
// answering "what does tightening this threshold change on this drive?"
// without re-simulating.
func (r *Recording) Diff(before, after core.CatalogConfig) []DiffEntry {
	count := func(vs []core.Violation) map[string]int {
		m := map[string]int{}
		for _, v := range vs {
			m[v.AssertionID]++
		}
		return m
	}
	b := count(r.Monitor(before))
	a := count(r.Monitor(after))
	ids := map[string]bool{}
	for id := range b {
		ids[id] = true
	}
	for id := range a {
		ids[id] = true
	}
	var out []DiffEntry
	for id := range ids {
		if b[id] != a[id] {
			out = append(out, DiffEntry{AssertionID: id, Before: b[id], After: a[id]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AssertionID < out[j].AssertionID })
	return out
}

// Slice returns a sub-recording covering frames with T in [t0, t1].
func (r *Recording) Slice(t0, t1 float64) (*Recording, error) {
	if t1 <= t0 {
		return nil, fmt.Errorf("offline: invalid slice [%g, %g]", t0, t1)
	}
	out := &Recording{Meta: r.Meta}
	for _, f := range r.Frames {
		if f.T >= t0 && f.T <= t1 {
			out.Frames = append(out.Frames, f)
		}
	}
	if len(out.Frames) == 0 {
		return nil, fmt.Errorf("offline: slice [%g, %g] contains no frames", t0, t1)
	}
	return out, nil
}

// Duration returns the time span covered by the recording.
func (r *Recording) Duration() float64 {
	if len(r.Frames) == 0 {
		return 0
	}
	return r.Frames[len(r.Frames)-1].T - r.Frames[0].T
}
