package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordAndQuery(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		if err := tr.Record("x", float64(i), float64(i*i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len("x") != 10 {
		t.Fatalf("Len = %d", tr.Len("x"))
	}
	if v, ok := tr.At("x", 3.5); !ok || v != 9 {
		t.Errorf("At(3.5) = %g, %v; want 9 (zero-order hold)", v, ok)
	}
	if _, ok := tr.At("x", -1); ok {
		t.Error("At before first sample should be !ok")
	}
	if s, ok := tr.Last("x"); !ok || s.Value != 81 {
		t.Errorf("Last = %+v, %v", s, ok)
	}
	if _, ok := tr.Last("missing"); ok {
		t.Error("Last of missing signal should be !ok")
	}
}

func TestRecordValidation(t *testing.T) {
	tr := New()
	if err := tr.Record("", 0, 1); err == nil {
		t.Error("empty name accepted")
	}
	if err := tr.Record("x", math.NaN(), 1); err == nil {
		t.Error("NaN time accepted")
	}
	if err := tr.Record("x", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Record("x", 0.5, 0); err == nil {
		t.Error("backwards time accepted")
	}
	// Equal timestamps are fine (multiple events in one step).
	if err := tr.Record("x", 1, 2); err != nil {
		t.Errorf("equal timestamp rejected: %v", err)
	}
}

func TestMustRecordPanics(t *testing.T) {
	tr := New()
	defer func() {
		if recover() == nil {
			t.Error("MustRecord should panic on error")
		}
	}()
	tr.MustRecord("", 0, 0)
}

func TestSignalsOrder(t *testing.T) {
	tr := New()
	tr.MustRecord("b", 0, 1)
	tr.MustRecord("a", 0, 1)
	tr.MustRecord("b", 1, 2)
	got := tr.Signals()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Errorf("Signals = %v, want first-appearance order [b a]", got)
	}
}

func TestSignalStats(t *testing.T) {
	tr := New()
	for i, v := range []float64{1, -3, 2} {
		tr.MustRecord("s", float64(i), v)
	}
	st := tr.SignalStats("s")
	if st.Count != 3 || st.Min != -3 || st.Max != 2 || st.AbsMax != 3 {
		t.Errorf("stats = %+v", st)
	}
	if math.Abs(st.Mean-0) > 1e-12 {
		t.Errorf("mean = %g", st.Mean)
	}
	wantRMS := math.Sqrt((1 + 9 + 4) / 3.0)
	if math.Abs(st.RMS-wantRMS) > 1e-12 {
		t.Errorf("rms = %g, want %g", st.RMS, wantRMS)
	}
	if z := tr.SignalStats("none"); z.Count != 0 {
		t.Errorf("missing signal stats = %+v", z)
	}
}

func TestWindowStats(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.MustRecord("s", float64(i), float64(i))
	}
	st := tr.WindowStats("s", 3, 6)
	if st.Count != 4 || st.Min != 3 || st.Max != 6 {
		t.Errorf("window stats = %+v", st)
	}
}

func TestCSVExport(t *testing.T) {
	tr := New()
	tr.MustRecord("a", 0, 1)
	tr.MustRecord("a", 1, 2)
	tr.MustRecord("b", 1, 5)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "t,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	// b has no sample at t=0 → empty cell.
	if lines[1] != "0,1," {
		t.Errorf("row0 = %q", lines[1])
	}
	if lines[2] != "1,2,5" {
		t.Errorf("row1 = %q", lines[2])
	}
}

func TestJSONRoundtrip(t *testing.T) {
	tr := New()
	tr.MustRecord("x", 0, 1.5)
	tr.MustRecord("x", 0.1, -2.5)
	tr.MustRecord("y", 0.05, 7)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len("x") != 2 || got.Len("y") != 1 {
		t.Errorf("roundtrip lens: x=%d y=%d", got.Len("x"), got.Len("y"))
	}
	if v, _ := got.At("x", 0.1); v != -2.5 {
		t.Errorf("roundtrip value = %g", v)
	}
}

func TestReadJSONRejectsCorrupt(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("corrupt json accepted")
	}
	// Backwards time in file.
	bad := `{"signals":{"x":[{"T":1,"Value":0},{"T":0,"Value":0}]},"order":["x"]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("non-monotone file accepted")
	}
}

func TestDownsample(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.MustRecord("s", float64(i), float64(i))
	}
	ds := tr.Downsample("s", 10)
	if len(ds) != 11 { // 0,10,...,90 plus final 99
		t.Errorf("downsample len = %d", len(ds))
	}
	if ds[len(ds)-1].T != 99 {
		t.Error("downsample must keep last sample")
	}
	if got := tr.Downsample("s", 1); len(got) != 100 {
		t.Errorf("n=1 should copy all, got %d", len(got))
	}
}

func TestAtZeroOrderHoldProperty(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.MustRecord("s", float64(i), float64(i))
	}
	f := func(q float64) bool {
		if math.IsNaN(q) || math.IsInf(q, 0) {
			return true
		}
		q = math.Abs(math.Mod(q, 49))
		v, ok := tr.At("s", q)
		return ok && v == math.Floor(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
