// Package trace records time-series of named signals produced by a
// simulation run and exports them as CSV or JSON. It substitutes for the
// ROS-bag recordings of the original study: every experiment's "figure" is
// rendered from a trace.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Sample is one observation of one signal.
type Sample struct {
	T     float64 // simulation time, s
	Value float64
}

// Trace accumulates samples for a set of named signals. It is not safe for
// concurrent use; the simulation engine owns it for the duration of a run.
type Trace struct {
	signals map[string][]Sample
	order   []string // insertion order of first appearance
}

// New returns an empty trace.
func New() *Trace {
	return &Trace{signals: make(map[string][]Sample)}
}

// Record appends a sample for the named signal. Time must be non-decreasing
// per signal; out-of-order samples are rejected with an error so recording
// bugs surface immediately.
func (tr *Trace) Record(signal string, t, value float64) error {
	if signal == "" {
		return fmt.Errorf("trace: empty signal name")
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("trace: non-finite time %g for signal %q", t, signal)
	}
	ss, ok := tr.signals[signal]
	if !ok {
		tr.order = append(tr.order, signal)
	}
	if n := len(ss); n > 0 && t < ss[n-1].T {
		return fmt.Errorf("trace: time went backwards for %q: %g after %g", signal, t, ss[n-1].T)
	}
	tr.signals[signal] = append(ss, Sample{T: t, Value: value})
	return nil
}

// MustRecord is Record for simulator-internal signals whose preconditions
// are established by the engine; it panics on error.
func (tr *Trace) MustRecord(signal string, t, value float64) {
	if err := tr.Record(signal, t, value); err != nil {
		panic(err)
	}
}

// Signals returns the signal names in first-appearance order.
func (tr *Trace) Signals() []string {
	out := make([]string, len(tr.order))
	copy(out, tr.order)
	return out
}

// Samples returns the recorded samples for a signal (nil if absent). The
// returned slice is owned by the trace; callers must not modify it.
func (tr *Trace) Samples(signal string) []Sample { return tr.signals[signal] }

// Len returns the number of samples recorded for a signal.
func (tr *Trace) Len(signal string) int { return len(tr.signals[signal]) }

// At returns the value of signal at time t using zero-order hold (the value
// of the latest sample with T ≤ t). ok is false if the signal has no sample
// at or before t.
func (tr *Trace) At(signal string, t float64) (v float64, ok bool) {
	ss := tr.signals[signal]
	// First sample strictly after t.
	i := sort.Search(len(ss), func(i int) bool { return ss[i].T > t })
	if i == 0 {
		return 0, false
	}
	return ss[i-1].Value, true
}

// Last returns the most recent sample of a signal.
func (tr *Trace) Last(signal string) (Sample, bool) {
	ss := tr.signals[signal]
	if len(ss) == 0 {
		return Sample{}, false
	}
	return ss[len(ss)-1], true
}

// Stats summarises a signal.
type Stats struct {
	Count          int
	Min, Max, Mean float64
	RMS            float64
	AbsMax         float64
}

// SignalStats computes summary statistics for a signal. The zero Stats is
// returned for an empty or missing signal.
func (tr *Trace) SignalStats(signal string) Stats {
	ss := tr.signals[signal]
	if len(ss) == 0 {
		return Stats{}
	}
	st := Stats{Count: len(ss), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sumSq float64
	for _, s := range ss {
		v := s.Value
		sum += v
		sumSq += v * v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		if a := math.Abs(v); a > st.AbsMax {
			st.AbsMax = a
		}
	}
	st.Mean = sum / float64(len(ss))
	st.RMS = math.Sqrt(sumSq / float64(len(ss)))
	return st
}

// WindowStats computes statistics over samples with T in [t0, t1].
func (tr *Trace) WindowStats(signal string, t0, t1 float64) Stats {
	ss := tr.signals[signal]
	sub := New()
	for _, s := range ss {
		if s.T >= t0 && s.T <= t1 {
			sub.MustRecord(signal, s.T, s.Value)
		}
	}
	return sub.SignalStats(signal)
}

// WriteCSV writes the trace as a wide CSV: a time column (the union of all
// sample times) followed by one column per signal, zero-order-held. Cells
// before a signal's first sample are empty.
func (tr *Trace) WriteCSV(w io.Writer) error {
	times := tr.unionTimes()
	cw := csv.NewWriter(w)
	header := append([]string{"t"}, tr.Signals()...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: write csv header: %w", err)
	}
	row := make([]string, len(header))
	for _, t := range times {
		row[0] = strconv.FormatFloat(t, 'g', -1, 64)
		for i, sig := range tr.order {
			if v, ok := tr.At(sig, t); ok {
				row[i+1] = strconv.FormatFloat(v, 'g', -1, 64)
			} else {
				row[i+1] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func (tr *Trace) unionTimes() []float64 {
	seen := make(map[float64]struct{})
	var times []float64
	for _, ss := range tr.signals {
		for _, s := range ss {
			if _, ok := seen[s.T]; !ok {
				seen[s.T] = struct{}{}
				times = append(times, s.T)
			}
		}
	}
	sort.Float64s(times)
	return times
}

// Slice returns a new trace holding, for every signal, only the samples
// with T in the closed interval [t0, t1] — the evidence-window extraction
// behind forensic bundles. Signals with no samples in the window are
// omitted; the originals are never aliased.
func (tr *Trace) Slice(t0, t1 float64) *Trace {
	out := New()
	for _, sig := range tr.order {
		ss := tr.signals[sig]
		lo := sort.Search(len(ss), func(i int) bool { return ss[i].T >= t0 })
		hi := sort.Search(len(ss), func(i int) bool { return ss[i].T > t1 })
		for _, s := range ss[lo:hi] {
			out.MustRecord(sig, s.T, s.Value)
		}
	}
	return out
}

// jsonTrace is the serialised form.
type jsonTrace struct {
	Signals map[string][]Sample `json:"signals"`
	Order   []string            `json:"order"`
}

// MarshalJSON serialises the trace, so a *Trace can embed directly in
// larger artifacts (forensic bundles).
func (tr *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonTrace{Signals: tr.signals, Order: tr.order})
}

// UnmarshalJSON parses a serialised trace, validating per-signal time
// monotonicity so a corrupted file fails loudly.
func (tr *Trace) UnmarshalJSON(b []byte) error {
	var jt jsonTrace
	if err := json.Unmarshal(b, &jt); err != nil {
		return fmt.Errorf("trace: decode json: %w", err)
	}
	*tr = *New()
	for _, name := range jt.Order {
		for _, s := range jt.Signals[name] {
			if err := tr.Record(name, s.T, s.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON serialises the trace.
func (tr *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tr); err != nil {
		return fmt.Errorf("trace: encode json: %w", err)
	}
	return nil
}

// ReadJSON parses a trace previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	tr := New()
	if err := json.NewDecoder(r).Decode(tr); err != nil {
		return nil, err
	}
	return tr, nil
}

// Downsample returns a copy of one signal's samples keeping roughly every
// n-th sample (always including first and last), for compact figure output.
func (tr *Trace) Downsample(signal string, n int) []Sample {
	ss := tr.signals[signal]
	if n <= 1 || len(ss) <= 2 {
		out := make([]Sample, len(ss))
		copy(out, ss)
		return out
	}
	var out []Sample
	for i := 0; i < len(ss); i += n {
		out = append(out, ss[i])
	}
	if last := ss[len(ss)-1]; out[len(out)-1] != last {
		out = append(out, last)
	}
	return out
}
