// Package trace records time-series of named signals produced by a
// simulation run and exports them as CSV or JSON. It substitutes for the
// ROS-bag recordings of the original study: every experiment's "figure" is
// rendered from a trace.
//
// Storage is columnar (struct-of-arrays): each signal holds two parallel
// []float64 columns — times and values — preallocated via Reserve and grown
// geometrically by append. The simulation engine resolves one *Column
// handle per signal before its step loop and appends through it, so the
// steady-state recording path performs no map lookups and no heap
// allocation. Row-oriented accessors (Samples, At, Downsample) and the CSV/
// JSON exports are preserved byte-for-byte on top of the columnar layout;
// see DESIGN.md §13 for the memory model and ownership rules.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Sample is one observation of one signal.
type Sample struct {
	T     float64 // simulation time, s
	Value float64
}

// Column is the columnar storage of one signal: parallel time/value slices
// in recording order. A Column handle is the zero-allocation write path —
// resolve it once (Trace.Column), then Append per step. Not safe for
// concurrent use.
type Column struct {
	name string
	t, v []float64
}

// Name returns the signal name.
func (c *Column) Name() string { return c.name }

// Len returns the number of recorded samples.
func (c *Column) Len() int { return len(c.t) }

// Times returns the time column. The slice is a view owned by the trace:
// callers must not modify it, and must not retain it across further
// appends (growth may move the backing array).
func (c *Column) Times() []float64 { return c.t }

// Values returns the value column, under the same ownership rules as Times.
func (c *Column) Values() []float64 { return c.v }

// Sample returns the i-th sample (recording order).
func (c *Column) Sample(i int) Sample { return Sample{T: c.t[i], Value: c.v[i]} }

// Append records one sample, enforcing per-signal time monotonicity and
// finite time (the same contract as Trace.Record). Appending into reserved
// capacity does not allocate.
func (c *Column) Append(t, value float64) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("trace: non-finite time %g for signal %q", t, c.name)
	}
	if n := len(c.t); n > 0 && t < c.t[n-1] {
		return fmt.Errorf("trace: time went backwards for %q: %g after %g", c.name, t, c.t[n-1])
	}
	c.t = append(c.t, t)
	c.v = append(c.v, value)
	return nil
}

// MustAppend is Append for engine-internal signals whose preconditions are
// established by the caller; it panics on error.
func (c *Column) MustAppend(t, value float64) {
	if err := c.Append(t, value); err != nil {
		panic(err)
	}
}

// reserve grows the column's capacity to hold at least n samples without
// further allocation.
func (c *Column) reserve(n int) {
	if cap(c.t) < n {
		nt := make([]float64, len(c.t), n)
		copy(nt, c.t)
		c.t = nt
	}
	if cap(c.v) < n {
		nv := make([]float64, len(c.v), n)
		copy(nv, c.v)
		c.v = nv
	}
}

// Trace accumulates samples for a set of named signals. It is not safe for
// concurrent use; the simulation engine owns it for the duration of a run.
type Trace struct {
	cols    []*Column      // first-appearance order
	index   map[string]int // signal name → cols index
	reserve int            // capacity hint applied to new columns
}

// New returns an empty trace.
func New() *Trace {
	return &Trace{index: make(map[string]int)}
}

// Reserve hints the expected per-signal sample count (e.g. duration/dt from
// the simulation horizon): existing columns grow to that capacity and
// columns created later preallocate it, so steady-state recording never
// reallocates.
func (tr *Trace) Reserve(n int) {
	if n <= 0 {
		return
	}
	tr.reserve = n
	for _, c := range tr.cols {
		c.reserve(n)
	}
}

// Column returns the handle for the named signal, creating the column on
// first use. It panics on an empty name — handle resolution is static
// engine configuration, unlike Record which reports errors. The handle
// stays valid for the lifetime of the trace.
func (tr *Trace) Column(signal string) *Column {
	if signal == "" {
		panic("trace: empty signal name")
	}
	if i, ok := tr.index[signal]; ok {
		return tr.cols[i]
	}
	c := &Column{name: signal}
	if tr.reserve > 0 {
		c.t = make([]float64, 0, tr.reserve)
		c.v = make([]float64, 0, tr.reserve)
	}
	tr.index[signal] = len(tr.cols)
	tr.cols = append(tr.cols, c)
	return c
}

// lookup returns the column for a signal, nil if absent (never creates).
func (tr *Trace) lookup(signal string) *Column {
	if i, ok := tr.index[signal]; ok {
		return tr.cols[i]
	}
	return nil
}

// Record appends a sample for the named signal. Time must be non-decreasing
// per signal; out-of-order samples are rejected with an error so recording
// bugs surface immediately.
func (tr *Trace) Record(signal string, t, value float64) error {
	if signal == "" {
		return fmt.Errorf("trace: empty signal name")
	}
	return tr.Column(signal).Append(t, value)
}

// MustRecord is Record for simulator-internal signals whose preconditions
// are established by the engine; it panics on error.
func (tr *Trace) MustRecord(signal string, t, value float64) {
	if err := tr.Record(signal, t, value); err != nil {
		panic(err)
	}
}

// Signals returns the signal names in first-appearance order.
func (tr *Trace) Signals() []string {
	out := make([]string, len(tr.cols))
	for i, c := range tr.cols {
		out[i] = c.name
	}
	return out
}

// Samples returns the recorded samples for a signal (nil if absent) as a
// freshly materialised row-oriented copy. Hot paths should prefer the
// columnar views (Column, Times, Values) which do not copy.
func (tr *Trace) Samples(signal string) []Sample {
	c := tr.lookup(signal)
	if c == nil {
		return nil
	}
	out := make([]Sample, len(c.t))
	for i := range c.t {
		out[i] = Sample{T: c.t[i], Value: c.v[i]}
	}
	return out
}

// Len returns the number of samples recorded for a signal.
func (tr *Trace) Len(signal string) int {
	c := tr.lookup(signal)
	if c == nil {
		return 0
	}
	return c.Len()
}

// At returns the value of signal at time t using zero-order hold (the value
// of the latest sample with T ≤ t). ok is false if the signal has no sample
// at or before t.
func (tr *Trace) At(signal string, t float64) (v float64, ok bool) {
	c := tr.lookup(signal)
	if c == nil {
		return 0, false
	}
	// First sample strictly after t.
	i := sort.Search(len(c.t), func(i int) bool { return c.t[i] > t })
	if i == 0 {
		return 0, false
	}
	return c.v[i-1], true
}

// Last returns the most recent sample of a signal.
func (tr *Trace) Last(signal string) (Sample, bool) {
	c := tr.lookup(signal)
	if c == nil || c.Len() == 0 {
		return Sample{}, false
	}
	return c.Sample(c.Len() - 1), true
}

// Stats summarises a signal.
type Stats struct {
	Count          int
	Min, Max, Mean float64
	RMS            float64
	AbsMax         float64
}

// statsOver computes statistics over the index range [lo, hi) of a column,
// with the same accumulation order as the original row-oriented scan so
// results are bit-identical.
func statsOver(c *Column, lo, hi int) Stats {
	n := hi - lo
	if c == nil || n <= 0 {
		return Stats{}
	}
	st := Stats{Count: n, Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sumSq float64
	for i := lo; i < hi; i++ {
		v := c.v[i]
		sum += v
		sumSq += v * v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		if a := math.Abs(v); a > st.AbsMax {
			st.AbsMax = a
		}
	}
	st.Mean = sum / float64(n)
	st.RMS = math.Sqrt(sumSq / float64(n))
	return st
}

// window returns the index range [lo, hi) of samples with T in [t0, t1].
func (c *Column) window(t0, t1 float64) (lo, hi int) {
	lo = sort.Search(len(c.t), func(i int) bool { return c.t[i] >= t0 })
	hi = sort.Search(len(c.t), func(i int) bool { return c.t[i] > t1 })
	return lo, hi
}

// SignalStats computes summary statistics for a signal. The zero Stats is
// returned for an empty or missing signal.
func (tr *Trace) SignalStats(signal string) Stats {
	c := tr.lookup(signal)
	if c == nil {
		return Stats{}
	}
	return statsOver(c, 0, c.Len())
}

// WindowStats computes statistics over samples with T in [t0, t1].
func (tr *Trace) WindowStats(signal string, t0, t1 float64) Stats {
	c := tr.lookup(signal)
	if c == nil {
		return Stats{}
	}
	lo, hi := c.window(t0, t1)
	return statsOver(c, lo, hi)
}

// WriteCSV writes the trace as a wide CSV: a time column (the union of all
// sample times) followed by one column per signal, zero-order-held. Cells
// before a signal's first sample are empty.
func (tr *Trace) WriteCSV(w io.Writer) error {
	times := tr.unionTimes()
	cw := csv.NewWriter(w)
	header := append([]string{"t"}, tr.Signals()...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: write csv header: %w", err)
	}
	row := make([]string, len(header))
	for _, t := range times {
		row[0] = strconv.FormatFloat(t, 'g', -1, 64)
		for i, c := range tr.cols {
			if v, ok := tr.At(c.name, t); ok {
				row[i+1] = strconv.FormatFloat(v, 'g', -1, 64)
			} else {
				row[i+1] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func (tr *Trace) unionTimes() []float64 {
	seen := make(map[float64]struct{})
	var times []float64
	for _, c := range tr.cols {
		for _, t := range c.t {
			if _, ok := seen[t]; !ok {
				seen[t] = struct{}{}
				times = append(times, t)
			}
		}
	}
	sort.Float64s(times)
	return times
}

// Slice returns a new trace holding, for every signal, only the samples
// with T in the closed interval [t0, t1] — the evidence-window extraction
// behind forensic bundles. Signals with no samples in the window are
// omitted; the originals are never aliased.
func (tr *Trace) Slice(t0, t1 float64) *Trace {
	out := New()
	for _, c := range tr.cols {
		lo, hi := c.window(t0, t1)
		if hi <= lo {
			continue
		}
		oc := out.Column(c.name)
		oc.t = append(make([]float64, 0, hi-lo), c.t[lo:hi]...)
		oc.v = append(make([]float64, 0, hi-lo), c.v[lo:hi]...)
	}
	return out
}

// jsonTrace is the serialised form.
type jsonTrace struct {
	Signals map[string][]Sample `json:"signals"`
	Order   []string            `json:"order"`
}

// MarshalJSON serialises the trace, so a *Trace can embed directly in
// larger artifacts (forensic bundles). The row-oriented wire format is
// unchanged from the pre-columnar representation.
func (tr *Trace) MarshalJSON() ([]byte, error) {
	sig := make(map[string][]Sample, len(tr.cols))
	for _, c := range tr.cols {
		sig[c.name] = tr.Samples(c.name)
	}
	return json.Marshal(jsonTrace{Signals: sig, Order: tr.Signals()})
}

// UnmarshalJSON parses a serialised trace, validating per-signal time
// monotonicity so a corrupted file fails loudly.
func (tr *Trace) UnmarshalJSON(b []byte) error {
	var jt jsonTrace
	if err := json.Unmarshal(b, &jt); err != nil {
		return fmt.Errorf("trace: decode json: %w", err)
	}
	*tr = *New()
	for _, name := range jt.Order {
		for _, s := range jt.Signals[name] {
			if err := tr.Record(name, s.T, s.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON serialises the trace.
func (tr *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tr); err != nil {
		return fmt.Errorf("trace: encode json: %w", err)
	}
	return nil
}

// ReadJSON parses a trace previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	tr := New()
	if err := json.NewDecoder(r).Decode(tr); err != nil {
		return nil, err
	}
	return tr, nil
}

// Downsample returns a copy of one signal's samples keeping roughly every
// n-th sample (always including first and last), for compact figure output.
func (tr *Trace) Downsample(signal string, n int) []Sample {
	c := tr.lookup(signal)
	if c == nil {
		return nil
	}
	if n <= 1 || c.Len() <= 2 {
		return tr.Samples(signal)
	}
	var out []Sample
	for i := 0; i < c.Len(); i += n {
		out = append(out, c.Sample(i))
	}
	if last := c.Sample(c.Len() - 1); out[len(out)-1] != last {
		out = append(out, last)
	}
	return out
}
