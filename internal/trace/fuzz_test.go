package trace

import (
	"bytes"
	"encoding/csv"
	"math"
	"strconv"
	"testing"
	"unicode/utf8"
)

// FuzzTraceRoundTrip records arbitrary samples into a trace and checks the
// two export formats. Contracts under test: JSON export → import is
// lossless (same signals, same order, bit-identical samples), and the CSV
// export is always structurally valid (rectangular, strictly increasing
// time column, every non-empty cell a parseable float) — with neither path
// panicking.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add("cte", "speed", 0.0, 1.5, 0.1, -2.25, 0.2, 3.0)
	f.Add("a", "a", 1.0, 0.0, 1.0, 0.0, 2.0, 1e300)
	f.Add("x", "y", -5.0, 0.125, 0.0, -0.0, 5.0, 42.0)
	f.Fuzz(func(t *testing.T, name1, name2 string, t1, v1, t2, v2, t3, v3 float64) {
		// JSON cannot represent non-finite values, and invalid UTF-8 map
		// keys are re-coded by the encoder; both are out of scope for the
		// lossless-round-trip contract.
		for _, v := range []float64{v1, v2, v3} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("non-finite value")
			}
		}
		if !utf8.ValidString(name1) || !utf8.ValidString(name2) {
			t.Skip("invalid UTF-8 signal name")
		}

		tr := New()
		// Record enforces its own preconditions (non-empty name, finite,
		// monotone time); rejected samples simply never enter the trace.
		_ = tr.Record(name1, t1, v1)
		_ = tr.Record(name1, t2, v2)
		_ = tr.Record(name2, t3, v3)

		// JSON round trip.
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("ReadJSON of own output: %v", err)
		}
		wantSigs, gotSigs := tr.Signals(), back.Signals()
		if len(wantSigs) != len(gotSigs) {
			t.Fatalf("signal count changed: %d -> %d", len(wantSigs), len(gotSigs))
		}
		for i, sig := range wantSigs {
			if gotSigs[i] != sig {
				t.Fatalf("signal order changed at %d: %q -> %q", i, sig, gotSigs[i])
			}
			want, got := tr.Samples(sig), back.Samples(sig)
			if len(want) != len(got) {
				t.Fatalf("%q: sample count changed: %d -> %d", sig, len(want), len(got))
			}
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("%q sample %d changed: %+v -> %+v", sig, j, want[j], got[j])
				}
			}
		}

		// CSV export: structurally valid for any trace content.
		buf.Reset()
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		rows, err := csv.NewReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("CSV output does not re-parse: %v", err)
		}
		if len(rows) == 0 {
			t.Fatal("CSV output missing header")
		}
		width := 1 + len(wantSigs)
		if len(rows[0]) != width {
			t.Fatalf("CSV header width %d, want %d", len(rows[0]), width)
		}
		prev := math.Inf(-1)
		for i, row := range rows[1:] {
			if len(row) != width {
				t.Fatalf("CSV row %d width %d, want %d", i, len(row), width)
			}
			tc, err := strconv.ParseFloat(row[0], 64)
			if err != nil {
				t.Fatalf("CSV row %d time %q: %v", i, row[0], err)
			}
			if tc <= prev {
				t.Fatalf("CSV time column not strictly increasing: %g after %g", tc, prev)
			}
			prev = tc
			for j, cell := range row[1:] {
				if cell == "" {
					continue
				}
				if _, err := strconv.ParseFloat(cell, 64); err != nil {
					t.Fatalf("CSV row %d col %d cell %q: %v", i, j, cell, err)
				}
			}
		}
	})
}
