package trace

import "testing"

// TestColumnAppendAllocs pins the zero-allocation recording contract: once
// a trace has reserved its horizon, appending through a column handle does
// not touch the heap.
func TestColumnAppendAllocs(t *testing.T) {
	tr := New()
	tr.Reserve(2048)
	c := tr.Column("x")
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		c.MustAppend(float64(i), float64(i)*2)
		i++
	})
	if allocs > 0 {
		t.Errorf("reserved column append allocates %.1f objects/op, want 0", allocs)
	}
}

// TestColumnGrowthAmortized checks appending far past the reserved capacity
// stays amortized-constant (geometric growth), not per-append.
func TestColumnGrowthAmortized(t *testing.T) {
	tr := New()
	c := tr.Column("x")
	const n = 100000
	next := 0.0 // keeps time monotone across AllocsPerRun's repeated calls
	avg := testing.AllocsPerRun(1, func() {
		for i := 0; i < n; i++ {
			c.MustAppend(next, 0)
			next++
		}
	})
	// Geometric doubling of two float64 slices from zero reaches 100k
	// samples in well under 100 allocations.
	if avg > 100 {
		t.Errorf("unreserved column took %.0f allocations for %d appends, want amortized growth (<100)", avg, n)
	}
}
