package sim

import (
	"math"
	"testing"

	"adassure/internal/attacks"
	"adassure/internal/core"
	"adassure/internal/track"
	"adassure/internal/vehicle"
)

func urban(t *testing.T) *track.Track {
	t.Helper()
	tr, err := track.UrbanLoop(6)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func monitor() *core.Monitor {
	return core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true})
}

// countBefore counts violations raised before time t.
func countBefore(vs []core.Violation, t float64) int {
	n := 0
	for _, v := range vs {
		if v.T < t {
			n++
		}
	}
	return n
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil track accepted")
	}
	if _, err := Run(Config{Track: urban(t)}); err == nil {
		t.Error("empty controller accepted")
	}
	if _, err := Run(Config{Track: urban(t), Controller: "bogus"}); err == nil {
		t.Error("unknown controller accepted")
	}
	if _, err := Run(Config{Track: urban(t), Controller: "stanley", EngineRate: 10, ControlRate: 50, Duration: 1}); err == nil {
		t.Error("engine slower than control accepted")
	}
}

func TestCleanRunTracksWell(t *testing.T) {
	for _, name := range []string{"pure-pursuit", "stanley", "pid-lateral", "lqr-mpc"} {
		mon := monitor()
		res, err := Run(Config{Track: urban(t), Controller: name, Seed: 3, Duration: 60, Monitor: mon})
		if err != nil {
			t.Fatal(err)
		}
		if res.Diverged {
			t.Errorf("%s diverged on clean run", name)
		}
		if res.MaxTrueCTE > 1.2 {
			t.Errorf("%s clean max CTE %.2f m", name, res.MaxTrueCTE)
		}
		if res.ProgressTotal < 100 {
			t.Errorf("%s covered only %.1f m in 60 s", name, res.ProgressTotal)
		}
		if n := len(mon.Violations()); n > 0 {
			t.Errorf("%s clean run raised %d violations: %v", name, n, mon.FiredIDs())
		}
	}
}

func TestEveryAttackDetected(t *testing.T) {
	win := attacks.Window{Start: 20, End: 50}
	for _, class := range attacks.StandardClasses() {
		camp, err := attacks.Standard(class, win, 1)
		if err != nil {
			t.Fatal(err)
		}
		mon := monitor()
		res, err := Run(Config{
			Track: urban(t), Controller: "pure-pursuit", Seed: 3,
			Duration: 70, Campaign: camp, Monitor: mon,
		})
		if err != nil {
			t.Fatal(err)
		}
		v, detected := mon.FirstViolationAfter(win.Start)
		if !detected {
			t.Errorf("%s: no violation raised (fired=%v maxCTE=%.2f)", class, mon.FiredIDs(), res.MaxTrueCTE)
			continue
		}
		t.Logf("%-20s detected by %s at t=%.2f (onset 20) fired=%v", class, v.AssertionID, v.T, mon.FiredIDs())
		if fp := countBefore(mon.Violations(), win.Start); fp > 0 {
			t.Errorf("%s: %d violations before attack onset", class, fp)
		}
	}
}

func TestStepSpoofDetectedFast(t *testing.T) {
	camp, err := attacks.Standard(attacks.ClassStepSpoof, attacks.Window{Start: 20, End: 50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	mon := monitor()
	if _, err := Run(Config{Track: urban(t), Controller: "pure-pursuit", Seed: 3, Duration: 40, Campaign: camp, Monitor: mon}); err != nil {
		t.Fatal(err)
	}
	v, ok := mon.FirstViolationAfter(20)
	if !ok {
		t.Fatal("step spoof undetected")
	}
	if latency := v.T - 20; latency > 0.5 {
		t.Errorf("step-spoof detection latency %.2f s, want < 0.5", latency)
	}
}

func TestGuardReducesAttackImpact(t *testing.T) {
	// The step spoof is caught by the χ² gate alone; the slow drift evades
	// the gate by construction and needs the assertion-triggered fallback
	// (A13 heading-rate consistency) — the ADAssure runtime-recovery story.
	win := attacks.Window{Start: 20, End: 60}
	for _, class := range []attacks.Class{attacks.ClassStepSpoof, attacks.ClassDriftSpoof} {
		var cte [2]float64
		for i, guard := range []bool{false, true} {
			camp, err := attacks.Standard(class, win, 1)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{
				Track: urban(t), Controller: "pure-pursuit", Seed: 3,
				Duration: 70, Campaign: camp,
			}
			if guard {
				cfg.Monitor = core.NewCatalogMonitor(core.CatalogConfig{})
				cfg.Guard = GuardConfig{Enabled: true, AssertionTrigger: true}
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cte[i] = res.MaxTrueCTE
			if guard && res.FallbackTime == 0 {
				t.Errorf("%s: guard never engaged fallback", class)
			}
		}
		t.Logf("%s: unguarded CTE %.2f m, guarded %.2f m", class, cte[0], cte[1])
		if cte[1] >= cte[0]*0.6 {
			t.Errorf("%s: guard did not materially reduce CTE (%.2f → %.2f)", class, cte[0], cte[1])
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		camp, err := attacks.Standard(attacks.ClassDriftSpoof, attacks.Window{Start: 15, End: 40}, 5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Track: urban(t), Controller: "stanley", Seed: 11, Duration: 50, Campaign: camp})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Final != b.Final {
		t.Errorf("final states differ: %+v vs %+v", a.Final, b.Final)
	}
	if a.MaxTrueCTE != b.MaxTrueCTE || a.Steps != b.Steps {
		t.Error("run summaries differ between identical runs")
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	res := func(seed int64) float64 {
		r, err := Run(Config{Track: urban(t), Controller: "stanley", Seed: seed, Duration: 20})
		if err != nil {
			t.Fatal(err)
		}
		return r.MaxTrueCTE
	}
	if res(1) == res(2) {
		t.Error("different seeds produced identical CTE — noise not seeded")
	}
}

func TestTraceRecorded(t *testing.T) {
	res, err := Run(Config{Track: urban(t), Controller: "lqr-mpc", Seed: 1, Duration: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("trace missing")
	}
	for _, sig := range []string{"true_x", "cte_true", "steer", "nis", "progress"} {
		if res.Trace.Len(sig) == 0 {
			t.Errorf("signal %s not recorded", sig)
		}
	}
	// ~10 s at 20 Hz control → ~200 samples.
	if n := res.Trace.Len("cte_true"); n < 150 || n > 220 {
		t.Errorf("cte_true sample count %d, want ~200", n)
	}
	res2, err := Run(Config{Track: urban(t), Controller: "lqr-mpc", Seed: 1, Duration: 5, DisableTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace != nil {
		t.Error("DisableTrace ignored")
	}
}

func TestOpenRouteFinishes(t *testing.T) {
	tr, err := track.SCurve(8, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Track: tr, Controller: "pure-pursuit", Seed: 1, Duration: 120})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Errorf("open route not finished: progress %.1f/%.1f m", res.ProgressTotal, tr.Path().Length())
	}
	if res.SimTime >= 120 {
		t.Error("run did not stop at route completion")
	}
}

func TestDynamicModelRuns(t *testing.T) {
	res, err := Run(Config{
		Track: urban(t), Controller: "lqr-mpc", Seed: 1, Duration: 30,
		UseDynamicModel: true, Vehicle: vehicle.ShuttleParams(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged || res.MaxTrueCTE > 1.5 {
		t.Errorf("dynamic model run: diverged=%v maxCTE=%.2f", res.Diverged, res.MaxTrueCTE)
	}
}

func TestFallbackCapsSpeed(t *testing.T) {
	camp, err := attacks.Standard(attacks.ClassDropout, attacks.Window{Start: 15, End: 45}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Track: urban(t), Controller: "pure-pursuit", Seed: 1, Duration: 50,
		Campaign: camp, Guard: GuardConfig{Enabled: true, FallbackSpeed: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FallbackTime < 5 {
		t.Fatalf("fallback engaged only %.1f s under a 30 s dropout", res.FallbackTime)
	}
	// During the heart of the dropout the vehicle must have slowed.
	v, ok := res.Trace.At("speed", 40)
	if !ok {
		t.Fatal("speed signal missing")
	}
	if v > 2.5 {
		t.Errorf("speed %.2f m/s during fallback, want <= ~1.5 (+overshoot)", v)
	}
}

func TestNoNaNsInTrace(t *testing.T) {
	camp, err := attacks.Standard(attacks.ClassNoiseInflation, attacks.Window{Start: 10, End: 40}, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Track: urban(t), Controller: "stanley", Seed: 2, Duration: 50, Campaign: camp})
	if err != nil {
		t.Fatal(err)
	}
	for _, sig := range res.Trace.Signals() {
		for _, s := range res.Trace.Samples(sig) {
			if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
				t.Fatalf("signal %s has non-finite sample at t=%.2f", sig, s.T)
			}
		}
	}
}
