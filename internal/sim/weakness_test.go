package sim

import (
	"testing"

	"adassure/internal/core"
	"adassure/internal/diagnosis"
	"adassure/internal/track"
	"adassure/internal/vehicle"
)

// TestControllerWeaknessDiagnosedWithoutAttack exercises the other half of
// the debugging story: no attack at all, but a controller with a known
// speed-dependent weakness (Stanley's 1/v cross-track gain) driven outside
// its comfort zone. The assertions must localise the defect to the
// controller, not to any sensor channel.
func TestControllerWeaknessDiagnosedWithoutAttack(t *testing.T) {
	tr, err := track.SCurve(8, 22) // fast S-curve
	if err != nil {
		t.Fatal(err)
	}
	sedan := vehicle.SedanParams()
	lim := core.DefaultLimits(sedan.MaxSpeed, sedan.MaxLatAccel, sedan.MaxJerk,
		sedan.MaxSteer, sedan.MaxSteerRate, sedan.Wheelbase)
	mon := core.NewCatalogMonitor(core.CatalogConfig{Limits: lim, IncludeGroundTruth: true})
	res, err := Run(Config{
		Track: tr, Controller: "stanley", Vehicle: sedan,
		Seed: 1, Duration: 60, Monitor: mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fired=%v maxCTE=%.2f", mon.FiredIDs(), res.MaxTrueCTE)
	if len(mon.Violations()) == 0 {
		t.Skip("stanley stayed inside the envelope on this configuration")
	}
	hyps := diagnosis.Diagnose(mon.Violations())
	top := hyps[0].Cause
	if top != diagnosis.CauseCtrlOscillation && top != diagnosis.CauseCtrlTracking {
		t.Errorf("weakness diagnosed as %s, want a controller cause (fired %v)", top, mon.FiredIDs())
	}
}
