// Package sim is the deterministic closed-loop simulation engine: it wires
// the vehicle plant, sensor models, attack campaign, fusion stack, planner,
// controllers and the ADAssure monitor into a fixed-step run, producing a
// signal trace and the monitor's violation record. It substitutes for the
// original study's shuttle platform plus ROS recording infrastructure.
package sim

import (
	"context"
	"fmt"
	"math"
	"time"

	"adassure/internal/attacks"
	"adassure/internal/control"
	"adassure/internal/core"
	"adassure/internal/events"
	"adassure/internal/fusion"
	"adassure/internal/geom"
	"adassure/internal/obs"
	"adassure/internal/planner"
	"adassure/internal/sensors"
	"adassure/internal/trace"
	"adassure/internal/track"
	"adassure/internal/vehicle"
)

// GuardConfig is the defence configuration the debug-loop experiment
// toggles: χ²-gated fusion with dead-reckoning fallback and a speed cap
// while the GNSS channel is distrusted.
type GuardConfig struct {
	// Enabled turns the whole guard on.
	Enabled bool
	// GateThreshold is the fusion χ² gate (default fusion.DefaultGate).
	GateThreshold float64
	// FallbackAfter is the consecutive-reject count that switches
	// localization to dead reckoning (default 3).
	FallbackAfter int
	// FallbackSpeed caps the target speed while in fallback (default 2 m/s).
	FallbackSpeed float64
	// StaleAfter is the GNSS silence (s) that also triggers fallback —
	// covering dropout/delay attacks where no fix ever reaches the gate
	// (default 1.2 s).
	StaleAfter float64
	// AssertionTrigger additionally enters fallback when the attached
	// Monitor raises a critical online violation — the ADAssure
	// assertion-driven recovery that covers slow drifts the χ² gate can
	// never see. Requires Config.Monitor.
	AssertionTrigger bool
	// RecoverDist is how close (m) incoming fixes must be to the
	// dead-reckoned position, twice in a row, to leave fallback and
	// re-initialise fusion (default 5 m).
	RecoverDist float64
	// MRMAfter is how long (s) fallback may persist before the vehicle
	// executes a minimum-risk manoeuvre and brakes to a stop (default 8 s).
	MRMAfter float64
	// LatchTime is how long (s) an assertion-triggered fallback is latched
	// before recovery checks resume (default 20 s). A violation raised by
	// the monitor means the measurement stream is actively hostile; unlike
	// a gate rejection it cannot be "walked back" by measurements that
	// merely agree with the already-dragged anchor.
	LatchTime float64
}

func (g *GuardConfig) defaults() {
	if g.GateThreshold <= 0 {
		g.GateThreshold = fusion.DefaultGate
	}
	if g.FallbackAfter <= 0 {
		g.FallbackAfter = 3
	}
	if g.FallbackSpeed <= 0 {
		g.FallbackSpeed = 2
	}
	if g.StaleAfter <= 0 {
		g.StaleAfter = 1.2
	}
	if g.RecoverDist <= 0 {
		g.RecoverDist = 5
	}
	if g.MRMAfter <= 0 {
		g.MRMAfter = 8
	}
	if g.LatchTime <= 0 {
		g.LatchTime = 20
	}
}

// FaultSet injects deterministic component-fault models into a run. The
// sensor hooks sit between the pristine sensor models and the attack
// campaign (a hardware fault happens upstream of any adversarial channel
// manipulation); returning deliver=false drops the reading. The Actuator
// hook corrupts the command after the monitor has seen what the controller
// requested — the same interposition point as Campaign.Actuator — and runs
// ahead of it. Hooks may keep internal state (latency queues, stuck-at
// latches); a FaultSet must therefore not be shared across concurrent
// runs. All fields are optional; a nil FaultSet is a pristine run.
type FaultSet struct {
	GNSS     func(fix sensors.GNSSFix, t float64) (sensors.GNSSFix, bool)
	IMU      func(r sensors.IMUReading, t float64) (sensors.IMUReading, bool)
	Odom     func(r sensors.OdomReading, t float64) (sensors.OdomReading, bool)
	Actuator func(cmd vehicle.Command, t float64) vehicle.Command
}

// Config describes one simulation run.
type Config struct {
	// Track is the route to drive. Required.
	Track *track.Track
	// Controller is the lateral controller name (control.ByName). Required.
	Controller string
	// Vehicle is the parameter set (default ShuttleParams).
	Vehicle vehicle.Params
	// UseDynamicModel selects the dynamic bicycle plant.
	UseDynamicModel bool
	// Localizer selects the fusion stack: "ekf" (default) or
	// "complementary" (fixed-gain filter without innovation gating — the
	// χ² guard triggers and assertion A10 are unavailable with it).
	Localizer string
	// Seed drives all stochastic components.
	Seed int64
	// Duration is the simulated time budget in seconds (default 60).
	Duration float64
	// ControlRate is the control/monitor frequency in Hz (default 20).
	ControlRate float64
	// EngineRate is the physics frequency in Hz (default 100).
	EngineRate float64
	// Campaign is the attack configuration (zero value = clean run).
	Campaign attacks.Campaign
	// WrapLateral, when non-nil, wraps the lateral controller right after
	// construction — the mutation-testing engine's injection point for
	// controller-level mutants (the pristine control implementations are
	// never touched). A wrapper that can emit non-finite commands must be
	// run with DisableTrace (the trace layer stores finite samples only;
	// the step loop skips recording such samples, the plant sanitises
	// them, and the monitor skips the affected frames).
	WrapLateral func(control.Lateral) control.Lateral
	// WrapSpeed is WrapLateral for the longitudinal controller.
	WrapSpeed func(control.Longitudinal) control.Longitudinal
	// Faults, when non-nil, injects component-fault models between the
	// pristine sensors and the attack campaign (see FaultSet).
	Faults *FaultSet
	// Guard configures the defended stack.
	Guard GuardConfig
	// Monitor, when non-nil, receives one core.Frame per control step.
	Monitor *core.Monitor
	// RecordFrames additionally stores every monitor frame in the Result,
	// enabling offline re-monitoring with different catalogs/thresholds
	// without re-simulating (see internal/offline).
	RecordFrames bool
	// InitialSpeed at spawn (default 1 m/s).
	InitialSpeed float64
	// Obs, when non-nil, receives runtime metrics: control-step count and
	// per-step latency histogram (sim.steps, sim.step_ns), the achieved
	// steps-per-second of the run (sim.steps_per_sec), and — via
	// Monitor.Attach — the per-assertion monitoring cost. A nil registry
	// adds no measurable overhead to the step loop.
	Obs *obs.Registry
	// RecordTrace enables full signal recording (default true via Run; the
	// benchmark harness disables it for overhead-free timing).
	DisableTrace bool
	// Events, when non-nil, receives the run's structured event timeline:
	// the scenario lifecycle span, the attack activation window, guard
	// fallback intervals, termination instants and — via
	// Monitor.AttachEvents — every violation episode. A nil recorder adds
	// no measurable overhead (single nil checks on the control path).
	Events *events.Recorder
	// EventScope prefixes every event track this run emits (e.g. "s3/"),
	// keeping tracks distinct when concurrent runs share one recorder.
	EventScope string
	// Context, when non-nil, cancels the run early: the step loop checks it
	// once per control step (20 Hz of simulated time — microseconds of wall
	// time) and aborts with an error wrapping ctx.Err(). This is how a
	// serving layer's per-request timeout reaches the simulator without the
	// loop having to finish the full Duration first.
	Context context.Context
}

func (c *Config) defaults() error {
	if c.Track == nil {
		return fmt.Errorf("sim: config requires a track")
	}
	if c.Controller == "" {
		return fmt.Errorf("sim: config requires a controller name")
	}
	if c.Vehicle.Wheelbase == 0 {
		c.Vehicle = vehicle.ShuttleParams()
	}
	if err := c.Vehicle.Validate(); err != nil {
		return err
	}
	if c.Duration <= 0 {
		c.Duration = 60
	}
	if c.ControlRate <= 0 {
		c.ControlRate = 20
	}
	if c.EngineRate <= 0 {
		c.EngineRate = 100
	}
	if c.EngineRate < c.ControlRate {
		return fmt.Errorf("sim: engine rate %g Hz below control rate %g Hz", c.EngineRate, c.ControlRate)
	}
	if c.InitialSpeed <= 0 {
		c.InitialSpeed = 1
	}
	switch c.Localizer {
	case "":
		c.Localizer = "ekf"
	case "ekf", "complementary":
	default:
		return fmt.Errorf("sim: unknown localizer %q", c.Localizer)
	}
	c.Guard.defaults()
	return nil
}

// Result summarises a run.
type Result struct {
	// Trace holds the recorded signals (nil when disabled).
	Trace *trace.Trace
	// Final is the vehicle's final ground-truth state.
	Final vehicle.State
	// SimTime is the simulated seconds actually run.
	SimTime float64
	// Steps is the number of control steps executed.
	Steps int
	// MaxTrueCTE and RMSTrueCTE summarise physical tracking quality.
	MaxTrueCTE, RMSTrueCTE float64
	// MaxEstCTE summarises believed tracking quality.
	MaxEstCTE float64
	// ProgressTotal is the route distance covered.
	ProgressTotal float64
	// Laps counts completed laps on closed tracks.
	Laps int
	// Finished reports open-route completion.
	Finished bool
	// Diverged is set when the vehicle left the 100 m corridor around the
	// path and the run was aborted.
	Diverged bool
	// FallbackTime is the simulated time spent in dead-reckoning fallback.
	FallbackTime float64
	// Violations echoes the monitor's record (nil monitor → nil).
	Violations []core.Violation
	// Frames holds the recorded frame stream when RecordFrames was set.
	Frames []core.Frame
}

// Run executes one simulation. It is deterministic in (Config, Seed).
func Run(cfg Config) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	lateral, err := control.ByName(cfg.Controller, cfg.Vehicle)
	if err != nil {
		return nil, err
	}
	if cfg.WrapLateral != nil {
		lateral = cfg.WrapLateral(lateral)
	}
	var speedCtl control.Longitudinal = control.NewSpeedPID(cfg.Vehicle)
	if cfg.WrapSpeed != nil {
		speedCtl = cfg.WrapSpeed(speedCtl)
	}
	profile, err := planner.NewSpeedProfileForTrack(cfg.Track, cfg.Vehicle)
	if err != nil {
		return nil, err
	}
	progress, err := planner.NewProgress(cfg.Track.Path())
	if err != nil {
		return nil, err
	}
	follower, err := planner.NewFollower(cfg.Track.Path())
	if err != nil {
		return nil, err
	}
	truthFollower, err := planner.NewFollower(cfg.Track.Path())
	if err != nil {
		return nil, err
	}

	var model vehicle.Model
	if cfg.UseDynamicModel {
		model = vehicle.NewDynamic(cfg.Vehicle)
	} else {
		model = vehicle.NewKinematic(cfg.Vehicle)
	}

	gnss := sensors.NewGNSS(sensors.GNSSConfig{}, cfg.Seed*7+1)
	imu := sensors.NewIMU(sensors.IMUConfig{}, cfg.Seed*7+2)
	odom := sensors.NewOdometer(sensors.OdomConfig{}, cfg.Seed*7+3)

	start := cfg.Track.StartPose()
	truth := vehicle.State{X: start.Pos.X, Y: start.Pos.Y, Heading: start.Heading, Speed: cfg.InitialSpeed}

	ekfCfg := fusion.EKFConfig{}
	if cfg.Guard.Enabled {
		ekfCfg.GateThreshold = cfg.Guard.GateThreshold
	}
	newLocalizer := func(t0 float64, pose geom.Pose, speed float64) fusion.Localizer {
		if cfg.Localizer == "complementary" {
			return fusion.NewComplementary(t0, pose, speed)
		}
		return fusion.NewEKF(ekfCfg, t0, pose, speed)
	}
	ekf := newLocalizer(0, start, cfg.InitialSpeed)
	dr := fusion.NewDeadReckoner(0, start, cfg.InitialSpeed)

	res := &Result{}
	engineDT := 1 / cfg.EngineRate
	controlEvery := int(math.Round(cfg.EngineRate / cfg.ControlRate))
	controlDT := engineDT * float64(controlEvery)

	// Trace recording is columnar: the column handles are resolved once,
	// before the loop, and each column preallocates the full horizon
	// (duration × control rate), so steady-state recording is a pair of
	// slice appends per signal — no map lookups, no reallocation.
	var tc *stepColumns
	if !cfg.DisableTrace {
		tr := trace.New()
		tr.Reserve(int(math.Ceil(cfg.Duration/controlDT)) + 1)
		tc = newStepColumns(tr)
		res.Trace = tr
	}
	if cfg.RecordFrames {
		res.Frames = make([]core.Frame, 0, int(math.Ceil(cfg.Duration/controlDT))+1)
	}

	// Observability: resolve handles once so the loop pays only nil checks
	// when cfg.Obs is nil. Per-control-step timing uses chained clock reads
	// (one per control step) covering the physics sub-steps, sensor/fusion
	// work, control and monitoring since the previous control step.
	var stepsCtr *obs.Counter
	var stepNS *obs.Histogram
	var wallStart, lastStepClock time.Time
	if cfg.Obs != nil {
		cfg.Obs.Counter("sim.runs").Inc()
		stepsCtr = cfg.Obs.Counter("sim.steps")
		stepNS = cfg.Obs.Histogram("sim.step_ns")
		if cfg.Monitor != nil {
			cfg.Monitor.Attach(cfg.Obs)
		}
		wallStart = time.Now()
		lastStepClock = wallStart
	}

	// Event timeline: the scenario span opens at t=0; attack-window and
	// guard-fallback transitions are emitted as the control loop crosses
	// them, so the recorded boundaries reflect what the run actually
	// executed (an aborted run closes its spans at the abort instant).
	ev := cfg.Events
	scenarioName := cfg.Controller + " on " + cfg.Track.Name()
	attackWin, hasAttack := cfg.Campaign.ActiveWindow()
	attackOpen, guardOpen := false, false
	if ev != nil {
		ev.Begin(events.CatScenario, cfg.EventScope+"scenario", scenarioName, 0,
			map[string]float64{"seed": float64(cfg.Seed), "duration": cfg.Duration})
		if cfg.Monitor != nil {
			cfg.Monitor.AttachEvents(ev, cfg.EventScope)
		}
	}

	// Derived-GNSS state: the receiver-style course/speed over ground are
	// computed from the displacement across a ~1 s baseline of delivered
	// fixes, which keeps the white position noise from dominating the
	// derivative (a single-period baseline would have ~2 m/s of speed
	// noise at 10 Hz).
	const derivedBaseline = 1.0
	var lastFix sensors.GNSSFix
	lastFixAt := 0.0 // run start counts as fresh for the staleness trigger
	type stampedFix struct {
		t float64
		p geom.Vec2
	}
	// ~1 s of fixes at 10 Hz plus slack; eviction compacts in place so the
	// backing array is allocated once per run.
	fixHist := make([]stampedFix, 0, 64)
	derivedCourse, derivedSpeed := start.Heading, cfg.InitialSpeed

	var lastIMU sensors.IMUReading
	lastIMUAt := math.Inf(-1)
	var lastOdom sensors.OdomReading
	lastOdomAt := math.Inf(-1)

	cmd := vehicle.Command{}
	inFallback := false
	fallbackSince := 0.0
	latchUntil := 0.0
	recoveryCount := 0
	seenViolations := 0
	lastEKFUpdateAt := math.Inf(-1)
	var sumSqTrueCTE float64
	var cteSamples int

	nSteps := int(math.Round(cfg.Duration / engineDT))
	for step := 1; step <= nSteps; step++ {
		t := float64(step) * engineDT

		// Physics.
		truth = model.Step(truth, cmd, engineDT)
		res.SimTime = t

		// Sensors → attacks → fusion.
		for _, r := range imu.Poll(truth, t) {
			if cfg.Faults != nil && cfg.Faults.IMU != nil {
				var deliver bool
				if r, deliver = cfg.Faults.IMU(r, t); !deliver {
					continue
				}
			}
			if cfg.Campaign.IMU != nil {
				var deliver bool
				if r, deliver = cfg.Campaign.IMU.Apply(r, t); !deliver {
					continue
				}
			}
			ekf.PredictIMU(r)
			dr.StepIMU(r)
			lastIMU, lastIMUAt = r, t
		}
		for _, r := range odom.Poll(truth, t) {
			if cfg.Faults != nil && cfg.Faults.Odom != nil {
				var deliver bool
				if r, deliver = cfg.Faults.Odom(r, t); !deliver {
					continue
				}
			}
			if cfg.Campaign.Odom != nil {
				var deliver bool
				if r, deliver = cfg.Campaign.Odom.Apply(r, t); !deliver {
					continue
				}
			}
			ekf.UpdateOdom(r)
			dr.ObserveOdom(r)
			lastOdom, lastOdomAt = r, t
		}
		for _, fix := range gnss.Poll(truth, t) {
			if cfg.Faults != nil && cfg.Faults.GNSS != nil {
				var deliver bool
				if fix, deliver = cfg.Faults.GNSS(fix, t); !deliver {
					continue
				}
			}
			if cfg.Campaign.GNSS != nil {
				var deliver bool
				if fix, deliver = cfg.Campaign.GNSS.Apply(fix, t); !deliver {
					continue
				}
			}
			if inFallback {
				// Quarantine: fixes are not fused while distrusted. Leave
				// fallback only after the latch has expired and two
				// consecutive fixes land near the dead-reckoned position,
				// then re-seed the filter there.
				if t < latchUntil {
					continue
				}
				if fix.Pos.Dist(dr.Estimate().Pose.Pos) < cfg.Guard.RecoverDist {
					recoveryCount++
				} else {
					recoveryCount = 0
				}
				if recoveryCount >= 2 {
					e := dr.Estimate()
					ekf = newLocalizer(t, e.Pose, e.Speed)
					ekf.UpdateGNSS(fix)
					lastEKFUpdateAt = t
					inFallback = false
					recoveryCount = 0
				}
			} else {
				_, accepted := ekf.UpdateGNSS(fix)
				lastEKFUpdateAt = t
				if accepted && cfg.Guard.Enabled {
					// Re-anchor the reckoner at every trusted fusion output.
					e := ekf.Estimate()
					dr.Reset(e.T, e.Pose, e.Speed)
				}
			}
			// Receiver-derived course/speed over the smoothing baseline.
			fixHist = append(fixHist, stampedFix{t: t, p: fix.Pos})
			evict := 0
			for evict < len(fixHist)-1 && t-fixHist[evict].t > derivedBaseline+0.05 {
				evict++
			}
			if evict > 0 {
				n := copy(fixHist, fixHist[evict:])
				fixHist = fixHist[:n]
			}
			if oldest := fixHist[0]; t-oldest.t > derivedBaseline*0.5 {
				d := fix.Pos.Sub(oldest.p)
				derivedSpeed = d.Norm() / (t - oldest.t)
				if derivedSpeed > 0.5 {
					derivedCourse = d.Angle()
				}
			}
			lastFix, lastFixAt = fix, t
		}

		// Control + monitoring at the control rate.
		if step%controlEvery != 0 {
			continue
		}

		// Cancellation gate: one cheap Err() call per control step keeps
		// the abort latency under one control period of wall time.
		if cfg.Context != nil {
			if err := cfg.Context.Err(); err != nil {
				return nil, fmt.Errorf("sim: run cancelled at t=%.2f s: %w", t, err)
			}
		}

		// Guard entry triggers.
		if cfg.Guard.Enabled {
			assertionHit := false
			if cfg.Guard.AssertionTrigger && cfg.Monitor != nil {
				for i := seenViolations; i < cfg.Monitor.NumViolations(); i++ {
					// Only online critical assertions drive recovery; A12
					// reads ground truth and exists for offline scoring.
					// Indexed access avoids the per-step copy Violations()
					// would make of the whole record.
					v := cfg.Monitor.ViolationAt(i)
					if v.Severity == core.Critical && v.AssertionID != "A12" {
						assertionHit = true
					}
				}
			}
			if assertionHit {
				// New evidence of hostility (re-)latches the quarantine.
				latchUntil = t + cfg.Guard.LatchTime
			}
			gateTrigger := ekf.RejectStreak() >= cfg.Guard.FallbackAfter ||
				t-lastFixAt > cfg.Guard.StaleAfter
			if !inFallback && (gateTrigger || assertionHit) {
				inFallback = true
				fallbackSince = t
				recoveryCount = 0
			}
		}
		if cfg.Monitor != nil {
			seenViolations = cfg.Monitor.NumViolations()
		}

		if ev != nil {
			if hasAttack {
				if active := attackWin.Contains(t); active != attackOpen {
					attackOpen = active
					if active {
						ev.Begin(events.CatAttack, cfg.EventScope+"attack", cfg.Campaign.Name(), t,
							map[string]float64{"start": attackWin.Start, "end": attackWin.End})
					} else {
						ev.End(events.CatAttack, cfg.EventScope+"attack", cfg.Campaign.Name(), t, nil)
					}
				}
			}
			if guardOpen != inFallback {
				guardOpen = inFallback
				if inFallback {
					ev.Begin(events.CatGuard, cfg.EventScope+"guard", "dead-reckoning fallback", t, nil)
				} else {
					ev.End(events.CatGuard, cfg.EventScope+"guard", "dead-reckoning fallback", t, nil)
				}
			}
		}

		est := ekf.Estimate()
		if inFallback {
			est = dr.Estimate()
			res.FallbackTime += controlDT
		}

		s, cte := follower.Project(est.Pose.Pos)
		headingErr := geom.AngleDiff(est.Pose.Heading, cfg.Track.Path().HeadingAt(s))
		kappa := cfg.Track.Path().CurvatureAt(s)
		prog := progress.Observe(s)
		// Compensate the drivetrain/PID lag by also honouring the profile
		// about half a second of travel ahead — otherwise the vehicle
		// enters sharp corners ~1 m/s hot.
		target := math.Min(profile.TargetAt(s), profile.TargetAt(s+est.Speed*0.6))
		if inFallback {
			if target > cfg.Guard.FallbackSpeed {
				target = cfg.Guard.FallbackSpeed
			}
			if t-fallbackSince > cfg.Guard.MRMAfter {
				target = 0 // minimum-risk manoeuvre: come to a stop
			}
		}

		// The command interface contract: steering requests saturate at the
		// actuator limit before they leave the controller node.
		steer := geom.Clamp(lateral.Steer(est, cfg.Track.Path(), controlDT), -cfg.Vehicle.MaxSteer, cfg.Vehicle.MaxSteer)
		accel := speedCtl.Accel(est.Speed, target, controlDT)
		cmd = vehicle.Command{Steer: steer, Accel: accel}
		if cfg.Faults != nil && cfg.Faults.Actuator != nil {
			// Component-level actuator fault: like Campaign.Actuator below,
			// it corrupts after the monitor has seen the requested command.
			cmd = cfg.Faults.Actuator(cmd, t)
		}
		if cfg.Campaign.Actuator != nil {
			// Actuator faults corrupt the command *after* the controller
			// (and after the monitor sees what was requested) — the plant
			// executes the faulted command.
			cmd = cfg.Campaign.Actuator.Apply(cmd, t)
		}
		res.Steps++

		_, trueCTE := truthFollower.Project(geom.V(truth.X, truth.Y))
		if a := math.Abs(trueCTE); a > res.MaxTrueCTE {
			res.MaxTrueCTE = a
		}
		if a := math.Abs(cte); a > res.MaxEstCTE {
			res.MaxEstCTE = a
		}
		sumSqTrueCTE += trueCTE * trueCTE
		cteSamples++

		nis, _ := ekf.LastNIS()
		nisFresh := t-lastEKFUpdateAt <= controlDT && cfg.Localizer == "ekf"

		// Curvature band the controller may legitimately be steering for:
		// slightly behind the projection to one lookahead distance ahead.
		curvLo, curvHi := kappa, kappa
		for d := -2.0; d <= 12.0; d += 1.0 {
			k := cfg.Track.Path().CurvatureAt(s + d)
			if k < curvLo {
				curvLo = k
			}
			if k > curvHi {
				curvHi = k
			}
		}

		if cfg.Monitor != nil || cfg.RecordFrames {
			frame := core.Frame{
				T: t, Dt: controlDT,
				EstX: est.Pose.Pos.X, EstY: est.Pose.Pos.Y,
				EstHeading: est.Pose.Heading, EstSpeed: est.Speed,
				EstYawRate: est.YawRate, EstPosStdDev: est.PosStdDev,
				GNSSX: lastFix.Pos.X, GNSSY: lastFix.Pos.Y,
				GNSSSpeed: derivedSpeed, GNSSCourse: derivedCourse,
				GNSSAge: t - lastFixAt, GNSSValid: lastFix.Valid,
				IMUHeading: lastIMU.Heading, IMUYawRate: lastIMU.YawRate,
				IMUAccel: lastIMU.Accel, IMUAge: t - lastIMUAt,
				OdomSpeed: lastOdom.Speed, OdomAge: t - lastOdomAt,
				CmdSteer: steer, CmdAccel: accel,
				RefS: s, CTE: cte, HeadingErr: headingErr,
				Curvature: kappa, TargetSpeed: target, Progress: prog,
				CurvAheadMin: curvLo, CurvAheadMax: curvHi,
				NIS: nis, NISFresh: nisFresh, RejectStreak: ekf.RejectStreak(),
				TrueX: truth.X, TrueY: truth.Y, TrueHeading: truth.Heading,
				TrueSpeed: truth.Speed, TrueCTE: trueCTE,
			}
			if cfg.Monitor != nil {
				cfg.Monitor.Step(frame)
			}
			if cfg.RecordFrames {
				res.Frames = append(res.Frames, frame)
			}
		}

		if tc != nil {
			tc.trueX.MustAppend(t, truth.X)
			tc.trueY.MustAppend(t, truth.Y)
			tc.estX.MustAppend(t, est.Pose.Pos.X)
			tc.estY.MustAppend(t, est.Pose.Pos.Y)
			tc.gnssX.MustAppend(t, lastFix.Pos.X)
			tc.gnssY.MustAppend(t, lastFix.Pos.Y)
			tc.cteTrue.MustAppend(t, trueCTE)
			tc.cteEst.MustAppend(t, cte)
			tc.speed.MustAppend(t, truth.Speed)
			tc.targetSpeed.MustAppend(t, target)
			appendFinite(tc.steer, t, steer)
			appendFinite(tc.accelCmd, t, accel)
			tc.nis.MustAppend(t, nis)
			tc.headingErr.MustAppend(t, headingErr)
			tc.estHeading.MustAppend(t, est.Pose.Heading)
			tc.imuHeading.MustAppend(t, lastIMU.Heading)
			tc.curvature.MustAppend(t, kappa)
			tc.progress.MustAppend(t, prog)
			tc.fallback.MustAppend(t, boolTo01(inFallback))
		}

		if stepNS != nil {
			now := time.Now()
			stepNS.Observe(now.Sub(lastStepClock).Nanoseconds())
			lastStepClock = now
			stepsCtr.Inc()
		}

		// Termination conditions.
		if progress.Finished() {
			res.Finished = true
			break
		}
		if math.Abs(trueCTE) > 100 {
			res.Diverged = true
			break
		}
	}

	res.Final = truth
	res.ProgressTotal = progress.Total()
	res.Laps = progress.Laps()
	if cteSamples > 0 {
		res.RMSTrueCTE = math.Sqrt(sumSqTrueCTE / float64(cteSamples))
	}
	if cfg.Monitor != nil {
		res.Violations = cfg.Monitor.Violations()
	}
	if ev != nil {
		t := res.SimTime
		if attackOpen {
			ev.End(events.CatAttack, cfg.EventScope+"attack", cfg.Campaign.Name(), t,
				map[string]float64{"truncated": 1})
		}
		if guardOpen {
			ev.End(events.CatGuard, cfg.EventScope+"guard", "dead-reckoning fallback", t,
				map[string]float64{"truncated": 1})
		}
		if cfg.Monitor != nil {
			cfg.Monitor.FinishEvents(t)
		}
		if res.Diverged {
			ev.Instant(events.CatScenario, cfg.EventScope+"scenario", "diverged", t, nil)
		}
		if res.Finished {
			ev.Instant(events.CatScenario, cfg.EventScope+"scenario", "finished", t, nil)
		}
		ev.End(events.CatScenario, cfg.EventScope+"scenario", scenarioName, t, map[string]float64{
			"steps":        float64(res.Steps),
			"max_true_cte": res.MaxTrueCTE,
			"violations":   float64(len(res.Violations)),
		})
	}
	if cfg.Obs != nil {
		if elapsed := time.Since(wallStart).Seconds(); elapsed > 0 {
			cfg.Obs.Gauge("sim.steps_per_sec").Set(float64(res.Steps) / elapsed)
		}
	}
	return res, nil
}

// stepColumns holds the resolved trace column handles for every signal the
// step loop records, so the loop performs no per-step map lookups. The
// declaration order matches the original Record order, which fixes the
// signal first-appearance order (and hence CSV column order) byte-for-byte.
type stepColumns struct {
	trueX, trueY           *trace.Column
	estX, estY             *trace.Column
	gnssX, gnssY           *trace.Column
	cteTrue, cteEst        *trace.Column
	speed, targetSpeed     *trace.Column
	steer, accelCmd        *trace.Column
	nis                    *trace.Column
	headingErr, estHeading *trace.Column
	imuHeading             *trace.Column
	curvature, progress    *trace.Column
	fallback               *trace.Column
}

func newStepColumns(tr *trace.Trace) *stepColumns {
	return &stepColumns{
		trueX: tr.Column("true_x"), trueY: tr.Column("true_y"),
		estX: tr.Column("est_x"), estY: tr.Column("est_y"),
		gnssX: tr.Column("gnss_x"), gnssY: tr.Column("gnss_y"),
		cteTrue: tr.Column("cte_true"), cteEst: tr.Column("cte_est"),
		speed: tr.Column("speed"), targetSpeed: tr.Column("target_speed"),
		steer: tr.Column("steer"), accelCmd: tr.Column("accel_cmd"),
		nis:        tr.Column("nis"),
		headingErr: tr.Column("heading_err"), estHeading: tr.Column("est_heading"),
		imuHeading: tr.Column("imu_heading"),
		curvature:  tr.Column("curvature"), progress: tr.Column("progress"),
		fallback: tr.Column("fallback"),
	}
}

// appendFinite appends a sample, silently skipping non-finite values: the
// trace layer stores finite samples only, and a mutated controller
// (WrapLateral) may legitimately emit NaN commands.
func appendFinite(c *trace.Column, t, v float64) {
	if !math.IsNaN(v) && !math.IsInf(v, 0) {
		c.MustAppend(t, v)
	}
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
