package sim

import (
	"testing"

	"adassure/internal/core"
	"adassure/internal/track"
)

// TestSteadyStateStepAllocs pins the zero-allocation hot-path contract end
// to end: the marginal heap cost of additional simulated time — physics,
// sensor delivery, fusion, control, full-catalog monitoring and columnar
// trace recording — must stay near zero once a run has warmed up. Setup
// cost (controllers, planner, EKF scratch, trace reservation) is excluded
// by differencing two run lengths, so this test fails only when a per-step
// allocation sneaks back into the loop.
func TestSteadyStateStepAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement needs full-length runs")
	}
	trk, err := track.UrbanLoop(6)
	if err != nil {
		t.Fatal(err)
	}
	allocsFor := func(duration float64) float64 {
		return testing.AllocsPerRun(3, func() {
			mon := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true})
			if _, err := Run(Config{
				Track: trk, Controller: "pure-pursuit", Seed: 1,
				Duration: duration, Monitor: mon,
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := allocsFor(2)
	long := allocsFor(12)
	perSecond := (long - short) / 10 // 20 control + 100 engine steps each
	// Headroom: a simulated second is 120 loop iterations; the budget of 10
	// allocations/s (~0.08/iteration) absorbs rare amortized events (map
	// rehash, slice doubling past the reserve) while still failing if any
	// true per-step allocation returns.
	if perSecond > 10 {
		t.Errorf("steady-state sim costs %.1f allocs per simulated second (short=%.0f long=%.0f), want ≤10",
			perSecond, short, long)
	}
}
