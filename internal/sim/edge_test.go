package sim

import (
	"math"
	"testing"

	"adassure/internal/attacks"
	"adassure/internal/core"
	"adassure/internal/geom"
	"adassure/internal/track"
)

// TestAttackFromTimeZero exercises attacks whose window opens at t=0 — no
// pre-attack capture history exists for stateful attacks, which must
// degrade gracefully instead of panicking or corrupting state.
func TestAttackFromTimeZero(t *testing.T) {
	for _, class := range []attacks.Class{
		attacks.ClassFreeze, attacks.ClassStepSpoof, attacks.ClassDropout, attacks.ClassDelay,
	} {
		camp, err := attacks.Standard(class, attacks.Window{Start: 0, End: 30}, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Track: urban(t), Controller: "pure-pursuit", Seed: 1, Duration: 40, Campaign: camp})
		if err != nil {
			t.Fatalf("%s from t=0: %v", class, err)
		}
		if res.Steps == 0 {
			t.Errorf("%s from t=0: no control steps", class)
		}
	}
}

// TestAttackWholeRun: the window never closes.
func TestAttackWholeRun(t *testing.T) {
	camp, err := attacks.Standard(attacks.ClassDriftSpoof, attacks.Window{Start: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	mon := monitor()
	res, err := Run(Config{Track: urban(t), Controller: "lqr-mpc", Seed: 1, Duration: 50, Campaign: camp, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mon.FirstViolationAfter(5); !ok {
		t.Error("open-ended drift undetected")
	}
	_ = res
}

// TestVeryShortRun: sub-second runs complete without underflow.
func TestVeryShortRun(t *testing.T) {
	res, err := Run(Config{Track: urban(t), Controller: "stanley", Seed: 1, Duration: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps < 1 || res.SimTime <= 0 {
		t.Errorf("short run: steps=%d t=%g", res.Steps, res.SimTime)
	}
}

// TestHighControlRate: control at the engine rate (every physics step).
func TestHighControlRate(t *testing.T) {
	res, err := Run(Config{
		Track: urban(t), Controller: "pure-pursuit", Seed: 1, Duration: 10,
		ControlRate: 100, EngineRate: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps < 950 {
		t.Errorf("expected ~1000 control steps, got %d", res.Steps)
	}
	if res.MaxTrueCTE > 1 {
		t.Errorf("high-rate control degraded tracking: %.2f m", res.MaxTrueCTE)
	}
}

// TestAllTracksAllControllersClean is the broad clean matrix: every
// built-in route × every controller completes without violations.
func TestAllTracksAllControllersClean(t *testing.T) {
	cat, err := track.Catalog(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range track.Names(cat) {
		for _, ctrl := range []string{"pure-pursuit", "stanley", "pid-lateral", "lqr-mpc"} {
			mon := monitor()
			res, err := Run(Config{Track: cat[name], Controller: ctrl, Seed: 7, Duration: 45, Monitor: mon, DisableTrace: true})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, ctrl, err)
			}
			if res.Diverged {
				t.Errorf("%s/%s diverged", name, ctrl)
			}
			if n := len(mon.Violations()); n > 0 {
				t.Errorf("%s/%s: %d clean violations (%v)", name, ctrl, n, mon.FiredIDs())
			}
		}
	}
}

// TestGuardNeverEngagesOnCleanRuns: the defended stack must be transparent
// in nominal operation.
func TestGuardNeverEngagesOnCleanRuns(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		mon := core.NewCatalogMonitor(core.CatalogConfig{})
		res, err := Run(Config{
			Track: urban(t), Controller: "pure-pursuit", Seed: seed, Duration: 60,
			Monitor: mon, Guard: GuardConfig{Enabled: true, AssertionTrigger: true},
			DisableTrace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.FallbackTime > 0 {
			t.Errorf("seed %d: guard engaged %.1f s on a clean run", seed, res.FallbackTime)
		}
		if res.MaxTrueCTE > 1.2 {
			t.Errorf("seed %d: guarded clean CTE %.2f m", seed, res.MaxTrueCTE)
		}
	}
}

// TestActuatorFaultsDetectedAndBounded: integration check for the
// actuation-path fault classes.
func TestActuatorFaultsDetectedAndBounded(t *testing.T) {
	for _, class := range []attacks.Class{attacks.ClassStuckSteer, attacks.ClassSteerOffset} {
		camp, err := attacks.Standard(class, attacks.Window{Start: 20, End: 50}, 1)
		if err != nil {
			t.Fatal(err)
		}
		mon := monitor()
		if _, err := Run(Config{Track: urban(t), Controller: "pure-pursuit", Seed: 1, Duration: 60, Campaign: camp, Monitor: mon}); err != nil {
			t.Fatal(err)
		}
		v, ok := mon.FirstViolationAfter(20)
		if !ok {
			t.Fatalf("%s undetected", class)
		}
		if v.AssertionID != "A14" {
			t.Errorf("%s first detector = %s, want A14", class, v.AssertionID)
		}
		if fp := countBefore(mon.Violations(), 20); fp > 0 {
			t.Errorf("%s: %d pre-onset violations", class, fp)
		}
	}
}

// TestCustomWaypointRouteWithSequenceAttack drives a user route under a
// two-stage campaign end to end.
func TestCustomWaypointRouteWithSequenceAttack(t *testing.T) {
	route, err := track.FromWaypoints("test-route", []geom.Vec2{
		{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 100, Y: 20}, {X: 150, Y: 20}, {X: 200, Y: 0}, {X: 260, Y: 0},
	}, false, 6)
	if err != nil {
		t.Fatal(err)
	}
	step, err := attacks.NewStepSpoof(attacks.Window{Start: 10, End: 15}, geom.V(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	freeze, err := attacks.NewFreeze(attacks.Window{Start: 30, End: 40})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := attacks.NewSequence(step, freeze)
	if err != nil {
		t.Fatal(err)
	}
	mon := monitor()
	res, err := Run(Config{
		Track: route, Controller: "lqr-mpc", Seed: 2, Duration: 70,
		Campaign: attacks.Campaign{GNSS: seq}, Monitor: mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mon.Violations()) == 0 {
		t.Fatal("two-stage campaign raised nothing")
	}
	if math.IsNaN(res.MaxTrueCTE) {
		t.Fatal("NaN in result")
	}
}
