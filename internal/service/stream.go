package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"adassure/internal/core"
	"adassure/internal/stream"
	"adassure/internal/telemetry"
)

// StreamLimits bounds one /v1/stream session. The zero value applies the
// defaults; negative values disable the corresponding limit.
type StreamLimits struct {
	// MaxFrameHz caps the sustained frame ingest rate per session (token
	// bucket with one second of burst). Exceeding it is terminal: 429 if
	// nothing has streamed yet, otherwise a session-closed event with
	// code 429. Default 2000; negative = unlimited.
	MaxFrameHz float64
	// MaxSessionDuration caps a session's wall-clock lifetime. Exceeding
	// it closes the session with code 408. Default 5 minutes; negative =
	// unlimited.
	MaxSessionDuration time.Duration
	// ErrorBudget is the per-session malformed-line tolerance handed to
	// stream.Config (0 = stream default of 10, negative = none).
	ErrorBudget int
	// Heartbeat is the default heartbeat cadence in frames when the
	// request does not set one (0 = stream default off; the request query
	// can override). Default 200; negative = off.
	Heartbeat int
	// RingSize is the per-session flight-recorder capacity (0 = stream
	// default).
	RingSize int
}

func (l *StreamLimits) defaults() {
	if l.MaxFrameHz == 0 {
		l.MaxFrameHz = 2000
	}
	if l.MaxSessionDuration == 0 {
		l.MaxSessionDuration = 5 * time.Minute
	}
	if l.Heartbeat == 0 {
		l.Heartbeat = 200
	}
}

// tokenBucket is the per-session frame-rate limiter: capacity of one
// second's worth of frames, refilled continuously.
type tokenBucket struct {
	tokens, capacity, perSec float64
	last                     time.Time
}

func newTokenBucket(hz float64, now time.Time) *tokenBucket {
	cap := hz
	if cap < 1 {
		cap = 1
	}
	return &tokenBucket{tokens: cap, capacity: cap, perSec: hz, last: now}
}

func (b *tokenBucket) allow(now time.Time) bool {
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.perSec
		if b.tokens > b.capacity {
			b.tokens = b.capacity
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// eventWriter writes the NDJSON event stream with a lazily committed
// status: the 200 header goes out with the first event, so a session that
// dies before producing anything can still answer with a real HTTP error
// status and the uniform JSON envelope (the "structured 4xx close").
type eventWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	enc     *json.Encoder
	started bool
	failed  bool
	events  int64
}

func newEventWriter(w http.ResponseWriter) *eventWriter {
	ew := &eventWriter{w: w, enc: json.NewEncoder(w)}
	ew.flusher, _ = w.(http.Flusher)
	return ew
}

func (ew *eventWriter) writeEvent(e stream.Event) {
	if ew.failed {
		return
	}
	if !ew.started {
		ew.started = true
		ew.w.Header().Set("Content-Type", "application/x-ndjson")
		ew.w.WriteHeader(http.StatusOK)
	}
	if err := ew.enc.Encode(&e); err != nil {
		ew.failed = true
		return
	}
	ew.events++
	if ew.flusher != nil {
		ew.flusher.Flush()
	}
}

// streamParams are the per-session knobs a client passes in the query
// string of POST /v1/stream.
type streamParams struct {
	assertions     []string
	thresholdScale float64
	heartbeat      int
}

func parseStreamParams(r *http.Request, limits StreamLimits) (streamParams, error) {
	p := streamParams{heartbeat: limits.Heartbeat}
	q := r.URL.Query()
	if raw := q.Get("assertions"); raw != "" {
		for _, id := range strings.Split(raw, ",") {
			id = strings.TrimSpace(id)
			if id != "" {
				p.assertions = append(p.assertions, id)
			}
		}
	}
	if raw := q.Get("threshold_scale"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v <= 0 {
			return p, fmt.Errorf("threshold_scale must be a positive number, got %q", raw)
		}
		p.thresholdScale = v
	}
	if raw := q.Get("heartbeat"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			return p, fmt.Errorf("heartbeat must be a non-negative frame count, got %q", raw)
		}
		p.heartbeat = v
	}
	return p, nil
}

// handleStream is the streaming monitoring endpoint: chunked NDJSON
// frames in, NDJSON events out, over one full-duplex HTTP exchange. The
// session enforces the configured limits — frame rate, wall-clock
// duration and malformed-line budget — and always ends with either a
// session-closed event on the open stream or, when nothing has streamed
// yet, a structured HTTP error.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	// Streams are never cached or coalesced; say so the same way /v1/run
	// reports its disposition.
	w.Header().Set(CacheHeader, "bypass")
	if s.closed.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorBody("service: shutting down"))
		return
	}
	s.streamWG.Add(1)
	defer s.streamWG.Done()
	s.streamSessions.Inc()

	sp := telemetry.SpanFrom(r.Context())
	limits := s.cfg.Stream
	params, err := parseStreamParams(r, limits)
	if err != nil {
		s.badReqs.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody("invalid stream request: "+err.Error()))
		return
	}
	if sp.Enabled() {
		sp.SetAttr("assertions", strings.Join(params.assertions, ","))
		sp.SetInt("heartbeat", int64(params.heartbeat))
	}
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "stream session open",
		slog.String("trace_id", sp.TraceID().String()),
		slog.String("span_id", sp.SpanID().String()))

	ew := newEventWriter(w)
	suppress := false
	sess, err := stream.New(stream.Config{
		Catalog: core.CatalogConfig{
			ThresholdScale:     params.thresholdScale,
			IncludeGroundTruth: true,
		},
		Assertions:  params.assertions,
		RingSize:    limits.RingSize,
		Heartbeat:   max(params.heartbeat, 0),
		ErrorBudget: limits.ErrorBudget,
		Obs:         s.reg,
		Sink: func(e stream.Event) {
			if !suppress {
				ew.writeEvent(e)
			}
		},
	})
	if err != nil {
		s.badReqs.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody("invalid stream request: "+err.Error()))
		return
	}

	// HTTP/1.1 servers normally drain the request body before replying;
	// events must interleave with ingest, so switch to full duplex and
	// drop any server-wide write deadline for the session's lifetime.
	// Both calls are best-effort (recorders and HTTP/2 differ).
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	_ = rc.SetWriteDeadline(time.Time{})

	// closeLog stamps the session outcome on the request span and emits
	// the paired session-close slog record.
	closeLog := func(reason string, st stream.Stats) {
		if sp.Enabled() {
			sp.SetAttr("close_reason", reason)
			sp.SetInt("frames", st.Frames)
			sp.SetInt("events", ew.events)
			sp.SetInt("violations", st.Violations)
		}
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "stream session closed",
			slog.String("trace_id", sp.TraceID().String()),
			slog.String("span_id", sp.SpanID().String()),
			slog.String("reason", reason),
			slog.Int64("frames", st.Frames),
			slog.Int64("events", ew.events),
			slog.Int64("violations", st.Violations))
	}

	// finish ends the session exactly once. With events already on the
	// wire the close arrives as the final NDJSON event (carrying the
	// status code for terminal limit breaches); before any event, an
	// error close degrades to a plain HTTP error response instead.
	finish := func(reason string, code int, msg string) {
		if code >= 400 && !ew.started {
			suppress = true
			closeLog(reason, sess.CloseWith(reason, code))
			s.badReqs.Inc()
			writeJSON(w, code, errorBody(msg))
			return
		}
		closeLog(reason, sess.CloseWith(reason, code))
	}

	// The reader goroutine owns r.Body; lines flow through a channel so
	// the handler can multiplex input with deadlines and drain. The done
	// channel guarantees the goroutine exits with the handler (no leak);
	// the server closes r.Body afterwards, unblocking any pending Read.
	lines := make(chan []byte)
	readErr := make(chan error, 1)
	done := make(chan struct{})
	defer close(done)
	go func() {
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 64*1024), stream.MaxLineBytes)
		for sc.Scan() {
			line := append([]byte(nil), sc.Bytes()...)
			select {
			case lines <- line:
			case <-done:
				return
			}
		}
		select {
		case readErr <- sc.Err():
		case <-done:
		}
		close(lines)
	}()

	var bucket *tokenBucket
	if limits.MaxFrameHz > 0 {
		bucket = newTokenBucket(limits.MaxFrameHz, time.Now())
	}
	var deadline <-chan time.Time
	if limits.MaxSessionDuration > 0 {
		tmr := time.NewTimer(limits.MaxSessionDuration)
		defer tmr.Stop()
		deadline = tmr.C
	}

	for {
		select {
		case line, ok := <-lines:
			if !ok {
				if err := <-readErr; err != nil {
					finish(stream.ReasonClient, http.StatusBadRequest, "read frames: "+err.Error())
					return
				}
				finish(stream.ReasonEOF, 0, "")
				return
			}
			if bucket != nil && len(bytes.TrimSpace(line)) != 0 && !bucket.allow(time.Now()) {
				s.shedded.Inc()
				finish("rate-limit", http.StatusTooManyRequests,
					fmt.Sprintf("frame rate exceeds %g Hz session limit", limits.MaxFrameHz))
				return
			}
			if err := sess.IngestLine(line); stream.Terminal(err) {
				finish(stream.ReasonBudget, http.StatusBadRequest, err.Error())
				return
			}
		case <-deadline:
			finish(stream.ReasonDuration, http.StatusRequestTimeout,
				fmt.Sprintf("session exceeded %s duration limit", limits.MaxSessionDuration))
			return
		case <-r.Context().Done():
			// Client went away mid-session; nothing left to write to.
			suppress = true
			closeLog(stream.ReasonClient, sess.CloseWith(stream.ReasonClient, 0))
			return
		case <-s.streamCtx.Done():
			// Graceful drain: the close event is delivered on the open
			// stream (or as a structured 503 if nothing streamed yet).
			finish(stream.ReasonDrain, http.StatusServiceUnavailable, "service: shutting down")
			return
		}
	}
}
