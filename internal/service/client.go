package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"adassure/internal/obs"
)

// Client is the typed Go client of the scenario-execution service.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when non-nil.
	HTTPClient *http.Client
}

// NewClient builds a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// QueueFullError is the typed form of a 429 backpressure answer.
type QueueFullError struct {
	// RetryAfter is the server's hint before retrying.
	RetryAfter time.Duration
}

// Error implements error.
func (e *QueueFullError) Error() string {
	return fmt.Sprintf("service: queue full, retry after %s", e.RetryAfter)
}

// CallInfo reports transport-level facts about one Run call.
type CallInfo struct {
	// Cache is the X-Adassure-Cache disposition: "hit", "miss" or
	// "coalesced".
	Cache string
	// Status is the HTTP status code.
	Status int
	// Body is the raw response body — byte-identical across cache hits
	// and fresh runs of the same request.
	Body []byte
	// TraceID is this call's own trace ID from the X-Adassure-Trace
	// header (empty when the server traces nothing). The body's trace_id
	// can differ: it names the run that produced the bytes.
	TraceID string
}

// Run executes (or fetches from cache) one scenario on the server.
func (c *Client) Run(ctx context.Context, req Request) (*Response, *CallInfo, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, nil, fmt.Errorf("service: marshal request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/run", bytes.NewReader(payload))
	if err != nil {
		return nil, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, nil, err
	}
	defer hres.Body.Close()
	body, err := io.ReadAll(hres.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("service: read response: %w", err)
	}
	info := &CallInfo{
		Cache:   hres.Header.Get(CacheHeader),
		Status:  hres.StatusCode,
		Body:    body,
		TraceID: hres.Header.Get(TraceHeader),
	}
	if hres.StatusCode == http.StatusTooManyRequests {
		retry := time.Second
		if secs, err := strconv.Atoi(hres.Header.Get("Retry-After")); err == nil && secs > 0 {
			retry = time.Duration(secs) * time.Second
		}
		return nil, info, &QueueFullError{RetryAfter: retry}
	}
	if hres.StatusCode != http.StatusOK {
		return nil, info, fmt.Errorf("service: %s: %s", hres.Status, strings.TrimSpace(string(body)))
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, info, fmt.Errorf("service: decode response: %w", err)
	}
	return &resp, info, nil
}

// Metrics fetches the server's JSON metrics snapshot (/metrics.json).
func (c *Client) Metrics(ctx context.Context) (obs.Snapshot, error) {
	body, err := c.getJSON(ctx, "/metrics.json")
	if err != nil {
		return obs.Snapshot{}, err
	}
	return obs.ReadSnapshot(bytes.NewReader(body))
}

// MetricsText fetches the raw Prometheus exposition from /metrics.
func (c *Client) MetricsText(ctx context.Context) ([]byte, error) {
	return c.getJSON(ctx, "/metrics")
}

// Healthz checks liveness; it fails on any non-200 answer.
func (c *Client) Healthz(ctx context.Context) error {
	_, err := c.getJSON(ctx, "/healthz")
	return err
}

// Readyz probes readiness: ready==false with a nil error means the
// server answered 503 deliberately (draining or saturated); status is
// the reported state string either way.
func (c *Client) Readyz(ctx context.Context) (ready bool, status string, err error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/readyz", nil)
	if err != nil {
		return false, "", err
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return false, "", err
	}
	defer hres.Body.Close()
	body, err := io.ReadAll(hres.Body)
	if err != nil {
		return false, "", err
	}
	var doc struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return false, "", fmt.Errorf("service: decode readyz: %w", err)
	}
	switch hres.StatusCode {
	case http.StatusOK:
		return true, doc.Status, nil
	case http.StatusServiceUnavailable:
		return false, doc.Status, nil
	default:
		return false, doc.Status, fmt.Errorf("service: GET /readyz: %s", hres.Status)
	}
}

// Trace fetches one trace's span export from /debug/traces/{id}.
func (c *Client) Trace(ctx context.Context, id string) ([]byte, error) {
	return c.getJSON(ctx, "/debug/traces/"+id)
}

func (c *Client) getJSON(ctx context.Context, path string) ([]byte, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	body, err := io.ReadAll(hres.Body)
	if err != nil {
		return nil, err
	}
	if hres.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("service: GET %s: %s: %s", path, hres.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}
