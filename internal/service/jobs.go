package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"adassure/internal/jobs"
	"adassure/internal/telemetry"
)

// JobStateHeader reports a job's lifecycle state on /v1/jobs/{id}/result
// responses, so a poller can tell a failed job's error document from a
// done job's evidence without a second request.
const JobStateHeader = "X-Adassure-Job-State"

// JobsLimits tunes the async job tier of one server.
type JobsLimits struct {
	// Workers is the dispatcher count (default 2).
	Workers int
	// QueueDepth bounds admitted-but-undispatched jobs (default 8×Workers).
	QueueDepth int
	// Retention bounds finished jobs kept for polling (default 256).
	Retention int
	// Disable turns the /v1/jobs endpoints off entirely.
	Disable bool
}

// jobPayload is what the service stashes in a job: the canonical request,
// its content address, and the submitting request's root span (safe to
// StartChild from after the submit response was written — span identity
// fields are immutable).
type jobPayload struct {
	req  Request
	key  string
	root *telemetry.Span
}

// errBackpressure marks an execution attempt shed by the local pool (or a
// remote worker) — the one error class the job tier retries.
var errBackpressure = errors.New("backpressure")

// jobRetryable classifies job-execution errors for the retry loop.
func jobRetryable(err error) bool {
	return errors.Is(err, errBackpressure)
}

// execJob is the jobs.Manager Exec hook of the standalone service: run
// the job's canonical request through the shared cache → store →
// single-flight → pool core, under a child span of the submitting
// request's trace.
func (s *Server) execJob(ctx context.Context, j *jobs.Job) (jobs.Result, error) {
	p, ok := j.Payload.(jobPayload)
	if !ok {
		return jobs.Result{}, fmt.Errorf("job %s: unexpected payload %T", j.ID, j.Payload)
	}
	sp := p.root.StartChild("job.execute")
	sp.SetAttr("job_id", j.ID)
	defer sp.End()

	body, status, disposition, worker, err := s.runKeyed(ctx, sp, p.req, p.key)
	if err != nil {
		// Only ctx expiry lands here: shutdown or DELETE cancellation.
		sp.SetAttr("error", err.Error())
		return jobs.Result{}, err
	}
	res := jobs.Result{Body: body, Status: status, Cache: disposition, Worker: worker}
	switch status {
	case http.StatusOK:
		return res, nil
	case http.StatusTooManyRequests, http.StatusBadGateway:
		// Backpressure (local queue full) or a fleet-wide routing failure:
		// both are transient, so the retry budget applies. The body (the
		// error envelope) is kept so an exhausted budget still yields a
		// useful failure document.
		return res, fmt.Errorf("%w: status %d", errBackpressure, status)
	default:
		return res, fmt.Errorf("execution failed: status %d", status)
	}
}

// handleJobSubmit admits one scenario asynchronously: decode and
// canonicalize exactly like /v1/run, then enqueue. 202 + job snapshot on
// success, 429 + Retry-After when the job queue is full.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	sp := telemetry.SpanFrom(r.Context())

	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.badReqs.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody("decode request: "+err.Error()))
		return
	}
	canon, err := req.Canonicalize(s.cfg.MaxDuration)
	if err != nil {
		s.badReqs.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody("invalid request: "+err.Error()))
		return
	}
	key := canon.Key()

	j, err := s.jobs.Submit(jobPayload{req: canon, key: key, root: sp}, key, sp.TraceID().String())
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			s.shedded.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
			writeJSON(w, http.StatusTooManyRequests, errorBody(err.Error()))
		default: // ErrClosed
			writeJSON(w, http.StatusServiceUnavailable, errorBody(err.Error()))
		}
		return
	}
	sp.SetAttr("job_id", j.ID)
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	b, _ := json.Marshal(j.Snapshot())
	writeJSON(w, http.StatusAccepted, b)
}

// jobByID resolves {id} or answers 404 with the uniform error envelope.
func (s *Server) jobByID(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.Get(id)
	if !ok {
		s.badReqs.Inc()
		writeJSON(w, http.StatusNotFound, errorBody("unknown job "+id))
		return nil, false
	}
	return j, true
}

// handleJobGet is the poll endpoint: the job's lifecycle snapshot.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	j, ok := s.jobByID(w, r)
	if !ok {
		return
	}
	b, _ := json.Marshal(j.Snapshot())
	writeJSON(w, http.StatusOK, b)
}

// handleJobResult serves a finished job's bytes with the status and cache
// disposition of the execution — byte-identical to what POST /v1/run
// would have returned for the same request. 409 while the job is still
// queued or running, 410 for a cancelled job that produced nothing.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	j, ok := s.jobByID(w, r)
	if !ok {
		return
	}
	res, done := j.ResultIfDone()
	if !done {
		snap := j.Snapshot()
		if snap.State == jobs.StateCancelled {
			w.Header().Set(JobStateHeader, string(snap.State))
			writeJSON(w, http.StatusGone, errorBody("job "+j.ID+" was cancelled"))
			return
		}
		w.Header().Set(JobStateHeader, string(snap.State))
		writeJSON(w, http.StatusConflict, errorBody("job "+j.ID+" is "+string(snap.State)+"; poll until done"))
		return
	}
	w.Header().Set(JobStateHeader, string(j.State()))
	if res.Cache != "" {
		w.Header().Set(CacheHeader, res.Cache)
	}
	if res.Worker != "" {
		w.Header().Set("X-Adassure-Worker", res.Worker)
	}
	writeJSON(w, res.Status, res.Body)
}

// handleJobEvents streams a job's event log as NDJSON: recorded events
// replay immediately, then the stream follows live appends until the job
// reaches a terminal state, the client disconnects, or the server drains.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	j, ok := s.jobByID(w, r)
	if !ok {
		return
	}
	s.streamWG.Add(1)
	defer s.streamWG.Done()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	var seq int64
	for {
		events, follow := j.EventsSince(seq)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return // client gone
			}
			seq = e.Seq
		}
		if flusher != nil {
			flusher.Flush()
		}
		if follow == nil {
			return // terminal: the log is complete
		}
		select {
		case <-follow:
		case <-r.Context().Done():
			return
		case <-s.streamCtx.Done():
			return
		}
	}
}

// handleJobCancel requests cancellation. The snapshot reports the state
// the job landed in; "applied" is false when the job was already
// terminal.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	id := r.PathValue("id")
	snap, applied, err := s.jobs.Cancel(id)
	if err != nil {
		s.badReqs.Inc()
		writeJSON(w, http.StatusNotFound, errorBody("unknown job "+id))
		return
	}
	b, _ := json.Marshal(struct {
		jobs.Snapshot
		Applied bool `json:"applied"`
	}{snap, applied})
	writeJSON(w, http.StatusOK, b)
}

// jobsWaitPoll is the client-side poll cadence for WaitJob.
const jobsWaitPoll = 25 * time.Millisecond
