package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"adassure/internal/mutate"
	"adassure/internal/search"
)

// smallSearch is the cheap /v1/search request of the tests: one channel on
// one short route with a tiny descent budget.
func smallSearch() SearchRequest {
	return SearchRequest{
		Tracks:   []string{"urban-loop"},
		Channels: []search.Spec{{Op: mutate.OpGNSSQuantize, Min: 0.05, Max: 2.5}},
		Budget:   4,
		Duration: 15,
	}
}

// postSearch posts a body (raw JSON) to /v1/search and returns the
// response.
func postSearch(t *testing.T, c *Client, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := c.httpClient().Post(c.BaseURL+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestSearchEndToEnd runs a small campaign through the service: the
// response is an evasion-frontier report with one point per track ×
// channel, and repeating the request is a cache hit with byte-identical
// body and no re-simulation.
func TestSearchEndToEnd(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2})
	reqBody, err := json.Marshal(smallSearch())
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postSearch(t, c, reqBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(CacheHeader); got != "miss" {
		t.Fatalf("cache disposition %q, want miss", got)
	}
	rep, err := search.ReadJSON(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("response is not a frontier report: %v", err)
	}
	if len(rep.Frontier) != 1 {
		t.Fatalf("frontier has %d points, want 1 (one track × one channel): %+v", len(rep.Frontier), rep.Frontier)
	}
	if p := rep.Frontier[0]; p.Evals == 0 || p.Evals > 4 {
		t.Fatalf("frontier point spent %d evals, want within (0, 4]", p.Evals)
	}
	runs := s.Registry().Counter("sim.runs").Value()
	// 1 baseline + TotalEvals probes, exactly once.
	if want := int64(1 + rep.TotalEvals); runs != want {
		t.Fatalf("sim.runs = %d, want %d (baseline + probes)", runs, want)
	}

	resp2, body2 := postSearch(t, c, reqBody)
	if got := resp2.Header.Get(CacheHeader); got != "hit" {
		t.Fatalf("second call disposition %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("cached search body differs from fresh body")
	}
	if got := s.Registry().Counter("sim.runs").Value(); got != runs {
		t.Fatalf("sim.runs = %d after cache hit, want %d (cache must not re-run the search)", got, runs)
	}
}

// TestSearchCanonicalizationSharesCacheEntry: a request spelled with
// explicit defaults hits the cache entry of the equivalent bare request.
func TestSearchCanonicalizationSharesCacheEntry(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1})
	bare, err := json.Marshal(smallSearch())
	if err != nil {
		t.Fatal(err)
	}
	if resp, body := postSearch(t, c, bare); resp.StatusCode != http.StatusOK {
		t.Fatalf("bare request: status %d, body %s", resp.StatusCode, body)
	}
	runs := s.Registry().Counter("sim.runs").Value()
	explicit := []byte(`{"controller": "pure-pursuit", "tracks": ["urban-loop"], "mode": "descent",
		"channels": [{"op": "sense-gnss-quantize", "min": 0.05, "max": 2.5}],
		"seed": 1, "budget": 4, "duration": 15}`)
	resp, _ := postSearch(t, c, explicit)
	if got := resp.Header.Get(CacheHeader); got != "hit" {
		t.Fatalf("explicit spelling missed the cache (disposition %q)", got)
	}
	if got := s.Registry().Counter("sim.runs").Value(); got != runs {
		t.Fatalf("sim.runs = %d, want %d", got, runs)
	}
}

// TestSearchBadRequests: malformed documents and invalid search parameters
// are 400s with the JSON error envelope, before any simulation runs.
func TestSearchBadRequests(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1})

	cases := []struct {
		name string
		body string
		want string // substring of the error message
	}{
		{"malformed JSON", `{"channels": [`, "decode request"},
		{"unknown field", `{"channelz": []}`, "decode request"},
		{"unknown channel", `{"channels": [{"op": "ctrl-teleport"}]}`, "unsearchable channel"},
		{"parameterless channel", `{"channels": [{"op": "identity"}]}`, "unsearchable channel"},
		{"inverted range", `{"channels": [{"op": "sense-gnss-quantize", "min": 2, "max": 1}]}`, "inverted magnitude range"},
		{"out-of-range magnitude", `{"channels": [{"op": "sense-gnss-quantize", "min": 1, "max": 5000}]}`, "outside operator bounds"},
		{"inverted window", `{"channels": [{"op": "sense-gnss-latency", "window": {"start": 30, "end": 10}}]}`, "inverted window"},
		{"window on controller", `{"channels": [{"op": "ctrl-frozen-input", "window": {"start": 1, "end": 2}}]}`, "window unsupported"},
		{"duplicate channels", `{"channels": [{"op": "sense-gnss-latency"}, {"op": "sense-gnss-latency"}]}`, "duplicate"},
		{"unknown track", `{"tracks": ["moebius-strip"]}`, "unknown track"},
		{"unknown controller", `{"controller": "yolo"}`, "unknown controller"},
		{"unknown mode", `{"mode": "anneal"}`, "unknown mode"},
		{"negative duration", `{"duration": -3}`, "duration"},
		{"over duration cap", `{"duration": 1e9}`, "exceeds the server cap"},
		{"negative budget", `{"budget": -1}`, "budget"},
		{"over eval cap", `{"budget": 32}`, "exceeds the cap"},
	}
	for _, tc := range cases {
		resp, body := postSearch(t, c, []byte(tc.body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (body %s)", tc.name, resp.StatusCode, body)
		}
		if msg := errorEnvelope(t, body); !strings.Contains(msg, tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, msg, tc.want)
		}
	}
	if got := s.Registry().Counter("sim.runs").Value(); got != 0 {
		t.Fatalf("invalid search requests triggered %d simulations", got)
	}
}

// TestSearchQueueFull429: with the worker wedged and the queue full, a
// search request is shed with 429 + Retry-After instead of blocking —
// the same admission policy as /v1/run and /v1/mutate.
func TestSearchQueueFull429(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	ctx := context.Background()

	running := make(chan struct{})
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	if err := s.pool.TrySubmit(ctx, func(context.Context) { close(running); <-release }, nil); err != nil {
		t.Fatalf("wedge: %v", err)
	}
	<-running
	// Fill the single queue slot with a pending scenario request.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := c.Run(ctx, Request{Duration: 5}); err != nil {
			t.Errorf("queued request: %v", err)
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.pool.QueueLen() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	reqBody, err := json.Marshal(smallSearch())
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postSearch(t, c, reqBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}
	errorEnvelope(t, body)
	if got := s.Registry().Counter("service.queue_full").Value(); got != 1 {
		t.Fatalf("queue_full counter = %d, want 1", got)
	}

	close(release)
	wg.Wait()
}

// TestSearchTimeout: a search exceeding the per-request budget is
// cancelled inside the running probes and answered with 504, uncached.
func TestSearchTimeout(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, Timeout: 30 * time.Millisecond, MaxDuration: 1000})
	body, err := json.Marshal(SearchRequest{
		Tracks:   []string{"urban-loop"},
		Channels: []search.Spec{{Op: mutate.OpGNSSQuantize}},
		Budget:   8,
		Duration: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, out := postSearch(t, c, body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", resp.StatusCode, out)
	}
	errorEnvelope(t, out)
	if s.cache.len() != 0 {
		t.Fatal("timed-out search was cached")
	}
}
