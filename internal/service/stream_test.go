package service

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"adassure"
	"adassure/internal/core"
	"adassure/internal/stream"
)

var updateStream = flag.Bool("update-stream", false, "rewrite the golden stream transcript under testdata from the current output")

// replayScenario is the T4-style case of the streaming tests: a GNSS
// replay on the urban loop, deterministic at seed 1.
func replayScenario() adassure.Scenario {
	return adassure.Scenario{
		Track:       adassure.TrackUrbanLoop,
		Controller:  adassure.ControllerPurePursuit,
		Attack:      adassure.AttackReplay,
		AttackStart: 20, AttackEnd: 50,
		Seed: 1, Duration: 40, RecordFrames: true,
	}
}

// recordNDJSON runs the scenario once and renders its frames in the
// stream wire format.
func recordNDJSON(t testing.TB, scn adassure.Scenario) []byte {
	t.Helper()
	res, err := scn.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Recording == nil || len(res.Recording.Frames) == 0 {
		t.Fatal("scenario recorded no frames")
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range res.Recording.Frames {
		if err := enc.Encode(&res.Recording.Frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// cruiseLine renders frame k of a clean synthetic cruise (no assertion
// ever fires) as one NDJSON line.
func cruiseLine(t testing.TB, k int64) []byte {
	t.Helper()
	const dt, v = 0.05, 5.0
	ts := float64(k) * dt
	x := v * ts
	f := core.Frame{
		T: ts, Dt: dt,
		EstX: x, EstSpeed: v, EstPosStdDev: 0.3,
		GNSSX: x, GNSSSpeed: v, GNSSAge: 0.01, GNSSValid: true,
		IMUAge: 0.01, OdomSpeed: v, OdomAge: 0.01,
		RefS: x, TargetSpeed: v, Progress: x,
		NIS: 1, NISFresh: true,
		TrueX: x, TrueSpeed: v,
	}
	b, err := json.Marshal(&f)
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// postStream drives the handler directly (no network) and returns the
// response recorder — the deterministic path the golden transcript and
// the limit tests use.
func postStream(t testing.TB, s *Server, query string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/stream"+query, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// decodeEvents parses an NDJSON event transcript.
func decodeEvents(t testing.TB, body []byte) []stream.Event {
	t.Helper()
	var out []stream.Event
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e stream.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		out = append(out, e)
	}
	return out
}

// TestStreamEndToEndMatchesBatch is the serving-layer acceptance test:
// stream a recorded attack run through POST /v1/stream with the typed
// client and require the event stream to (a) raise the same violations
// the batch endpoint reports for the identical scenario and (b) close
// with exactly the batch hypothesis ranking — the equivalence contract
// surviving the full HTTP round trip.
func TestStreamEndToEndMatchesBatch(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	frames := recordNDJSON(t, replayScenario())
	res, err := c.Stream(ctx, bytes.NewReader(frames), StreamOptions{Heartbeat: 0})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if res.Status != 200 {
		t.Fatalf("status = %d", res.Status)
	}
	closed, ok := res.Closed()
	if !ok {
		t.Fatal("no session-closed event")
	}
	if closed.Reason != stream.ReasonEOF || closed.Code != 0 {
		t.Fatalf("close = %q code %d, want eof/0", closed.Reason, closed.Code)
	}

	// The batch answer for the identical scenario.
	resp, _, err := c.Run(ctx, Request{
		Track: "urban-loop", Controller: "pure-pursuit", Attack: "gnss-replay",
		AttackStart: 20, AttackEnd: 50, Seed: 1, Duration: 40,
	})
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	if len(resp.Violations) == 0 {
		t.Fatal("batch run raised no violations — attack case broken")
	}

	var opened []stream.WireViolation
	for _, e := range res.Events {
		if e.Kind == stream.EventViolationOpened {
			opened = append(opened, *e.Violation)
		}
	}
	if len(opened) != len(resp.Violations) {
		t.Fatalf("streamed %d violations, batch %d", len(opened), len(resp.Violations))
	}
	for i := range opened {
		if opened[i].AssertionID != resp.Violations[i].AssertionID || opened[i].T != resp.Violations[i].T {
			t.Fatalf("violation %d: stream %s@%g, batch %s@%g", i,
				opened[i].AssertionID, opened[i].T, resp.Violations[i].AssertionID, resp.Violations[i].T)
		}
	}
	gotHyps, err := json.Marshal(closed.Hypotheses)
	if err != nil {
		t.Fatal(err)
	}
	wantHyps, err := json.Marshal(resp.Hypotheses)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotHyps, wantHyps) {
		t.Fatalf("final hypotheses diverged from batch\n got: %s\nwant: %s", gotHyps, wantHyps)
	}
	if closed.Stats == nil || closed.Stats.Rejected != 0 {
		t.Fatalf("close stats = %+v", closed.Stats)
	}
}

// TestStreamGoldenTranscript locks the full NDJSON event transcript of a
// replay-attack session to a committed snapshot: any drift in the event
// wire format, ordering, sequencing or diagnosis content shows up as a
// byte diff in review. Regenerate after an intentional change with:
//
//	go test ./internal/service -run TestStreamGoldenTranscript -update-stream
func TestStreamGoldenTranscript(t *testing.T) {
	s := New(Config{Workers: 1})
	t.Cleanup(func() { s.Close(context.Background()) })

	frames := recordNDJSON(t, replayScenario())
	rec := postStream(t, s, "?heartbeat=200", frames)
	if rec.Code != 200 {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.Bytes())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type = %q", ct)
	}
	got := rec.Body.Bytes()

	path := filepath.Join("testdata", "stream-transcript-replay.ndjson")
	if *updateStream {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-stream)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stream transcript drifted from golden (len %d vs %d); regenerate with -update-stream if intentional",
			len(got), len(want))
	}
	// Sanity on the locked transcript: it must actually carry the attack.
	events := decodeEvents(t, got)
	var openedAny, closedOK bool
	for _, e := range events {
		openedAny = openedAny || e.Kind == stream.EventViolationOpened
		closedOK = closedOK || e.Kind == stream.EventSessionClosed
	}
	if !openedAny || !closedOK {
		t.Fatal("golden transcript missing violation or close events")
	}
}

// TestStreamRateLimitRejects pins the per-session frame-rate limit: a
// client blasting frames far above the configured ceiling is cut off
// with a real 429 when nothing has streamed yet.
func TestStreamRateLimitRejects(t *testing.T) {
	s := New(Config{Workers: 1, Stream: StreamLimits{MaxFrameHz: 5}})
	t.Cleanup(func() { s.Close(context.Background()) })

	var body []byte
	for k := int64(0); k < 50; k++ {
		body = append(body, cruiseLine(t, k)...)
	}
	rec := postStream(t, s, "?heartbeat=0", body)
	if rec.Code != 429 {
		t.Fatalf("status = %d, want 429; body %s", rec.Code, rec.Body.Bytes())
	}
	var env map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env["error"] == "" {
		t.Fatalf("429 body is not the JSON error envelope: %s", rec.Body.Bytes())
	}
}

// TestStreamErrorBudget pins both shapes of the malformed-line budget
// breach: a structured 400 when the stream dies before any event, and a
// session-closed event with code 400 once events are already flowing.
func TestStreamErrorBudget(t *testing.T) {
	t.Run("structured-4xx", func(t *testing.T) {
		s := New(Config{Workers: 1, Stream: StreamLimits{ErrorBudget: -1}})
		t.Cleanup(func() { s.Close(context.Background()) })
		rec := postStream(t, s, "?heartbeat=0", []byte("garbage\n"))
		if rec.Code != 400 {
			t.Fatalf("status = %d, want 400; body %s", rec.Code, rec.Body.Bytes())
		}
		var env map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env["error"] == "" {
			t.Fatalf("400 body is not the JSON error envelope: %s", rec.Body.Bytes())
		}
	})
	t.Run("mid-stream-close-event", func(t *testing.T) {
		s := New(Config{Workers: 1, Stream: StreamLimits{ErrorBudget: 2}})
		t.Cleanup(func() { s.Close(context.Background()) })
		body := append([]byte{}, cruiseLine(t, 0)...)
		body = append(body, []byte("bad one\nbad two\nbad three\n")...)
		body = append(body, cruiseLine(t, 1)...) // never reached
		rec := postStream(t, s, "?heartbeat=1", body)
		if rec.Code != 200 {
			t.Fatalf("status = %d, want 200 (events were already flowing)", rec.Code)
		}
		events := decodeEvents(t, rec.Body.Bytes())
		last := events[len(events)-1]
		if last.Kind != stream.EventSessionClosed || last.Reason != stream.ReasonBudget || last.Code != 400 {
			t.Fatalf("last event = %+v, want session-closed error-budget code 400", last)
		}
		var rejects int
		for _, e := range events {
			if e.Kind == stream.EventFrameRejected {
				rejects++
			}
		}
		if rejects != 2 {
			t.Fatalf("frame-rejected events = %d, want 2 (absorbed budget)", rejects)
		}
		if last.Stats == nil || last.Stats.Frames != 1 || last.Stats.Rejected != 3 {
			t.Fatalf("close stats = %+v, want 1 frame / 3 rejected", last.Stats)
		}
	})
}

// TestStreamDurationLimit pins the wall-clock session cap: a session
// that overstays is closed with a duration-limit event carrying code 408
// on the open stream.
func TestStreamDurationLimit(t *testing.T) {
	_, c := newTestServer(t, Config{
		Workers: 1,
		Stream:  StreamLimits{MaxSessionDuration: 150 * time.Millisecond},
	})

	pr, pw := io.Pipe()
	defer pw.Close()
	go func() {
		pw.Write(cruiseLine(t, 0))
		// Keep the session open past the limit; the server must cut it.
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.Stream(ctx, pr, StreamOptions{Heartbeat: 1})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	closed, ok := res.Closed()
	if !ok {
		t.Fatalf("no session-closed event; got %d events", len(res.Events))
	}
	if closed.Reason != stream.ReasonDuration || closed.Code != 408 {
		t.Fatalf("close = %q code %d, want duration-limit/408", closed.Reason, closed.Code)
	}
	if res.Events[0].Kind != stream.EventHeartbeat {
		t.Fatalf("first event = %+v, want the pre-limit heartbeat", res.Events[0])
	}
}

// TestStreamDrainMidSession pins graceful shutdown: Server.Close cuts a
// live session, the client still receives the final session-closed event
// (reason drain, code 503), Close returns promptly, and no goroutines
// leak once everything is torn down.
func TestStreamDrainMidSession(t *testing.T) {
	base := runtime.NumGoroutine()

	s := New(Config{Workers: 1})
	hs := httptest.NewServer(s.Handler())
	c := NewClient(hs.URL)

	pr, pw := io.Pipe()
	heartbeat := make(chan struct{}, 1)
	type outcome struct {
		res *StreamResult
		err error
	}
	got := make(chan outcome, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		res, err := c.Stream(ctx, pr, StreamOptions{
			Heartbeat: 1,
			OnEvent: func(e stream.Event) {
				if e.Kind == stream.EventHeartbeat {
					select {
					case heartbeat <- struct{}{}:
					default:
					}
				}
			},
		})
		got <- outcome{res, err}
	}()

	if _, err := pw.Write(cruiseLine(t, 0)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-heartbeat:
	case <-time.After(5 * time.Second):
		t.Fatal("session never produced its first heartbeat")
	}

	closeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(closeCtx); err != nil {
		t.Fatalf("drain close: %v", err)
	}

	var out outcome
	select {
	case out = <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("client stream did not finish after drain")
	}
	if out.err != nil {
		t.Fatalf("stream after drain: %v", out.err)
	}
	closed, ok := out.res.Closed()
	if !ok {
		t.Fatal("drained session delivered no session-closed event")
	}
	if closed.Reason != stream.ReasonDrain || closed.Code != 503 {
		t.Fatalf("close = %q code %d, want drain/503", closed.Reason, closed.Code)
	}

	// A session arriving after drain is refused outright.
	if res, err := c.Stream(context.Background(), bytes.NewReader(cruiseLine(t, 0)), StreamOptions{Heartbeat: 0}); err == nil || res.Status != 503 {
		t.Fatalf("post-drain session: status %d err %v, want 503", res.Status, err)
	}

	pw.Close()
	hs.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after drain: %d > %d base\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStreamBadParams pins query-string validation.
func TestStreamBadParams(t *testing.T) {
	s := New(Config{Workers: 1})
	t.Cleanup(func() { s.Close(context.Background()) })
	for _, q := range []string{
		"?threshold_scale=-1",
		"?threshold_scale=abc",
		"?heartbeat=-2",
		"?assertions=A1,NOPE",
	} {
		rec := postStream(t, s, q, nil)
		if rec.Code != 400 {
			t.Errorf("%s: status = %d, want 400", q, rec.Code)
		}
	}
}

// TestStreamLoad drives the streaming load loop against a live server.
func TestStreamLoad(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	frames := recordNDJSON(t, replayScenario())
	rep, err := RunStreamLoad(context.Background(), c, frames, StreamLoadOptions{
		Sessions: 4, Concurrency: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 4 || rep.Errors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Frames == 0 || rep.Violations == 0 {
		t.Fatalf("report carried no frames/violations: %+v", rep)
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report rendering")
	}
}
