package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"adassure/internal/obs"
	"adassure/internal/telemetry"
)

// tracedConfig is the test server configuration with the trace store on.
func tracedConfig(workers int) Config {
	return Config{Workers: workers, Tracer: telemetry.New(telemetry.Config{})}
}

// postRunTraced POSTs one run request with an explicit traceparent header
// (the raw-HTTP path Client.Run does not expose) and returns the response
// status, headers and body.
func postRunTraced(t *testing.T, c *Client, req Request, traceparent string) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/run", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		hreq.Header.Set("traceparent", traceparent)
	}
	hres, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(hres.Body); err != nil {
		t.Fatal(err)
	}
	return hres, buf.Bytes()
}

// fetchTrace pulls one span export off the server and parses it.
func fetchTrace(t *testing.T, c *Client, id string) telemetry.TraceExport {
	t.Helper()
	raw, err := c.Trace(context.Background(), id)
	if err != nil {
		t.Fatalf("fetch trace %s: %v", id, err)
	}
	exp, err := telemetry.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("parse trace %s: %v", id, err)
	}
	return exp
}

// spanNames collects the set of span names in an export.
func spanNames(exp telemetry.TraceExport) map[string]telemetry.SpanExport {
	m := make(map[string]telemetry.SpanExport, len(exp.Spans))
	for _, sp := range exp.Spans {
		m[sp.Name] = sp
	}
	return m
}

// TestTraceEndToEndRun is the tentpole acceptance test: a request
// carrying a W3C traceparent keeps its trace ID through the full path,
// and the exported trace covers handler, cache, queue wait, execution
// and both simulation phases.
func TestTraceEndToEndRun(t *testing.T) {
	_, c := newTestServer(t, tracedConfig(2))
	const parent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

	hres, body := postRunTraced(t, c, Request{Attack: "gnss-drift-spoof", Duration: 30}, parent)
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", hres.StatusCode, body)
	}
	const wantTrace = "0af7651916cd43dd8448eb211c80319c"
	if got := hres.Header.Get(TraceHeader); got != wantTrace {
		t.Fatalf("%s = %q, want the propagated trace %q", TraceHeader, got, wantTrace)
	}
	if tp := hres.Header.Get("traceparent"); !strings.HasPrefix(tp, "00-"+wantTrace+"-") {
		t.Fatalf("response traceparent %q does not continue trace %s", tp, wantTrace)
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != wantTrace {
		t.Fatalf("body trace_id %q, want %q", resp.TraceID, wantTrace)
	}
	if len(resp.Bundles) > 0 && resp.Bundles[0].TraceID != wantTrace {
		t.Fatalf("bundle trace_id %q, want %q", resp.Bundles[0].TraceID, wantTrace)
	}

	exp := fetchTrace(t, c, wantTrace)
	names := spanNames(exp)
	for _, want := range []string{
		"http /v1/run", "cache.lookup", "queue.wait", "execute",
		"phase.sim+monitor", "phase.diagnosis",
	} {
		if _, ok := names[want]; !ok {
			t.Errorf("trace missing span %q (have %d spans)", want, len(exp.Spans))
		}
	}
	if httpSpan := names["http /v1/run"]; httpSpan.Attrs["status"] != "200" {
		t.Errorf("http span status attr = %q, want 200", httpSpan.Attrs["status"])
	}
	if lookup := names["cache.lookup"]; lookup.Attrs["disposition"] != "miss" {
		t.Errorf("cache.lookup disposition = %q, want miss", lookup.Attrs["disposition"])
	}
	if ex := names["execute"]; ex.Attrs["violations"] == "" || ex.Attrs["violations"] == "0" {
		t.Errorf("execute span violations attr = %q, want > 0 for a spoofed run", ex.Attrs["violations"])
	}
}

// TestCacheHitKeepsExecutingTrace: cached bytes stay byte-identical, so
// the body's trace_id keeps naming the run that produced them while the
// response header carries the second request's own trace — whose spans
// show a cache hit and no execution.
func TestCacheHitKeepsExecutingTrace(t *testing.T) {
	_, c := newTestServer(t, tracedConfig(2))
	ctx := context.Background()
	req := Request{Attack: "gnss-drift-spoof", Duration: 25}

	resp1, info1, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if info1.TraceID == "" || resp1.TraceID != info1.TraceID {
		t.Fatalf("first run: header trace %q, body trace %q — want equal and non-empty",
			info1.TraceID, resp1.TraceID)
	}

	resp2, info2, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Cache != "hit" {
		t.Fatalf("second run disposition %q, want hit", info2.Cache)
	}
	if !bytes.Equal(info1.Body, info2.Body) {
		t.Fatal("cache hit returned different bytes")
	}
	if info2.TraceID == info1.TraceID {
		t.Fatal("second request reused the first request's trace ID")
	}
	if resp2.TraceID != info1.TraceID {
		t.Fatalf("cached body trace_id %q, want the executing run's %q", resp2.TraceID, info1.TraceID)
	}

	names := spanNames(fetchTrace(t, c, info2.TraceID))
	if lookup, ok := names["cache.lookup"]; !ok || lookup.Attrs["disposition"] != "hit" {
		t.Fatalf("hit trace cache.lookup = %+v, want disposition hit", lookup)
	}
	if _, ok := names["execute"]; ok {
		t.Fatal("cache hit trace contains an execute span")
	}
}

// TestCoalescedFollowersLinkLeader: followers joining a single-flight
// call get their own trace, whose coalesced.wait span links to the
// leader's trace so the one real execution is reachable from every
// coalesced request.
func TestCoalescedFollowersLinkLeader(t *testing.T) {
	s, c := newTestServer(t, tracedConfig(1))
	s.cfg.QueueDepth = 4
	ctx := context.Background()

	release := make(chan struct{})
	if err := s.pool.TrySubmit(ctx, func(context.Context) { <-release }, nil); err != nil {
		t.Fatalf("wedge: %v", err)
	}

	const K = 5
	req := Request{Attack: "gnss-step-spoof", Duration: 20}
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.Run(ctx, req); err != nil {
				t.Errorf("run: %v", err)
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.coalesced.Value() < K-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers coalesced", s.coalesced.Value(), K-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	var leaders, linked int
	for _, id := range s.Tracer().TraceIDs() {
		exp, ok := s.Tracer().Export(id)
		if !ok {
			continue
		}
		names := spanNames(exp)
		if _, ok := names["execute"]; ok {
			leaders++
		}
		if wait, ok := names["coalesced.wait"]; ok {
			if len(wait.Links) == 0 {
				t.Errorf("trace %s coalesced.wait has no link to the leader", exp.TraceID)
				continue
			}
			linked++
			if wait.Attrs["executing_trace"] != wait.Links[0].TraceID {
				t.Errorf("executing_trace attr %q != link %q",
					wait.Attrs["executing_trace"], wait.Links[0].TraceID)
			}
		}
	}
	if leaders != 1 {
		t.Errorf("executing traces = %d, want exactly 1", leaders)
	}
	if linked != K-1 {
		t.Errorf("linked follower traces = %d, want %d", linked, K-1)
	}
}

// TestReadyzDrain: readiness reports ready with queue occupancy, flips to
// a 503 "draining" after BeginDrain, while liveness stays 200.
func TestReadyzDrain(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	ready, status, err := c.Readyz(ctx)
	if err != nil || !ready || status != "ready" {
		t.Fatalf("fresh server: ready=%v status=%q err=%v, want ready", ready, status, err)
	}

	s.BeginDrain()
	ready, status, err = c.Readyz(ctx)
	if err != nil || ready || status != "draining" {
		t.Fatalf("after BeginDrain: ready=%v status=%q err=%v, want 503 draining", ready, status, err)
	}
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("liveness must survive a drain: %v", err)
	}
	// Admission stays open during the drain: work still completes.
	if _, info, err := c.Run(ctx, Request{Duration: 20}); err != nil || info.Status != http.StatusOK {
		t.Fatalf("run during drain: status %v err %v", info, err)
	}

	body, err := c.getJSON(ctx, "/readyz")
	if err == nil {
		t.Fatalf("GET /readyz while draining returned 200: %s", body)
	}
}

// TestBuildinfoEndpoint: /debug/buildinfo reports the toolchain and
// module identity.
func TestBuildinfoEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	raw, err := c.getJSON(context.Background(), "/debug/buildinfo")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		GoVersion string `json:"go_version"`
		Path      string `json:"path"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.GoVersion == "" {
		t.Error("buildinfo missing go_version")
	}
}

// TestMetricsPromScrape: after one traced run, /metrics parses under the
// strict exposition reader, reports the simulation counter, carries a
// trace-ID exemplar on the request-latency histogram, and labels the
// per-route HTTP counter; /metrics.json keeps serving the JSON snapshot
// with matching values.
func TestMetricsPromScrape(t *testing.T) {
	_, c := newTestServer(t, tracedConfig(1))
	ctx := context.Background()

	_, info, err := c.Run(ctx, Request{Attack: "gnss-drift-spoof", Duration: 25})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := obs.ParseProm(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("strict exposition parse: %v", err)
	}
	if total, n := doc.Sum("sim_runs_total"); n == 0 || total != 1 {
		t.Errorf("sim_runs_total = %v over %d series, want 1", total, n)
	}
	if !doc.HasExemplar("service_request_ns") {
		t.Error("service_request_ns carries no trace_id exemplar")
	}
	var routeSeries bool
	if f := doc.Family("service_http_requests"); f != nil {
		for _, s := range f.Samples {
			if s.Labels["route"] == "/v1/run" && s.Labels["status"] == "200" && s.Value >= 1 {
				routeSeries = true
			}
		}
	}
	if !routeSeries {
		t.Error(`missing service_http_requests_total{route="/v1/run",status="200"} series`)
	}
	// The exemplar names a real, retrievable trace.
	if f := doc.Family("service_request_ns"); f != nil {
		for _, s := range f.Samples {
			if s.Exemplar != nil {
				if id := s.Exemplar.Labels["trace_id"]; id != info.TraceID {
					t.Errorf("exemplar trace_id %q, want the run's %q", id, info.TraceID)
				}
				break
			}
		}
	}

	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["sim.runs"] != 1 {
		t.Errorf("/metrics.json sim.runs = %d, want 1", snap.Counters["sim.runs"])
	}
}

// TestStreamTraceAndBypass: streaming sessions bypass the cache, carry
// their own trace, and close with the session outcome stamped on the
// request span.
func TestStreamTraceAndBypass(t *testing.T) {
	_, c := newTestServer(t, tracedConfig(1))
	frames := recordNDJSON(t, replayScenario())

	res, err := c.Stream(context.Background(), bytes.NewReader(frames), StreamOptions{Heartbeat: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "bypass" {
		t.Fatalf("stream cache disposition %q, want bypass", res.Cache)
	}
	if res.TraceID == "" {
		t.Fatal("stream response carries no trace ID")
	}
	names := spanNames(fetchTrace(t, c, res.TraceID))
	sp, ok := names["http /v1/stream"]
	if !ok {
		t.Fatal("trace missing the http /v1/stream span")
	}
	if sp.Attrs["close_reason"] != "eof" {
		t.Errorf("close_reason = %q, want eof", sp.Attrs["close_reason"])
	}
	if sp.Attrs["frames"] == "" || sp.Attrs["frames"] == "0" {
		t.Errorf("frames attr = %q, want > 0", sp.Attrs["frames"])
	}
}

// TestUntracedServerOmitsTraceSurface: with the default nil tracer the
// response exposes no trace identity anywhere — the byte-determinism
// guarantees of the cache are untouched — and the trace endpoints answer
// 404.
func TestUntracedServerOmitsTraceSurface(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	resp, info, err := c.Run(ctx, Request{Duration: 20})
	if err != nil {
		t.Fatal(err)
	}
	if info.TraceID != "" || resp.TraceID != "" {
		t.Fatalf("untraced server leaked trace IDs: header %q body %q", info.TraceID, resp.TraceID)
	}
	if !bytes.Contains(info.Body, []byte(`"key"`)) || bytes.Contains(info.Body, []byte(`"trace_id"`)) {
		t.Fatal("untraced body must omit the trace_id field entirely")
	}
	if _, err := c.Trace(ctx, "0af7651916cd43dd8448eb211c80319c"); err == nil {
		t.Fatal("trace fetch on an untraced server must fail")
	}
}
