package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// spoofRequest is the canonical T4-style scenario of the tests: a GNSS
// drift spoof on the urban loop, which reliably raises violations and a
// gnss-spoofing diagnosis.
func spoofRequest() Request {
	return Request{
		Track:      "urban-loop",
		Controller: "pure-pursuit",
		Attack:     "gnss-drift-spoof",
		Seed:       1,
		Duration:   70,
	}
}

func newTestServer(t testing.TB, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return s, NewClient(hs.URL)
}

// TestEndToEndSpoofThenCacheHit is the acceptance test: POST a GNSS-spoof
// scenario, receive violations + hypotheses; repeat the request and get a
// byte-identical body served from the cache with no second simulation.
func TestEndToEndSpoofThenCacheHit(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	resp, info, err := c.Run(ctx, spoofRequest())
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if info.Status != http.StatusOK || info.Cache != "miss" {
		t.Fatalf("first run: status %d cache %q, want 200 miss", info.Status, info.Cache)
	}
	if len(resp.Violations) == 0 {
		t.Fatal("spoofed run raised no violations")
	}
	if len(resp.Hypotheses) == 0 {
		t.Fatal("spoofed run produced no hypotheses")
	}
	if !resp.Summary.Detected {
		t.Fatal("spoof not detected post-onset")
	}
	if resp.Hypotheses[0].Cause == "" {
		t.Fatal("top hypothesis has no cause")
	}

	resp2, info2, err := c.Run(ctx, spoofRequest())
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if info2.Cache != "hit" {
		t.Fatalf("second run cache disposition %q, want hit", info2.Cache)
	}
	if !bytes.Equal(info.Body, info2.Body) {
		t.Fatal("cached body differs from fresh body")
	}
	if resp2.Key != resp.Key {
		t.Fatal("cache hit returned a different request key")
	}
	if got := s.Registry().Counter("sim.runs").Value(); got != 1 {
		t.Fatalf("simulations run = %d, want 1 (cache must not re-simulate)", got)
	}
	if got := s.Registry().Counter("service.cache.hits").Value(); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
}

// TestCanonicalizationSharesCacheEntry: a request spelled with explicit
// defaults hits the cache entry of the bare request.
func TestCanonicalizationSharesCacheEntry(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	if _, _, err := c.Run(ctx, Request{Duration: 30}); err != nil {
		t.Fatalf("bare request: %v", err)
	}
	_, info, err := c.Run(ctx, Request{
		Track: "urban-loop", Controller: "pure-pursuit", Attack: "none",
		Seed: 1, Duration: 30, SpeedLimit: 6, ThresholdScale: 1, Localizer: "ekf",
		AttackStart: 33, AttackEnd: 44, // decorative without an attack
	})
	if err != nil {
		t.Fatalf("explicit request: %v", err)
	}
	if info.Cache != "hit" {
		t.Fatalf("explicit spelling missed the cache (disposition %q)", info.Cache)
	}
	if got := s.Registry().Counter("sim.runs").Value(); got != 1 {
		t.Fatalf("simulations run = %d, want 1", got)
	}
}

// TestDeterministicResponseBytes: with the cache disabled, two fresh
// simulations of the same request produce byte-identical bodies — the
// property the cache's correctness rests on.
func TestDeterministicResponseBytes(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2, CacheBytes: -1})
	ctx := context.Background()
	req := spoofRequest()
	req.Bundles = true

	_, info1, err := c.Run(ctx, req)
	if err != nil {
		t.Fatalf("first fresh run: %v", err)
	}
	_, info2, err := c.Run(ctx, req)
	if err != nil {
		t.Fatalf("second fresh run: %v", err)
	}
	if info1.Cache != "miss" || info2.Cache != "miss" {
		t.Fatalf("cache dispositions %q/%q, want miss/miss (cache disabled)", info1.Cache, info2.Cache)
	}
	if !bytes.Equal(info1.Body, info2.Body) {
		t.Fatal("two fresh runs of one request produced different bytes")
	}
}

// TestSingleflightCoalescing: with the lone worker wedged, K concurrent
// identical requests collapse onto one queued simulation; every caller
// receives the same bytes and exactly one simulation runs.
func TestSingleflightCoalescing(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()

	// Wedge the only worker so the leader's job sits queued while the
	// followers pile onto the flight call.
	release := make(chan struct{})
	if err := s.pool.TrySubmit(ctx, func(context.Context) { <-release }, nil); err != nil {
		t.Fatalf("wedge: %v", err)
	}

	const K = 6
	req := Request{Attack: "gnss-step-spoof", Duration: 20}
	bodies := make([][]byte, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, info, err := c.Run(ctx, req)
			errs[i] = err
			if info != nil {
				bodies[i] = info.Body
			}
		}(i)
	}
	// Release once every request has either joined the flight (leader +
	// K-1 coalesced) — all K are then waiting on one call.
	deadline := time.Now().Add(10 * time.Second)
	for s.coalesced.Value() < K-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers coalesced", s.coalesced.Value(), K-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d received different bytes", i)
		}
	}
	if got := s.Registry().Counter("sim.runs").Value(); got != 1 {
		t.Fatalf("simulations run = %d, want exactly 1 for %d coalesced requests", got, K)
	}
}

// TestQueueFullReturns429: with the worker wedged and the queue full, a
// distinct request is shed with 429 + Retry-After instead of blocking.
func TestQueueFullReturns429(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	ctx := context.Background()

	running := make(chan struct{})
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	if err := s.pool.TrySubmit(ctx, func(context.Context) { close(running); <-release }, nil); err != nil {
		t.Fatalf("wedge: %v", err)
	}
	// Wait until the worker has dequeued the wedge: the queue slot the
	// poll below observes must belong to the real request, not the wedge —
	// otherwise the "distinct" request below could be admitted instead of
	// shed and block on the wedged worker forever.
	<-running
	// Fill the single queue slot with a pending real request.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := c.Run(ctx, Request{Duration: 5}); err != nil {
			t.Errorf("queued request: %v", err)
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.pool.QueueLen() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	// A different scenario cannot coalesce and must be shed.
	_, info, err := c.Run(ctx, Request{Duration: 5, Seed: 99})
	var qf *QueueFullError
	if !isQueueFull(err, &qf) {
		t.Fatalf("want QueueFullError, got %v (status %d)", err, statusOf(info))
	}
	if qf.RetryAfter != 2*time.Second {
		t.Fatalf("Retry-After = %s, want 2s", qf.RetryAfter)
	}
	if info.Status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", info.Status)
	}
	if got := s.Registry().Counter("service.queue_full").Value(); got != 1 {
		t.Fatalf("queue_full counter = %d, want 1", got)
	}

	close(release)
	wg.Wait()
}

func isQueueFull(err error, out **QueueFullError) bool {
	qf, ok := err.(*QueueFullError)
	if ok {
		*out = qf
	}
	return ok
}

func statusOf(info *CallInfo) int {
	if info == nil {
		return 0
	}
	return info.Status
}

// TestPerRequestTimeout: a simulation exceeding the per-request budget is
// cancelled inside the step loop and answered with 504.
func TestPerRequestTimeout(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, Timeout: 30 * time.Millisecond})
	_, info, err := c.Run(context.Background(), Request{Duration: 300})
	if err == nil {
		t.Fatal("want timeout error")
	}
	if info.Status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", info.Status)
	}
	if got := s.Registry().Counter("service.timeouts").Value(); got != 1 {
		t.Fatalf("timeouts counter = %d, want 1", got)
	}
	// A failed run must not be cached.
	if s.cache.len() != 0 {
		t.Fatal("timed-out run was cached")
	}
}

// TestBadRequests: malformed documents and invalid parameters are 400s
// with a JSON error envelope, before any simulation runs.
func TestBadRequests(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	cases := []Request{
		{Attack: "gnss-teleport"},     // unknown attack
		{Track: "moebius-strip"},      // unknown track
		{Controller: "yolo"},          // unknown controller
		{Duration: -3},                // non-positive duration
		{Duration: 1e9},               // over the server cap
		{Assertions: []string{"A99"}}, // unknown assertion
		{Attack: "gnss-step-spoof", AttackStart: 50, AttackEnd: 10}, // inverted window
	}
	for _, req := range cases {
		_, info, err := c.Run(ctx, req)
		if err == nil {
			t.Fatalf("request %+v succeeded, want 400", req)
		}
		if info.Status != http.StatusBadRequest {
			t.Fatalf("request %+v: status %d, want 400", req, info.Status)
		}
	}
	if got := s.Registry().Counter("sim.runs").Value(); got != 0 {
		t.Fatalf("invalid requests triggered %d simulations", got)
	}
}

// TestAssertionSelection: restricting the catalog restricts the
// violation record to the named assertions.
func TestAssertionSelection(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	req := spoofRequest()
	req.Assertions = []string{"A1", "A4"}
	resp, _, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range resp.Violations {
		if v.AssertionID != "A1" && v.AssertionID != "A4" {
			t.Fatalf("assertion %s fired outside the selected subset", v.AssertionID)
		}
	}
}

// TestBundlesInResponse: Bundles=true attaches one forensic bundle per
// violation episode, each window containing its violation.
func TestBundlesInResponse(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	req := spoofRequest()
	req.Bundles = true
	resp, _, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Bundles) == 0 {
		t.Fatal("no bundles in response despite violations")
	}
	if len(resp.Bundles) != len(resp.Violations) {
		t.Fatalf("%d bundles for %d violations", len(resp.Bundles), len(resp.Violations))
	}
	for i, b := range resp.Bundles {
		if !b.Window.Contains(b.Violation.T) {
			t.Fatalf("bundle %d window misses its violation", i)
		}
	}
}

// TestHealthzMetricsCatalog covers the auxiliary endpoints.
func TestHealthzMetricsCatalog(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if _, _, err := c.Run(ctx, Request{Duration: 5}); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if snap.Counters["service.requests"] < 1 {
		t.Fatalf("metrics snapshot missing service.requests: %v", snap.Counters)
	}
	if snap.Counters["sim.runs"] != 1 {
		t.Fatalf("metrics snapshot sim.runs = %d, want 1", snap.Counters["sim.runs"])
	}
	body, err := c.getJSON(ctx, "/v1/catalog")
	if err != nil {
		t.Fatalf("catalog: %v", err)
	}
	var cat map[string]any
	if err := json.Unmarshal(body, &cat); err != nil {
		t.Fatalf("catalog decode: %v", err)
	}
	for _, k := range []string{"tracks", "controllers", "attacks", "assertions", "localizers"} {
		if _, ok := cat[k]; !ok {
			t.Fatalf("catalog missing %q", k)
		}
	}
}

// TestConcurrentMixedLoad drives distinct and identical requests through
// a small pool concurrently — the -race gate for the full serving path.
func TestConcurrentMixedLoad(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2, QueueDepth: 64})
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				req := Request{Duration: 5, Seed: int64(1 + i%3)}
				if _, _, err := c.Run(ctx, req); err != nil {
					t.Errorf("worker %d request %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// 3 distinct seeds → exactly 3 simulations, everything else served
	// from cache or coalesced.
	if got := s.Registry().Counter("sim.runs").Value(); got != 3 {
		t.Fatalf("simulations run = %d, want 3", got)
	}
}

// TestCloseDrains: Close waits for an in-flight simulation and the
// response still reaches the client.
func TestCloseDrains(t *testing.T) {
	s := New(Config{Workers: 1})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := NewClient(hs.URL)

	done := make(chan error, 1)
	go func() {
		_, info, err := c.Run(context.Background(), Request{Duration: 40})
		if err == nil && info.Status != http.StatusOK {
			err = fmt.Errorf("status %d", info.Status)
		}
		done <- err
	}()
	// Wait for the run to start.
	deadline := time.Now().Add(10 * time.Second)
	for s.Registry().Counter("runner.pool.submitted").Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("run never submitted")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("drained request failed: %v", err)
	}
}

// BenchmarkServiceCacheHit measures the full HTTP round trip of a cached
// request — the serving hot path.
func BenchmarkServiceCacheHit(b *testing.B) {
	_, c := newTestServer(b, Config{Workers: 2})
	ctx := context.Background()
	req := Request{Duration: 5}
	if _, _, err := c.Run(ctx, req); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, info, err := c.Run(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if info.Cache != "hit" {
			b.Fatalf("disposition %q, want hit", info.Cache)
		}
	}
}

// BenchmarkServiceCacheMiss measures the full round trip including one
// fresh 5-simulated-second run per iteration.
func BenchmarkServiceCacheMiss(b *testing.B) {
	_, c := newTestServer(b, Config{Workers: 2, CacheBytes: -1})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, info, err := c.Run(ctx, Request{Duration: 5})
		if err != nil {
			b.Fatal(err)
		}
		if info.Cache != "miss" {
			b.Fatalf("disposition %q, want miss", info.Cache)
		}
	}
}
