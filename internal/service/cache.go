package service

import (
	"container/list"
	"sync"
	"sync/atomic"

	"adassure/internal/obs"
	"adassure/internal/telemetry"
)

// resultCache is the deterministic-result cache: a content-addressed
// (canonical request hash → marshalled response body) LRU bounded by
// total byte size rather than entry count, since a bundle-carrying
// response can be three orders of magnitude larger than a clean-run
// summary. Stored values are immutable byte slices; a hit serves exactly
// the bytes a fresh run would have produced.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	bytesGau  *obs.Gauge
	countGau  *obs.Gauge
}

// entryOverhead approximates the per-entry bookkeeping cost (key string,
// list element, map slot) charged against the byte cap alongside the
// body, so a cap of N bytes bounds real memory near N even under many
// tiny entries.
const entryOverhead = 256

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache builds a cache bounded to maxBytes (<= 0 disables
// caching entirely: get always misses, put is a no-op).
func newResultCache(maxBytes int64, reg *obs.Registry) *resultCache {
	return &resultCache{
		maxBytes:  maxBytes,
		ll:        list.New(),
		entries:   map[string]*list.Element{},
		hits:      reg.Counter("service.cache.hits"),
		misses:    reg.Counter("service.cache.misses"),
		evictions: reg.Counter("service.cache.evictions"),
		bytesGau:  reg.Gauge("service.cache.bytes"),
		countGau:  reg.Gauge("service.cache.entries"),
	}
}

func (c *resultCache) cost(e *cacheEntry) int64 {
	return int64(len(e.body)) + int64(len(e.key)) + entryOverhead
}

// get returns the cached body for key, promoting the entry to
// most-recently-used. The returned slice must not be mutated.
func (c *resultCache) get(key string) ([]byte, bool) {
	if c.maxBytes <= 0 {
		c.misses.Inc()
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting least-recently-used entries until
// the byte cap holds. Bodies that alone exceed the cap are not cached.
// Re-putting an existing key refreshes its body and recency.
func (c *resultCache) put(key string, body []byte) {
	if c.maxBytes <= 0 {
		return
	}
	e := &cacheEntry{key: key, body: body}
	if c.cost(e) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		old := el.Value.(*cacheEntry)
		c.bytes += c.cost(e) - c.cost(old)
		el.Value = e
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(e)
		c.bytes += c.cost(e)
	}
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, victim.key)
		c.bytes -= c.cost(victim)
		c.evictions.Inc()
	}
	c.bytesGau.Set(float64(c.bytes))
	c.countGau.Set(float64(c.ll.Len()))
}

// len reports the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// sizeBytes reports the current charged byte total.
func (c *resultCache) sizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// flightGroup coalesces concurrent identical requests: the first caller
// for a key becomes the leader and runs the simulation; followers block
// on the shared call and receive the same bytes. This is the standard
// singleflight pattern, inlined because the repo takes no external
// dependencies.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight execution shared by all coalesced waiters.
type flightCall struct {
	done   chan struct{}
	body   []byte
	status int
	err    error
	// owner identifies the leader's trace and root span, published before
	// submission so followers can link their coalesced-wait spans to the
	// trace doing the work. Nil when the leader's request is untraced.
	owner atomic.Pointer[flightOwner]
}

// flightOwner names the executing request's trace for follower links.
type flightOwner struct {
	trace telemetry.TraceID
	span  telemetry.SpanID
}

// setOwner stamps the call with the leader's span identity (no-op for a
// nil/untraced span).
func (c *flightCall) setOwner(sp *telemetry.Span) {
	if sp.Enabled() {
		c.owner.Store(&flightOwner{trace: sp.TraceID(), span: sp.SpanID()})
	}
}

// ownerRef returns the leader's identity, or nil when untraced (or read
// before the leader stamped it).
func (c *flightCall) ownerRef() *flightOwner { return c.owner.Load() }

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: map[string]*flightCall{}}
}

// join returns the call for key, creating it (leader=true) when absent.
func (g *flightGroup) join(key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// forget removes key so later requests start a fresh call (or hit the
// cache). Must be called before finish to keep the window where a new
// request neither joins nor hits the cache closed — the leader caches the
// body first, then forgets, then finishes.
func (g *flightGroup) forget(key string) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
}

// finish publishes the outcome and releases every waiter. It must be
// called exactly once per call.
func (c *flightCall) finish(body []byte, status int, err error) {
	c.body = body
	c.status = status
	c.err = err
	close(c.done)
}
