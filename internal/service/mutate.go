package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"adassure/internal/mutate"
	"adassure/internal/runner"
	"adassure/internal/telemetry"
)

// MutateRequest is one mutation-campaign request for POST /v1/mutate. The
// zero value of every field means "the campaign default", so `{}` runs the
// full default grid. Campaigns are deterministic in the canonicalized
// request, so the result cache and single-flight coalescing apply exactly
// as for /v1/run.
type MutateRequest struct {
	// Controller is the lateral controller under test (default
	// "pure-pursuit").
	Controller string `json:"controller,omitempty"`
	// Tracks are the route names (default urban-loop + hairpin).
	Tracks []string `json:"tracks,omitempty"`
	// Mutants is the grid (default: the full mutant catalog). Each entry is
	// an operator name plus optional parameter; see GET /v1/catalog.
	Mutants []mutate.Spec `json:"mutants,omitempty"`
	// Seed drives all stochastic components (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Duration is the simulated seconds per run (default 60, capped by the
	// server's MaxDuration).
	Duration float64 `json:"duration,omitempty"`
}

// maxCampaignRuns bounds the (mutants+1) × tracks grid one request may ask
// for, keeping a single admission slot's work comparable to one /v1/run.
const maxCampaignRuns = 64

// Canonicalize validates the request and fills every defaultable field, so
// equivalent campaigns collapse onto one cache key. The receiver is not
// mutated.
func (r MutateRequest) Canonicalize(maxDuration float64) (MutateRequest, error) {
	if r.Controller == "" {
		r.Controller = "pure-pursuit"
	}
	if len(r.Tracks) == 0 {
		r.Tracks = []string{"urban-loop", "hairpin"}
	}
	if len(r.Mutants) == 0 {
		r.Mutants = mutate.DefaultCatalog()
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Duration == 0 {
		r.Duration = 60
	}

	if !contains(validControllers, r.Controller) {
		return r, fmt.Errorf("unknown controller %q (have %v)", r.Controller, validControllers)
	}
	for _, tr := range r.Tracks {
		if !contains(validTracks, tr) {
			return r, fmt.Errorf("unknown track %q (have %v)", tr, validTracks)
		}
	}
	if !finite(r.Duration) || r.Duration <= 0 {
		return r, fmt.Errorf("duration must be a positive finite number of seconds, got %v", r.Duration)
	}
	if maxDuration > 0 && r.Duration > maxDuration {
		return r, fmt.Errorf("duration %g s exceeds the server cap of %g s", r.Duration, maxDuration)
	}
	canon := make([]mutate.Spec, len(r.Mutants))
	seen := map[string]bool{}
	for i, m := range r.Mutants {
		cm, err := m.Canonicalize()
		if err != nil {
			return r, err
		}
		if seen[cm.ID()] {
			return r, fmt.Errorf("duplicate mutant %q in grid", cm.ID())
		}
		seen[cm.ID()] = true
		canon[i] = cm
	}
	r.Mutants = canon
	if runs := len(r.Tracks) * (len(r.Mutants) + 1); runs > maxCampaignRuns {
		return r, fmt.Errorf("campaign grid of %d runs exceeds the cap of %d (fewer mutants or tracks)",
			runs, maxCampaignRuns)
	}
	return r, nil
}

// Key returns the content address of a canonicalized campaign request. The
// encoding is namespaced so a campaign can never collide with a /v1/run
// scenario in the shared cache.
func (r MutateRequest) Key() string {
	b, err := json.Marshal(r)
	if err != nil {
		// A canonical MutateRequest holds only finite floats, strings and
		// ints; Marshal cannot fail on it.
		panic(fmt.Sprintf("service: marshal canonical mutate request: %v", err))
	}
	sum := sha256.Sum256(append([]byte("mutate\n"), b...))
	return hex.EncodeToString(sum[:])
}

// Config converts a canonicalized request into the campaign it executes.
// Workers is left at the engine default: one admission slot owns the
// campaign, and the engine fans its (bounded) grid across its own pool —
// the report is byte-identical either way.
func (r MutateRequest) Config() mutate.Config {
	return mutate.Config{
		Controller: r.Controller,
		Tracks:     r.Tracks,
		Mutants:    r.Mutants,
		Seed:       r.Seed,
		Duration:   r.Duration,
	}
}

// handleMutate is the mutation-campaign endpoint: decode → canonicalize →
// cache → single-flight → pool → respond with the kill-matrix report.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	sp := telemetry.SpanFrom(r.Context())
	start := time.Now()
	defer func() {
		s.reqNS.ObserveEx(time.Since(start).Nanoseconds(), sp.TraceID().String())
	}()

	var req MutateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.badReqs.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody("decode request: "+err.Error()))
		return
	}
	canon, err := req.Canonicalize(s.cfg.MaxDuration)
	if err != nil {
		s.badReqs.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody("invalid request: "+err.Error()))
		return
	}
	key := canon.Key()

	lookup := sp.StartChild("cache.lookup")
	if body, ok := s.cache.get(key); ok {
		lookup.SetAttr("disposition", "hit")
		lookup.End()
		w.Header().Set(CacheHeader, "hit")
		writeJSON(w, http.StatusOK, body)
		return
	}

	call, leader := s.flight.join(key)
	disposition := "coalesced"
	var wait *telemetry.Span
	if leader {
		disposition = "miss"
		call.setOwner(sp)
		wait = sp.StartChild("queue.wait")
		if err := s.submitMutate(key, canon, call, sp, wait); err != nil {
			wait.End()
			s.flight.forget(key)
			status := http.StatusServiceUnavailable
			if errors.Is(err, runner.ErrQueueFull) {
				status = http.StatusTooManyRequests
				s.shedded.Inc()
			}
			call.finish(errorBody(err.Error()), status, err)
		}
	} else {
		s.coalesced.Inc()
		wait = sp.StartChild("coalesced.wait")
		if owner := call.ownerRef(); owner != nil {
			wait.AddLink(owner.trace, owner.span)
			wait.SetAttr("executing_trace", owner.trace.String())
		}
	}
	lookup.SetAttr("disposition", disposition)
	lookup.End()

	select {
	case <-call.done:
	case <-r.Context().Done():
		if !leader {
			wait.End()
		}
		return
	}
	if !leader {
		wait.End()
	}
	if call.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(s.cfg.RetryAfter)))
	}
	if call.status == http.StatusOK {
		w.Header().Set(CacheHeader, disposition)
	}
	writeJSON(w, call.status, call.body)
}

// submitMutate hands the campaign to the pool, mirroring submit.
func (s *Server) submitMutate(key string, req MutateRequest, call *flightCall, parent, wait *telemetry.Span) error {
	if s.closed.Load() {
		return fmt.Errorf("service: shutting down")
	}
	return s.pool.TrySubmit(s.baseCtx, func(ctx context.Context) {
		wait.End()
		s.executeMutate(ctx, key, req, call, parent)
	}, func(recovered any) {
		s.simErrors.Inc()
		s.flight.forget(key)
		call.finish(errorBody(fmt.Sprint(recovered)), http.StatusInternalServerError, nil)
	})
}

// executeMutate runs one campaign under the per-request budget and
// publishes the report to cache and waiters.
func (s *Server) executeMutate(ctx context.Context, key string, req MutateRequest, call *flightCall, parent *telemetry.Span) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
	defer cancel()

	ex := parent.StartChild("execute")
	start := time.Now()
	cfg := req.Config()
	cfg.Context = ctx
	cfg.Obs = s.reg // aggregate sim/monitor metrics across all runs
	rep, err := mutate.Run(cfg)
	s.runNS.ObserveEx(time.Since(start).Nanoseconds(), parent.TraceID().String())
	if err != nil {
		ex.SetAttr("error", err.Error())
	}
	ex.End()

	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
			s.timeouts.Inc()
		case errors.Is(err, context.Canceled):
			status = http.StatusServiceUnavailable
		default:
			s.simErrors.Inc()
		}
		s.flight.forget(key)
		call.finish(errorBody("run campaign: "+err.Error()), status, err)
		return
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		s.simErrors.Inc()
		s.flight.forget(key)
		call.finish(errorBody("encode report: "+err.Error()), http.StatusInternalServerError, err)
		return
	}
	body := buf.Bytes()
	// Publish to the cache before forgetting the call — same ordering
	// argument as execute.
	s.cache.put(key, body)
	s.flight.forget(key)
	call.finish(body, http.StatusOK, nil)
}
