// Package service is the scenario-execution service of the repo: an
// HTTP/JSON layer that accepts scenario requests (attack class,
// parameters, seed, assertion-catalog selection), executes them on a
// bounded persistent worker pool (internal/runner.Pool) and returns the
// full evidence chain — run summary, violations, ranked diagnosis
// hypotheses and optional forensic bundles.
//
// Because every run is deterministic in its canonicalized request, the
// service front-ends the pool with a content-addressed result cache
// (canonical request hash → marshalled response, LRU bounded by bytes)
// plus single-flight coalescing, so K concurrent identical requests cost
// exactly one simulation and all receive byte-identical bodies. The
// admission queue applies backpressure: when it is full the service
// answers 429 with a Retry-After hint instead of blocking or queueing
// unboundedly.
//
// Endpoints:
//
//	POST   /v1/run               execute (or serve from cache) one scenario
//	POST   /v1/stream            online monitoring: NDJSON frames in, NDJSON events out
//	POST   /v1/mutate            execute (or serve from cache) one mutation campaign
//	POST   /v1/search            execute (or serve from cache) one adversarial search
//	POST   /v1/jobs              submit one scenario asynchronously → job id
//	GET    /v1/jobs/{id}         poll a job's lifecycle state
//	GET    /v1/jobs/{id}/result  fetch a finished job's bytes (identical to /v1/run)
//	GET    /v1/jobs/{id}/events  NDJSON job progress stream (follows until terminal)
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /v1/catalog           enumerate tracks, controllers, attacks, assertions, mutants
//	GET  /healthz           liveness only (process up and answering)
//	GET  /readyz            readiness: queue saturation + drain state (503 while draining)
//	GET  /metrics           Prometheus/OpenMetrics text exposition of the obs registry
//	GET  /metrics.json      JSON snapshot of the obs registry
//	GET  /debug/buildinfo   module path, Go version and VCS stamp of the binary
//	GET  /debug/traces      trace IDs currently held by the in-process trace store
//	GET  /debug/traces/{id} one trace's spans as adassure/spans/v1 JSON
//	GET  /debug/pprof       net/http/pprof (when Config.EnablePprof)
//
// The X-Adassure-Cache response header reports how a /v1/run body was
// produced: "miss" (fresh simulation), "hit" (served from cache) or
// "coalesced" (attached to a concurrent identical run).
//
// Every /v1/* request is traced: the handler continues an inbound W3C
// traceparent (or starts a fresh trace), children cover the cache lookup,
// queue wait and execution phases, and the X-Adassure-Trace response
// header names the trace so it can be fetched from /debug/traces/{id} and
// matched against slog output and histogram exemplars.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"adassure"
	"adassure/internal/jobs"
	"adassure/internal/obs"
	"adassure/internal/runner"
	"adassure/internal/store"
	"adassure/internal/telemetry"
)

// CacheHeader is the response header reporting cache disposition.
const CacheHeader = "X-Adassure-Cache"

// Config tunes a Server. The zero value serves with sensible defaults.
type Config struct {
	// Workers is the simulation pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (default 2×Workers). A full
	// queue answers 429 + Retry-After.
	QueueDepth int
	// CacheBytes caps the result cache (default 64 MiB; negative
	// disables caching).
	CacheBytes int64
	// Timeout is the per-request simulation budget, enforced end to end
	// down to the simulator step loop (default 60s).
	Timeout time.Duration
	// MaxDuration caps the simulated seconds one request may ask for
	// (default 600; negative disables the cap).
	MaxDuration float64
	// RetryAfter is the hint returned with 429 responses (default 1s,
	// rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// Obs, when non-nil, is the registry everything reports into —
	// service counters, cache counters, pool metrics and per-run
	// sim/monitor metrics. Nil builds a private registry (exposed via
	// Registry and /metrics either way).
	Obs *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof on the
	// service mux.
	EnablePprof bool
	// Stream bounds /v1/stream sessions (zero value = defaults).
	Stream StreamLimits
	// Store, when non-nil, is the persistent result store backing the
	// in-memory LRU: cache misses fall through to it before simulating,
	// and every fresh result is appended to it, so cached evidence
	// survives restarts. The server owns Close-ing it.
	Store *store.Store
	// Jobs tunes the async job tier (zero value = defaults; Disable turns
	// the /v1/jobs endpoints off).
	Jobs JobsLimits
	// Fleet, when non-nil, puts the server in coordinator mode: every
	// keyed request (sync /v1/run and async jobs alike) is forwarded to
	// its consistent-hash owner on the worker ring instead of executing
	// locally. The server owns Close-ing it.
	Fleet *Fleet
	// Tracer, when non-nil, records a span tree per request and serves it
	// under /debug/traces. Nil disables tracing: every span operation is a
	// single-branch no-op and /debug/traces answers an empty list.
	Tracer *telemetry.Tracer
	// Logger receives one structured record per request (plus stream
	// session and pool lifecycle events), each carrying trace_id/span_id.
	// Nil discards.
	Logger *slog.Logger
}

func (c *Config) defaults() {
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxDuration == 0 {
		c.MaxDuration = 600
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Obs == nil {
		c.Obs = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	c.Stream.defaults()
}

// Server executes scenario requests. Build with New, mount Handler, and
// Close on shutdown to drain in-flight simulations.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	pool   *runner.Pool
	cache  *resultCache
	flight *flightGroup
	store  *store.Store
	jobs   *jobs.Manager
	fleet  *Fleet
	mux    *http.ServeMux

	tracer *telemetry.Tracer
	log    *slog.Logger

	baseCtx    context.Context
	cancelBase context.CancelFunc
	closed     atomic.Bool
	draining   atomic.Bool

	// Streaming sessions get their own cancellation so Close can drain
	// them (each delivers its session-closed event) independently of the
	// batch pool, and a WaitGroup so Close can wait for the drain.
	streamCtx     context.Context
	cancelStreams context.CancelFunc
	streamWG      sync.WaitGroup

	requests  *obs.Counter
	reqNS     *obs.Histogram
	runNS     *obs.Histogram
	coalesced *obs.Counter
	shedded   *obs.Counter
	timeouts  *obs.Counter
	simErrors *obs.Counter
	badReqs   *obs.Counter

	streamSessions *obs.Counter
}

// New builds and starts a server (its worker pool runs immediately).
func New(cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		cfg:    cfg,
		reg:    cfg.Obs,
		cache:  newResultCache(cfg.CacheBytes, cfg.Obs),
		flight: newFlightGroup(),
		tracer: cfg.Tracer,
		log:    cfg.Logger,

		requests:  cfg.Obs.Counter("service.requests"),
		reqNS:     cfg.Obs.Histogram("service.request_ns"),
		runNS:     cfg.Obs.Histogram("service.run_ns"),
		coalesced: cfg.Obs.Counter("service.cache.coalesced"),
		shedded:   cfg.Obs.Counter("service.queue_full"),
		timeouts:  cfg.Obs.Counter("service.timeouts"),
		simErrors: cfg.Obs.Counter("service.sim_errors"),
		badReqs:   cfg.Obs.Counter("service.bad_requests"),

		streamSessions: cfg.Obs.Counter("service.stream.sessions"),
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	s.streamCtx, s.cancelStreams = context.WithCancel(context.Background())
	s.store = cfg.Store
	s.fleet = cfg.Fleet
	s.pool = runner.NewPool(runner.PoolOptions{
		Workers:    cfg.Workers,
		QueueDepth: cfg.QueueDepth,
		Obs:        cfg.Obs,
		Logger:     cfg.Logger,
	})
	if !cfg.Jobs.Disable {
		s.jobs = jobs.NewManager(jobs.Config{
			Workers:    cfg.Jobs.Workers,
			QueueDepth: cfg.Jobs.QueueDepth,
			Retention:  cfg.Jobs.Retention,
			Exec:       s.execJob,
			Retryable:  jobRetryable,
			Obs:        cfg.Obs,
			Logger:     cfg.Logger,
		})
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.traced("/v1/run", s.handleRun))
	mux.HandleFunc("POST /v1/stream", s.traced("/v1/stream", s.handleStream))
	mux.HandleFunc("POST /v1/mutate", s.traced("/v1/mutate", s.handleMutate))
	mux.HandleFunc("POST /v1/search", s.traced("/v1/search", s.handleSearch))
	if s.jobs != nil {
		mux.HandleFunc("POST /v1/jobs", s.traced("/v1/jobs", s.handleJobSubmit))
		mux.HandleFunc("GET /v1/jobs/{id}", s.traced("/v1/jobs/{id}", s.handleJobGet))
		mux.HandleFunc("GET /v1/jobs/{id}/result", s.traced("/v1/jobs/{id}/result", s.handleJobResult))
		mux.HandleFunc("GET /v1/jobs/{id}/events", s.traced("/v1/jobs/{id}/events", s.handleJobEvents))
		mux.HandleFunc("DELETE /v1/jobs/{id}", s.traced("/v1/jobs/{id}", s.handleJobCancel))
	}
	mux.HandleFunc("GET /v1/catalog", s.traced("/v1/catalog", s.handleCatalog))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("GET /debug/buildinfo", s.handleBuildinfo)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceByID)
	mux.HandleFunc("/", s.handleFallback)
	if cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s
}

// Handler returns the service mux, ready to mount on any http.Server
// (or httptest.Server in tests).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the metrics registry backing /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Tracer returns the trace store backing /debug/traces (nil when tracing
// is disabled).
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// BeginDrain flips /readyz to 503 without refusing work: admission stays
// open so in-flight and just-arrived requests complete, but load
// balancers watching readiness stop sending new ones. Call it ahead of
// Close to drain gracefully.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) {
		s.log.Info("drain started")
	}
}

// Close stops admission, drains streaming sessions (each delivers its
// final session-closed event before its handler returns) and drains
// in-flight simulations. If ctx expires first, the base context is
// cancelled, which aborts running simulations within one control step;
// Close still waits for the workers to observe the cancellation before
// returning ctx.Err().
func (s *Server) Close(ctx context.Context) error {
	s.closed.Store(true)
	s.cancelStreams()
	var jobsErr error
	if s.jobs != nil {
		// Drain the job tier first: its dispatchers feed the pool, so they
		// must stop submitting before the pool itself drains.
		jobsErr = s.jobs.Close(ctx)
	}
	done := make(chan struct{})
	go func() {
		s.pool.Close()
		s.streamWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
		s.cancelBase()
	case <-ctx.Done():
		s.cancelBase() // force: abort in-flight simulations
		<-done
		err = ctx.Err()
	}
	if s.fleet != nil {
		s.fleet.Close()
	}
	if s.store != nil {
		if cerr := s.store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err == nil {
		err = jobsErr
	}
	return err
}

// maxBodyBytes bounds a request document; canonical requests are a few
// hundred bytes, so 1 MiB is generous.
const maxBodyBytes = 1 << 20

// errorBody renders the uniform JSON error envelope.
func errorBody(msg string) []byte {
	b, _ := json.Marshal(map[string]string{"error": msg})
	return b
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// handleRun is the execution endpoint: decode → canonicalize → cache →
// single-flight → pool → respond.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	sp := telemetry.SpanFrom(r.Context())
	start := time.Now()
	defer func() {
		s.reqNS.ObserveEx(time.Since(start).Nanoseconds(), sp.TraceID().String())
	}()

	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.badReqs.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody("decode request: "+err.Error()))
		return
	}
	canon, err := req.Canonicalize(s.cfg.MaxDuration)
	if err != nil {
		s.badReqs.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody("invalid request: "+err.Error()))
		return
	}
	key := canon.Key()

	body, status, disposition, worker, err := s.runKeyed(r.Context(), sp, canon, key)
	if err != nil {
		// The client went away; the run (if any) continues and will fill
		// the cache for the next asker.
		return
	}
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
	}
	if status == http.StatusOK && disposition != "" {
		w.Header().Set(CacheHeader, disposition)
	}
	if worker != "" {
		w.Header().Set(WorkerHeader, worker)
	}
	writeJSON(w, status, body)
}

// runKeyed is the execution core shared by the synchronous /v1/run
// handler and the async job tier: serve from the in-memory cache, fall
// through to the persistent store, else coalesce on the single-flight
// group and execute on the pool. In coordinator mode the whole path is
// replaced by forwarding over the worker ring (no coordinator-side
// cache: the key's owner holds the warm copy, and caching here would
// defeat the routing). It blocks until a body is available or ctx is
// done (the only case that returns a non-nil error — the run, if one
// started, continues and fills the cache for the next asker). worker is
// non-empty only in coordinator mode.
func (s *Server) runKeyed(ctx context.Context, sp *telemetry.Span, canon Request, key string) (body []byte, status int, disposition, worker string, err error) {
	if s.fleet != nil {
		return s.fleet.forward(ctx, sp, canon, key)
	}
	lookup := sp.StartChild("cache.lookup")
	if body, ok := s.cache.get(key); ok {
		lookup.SetAttr("disposition", "hit")
		lookup.End()
		return body, http.StatusOK, "hit", "", nil
	}
	// The store tier: evidence computed before the last restart (or by a
	// previous process on this box) is served without re-simulating, and
	// promoted back into the LRU for the next asker.
	if body, ok := s.storeGet(key); ok {
		s.cache.put(key, body)
		lookup.SetAttr("disposition", "store")
		lookup.End()
		return body, http.StatusOK, "store", "", nil
	}

	call, leader := s.flight.join(key)
	disposition = "coalesced"
	var wait *telemetry.Span
	if leader {
		disposition = "miss"
		// Stamp the call with this trace before the job can finish, so
		// followers joining the same flight can link to the executing
		// trace from theirs.
		call.setOwner(sp)
		// The queue-wait span opens before submission and is closed by the
		// job the moment a worker picks it up (or right here on a failed
		// submit) — its extent is exactly the time spent in the admission
		// queue.
		wait = sp.StartChild("queue.wait")
		if err := s.submit(key, canon, call, sp, wait); err != nil {
			wait.End()
			// The leader could not start the run; everyone attached to
			// this call (the leader and any follower that joined since)
			// gets the same backpressure answer.
			s.flight.forget(key)
			status := http.StatusServiceUnavailable
			if errors.Is(err, runner.ErrQueueFull) {
				status = http.StatusTooManyRequests
				s.shedded.Inc()
			}
			call.finish(errorBody(err.Error()), status, err)
		}
	} else {
		s.coalesced.Inc()
		wait = sp.StartChild("coalesced.wait")
		if owner := call.ownerRef(); owner != nil {
			// The work happens in the leader's trace; a link from the
			// waiter's span makes the join navigable from either side.
			wait.AddLink(owner.trace, owner.span)
			wait.SetAttr("executing_trace", owner.trace.String())
		}
	}
	lookup.SetAttr("disposition", disposition)
	lookup.End()

	select {
	case <-call.done:
	case <-ctx.Done():
		if !leader {
			wait.End()
		}
		return nil, 0, disposition, "", ctx.Err()
	}
	if !leader {
		wait.End()
	}
	return call.body, call.status, disposition, "", nil
}

// storeGet reads one key from the persistent store, degrading a damaged
// record to a miss (the evidence is recomputed and re-appended).
func (s *Server) storeGet(key string) ([]byte, bool) {
	if s.store == nil {
		return nil, false
	}
	body, ok, err := s.store.Get(key)
	if err != nil {
		s.log.Warn("store read failed", slog.String("key", key), slog.String("error", err.Error()))
		return nil, false
	}
	return body, ok
}

// submit hands the run to the pool. On success the pool job owns the
// call: it caches, forgets and finishes (and closes the queue-wait span
// on pickup). On error the caller keeps ownership of both.
func (s *Server) submit(key string, req Request, call *flightCall, parent, wait *telemetry.Span) error {
	if s.closed.Load() {
		return fmt.Errorf("service: shutting down")
	}
	return s.pool.TrySubmit(s.baseCtx, func(ctx context.Context) {
		wait.End()
		s.execute(ctx, key, req, call, parent)
	}, func(recovered any) {
		// Pool backstop: a panicking run must not strand the waiters.
		s.simErrors.Inc()
		s.flight.forget(key)
		call.finish(errorBody(fmt.Sprint(recovered)), http.StatusInternalServerError, nil)
	})
}

// execute runs one simulation under the per-request budget and publishes
// the outcome to cache and waiters. parent is the submitting request's
// root span; starting a child from a worker goroutine is safe because a
// span's identity fields are immutable after creation.
func (s *Server) execute(ctx context.Context, key string, req Request, call *flightCall, parent *telemetry.Span) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
	defer cancel()

	ex := parent.StartChild("execute")
	start := time.Now()
	scn := req.Scenario()
	scn.Obs = s.reg // aggregate sim/monitor metrics across all runs
	scn.Span = ex   // phase spans (sim+monitor, diagnosis) hang off this
	out, err := scn.RunContext(ctx)
	s.runNS.ObserveEx(time.Since(start).Nanoseconds(), parent.TraceID().String())

	if err != nil {
		ex.SetAttr("error", err.Error())
		ex.End()
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
			s.timeouts.Inc()
		case errors.Is(err, context.Canceled):
			status = http.StatusServiceUnavailable
		default:
			s.simErrors.Inc()
		}
		s.flight.forget(key)
		call.finish(errorBody("run scenario: "+err.Error()), status, err)
		return
	}
	if ex.Enabled() {
		ex.SetInt("violations", int64(len(out.Violations)))
		ex.SetInt("steps", int64(out.Sim.Steps))
	}
	ex.End()
	body, err := buildResponse(req, out, parent.TraceID().String())
	if err != nil {
		s.simErrors.Inc()
		s.flight.forget(key)
		call.finish(errorBody("encode response: "+err.Error()), http.StatusInternalServerError, err)
		return
	}
	// Order matters: publish to the cache before forgetting the call, so
	// a request arriving in between either joins the call or hits the
	// cache — never starts a duplicate simulation.
	s.cache.put(key, body)
	if s.store != nil {
		// Persist after the in-memory publish: a store append failure
		// (disk full, permissions) degrades durability, never the answer.
		if err := s.store.Put(key, body); err != nil {
			s.log.Warn("store append failed", slog.String("key", key), slog.String("error", err.Error()))
		}
	}
	s.flight.forget(key)
	call.finish(body, http.StatusOK, nil)
}

// retryAfterSeconds rounds the configured hint up to whole seconds as the
// Retry-After header requires.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// routeMethods is the allowed-method table behind the JSON fallback. The
// catch-all "/" pattern matches any request no method-specific pattern
// does, so wrong-method calls on real routes land here too; the table lets
// the fallback answer 405 + Allow for those and 404 for unknown paths —
// both with the uniform JSON error envelope instead of the mux's plain
// text.
var routeMethods = map[string]string{
	"/v1/run":          "POST",
	"/v1/stream":       "POST",
	"/v1/mutate":       "POST",
	"/v1/search":       "POST",
	"/v1/jobs":         "POST",
	"/v1/catalog":      "GET",
	"/healthz":         "GET",
	"/readyz":          "GET",
	"/metrics":         "GET",
	"/metrics.json":    "GET",
	"/debug/buildinfo": "GET",
	"/debug/traces":    "GET",
}

// handleFallback answers every request no registered route claims.
func (s *Server) handleFallback(w http.ResponseWriter, r *http.Request) {
	s.badReqs.Inc()
	if allow, ok := routeMethods[r.URL.Path]; ok {
		w.Header().Set("Allow", allow)
		writeJSON(w, http.StatusMethodNotAllowed,
			errorBody(fmt.Sprintf("method %s not allowed for %s (allow %s)", r.Method, r.URL.Path, allow)))
		return
	}
	writeJSON(w, http.StatusNotFound, errorBody("unknown route "+r.URL.Path))
}

// handleHealthz is pure liveness: the process is up and answering. It
// stays 200 through a drain — use /readyz to steer traffic.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.closed.Load() {
		status = "draining"
	}
	b, _ := json.Marshal(map[string]any{
		"status":    status,
		"queue_len": s.pool.QueueLen(),
		"queue_cap": s.pool.Cap(),
	})
	writeJSON(w, http.StatusOK, b)
}

// handleReadyz is the traffic-steering probe: 503 once BeginDrain or
// Close has been called, or while the admission queue is saturated (a new
// run would be shed with 429 anyway). The body always reports the reason
// and occupancy — simulation queue and async job queue — so load
// balancers and the fleet coordinator steer off the same signal.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	qlen, qcap := s.pool.QueueLen(), s.pool.Cap()
	status, code := "ready", http.StatusOK
	switch {
	case s.closed.Load() || s.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case qlen >= qcap:
		status, code = "saturated", http.StatusServiceUnavailable
	}
	doc := map[string]any{
		"status":    status,
		"queue_len": qlen,
		"queue_cap": qcap,
	}
	if s.jobs != nil {
		doc["jobs_queued"] = s.jobs.QueueLen()
		doc["jobs_cap"] = s.jobs.QueueCap()
		doc["jobs_running"] = s.jobs.Running()
	}
	if s.store != nil {
		doc["store_entries"] = s.store.Len()
		doc["store_bytes"] = s.store.SizeBytes()
	}
	if s.fleet != nil {
		workers, healthy := s.fleet.membership()
		doc["workers"] = workers
		doc["workers_healthy"] = healthy
		if healthy == 0 && code == http.StatusOK {
			status, code = "no-workers", http.StatusServiceUnavailable
			doc["status"] = status
		}
	}
	b, _ := json.Marshal(doc)
	writeJSON(w, code, b)
}

// handleMetrics serves the Prometheus/OpenMetrics text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	if err := s.reg.WriteProm(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleMetricsJSON serves the JSON snapshot of the obs registry (the
// format /metrics carried before the Prometheus exposition took it over).
func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.reg.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleBuildinfo reports what binary is serving: module path, Go
// version and, when the binary was built from a checkout, the VCS stamp.
func (s *Server) handleBuildinfo(w http.ResponseWriter, _ *http.Request) {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		writeJSON(w, http.StatusServiceUnavailable, errorBody("build info unavailable"))
		return
	}
	vcs := map[string]string{}
	for _, st := range info.Settings {
		switch st.Key {
		case "vcs", "vcs.revision", "vcs.time", "vcs.modified":
			vcs[st.Key] = st.Value
		}
	}
	b, _ := json.Marshal(map[string]any{
		"go_version": info.GoVersion,
		"path":       info.Path,
		"module":     info.Main.Path,
		"version":    info.Main.Version,
		"vcs":        vcs,
	})
	writeJSON(w, http.StatusOK, b)
}

// handleTraces lists the trace IDs the store currently holds, oldest
// first — the index for /debug/traces/{id}.
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	ids := s.tracer.TraceIDs()
	strs := make([]string, len(ids))
	for i, id := range ids {
		strs[i] = id.String()
	}
	b, _ := json.Marshal(map[string]any{"traces": strs})
	writeJSON(w, http.StatusOK, b)
}

// handleTraceByID serves one trace's span tree as adassure/spans/v1 JSON
// (the format adassure-trace renders and converts to Perfetto).
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id, err := telemetry.ParseTraceID(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody("invalid trace id: "+err.Error()))
		return
	}
	exp, ok := s.tracer.Export(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody("unknown trace "+id.String()))
		return
	}
	b, _ := json.Marshal(exp)
	writeJSON(w, http.StatusOK, b)
}

// handleCatalog enumerates the accepted request vocabulary.
func (s *Server) handleCatalog(w http.ResponseWriter, _ *http.Request) {
	b, _ := json.Marshal(map[string]any{
		"tracks":      validTracks,
		"controllers": validControllers,
		"attacks":     validAttacks(),
		"localizers":  validLocalizers,
		"assertions": adassure.NewCatalogMonitor(adassure.CatalogConfig{
			IncludeGroundTruth: true,
		}).AssertionIDs(),
		"mutants": adassure.MutantOps(),
	})
	writeJSON(w, http.StatusOK, b)
}
