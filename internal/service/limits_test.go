package service

import (
	"bytes"
	"errors"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestLimitsValidateJoinsEveryViolation: one Validate call reports all
// broken knobs at once, each as a typed *LimitError.
func TestLimitsValidateJoinsEveryViolation(t *testing.T) {
	err := Limits{
		Workers:      -1,
		QueueDepth:   -2,
		CacheBytes:   100, // positive but below the useful floor
		Timeout:      -time.Second,
		StoreBytes:   1 << 20, // set without StoreDir
		JobWorkers:   -3,
		JobQueue:     -4,
		JobRetention: -5,
	}.Validate()
	if err == nil {
		t.Fatal("pathological limits validated clean")
	}
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("violations are not typed LimitErrors: %v", err)
	}
	msg := err.Error()
	for _, field := range []string{
		"-workers", "-queue", "-cache-bytes", "-timeout",
		"-store-bytes", "-jobs-workers", "-jobs-queue", "-jobs-retention",
	} {
		if !strings.Contains(msg, field) {
			t.Errorf("joined error missing %s: %s", field, msg)
		}
	}
}

// TestLimitsValidateCombinations: knobs fine alone can be rejected
// together.
func TestLimitsValidateCombinations(t *testing.T) {
	if err := (Limits{Workers: 2, JobWorkers: 64}).Validate(); err == nil {
		t.Fatal("job tier 32x wider than the simulation pool validated clean")
	}
	if err := (Limits{Workers: 2, JobWorkers: 8}).Validate(); err != nil {
		t.Fatalf("4x job tier rejected: %v", err)
	}
	if err := (Limits{}).Validate(); err != nil {
		t.Fatalf("zero-value limits rejected: %v", err)
	}
	if err := (Limits{CacheBytes: -1}).Validate(); err != nil {
		t.Fatalf("explicitly disabled cache rejected: %v", err)
	}
}

// TestLimitsValidateStoreDir: the store directory must be a writable
// directory (or creatable path).
func TestLimitsValidateStoreDir(t *testing.T) {
	dir := t.TempDir()
	if err := (Limits{StoreDir: dir}).Validate(); err != nil {
		t.Fatalf("usable store dir rejected: %v", err)
	}
	if err := (Limits{StoreDir: filepath.Join(dir, "new")}).Validate(); err != nil {
		t.Fatalf("creatable store dir rejected: %v", err)
	}
	file := filepath.Join(dir, "file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := (Limits{StoreDir: file}).Validate(); err == nil {
		t.Fatal("plain file accepted as store dir")
	}
	if err := (Limits{StoreDir: dir, StoreBytes: 1024}).Validate(); err == nil {
		t.Fatal("store cap below one segment accepted")
	}
}

// TestLimitsLogSummaryResolvesDefaults: the boot line carries resolved
// values, not the zero placeholders.
func TestLimitsLogSummaryResolvesDefaults(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&buf, nil))
	Limits{StoreDir: "/tmp/s"}.LogSummary(log, "worker")
	out := buf.String()
	for _, want := range []string{"role=worker", "job_workers=2", "store_bytes=268435456", "msg=limits"} {
		if !strings.Contains(out, want) {
			t.Errorf("limits line missing %q: %s", want, out)
		}
	}
	Limits{}.LogSummary(nil, "standalone") // nil logger must not panic
}
