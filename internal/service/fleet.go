package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"time"

	"adassure/internal/obs"
	"adassure/internal/shard"
	"adassure/internal/telemetry"
)

// WorkerHeader names the fleet worker that produced a response body.
const WorkerHeader = "X-Adassure-Worker"

// FleetConfig tunes a coordinator's view of its workers.
type FleetConfig struct {
	// Peers are the worker base URLs, e.g. "http://10.0.0.7:8080". The
	// ring identity of each worker is its URL with the scheme stripped, so
	// every coordinator given the same peer set routes identically.
	Peers []string
	// Replicas and LoadFactor tune the consistent-hash ring (zero values =
	// ring defaults: 128 virtual nodes, load factor 1.25).
	Replicas   int
	LoadFactor float64
	// HealthInterval is the /readyz probe cadence (default 1s).
	HealthInterval time.Duration
	// RequestTimeout bounds one forwarded request (default 90s — above the
	// worker's own simulation budget so the worker answers first).
	RequestTimeout time.Duration
	// Obs receives coord.forwarded{worker}, coord.failovers and
	// coord.no_worker counters plus the shard health metrics. Nil-safe.
	Obs *obs.Registry
	// Logger receives worker health transitions and forward failures.
	Logger *slog.Logger
}

// Fleet is the coordinator's routing fabric: the consistent-hash ring
// over the worker set, an active health checker, and the forwarding
// client. It plugs into Server via Config.Fleet, replacing local
// execution: runKeyed forwards each keyed request to the key's preferred
// worker and fails over down the preference order.
type Fleet struct {
	ring    *shard.Ring
	checker *shard.Checker
	client  *http.Client
	reg     *obs.Registry
	log     *slog.Logger

	failovers *obs.Counter
	noWorker  *obs.Counter
}

// workerName derives the stable ring identity of a peer URL.
func workerName(peer string) string {
	name := peer
	if i := strings.Index(name, "://"); i >= 0 {
		name = name[i+3:]
	}
	return strings.TrimRight(name, "/")
}

// NewFleet builds the ring from the peer set and starts health probing.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("fleet: no peers configured")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 90 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	f := &Fleet{
		ring:      shard.NewRing(shard.Options{Replicas: cfg.Replicas, LoadFactor: cfg.LoadFactor}),
		client:    &http.Client{Timeout: cfg.RequestTimeout},
		reg:       cfg.Obs,
		log:       cfg.Logger,
		failovers: cfg.Obs.Counter("coord.failovers"),
		noWorker:  cfg.Obs.Counter("coord.no_worker"),
	}
	for _, peer := range cfg.Peers {
		peer = strings.TrimRight(peer, "/")
		f.ring.Add(workerName(peer), peer)
	}
	f.checker = shard.NewChecker(f.ring, shard.CheckerOptions{
		Interval: cfg.HealthInterval,
		Obs:      cfg.Obs,
		Logger:   cfg.Logger,
	})
	f.checker.Start()
	return f, nil
}

// Close stops health probing.
func (f *Fleet) Close() { f.checker.Stop() }

// Ring exposes the routing table (readyz membership, tests).
func (f *Fleet) Ring() *shard.Ring { return f.ring }

// workerView is one ring member in the /readyz body.
type workerView struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Inflight int64  `json:"inflight"`
}

// membership summarises the ring for /readyz: every member with health
// and load, sorted by name so the body is stable.
func (f *Fleet) membership() (views []workerView, healthy int) {
	nodes := f.ring.Nodes()
	views = make([]workerView, 0, len(nodes))
	for _, n := range nodes {
		ok := n.Healthy()
		if ok {
			healthy++
		}
		views = append(views, workerView{Name: n.Name, URL: n.URL, Healthy: ok, Inflight: n.Inflight()})
	}
	sort.Slice(views, func(i, j int) bool { return views[i].Name < views[j].Name })
	return views, healthy
}

// forward routes one keyed request to its preferred worker, failing over
// down the preference order on transport errors and backpressure. The
// returned disposition is the worker's own cache disposition; worker
// names the backend that answered. A fleet-wide failure returns 502 with
// the error envelope (err stays nil — the contract matches runKeyed:
// only ctx expiry is an error).
func (f *Fleet) forward(ctx context.Context, sp *telemetry.Span, canon Request, key string) (body []byte, status int, disposition, worker string, err error) {
	payload, merr := json.Marshal(canon)
	if merr != nil {
		return errorBody("marshal request: " + merr.Error()), http.StatusInternalServerError, "", "", nil
	}
	order := f.ring.Pick(key, 0)
	if len(order) == 0 {
		f.noWorker.Inc()
		return errorBody("fleet: no workers on the ring"), http.StatusBadGateway, "", "", nil
	}
	var lastErr error
	for i, n := range order {
		if ctx.Err() != nil {
			return nil, 0, "", "", ctx.Err()
		}
		if i > 0 {
			f.failovers.Inc()
		}
		fw := sp.StartChild("forward")
		fw.SetAttr("worker", n.Name)
		body, status, disposition, err := f.forwardOne(ctx, n, payload, sp)
		fw.SetAttr("disposition", disposition)
		fw.End()
		if err != nil {
			lastErr = err
			// Passive health: a transport failure downs the worker now
			// instead of waiting out the probe threshold; the checker
			// restores it on the next successful probe.
			n.SetHealthy(false)
			f.log.Warn("forward failed",
				slog.String("worker", n.Name), slog.String("error", err.Error()))
			continue
		}
		if status == http.StatusTooManyRequests && i+1 < len(order) {
			// The worker shed the request; spill to the next replica
			// rather than bouncing backpressure to the client while
			// capacity remains elsewhere.
			lastErr = fmt.Errorf("worker %s: queue full", n.Name)
			continue
		}
		f.reg.CounterL("coord.forwarded", "worker", n.Name).Inc()
		return body, status, disposition, n.Name, nil
	}
	f.noWorker.Inc()
	return errorBody(fmt.Sprintf("fleet: no worker available for key %.12s…: %v", key, lastErr)),
		http.StatusBadGateway, "", "", nil
}

// forwardOne executes one forwarded POST /v1/run against one worker.
func (f *Fleet) forwardOne(ctx context.Context, n *shard.Node, payload []byte, sp *telemetry.Span) (body []byte, status int, disposition string, err error) {
	n.Begin()
	defer n.Done()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, n.URL+"/v1/run", bytes.NewReader(payload))
	if err != nil {
		return nil, 0, "", err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if tp := sp.TraceParent(); tp != "" {
		// The worker continues the coordinator's trace, so one trace ID
		// follows the request across both processes.
		hreq.Header.Set("traceparent", tp)
	}
	hres, err := f.client.Do(hreq)
	if err != nil {
		return nil, 0, "", err
	}
	defer hres.Body.Close()
	body, err = io.ReadAll(io.LimitReader(hres.Body, maxBodyBytes*16))
	if err != nil {
		return nil, 0, "", err
	}
	return body, hres.StatusCode, hres.Header.Get(CacheHeader), nil
}
