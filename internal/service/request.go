package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"adassure"
	"adassure/internal/forensics"
)

// Request is one scenario-execution request. The zero value of every
// field means "the scenario default", so `{}` is a valid request (a clean
// urban-loop run). Runs are fully deterministic in the canonicalized
// request, which is what makes the result cache sound.
type Request struct {
	// Track is the route name (default "urban-loop").
	Track string `json:"track,omitempty"`
	// Controller is the lateral controller (default "pure-pursuit").
	Controller string `json:"controller,omitempty"`
	// Attack is the injected attack class, or "none" (the default).
	Attack string `json:"attack,omitempty"`
	// AttackStart/AttackEnd bound the attack window in simulated seconds
	// (defaults 20/50; ignored and canonicalized to 0 when Attack is none).
	AttackStart float64 `json:"attack_start,omitempty"`
	AttackEnd   float64 `json:"attack_end,omitempty"`
	// Seed drives all stochastic components (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Duration is the simulated time in seconds (default 70, capped by the
	// server's MaxDuration).
	Duration float64 `json:"duration,omitempty"`
	// SpeedLimit of the route in m/s (default 6).
	SpeedLimit float64 `json:"speed_limit,omitempty"`
	// Guarded enables the defended stack.
	Guarded bool `json:"guarded,omitempty"`
	// ThresholdScale loosens (>1) or tightens (<1) catalog thresholds
	// (default 1).
	ThresholdScale float64 `json:"threshold_scale,omitempty"`
	// Localizer selects the fusion stack: "ekf" (default) or
	// "complementary".
	Localizer string `json:"localizer,omitempty"`
	// Assertions, when non-empty, restricts the monitor to these catalog
	// assertion IDs (canonicalized to sorted unique order).
	Assertions []string `json:"assertions,omitempty"`
	// Bundles requests one forensic bundle per violation episode in the
	// response.
	Bundles bool `json:"bundles,omitempty"`
	// BundleHalfWindow is the bundle evidence half-window in seconds
	// (default 2 when Bundles is set; canonicalized to 0 otherwise).
	BundleHalfWindow float64 `json:"bundle_half_window,omitempty"`
}

// validNames are the accepted enum values, kept in one place so the
// /v1/catalog endpoint and validation can never drift apart.
var (
	validTracks = []string{
		"straight", "circle", "s-curve", "figure-eight",
		"double-lane-change", "urban-loop", "hairpin",
	}
	validControllers = []string{"pure-pursuit", "stanley", "pid-lateral", "lqr-mpc"}
	validLocalizers  = []string{"ekf", "complementary"}

	assertionIDsOnce sync.Once
	assertionIDs     []string
)

// validAssertions enumerates the catalog assertion IDs a request may
// select (the full catalog including the ground-truth assertion, which
// the simulator always has available).
func validAssertions() []string {
	assertionIDsOnce.Do(func() {
		assertionIDs = adassure.NewCatalogMonitor(adassure.CatalogConfig{
			IncludeGroundTruth: true,
		}).AssertionIDs()
	})
	return assertionIDs
}

func validAttacks() []string {
	out := []string{"none"}
	for _, a := range adassure.AttackNames() {
		out = append(out, string(a))
	}
	return out
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Canonicalize validates the request and fills every defaultable field
// with its explicit value, so equivalent requests collapse onto one cache
// key. maxDuration caps the simulated seconds a single request may ask
// for (<= 0 means no cap). The receiver is not mutated.
func (r Request) Canonicalize(maxDuration float64) (Request, error) {
	if r.Track == "" {
		r.Track = "urban-loop"
	}
	if r.Controller == "" {
		r.Controller = "pure-pursuit"
	}
	if r.Attack == "" {
		r.Attack = "none"
	}
	if r.Localizer == "" {
		r.Localizer = "ekf"
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Duration == 0 {
		r.Duration = 70
	}
	if r.SpeedLimit == 0 {
		r.SpeedLimit = 6
	}
	if r.ThresholdScale == 0 {
		r.ThresholdScale = 1
	}
	if r.Attack == "none" {
		// The window is meaningless without an attack: zero it so clean
		// runs with decorative windows share one cache entry.
		r.AttackStart, r.AttackEnd = 0, 0
	} else {
		if r.AttackStart == 0 {
			r.AttackStart = 20
		}
		if r.AttackEnd == 0 {
			r.AttackEnd = 50
		}
	}
	if !r.Bundles {
		r.BundleHalfWindow = 0
	} else if r.BundleHalfWindow == 0 {
		r.BundleHalfWindow = forensics.DefaultHalfWindow
	}
	if len(r.Assertions) > 0 {
		ids := append([]string(nil), r.Assertions...)
		sort.Strings(ids)
		uniq := ids[:0]
		for i, id := range ids {
			if i == 0 || id != ids[i-1] {
				uniq = append(uniq, id)
			}
		}
		r.Assertions = uniq
	} else {
		r.Assertions = nil
	}

	switch {
	case !contains(validTracks, r.Track):
		return r, fmt.Errorf("unknown track %q (have %v)", r.Track, validTracks)
	case !contains(validControllers, r.Controller):
		return r, fmt.Errorf("unknown controller %q (have %v)", r.Controller, validControllers)
	case !contains(validAttacks(), r.Attack):
		return r, fmt.Errorf("unknown attack %q (have %v)", r.Attack, validAttacks())
	case !contains(validLocalizers, r.Localizer):
		return r, fmt.Errorf("unknown localizer %q (have %v)", r.Localizer, validLocalizers)
	case !finite(r.Duration) || r.Duration <= 0:
		return r, fmt.Errorf("duration must be a positive finite number of seconds, got %v", r.Duration)
	case maxDuration > 0 && r.Duration > maxDuration:
		return r, fmt.Errorf("duration %g s exceeds the server cap of %g s", r.Duration, maxDuration)
	case !finite(r.SpeedLimit) || r.SpeedLimit <= 0:
		return r, fmt.Errorf("speed_limit must be positive and finite, got %v", r.SpeedLimit)
	case !finite(r.ThresholdScale) || r.ThresholdScale <= 0:
		return r, fmt.Errorf("threshold_scale must be positive and finite, got %v", r.ThresholdScale)
	case !finite(r.AttackStart) || !finite(r.AttackEnd) || r.AttackStart < 0:
		return r, fmt.Errorf("attack window [%v, %v] must be finite and non-negative", r.AttackStart, r.AttackEnd)
	case r.Attack != "none" && r.AttackEnd <= r.AttackStart:
		return r, fmt.Errorf("attack window end %g must exceed start %g", r.AttackEnd, r.AttackStart)
	case !finite(r.BundleHalfWindow) || r.BundleHalfWindow < 0:
		return r, fmt.Errorf("bundle_half_window must be non-negative and finite, got %v", r.BundleHalfWindow)
	}
	for _, id := range r.Assertions {
		if !contains(validAssertions(), id) {
			return r, fmt.Errorf("unknown catalog assertion %q (have %v)", id, validAssertions())
		}
	}
	return r, nil
}

// Key returns the content address of a canonicalized request: the SHA-256
// of its canonical JSON encoding. Two requests with the same key ask for
// byte-identical work.
func (r Request) Key() string {
	// Struct field order is fixed and map-free, so encoding/json is a
	// canonical encoder here.
	b, err := json.Marshal(r)
	if err != nil {
		// A Request holds only finite floats, strings, bools and ints
		// after Canonicalize; Marshal cannot fail on it.
		panic(fmt.Sprintf("service: marshal canonical request: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Scenario converts a canonicalized request into the façade scenario it
// executes.
func (r Request) Scenario() adassure.Scenario {
	return adassure.Scenario{
		Track:          adassure.TrackName(r.Track),
		Controller:     adassure.ControllerName(r.Controller),
		Attack:         adassure.AttackName(r.Attack),
		AttackStart:    r.AttackStart,
		AttackEnd:      r.AttackEnd,
		Seed:           r.Seed,
		Duration:       r.Duration,
		SpeedLimit:     r.SpeedLimit,
		Guarded:        r.Guarded,
		ThresholdScale: r.ThresholdScale,
		Localizer:      r.Localizer,
		Assertions:     r.Assertions,
		RecordFrames:   r.Bundles,
	}
}
