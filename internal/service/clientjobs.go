package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"adassure/internal/jobs"
)

// ErrJobPending is returned by JobResult while the job has not reached a
// terminal state — poll or WaitJob first.
var ErrJobPending = fmt.Errorf("service: job still pending")

// SubmitJob enqueues one scenario asynchronously (POST /v1/jobs) and
// returns the queued job's snapshot. A full job queue returns
// *QueueFullError, same as a shed synchronous run.
func (c *Client) SubmitJob(ctx context.Context, req Request) (jobs.Snapshot, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return jobs.Snapshot{}, fmt.Errorf("service: marshal request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return jobs.Snapshot{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return jobs.Snapshot{}, err
	}
	defer hres.Body.Close()
	body, err := io.ReadAll(hres.Body)
	if err != nil {
		return jobs.Snapshot{}, fmt.Errorf("service: read response: %w", err)
	}
	if hres.StatusCode == http.StatusTooManyRequests {
		retry := time.Second
		if secs, err := strconv.Atoi(hres.Header.Get("Retry-After")); err == nil && secs > 0 {
			retry = time.Duration(secs) * time.Second
		}
		return jobs.Snapshot{}, &QueueFullError{RetryAfter: retry}
	}
	if hres.StatusCode != http.StatusAccepted {
		return jobs.Snapshot{}, fmt.Errorf("service: POST /v1/jobs: %s: %s", hres.Status, strings.TrimSpace(string(body)))
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return jobs.Snapshot{}, fmt.Errorf("service: decode job snapshot: %w", err)
	}
	return snap, nil
}

// Job polls one job's lifecycle snapshot (GET /v1/jobs/{id}).
func (c *Client) Job(ctx context.Context, id string) (jobs.Snapshot, error) {
	body, err := c.getJSON(ctx, "/v1/jobs/"+id)
	if err != nil {
		return jobs.Snapshot{}, err
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return jobs.Snapshot{}, fmt.Errorf("service: decode job snapshot: %w", err)
	}
	return snap, nil
}

// JobResult fetches a finished job's bytes (GET /v1/jobs/{id}/result).
// The CallInfo carries the execution's cache disposition and raw body —
// byte-identical to what POST /v1/run returns for the same request.
// ErrJobPending is returned while the job is still queued or running.
func (c *Client) JobResult(ctx context.Context, id string) (*Response, *CallInfo, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, nil, err
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, nil, err
	}
	defer hres.Body.Close()
	body, err := io.ReadAll(hres.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("service: read response: %w", err)
	}
	info := &CallInfo{
		Cache:   hres.Header.Get(CacheHeader),
		Status:  hres.StatusCode,
		Body:    body,
		TraceID: hres.Header.Get(TraceHeader),
	}
	switch hres.StatusCode {
	case http.StatusConflict:
		return nil, info, ErrJobPending
	case http.StatusOK:
	default:
		return nil, info, fmt.Errorf("service: GET /v1/jobs/%s/result: %s: %s", id, hres.Status, strings.TrimSpace(string(body)))
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, info, fmt.Errorf("service: decode response: %w", err)
	}
	return &resp, info, nil
}

// CancelJob requests cancellation (DELETE /v1/jobs/{id}); applied is
// false when the job was already terminal.
func (c *Client) CancelJob(ctx context.Context, id string) (snap jobs.Snapshot, applied bool, err error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return jobs.Snapshot{}, false, err
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return jobs.Snapshot{}, false, err
	}
	defer hres.Body.Close()
	body, err := io.ReadAll(hres.Body)
	if err != nil {
		return jobs.Snapshot{}, false, err
	}
	if hres.StatusCode != http.StatusOK {
		return jobs.Snapshot{}, false, fmt.Errorf("service: DELETE /v1/jobs/%s: %s: %s", id, hres.Status, strings.TrimSpace(string(body)))
	}
	var doc struct {
		jobs.Snapshot
		Applied bool `json:"applied"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return jobs.Snapshot{}, false, fmt.Errorf("service: decode cancel response: %w", err)
	}
	return doc.Snapshot, doc.Applied, nil
}

// JobEvents follows one job's NDJSON event stream
// (GET /v1/jobs/{id}/events), invoking fn per event until the stream
// ends (job terminal), fn returns an error, or ctx is done.
func (c *Client) JobEvents(ctx context.Context, id string, fn func(jobs.Event) error) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(hres.Body)
		return fmt.Errorf("service: GET /v1/jobs/%s/events: %s: %s", id, hres.Status, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(hres.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e jobs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			return fmt.Errorf("service: decode job event: %w", err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return sc.Err()
}

// WaitJob polls until the job reaches a terminal state (or ctx is done)
// and returns the final snapshot.
func (c *Client) WaitJob(ctx context.Context, id string) (jobs.Snapshot, error) {
	ticker := time.NewTicker(jobsWaitPoll)
	defer ticker.Stop()
	for {
		snap, err := c.Job(ctx, id)
		if err != nil {
			return snap, err
		}
		if snap.State.Terminal() {
			return snap, nil
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return snap, ctx.Err()
		}
	}
}
