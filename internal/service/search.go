package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"adassure/internal/runner"
	"adassure/internal/search"
	"adassure/internal/telemetry"
)

// SearchRequest is one adversarial-search campaign for POST /v1/search.
// The zero value of every field means "the campaign default", so `{}`
// descends the default channels against the full catalog. Campaigns are
// deterministic in the canonicalized request, so the result cache and
// single-flight coalescing apply exactly as for /v1/run and /v1/mutate.
type SearchRequest struct {
	// Controller is the lateral controller under test (default
	// "pure-pursuit").
	Controller string `json:"controller,omitempty"`
	// Tracks are the route names (default urban-loop + hairpin).
	Tracks []string `json:"tracks,omitempty"`
	// Channels is the search space (default: the monotone channel set).
	// Each entry is an operator name plus optional magnitude range and
	// activation window.
	Channels []search.Spec `json:"channels,omitempty"`
	// Assertions optionally restricts the catalog to an ID subset.
	Assertions []string `json:"assertions,omitempty"`
	// Mode is "descent" (default) or "cem".
	Mode string `json:"mode,omitempty"`
	// Seed drives all stochastic components (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Budget caps oracle evaluations per track × channel (descent) or per
	// track (cem); default 16/48, capped by maxSearchEvals.
	Budget int `json:"budget,omitempty"`
	// Duration is the simulated seconds per probe run (default 60, capped
	// by the server's MaxDuration).
	Duration float64 `json:"duration,omitempty"`
}

// maxSearchEvals bounds the total oracle evaluations one request may ask
// for, keeping a single admission slot's work comparable to one campaign.
const maxSearchEvals = 128

// Canonicalize validates the request and fills every defaultable field, so
// equivalent campaigns collapse onto one cache key. The receiver is not
// mutated.
func (r SearchRequest) Canonicalize(maxDuration float64) (SearchRequest, error) {
	if r.Controller == "" {
		r.Controller = "pure-pursuit"
	}
	if len(r.Tracks) == 0 {
		r.Tracks = []string{"urban-loop", "hairpin"}
	}
	if len(r.Channels) == 0 {
		r.Channels = search.DefaultChannels()
	}
	if r.Mode == "" {
		r.Mode = search.ModeDescent
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Budget == 0 {
		if r.Mode == search.ModeCEM {
			r.Budget = 48
		} else {
			r.Budget = 16
		}
	}
	if r.Duration == 0 {
		r.Duration = 60
	}

	if !contains(validControllers, r.Controller) {
		return r, fmt.Errorf("unknown controller %q (have %v)", r.Controller, validControllers)
	}
	for _, tr := range r.Tracks {
		if !contains(validTracks, tr) {
			return r, fmt.Errorf("unknown track %q (have %v)", tr, validTracks)
		}
	}
	if r.Mode != search.ModeDescent && r.Mode != search.ModeCEM {
		return r, fmt.Errorf("unknown mode %q (want %q or %q)", r.Mode, search.ModeDescent, search.ModeCEM)
	}
	if !finite(r.Duration) || r.Duration <= 0 {
		return r, fmt.Errorf("duration must be a positive finite number of seconds, got %v", r.Duration)
	}
	if maxDuration > 0 && r.Duration > maxDuration {
		return r, fmt.Errorf("duration %g s exceeds the server cap of %g s", r.Duration, maxDuration)
	}
	if r.Budget < 1 {
		return r, fmt.Errorf("budget must be >= 1, got %d", r.Budget)
	}
	canon := make([]search.Spec, len(r.Channels))
	seen := map[string]bool{}
	for i, ch := range r.Channels {
		cc, err := ch.Canonicalize()
		if err != nil {
			return r, err
		}
		if seen[cc.ID()] {
			return r, fmt.Errorf("duplicate channel %q", cc.ID())
		}
		seen[cc.ID()] = true
		canon[i] = cc
	}
	r.Channels = canon
	evals := r.Budget * len(r.Tracks)
	if r.Mode == search.ModeDescent {
		evals *= len(r.Channels)
	}
	if evals > maxSearchEvals {
		return r, fmt.Errorf("search of %d probe runs exceeds the cap of %d (lower the budget, channels or tracks)",
			evals, maxSearchEvals)
	}
	return r, nil
}

// Key returns the content address of a canonicalized search request. The
// encoding is namespaced so a search can never collide with a /v1/run
// scenario or a /v1/mutate campaign in the shared cache.
func (r SearchRequest) Key() string {
	b, err := json.Marshal(r)
	if err != nil {
		// A canonical SearchRequest holds only finite floats, strings and
		// ints; Marshal cannot fail on it.
		panic(fmt.Sprintf("service: marshal canonical search request: %v", err))
	}
	sum := sha256.Sum256(append([]byte("search\n"), b...))
	return hex.EncodeToString(sum[:])
}

// Config converts a canonicalized request into the campaign it executes.
// Workers is left at the engine default: one admission slot owns the
// campaign, and the engine fans its (bounded) probes across its own pool —
// the report is byte-identical either way.
func (r SearchRequest) Config() search.Config {
	return search.Config{
		Controller: r.Controller,
		Tracks:     r.Tracks,
		Channels:   r.Channels,
		Assertions: r.Assertions,
		Mode:       r.Mode,
		Seed:       r.Seed,
		Budget:     r.Budget,
		Duration:   r.Duration,
	}
}

// handleSearch is the adversarial-search endpoint: decode → canonicalize →
// cache → single-flight → pool → respond with the evasion-frontier report.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	sp := telemetry.SpanFrom(r.Context())
	start := time.Now()
	defer func() {
		s.reqNS.ObserveEx(time.Since(start).Nanoseconds(), sp.TraceID().String())
	}()

	var req SearchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.badReqs.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody("decode request: "+err.Error()))
		return
	}
	canon, err := req.Canonicalize(s.cfg.MaxDuration)
	if err != nil {
		s.badReqs.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody("invalid request: "+err.Error()))
		return
	}
	key := canon.Key()

	lookup := sp.StartChild("cache.lookup")
	if body, ok := s.cache.get(key); ok {
		lookup.SetAttr("disposition", "hit")
		lookup.End()
		w.Header().Set(CacheHeader, "hit")
		writeJSON(w, http.StatusOK, body)
		return
	}

	call, leader := s.flight.join(key)
	disposition := "coalesced"
	var wait *telemetry.Span
	if leader {
		disposition = "miss"
		call.setOwner(sp)
		wait = sp.StartChild("queue.wait")
		if err := s.submitSearch(key, canon, call, sp, wait); err != nil {
			wait.End()
			s.flight.forget(key)
			status := http.StatusServiceUnavailable
			if errors.Is(err, runner.ErrQueueFull) {
				status = http.StatusTooManyRequests
				s.shedded.Inc()
			}
			call.finish(errorBody(err.Error()), status, err)
		}
	} else {
		s.coalesced.Inc()
		wait = sp.StartChild("coalesced.wait")
		if owner := call.ownerRef(); owner != nil {
			wait.AddLink(owner.trace, owner.span)
			wait.SetAttr("executing_trace", owner.trace.String())
		}
	}
	lookup.SetAttr("disposition", disposition)
	lookup.End()

	select {
	case <-call.done:
	case <-r.Context().Done():
		if !leader {
			wait.End()
		}
		return
	}
	if !leader {
		wait.End()
	}
	if call.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(s.cfg.RetryAfter)))
	}
	if call.status == http.StatusOK {
		w.Header().Set(CacheHeader, disposition)
	}
	writeJSON(w, call.status, call.body)
}

// submitSearch hands the campaign to the pool, mirroring submit.
func (s *Server) submitSearch(key string, req SearchRequest, call *flightCall, parent, wait *telemetry.Span) error {
	if s.closed.Load() {
		return fmt.Errorf("service: shutting down")
	}
	return s.pool.TrySubmit(s.baseCtx, func(ctx context.Context) {
		wait.End()
		s.executeSearch(ctx, key, req, call, parent)
	}, func(recovered any) {
		s.simErrors.Inc()
		s.flight.forget(key)
		call.finish(errorBody(fmt.Sprint(recovered)), http.StatusInternalServerError, nil)
	})
}

// executeSearch runs one campaign under the per-request budget and
// publishes the report to cache and waiters.
func (s *Server) executeSearch(ctx context.Context, key string, req SearchRequest, call *flightCall, parent *telemetry.Span) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
	defer cancel()

	ex := parent.StartChild("execute")
	start := time.Now()
	cfg := req.Config()
	cfg.Context = ctx
	cfg.Obs = s.reg // aggregate sim/monitor metrics across all probe runs
	rep, err := search.Run(cfg)
	s.runNS.ObserveEx(time.Since(start).Nanoseconds(), parent.TraceID().String())
	if err != nil {
		ex.SetAttr("error", err.Error())
	}
	ex.End()

	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
			s.timeouts.Inc()
		case errors.Is(err, context.Canceled):
			status = http.StatusServiceUnavailable
		default:
			s.simErrors.Inc()
		}
		s.flight.forget(key)
		call.finish(errorBody("run search: "+err.Error()), status, err)
		return
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		s.simErrors.Inc()
		s.flight.forget(key)
		call.finish(errorBody("encode report: "+err.Error()), http.StatusInternalServerError, err)
		return
	}
	body := buf.Bytes()
	// Publish to the cache before forgetting the call — same ordering
	// argument as execute.
	s.cache.put(key, body)
	s.flight.forget(key)
	call.finish(body, http.StatusOK, nil)
}
