package service

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"adassure/internal/jobs"
)

// TestJobResultMatchesSyncRunByteForByte is the differential acceptance
// test of the async tier: a job's result bytes are identical to what the
// synchronous /v1/run path produces for the same request, the job fills
// the same cache entry (so the sync run afterwards is a hit), and exactly
// one simulation happens.
func TestJobResultMatchesSyncRunByteForByte(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	snap, err := c.SubmitJob(ctx, spoofRequest())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if snap.State != jobs.StateQueued && snap.State != jobs.StateRunning {
		t.Fatalf("submitted job state %q", snap.State)
	}
	if snap.Key == "" {
		t.Fatal("job snapshot has no content-address key")
	}
	final, err := c.WaitJob(ctx, snap.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != jobs.StateDone {
		t.Fatalf("job ended %q (%s), want done", final.State, final.Error)
	}
	if final.Cache != "miss" {
		t.Fatalf("first job cache disposition %q, want miss", final.Cache)
	}
	resp, info, err := c.JobResult(ctx, snap.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if info.Status != http.StatusOK {
		t.Fatalf("result status %d", info.Status)
	}
	if len(resp.Violations) == 0 {
		t.Fatal("job result carries no violations")
	}

	// The synchronous path must now hit the entry the job cached, with
	// byte-identical content.
	_, syncInfo, err := c.Run(ctx, spoofRequest())
	if err != nil {
		t.Fatalf("sync run: %v", err)
	}
	if syncInfo.Cache != "hit" {
		t.Fatalf("sync run after job: disposition %q, want hit", syncInfo.Cache)
	}
	if !bytes.Equal(info.Body, syncInfo.Body) {
		t.Fatal("job result bytes differ from /v1/run bytes")
	}

	// A second submission of the same request is a new job but a cache
	// hit — still exactly one simulation in total.
	snap2, err := c.SubmitJob(ctx, spoofRequest())
	if err != nil {
		t.Fatalf("second submit: %v", err)
	}
	if snap2.ID == snap.ID {
		t.Fatal("two submissions shared a job ID")
	}
	final2, err := c.WaitJob(ctx, snap2.ID)
	if err != nil {
		t.Fatalf("second wait: %v", err)
	}
	if final2.Cache != "hit" {
		t.Fatalf("second job cache disposition %q, want hit", final2.Cache)
	}
	if got := s.Registry().Counter("sim.runs").Value(); got != 1 {
		t.Fatalf("sim.runs = %d, want 1", got)
	}
	if got := s.Registry().Counter("jobs.done").Value(); got != 2 {
		t.Fatalf("jobs.done = %d, want 2", got)
	}
}

// TestJobEventsStreamFollowsToTerminal: the NDJSON event stream replays
// the queued event and follows the job to its done event with strictly
// increasing sequence numbers.
func TestJobEventsStreamFollowsToTerminal(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	snap, err := c.SubmitJob(ctx, Request{Duration: 10})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var events []jobs.Event
	if err := c.JobEvents(ctx, snap.ID, func(e jobs.Event) error {
		events = append(events, e)
		return nil
	}); err != nil {
		t.Fatalf("events: %v", err)
	}
	if len(events) < 3 {
		t.Fatalf("got %d events, want at least queued/started/done", len(events))
	}
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if events[0].Kind != jobs.EventQueued {
		t.Fatalf("first event %q, want queued", events[0].Kind)
	}
	last := events[len(events)-1]
	if last.Kind != jobs.EventDone || last.State != jobs.StateDone {
		t.Fatalf("final event %q/%q, want done/done", last.Kind, last.State)
	}
}

// TestJobQueueFullSheds: with one dispatcher and a one-slot queue, a
// burst of distinct jobs is shed with the typed 429 answer.
func TestJobQueueFullSheds(t *testing.T) {
	_, c := newTestServer(t, Config{
		Workers: 1,
		Jobs:    JobsLimits{Workers: 1, QueueDepth: 1},
	})
	ctx := context.Background()

	var accepted []string
	var shed int
	for i := 0; i < 8; i++ {
		req := spoofRequest()
		req.Seed = int64(100 + i) // distinct keys: no coalescing shortcut
		snap, err := c.SubmitJob(ctx, req)
		var qf *QueueFullError
		switch {
		case errors.As(err, &qf):
			if qf.RetryAfter <= 0 {
				t.Fatal("429 without a Retry-After hint")
			}
			shed++
		case err != nil:
			t.Fatalf("submit %d: %v", i, err)
		default:
			accepted = append(accepted, snap.ID)
		}
	}
	if shed == 0 {
		t.Fatal("burst of 8 jobs into a 1-deep queue shed nothing")
	}
	for _, id := range accepted {
		if _, err := c.WaitJob(ctx, id); err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
	}
}

// TestJobCancelAndNotFound: cancelling a finished job applies nothing;
// unknown IDs answer 404 on every job route.
func TestJobCancelAndNotFound(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	snap, err := c.SubmitJob(ctx, Request{Duration: 10})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := c.WaitJob(ctx, snap.ID); err != nil {
		t.Fatalf("wait: %v", err)
	}
	got, applied, err := c.CancelJob(ctx, snap.ID)
	if err != nil {
		t.Fatalf("cancel finished job: %v", err)
	}
	if applied {
		t.Fatal("cancel of a finished job reported applied")
	}
	if got.State != jobs.StateDone {
		t.Fatalf("finished job state after cancel %q", got.State)
	}

	if _, err := c.Job(ctx, "deadbeefdeadbeefdeadbeefdeadbeef"); err == nil {
		t.Fatal("unknown job GET did not fail")
	}
	if _, _, err := c.JobResult(ctx, "deadbeefdeadbeefdeadbeefdeadbeef"); err == nil {
		t.Fatal("unknown job result did not fail")
	}
	if _, _, err := c.CancelJob(ctx, "deadbeefdeadbeefdeadbeefdeadbeef"); err == nil {
		t.Fatal("unknown job cancel did not fail")
	}
}

// TestJobsDisabled: with the tier off, /v1/jobs answers 404.
func TestJobsDisabled(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, Jobs: JobsLimits{Disable: true}})
	if _, err := c.SubmitJob(context.Background(), Request{Duration: 10}); err == nil {
		t.Fatal("submit succeeded with the job tier disabled")
	}
}

// TestJobTraceCorrelation: the job snapshot carries the submitting
// request's trace ID, and the trace gains the job.execute child.
func TestJobTraceCorrelation(t *testing.T) {
	_, c := newTestServer(t, tracedConfig(2))
	ctx := context.Background()

	snap, err := c.SubmitJob(ctx, Request{Duration: 10})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if snap.TraceID == "" {
		t.Fatal("job snapshot has no trace ID")
	}
	if _, err := c.WaitJob(ctx, snap.ID); err != nil {
		t.Fatalf("wait: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		body, err := c.Trace(ctx, snap.TraceID)
		if err == nil && bytes.Contains(body, []byte("job.execute")) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never gained a job.execute span (err %v)", snap.TraceID, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
