package service

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"adassure/internal/jobs"
	"adassure/internal/obs"
)

// testFleet is a coordinator plus its in-process worker fleet.
type testFleet struct {
	coord   *Server
	client  *Client
	fleet   *Fleet
	reg     *obs.Registry // coordinator-side registry
	workers []*Server
	servers []*httptest.Server
}

// newTestFleet starts n standalone workers and one coordinator routing
// over them. The health checker runs on a long interval so tests control
// health transitions through traffic, not timing.
func newTestFleet(t testing.TB, n int) *testFleet {
	t.Helper()
	tf := &testFleet{reg: obs.NewRegistry()}
	peers := make([]string, n)
	for i := 0; i < n; i++ {
		w := New(Config{Workers: 1})
		hs := httptest.NewServer(w.Handler())
		tf.workers = append(tf.workers, w)
		tf.servers = append(tf.servers, hs)
		peers[i] = hs.URL
	}
	fleet, err := NewFleet(FleetConfig{
		Peers:          peers,
		HealthInterval: time.Hour, // probes driven by traffic only
		Obs:            tf.reg,
	})
	if err != nil {
		t.Fatalf("new fleet: %v", err)
	}
	tf.fleet = fleet
	tf.coord = New(Config{Obs: tf.reg, Fleet: fleet})
	hs := httptest.NewServer(tf.coord.Handler())
	tf.servers = append(tf.servers, hs)
	tf.client = NewClient(hs.URL)

	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := tf.coord.Close(ctx); err != nil {
			t.Errorf("coordinator close: %v", err)
		}
		for _, w := range tf.workers {
			_ = w.Close(ctx)
		}
		for _, hs := range tf.servers {
			hs.Close()
		}
	})
	return tf
}

// simRunsTotal sums sim.runs across all workers.
func (tf *testFleet) simRunsTotal() int64 {
	var total int64
	for _, w := range tf.workers {
		total += w.Registry().Counter("sim.runs").Value()
	}
	return total
}

// TestCoordinatorForwardsAndCachesOnWorker: a request through the
// coordinator executes on exactly one worker; repeating it is a cache
// hit on that same worker with byte-identical content, and the response
// names the worker that answered.
func TestCoordinatorForwardsAndCachesOnWorker(t *testing.T) {
	tf := newTestFleet(t, 3)
	ctx := context.Background()

	_, info, err := tf.client.Run(ctx, spoofRequest())
	if err != nil {
		t.Fatalf("run via coordinator: %v", err)
	}
	if info.Cache != "miss" {
		t.Fatalf("first forwarded run disposition %q, want miss", info.Cache)
	}
	_, info2, err := tf.client.Run(ctx, spoofRequest())
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if info2.Cache != "hit" {
		t.Fatalf("second forwarded run disposition %q, want hit (same owner)", info2.Cache)
	}
	if !bytes.Equal(info.Body, info2.Body) {
		t.Fatal("forwarded bodies differ between miss and hit")
	}
	if got := tf.simRunsTotal(); got != 1 {
		t.Fatalf("fleet-wide sim.runs = %d, want 1", got)
	}
}

// TestCoordinatorSpreadsKeysAcrossWorkers: distinct keys land on more
// than one worker (the consistent-hash ring is actually routing, not
// funnelling everything to one backend).
func TestCoordinatorSpreadsKeysAcrossWorkers(t *testing.T) {
	tf := newTestFleet(t, 3)
	ctx := context.Background()

	for i := 0; i < 9; i++ {
		req := Request{Duration: 10, Seed: int64(i + 1)}
		if _, _, err := tf.client.Run(ctx, req); err != nil {
			t.Fatalf("run seed %d: %v", i+1, err)
		}
	}
	busy := 0
	for _, w := range tf.workers {
		if w.Registry().Counter("sim.runs").Value() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("9 distinct keys executed on %d worker(s), want routing across >= 2", busy)
	}
	if got := tf.simRunsTotal(); got != 9 {
		t.Fatalf("fleet-wide sim.runs = %d, want 9", got)
	}
}

// TestCoordinatorFailsOverWhenWorkerDies: killing one worker mid-fleet
// leaves every key serveable — its keys spill to the next replica on the
// ring, and the coordinator counts the failover.
func TestCoordinatorFailsOverWhenWorkerDies(t *testing.T) {
	tf := newTestFleet(t, 3)
	ctx := context.Background()
	deadName := workerName(tf.servers[0].URL)

	// Find a request the ring routes to worker 0 first, so its death is
	// guaranteed to be on the request's path (key ownership depends on
	// the randomly assigned test ports, so probe for one).
	var doomed Request
	found := false
	for seed := int64(1); seed <= 512 && !found; seed++ {
		req := Request{Duration: 10, Seed: seed}
		canon, err := req.Canonicalize(600)
		if err != nil {
			t.Fatal(err)
		}
		if tf.fleet.Ring().Owner(canon.Key()).Name == deadName {
			doomed, found = req, true
		}
	}
	if !found {
		t.Fatal("no key owned by worker 0 in 512 seeds — ring badly unbalanced")
	}

	// Kill worker 0's listener (the service stays up; the transport dies,
	// which is what a SIGKILL looks like from the coordinator).
	tf.servers[0].CloseClientConnections()
	tf.servers[0].Close()

	_, info, err := tf.client.Run(ctx, doomed)
	if err != nil {
		t.Fatalf("run after worker death: %v", err)
	}
	if info.Status != 200 {
		t.Fatalf("status %d after failover", info.Status)
	}
	if tf.workers[0].Registry().Counter("sim.runs").Value() != 0 {
		t.Fatal("dead worker executed something")
	}
	if got := tf.simRunsTotal(); got != 1 {
		t.Fatalf("fleet-wide sim.runs = %d, want 1", got)
	}
	if tf.reg.Counter("coord.failovers").Value() == 0 {
		t.Fatal("no failover counted after the key's owner died")
	}

	// The transport failure marked the worker down passively: later
	// requests route around it without another failover attempt.
	before := tf.reg.Counter("coord.failovers").Value()
	if _, _, err := tf.client.Run(ctx, doomed); err != nil {
		t.Fatalf("second run after failover: %v", err)
	}
	if got := tf.reg.Counter("coord.failovers").Value(); got != before {
		t.Fatalf("failovers grew %d → %d on a down-marked worker", before, got)
	}
}

// TestCoordinatorJobsForwardOverRing: the async job API works in
// coordinator mode — the job result reports the executing worker and is
// byte-identical to a direct worker answer.
func TestCoordinatorJobsForwardOverRing(t *testing.T) {
	tf := newTestFleet(t, 2)
	ctx := context.Background()

	snap, err := tf.client.SubmitJob(ctx, spoofRequest())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := tf.client.WaitJob(ctx, snap.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != jobs.StateDone {
		t.Fatalf("job ended %q (%s)", final.State, final.Error)
	}
	if final.Worker == "" {
		t.Fatal("fleet job snapshot names no worker")
	}
	_, info, err := tf.client.JobResult(ctx, snap.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	// The owning worker serves the same bytes directly, now as a hit.
	var owner *Client
	for i, hs := range tf.servers[:len(tf.workers)] {
		if workerName(hs.URL) == final.Worker {
			owner = NewClient(tf.servers[i].URL)
		}
	}
	if owner == nil {
		t.Fatalf("job worker %q not among the fleet", final.Worker)
	}
	_, direct, err := owner.Run(ctx, spoofRequest())
	if err != nil {
		t.Fatalf("direct worker run: %v", err)
	}
	if direct.Cache != "hit" {
		t.Fatalf("owner disposition %q, want hit", direct.Cache)
	}
	if !bytes.Equal(info.Body, direct.Body) {
		t.Fatal("job result differs from the owning worker's bytes")
	}
	if got := tf.simRunsTotal(); got != 1 {
		t.Fatalf("fleet-wide sim.runs = %d, want 1", got)
	}
}

// TestCoordinatorReadyzReportsMembership: the coordinator's readiness
// body carries the ring membership with health bits.
func TestCoordinatorReadyzReportsMembership(t *testing.T) {
	tf := newTestFleet(t, 2)
	body, err := tf.client.getJSON(context.Background(), "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	for _, hs := range tf.servers[:2] {
		if !bytes.Contains(body, []byte(workerName(hs.URL))) {
			t.Fatalf("readyz body missing worker %s: %s", workerName(hs.URL), body)
		}
	}
	if !bytes.Contains(body, []byte("workers_healthy")) {
		t.Fatalf("readyz body missing workers_healthy: %s", body)
	}
}
