package service

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"adassure/internal/obs"
	"adassure/internal/store"
)

// restartableServer opens a store in dir and serves with it; closing the
// returned cleanup simulates a process restart (the next open replays
// the same segments).
func serverWithStore(t *testing.T, dir string) (*Server, *Client, func()) {
	t.Helper()
	reg := obs.NewRegistry()
	st, err := store.Open(dir, store.Options{Obs: reg})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	s := New(Config{Workers: 1, Store: st, Obs: reg})
	c, stop := clientFor(t, s)
	return s, c, stop
}

// clientFor serves s over httptest and returns a client plus a stopper
// that shuts both down (unlike newTestServer's t.Cleanup, callable
// mid-test to model a restart).
func clientFor(t *testing.T, s *Server) (*Client, func()) {
	t.Helper()
	hs := httptest.NewServer(s.Handler())
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("server close: %v", err)
		}
	}
	t.Cleanup(stop)
	return NewClient(hs.URL), stop
}

// TestStoreTierServesAcrossRestart: evidence computed before a restart
// is served from the persistent store afterwards — byte-identical, with
// the "store" disposition, no re-simulation, and promoted back into the
// LRU so the next request is a plain hit.
func TestStoreTierServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1, c1, stop1 := serverWithStore(t, dir)
	_, info1, err := c1.Run(ctx, spoofRequest())
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if info1.Cache != "miss" {
		t.Fatalf("first run disposition %q", info1.Cache)
	}
	if got := s1.Registry().Counter("store.puts").Value(); got != 1 {
		t.Fatalf("store.puts = %d, want 1", got)
	}
	stop1() // "restart": the LRU dies with the process, the segments stay

	s2, c2, _ := serverWithStore(t, dir)
	_, info2, err := c2.Run(ctx, spoofRequest())
	if err != nil {
		t.Fatalf("run after restart: %v", err)
	}
	if info2.Cache != "store" {
		t.Fatalf("post-restart disposition %q, want store", info2.Cache)
	}
	if !bytes.Equal(info1.Body, info2.Body) {
		t.Fatal("store served different bytes than the original run")
	}
	if got := s2.Registry().Counter("sim.runs").Value(); got != 0 {
		t.Fatalf("sim.runs after restart = %d, want 0 (store must not re-simulate)", got)
	}

	// The store read promoted the entry into the LRU.
	_, info3, err := c2.Run(ctx, spoofRequest())
	if err != nil {
		t.Fatalf("third run: %v", err)
	}
	if info3.Cache != "hit" {
		t.Fatalf("post-promotion disposition %q, want hit", info3.Cache)
	}
}

// TestStoreTierDisabledCacheStillPersists: with the LRU disabled
// (negative cap) the store alone serves repeats without re-simulating —
// the tiers are independent.
func TestStoreTierDisabledCacheStillPersists(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	s := New(Config{Workers: 1, CacheBytes: -1, Store: st})
	c, _ := clientFor(t, s)
	ctx := context.Background()

	_, info1, err := c.Run(ctx, Request{Duration: 10})
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if info1.Cache != "miss" {
		t.Fatalf("first disposition %q", info1.Cache)
	}
	_, info2, err := c.Run(ctx, Request{Duration: 10})
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if info2.Cache != "store" {
		t.Fatalf("second disposition %q, want store (LRU is off)", info2.Cache)
	}
	if !bytes.Equal(info1.Body, info2.Body) {
		t.Fatal("store bytes differ from fresh bytes")
	}
	if got := s.Registry().Counter("sim.runs").Value(); got != 1 {
		t.Fatalf("sim.runs = %d, want 1", got)
	}
}
