package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adassure/internal/jobs"
	"adassure/internal/obs"
)

// RunJobLoad drives the server through the async job API: each logical
// request is one submit → wait → fetch-result cycle, with
// opts.Concurrency cycles in flight. The report's latency is the full
// submit-to-terminal wall time per job, and the cache split comes from
// each job's result disposition — directly comparable to a RunLoad
// report over the same request mix.
func RunJobLoad(ctx context.Context, c *Client, base Request, opts LoadOptions) (*LoadReport, error) {
	if opts.Requests <= 0 {
		opts.Requests = 100
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	var (
		latNS     = reg.Histogram("load.job_ns")
		okCtr     = reg.Counter("load.ok")
		errCtr    = reg.Counter("load.errors")
		fullCtr   = reg.Counter("load.queue_full")
		hitCtr    = reg.Counter("load.cache_hits")
		missCtr   = reg.Counter("load.cache_misses")
		coalCtr   = reg.Counter("load.coalesced")
		storeCtr  = reg.Counter("load.store_hits")
		next      atomic.Int64
		firstErr  error
		errOnce   sync.Once
		completed atomic.Int64
	)
	fail := func(err error) {
		errCtr.Inc()
		errOnce.Do(func() { firstErr = err })
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(opts.Requests) || ctx.Err() != nil {
					return
				}
				req := base
				if opts.SpreadSeeds > 0 {
					if req.Seed == 0 {
						req.Seed = 1
					}
					req.Seed += i % int64(opts.SpreadSeeds)
				}
				t0 := time.Now()
				snap, err := c.SubmitJob(ctx, req)
				var qf *QueueFullError
				if errors.As(err, &qf) {
					completed.Add(1)
					fullCtr.Inc()
					if opts.Backoff {
						select {
						case <-time.After(qf.RetryAfter):
						case <-ctx.Done():
							return
						}
					}
					continue
				}
				if err != nil {
					completed.Add(1)
					fail(err)
					continue
				}
				final, err := c.WaitJob(ctx, snap.ID)
				latNS.Observe(time.Since(t0).Nanoseconds())
				completed.Add(1)
				if err != nil {
					fail(err)
					continue
				}
				if final.State != jobs.StateDone {
					fail(fmt.Errorf("job %s ended %s: %s", final.ID, final.State, final.Error))
					continue
				}
				okCtr.Inc()
				switch final.Cache {
				case "hit":
					hitCtr.Inc()
				case "miss":
					missCtr.Inc()
				case "coalesced":
					coalCtr.Inc()
				case "store":
					storeCtr.Inc()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{
		Requests:     completed.Load(),
		Errors:       errCtr.Value(),
		QueueFull:    fullCtr.Value(),
		Hits:         hitCtr.Value(),
		Misses:       missCtr.Value(),
		Coalesced:    coalCtr.Value(),
		Stores:       storeCtr.Value(),
		Elapsed:      elapsed,
		Latency:      latNS.Summary(),
		QueueWaitP95: scrapeQueueWaitP95(ctx, c),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.Throughput = float64(okCtr.Value()) / secs
	}
	if rep.Requests > 0 && rep.Errors == rep.Requests {
		return rep, fmt.Errorf("service: job load run failed entirely: %w", firstErr)
	}
	return rep, nil
}
