package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"adassure/internal/mutate"
)

// smallCampaign is the cheap /v1/mutate request of the tests: 3 mutants +
// 1 baseline on one short route = 4 simulations.
func smallCampaign() MutateRequest {
	return MutateRequest{
		Tracks: []string{"urban-loop"},
		Mutants: []mutate.Spec{
			{Op: mutate.OpIdentity},
			{Op: mutate.OpGainFlip},
			{Op: mutate.OpGNSSDropout, Param: 5},
		},
		Duration: 20,
	}
}

// postMutate posts a body (raw JSON) to /v1/mutate and returns the
// response.
func postMutate(t *testing.T, c *Client, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := c.httpClient().Post(c.BaseURL+"/v1/mutate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// errorEnvelope decodes the uniform JSON error body and returns its
// message, failing the test when the body is not the envelope.
func errorEnvelope(t *testing.T, body []byte) string {
	t.Helper()
	var env map[string]string
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not the JSON envelope: %v (body %q)", err, body)
	}
	if env["error"] == "" {
		t.Fatalf("error envelope has no error message: %q", body)
	}
	return env["error"]
}

// TestMutateEndToEnd runs a small campaign through the service: the
// response is a kill-matrix report (gain-flip killed, identity survived),
// and repeating the request is a cache hit with byte-identical body and no
// re-simulation.
func TestMutateEndToEnd(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2})
	reqBody, err := json.Marshal(smallCampaign())
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postMutate(t, c, reqBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(CacheHeader); got != "miss" {
		t.Fatalf("cache disposition %q, want miss", got)
	}
	rep, err := mutate.ReadJSON(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("response is not a campaign report: %v", err)
	}
	if sc, ok := rep.Score("ctrl-gain-flip"); !ok || !sc.Killed {
		t.Fatalf("gain-flip not killed in service campaign: %+v", sc)
	}
	if sc, _ := rep.Score("identity"); sc.Killed {
		t.Fatalf("identity killed in service campaign: %+v", sc)
	}

	resp2, body2 := postMutate(t, c, reqBody)
	if got := resp2.Header.Get(CacheHeader); got != "hit" {
		t.Fatalf("second call disposition %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("cached campaign body differs from fresh body")
	}
	// 3 mutants + 1 baseline on 1 track = 4 simulations, once.
	if got := s.Registry().Counter("sim.runs").Value(); got != 4 {
		t.Fatalf("sim.runs = %d, want 4 (cache must not re-run the campaign)", got)
	}
}

// TestMutateConcurrentCacheHit: K identical concurrent campaign requests
// from a cold cache cost exactly one campaign's worth of simulations —
// everyone else is coalesced onto the leader's flight call or served from
// the cache the leader filled.
func TestMutateConcurrentCacheHit(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2, QueueDepth: 16})
	reqBody, err := json.Marshal(smallCampaign())
	if err != nil {
		t.Fatal(err)
	}

	const K = 6
	bodies := make([][]byte, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postMutate(t, c, reqBody)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d, body %s", i, resp.StatusCode, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()

	for i := 1; i < K; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d received different bytes", i)
		}
	}
	if got := s.Registry().Counter("sim.runs").Value(); got != 4 {
		t.Fatalf("sim.runs = %d, want exactly 4 (one campaign) for %d concurrent requests", got, K)
	}
}

// TestMutateBadRequests: malformed documents and invalid campaign
// parameters are 400s with the JSON error envelope, before any simulation
// runs.
func TestMutateBadRequests(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1})

	cases := []struct {
		name string
		body string
		want string // substring of the error message
	}{
		{"malformed JSON", `{"tracks": [`, "decode request"},
		{"unknown field", `{"mutantz": []}`, "decode request"},
		{"unknown mutant op", `{"mutants": [{"op": "ctrl-teleport"}]}`, "unknown operator"},
		{"bad mutant param", `{"mutants": [{"op": "ctrl-gain-scale", "param": -3}]}`, "outside"},
		{"duplicate mutants", `{"mutants": [{"op": "ctrl-gain-flip"}, {"op": "ctrl-gain-flip"}]}`, "duplicate"},
		{"unknown track", `{"tracks": ["moebius-strip"]}`, "unknown track"},
		{"unknown controller", `{"controller": "yolo"}`, "unknown controller"},
		{"negative duration", `{"duration": -3}`, "duration"},
		{"over duration cap", `{"duration": 1e9}`, "exceeds the server cap"},
		{"oversized grid", `{"tracks": ["urban-loop", "hairpin", "circle", "straight", "s-curve"]}`, "exceeds the cap"},
	}
	for _, tc := range cases {
		resp, body := postMutate(t, c, []byte(tc.body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (body %s)", tc.name, resp.StatusCode, body)
		}
		if msg := errorEnvelope(t, body); !strings.Contains(msg, tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, msg, tc.want)
		}
	}
	if got := s.Registry().Counter("sim.runs").Value(); got != 0 {
		t.Fatalf("invalid campaign requests triggered %d simulations", got)
	}
}

// TestUnknownRouteAndMethod: the JSON fallback answers unknown paths with
// a 404 envelope and wrong-method calls on real routes with 405 + Allow,
// instead of the mux's plain-text defaults.
func TestUnknownRouteAndMethod(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	hc := c.httpClient()

	resp, err := hc.Get(c.BaseURL + "/v1/no-such-endpoint")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route: status %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("unknown route: content type %q, want application/json", ct)
	}
	if msg := errorEnvelope(t, buf.Bytes()); !strings.Contains(msg, "unknown route") {
		t.Fatalf("404 message %q does not name the problem", msg)
	}

	for path, wrong := range map[string]string{
		"/v1/run":     http.MethodGet,
		"/v1/mutate":  http.MethodGet,
		"/v1/catalog": http.MethodPost,
		"/healthz":    http.MethodDelete,
	} {
		req, err := http.NewRequest(wrong, c.BaseURL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := hc.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		buf.Reset()
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d, want 405", wrong, path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow == "" {
			t.Fatalf("%s %s: 405 without an Allow header", wrong, path)
		}
		errorEnvelope(t, buf.Bytes())
	}
}

// TestMutateCanonicalizationSharesCacheEntry: a request spelled with
// explicit defaults (and default-parameter mutants) hits the cache entry
// of the equivalent bare request.
func TestMutateCanonicalizationSharesCacheEntry(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1})
	bare, err := json.Marshal(MutateRequest{
		Tracks:   []string{"urban-loop"},
		Mutants:  []mutate.Spec{{Op: mutate.OpGainScale}},
		Duration: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp, body := postMutate(t, c, bare); resp.StatusCode != http.StatusOK {
		t.Fatalf("bare request: status %d, body %s", resp.StatusCode, body)
	}
	explicit := []byte(`{"controller": "pure-pursuit", "tracks": ["urban-loop"],
		"mutants": [{"op": "ctrl-gain-scale", "param": 3}], "seed": 1, "duration": 10}`)
	resp, _ := postMutate(t, c, explicit)
	if got := resp.Header.Get(CacheHeader); got != "hit" {
		t.Fatalf("explicit spelling missed the cache (disposition %q)", got)
	}
	// 1 mutant + 1 baseline on 1 track, once.
	if got := s.Registry().Counter("sim.runs").Value(); got != 2 {
		t.Fatalf("sim.runs = %d, want 2", got)
	}
}

// TestMutateTimeout: a campaign exceeding the per-request budget is
// cancelled inside the running simulations and answered with 504.
func TestMutateTimeout(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, Timeout: 30 * time.Millisecond, MaxDuration: 1000})
	body, err := json.Marshal(MutateRequest{Tracks: []string{"urban-loop"}, Duration: 600})
	if err != nil {
		t.Fatal(err)
	}
	resp, out := postMutate(t, c, body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", resp.StatusCode, out)
	}
	errorEnvelope(t, out)
	if s.cache.len() != 0 {
		t.Fatal("timed-out campaign was cached")
	}
}
