package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adassure/internal/obs"
	"adassure/internal/stream"
)

// StreamOptions are the per-session knobs Client.Stream passes in the
// query string.
type StreamOptions struct {
	// Assertions restricts the session's catalog (empty = full catalog).
	Assertions []string
	// ThresholdScale overrides the catalog threshold scale when > 0.
	ThresholdScale float64
	// Heartbeat overrides the server's default heartbeat cadence when
	// >= 0 (frames between heartbeats; 0 disables). Negative keeps the
	// server default.
	Heartbeat int
	// OnEvent, when non-nil, receives each event as it arrives — before
	// it is appended to the result. Use it to react to violations while
	// frames are still being sent.
	OnEvent func(stream.Event)
}

// StreamResult is the collected outcome of one streaming session.
type StreamResult struct {
	// Status is the HTTP status (200 once any event streamed).
	Status int
	// Events is the full event transcript in arrival order.
	Events []stream.Event
	// Cache is the X-Adassure-Cache disposition — always "bypass" for
	// streams (they are never cached or coalesced).
	Cache string
	// TraceID is the session's trace ID from X-Adassure-Trace (empty when
	// the server traces nothing).
	TraceID string
}

// Closed returns the final session-closed event, if the stream delivered
// one.
func (r *StreamResult) Closed() (stream.Event, bool) {
	for i := len(r.Events) - 1; i >= 0; i-- {
		if r.Events[i].Kind == stream.EventSessionClosed {
			return r.Events[i], true
		}
	}
	return stream.Event{}, false
}

// Stream opens one online monitoring session: frames (NDJSON, one
// core.Frame object per line) are uploaded as a chunked request body
// while the event stream is decoded from the response as it arrives —
// one full-duplex HTTP exchange. It returns once the server closes the
// event stream. A session the server refused outright (structured 4xx
// close before any event) returns the decoded error and a result with
// the HTTP status and no events.
func (c *Client) Stream(ctx context.Context, frames io.Reader, opts StreamOptions) (*StreamResult, error) {
	q := url.Values{}
	if len(opts.Assertions) > 0 {
		q.Set("assertions", strings.Join(opts.Assertions, ","))
	}
	if opts.ThresholdScale > 0 {
		q.Set("threshold_scale", strconv.FormatFloat(opts.ThresholdScale, 'g', -1, 64))
	}
	if opts.Heartbeat >= 0 {
		q.Set("heartbeat", strconv.Itoa(opts.Heartbeat))
	}
	u := c.BaseURL + "/v1/stream"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, u, frames)
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/x-ndjson")
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()

	res := &StreamResult{
		Status:  hres.StatusCode,
		Cache:   hres.Header.Get(CacheHeader),
		TraceID: hres.Header.Get(TraceHeader),
	}
	if hres.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(hres.Body)
		return res, fmt.Errorf("service: stream: %s: %s", hres.Status, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(hres.Body)
	sc.Buffer(make([]byte, 64*1024), stream.MaxLineBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e stream.Event
		if err := json.Unmarshal(line, &e); err != nil {
			return res, fmt.Errorf("service: decode event: %w", err)
		}
		if opts.OnEvent != nil {
			opts.OnEvent(e)
		}
		res.Events = append(res.Events, e)
	}
	if err := sc.Err(); err != nil {
		return res, fmt.Errorf("service: read events: %w", err)
	}
	return res, nil
}

// StreamLoadOptions configures RunStreamLoad.
type StreamLoadOptions struct {
	// Sessions is the total session count (default 16).
	Sessions int
	// Concurrency is the number of parallel sessions (default 4).
	Concurrency int
	// Heartbeat is the per-session heartbeat cadence (default 0 = off —
	// pure violation traffic).
	Heartbeat int
	// Obs, when non-nil, receives the session latency histogram
	// (load.stream.session_ns) and outcome counters.
	Obs *obs.Registry
}

// StreamLoadReport summarises one streaming load run.
type StreamLoadReport struct {
	Sessions   int64
	Errors     int64
	Frames     int64
	Events     int64
	Violations int64
	// Bypass counts sessions whose cache disposition confirmed the
	// stream bypassed the result cache (all of them, on a current server).
	Bypass  int64
	Elapsed time.Duration
	// FrameRate is accepted frames per second across all sessions.
	FrameRate float64
	// Latency is the whole-session wall-time distribution.
	Latency obs.HistogramSummary
	// QueueWaitP95 is the server-side admission-queue wait p95 in
	// nanoseconds, scraped after the run (streams do not queue, but
	// concurrent batch traffic shows up here).
	QueueWaitP95 float64
}

// RunStreamLoad drives the streaming endpoint with opts.Concurrency
// parallel sessions, each uploading the same NDJSON frame document, and
// reports aggregate frame throughput — the measurement loop behind
// adassure-load's streaming mode.
func RunStreamLoad(ctx context.Context, c *Client, frames []byte, opts StreamLoadOptions) (*StreamLoadReport, error) {
	if opts.Sessions <= 0 {
		opts.Sessions = 16
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 4
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	var (
		sessNS    = reg.Histogram("load.stream.session_ns")
		errCtr    = reg.Counter("load.stream.errors")
		frameCtr  = reg.Counter("load.stream.frames")
		eventCtr  = reg.Counter("load.stream.events")
		violCtr   = reg.Counter("load.stream.violations")
		bypassCtr = reg.Counter("load.stream.bypass")
		next      atomic.Int64
		completed atomic.Int64
		firstErr  error
		errOnce   sync.Once
	)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(opts.Sessions) || ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				res, err := c.Stream(ctx, bytes.NewReader(frames), StreamOptions{
					Heartbeat: opts.Heartbeat,
				})
				sessNS.Observe(time.Since(t0).Nanoseconds())
				completed.Add(1)
				if err != nil {
					errCtr.Inc()
					errOnce.Do(func() { firstErr = err })
					continue
				}
				eventCtr.Add(int64(len(res.Events)))
				if res.Cache == "bypass" {
					bypassCtr.Inc()
				}
				if closed, ok := res.Closed(); ok {
					frameCtr.Add(closed.Frames)
					if closed.Stats != nil {
						violCtr.Add(closed.Stats.Violations)
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &StreamLoadReport{
		Sessions:     completed.Load(),
		Errors:       errCtr.Value(),
		Frames:       frameCtr.Value(),
		Events:       eventCtr.Value(),
		Violations:   violCtr.Value(),
		Bypass:       bypassCtr.Value(),
		Elapsed:      elapsed,
		Latency:      sessNS.Summary(),
		QueueWaitP95: scrapeQueueWaitP95(ctx, c),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.FrameRate = float64(rep.Frames) / secs
	}
	if rep.Sessions > 0 && rep.Errors == rep.Sessions {
		return rep, fmt.Errorf("service: streaming load failed entirely: %w", firstErr)
	}
	return rep, nil
}

// Print renders the report as the human-readable table adassure-load
// emits in streaming mode.
func (r *StreamLoadReport) Print(w io.Writer) {
	fmt.Fprintf(w, "sessions    %d (ok %d, errors %d)\n", r.Sessions, r.Sessions-r.Errors, r.Errors)
	fmt.Fprintf(w, "cache       bypass %d\n", r.Bypass)
	fmt.Fprintf(w, "frames      %d (%d events, %d violations)\n", r.Frames, r.Events, r.Violations)
	fmt.Fprintf(w, "elapsed     %.2f s\n", r.Elapsed.Seconds())
	fmt.Fprintf(w, "frame rate  %.0f frames/s\n", r.FrameRate)
	fmt.Fprintf(w, "session     p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  (mean %.2f ms, n=%d)\n",
		r.Latency.P50/1e6, r.Latency.P95/1e6, r.Latency.P99/1e6, r.Latency.Mean/1e6, r.Latency.Count)
	fmt.Fprintf(w, "queue wait  p95 %.2f ms (server-side)\n", r.QueueWaitP95/1e6)
}
