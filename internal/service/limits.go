package service

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// LimitError is one rejected resource-limit setting: which knob, the
// value given, and why it is nonsensical. Boot-time validation returns
// every violation joined (errors.Join), so an operator fixes one restart
// worth of mistakes, not one mistake per restart.
type LimitError struct {
	// Field names the limit in flag form, e.g. "-cache-bytes".
	Field string
	// Value is the rejected setting, rendered into the message.
	Value any
	// Reason explains the constraint the value breaks.
	Reason string
}

// Error implements error.
func (e *LimitError) Error() string {
	return fmt.Sprintf("limit %s=%v: %s", e.Field, e.Value, e.Reason)
}

// Limits is the full resource-limit surface of one server process,
// gathered in one place so boot can validate the combination — not each
// knob in isolation — and log a single summary line of the resolved
// values (the CoreLimits/sanitizeConfig pattern: explicit rejection with
// typed errors instead of silent clamping).
type Limits struct {
	// Workers is the simulation pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (0 = 2×workers).
	QueueDepth int
	// CacheBytes caps the in-memory result cache (negative disables).
	CacheBytes int64
	// Timeout is the per-request simulation budget.
	Timeout time.Duration
	// MaxDuration caps simulated seconds per request (negative disables).
	MaxDuration float64
	// StoreDir roots the persistent result store ("" disables it).
	StoreDir string
	// StoreBytes caps the persistent store (0 = default when StoreDir set).
	StoreBytes int64
	// JobWorkers is the async-job dispatcher count (0 = default 2).
	JobWorkers int
	// JobQueue bounds jobs admitted but not dispatched (0 = 8×JobWorkers).
	JobQueue int
	// JobRetention bounds finished jobs kept for polling (0 = 256).
	JobRetention int
}

// maxWorkers is a sanity ceiling: a simulation worker pins a core, so
// four thousand of them on one box is a typo, not a plan.
const maxWorkers = 4096

// minUsefulCacheBytes is the smallest cache that can hold even one
// clean-run response (~2 KiB); a positive cap below it silently caches
// nothing, which is exactly the misconfiguration validation exists to
// reject.
const minUsefulCacheBytes = 4 << 10

// minUsefulStoreBytes mirrors minUsefulCacheBytes for the persistent
// store, scaled to its segment granularity.
const minUsefulStoreBytes = 1 << 20

// Validate checks every limit and their combinations, returning all
// violations joined. A nil error means the combination is serveable.
func (l Limits) Validate() error {
	var errs []error
	bad := func(field string, value any, reason string) {
		errs = append(errs, &LimitError{Field: field, Value: value, Reason: reason})
	}
	if l.Workers < 0 {
		bad("-workers", l.Workers, "must be >= 0 (0 = GOMAXPROCS)")
	}
	if l.Workers > maxWorkers {
		bad("-workers", l.Workers, fmt.Sprintf("must be <= %d", maxWorkers))
	}
	if l.QueueDepth < 0 {
		bad("-queue", l.QueueDepth, "must be >= 0 (0 = 2x workers)")
	}
	if l.CacheBytes > 0 && l.CacheBytes < minUsefulCacheBytes {
		bad("-cache-bytes", l.CacheBytes,
			fmt.Sprintf("positive cap below %d bytes cannot hold one response; use a negative value to disable caching explicitly", minUsefulCacheBytes))
	}
	if l.Timeout < 0 {
		bad("-timeout", l.Timeout, "must be >= 0 (0 = default 60s)")
	}
	if l.StoreDir == "" && l.StoreBytes != 0 {
		bad("-store-bytes", l.StoreBytes, "set without -store-dir; the persistent store needs a directory")
	}
	if l.StoreDir != "" {
		if l.StoreBytes < 0 {
			bad("-store-bytes", l.StoreBytes, "must be >= 0 (0 = default 256 MiB)")
		} else if l.StoreBytes > 0 && l.StoreBytes < minUsefulStoreBytes {
			bad("-store-bytes", l.StoreBytes, fmt.Sprintf("must be >= %d bytes (one segment)", minUsefulStoreBytes))
		}
		if err := checkStoreDir(l.StoreDir); err != nil {
			bad("-store-dir", l.StoreDir, err.Error())
		}
	}
	if l.JobWorkers < 0 {
		bad("-jobs-workers", l.JobWorkers, "must be >= 0 (0 = default 2)")
	}
	if l.JobQueue < 0 {
		bad("-jobs-queue", l.JobQueue, "must be >= 0 (0 = 8x job workers)")
	}
	if l.JobRetention < 0 {
		bad("-jobs-retention", l.JobRetention, "must be >= 0 (0 = default 256)")
	}
	// Combination checks: each knob may be fine alone and still describe
	// a server that cannot work.
	workers := l.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if l.JobWorkers > 0 && l.Workers >= 0 && l.JobWorkers > 4*workers {
		bad("-jobs-workers", l.JobWorkers,
			fmt.Sprintf("more than 4x the %d simulation workers would be pure queueing, not parallelism", workers))
	}
	return errors.Join(errs...)
}

// checkStoreDir verifies the store directory is usable: an existing
// directory (or creatable path) that the process can write.
func checkStoreDir(dir string) error {
	info, err := os.Stat(dir)
	switch {
	case err == nil && !info.IsDir():
		return errors.New("exists but is not a directory")
	case err == nil:
		// Probe writability — a read-only store cannot persist results.
		probe := filepath.Join(dir, ".adassure-probe")
		f, err := os.Create(probe)
		if err != nil {
			return fmt.Errorf("not writable: %v", err)
		}
		f.Close()
		os.Remove(probe)
		return nil
	case os.IsNotExist(err):
		if parent := filepath.Dir(dir); parent != "" {
			if pinfo, perr := os.Stat(parent); perr == nil && !pinfo.IsDir() {
				return errors.New("parent is not a directory")
			}
		}
		return nil // Open will create it
	default:
		return fmt.Errorf("stat: %v", err)
	}
}

// LogSummary emits the single boot-time line recording every resolved
// limit, so the serving envelope of a process is greppable from its
// first log record.
func (l Limits) LogSummary(log *slog.Logger, role string) {
	if log == nil {
		return
	}
	workers := l.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := l.QueueDepth
	if queue == 0 {
		queue = 2 * workers
	}
	jobWorkers := l.JobWorkers
	if jobWorkers == 0 {
		jobWorkers = 2
	}
	jobQueue := l.JobQueue
	if jobQueue == 0 {
		jobQueue = 8 * jobWorkers
	}
	jobRetention := l.JobRetention
	if jobRetention == 0 {
		jobRetention = 256
	}
	storeBytes := l.StoreBytes
	if l.StoreDir != "" && storeBytes == 0 {
		storeBytes = 256 << 20
	}
	log.Info("limits",
		slog.String("role", role),
		slog.Int("workers", workers),
		slog.Int("queue", queue),
		slog.Int64("cache_bytes", l.CacheBytes),
		slog.Duration("timeout", l.Timeout),
		slog.Float64("max_duration", l.MaxDuration),
		slog.String("store_dir", l.StoreDir),
		slog.Int64("store_bytes", storeBytes),
		slog.Int("job_workers", jobWorkers),
		slog.Int("job_queue", jobQueue),
		slog.Int("job_retention", jobRetention),
	)
}
