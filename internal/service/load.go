package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"adassure/internal/obs"
)

// LoadOptions configures RunLoad.
type LoadOptions struct {
	// Requests is the total request count (default 100).
	Requests int
	// Concurrency is the number of in-flight requests (default 8).
	Concurrency int
	// SpreadSeeds cycles the request seed over this many values, forcing
	// cache misses; 0 sends the identical request every time (pure
	// cache-hit / coalescing load).
	SpreadSeeds int
	// Backoff, when true, honours 429 Retry-After hints by sleeping and
	// retrying (each retry counts as a new request towards Requests);
	// false records the rejection and moves on.
	Backoff bool
	// Obs, when non-nil, receives the client-side latency histogram
	// (load.request_ns) and outcome counters; nil uses a private
	// registry. The report always reads from it.
	Obs *obs.Registry
}

// LoadReport summarises one load run. Latency quantiles come from the
// obs histogram that collected every request's wall time.
type LoadReport struct {
	Requests  int64
	Errors    int64
	QueueFull int64
	Hits      int64
	Misses    int64
	Coalesced int64
	// Stores counts responses served from the persistent store tier.
	Stores  int64
	Elapsed time.Duration
	// Throughput is completed (non-error) requests per second.
	Throughput float64
	// Latency is the client-observed request latency distribution.
	Latency obs.HistogramSummary
	// QueueWaitP95 is the server-side admission-queue wait p95 in
	// nanoseconds, scraped from the server's metrics after the run (0 when
	// the scrape failed or nothing queued) — the split between "the server
	// was slow" and "the queue was deep".
	QueueWaitP95 float64
}

// scrapeQueueWaitP95 pulls the runner.pool.queue_wait_ns p95 from the
// server's JSON metrics snapshot; a failed scrape degrades to 0 rather
// than failing the report.
func scrapeQueueWaitP95(ctx context.Context, c *Client) float64 {
	snap, err := c.Metrics(ctx)
	if err != nil {
		return 0
	}
	return snap.Histograms["runner.pool.queue_wait_ns"].P95
}

// RunLoad drives the server with opts.Concurrency workers until
// opts.Requests requests have completed, and reports throughput plus the
// latency distribution. It is the measurement loop behind adassure-load.
func RunLoad(ctx context.Context, c *Client, base Request, opts LoadOptions) (*LoadReport, error) {
	if opts.Requests <= 0 {
		opts.Requests = 100
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	var (
		latNS     = reg.Histogram("load.request_ns")
		okCtr     = reg.Counter("load.ok")
		errCtr    = reg.Counter("load.errors")
		fullCtr   = reg.Counter("load.queue_full")
		hitCtr    = reg.Counter("load.cache_hits")
		missCtr   = reg.Counter("load.cache_misses")
		coalCtr   = reg.Counter("load.coalesced")
		storeCtr  = reg.Counter("load.store_hits")
		next      atomic.Int64
		firstErr  error
		errOnce   sync.Once
		completed atomic.Int64
	)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(opts.Requests) || ctx.Err() != nil {
					return
				}
				req := base
				if opts.SpreadSeeds > 0 {
					if req.Seed == 0 {
						req.Seed = 1
					}
					req.Seed += i % int64(opts.SpreadSeeds)
				}
				t0 := time.Now()
				_, info, err := c.Run(ctx, req)
				latNS.Observe(time.Since(t0).Nanoseconds())
				completed.Add(1)
				var qf *QueueFullError
				switch {
				case errors.As(err, &qf):
					fullCtr.Inc()
					if opts.Backoff {
						select {
						case <-time.After(qf.RetryAfter):
						case <-ctx.Done():
							return
						}
					}
				case err != nil:
					errCtr.Inc()
					errOnce.Do(func() { firstErr = err })
				default:
					okCtr.Inc()
					switch info.Cache {
					case "hit":
						hitCtr.Inc()
					case "miss":
						missCtr.Inc()
					case "coalesced":
						coalCtr.Inc()
					case "store":
						storeCtr.Inc()
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{
		Requests:     completed.Load(),
		Errors:       errCtr.Value(),
		QueueFull:    fullCtr.Value(),
		Hits:         hitCtr.Value(),
		Misses:       missCtr.Value(),
		Coalesced:    coalCtr.Value(),
		Stores:       storeCtr.Value(),
		Elapsed:      elapsed,
		Latency:      latNS.Summary(),
		QueueWaitP95: scrapeQueueWaitP95(ctx, c),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.Throughput = float64(okCtr.Value()) / secs
	}
	if rep.Requests > 0 && rep.Errors == rep.Requests {
		// Every request failed the same way (server down, bad target):
		// surface the cause instead of an all-zero report.
		return rep, fmt.Errorf("service: load run failed entirely: %w", firstErr)
	}
	return rep, nil
}

// Print renders the report as the human-readable table adassure-load
// emits.
func (r *LoadReport) Print(w io.Writer) {
	fmt.Fprintf(w, "requests    %d (ok %d, errors %d, queue-full %d)\n",
		r.Requests, r.Requests-r.Errors-r.QueueFull, r.Errors, r.QueueFull)
	fmt.Fprintf(w, "cache       hit %d / miss %d / coalesced %d / store %d\n", r.Hits, r.Misses, r.Coalesced, r.Stores)
	fmt.Fprintf(w, "elapsed     %.2f s\n", r.Elapsed.Seconds())
	fmt.Fprintf(w, "throughput  %.1f req/s\n", r.Throughput)
	fmt.Fprintf(w, "latency     p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  (mean %.2f ms, n=%d)\n",
		r.Latency.P50/1e6, r.Latency.P95/1e6, r.Latency.P99/1e6, r.Latency.Mean/1e6, r.Latency.Count)
	fmt.Fprintf(w, "queue wait  p95 %.2f ms (server-side)\n", r.QueueWaitP95/1e6)
}
