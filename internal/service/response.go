package service

import (
	"encoding/json"
	"fmt"
	"math"

	"adassure"
	"adassure/internal/forensics"
)

// ResponseSchema pins the response wire format.
const ResponseSchema = "adassure/run/v1"

// Response is the evidence chain of one scenario execution: the run
// summary, the monitor's violation record, the ranked diagnosis and —
// when requested — the per-episode forensic bundles. The body is built
// deterministically from the simulation output, so a cached response is
// byte-identical to a fresh one.
type Response struct {
	Schema string `json:"schema"`
	// Request echoes the canonicalized request the response answers.
	Request Request `json:"request"`
	// Key is the content address of the request (the cache key).
	Key string `json:"key"`
	// TraceID names the trace of the run that produced these bytes. A
	// cached or coalesced response keeps the executing run's trace ID (the
	// bytes are shared), while the X-Adassure-Trace header always carries
	// the current request's own trace.
	TraceID    string             `json:"trace_id,omitempty"`
	Summary    RunSummary         `json:"summary"`
	Violations []Violation        `json:"violations,omitempty"`
	Hypotheses []Hypothesis       `json:"hypotheses,omitempty"`
	Bundles    []forensics.Bundle `json:"bundles,omitempty"`
}

// RunSummary condenses the simulation outcome.
type RunSummary struct {
	SimTime       float64 `json:"sim_time"`
	Steps         int     `json:"steps"`
	MaxTrueCTE    float64 `json:"max_true_cte"`
	RMSTrueCTE    float64 `json:"rms_true_cte"`
	MaxEstCTE     float64 `json:"max_est_cte"`
	ProgressTotal float64 `json:"progress_total"`
	Laps          int     `json:"laps"`
	Finished      bool    `json:"finished,omitempty"`
	Diverged      bool    `json:"diverged,omitempty"`
	FallbackTime  float64 `json:"fallback_time,omitempty"`
	// Detected reports whether any violation was raised at or after the
	// attack onset (always false for clean runs).
	Detected bool `json:"detected"`
	// DetectionLatency is seconds from attack onset to the first
	// post-onset violation (absent when not detected).
	DetectionLatency float64 `json:"detection_latency,omitempty"`
}

// Violation is the wire form of one raised assertion episode.
type Violation struct {
	AssertionID string             `json:"assertion_id"`
	Name        string             `json:"name"`
	Severity    string             `json:"severity"`
	T           float64            `json:"t"`
	FirstBreach float64            `json:"first_breach"`
	Duration    float64            `json:"duration,omitempty"`
	Message     string             `json:"message"`
	Evidence    map[string]float64 `json:"evidence,omitempty"`
}

// Hypothesis is the wire form of one ranked root-cause candidate.
type Hypothesis struct {
	Cause      string  `json:"cause"`
	Confidence float64 `json:"confidence"`
	Rationale  string  `json:"rationale"`
}

// buildResponse assembles the response for a completed run and marshals
// it once; the returned bytes are what the cache stores and every waiter
// receives. traceID is the executing run's trace (empty when tracing is
// off, which keeps fresh-vs-fresh bodies byte-identical — with tracing on
// the trace_id field is the one deliberately run-specific part of the
// body).
func buildResponse(req Request, out *adassure.ScenarioResult, traceID string) ([]byte, error) {
	resp := Response{
		Schema:  ResponseSchema,
		Request: req,
		Key:     req.Key(),
		TraceID: traceID,
		Summary: RunSummary{
			SimTime:       out.Sim.SimTime,
			Steps:         out.Sim.Steps,
			MaxTrueCTE:    out.Sim.MaxTrueCTE,
			RMSTrueCTE:    out.Sim.RMSTrueCTE,
			MaxEstCTE:     out.Sim.MaxEstCTE,
			ProgressTotal: out.Sim.ProgressTotal,
			Laps:          out.Sim.Laps,
			Finished:      out.Sim.Finished,
			Diverged:      out.Sim.Diverged,
			FallbackTime:  out.Sim.FallbackTime,
		},
	}
	if req.Attack != "none" {
		for _, v := range out.Violations {
			if v.T >= req.AttackStart {
				resp.Summary.Detected = true
				resp.Summary.DetectionLatency = v.T - req.AttackStart
				break
			}
		}
	}
	for _, v := range out.Violations {
		resp.Violations = append(resp.Violations, Violation{
			AssertionID: v.AssertionID,
			Name:        v.Name,
			Severity:    v.Severity.String(),
			T:           v.T,
			FirstBreach: v.FirstBreach,
			Duration:    v.Duration,
			Message:     v.Message,
			Evidence:    sanitizeEvidence(v.Evidence),
		})
	}
	for _, h := range out.Hypotheses {
		resp.Hypotheses = append(resp.Hypotheses, Hypothesis{
			Cause:      string(h.Cause),
			Confidence: h.Confidence,
			Rationale:  h.Rationale,
		})
	}
	if req.Bundles {
		resp.Bundles = buildBundles(req, out, traceID)
	}
	return json.Marshal(&resp)
}

// buildBundles assembles the per-episode forensic bundles directly (not
// via ScenarioResult.ForensicBundles): the served variant deliberately
// omits the obs-registry eval history, which is wall-clock data of the
// process rather than of the request — including it would make cached
// and fresh responses differ byte-wise and break cache soundness. All
// remaining sections (trace slice, frames, attack state, hypotheses) are
// deterministic in the request.
func buildBundles(req Request, out *adassure.ScenarioResult, traceID string) []forensics.Bundle {
	var attack *forensics.AttackInfo
	if req.Attack != "none" {
		attack = &forensics.AttackInfo{
			Name:  req.Attack,
			Class: req.Attack,
			Start: req.AttackStart,
			End:   req.AttackEnd,
		}
	}
	return forensics.Build(forensics.Input{
		TraceID: traceID,
		Scenario: map[string]string{
			"track":      req.Track,
			"controller": req.Controller,
			"attack":     req.Attack,
			"seed":       fmt.Sprintf("%d", req.Seed),
			"guarded":    fmt.Sprintf("%v", req.Guarded),
		},
		Violations: out.Violations,
		Trace:      out.Sim.Trace,
		Frames:     out.Sim.Frames,
		Attack:     attack,
		Hypotheses: out.Hypotheses,
		HalfWindow: req.BundleHalfWindow,
	})
}

// sanitizeEvidence clamps ±Inf thresholds (one-sided assertion bounds
// snapshot them) to ±MaxFloat64 and drops NaN entries, mirroring the
// forensic-bundle treatment — encoding/json rejects non-finite values.
func sanitizeEvidence(ev map[string]float64) map[string]float64 {
	if len(ev) == 0 {
		return nil
	}
	cp := make(map[string]float64, len(ev))
	for k, v := range ev {
		switch {
		case math.IsNaN(v):
		case math.IsInf(v, 1):
			cp[k] = math.MaxFloat64
		case math.IsInf(v, -1):
			cp[k] = -math.MaxFloat64
		default:
			cp[k] = v
		}
	}
	return cp
}
