package service

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"adassure/internal/obs"
)

// TestCacheLRUEvictionUnderByteCap: entries are evicted oldest-recency
// first, exactly when the charged byte total exceeds the cap.
func TestCacheLRUEvictionUnderByteCap(t *testing.T) {
	reg := obs.NewRegistry()
	body := bytes.Repeat([]byte("x"), 1000)
	perEntry := int64(len(body)) + int64(len("k0")) + entryOverhead
	c := newResultCache(3*perEntry, reg) // room for exactly 3 entries

	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), body)
	}
	if c.len() != 3 {
		t.Fatalf("cache holds %d entries, want 3", c.len())
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.put("k3", body)
	if _, ok := c.get("k1"); ok {
		t.Fatal("k1 survived eviction despite being least recently used")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s was evicted, want it retained", k)
		}
	}
	if got := reg.Counter("service.cache.evictions").Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if c.sizeBytes() > 3*perEntry {
		t.Fatalf("charged bytes %d exceed cap %d", c.sizeBytes(), 3*perEntry)
	}
}

// TestCacheOversizedBodyNotCached: a body that alone exceeds the cap is
// served but never stored.
func TestCacheOversizedBodyNotCached(t *testing.T) {
	c := newResultCache(512, obs.NewRegistry())
	c.put("big", bytes.Repeat([]byte("x"), 4096))
	if c.len() != 0 {
		t.Fatal("oversized body was cached")
	}
}

// TestCacheRefreshSameKey: re-putting a key replaces the body and does
// not leak charged bytes.
func TestCacheRefreshSameKey(t *testing.T) {
	c := newResultCache(1<<20, obs.NewRegistry())
	c.put("k", []byte("first"))
	c.put("k", []byte("second-and-longer"))
	got, ok := c.get("k")
	if !ok || string(got) != "second-and-longer" {
		t.Fatalf("get = %q, %v", got, ok)
	}
	want := int64(len("second-and-longer")) + int64(len("k")) + entryOverhead
	if c.sizeBytes() != want {
		t.Fatalf("charged bytes %d, want %d", c.sizeBytes(), want)
	}
}

// TestCacheDisabled: a non-positive cap disables storage entirely.
func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1, obs.NewRegistry())
	c.put("k", []byte("body"))
	if _, ok := c.get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
}

// TestCacheCounters: hits and misses are attributed correctly.
func TestCacheCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c := newResultCache(1<<20, reg)
	c.get("absent")
	c.put("k", []byte("body"))
	c.get("k")
	c.get("k")
	if got := reg.Counter("service.cache.hits").Value(); got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
	if got := reg.Counter("service.cache.misses").Value(); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
}

// TestCacheConcurrentAccess hammers get/put from many goroutines — the
// -race gate for the serving hot path.
func TestCacheConcurrentAccess(t *testing.T) {
	c := newResultCache(16<<10, obs.NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body := bytes.Repeat([]byte{byte('a' + g)}, 128)
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%32)
				if got, ok := c.get(key); ok && len(got) != 128 {
					t.Errorf("corrupt body length %d", len(got))
					return
				}
				c.put(key, body)
			}
		}(g)
	}
	wg.Wait()
}

// TestFlightGroupCoalesces: followers joining before finish receive the
// leader's bytes; after forget, a new leader starts.
func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	c1, leader := g.join("k")
	if !leader {
		t.Fatal("first join must lead")
	}
	c2, leader2 := g.join("k")
	if leader2 || c2 != c1 {
		t.Fatal("second join must follow the same call")
	}

	var wg sync.WaitGroup
	const followers = 8
	results := make([][]byte, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-c1.done
			results[i] = c1.body
		}(i)
	}
	g.forget("k")
	c1.finish([]byte("payload"), 200, nil)
	wg.Wait()
	for i, b := range results {
		if string(b) != "payload" {
			t.Fatalf("follower %d got %q", i, b)
		}
	}
	if _, leader := g.join("k"); !leader {
		t.Fatal("join after forget must start a fresh call")
	}
}
