package service

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"adassure/internal/telemetry"
)

// TraceHeader carries the trace ID of the request's own trace on every
// traced response, so a caller can correlate its call with slog output,
// histogram exemplars and /debug/traces/<id> without parsing the body.
// (The body's trace_id field is different: it names the trace of the run
// that produced the bytes, which for cache hits and coalesced waiters is
// an earlier or concurrent request's trace.)
const TraceHeader = "X-Adassure-Trace"

// statusWriter captures the response status for the span and the labeled
// request counter. It forwards Flush (the stream handler's eventWriter
// type-asserts http.Flusher) and exposes Unwrap so http.ResponseController
// can reach the underlying connection for deadlines and full-duplex.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// traced wraps a handler with the per-request telemetry envelope: a root
// span continuing any inbound W3C traceparent, the X-Adassure-Trace and
// traceparent response headers, a labeled request counter and one slog
// record carrying the trace/span IDs. With a nil tracer and a discard
// logger the wrapper degrades to a status-capturing passthrough.
func (s *Server) traced(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sp := s.tracer.StartSpan("http "+route, r.Header.Get("traceparent"))
		if sp.Enabled() {
			sp.SetAttr("route", route)
			sp.SetAttr("method", r.Method)
			w.Header().Set(TraceHeader, sp.TraceID().String())
			w.Header().Set("traceparent", sp.TraceParent())
			r = r.WithContext(telemetry.ContextWithSpan(r.Context(), sp))
		}
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		elapsed := time.Since(start)
		if sp.Enabled() {
			sp.SetInt("status", int64(status))
			sp.End()
		}
		s.reg.CounterL("service.http.requests",
			"route", route, "status", strconv.Itoa(status)).Inc()
		if s.log.Enabled(r.Context(), slog.LevelInfo) {
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("trace_id", sp.TraceID().String()),
				slog.String("span_id", sp.SpanID().String()),
				slog.String("route", route),
				slog.String("method", r.Method),
				slog.Int("status", status),
				slog.Duration("elapsed", elapsed),
			)
		}
	}
}
