package planner

import (
	"math"
	"testing"

	"adassure/internal/geom"

	"adassure/internal/track"
	"adassure/internal/vehicle"
)

func TestNewSpeedProfileValidation(t *testing.T) {
	p := vehicle.ShuttleParams()
	tr, err := track.Circle(25, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSpeedProfile(nil, 8, p); err == nil {
		t.Error("nil path accepted")
	}
	if _, err := NewSpeedProfile(tr.Path(), 0, p); err == nil {
		t.Error("zero limit accepted")
	}
	bad := p
	bad.Wheelbase = -1
	if _, err := NewSpeedProfile(tr.Path(), 8, bad); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestSpeedProfileStraightHitsLimit(t *testing.T) {
	p := vehicle.ShuttleParams()
	tr, err := track.Straight(200, 6)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSpeedProfile(tr.Path(), 6, p)
	if err != nil {
		t.Fatal(err)
	}
	if v := sp.TargetAt(100); math.Abs(v-6) > 1e-9 {
		t.Errorf("straight target = %g, want 6", v)
	}
}

func TestSpeedProfileRespectsLateralAccel(t *testing.T) {
	p := vehicle.ShuttleParams()
	tr, err := track.Circle(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSpeedProfile(tr.Path(), 20, p)
	if err != nil {
		t.Fatal(err)
	}
	// v² κ ≤ a_lat → v ≤ sqrt(2.5·10) ≈ 5.
	want := math.Sqrt(p.MaxLatAccel * 10)
	v := sp.TargetAt(5)
	if v > want*1.1 {
		t.Errorf("circle target %g exceeds lateral-accel bound %g", v, want)
	}
	if v < want*0.7 {
		t.Errorf("circle target %g suspiciously below bound %g", v, want)
	}
}

func TestSpeedProfileCapsAtVehicleMaxSpeed(t *testing.T) {
	p := vehicle.ShuttleParams() // MaxSpeed 8
	tr, err := track.Straight(200, 50)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSpeedProfile(tr.Path(), 50, p)
	if err != nil {
		t.Fatal(err)
	}
	if v := sp.TargetAt(100); v > p.MaxSpeed+1e-9 {
		t.Errorf("target %g exceeds vehicle max %g", v, p.MaxSpeed)
	}
}

func TestSpeedProfileBrakesBeforeCorner(t *testing.T) {
	p := vehicle.SedanParams()
	tr, err := track.Hairpin(6, 20)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSpeedProfile(tr.Path(), 20, p)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the hairpin apex (max curvature).
	L := tr.Path().Length()
	apexS, maxK := 0.0, 0.0
	for i := 0; i < 400; i++ {
		s := L * float64(i) / 400
		if k := math.Abs(tr.Path().CurvatureAt(s)); k > maxK {
			maxK, apexS = k, s
		}
	}
	vApex := sp.TargetAt(apexS)
	// 20 m before the apex the preview must already slow the car below
	// the straight-line limit.
	vBefore := sp.TargetAt(apexS - 20)
	if vBefore >= 20 {
		t.Errorf("no braking preview: v(-20m)=%g", vBefore)
	}
	// And the preview speed must be consistent with comfort braking into
	// the apex speed: v² ≤ vApex² + 2·a·d.
	bound := math.Sqrt(vApex*vApex + 2*(p.MaxBrake*0.7)*20)
	if vBefore > bound+0.5 {
		t.Errorf("preview speed %g violates braking feasibility %g", vBefore, bound)
	}
}

func TestProgressOpenRoute(t *testing.T) {
	tr, err := track.Straight(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewProgress(tr.Path())
	if err != nil {
		t.Fatal(err)
	}
	pr.Observe(0)
	pr.Observe(10)
	pr.Observe(9.5) // projection jitter backward
	pr.Observe(50)
	if got := pr.Total(); math.Abs(got-50) > 1e-9 {
		t.Errorf("total = %g, want 50", got)
	}
	if pr.Finished() {
		t.Error("finished too early")
	}
	pr.Observe(99.5)
	if !pr.Finished() {
		t.Error("should be finished near the end")
	}
}

func TestProgressClosedLapWrap(t *testing.T) {
	tr, err := track.Circle(25, 8)
	if err != nil {
		t.Fatal(err)
	}
	L := tr.Path().Length()
	pr, err := NewProgress(tr.Path())
	if err != nil {
		t.Fatal(err)
	}
	// Sweep a bit over two laps in 1 m increments (projection wraps at L).
	dist := 2*L + 5
	total := 0.0
	for d := 0.0; d <= dist; d += 1 {
		total = pr.Observe(math.Mod(d, L))
	}
	if math.Abs(total-dist) > 2 {
		t.Errorf("progress = %g, want ~%g", total, dist)
	}
	if pr.Laps() != 2 {
		t.Errorf("laps = %d, want 2", pr.Laps())
	}
	if pr.Finished() {
		t.Error("closed route should never report finished")
	}
}

func TestProgressNilPath(t *testing.T) {
	if _, err := NewProgress(nil); err == nil {
		t.Error("nil path accepted")
	}
}

func TestSpeedProfileHonoursZones(t *testing.T) {
	p := vehicle.ShuttleParams()
	base, err := track.Straight(300, 8)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := base.WithZones(track.SpeedZone{Start: 100, End: 150, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSpeedProfileForTrack(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if v := sp.TargetAt(120); v > 2+1e-9 {
		t.Errorf("target inside zone = %g, want <= 2", v)
	}
	if v := sp.TargetAt(200); v < 7 {
		t.Errorf("target outside zone = %g, want ~8", v)
	}
	// Braking preview: approaching the zone, the target must already drop
	// so the zone entry speed is reachable under comfort braking.
	vBefore := sp.TargetAt(95)
	bound := math.Sqrt(2*2 + 2*(p.MaxBrake*0.7)*5)
	if vBefore > bound+0.3 {
		t.Errorf("approach speed %g violates braking feasibility %g", vBefore, bound)
	}
	if _, err := NewSpeedProfileForTrack(nil, p); err == nil {
		t.Error("nil track accepted")
	}
}

func TestFollowerSticksToBranchOnFigureEight(t *testing.T) {
	tr, err := track.FigureEight(30, 6)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFollower(tr.Path())
	if err != nil {
		t.Fatal(err)
	}
	// Walk the whole loop in 0.5 m steps with small lateral noise; the
	// follower's arc position must advance monotonically (mod wrap) even
	// through the self-intersection at the centre.
	L := tr.Path().Length()
	prev := -1.0
	for d := 0.0; d < L-1; d += 0.5 {
		q := tr.Path().PointAt(d)
		s, lat := f.Project(q)
		if math.Abs(lat) > 0.05 {
			t.Fatalf("on-path point at d=%.1f got lateral %.3f", d, lat)
		}
		if prev >= 0 && s < prev-2 {
			t.Fatalf("follower jumped backwards at d=%.1f: %.1f after %.1f", d, s, prev)
		}
		prev = s
	}
}

func TestFollowerReacquiresAfterTeleport(t *testing.T) {
	tr, err := track.Straight(200, 6)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFollower(tr.Path())
	if err != nil {
		t.Fatal(err)
	}
	f.Project(geom.V(10, 0))
	// Teleport 100 m ahead (beyond the window): must re-acquire globally.
	s, lat := f.Project(geom.V(110, 0.2))
	if math.Abs(s-110) > 1 {
		t.Errorf("teleport re-acquire s=%.1f, want ~110", s)
	}
	if math.Abs(lat-0.2) > 0.05 {
		t.Errorf("teleport lateral = %.2f", lat)
	}
	if _, err := NewFollower(nil); err == nil {
		t.Error("nil path accepted")
	}
}
