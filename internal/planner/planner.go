// Package planner supplies the reference inputs the controllers track:
// a curvature-limited target-speed profile with braking preview and
// accel/jerk shaping, and a route-progress tracker that handles closed-loop
// lap wrapping and open-route completion.
package planner

import (
	"fmt"
	"math"

	"adassure/internal/geom"
	"adassure/internal/track"
	"adassure/internal/vehicle"
)

// SpeedProfile computes the target speed at any arc position of a path,
// respecting the track speed limit, the lateral-acceleration envelope on
// curvature, and a braking preview so the vehicle slows before corners
// rather than in them.
type SpeedProfile struct {
	path        geom.Path
	limitAt     func(s float64) float64
	maxLat      float64
	maxBrake    float64
	preview     float64 // lookahead distance for corner braking, m
	previewStep float64
}

// NewSpeedProfile builds a profile for a path under the vehicle's limits.
func NewSpeedProfile(path geom.Path, speedLimit float64, p vehicle.Params) (*SpeedProfile, error) {
	if path == nil {
		return nil, fmt.Errorf("planner: nil path")
	}
	if speedLimit <= 0 {
		return nil, fmt.Errorf("planner: speed limit must be positive, got %g", speedLimit)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cap := math.Min(speedLimit, p.MaxSpeed)
	return &SpeedProfile{
		path:        path,
		limitAt:     func(float64) float64 { return cap },
		maxLat:      p.MaxLatAccel,
		maxBrake:    p.MaxBrake * 0.7, // comfort braking, not emergency
		preview:     40,
		previewStep: 0.5,
	}, nil
}

// NewSpeedProfileForTrack builds a profile that additionally honours the
// track's speed zones (depot areas, crossings) via Track.LimitAt.
func NewSpeedProfileForTrack(tr *track.Track, p vehicle.Params) (*SpeedProfile, error) {
	if tr == nil {
		return nil, fmt.Errorf("planner: nil track")
	}
	sp, err := NewSpeedProfile(tr.Path(), tr.SpeedLimit(), p)
	if err != nil {
		return nil, err
	}
	sp.limitAt = func(s float64) float64 { return math.Min(tr.LimitAt(s), p.MaxSpeed) }
	return sp, nil
}

// latMargin derates the lateral-acceleration budget in the speed plan so
// that realistic speed-tracking overshoot into a corner stays inside the
// vehicle's actual envelope.
const latMargin = 0.85

// curveSpeed returns the curvature- and zone-limited speed at arc
// position s.
func (sp *SpeedProfile) curveSpeed(s float64) float64 {
	limit := sp.limitAt(s)
	k := math.Abs(sp.path.CurvatureAt(s))
	if k < 1e-6 {
		return limit
	}
	return math.Min(limit, math.Sqrt(sp.maxLat*latMargin/k))
}

// TargetAt returns the target speed at arc position s, including the
// braking preview: the speed is lowered so that any upcoming curvature
// bound within the preview window is reachable under comfort braking.
func (sp *SpeedProfile) TargetAt(s float64) float64 {
	v := sp.curveSpeed(s)
	for d := sp.previewStep; d <= sp.preview; d += sp.previewStep {
		ahead := sp.curveSpeed(s + d)
		// v² = v_ahead² + 2·a·d  (braking backward from the constraint)
		reachable := math.Sqrt(ahead*ahead + 2*sp.maxBrake*d)
		if reachable < v {
			v = reachable
		}
	}
	return v
}

// Follower keeps a continuous arc position on a path across control steps
// by projecting into a bounded window around the previous position. On
// self-intersecting routes (figure-eight) the globally nearest point can
// belong to the other branch; the windowed projection sticks to the branch
// being driven. A result farther than MaxLat from the path falls back to a
// global projection (the vehicle — or its spoofed estimate — genuinely
// teleported).
type Follower struct {
	path geom.Path
	rp   geom.RangeProjector // nil when the path cannot window-project
	// Back/Ahead bound the search window relative to the last position.
	Back, Ahead float64
	// MaxLat is the lateral offset beyond which the follower re-acquires
	// globally.
	MaxLat float64
	lastS  float64
	init   bool
}

// NewFollower builds a follower with standard window geometry.
func NewFollower(path geom.Path) (*Follower, error) {
	if path == nil {
		return nil, fmt.Errorf("planner: nil path")
	}
	f := &Follower{path: path, Back: 15, Ahead: 25, MaxLat: 8}
	if rp, ok := path.(geom.RangeProjector); ok {
		f.rp = rp
	}
	return f, nil
}

// Project returns the continuous arc position and lateral offset of q.
func (f *Follower) Project(q geom.Vec2) (s, lateral float64) {
	if !f.init || f.rp == nil {
		s, lateral = f.path.Project(q)
		f.lastS, f.init = s, true
		return s, lateral
	}
	s, lateral = f.rp.ProjectRange(q, f.lastS-f.Back, f.lastS+f.Ahead)
	if math.Abs(lateral) > f.MaxLat {
		// Teleport (attack or recovery): re-acquire globally.
		s, lateral = f.path.Project(q)
	}
	f.lastS = s
	return s, lateral
}

// Progress tracks how far along a route the vehicle has travelled,
// monotonically, across lap wraps on closed paths. It converts raw
// projections (which jump back to ~0 at each wrap) into cumulative
// distance, and detects completion of open routes.
type Progress struct {
	path     geom.Path
	lastS    float64
	total    float64
	laps     int
	started  bool
	finished bool
	// finishMargin is how close to the end of an open path counts as done.
	finishMargin float64
}

// NewProgress starts tracking progress along a path.
func NewProgress(path geom.Path) (*Progress, error) {
	if path == nil {
		return nil, fmt.Errorf("planner: nil path")
	}
	return &Progress{path: path, finishMargin: 2.0}, nil
}

// Observe folds a new projected arc position into the cumulative progress
// and returns the updated total distance. Small backward moves (projection
// jitter) reduce progress accordingly; a jump of more than half the path
// length on a closed path is interpreted as a lap wrap.
func (pr *Progress) Observe(s float64) float64 {
	if !pr.started {
		pr.lastS = s
		pr.started = true
		return pr.total
	}
	L := pr.path.Length()
	ds := s - pr.lastS
	if pr.path.Closed() {
		// Wrap: choose the representation of ds with the smallest magnitude.
		if ds > L/2 {
			ds -= L
		} else if ds < -L/2 {
			ds += L
			pr.laps++
		}
	}
	pr.total += ds
	pr.lastS = s
	if !pr.path.Closed() && s >= L-pr.finishMargin {
		pr.finished = true
	}
	return pr.total
}

// Total returns cumulative signed progress in metres.
func (pr *Progress) Total() float64 { return pr.total }

// Laps returns the number of completed laps (closed paths only).
func (pr *Progress) Laps() int { return pr.laps }

// Finished reports whether an open route has been completed.
func (pr *Progress) Finished() bool { return pr.finished }
