package obs

import (
	"sort"
	"strings"
)

// Labeled metrics. A labeled series is an ordinary registry entry whose
// key encodes the label set in Prometheus series syntax:
//
//	service.http.requests{route="/v1/run",status="200"}
//
// Label keys are sorted and values escaped at resolution time, so the
// same label set always resolves the same series regardless of argument
// order, and JSON snapshots carry the labels verbatim in their map keys.
// The Prometheus exporter (WriteProm) parses the encoding back into
// per-series label strings; unlabeled metrics are unaffected.

// CounterL resolves the counter for name plus alternating key, value
// label pairs. It panics on an odd pair count — label sets are static
// configuration, like histogram bounds.
func (r *Registry) CounterL(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.Counter(keyWithLabels(name, kv))
}

// GaugeL resolves the gauge for name plus label pairs.
func (r *Registry) GaugeL(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.Gauge(keyWithLabels(name, kv))
}

// HistogramL resolves the histogram for name plus label pairs, creating
// it with DefaultLatencyBuckets on first use.
func (r *Registry) HistogramL(name string, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.HistogramWith(keyWithLabels(name, kv), nil)
}

// keyWithLabels encodes name plus label pairs into the canonical series
// key. No labels returns name unchanged.
func keyWithLabels(name string, kv []string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("obs: labels must come in key, value pairs")
	}
	n := len(kv) / 2
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return kv[2*idx[a]] < kv[2*idx[b]] })
	var sb strings.Builder
	sb.Grow(len(name) + 16*n)
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, j := range idx {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[2*j])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(kv[2*j+1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// splitKey separates a series key into its base name and the encoded
// label body (without braces; "" when unlabeled).
func splitKey(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

// escapeLabelValue applies the Prometheus exposition escapes: backslash,
// double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	sb.Grow(len(v) + 4)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
	return sb.String()
}
