// Package obs is the observability layer of the repo: a dependency-free,
// allocation-conscious metrics registry the hot paths (sim step loop,
// assertion monitor, scenario runner) report into. It exists because the
// methodology's central claim — assertion monitoring is cheap enough to run
// online — is only checkable with first-class counters and latency
// histograms, not one-off wall-clock timing.
//
// Design constraints, in order:
//
//  1. A nil registry costs nothing. Every metric handle and every method is
//     nil-safe: resolving a metric from a nil *Registry yields a nil handle,
//     and operations on nil handles are single-branch no-ops. Instrumented
//     code therefore never needs an "is observability on?" flag of its own,
//     and the uninstrumented path stays within measurement noise of the
//     pre-instrumentation code (see BenchmarkNilRegistry / -StepWithObs).
//  2. Recording is lock-free. Counters and histogram buckets are atomics;
//     the registry mutex is only taken when a handle is first resolved, so
//     hot loops resolve handles once and then record without contention.
//     Many goroutines (the runner's workers) may share one registry.
//  3. No dependencies beyond the standard library, so every layer of the
//     repo — including internal/core — can import it without cycles.
//
// Typical wiring:
//
//	reg := obs.NewRegistry()
//	stepNS := reg.Histogram("sim.step_ns")  // resolve once
//	for ... {
//	    tm := stepNS.Start()
//	    ... hot work ...
//	    tm.Stop()
//	}
//	reg.WriteJSON(os.Stdout) // p50/p95/p99 per histogram, all counters
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe no-ops so a disabled registry costs one branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 (e.g. steps-per-second of the
// most recent run).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution of non-negative int64 values
// (nanoseconds, by convention). Bucket i counts observations v with
// bounds[i-1] < v ≤ bounds[i]; one implicit overflow bucket catches the
// rest. Observation is a binary search over the bounds plus two atomic
// adds — no allocation, no locks.
type Histogram struct {
	bounds []int64        // ascending inclusive upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Int64
	// ex holds at most one exemplar per bucket (newest wins), attached by
	// ObserveEx and exported on the Prometheus _bucket lines. The plain
	// Observe path never touches it.
	ex []atomic.Pointer[Exemplar]
}

// Exemplar ties one observed value to the trace that produced it — the
// bridge from a latency histogram's tail bucket back to a retrievable
// trace in /debug/traces/<id>.
type Exemplar struct {
	TraceID string
	Value   int64
}

// DefaultLatencyBuckets covers 64 ns to ~68 s in factor-2 steps — wide
// enough for a sub-100 ns assertion eval and a multi-second scenario job
// in the same registry.
func DefaultLatencyBuckets() []int64 {
	bounds := make([]int64, 31)
	for i := range bounds {
		bounds[i] = 64 << i
	}
	return bounds
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// It panics on empty or unsorted bounds — histogram construction is static
// configuration, like Monitor.Add.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	own := make([]int64, len(bounds))
	copy(own, bounds)
	for i := 1; i < len(own); i++ {
		if own[i] <= own[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: own,
		counts: make([]atomic.Int64, len(own)+1),
		ex:     make([]atomic.Pointer[Exemplar], len(own)+1),
	}
}

// Observe records one value. Negative values clamp to zero (latencies are
// non-negative by construction; a clock step would otherwise corrupt the
// distribution).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[h.bucketIdx(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveEx records one value and attaches a trace-ID exemplar to the
// bucket the value lands in (newest exemplar wins). Unlike Observe this
// allocates (one Exemplar per call), so it belongs on request-scoped
// paths, not the per-step hot loop. An empty traceID degrades to Observe.
func (h *Histogram) ObserveEx(v int64, traceID string) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	i := h.bucketIdx(v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if traceID != "" {
		h.ex[i].Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// bucketIdx returns the index of the bucket holding v (binary search:
// first bucket whose bound is ≥ v; len(bounds) is the overflow bucket).
func (h *Histogram) bucketIdx(v int64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile estimates the q-th quantile (q ∈ [0,1]) by linear interpolation
// inside the bucket containing the target rank. It returns 0 when empty.
// The overflow bucket reports its lower bound — the estimate saturates
// rather than inventing values beyond the configured range.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i == len(h.bounds) {
				return float64(h.bounds[len(h.bounds)-1])
			}
			lo := int64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - cum) / c
			return float64(lo) + frac*float64(h.bounds[i]-lo)
		}
		cum += c
	}
	return float64(h.bounds[len(h.bounds)-1])
}

// Timer times one interval into a histogram. The zero Timer (from a nil
// histogram) is a no-op that never reads the clock.
type Timer struct {
	h  *Histogram
	t0 time.Time
}

// Start begins timing. On a nil histogram it returns the zero Timer
// without touching the clock, so a disabled registry pays only the nil
// check.
func (h *Histogram) Start() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, t0: time.Now()}
}

// Stop observes the elapsed nanoseconds since Start.
func (t Timer) Stop() {
	if t.h != nil {
		t.h.Observe(time.Since(t.t0).Nanoseconds())
	}
}

// Registry holds named metrics. Handle resolution (Counter / Gauge /
// Histogram) locks briefly and may allocate; recording through a resolved
// handle is lock-free. All methods are nil-safe: a nil *Registry resolves
// nil handles, making "no observability" the zero-configuration default.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter resolves (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge resolves (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram resolves (creating on first use, with DefaultLatencyBuckets)
// the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, nil)
}

// HistogramWith resolves the named histogram, creating it with the given
// bounds (nil means DefaultLatencyBuckets). Bounds are fixed at creation;
// later resolutions return the existing histogram regardless of bounds.
func (r *Registry) HistogramWith(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultLatencyBuckets()
		}
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Names returns the sorted names of all registered metrics.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
