package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParseProm is the strict reader for the exposition format WriteProm
// emits — the CI smoke test and the promcheck tool use it to prove a
// live /metrics scrape is well-formed rather than merely greppable. It
// enforces, beyond bare syntax:
//
//   - every sample belongs to a family declared by a preceding # TYPE
//     line, with the suffix its kind demands (_total for counters;
//     _bucket/_sum/_count for histograms; the bare name for gauges);
//   - no duplicate # TYPE lines and no duplicate series;
//   - histogram bucket series are cumulative: le values strictly
//     ascending per series, counts non-decreasing, the +Inf bucket
//     present and equal to the series' _count sample, _sum present;
//   - label bodies use valid names, quoting and escapes;
//   - the stream ends with # EOF and nothing follows it.

// PromExemplar is a parsed exemplar annotation.
type PromExemplar struct {
	Labels map[string]string
	Value  float64
}

// PromSample is one parsed sample line.
type PromSample struct {
	Name     string // full sample name, e.g. "sim_runs_total"
	Labels   map[string]string
	Value    float64
	Exemplar *PromExemplar
}

// PromFamily is one declared metric family and its samples.
type PromFamily struct {
	Name    string // family name from the # TYPE line
	Type    string // counter | gauge | histogram
	Samples []PromSample
}

// PromDoc is a parsed exposition document.
type PromDoc struct {
	Families []*PromFamily
	byName   map[string]*PromFamily
}

// Family returns the named family, or nil.
func (d *PromDoc) Family(name string) *PromFamily {
	if d == nil {
		return nil
	}
	return d.byName[name]
}

// Sum adds up every sample with the given full sample name across label
// sets, returning the total and how many series matched.
func (d *PromDoc) Sum(sampleName string) (float64, int) {
	var total float64
	var n int
	if d == nil {
		return 0, 0
	}
	for _, f := range d.Families {
		for _, s := range f.Samples {
			if s.Name == sampleName {
				total += s.Value
				n++
			}
		}
	}
	return total, n
}

// HasExemplar reports whether any sample of the named family carries an
// exemplar with a trace_id label.
func (d *PromDoc) HasExemplar(family string) bool {
	f := d.Family(family)
	if f == nil {
		return false
	}
	for _, s := range f.Samples {
		if s.Exemplar != nil && s.Exemplar.Labels["trace_id"] != "" {
			return true
		}
	}
	return false
}

// histSeries accumulates one histogram series' bucket structure for the
// cumulativity check, keyed by its non-le label signature.
type histSeries struct {
	les     []float64
	counts  []float64
	hasInf  bool
	infVal  float64
	count   *float64
	hasSum  bool
	sumSeen bool
}

// ParseProm reads and validates an exposition stream.
func ParseProm(r io.Reader) (*PromDoc, error) {
	doc := &PromDoc{byName: map[string]*PromFamily{}}
	seenSeries := map[string]bool{}
	hists := map[string]map[string]*histSeries{} // family -> label sig -> series
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	sawEOF := false
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if sawEOF {
			return nil, fmt.Errorf("obs: prom line %d: content after # EOF", line)
		}
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			switch {
			case text == "# EOF":
				sawEOF = true
			case strings.HasPrefix(text, "# TYPE "):
				rest := strings.TrimPrefix(text, "# TYPE ")
				parts := strings.Fields(rest)
				if len(parts) != 2 {
					return nil, fmt.Errorf("obs: prom line %d: malformed TYPE line %q", line, text)
				}
				name, typ := parts[0], parts[1]
				if !validPromName(name) {
					return nil, fmt.Errorf("obs: prom line %d: invalid family name %q", line, name)
				}
				switch typ {
				case "counter", "gauge", "histogram":
				default:
					return nil, fmt.Errorf("obs: prom line %d: unknown type %q", line, typ)
				}
				if doc.byName[name] != nil {
					return nil, fmt.Errorf("obs: prom line %d: duplicate TYPE for %q", line, name)
				}
				f := &PromFamily{Name: name, Type: typ}
				doc.byName[name] = f
				doc.Families = append(doc.Families, f)
			case strings.HasPrefix(text, "# HELP "):
				// HELP lines are legal; we emit none but accept them.
			default:
				return nil, fmt.Errorf("obs: prom line %d: unrecognised comment %q", line, text)
			}
			continue
		}
		sample, err := parseSampleLine(text)
		if err != nil {
			return nil, fmt.Errorf("obs: prom line %d: %w", line, err)
		}
		fam, suffix, err := resolveFamily(doc, sample.Name)
		if err != nil {
			return nil, fmt.Errorf("obs: prom line %d: %w", line, err)
		}
		sig := sample.Name + "|" + labelSignature(sample.Labels, "")
		if seenSeries[sig] {
			return nil, fmt.Errorf("obs: prom line %d: duplicate series %q", line, sig)
		}
		seenSeries[sig] = true
		if sample.Exemplar != nil && suffix != "_bucket" {
			return nil, fmt.Errorf("obs: prom line %d: exemplar on non-bucket sample %q", line, sample.Name)
		}
		fam.Samples = append(fam.Samples, sample)

		if fam.Type == "histogram" {
			bySig := hists[fam.Name]
			if bySig == nil {
				bySig = map[string]*histSeries{}
				hists[fam.Name] = bySig
			}
			key := labelSignature(sample.Labels, "le")
			hs := bySig[key]
			if hs == nil {
				hs = &histSeries{}
				bySig[key] = hs
			}
			switch suffix {
			case "_bucket":
				leStr, ok := sample.Labels["le"]
				if !ok {
					return nil, fmt.Errorf("obs: prom line %d: bucket sample without le label", line)
				}
				if leStr == "+Inf" {
					hs.hasInf = true
					hs.infVal = sample.Value
				} else {
					le, err := strconv.ParseFloat(leStr, 64)
					if err != nil {
						return nil, fmt.Errorf("obs: prom line %d: bad le %q: %w", line, leStr, err)
					}
					if hs.hasInf {
						return nil, fmt.Errorf("obs: prom line %d: bucket after +Inf", line)
					}
					hs.les = append(hs.les, le)
					hs.counts = append(hs.counts, sample.Value)
				}
			case "_sum":
				hs.hasSum = true
			case "_count":
				v := sample.Value
				hs.count = &v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: prom read: %w", err)
	}
	if !sawEOF {
		return nil, fmt.Errorf("obs: prom stream missing # EOF terminator")
	}
	for famName, bySig := range hists {
		for sig, hs := range bySig {
			where := famName
			if sig != "" {
				where += "{" + sig + "}"
			}
			for i := 1; i < len(hs.les); i++ {
				if hs.les[i] <= hs.les[i-1] {
					return nil, fmt.Errorf("obs: prom histogram %s: le not strictly ascending", where)
				}
			}
			for i := 1; i < len(hs.counts); i++ {
				if hs.counts[i] < hs.counts[i-1] {
					return nil, fmt.Errorf("obs: prom histogram %s: bucket counts not cumulative", where)
				}
			}
			if !hs.hasInf {
				return nil, fmt.Errorf("obs: prom histogram %s: missing +Inf bucket", where)
			}
			if len(hs.counts) > 0 && hs.infVal < hs.counts[len(hs.counts)-1] {
				return nil, fmt.Errorf("obs: prom histogram %s: +Inf bucket below last finite bucket", where)
			}
			if hs.count == nil {
				return nil, fmt.Errorf("obs: prom histogram %s: missing _count sample", where)
			}
			if *hs.count != hs.infVal {
				return nil, fmt.Errorf("obs: prom histogram %s: _count %v != +Inf bucket %v", where, *hs.count, hs.infVal)
			}
			if !hs.hasSum {
				return nil, fmt.Errorf("obs: prom histogram %s: missing _sum sample", where)
			}
		}
	}
	return doc, nil
}

// resolveFamily maps a sample name to its declared family and the suffix
// role it plays within that family's type.
func resolveFamily(doc *PromDoc, sampleName string) (*PromFamily, string, error) {
	if f := doc.byName[sampleName]; f != nil {
		if f.Type != "gauge" {
			return nil, "", fmt.Errorf("sample %q uses the bare family name of a %s", sampleName, f.Type)
		}
		return f, "", nil
	}
	for _, suffix := range [...]string{"_total", "_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(sampleName, suffix)
		if !ok {
			continue
		}
		f := doc.byName[base]
		if f == nil {
			continue
		}
		switch {
		case suffix == "_total" && f.Type == "counter":
			return f, suffix, nil
		case suffix != "_total" && f.Type == "histogram":
			return f, suffix, nil
		default:
			return nil, "", fmt.Errorf("sample %q: suffix %s not valid for %s family %q", sampleName, suffix, f.Type, base)
		}
	}
	return nil, "", fmt.Errorf("sample %q has no preceding # TYPE declaration", sampleName)
}

// parseSampleLine parses `name{labels} value [# {exlabels} exvalue]`.
func parseSampleLine(text string) (PromSample, error) {
	var s PromSample
	rest := text
	i := 0
	for i < len(rest) && isPromNameChar(rest[i], i > 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("sample line %q: missing metric name", text)
	}
	s.Name = rest[:i]
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabelBody(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	valStr := rest
	var exPart string
	if j := strings.Index(rest, " # "); j >= 0 {
		valStr = strings.TrimRight(rest[:j], " ")
		exPart = rest[j+3:]
	}
	v, err := parsePromValue(valStr)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value %q: %w", s.Name, valStr, err)
	}
	s.Value = v
	if exPart != "" {
		ex, err := parseExemplar(exPart)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", s.Name, err)
		}
		s.Exemplar = ex
	}
	return s, nil
}

// parseExemplar parses `{labels} value [timestamp]`.
func parseExemplar(text string) (*PromExemplar, error) {
	if !strings.HasPrefix(text, "{") {
		return nil, fmt.Errorf("exemplar %q: must start with a label set", text)
	}
	end, labels, err := parseLabelBody(text)
	if err != nil {
		return nil, fmt.Errorf("exemplar: %w", err)
	}
	fields := strings.Fields(text[end:])
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("exemplar %q: want value [timestamp]", text)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return nil, fmt.Errorf("exemplar value %q: %w", fields[0], err)
	}
	return &PromExemplar{Labels: labels, Value: v}, nil
}

// parseLabelBody parses a `{k="v",...}` body starting at text[0] == '{'.
// It returns the index just past the closing brace.
func parseLabelBody(text string) (int, map[string]string, error) {
	labels := map[string]string{}
	i := 1 // past '{'
	for {
		if i >= len(text) {
			return 0, nil, fmt.Errorf("label body %q: unterminated", text)
		}
		if text[i] == '}' {
			return i + 1, labels, nil
		}
		start := i
		for i < len(text) && isPromNameChar(text[i], i > start) {
			i++
		}
		if i == start {
			return 0, nil, fmt.Errorf("label body %q: missing label name at offset %d", text, i)
		}
		name := text[start:i]
		if i >= len(text) || text[i] != '=' {
			return 0, nil, fmt.Errorf("label body %q: missing '=' after %q", text, name)
		}
		i++
		if i >= len(text) || text[i] != '"' {
			return 0, nil, fmt.Errorf("label body %q: missing opening quote for %q", text, name)
		}
		i++
		var sb strings.Builder
		for {
			if i >= len(text) {
				return 0, nil, fmt.Errorf("label body %q: unterminated value for %q", text, name)
			}
			c := text[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(text) {
					return 0, nil, fmt.Errorf("label body %q: dangling escape", text)
				}
				switch text[i+1] {
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				case 'n':
					sb.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("label body %q: invalid escape \\%c", text, text[i+1])
				}
				i += 2
				continue
			}
			sb.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return 0, nil, fmt.Errorf("label body %q: duplicate label %q", text, name)
		}
		labels[name] = sb.String()
		if i < len(text) && text[i] == ',' {
			i++
		}
	}
}

// parsePromValue parses a sample value, accepting the exposition
// spellings of infinities and NaN.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// labelSignature renders a sorted, canonical form of a label set,
// excluding one label name (pass "" to keep all).
func labelSignature(labels map[string]string, except string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == except {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(labels[k]))
		sb.WriteByte('"')
	}
	return sb.String()
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isPromNameChar(s[i], i > 0) {
			return false
		}
	}
	return true
}

func isPromNameChar(c byte, notFirst bool) bool { return promNameByte(c, notFirst) }
