package obs

import (
	"bytes"
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters only go up
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	var nilC *Counter
	nilC.Inc()
	nilC.Add(7)
	if nilC.Value() != 0 {
		t.Error("nil counter must read 0")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3.25)
	if g.Value() != 3.25 {
		t.Errorf("gauge = %g", g.Value())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Errorf("gauge = %g", g.Value())
	}
	var nilG *Gauge
	nilG.Set(9)
	if nilG.Value() != 0 {
		t.Error("nil gauge must read 0")
	}
}

// TestHistogramBucketBoundaries pins the bucketing rule: bucket i counts
// v with bounds[i-1] < v ≤ bounds[i] (inclusive upper bound), values above
// the last bound land in the overflow bucket, negatives clamp to zero.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{-5, 0, 10, 11, 100, 101, 1000, 1001, 1 << 40} {
		h.Observe(v)
	}
	want := []Bucket{
		{Le: 10, Count: 3},   // -5 (clamped), 0, 10
		{Le: 100, Count: 2},  // 11, 100
		{Le: 1000, Count: 2}, // 101, 1000
		{Le: -1, Count: 2},   // 1001, 1<<40 → overflow
	}
	got := h.Summary().Buckets
	if !reflect.DeepEqual(got, want) {
		t.Errorf("buckets = %+v, want %+v", got, want)
	}
	if h.Count() != 9 {
		t.Errorf("count = %d, want 9", h.Count())
	}
	// Sum counts the clamped values: -5 → 0.
	wantSum := int64(0+0+10+11+100+101+1000+1001) + 1<<40
	if h.Sum() != wantSum {
		t.Errorf("sum = %d, want %d", h.Sum(), wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 40})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// 10 observations uniformly in (10, 20]: quantiles interpolate inside
	// that single bucket.
	for v := int64(11); v <= 20; v++ {
		h.Observe(v)
	}
	if q := h.Quantile(0); q != 10 {
		t.Errorf("q0 = %g, want bucket lower bound 10", q)
	}
	if q := h.Quantile(1); q != 20 {
		t.Errorf("q1 = %g, want bucket upper bound 20", q)
	}
	if q := h.Quantile(0.5); q != 15 {
		t.Errorf("q0.5 = %g, want 15 (midpoint of (10,20])", q)
	}
	// Quantiles are monotone in q and clamp out-of-range q.
	prev := -1.0
	for _, q := range []float64{-1, 0, 0.25, 0.5, 0.75, 0.95, 1, 2} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("quantile not monotone: q=%g gives %g after %g", q, v, prev)
		}
		prev = v
	}
	// Overflow-only distribution saturates at the last bound.
	o := NewHistogram([]int64{10})
	o.Observe(50)
	if q := o.Quantile(0.99); q != 10 {
		t.Errorf("overflow quantile = %g, want saturation at 10", q)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	for _, bounds := range [][]int64{nil, {}, {10, 10}, {10, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestDefaultLatencyBuckets(t *testing.T) {
	b := DefaultLatencyBuckets()
	if len(b) != 31 || b[0] != 64 || b[30] != 64<<30 {
		t.Errorf("default buckets = len %d, first %d, last %d", len(b), b[0], b[len(b)-1])
	}
	NewHistogram(b) // must satisfy the strictly-ascending invariant
}

// TestConcurrentRecording hammers one registry from many goroutines; run
// under -race this is the lock-freedom correctness check for the shared
// runner/monitor registry.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("lat")
			g := r.Gauge("g")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i))
				g.Set(float64(w))
				if i%100 == 0 {
					r.Snapshot() // snapshots may race with recording
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestSnapshotRoundTrip: WriteJSON → ReadSnapshot reproduces the snapshot
// exactly, including occupied buckets and percentiles.
func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs").Add(42)
	r.Gauge("rate").Set(123.5)
	h := r.HistogramWith("lat", []int64{10, 100})
	for _, v := range []int64{5, 50, 500} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r.Snapshot()) {
		t.Errorf("round trip changed snapshot:\n got %+v\nwant %+v", got, r.Snapshot())
	}
	if got.Counters["jobs"] != 42 || got.Gauges["rate"] != 123.5 {
		t.Errorf("scalars lost: %+v", got)
	}
	if s := got.Histograms["lat"]; s.Count != 3 || len(s.Buckets) != 3 {
		t.Errorf("histogram summary lost: %+v", s)
	}
}

// TestSnapshotSanitizesNonFinite: a NaN/Inf gauge must not make the
// snapshot unmarshalable (encoding/json rejects non-finite numbers).
func TestSnapshotSanitizesNonFinite(t *testing.T) {
	r := NewRegistry()
	r.Gauge("nan").Set(math.NaN())
	r.Gauge("inf").Set(math.Inf(1))
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("non-finite gauge broke WriteJSON: %v", err)
	}
	s, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Gauges["nan"] != 0 || s.Gauges["inf"] != 0 {
		t.Errorf("non-finite gauges should sanitize to 0: %+v", s.Gauges)
	}
}

// TestNilRegistry: the whole API surface is a no-op on a nil registry —
// the contract that lets instrumented code skip "is obs on?" checks.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	if r.Counter("c") != nil || r.Gauge("g") != nil || r.Histogram("h") != nil {
		t.Error("nil registry must resolve nil handles")
	}
	if r.Names() != nil {
		t.Error("nil registry has no names")
	}
	s := r.Snapshot()
	if s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The nil-histogram timer must also be inert.
	var h *Histogram
	tm := h.Start()
	tm.Stop()
	h.Observe(5)
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("nil histogram must read zero")
	}
}

func TestRegistryNamesAndReuse(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c2 := r.Counter("a")
	if c1 != c2 {
		t.Error("same name must resolve the same counter")
	}
	r.Gauge("b")
	r.Histogram("c")
	want := []string{"a", "b", "c"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("names = %v, want %v", got, want)
	}
	// Bounds are fixed at creation: a second HistogramWith with different
	// bounds returns the existing histogram.
	h1 := r.HistogramWith("c", nil)
	h2 := r.HistogramWith("c", []int64{1})
	if h1 != h2 {
		t.Error("same name must resolve the same histogram")
	}
}

func TestTimer(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets())
	tm := h.Start()
	tm.Stop()
	if h.Count() != 1 {
		t.Errorf("timer recorded %d observations, want 1", h.Count())
	}
}

// BenchmarkNilRegistry measures the disabled-observability path: resolving
// from a nil registry and recording through nil handles must be within a
// branch or two of free.
func BenchmarkNilRegistry(b *testing.B) {
	var r *Registry
	c := r.Counter("c")
	h := r.Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		tm := h.Start()
		tm.Stop()
		h.Observe(int64(i))
	}
}

// BenchmarkHistogramObserve measures the enabled hot path: one binary
// search plus three atomic adds, no allocation.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefaultLatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xffff))
	}
}
