package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Prometheus text exposition. WriteProm renders the registry in the
// OpenMetrics-flavoured text format served at /metrics: one `# TYPE`
// line per family, counter samples with the `_total` suffix, histogram
// samples as cumulative `le` buckets (every configured bound plus
// `+Inf`) with `_sum`/`_count`, label sets in sorted-key order, and
// trace-ID exemplars appended to the bucket a traced observation landed
// in. Exemplar timestamps are intentionally omitted so the output of a
// quiesced registry is byte-deterministic (the golden test depends on
// it). The stream ends with `# EOF`.
//
// Dotted registry names map to Prometheus conventions mechanically:
// every character outside [a-zA-Z0-9_:] becomes '_', so "sim.runs"
// scrapes as sim_runs_total. ParseProm is the strict inverse reader.

// PromName sanitises a registry metric name into a legal Prometheus
// metric name: characters outside [a-zA-Z0-9_:] become '_', and a
// leading digit is prefixed with '_'.
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	b := []byte(name)
	for i, c := range b {
		if !promNameByte(c, i > 0) {
			b[i] = '_'
		}
	}
	if b[0] >= '0' && b[0] <= '9' {
		b = append([]byte{'_'}, b...)
	}
	return string(b)
}

func promNameByte(c byte, notFirst bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return notFirst
	}
	return false
}

// promSeries is one registry entry resolved for exposition.
type promSeries struct {
	labels string // encoded label body, "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// promFamily groups the series sharing one exposition family name.
type promFamily struct {
	name   string // sanitized family name (without _total/_bucket suffixes)
	kind   string // "counter" | "gauge" | "histogram"
	series []promSeries
}

// WriteProm renders a point-in-time view of the registry in the
// Prometheus/OpenMetrics text exposition format. Concurrent recorders may
// race with the scrape; each histogram's bucket lines, `+Inf` bucket and
// `_count` are derived from a single read of the bucket counters, so the
// cumulative structure is always internally consistent.
func (r *Registry) WriteProm(w io.Writer) error {
	fams := map[string]*promFamily{}
	add := func(key, kind string, s promSeries) {
		base, labels := splitKey(key)
		name := PromName(base)
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, kind: kind}
			fams[name] = f
		}
		s.labels = labels
		f.series = append(f.series, s)
	}
	if r != nil {
		r.mu.Lock()
		for k, c := range r.counters {
			add(k, "counter", promSeries{c: c})
		}
		for k, g := range r.gauges {
			add(k, "gauge", promSeries{g: g})
		}
		for k, h := range r.hists {
			add(k, "histogram", promSeries{h: h})
		}
		r.mu.Unlock()
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, n := range names {
		f := fams[n]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case "counter":
				fmt.Fprintf(bw, "%s_total%s %d\n", f.name, braced(s.labels), s.c.Value())
			case "gauge":
				fmt.Fprintf(bw, "%s%s %s\n", f.name, braced(s.labels),
					strconv.FormatFloat(sanitize(s.g.Value()), 'g', -1, 64))
			case "histogram":
				writePromHistogram(bw, f.name, s.labels, s.h)
			}
		}
	}
	fmt.Fprintf(bw, "# EOF\n")
	return bw.Flush()
}

// writePromHistogram emits the cumulative bucket series for one
// histogram. All bucket counts come from one pass over the counters so
// the `le` cumulativity and the `_count` total always agree within a
// scrape, even while recorders run.
func writePromHistogram(w io.Writer, name, labels string, h *Histogram) {
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	var cum, total int64
	for _, c := range counts {
		total += c
	}
	for i, bound := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d", name, bracedWith(labels, "le", strconv.FormatInt(bound, 10)), cum)
		writeExemplar(w, h.ex[i].Load())
		io.WriteString(w, "\n")
	}
	fmt.Fprintf(w, "%s_bucket%s %d", name, bracedWith(labels, "le", "+Inf"), total)
	writeExemplar(w, h.ex[len(h.bounds)].Load())
	io.WriteString(w, "\n")
	fmt.Fprintf(w, "%s_sum%s %d\n", name, braced(labels), h.sum.Load())
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(labels), total)
}

// writeExemplar appends an OpenMetrics exemplar (no timestamp — the
// exposition stays deterministic for golden comparison).
func writeExemplar(w io.Writer, ex *Exemplar) {
	if ex == nil {
		return
	}
	fmt.Fprintf(w, ` # {trace_id="%s"} %d`, escapeLabelValue(ex.TraceID), ex.Value)
}

// braced wraps an encoded label body in braces ("" stays "").
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// bracedWith appends one extra label (e.g. le) to an encoded label body.
func bracedWith(labels, key, value string) string {
	if labels == "" {
		return "{" + key + `="` + value + `"}`
	}
	return "{" + labels + "," + key + `="` + value + `"}`
}
