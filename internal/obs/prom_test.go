package obs

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file under testdata from the current output")

// goldenRegistry builds the deterministic registry behind the exposition
// golden: every metric kind, labeled and unlabeled series, escaping, and
// a traced observation that must surface as a bucket exemplar.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("sim.runs").Add(3)
	reg.CounterL("service.http.requests", "route", "/v1/run", "status", "200").Add(2)
	reg.CounterL("service.http.requests", "status", "429", "route", "/v1/run").Inc() // key order must not matter
	reg.CounterL("service.http.requests", "route", "/v1/stream", "status", "200").Inc()
	reg.Counter("weird.name-with+chars").Inc()
	reg.CounterL("escape.check", "msg", "say \"hi\"\\\n").Inc()
	reg.Gauge("runner.pool.queue_depth").Set(4)
	reg.Gauge("sim.steps_per_sec").Set(12345.5)

	h := reg.HistogramWith("service.request_ns", []int64{100, 1000, 10000})
	h.Observe(50)
	h.Observe(50)
	h.Observe(700)
	h.ObserveEx(9000, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.ObserveEx(123456, "00f067aa0ba902b74bf92f3577b34da6")

	lh := reg.HistogramL("stream.frame_ns", "session", "s1")
	lh.Observe(65)
	return reg
}

// TestPromGolden pins the exposition output byte-for-byte: family and
// series ordering, _total suffixes, cumulative le buckets, exemplars,
// escaping and the # EOF terminator. Regenerate with
//
//	go test ./internal/obs -run TestPromGolden -update
func TestPromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "prom.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Errorf("exposition drifted from %s (regenerate with -update if intentional)\n--- want\n%s\n--- got\n%s",
			path, want, buf.Bytes())
	}
	// The golden must itself satisfy the strict parser.
	if _, err := ParseProm(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("golden exposition fails strict parse: %v", err)
	}
}

func TestPromParseRejects(t *testing.T) {
	cases := map[string]string{
		"missing EOF":        "# TYPE a counter\na_total 1\n",
		"sample before TYPE": "a_total 1\n# EOF\n",
		"duplicate TYPE":     "# TYPE a counter\n# TYPE a counter\n# EOF\n",
		"bad type":           "# TYPE a summary\n# EOF\n",
		"counter bare name":  "# TYPE a counter\na 1\n# EOF\n",
		"content after EOF":  "# EOF\n# TYPE a counter\n",
		"duplicate series":   "# TYPE a counter\na_total 1\na_total 2\n# EOF\n",
		"bad escape":         "# TYPE a counter\na_total{x=\"\\q\"} 1\n# EOF\n",
		"unterminated label": "# TYPE a counter\na_total{x=\"y\" 1\n# EOF\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n# EOF\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n# EOF\n",
		"count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n# EOF\n",
		"exemplar on counter": "# TYPE a counter\na_total 1 # {trace_id=\"x\"} 1\n# EOF\n",
	}
	for name, text := range cases {
		if _, err := ParseProm(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}

// TestPromJSONParity is the property test: for randomly populated
// registries, the Prometheus exposition and the JSON snapshot must agree
// on every value — counters, gauges, histogram totals and per-bucket
// counts (reconstructed from the cumulative le series).
func TestPromJSONParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		reg := NewRegistry()
		nC, nG, nH := rng.Intn(5)+1, rng.Intn(4), rng.Intn(3)+1
		for i := 0; i < nC; i++ {
			c := reg.CounterL(fmt.Sprintf("c%d", i), "idx", strconv.Itoa(rng.Intn(3)))
			c.Add(rng.Int63n(1e6) + 1)
		}
		for i := 0; i < nG; i++ {
			reg.Gauge(fmt.Sprintf("g%d", i)).Set(rng.NormFloat64() * 100)
		}
		for i := 0; i < nH; i++ {
			h := reg.HistogramWith(fmt.Sprintf("h%d", i), []int64{10, 100, 1000, 10000})
			for j := rng.Intn(50); j > 0; j-- {
				v := rng.Int63n(20000)
				if rng.Intn(4) == 0 {
					h.ObserveEx(v, "4bf92f3577b34da6a3ce929d0e0e4736")
				} else {
					h.Observe(v)
				}
			}
		}

		snap := reg.Snapshot()
		var buf bytes.Buffer
		if err := reg.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		doc, err := ParseProm(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		for key, want := range snap.Counters {
			base, _ := splitKey(key)
			got, n := doc.Sum(PromName(base) + "_total")
			if n == 0 {
				t.Fatalf("trial %d: counter %q missing from exposition", trial, key)
			}
			// Sum aggregates the base name's label sets; compare per-series.
			if sv, ok := promSeriesValue(doc, PromName(base)+"_total", key); ok {
				if sv != float64(want) {
					t.Fatalf("trial %d: counter %q = %v in prom, %d in JSON", trial, key, sv, want)
				}
			} else if got != float64(want) {
				t.Fatalf("trial %d: counter %q sum %v != %d", trial, key, got, want)
			}
		}
		for key, want := range snap.Gauges {
			base, _ := splitKey(key)
			got, n := doc.Sum(PromName(base))
			if n != 1 || got != want {
				t.Fatalf("trial %d: gauge %q = %v (n=%d), want %v", trial, key, got, n, want)
			}
		}
		for key, want := range snap.Histograms {
			base, _ := splitKey(key)
			name := PromName(base)
			if got, n := doc.Sum(name + "_count"); n != 1 || got != float64(want.Count) {
				t.Fatalf("trial %d: histogram %q count %v (n=%d), want %d", trial, key, got, n, want.Count)
			}
			if got, _ := doc.Sum(name + "_sum"); got != float64(want.Sum) {
				t.Fatalf("trial %d: histogram %q sum mismatch", trial, key)
			}
			// Reconstruct per-bucket counts from the cumulative series.
			fam := doc.Family(name)
			var les []float64
			var cums []float64
			for _, s := range fam.Samples {
				if s.Name != name+"_bucket" {
					continue
				}
				if s.Labels["le"] == "+Inf" {
					continue
				}
				le, _ := strconv.ParseFloat(s.Labels["le"], 64)
				les = append(les, le)
				cums = append(cums, s.Value)
			}
			perBucket := map[int64]int64{}
			var prev float64
			for i, le := range les {
				perBucket[int64(le)] = int64(cums[i] - prev)
				prev = cums[i]
			}
			for _, b := range want.Buckets {
				if b.Le == -1 {
					continue // overflow bucket has no finite le line
				}
				if perBucket[b.Le] != b.Count {
					t.Fatalf("trial %d: histogram %q bucket le=%d: prom %d, JSON %d",
						trial, key, b.Le, perBucket[b.Le], b.Count)
				}
			}
		}
	}
}

// promSeriesValue finds the exact series for a registry key (base name +
// encoded labels) in a parsed doc.
func promSeriesValue(doc *PromDoc, sampleName, regKey string) (float64, bool) {
	_, labels := splitKey(regKey)
	for _, f := range doc.Families {
		for _, s := range f.Samples {
			if s.Name != sampleName {
				continue
			}
			if labelSignature(s.Labels, "") == labels {
				return s.Value, true
			}
		}
	}
	return 0, false
}

// TestPromScrapeWhileRecording races scrapes against recorders; run
// under -race it proves /metrics is safe on a live server, and every
// scrape must still pass the strict parser (cumulativity holds
// mid-recording because buckets are read once per scrape).
func TestPromScrapeWhileRecording(t *testing.T) {
	reg := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := reg.CounterL("req", "worker", strconv.Itoa(g))
			h := reg.Histogram("lat")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				if i%3 == 0 {
					h.ObserveEx(int64(i%100000), "4bf92f3577b34da6a3ce929d0e0e4736")
				} else {
					h.Observe(int64(i % 100000))
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := reg.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseProm(&buf); err != nil {
			t.Fatalf("scrape %d invalid mid-recording: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestLabeledResolutionStable(t *testing.T) {
	reg := NewRegistry()
	a := reg.CounterL("x", "b", "2", "a", "1")
	b := reg.CounterL("x", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order changed series identity")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("labeled series not shared")
	}
	var nilReg *Registry
	if nilReg.CounterL("x", "a", "1") != nil {
		t.Fatal("nil registry must resolve nil labeled handles")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd label count must panic")
		}
	}()
	reg.CounterL("y", "only-key")
}
