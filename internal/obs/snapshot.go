package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Snapshot is a point-in-time, JSON-serialisable view of a registry. It is
// the machine-readable per-run evidence the CLIs emit with -metrics and
// the harness reads for the F4 "observed cost" section.
type Snapshot struct {
	Counters   map[string]int64            `json:"counters,omitempty"`
	Gauges     map[string]float64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
}

// HistogramSummary condenses one histogram: totals, mean, the standard
// latency percentiles, and the non-empty buckets.
type HistogramSummary struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Buckets lists only the occupied buckets, smallest bound first.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one occupied histogram bucket: Count observations ≤ Le (the
// overflow bucket reports Le = -1).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Summary condenses the histogram's current state.
func (h *Histogram) Summary() HistogramSummary {
	if h == nil {
		return HistogramSummary{}
	}
	s := HistogramSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  sanitize(h.Mean()),
		P50:   sanitize(h.Quantile(0.50)),
		P95:   sanitize(h.Quantile(0.95)),
		P99:   sanitize(h.Quantile(0.99)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		le := int64(-1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{Le: le, Count: c})
	}
	return s
}

// sanitize maps non-finite values to 0 so a snapshot always marshals —
// encoding/json rejects NaN and ±Inf.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Snapshot captures every registered metric. Concurrent recorders may race
// with the capture; each individual value is still atomically consistent.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for n, c := range counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for n, g := range gauges {
			s.Gauges[n] = sanitize(g.Value())
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSummary, len(hists))
		for n, h := range hists {
			s.Histograms[n] = h.Summary()
		}
	}
	return s
}

// WriteJSON serialises a snapshot of the registry as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("obs: encode snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot parses a snapshot previously written by WriteJSON.
func ReadSnapshot(rd io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(rd).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: decode snapshot: %w", err)
	}
	return s, nil
}
