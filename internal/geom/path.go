package geom

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Path is an arc-length parameterised planar curve. Implementations must be
// immutable after construction so they can be shared across goroutines.
type Path interface {
	// Length returns the total arc length of the path in metres.
	Length() float64
	// PointAt returns the point at arc length s, clamped to [0, Length].
	PointAt(s float64) Vec2
	// HeadingAt returns the tangent direction at arc length s.
	HeadingAt(s float64) float64
	// CurvatureAt returns the signed curvature κ at arc length s
	// (positive = turning left).
	CurvatureAt(s float64) float64
	// Project returns the arc length of the point on the path closest to q,
	// and the signed lateral offset of q from the path (positive = left of
	// the tangent).
	Project(q Vec2) (s, lateral float64)
	// Closed reports whether the path is a loop (end joins start).
	Closed() bool
}

// Polyline is a piecewise-linear Path through a sequence of vertices.
// Curvature is estimated from the turn angle at interior vertices, smeared
// over the neighbouring half-segments.
type Polyline struct {
	pts    []Vec2
	cum    []float64 // cumulative arc length at each vertex
	closed bool
}

// ErrDegeneratePath is returned when a path cannot be constructed from the
// given vertices (fewer than two distinct points, or non-finite input).
var ErrDegeneratePath = errors.New("geom: degenerate path")

// NewPolyline builds an open polyline through pts. Consecutive duplicate
// points are removed. At least two distinct points are required.
func NewPolyline(pts []Vec2) (*Polyline, error) { return newPolyline(pts, false) }

// NewClosedPolyline builds a closed polyline (loop). The closing segment
// from the last point back to the first is implicit; the caller should not
// repeat the first point.
func NewClosedPolyline(pts []Vec2) (*Polyline, error) { return newPolyline(pts, true) }

func newPolyline(pts []Vec2, closed bool) (*Polyline, error) {
	clean := make([]Vec2, 0, len(pts))
	for _, p := range pts {
		if !p.IsFinite() {
			return nil, fmt.Errorf("%w: non-finite vertex %v", ErrDegeneratePath, p)
		}
		if len(clean) > 0 && clean[len(clean)-1].Dist(p) < 1e-12 {
			continue
		}
		clean = append(clean, p)
	}
	if closed && len(clean) > 1 && clean[0].Dist(clean[len(clean)-1]) < 1e-12 {
		clean = clean[:len(clean)-1]
	}
	if len(clean) < 2 || (closed && len(clean) < 3) {
		return nil, fmt.Errorf("%w: need at least %d distinct points, got %d",
			ErrDegeneratePath, map[bool]int{false: 2, true: 3}[closed], len(clean))
	}
	n := len(clean)
	segs := n - 1
	if closed {
		segs = n
	}
	cum := make([]float64, segs+1)
	for i := 0; i < segs; i++ {
		a := clean[i]
		b := clean[(i+1)%n]
		cum[i+1] = cum[i] + a.Dist(b)
	}
	return &Polyline{pts: clean, cum: cum, closed: closed}, nil
}

// Points returns a copy of the polyline's vertices.
func (p *Polyline) Points() []Vec2 {
	out := make([]Vec2, len(p.pts))
	copy(out, p.pts)
	return out
}

// Length implements Path.
func (p *Polyline) Length() float64 { return p.cum[len(p.cum)-1] }

// Closed implements Path.
func (p *Polyline) Closed() bool { return p.closed }

// wrap clamps (open) or wraps (closed) an arc length into [0, Length).
func (p *Polyline) wrap(s float64) float64 {
	L := p.Length()
	if p.closed {
		s = math.Mod(s, L)
		if s < 0 {
			s += L
		}
		return s
	}
	return Clamp(s, 0, L)
}

// segment locates the segment index containing arc length s and the offset
// into it. s must already be wrapped.
func (p *Polyline) segment(s float64) (idx int, t float64) {
	// cum is sorted; find first cum[i+1] >= s.
	idx = sort.SearchFloat64s(p.cum, s)
	if idx > 0 {
		idx--
	}
	if idx >= len(p.cum)-1 {
		idx = len(p.cum) - 2
	}
	segLen := p.cum[idx+1] - p.cum[idx]
	if segLen <= 0 {
		return idx, 0
	}
	return idx, (s - p.cum[idx]) / segLen
}

func (p *Polyline) segStart(i int) Vec2 { return p.pts[i] }
func (p *Polyline) segEnd(i int) Vec2   { return p.pts[(i+1)%len(p.pts)] }

// PointAt implements Path.
func (p *Polyline) PointAt(s float64) Vec2 {
	i, t := p.segment(p.wrap(s))
	return p.segStart(i).Lerp(p.segEnd(i), t)
}

// HeadingAt implements Path.
func (p *Polyline) HeadingAt(s float64) float64 {
	i, _ := p.segment(p.wrap(s))
	return p.segEnd(i).Sub(p.segStart(i)).Angle()
}

// CurvatureAt implements Path. The curvature at an interior vertex with
// turn angle Δθ between segments of lengths l1 and l2 is approximated as
// Δθ/((l1+l2)/2), attributed to the half-segments adjacent to the vertex.
func (p *Polyline) CurvatureAt(s float64) float64 {
	s = p.wrap(s)
	i, t := p.segment(s)
	nSeg := len(p.cum) - 1
	// Choose the vertex nearer to s along the current segment.
	var vtx int // vertex index whose turn we sample
	if t < 0.5 {
		vtx = i
	} else {
		vtx = i + 1
	}
	if !p.closed {
		if vtx <= 0 || vtx >= nSeg {
			return 0 // endpoints of an open path have no defined turn
		}
	}
	vtx = vtx % nSeg
	prev := (vtx - 1 + nSeg) % nSeg
	if !p.closed && vtx == 0 {
		return 0
	}
	a := p.segEnd(prev).Sub(p.segStart(prev))
	b := p.segEnd(vtx).Sub(p.segStart(vtx))
	dTheta := AngleDiff(b.Angle(), a.Angle())
	span := (a.Norm() + b.Norm()) / 2
	if span <= 0 {
		return 0
	}
	return dTheta / span
}

// Project implements Path. It scans all segments; polylines used in the
// simulator are resampled to a bounded number of vertices, so the linear
// scan is cheap and, unlike local search, robust to self-approaching paths.
func (p *Polyline) Project(q Vec2) (s, lateral float64) {
	bestD2 := math.Inf(1)
	bestS := 0.0
	bestLat := 0.0
	nSeg := len(p.cum) - 1
	for i := 0; i < nSeg; i++ {
		a, b := p.segStart(i), p.segEnd(i)
		ab := b.Sub(a)
		L2 := ab.NormSq()
		var t float64
		if L2 > 0 {
			t = Clamp(q.Sub(a).Dot(ab)/L2, 0, 1)
		}
		cp := a.Lerp(b, t)
		d2 := q.Sub(cp).NormSq()
		if d2 < bestD2 {
			bestD2 = d2
			bestS = p.cum[i] + t*math.Sqrt(L2)
			// Signed offset: positive when q is left of the segment tangent.
			bestLat = math.Copysign(math.Sqrt(d2), ab.Cross(q.Sub(a)))
		}
	}
	// cum[] is a running sum while the projection recomputes the final
	// segment length with Sqrt; at t=1 they can disagree by one ULP, so
	// clamp to keep the documented s ∈ [0, Length] contract exact.
	return Clamp(bestS, 0, p.Length()), bestLat
}

// Resample returns a new polyline with vertices spaced ds apart along the
// arc (the final vertex lands exactly on the path end for open paths).
func (p *Polyline) Resample(ds float64) (*Polyline, error) {
	if ds <= 0 {
		return nil, fmt.Errorf("geom: Resample spacing must be positive, got %g", ds)
	}
	L := p.Length()
	n := int(math.Ceil(L/ds)) + 1
	pts := make([]Vec2, 0, n)
	for i := 0; i < n; i++ {
		s := float64(i) * ds
		if s > L {
			s = L
		}
		pts = append(pts, p.PointAt(s))
	}
	if p.closed {
		return NewClosedPolyline(pts)
	}
	if pts[len(pts)-1].Dist(p.PointAt(L)) > 1e-9 {
		pts = append(pts, p.PointAt(L))
	}
	return NewPolyline(pts)
}
