package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestVecBasicAlgebra(t *testing.T) {
	a := V(3, 4)
	b := V(-1, 2)
	if got := a.Add(b); got != V(2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(4, 2) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	approx(t, a.Dot(b), 5, eps, "Dot")
	approx(t, a.Cross(b), 10, eps, "Cross")
	approx(t, a.Norm(), 5, eps, "Norm")
	approx(t, a.NormSq(), 25, eps, "NormSq")
	approx(t, a.Dist(b), math.Hypot(4, 2), eps, "Dist")
}

func TestVecUnitZeroSafe(t *testing.T) {
	if got := (Vec2{}).Unit(); got != (Vec2{}) {
		t.Errorf("Unit of zero = %v, want zero", got)
	}
	u := V(3, 4).Unit()
	approx(t, u.Norm(), 1, eps, "unit norm")
}

func TestVecRotate(t *testing.T) {
	v := V(1, 0)
	r := v.Rotate(math.Pi / 2)
	approx(t, r.X, 0, eps, "rotate x")
	approx(t, r.Y, 1, eps, "rotate y")
	if got := v.Perp(); got != V(0, 1) {
		t.Errorf("Perp = %v", got)
	}
}

func TestVecLerp(t *testing.T) {
	a, b := V(0, 0), V(10, -10)
	if got := a.Lerp(b, 0.5); got != V(5, -5) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestVecIsFinite(t *testing.T) {
	if !V(1, 2).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	for _, v := range []Vec2{{math.NaN(), 0}, {0, math.Inf(1)}, {math.Inf(-1), math.NaN()}} {
		if v.IsFinite() {
			t.Errorf("%v reported finite", v)
		}
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi}, // boundary maps to +π
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
		{5 * math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		approx(t, NormalizeAngle(c.in), c.want, eps, "NormalizeAngle")
	}
	if !math.IsNaN(NormalizeAngle(math.NaN())) {
		t.Error("NaN should pass through")
	}
}

func TestNormalizeAngleProperty(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e12 {
			return true // skip pathological magnitudes where mod loses precision
		}
		n := NormalizeAngle(a)
		if n <= -math.Pi || n > math.Pi {
			return false
		}
		// Same direction: unit vectors must agree.
		d := V(math.Cos(a), math.Sin(a)).Dist(V(math.Cos(n), math.Sin(n)))
		return d < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleDiff(t *testing.T) {
	approx(t, AngleDiff(0.1, -0.1), 0.2, eps, "small diff")
	// Wraparound: from +175° to -175° is +10°.
	approx(t, AngleDiff(Deg(-175), Deg(175)), Deg(10), 1e-9, "wrap diff")
	approx(t, AngleDiff(Deg(175), Deg(-175)), Deg(-10), 1e-9, "wrap diff rev")
}

func TestAngleLerp(t *testing.T) {
	got := AngleLerp(Deg(170), Deg(-170), 0.5)
	approx(t, got, math.Pi, 1e-9, "lerp across the cut")
}

func TestPoseTransforms(t *testing.T) {
	p := NewPose(1, 2, math.Pi/2)
	// World point one unit ahead of pose is (1,3).
	body := p.TransformTo(V(1, 3))
	approx(t, body.X, 1, eps, "body x")
	approx(t, body.Y, 0, eps, "body y")
	back := p.TransformFrom(body)
	approx(t, back.X, 1, eps, "roundtrip x")
	approx(t, back.Y, 3, eps, "roundtrip y")
}

func TestPoseTransformRoundtripProperty(t *testing.T) {
	f := func(px, py, h, qx, qy float64) bool {
		for _, v := range []float64{px, py, h, qx, qy} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		p := NewPose(px, py, h)
		q := V(qx, qy)
		r := p.TransformFrom(p.TransformTo(q))
		return r.Dist(q) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoseDirections(t *testing.T) {
	p := NewPose(0, 0, 0)
	if p.Forward().Dist(V(1, 0)) > eps {
		t.Error("forward at heading 0")
	}
	if p.Left().Dist(V(0, 1)) > eps {
		t.Error("left at heading 0")
	}
}

func TestClamp(t *testing.T) {
	approx(t, Clamp(5, 0, 1), 1, 0, "above")
	approx(t, Clamp(-5, 0, 1), 0, 0, "below")
	approx(t, Clamp(0.5, 0, 1), 0.5, 0, "inside")
	defer func() {
		if recover() == nil {
			t.Error("Clamp with inverted bounds should panic")
		}
	}()
	Clamp(0, 1, -1)
}

func TestDegConversions(t *testing.T) {
	approx(t, Deg(180), math.Pi, eps, "Deg")
	approx(t, ToDeg(math.Pi), 180, eps, "ToDeg")
}
