package geom

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustPolyline(t *testing.T, pts []Vec2) *Polyline {
	t.Helper()
	p, err := NewPolyline(pts)
	if err != nil {
		t.Fatalf("NewPolyline: %v", err)
	}
	return p
}

func TestPolylineRejectsDegenerate(t *testing.T) {
	if _, err := NewPolyline(nil); !errors.Is(err, ErrDegeneratePath) {
		t.Errorf("nil points: err=%v", err)
	}
	if _, err := NewPolyline([]Vec2{{1, 1}, {1, 1}}); !errors.Is(err, ErrDegeneratePath) {
		t.Errorf("duplicate points: err=%v", err)
	}
	if _, err := NewPolyline([]Vec2{{0, 0}, {math.NaN(), 1}}); !errors.Is(err, ErrDegeneratePath) {
		t.Errorf("NaN point: err=%v", err)
	}
	if _, err := NewClosedPolyline([]Vec2{{0, 0}, {1, 0}}); !errors.Is(err, ErrDegeneratePath) {
		t.Errorf("2-point loop: err=%v", err)
	}
}

func TestPolylineLengthAndPointAt(t *testing.T) {
	p := mustPolyline(t, []Vec2{{0, 0}, {3, 0}, {3, 4}})
	approx(t, p.Length(), 7, eps, "length")
	got := p.PointAt(3)
	if got.Dist(V(3, 0)) > eps {
		t.Errorf("PointAt(3) = %v", got)
	}
	got = p.PointAt(5)
	if got.Dist(V(3, 2)) > eps {
		t.Errorf("PointAt(5) = %v", got)
	}
	// Clamping.
	if p.PointAt(-1).Dist(V(0, 0)) > eps {
		t.Error("PointAt(-1) should clamp to start")
	}
	if p.PointAt(100).Dist(V(3, 4)) > eps {
		t.Error("PointAt(100) should clamp to end")
	}
}

func TestPolylineHeading(t *testing.T) {
	p := mustPolyline(t, []Vec2{{0, 0}, {1, 0}, {1, 1}})
	approx(t, p.HeadingAt(0.5), 0, eps, "first segment heading")
	approx(t, p.HeadingAt(1.5), math.Pi/2, eps, "second segment heading")
}

func TestClosedPolylineWraps(t *testing.T) {
	sq, err := NewClosedPolyline([]Vec2{{0, 0}, {1, 0}, {1, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sq.Length(), 4, eps, "square perimeter")
	if !sq.Closed() {
		t.Error("Closed() = false")
	}
	// Wrapping: s=4.5 equals s=0.5.
	if sq.PointAt(4.5).Dist(sq.PointAt(0.5)) > eps {
		t.Error("wrap at s=4.5")
	}
	if sq.PointAt(-0.5).Dist(sq.PointAt(3.5)) > eps {
		t.Error("negative wrap")
	}
}

func TestPolylineProject(t *testing.T) {
	p := mustPolyline(t, []Vec2{{0, 0}, {10, 0}})
	s, lat := p.Project(V(3, 2))
	approx(t, s, 3, eps, "project s")
	approx(t, lat, 2, eps, "project lateral (left positive)")
	s, lat = p.Project(V(7, -1))
	approx(t, s, 7, eps, "project s right side")
	approx(t, lat, -1, eps, "project lateral right side")
	// Beyond the end clamps to the endpoint.
	s, _ = p.Project(V(15, 0))
	approx(t, s, 10, eps, "project past end")
}

func TestPolylineProjectRoundtripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Random jagged open path.
	pts := []Vec2{{0, 0}}
	for i := 0; i < 20; i++ {
		last := pts[len(pts)-1]
		pts = append(pts, last.Add(V(rng.Float64()*5+0.5, rng.Float64()*4-2)))
	}
	p := mustPolyline(t, pts)
	f := func(frac float64) bool {
		if math.IsNaN(frac) || math.IsInf(frac, 0) {
			return true
		}
		frac = math.Abs(math.Mod(frac, 1))
		s := frac * p.Length()
		q := p.PointAt(s)
		s2, lat := p.Project(q)
		// A point on the path projects to itself with ~zero lateral offset.
		return math.Abs(lat) < 1e-6 && p.PointAt(s2).Dist(q) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPolylineCurvatureSign(t *testing.T) {
	// Left turn: positive curvature near the corner.
	left := mustPolyline(t, []Vec2{{0, 0}, {5, 0}, {5, 5}})
	if k := left.CurvatureAt(5); k <= 0 {
		t.Errorf("left turn curvature = %g, want > 0", k)
	}
	right := mustPolyline(t, []Vec2{{0, 0}, {5, 0}, {5, -5}})
	if k := right.CurvatureAt(5); k >= 0 {
		t.Errorf("right turn curvature = %g, want < 0", k)
	}
	// Open-path endpoints have zero turn.
	if k := left.CurvatureAt(0); k != 0 {
		t.Errorf("start curvature = %g, want 0", k)
	}
}

func TestPolylineResample(t *testing.T) {
	p := mustPolyline(t, []Vec2{{0, 0}, {10, 0}})
	r, err := p.Resample(1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.Length(), 10, 1e-6, "resampled length")
	if n := len(r.Points()); n != 11 {
		t.Errorf("resampled vertex count = %d, want 11", n)
	}
	if _, err := p.Resample(0); err == nil {
		t.Error("Resample(0) should fail")
	}
}

func TestPolylineArcLengthMonotoneProperty(t *testing.T) {
	p := mustPolyline(t, []Vec2{{0, 0}, {4, 1}, {6, -2}, {9, 3}, {12, 3}})
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		a = math.Abs(math.Mod(a, 1)) * p.Length()
		b = math.Abs(math.Mod(b, 1)) * p.Length()
		if a > b {
			a, b = b, a
		}
		// Distance along chord never exceeds arc-length difference.
		return p.PointAt(a).Dist(p.PointAt(b)) <= (b-a)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
