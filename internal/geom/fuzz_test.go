package geom

import (
	"math"
	"testing"
)

// fuzzCoordBound caps fuzzed coordinates. The spline lattice is resampled
// at a fixed spacing, so unbounded-but-finite control points would make
// construction allocate O(path length) vertices; 1e4 m keeps the worst
// case around a hundred thousand lattice points while still exercising
// extreme geometry.
const fuzzCoordBound = 1e4

// FuzzSplineProject drives spline construction and point projection with
// arbitrary control and query points. Contract under test: for any spline
// that construction accepts, Project never panics, returns finite
// (arc, lateral), and the arc stays within [0, Length] — i.e. the
// normalised parameter t = arc/Length is always in [0, 1].
func FuzzSplineProject(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 0.0, 20.0, 5.0, 30.0, 5.0, 15.0, 2.0, false)
	f.Add(0.0, 0.0, 10.0, 0.0, 10.0, 10.0, 0.0, 10.0, 5.0, 5.0, true)
	f.Add(-50.0, -50.0, 0.0, 80.0, 50.0, -50.0, 0.0, 0.0, 100.0, 100.0, false)
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2, x3, y3, x4, y4, qx, qy float64, closed bool) {
		coords := []float64{x1, y1, x2, y2, x3, y3, x4, y4, qx, qy}
		for _, c := range coords {
			if math.IsNaN(c) || math.Abs(c) > fuzzCoordBound {
				t.Skip("out-of-scope input")
			}
		}
		ctrl := []Vec2{{X: x1, Y: y1}, {X: x2, Y: y2}, {X: x3, Y: y3}, {X: x4, Y: y4}}
		s, err := NewSpline(ctrl, SplineOpts{Closed: closed})
		if err != nil {
			// Degenerate control sets are rejected, not projected.
			return
		}
		q := Vec2{X: qx, Y: qy}
		arc, lateral := s.Project(q)
		if math.IsNaN(arc) || math.IsInf(arc, 0) {
			t.Fatalf("Project(%v) arc not finite: %g", q, arc)
		}
		if math.IsNaN(lateral) || math.IsInf(lateral, 0) {
			t.Fatalf("Project(%v) lateral not finite: %g", q, lateral)
		}
		length := s.Length()
		if arc < 0 || arc > length {
			t.Fatalf("Project(%v) arc %g outside [0, %g]", q, arc, length)
		}
		if length > 0 {
			if tt := arc / length; tt < 0 || tt > 1 {
				t.Fatalf("normalised parameter %g outside [0, 1]", tt)
			}
		}
		// The projected foot point must itself be a finite point on the path.
		p := s.PointAt(arc)
		if !p.IsFinite() {
			t.Fatalf("PointAt(%g) not finite: %v", arc, p)
		}
		if h := s.HeadingAt(arc); math.IsNaN(h) || math.IsInf(h, 0) {
			t.Fatalf("HeadingAt(%g) not finite: %g", arc, h)
		}
	})
}
