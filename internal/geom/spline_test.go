package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func circleControls(r float64, n int) []Vec2 {
	pts := make([]Vec2, n)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = V(r*math.Cos(a), r*math.Sin(a))
	}
	return pts
}

func TestSplineRejectsDegenerate(t *testing.T) {
	if _, err := NewSpline(nil, SplineOpts{}); err == nil {
		t.Error("nil controls should fail")
	}
	if _, err := NewSpline([]Vec2{{0, 0}, {1, 1}}, SplineOpts{Closed: true}); err == nil {
		t.Error("2-point closed spline should fail")
	}
	if _, err := NewSpline([]Vec2{{0, 0}, {math.Inf(1), 0}}, SplineOpts{}); err == nil {
		t.Error("inf control should fail")
	}
}

func TestSplineInterpolatesControls(t *testing.T) {
	ctrl := []Vec2{{0, 0}, {5, 2}, {10, -1}, {15, 4}}
	sp, err := NewSpline(ctrl, SplineOpts{Spacing: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ctrl {
		s, lat := sp.Project(c)
		if math.Abs(lat) > 0.02 {
			t.Errorf("control %v is %.4f m off the spline (s=%.2f)", c, lat, s)
		}
	}
}

func TestSplineCircleGeometry(t *testing.T) {
	const r = 20.0
	sp, err := NewSpline(circleControls(r, 24), SplineOpts{Spacing: 0.2, Closed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Closed() {
		t.Fatal("circle spline should be closed")
	}
	wantLen := 2 * math.Pi * r
	if math.Abs(sp.Length()-wantLen) > 0.02*wantLen {
		t.Errorf("circle length = %.2f, want ~%.2f", sp.Length(), wantLen)
	}
	// Curvature ≈ 1/r everywhere (CCW circle → positive).
	for i := 0; i < 50; i++ {
		s := sp.Length() * float64(i) / 50
		k := sp.CurvatureAt(s)
		if math.Abs(k-1/r) > 0.15/r {
			t.Fatalf("curvature at s=%.1f is %.5f, want ~%.5f", s, k, 1/r)
		}
	}
	// Points lie on the circle.
	for i := 0; i < 50; i++ {
		s := sp.Length() * float64(i) / 50
		if d := math.Abs(sp.PointAt(s).Norm() - r); d > 0.05 {
			t.Fatalf("point at s=%.1f is %.3f m off the circle", s, d)
		}
	}
}

func TestSplineHeadingTangency(t *testing.T) {
	const r = 15.0
	sp, err := NewSpline(circleControls(r, 24), SplineOpts{Spacing: 0.2, Closed: true})
	if err != nil {
		t.Fatal(err)
	}
	// On a CCW circle the tangent is perpendicular to the radius, rotated +90°.
	for i := 0; i < 40; i++ {
		s := sp.Length() * float64(i) / 40
		p := sp.PointAt(s)
		want := p.Unit().Perp().Angle()
		got := sp.HeadingAt(s)
		if math.Abs(AngleDiff(got, want)) > 0.05 {
			t.Fatalf("heading at s=%.1f: got %.3f want %.3f", s, got, want)
		}
	}
}

func TestSplineStraightLineZeroCurvature(t *testing.T) {
	sp, err := NewSpline([]Vec2{{0, 0}, {10, 0}, {20, 0}, {30, 0}}, SplineOpts{Spacing: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 20; i++ {
		s := sp.Length() * float64(i) / 20
		if k := math.Abs(sp.CurvatureAt(s)); k > 1e-6 {
			t.Fatalf("straight spline curvature at s=%.1f = %g", s, k)
		}
	}
	approx(t, sp.Length(), 30, 0.01, "straight length")
}

func TestSplineProjectProperty(t *testing.T) {
	sp, err := NewSpline(circleControls(25, 20), SplineOpts{Spacing: 0.25, Closed: true})
	if err != nil {
		t.Fatal(err)
	}
	f := func(frac, off float64) bool {
		if math.IsNaN(frac) || math.IsNaN(off) || math.IsInf(frac, 0) || math.IsInf(off, 0) {
			return true
		}
		frac = math.Abs(math.Mod(frac, 1))
		off = math.Mod(off, 3) // offsets well inside the circle radius
		s := frac * sp.Length()
		// Displace a path point laterally; projection must recover the offset.
		p := sp.PointAt(s)
		n := V(math.Cos(sp.HeadingAt(s)), math.Sin(sp.HeadingAt(s))).Perp()
		q := p.Add(n.Scale(off))
		_, lat := sp.Project(q)
		return math.Abs(lat-off) < 0.08
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSplineControlPointsCopied(t *testing.T) {
	ctrl := []Vec2{{0, 0}, {1, 0}, {2, 1}}
	sp, err := NewSpline(ctrl, SplineOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got := sp.ControlPoints()
	got[0] = V(99, 99)
	if sp.ControlPoints()[0] == V(99, 99) {
		t.Error("ControlPoints must return a copy")
	}
}
