package geom

import (
	"fmt"
	"math"
)

// Spline is a centripetal Catmull-Rom spline through a set of control
// points, arc-length parameterised by dense resampling. It produces the
// smooth reference paths the track library feeds to the controllers:
// C1-continuous position with a well-behaved curvature estimate.
//
// The spline is evaluated through an internal fine polyline (the "lattice")
// so that PointAt/Project run in time independent of the analytic form;
// curvature is computed analytically from the spline derivatives and
// sampled onto the lattice.
type Spline struct {
	ctrl    []Vec2
	closed  bool
	lattice *Polyline
	// kappa[i] is the analytic curvature at lattice vertex i.
	kappa []float64
}

// SplineOpts configures spline construction.
type SplineOpts struct {
	// Spacing is the lattice resample spacing in metres (default 0.25).
	Spacing float64
	// Closed makes the spline a loop through the control points.
	Closed bool
}

// NewSpline fits a centripetal Catmull-Rom spline through the control
// points. Open splines require ≥ 2 points, closed splines ≥ 3.
func NewSpline(ctrl []Vec2, opts SplineOpts) (*Spline, error) {
	spacing := opts.Spacing
	if spacing <= 0 {
		spacing = 0.25
	}
	clean := make([]Vec2, 0, len(ctrl))
	for _, p := range ctrl {
		if !p.IsFinite() {
			return nil, fmt.Errorf("%w: non-finite control point %v", ErrDegeneratePath, p)
		}
		if len(clean) > 0 && clean[len(clean)-1].Dist(p) < 1e-9 {
			continue
		}
		clean = append(clean, p)
	}
	if opts.Closed && len(clean) > 1 && clean[0].Dist(clean[len(clean)-1]) < 1e-9 {
		clean = clean[:len(clean)-1]
	}
	min := 2
	if opts.Closed {
		min = 3
	}
	if len(clean) < min {
		return nil, fmt.Errorf("%w: spline needs >= %d distinct control points, got %d",
			ErrDegeneratePath, min, len(clean))
	}

	s := &Spline{ctrl: clean, closed: opts.Closed}
	pts, kap := s.sample(spacing)
	var lat *Polyline
	var err error
	if opts.Closed {
		lat, err = NewClosedPolyline(pts)
	} else {
		lat, err = NewPolyline(pts)
	}
	if err != nil {
		return nil, err
	}
	s.lattice = lat
	s.kappa = kap
	return s, nil
}

// controlAt returns control point i with end handling: closed splines wrap,
// open splines clamp (which duplicates the end tangent — standard practice).
func (s *Spline) controlAt(i int) Vec2 {
	n := len(s.ctrl)
	if s.closed {
		return s.ctrl[((i%n)+n)%n]
	}
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return s.ctrl[i]
}

// segEval evaluates the centripetal Catmull-Rom segment between control
// points i and i+1 at parameter u ∈ [0,1], returning position and the first
// and second parametric derivatives.
func (s *Spline) segEval(i int, u float64) (p, dp, ddp Vec2) {
	p0 := s.controlAt(i - 1)
	p1 := s.controlAt(i)
	p2 := s.controlAt(i + 1)
	p3 := s.controlAt(i + 2)

	// Centripetal knot spacing (alpha = 0.5) converted to a uniform-basis
	// segment via tangent scaling. Compute non-uniform parameter values.
	t0 := 0.0
	t1 := t0 + math.Sqrt(p0.Dist(p1))
	t2 := t1 + math.Sqrt(p1.Dist(p2))
	t3 := t2 + math.Sqrt(p2.Dist(p3))
	// Guard repeated points (possible at clamped open ends).
	if t1 == t0 {
		t1 = t0 + 1e-9
	}
	if t2 <= t1 {
		t2 = t1 + 1e-9
	}
	if t3 <= t2 {
		t3 = t2 + 1e-9
	}

	// Tangents at p1 and p2 (Catmull-Rom with non-uniform knots).
	m1 := p1.Sub(p0).Scale(1 / (t1 - t0)).
		Sub(p2.Sub(p0).Scale(1 / (t2 - t0))).
		Add(p2.Sub(p1).Scale(1 / (t2 - t1))).
		Scale(t2 - t1)
	m2 := p2.Sub(p1).Scale(1 / (t2 - t1)).
		Sub(p3.Sub(p1).Scale(1 / (t3 - t1))).
		Add(p3.Sub(p2).Scale(1 / (t3 - t2))).
		Scale(t2 - t1)

	// Cubic Hermite basis in u.
	u2 := u * u
	u3 := u2 * u
	h00 := 2*u3 - 3*u2 + 1
	h10 := u3 - 2*u2 + u
	h01 := -2*u3 + 3*u2
	h11 := u3 - u2
	p = p1.Scale(h00).Add(m1.Scale(h10)).Add(p2.Scale(h01)).Add(m2.Scale(h11))

	dh00 := 6*u2 - 6*u
	dh10 := 3*u2 - 4*u + 1
	dh01 := -6*u2 + 6*u
	dh11 := 3*u2 - 2*u
	dp = p1.Scale(dh00).Add(m1.Scale(dh10)).Add(p2.Scale(dh01)).Add(m2.Scale(dh11))

	ddh00 := 12*u - 6
	ddh10 := 6*u - 4
	ddh01 := -12*u + 6
	ddh11 := 6*u - 2
	ddp = p1.Scale(ddh00).Add(m1.Scale(ddh10)).Add(p2.Scale(ddh01)).Add(m2.Scale(ddh11))
	return p, dp, ddp
}

// sample densely evaluates the spline into points spaced roughly `spacing`
// apart, with analytic curvature at each sample.
func (s *Spline) sample(spacing float64) ([]Vec2, []float64) {
	nSeg := len(s.ctrl) - 1
	if s.closed {
		nSeg = len(s.ctrl)
	}
	var pts []Vec2
	var kap []float64
	for i := 0; i < nSeg; i++ {
		segLen := s.controlAt(i).Dist(s.controlAt(i + 1))
		steps := int(math.Ceil(segLen/spacing)) + 1
		if steps < 2 {
			steps = 2
		}
		for j := 0; j < steps; j++ {
			if i > 0 && j == 0 {
				continue // shared with previous segment's last sample
			}
			u := float64(j) / float64(steps)
			p, dp, ddp := s.segEval(i, u)
			pts = append(pts, p)
			kap = append(kap, curvatureFromDerivs(dp, ddp))
		}
	}
	if !s.closed {
		p, dp, ddp := s.segEval(nSeg-1, 1)
		pts = append(pts, p)
		kap = append(kap, curvatureFromDerivs(dp, ddp))
	}
	return pts, kap
}

func curvatureFromDerivs(dp, ddp Vec2) float64 {
	den := math.Pow(dp.NormSq(), 1.5)
	if den < 1e-12 {
		return 0
	}
	return dp.Cross(ddp) / den
}

// Length implements Path.
func (s *Spline) Length() float64 { return s.lattice.Length() }

// Closed implements Path.
func (s *Spline) Closed() bool { return s.closed }

// PointAt implements Path.
func (s *Spline) PointAt(arc float64) Vec2 { return s.lattice.PointAt(arc) }

// HeadingAt implements Path.
func (s *Spline) HeadingAt(arc float64) float64 { return s.lattice.HeadingAt(arc) }

// CurvatureAt implements Path, interpolating the analytic curvature
// sampled on the lattice.
func (s *Spline) CurvatureAt(arc float64) float64 {
	w := s.lattice.wrap(arc)
	i, t := s.lattice.segment(w)
	j := (i + 1) % len(s.kappa)
	return s.kappa[i]*(1-t) + s.kappa[j]*t
}

// Project implements Path.
func (s *Spline) Project(q Vec2) (arc, lateral float64) { return s.lattice.Project(q) }

// ControlPoints returns a copy of the spline's control polygon.
func (s *Spline) ControlPoints() []Vec2 {
	out := make([]Vec2, len(s.ctrl))
	copy(out, s.ctrl)
	return out
}

var _ Path = (*Spline)(nil)
var _ Path = (*Polyline)(nil)
