package geom

import "math"

// RangeProjector is implemented by paths that can project a point onto a
// bounded arc-length window. Route followers use it to keep a continuous
// arc position across self-intersecting paths (e.g. a figure-eight), where
// the globally nearest point may belong to the other branch.
type RangeProjector interface {
	// ProjectRange returns the arc position and signed lateral offset of
	// the point on the path closest to q, considering only arc positions
	// in [s0, s1] (wrapped on closed paths).
	ProjectRange(q Vec2, s0, s1 float64) (s, lateral float64)
}

// ProjectRange implements RangeProjector for polylines by scanning only the
// segments overlapping the window.
func (p *Polyline) ProjectRange(q Vec2, s0, s1 float64) (s, lateral float64) {
	if s1 <= s0 {
		return p.Project(q)
	}
	L := p.Length()
	if !p.closed {
		s0 = Clamp(s0, 0, L)
		s1 = Clamp(s1, 0, L)
		if s1 <= s0 {
			return p.Project(q)
		}
	} else if s1-s0 >= L {
		return p.Project(q)
	}

	bestD2 := math.Inf(1)
	bestS, bestLat := 0.0, 0.0
	nSeg := len(p.cum) - 1
	consider := func(i int) {
		a, b := p.segStart(i), p.segEnd(i)
		ab := b.Sub(a)
		L2 := ab.NormSq()
		var t float64
		if L2 > 0 {
			t = Clamp(q.Sub(a).Dot(ab)/L2, 0, 1)
		}
		cp := a.Lerp(b, t)
		d2 := q.Sub(cp).NormSq()
		if d2 < bestD2 {
			bestD2 = d2
			bestS = p.cum[i] + t*math.Sqrt(L2)
			bestLat = math.Copysign(math.Sqrt(d2), ab.Cross(q.Sub(a)))
		}
	}
	inWindow := func(lo, hi float64) bool {
		if !p.closed {
			return hi >= s0 && lo <= s1
		}
		// Wrap the window into [0, L) pieces.
		w0 := math.Mod(s0, L)
		if w0 < 0 {
			w0 += L
		}
		w1 := w0 + (s1 - s0)
		if w1 <= L {
			return hi >= w0 && lo <= w1
		}
		return hi >= w0 || lo <= w1-L
	}
	for i := 0; i < nSeg; i++ {
		if inWindow(p.cum[i], p.cum[i+1]) {
			consider(i)
		}
	}
	if math.IsInf(bestD2, 1) {
		return p.Project(q)
	}
	// Same one-ULP guard as Project: the summed cum[] and the recomputed
	// segment Sqrt can land bestS marginally past Length().
	return Clamp(bestS, 0, L), bestLat
}

// ProjectRange implements RangeProjector for splines via the lattice.
func (s *Spline) ProjectRange(q Vec2, s0, s1 float64) (arc, lateral float64) {
	return s.lattice.ProjectRange(q, s0, s1)
}

var (
	_ RangeProjector = (*Polyline)(nil)
	_ RangeProjector = (*Spline)(nil)
)
