// Package geom provides the planar geometry substrate used throughout
// ADAssure: 2-D vectors, poses, angle arithmetic on the circle, polyline
// and spline paths with arc-length parameterisation, curvature estimation
// and point-to-path projection.
//
// All quantities use SI units (metres, radians, seconds) and a right-handed
// coordinate frame with x east, y north, and heading measured
// counter-clockwise from the +x axis.
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a point or displacement in the plane.
type Vec2 struct {
	X, Y float64
}

// V is shorthand for constructing a Vec2.
func V(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z component of the 3-D cross product v×w.
// Positive when w is counter-clockwise from v.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// NormSq returns the squared Euclidean length of v.
func (v Vec2) NormSq() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Unit returns v normalised to length 1. The zero vector is returned
// unchanged, so callers never divide by zero.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n == 0 {
		return Vec2{}
	}
	return v.Scale(1 / n)
}

// Perp returns v rotated +90° (counter-clockwise).
func (v Vec2) Perp() Vec2 { return Vec2{-v.Y, v.X} }

// Rotate returns v rotated by theta radians counter-clockwise.
func (v Vec2) Rotate(theta float64) Vec2 {
	s, c := math.Sincos(theta)
	return Vec2{c*v.X - s*v.Y, s*v.X + c*v.Y}
}

// Angle returns the direction of v in radians in (-π, π].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Lerp linearly interpolates from v to w; t=0 gives v, t=1 gives w.
func (v Vec2) Lerp(w Vec2, t float64) Vec2 {
	return Vec2{v.X + (w.X-v.X)*t, v.Y + (w.Y-v.Y)*t}
}

// IsFinite reports whether both components are finite numbers.
func (v Vec2) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0)
}

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%.3f, %.3f)", v.X, v.Y) }

// Pose is a planar rigid-body configuration: position plus heading.
type Pose struct {
	Pos     Vec2
	Heading float64 // radians, CCW from +x, normalised to (-π, π]
}

// NewPose constructs a pose with the heading normalised.
func NewPose(x, y, heading float64) Pose {
	return Pose{Pos: Vec2{x, y}, Heading: NormalizeAngle(heading)}
}

// Forward returns the unit vector in the pose's heading direction.
func (p Pose) Forward() Vec2 {
	s, c := math.Sincos(p.Heading)
	return Vec2{c, s}
}

// Left returns the unit vector 90° left of the heading.
func (p Pose) Left() Vec2 { return p.Forward().Perp() }

// TransformTo expresses the world-frame point q in the pose's body frame
// (x forward, y left).
func (p Pose) TransformTo(q Vec2) Vec2 {
	return q.Sub(p.Pos).Rotate(-p.Heading)
}

// TransformFrom expresses the body-frame point q in the world frame.
func (p Pose) TransformFrom(q Vec2) Vec2 {
	return q.Rotate(p.Heading).Add(p.Pos)
}

// String implements fmt.Stringer.
func (p Pose) String() string {
	return fmt.Sprintf("pose{%s, θ=%.3f}", p.Pos, p.Heading)
}

// NormalizeAngle wraps an angle to (-π, π].
func NormalizeAngle(a float64) float64 {
	if math.IsNaN(a) || math.IsInf(a, 0) {
		return a
	}
	a = math.Mod(a, 2*math.Pi)
	switch {
	case a <= -math.Pi:
		a += 2 * math.Pi
	case a > math.Pi:
		a -= 2 * math.Pi
	}
	return a
}

// AngleDiff returns the signed smallest rotation taking b to a,
// i.e. normalize(a-b), in (-π, π].
func AngleDiff(a, b float64) float64 { return NormalizeAngle(a - b) }

// AngleLerp interpolates between two angles along the shortest arc.
func AngleLerp(a, b, t float64) float64 {
	return NormalizeAngle(a + AngleDiff(b, a)*t)
}

// Clamp limits x to [lo, hi]. It panics if lo > hi.
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		panic(fmt.Sprintf("geom: Clamp bounds inverted: lo=%g hi=%g", lo, hi))
	}
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	}
	return x
}

// Deg converts degrees to radians.
func Deg(d float64) float64 { return d * math.Pi / 180 }

// ToDeg converts radians to degrees.
func ToDeg(r float64) float64 { return r * 180 / math.Pi }
