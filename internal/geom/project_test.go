package geom

import (
	"math"
	"testing"
)

func TestProjectRangeRestrictsWindow(t *testing.T) {
	// A U-shaped path whose two legs are spatially close: global projection
	// from a point near leg 1 but slightly closer to leg 2 picks leg 2; a
	// windowed projection around leg 1 must stay on leg 1.
	p := mustPolyline(t, []Vec2{{0, 0}, {20, 0}, {20, 4}, {0, 4}})
	q := V(10, 2.5) // between the legs, nearer the return leg (y=4)
	sGlobal, _ := p.Project(q)
	if sGlobal < 24 { // 20 + 4 → return leg starts at s=24
		t.Fatalf("global projection s=%.1f should pick the return leg", sGlobal)
	}
	sLocal, lat := p.ProjectRange(q, 5, 15)
	if sLocal < 5 || sLocal > 15 {
		t.Errorf("windowed projection escaped: s=%.1f", sLocal)
	}
	if math.Abs(lat-2.5) > 1e-9 {
		t.Errorf("windowed lateral = %g, want 2.5", lat)
	}
}

func TestProjectRangeEmptyWindowFallsBack(t *testing.T) {
	p := mustPolyline(t, []Vec2{{0, 0}, {10, 0}})
	s, lat := p.ProjectRange(V(3, 1), 8, 4) // inverted window
	sg, lg := p.Project(V(3, 1))
	if s != sg || lat != lg {
		t.Error("inverted window should fall back to global projection")
	}
	// Window entirely outside an open path clamps to nothing → fallback.
	s, _ = p.ProjectRange(V(3, 1), 50, 60)
	if s != sg {
		t.Errorf("out-of-path window: s=%g, want global %g", s, sg)
	}
}

func TestProjectRangeWrapsOnClosedPaths(t *testing.T) {
	sq, err := NewClosedPolyline([]Vec2{{0, 0}, {10, 0}, {10, 10}, {0, 10}})
	if err != nil {
		t.Fatal(err)
	}
	// Window straddling the wrap point (s=38..42 on a 40 m loop covers the
	// last 2 m and first 2 m).
	q := V(1, -0.5) // near the start of the first edge
	s, lat := sq.ProjectRange(q, 38, 42)
	if s > 3 && s < 37 {
		t.Errorf("wrapped window projection s=%.1f escaped the window", s)
	}
	if math.Abs(lat+0.5) > 1e-9 {
		t.Errorf("lateral = %g, want -0.5", lat)
	}
	// Window covering the whole loop behaves like global.
	sg, _ := sq.Project(q)
	s, _ = sq.ProjectRange(q, 0, 100)
	if s != sg {
		t.Errorf("full window s=%g vs global %g", s, sg)
	}
}

func TestSplineProjectRangeDelegates(t *testing.T) {
	sp, err := NewSpline(circleControls(20, 24), SplineOpts{Spacing: 0.25, Closed: true})
	if err != nil {
		t.Fatal(err)
	}
	q := sp.PointAt(30).Add(V(0.5, 0))
	s, _ := sp.ProjectRange(q, 25, 35)
	if s < 25 || s > 35 {
		t.Errorf("spline windowed projection s=%.1f outside window", s)
	}
}
