package harness

import (
	"strings"
	"testing"
)

func TestX1ShapeGuardAblation(t *testing.T) {
	tb, err := ExtensionX1GuardAblation(quick())
	if err != nil {
		t.Fatal(err)
	}
	step := func(name string) float64 { return parseF(t, cell(t, tb, rowByFirst(t, tb, name), "step-spoof")) }
	drift := func(name string) float64 { return parseF(t, cell(t, tb, rowByFirst(t, tb, name), "drift-spoof")) }

	// The gate alone contains the step spoof but not the drift.
	if step("gate only") > step("none (unguarded)")*0.3 {
		t.Errorf("X1: gate only should contain the step spoof: %.2f vs %.2f",
			step("gate only"), step("none (unguarded)"))
	}
	if drift("gate only") < drift("none (unguarded)")*0.7 {
		t.Errorf("X1: gate only should NOT contain the drift: %.2f vs %.2f",
			drift("gate only"), drift("none (unguarded)"))
	}
	// Only the assertion trigger contains the drift.
	if drift("assertion only") > drift("none (unguarded)")*0.5 {
		t.Errorf("X1: assertion trigger should contain the drift: %.2f vs %.2f",
			drift("assertion only"), drift("none (unguarded)"))
	}
	// The full guard is at least as good as each component on both attacks.
	if step("full guard") > step("gate only")+0.5 || drift("full guard") > drift("assertion only")+0.5 {
		t.Errorf("X1: full guard worse than its components (step %.2f, drift %.2f)",
			step("full guard"), drift("full guard"))
	}
}

func TestX2ShapeDriftRateCrossover(t *testing.T) {
	tb, err := ExtensionX2DriftRateSweep(quick())
	if err != nil {
		t.Fatal(err)
	}
	lat := func(rate string) float64 { return parseF(t, cell(t, tb, rowByFirst(t, tb, rate), "mean latency (s)")) }
	// Latency monotone non-increasing in rate across the decisive range.
	if !(lat("0.50") > lat("2.00") && lat("2.00") >= lat("4.00")) {
		t.Errorf("X2: latency should fall with drift rate: 0.5→%.2f 2.0→%.2f 4.0→%.2f",
			lat("0.50"), lat("2.00"), lat("4.00"))
	}
	// Detector crossover: slow drift caught by a heading/ground-truth
	// cross-check, fast drift by the innovation/jump detectors.
	slowBy := cell(t, tb, rowByFirst(t, tb, "0.50"), "first assertion")
	fastBy := cell(t, tb, rowByFirst(t, tb, "4.00"), "first assertion")
	if slowBy != "A13" && slowBy != "A12" {
		t.Errorf("X2: slow drift first detector = %s, want A13/A12", slowBy)
	}
	if fastBy != "A10" && fastBy != "A1" {
		t.Errorf("X2: fast drift first detector = %s, want A10/A1", fastBy)
	}
	// Everything detected.
	for i := range tb.Rows {
		if det := cell(t, tb, i, "detected"); !strings.HasPrefix(det, "1/") {
			t.Errorf("X2: row %d undetected (%s)", i, det)
		}
	}
}

func TestX4ShapeAssertionUtility(t *testing.T) {
	tb, err := ExtensionX4AssertionUtility(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Zero false positives anywhere on the corpus.
	for i := range tb.Rows {
		if fp := cell(t, tb, i, "FPs"); fp != "0" {
			t.Errorf("X4: %s has %s false positives", tb.Rows[i][0], fp)
		}
	}
	// The staleness and jump detectors must be among the first detectors.
	firsts := map[string]float64{}
	for i := range tb.Rows {
		firsts[tb.Rows[i][0]] = parseF(t, cell(t, tb, i, "first detector"))
	}
	if firsts["A1"] == 0 || firsts["A5"] == 0 {
		t.Errorf("X4: A1/A5 carry no first-detector weight: %v", firsts)
	}
	// The controller-weakness assertions stay silent on a channel-attack
	// corpus — reported as a note, not as table rows.
	joined := strings.Join(tb.Notes, " ")
	for _, id := range []string{"A6", "A8", "A11"} {
		if _, present := firsts[id]; present {
			continue // acceptable: they may fire on some seeds
		}
		if !strings.Contains(joined, id) {
			t.Errorf("X4: silent assertion %s not reported in notes", id)
		}
	}
}

func TestX5ShapeFusionAblation(t *testing.T) {
	tb, err := ExtensionX5FusionAblation(quick())
	if err != nil {
		t.Fatal(err)
	}
	ekf := rowByFirst(t, tb, "ekf")
	comp := rowByFirst(t, tb, "complementary")
	// Both localizers: zero clean violations and instant step detection.
	for _, r := range []int{ekf, comp} {
		if cv := cell(t, tb, r, "clean violations"); cv != "0" {
			t.Errorf("X5: %s clean violations = %s", tb.Rows[r][0], cv)
		}
		if lat := parseF(t, cell(t, tb, r, "step latency (s)")); lat > 0.5 {
			t.Errorf("X5: %s step latency %.2f s", tb.Rows[r][0], lat)
		}
	}
	// The EKF tracks at least as cleanly as the fixed-gain filter.
	if parseF(t, cell(t, tb, ekf, "clean RMS CTE (m)")) > parseF(t, cell(t, tb, comp, "clean RMS CTE (m)"))+0.02 {
		t.Error("X5: EKF should not track worse than the complementary filter")
	}
	// Drift stays detected under both (by A13 online for the EKF, by the
	// safety envelope for the complementary filter).
	for _, r := range []int{ekf, comp} {
		if lat := parseF(t, cell(t, tb, r, "drift latency (s)")); lat <= 0 || lat > 15 {
			t.Errorf("X5: %s drift latency %.2f s", tb.Rows[r][0], lat)
		}
	}
}

func TestX3ShapeDetectionFloor(t *testing.T) {
	tb, err := ExtensionX3StepMagnitudeSweep(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Sub-noise steps are undetected; metre-scale and above are caught.
	if det := cell(t, tb, rowByFirst(t, tb, "0.25"), "detected"); !strings.HasPrefix(det, "0/") {
		t.Errorf("X3: 0.25 m step should be below the detection floor, got %s", det)
	}
	for _, mag := range []string{"2.00", "5.00", "10.00"} {
		if det := cell(t, tb, rowByFirst(t, tb, mag), "detected"); strings.HasPrefix(det, "0/") {
			t.Errorf("X3: %s m step undetected", mag)
		}
	}
}
