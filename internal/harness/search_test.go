package harness

import (
	"strings"
	"testing"
)

// TestSearchFrontierRetreat pins the acceptance criterion of the S1
// experiment: on every track, the sub-noise GNSS quantize channel has a
// nonzero evasion region against the pre-A15 catalog and none at all
// against the full catalog — the frontier closed, not merely moved — and
// no channel's frontier advanced after the strengthening.
func TestSearchFrontierRetreat(t *testing.T) {
	tb, err := ExperimentS1EvasionFrontier(goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("S1 rendered no rows")
	}
	quantizeRows := 0
	for _, row := range tb.Rows {
		track, channel := row[0], row[1]
		preEvading, fullEvading, verdict := row[2], row[4], row[6]
		if verdict == "ADVANCED" {
			t.Errorf("%s/%s: frontier advanced after the catalog strengthening (%s -> %s)",
				track, channel, preEvading, fullEvading)
		}
		if channel != "sense-gnss-quantize" {
			continue
		}
		quantizeRows++
		if strings.HasPrefix(preEvading, "none") {
			t.Errorf("%s: pre-A15 catalog left no quantize evasion region (%q) — the searcher found nothing to close",
				track, preEvading)
		}
		if !strings.HasPrefix(fullEvading, "none") {
			t.Errorf("%s: full catalog still has a quantize evasion region %q, want none", track, fullEvading)
		}
		if verdict != "closed" {
			t.Errorf("%s: quantize verdict %q, want closed", track, verdict)
		}
	}
	if quantizeRows == 0 {
		t.Error("S1 has no quantize rows")
	}
}
