package harness

import (
	"fmt"
	"sort"
	"strings"

	"adassure/internal/attacks"
	"adassure/internal/core"
	"adassure/internal/metrics"
	"adassure/internal/obs"
	"adassure/internal/sim"
)

// Figure1CrossTrackSeries regenerates F1: the true and believed cross-track
// error over time under a gradual drift spoof, with the detection instant
// marked — the headline "silent failure" figure.
func Figure1CrossTrackSeries(o Options) (*Table, error) {
	o.defaults()
	tr, err := urbanTrack()
	if err != nil {
		return nil, err
	}
	res, mon, err := campaignRun(o, tr, attacks.ClassDriftSpoof, o.Controller, 1, sim.GuardConfig{})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F1",
		Title:   "Cross-track error vs time under gradual drift spoof (series)",
		Columns: []string{"t (s)", "true CTE (m)", "believed CTE (m)"},
	}
	trueS := res.Trace.Downsample("cte_true", 20) // 1 Hz
	for _, s := range trueS {
		believed, _ := res.Trace.At("cte_est", s.T)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", s.T),
			fmt.Sprintf("%+.2f", s.Value),
			fmt.Sprintf("%+.2f", believed),
		})
	}
	if v, ok := mon.FirstViolationAfter(attackOnset); ok {
		t.Notes = append(t.Notes, fmt.Sprintf("attack onset t=%.0f s; first violation %s at t=%.2f s", attackOnset, v.AssertionID, v.T))
	}
	t.Notes = append(t.Notes, "expected shape: believed CTE stays near zero while true CTE ramps — the drift is invisible to the controller's own error signal")
	return t, nil
}

// Figure2Trajectory regenerates F2: true vs believed vs GNSS-reported
// trajectory under a step spoof on the figure-eight.
func Figure2Trajectory(o Options) (*Table, error) {
	o.defaults()
	tr, err := urbanTrack()
	if err != nil {
		return nil, err
	}
	res, _, err := campaignRun(o, tr, attacks.ClassStepSpoof, o.Controller, 1, sim.GuardConfig{})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F2",
		Title:   "Trajectory under step spoof: truth vs estimate vs delivered GNSS",
		Columns: []string{"t (s)", "true x", "true y", "est x", "est y", "gnss x", "gnss y"},
		Notes:   []string{"expected shape: at onset the GNSS/estimate tracks jump off the true track; the controller then drags the true track off the route"},
	}
	for _, s := range res.Trace.Downsample("true_x", 20) {
		ty, _ := res.Trace.At("true_y", s.T)
		ex, _ := res.Trace.At("est_x", s.T)
		ey, _ := res.Trace.At("est_y", s.T)
		gx, _ := res.Trace.At("gnss_x", s.T)
		gy, _ := res.Trace.At("gnss_y", s.T)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", s.T),
			fmt.Sprintf("%.2f", s.Value), fmt.Sprintf("%.2f", ty),
			fmt.Sprintf("%.2f", ex), fmt.Sprintf("%.2f", ey),
			fmt.Sprintf("%.2f", gx), fmt.Sprintf("%.2f", gy),
		})
	}
	return t, nil
}

// Figure3LatencyCDF regenerates F3: the CDF of detection latency across
// seeds for a fast attack (step) and a slow one (drift).
func Figure3LatencyCDF(o Options) (*Table, error) {
	o.defaults()
	tr, err := urbanTrack()
	if err != nil {
		return nil, err
	}
	seeds := o.Seeds
	if !o.Quick && seeds < 10 {
		seeds = 10
	}
	collect := func(class attacks.Class) ([]float64, error) {
		outs, err := campaignGrid(o, tr, seedJobs(class, o.Controller, seeds, sim.GuardConfig{}))
		if err != nil {
			return nil, err
		}
		var lats []float64
		for _, out := range outs {
			if d := metrics.Detect(out.mon.Violations(), attackOnset); d.Detected {
				lats = append(lats, d.Latency)
			}
		}
		return lats, nil
	}
	step, err := collect(attacks.ClassStepSpoof)
	if err != nil {
		return nil, err
	}
	drift, err := collect(attacks.ClassDriftSpoof)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F3",
		Title:   "Detection-latency CDF (step vs drift spoof)",
		Columns: []string{"attack", "latency (s)", "CDF"},
		Notes:   []string{fmt.Sprintf("%d seeds per class; expected shape: the step CDF saturates within a fraction of a second, drift only after several seconds", seeds)},
	}
	for _, pair := range []struct {
		name string
		lats []float64
	}{{"step-spoof", step}, {"drift-spoof", drift}} {
		for _, p := range metrics.CDF(pair.lats) {
			t.Rows = append(t.Rows, []string{
				pair.name, fmt.Sprintf("%.2f", p.Value), fmt.Sprintf("%.2f", p.Fraction),
			})
		}
	}
	return t, nil
}

// Figure4MonitorOverhead regenerates F4: the cost of assertion monitoring
// per control frame as the catalog grows, measured on a synthetic frame
// stream through the internal/obs registry — the same instrumentation
// every production run can enable — rather than one-off wall-clock timing.
// This experiment deliberately stays sequential and uses its own private
// registry: it times a hot path, and sharing workers or Options.Obs with
// other experiments would contaminate the measurement.
func Figure4MonitorOverhead(o Options) (*Table, error) {
	o.defaults()
	t := &Table{
		ID:      "F4",
		Title:   "Runtime overhead of assertion monitoring per control frame",
		Columns: []string{"assertions", "ns/frame"},
		Notes: []string{
			"synthetic nominal frame stream; a 20 Hz control period is 50 ms — expected shape: full catalog costs a vanishing fraction of the budget",
		},
	}
	frames := 20000
	if o.Quick {
		frames = 5000
	}
	mkFrame := func(i int) core.Frame {
		f := core.Frame{
			T: float64(i) * 0.05, Dt: 0.05,
			EstSpeed: 5, GNSSValid: true, GNSSAge: 0.02,
			GNSSSpeed: 5, OdomSpeed: 5, NIS: 1, NISFresh: true,
			Progress: float64(i) * 0.25, TrueSpeed: 5,
		}
		f.EstX = float64(i) * 0.25
		f.GNSSX = f.EstX
		return f
	}
	var fullReg *obs.Registry
	for _, n := range []int{0, 4, 8, 13} {
		reg := obs.NewRegistry()
		entries := core.NewCatalog(core.CatalogConfig{IncludeGroundTruth: true})
		mon := core.NewMonitor().Attach(reg)
		for i := 0; i < n && i < len(entries); i++ {
			mon.Add(entries[i].Assertion, entries[i].Debounce)
		}
		for i := 0; i < frames; i++ {
			mon.Step(mkFrame(i))
		}
		stepNS := reg.Histogram("monitor.step_ns")
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), fmt.Sprintf("%d", int64(stepNS.Mean()))})
		if n == 13 {
			fullReg = reg
		}
	}
	t.Notes = append(t.Notes, observedCostNotes(fullReg, frames)...)
	return t, nil
}

// observedCostNotes renders the F4 "Observed cost" section from a metrics
// registry: the whole-step latency percentiles and the costliest
// assertions of the full catalog, as measured by the monitor's own
// instrumentation.
func observedCostNotes(reg *obs.Registry, frames int) []string {
	if reg == nil {
		return nil
	}
	step := reg.Histogram("monitor.step_ns").Summary()
	notes := []string{fmt.Sprintf(
		"observed cost (full catalog, %d frames): monitor step p50=%.0f ns p95=%.0f ns p99=%.0f ns",
		frames, step.P50, step.P95, step.P99)}
	type cost struct {
		id   string
		mean float64
		p95  float64
	}
	var costs []cost
	for _, name := range reg.Names() {
		id, ok := strings.CutPrefix(name, "monitor.")
		if !ok {
			continue
		}
		if id, ok = strings.CutSuffix(id, ".eval_ns"); !ok {
			continue
		}
		h := reg.Histogram(name)
		costs = append(costs, cost{id: id, mean: h.Mean(), p95: h.Quantile(0.95)})
	}
	sort.Slice(costs, func(i, j int) bool { return costs[i].mean > costs[j].mean })
	if len(costs) > 3 {
		costs = costs[:3]
	}
	for _, c := range costs {
		notes = append(notes, fmt.Sprintf(
			"observed cost: %s mean=%.0f ns p95=%.0f ns per frame (incl. debounce bookkeeping and ~25 ns timer read)",
			c.id, c.mean, c.p95))
	}
	return notes
}

// Figure5ThresholdAblation regenerates F5: sweeping the catalog threshold
// scale trades detection latency against pre-onset false positives.
func Figure5ThresholdAblation(o Options) (*Table, error) {
	o.defaults()
	tr, err := urbanTrack()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F5",
		Title:   "Threshold-scale ablation: FP/run vs drift detection latency",
		Columns: []string{"threshold scale", "FP/run (clean)", "drift latency (s)", "drift detected"},
		Notes:   []string{"scale multiplies every catalog threshold; expected shape: tighter thresholds detect sooner but alarm on nominal runs"},
	}
	scales := []float64{0.5, 0.75, 1.0, 1.5, 2.0}
	type cell struct {
		scale float64
		seed  int64
	}
	type outcome struct {
		fp  int
		det metrics.Detection
	}
	var jobs []cell
	for _, scale := range scales {
		for seed := int64(1); seed <= int64(o.Seeds); seed++ {
			jobs = append(jobs, cell{scale: scale, seed: seed})
		}
	}
	outs, err := grid(o, jobs, func(c cell) (outcome, error) {
		// Clean run for FP measurement.
		mon := core.NewCatalogMonitor(core.CatalogConfig{ThresholdScale: c.scale, IncludeGroundTruth: true})
		if _, err := sim.Run(sim.Config{
			Track: tr, Controller: o.Controller, Seed: c.seed,
			Duration: o.duration(), Monitor: mon, DisableTrace: true, Obs: o.Obs,
		}); err != nil {
			return outcome{}, err
		}

		// Drift run for latency.
		camp, err := attacks.Standard(attacks.ClassDriftSpoof, attacks.Window{Start: attackOnset, End: attackEnd}, c.seed)
		if err != nil {
			return outcome{}, err
		}
		mon2 := core.NewCatalogMonitor(core.CatalogConfig{ThresholdScale: c.scale, IncludeGroundTruth: true})
		if _, err := sim.Run(sim.Config{
			Track: tr, Controller: o.Controller, Seed: c.seed,
			Duration: o.duration(), Campaign: camp, Monitor: mon2, DisableTrace: true, Obs: o.Obs,
		}); err != nil {
			return outcome{}, err
		}
		return outcome{fp: len(mon.Violations()), det: metrics.Detect(mon2.Violations(), attackOnset)}, nil
	})
	if err != nil {
		return nil, err
	}
	for si, scale := range scales {
		var fp int
		var ds []metrics.Detection
		for i := 0; i < o.Seeds; i++ {
			out := outs[si*o.Seeds+i]
			fp += out.fp
			ds = append(ds, out.det)
		}
		r := metrics.Aggregate(ds)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", scale),
			fmt.Sprintf("%.2f", float64(fp)/float64(o.Seeds)),
			fmt.Sprintf("%.2f", r.MeanLatency),
			fmt.Sprintf("%d/%d", r.Detected, r.Runs),
		})
	}
	return t, nil
}

// Figure6DebounceAblation regenerates F6: sweeping the k-of-n debounce
// window trades noise-attack false structure against detection latency.
func Figure6DebounceAblation(o Options) (*Table, error) {
	o.defaults()
	tr, err := urbanTrack()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F6",
		Title:   "Debounce-window ablation (uniform k-of-n override)",
		Columns: []string{"debounce", "FP/run (clean)", "step latency (s)", "step detected"},
		Notes:   []string{"expected shape: longer windows suppress residual false alarms at the cost of detection latency growing with N"},
	}
	debounces := []core.Debounce{{K: 1, N: 1}, {K: 2, N: 3}, {K: 4, N: 5}, {K: 6, N: 8}}
	type cell struct {
		deb  core.Debounce
		seed int64
	}
	type outcome struct {
		fp  int
		det metrics.Detection
	}
	var jobs []cell
	for _, deb := range debounces {
		for seed := int64(1); seed <= int64(o.Seeds); seed++ {
			jobs = append(jobs, cell{deb: deb, seed: seed})
		}
	}
	outs, err := grid(o, jobs, func(c cell) (outcome, error) {
		mon := core.NewCatalogMonitor(core.CatalogConfig{Debounce: c.deb, IncludeGroundTruth: true})
		if _, err := sim.Run(sim.Config{
			Track: tr, Controller: o.Controller, Seed: c.seed,
			Duration: o.duration(), Monitor: mon, DisableTrace: true, Obs: o.Obs,
		}); err != nil {
			return outcome{}, err
		}

		camp, err := attacks.Standard(attacks.ClassStepSpoof, attacks.Window{Start: attackOnset, End: attackEnd}, c.seed)
		if err != nil {
			return outcome{}, err
		}
		mon2 := core.NewCatalogMonitor(core.CatalogConfig{Debounce: c.deb, IncludeGroundTruth: true})
		if _, err := sim.Run(sim.Config{
			Track: tr, Controller: o.Controller, Seed: c.seed,
			Duration: o.duration(), Campaign: camp, Monitor: mon2, DisableTrace: true, Obs: o.Obs,
		}); err != nil {
			return outcome{}, err
		}
		return outcome{fp: len(mon.Violations()), det: metrics.Detect(mon2.Violations(), attackOnset)}, nil
	})
	if err != nil {
		return nil, err
	}
	for di, deb := range debounces {
		var fp int
		var ds []metrics.Detection
		for i := 0; i < o.Seeds; i++ {
			out := outs[di*o.Seeds+i]
			fp += out.fp
			ds = append(ds, out.det)
		}
		r := metrics.Aggregate(ds)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d-of-%d", deb.K, deb.N),
			fmt.Sprintf("%.2f", float64(fp)/float64(o.Seeds)),
			fmt.Sprintf("%.2f", r.MeanLatency),
			fmt.Sprintf("%d/%d", r.Detected, r.Runs),
		})
	}
	return t, nil
}
