package harness

import (
	"fmt"
	"strconv"

	"adassure/internal/search"
)

// searchDuration mirrors the campaign defaults used for the S1 golden:
// quick mode is the shortest duration at which every default-channel
// frontier point of the full catalog is stable.
func searchDuration(o Options) float64 {
	if o.Quick {
		return 30
	}
	return 60
}

// searchBudget is the per-(track × channel) oracle budget of S1.
func searchBudget(o Options) int {
	if o.Quick {
		return 8
	}
	return 14
}

// searchTracks keeps quick mode to the nominal route; the full experiment
// adds the demanding one, mirroring the mutation campaign.
func searchTracks(o Options) []string {
	if o.Quick {
		return []string{"urban-loop"}
	}
	return []string{"urban-loop", "hairpin"}
}

// searchChannels is the S1 search space: the default channels, with the
// quantize axis narrowed to the sub-noise-through-marginal band the M1
// survivor lived in so the descent spends its budget where the frontier
// actually moved.
func searchChannels() []search.Spec {
	chans := search.DefaultChannels()
	for i := range chans {
		if chans[i].Op == "sense-gnss-quantize" {
			chans[i].Min, chans[i].Max = 0.05, 2.5
		}
	}
	return chans
}

// searchCampaign runs one S1 search under an assertion subset (nil = full
// catalog).
func searchCampaign(o Options, assertions []string) (*search.Report, error) {
	o.defaults()
	return search.Run(search.Config{
		Controller: o.Controller,
		Tracks:     searchTracks(o),
		Channels:   searchChannels(),
		Assertions: assertions,
		Seed:       1,
		Budget:     searchBudget(o),
		Duration:   searchDuration(o),
		Workers:    o.Workers,
		Obs:        o.Obs,
		Events:     o.Events,
		Progress:   o.Progress,
	})
}

// ExperimentS1EvasionFrontier regenerates S1: the adversarial-search
// evasion frontier, before and after the catalog strengthening that closed
// the M1 survivor gap. The searcher descends each attack channel's
// magnitude axis twice — once against the catalog without the A15 lattice
// detector (the catalog that left sub-noise GNSS quantize alive) and once
// against the full catalog — and the table renders, per track × channel,
// the largest evading attack with its minimality certificate under each
// catalog. The verdict column states the frontier movement: "closed" when
// the evasion region vanished, "retreated" when it shrank, "unchanged"
// when the channel was never affected by A15.
func ExperimentS1EvasionFrontier(o Options) (*Table, error) {
	o.defaults()
	after, err := searchCampaign(o, nil)
	if err != nil {
		return nil, err
	}
	weakened := make([]string, 0, len(after.Assertions)-1)
	for _, id := range after.Assertions {
		if id != "A15" {
			weakened = append(weakened, id)
		}
	}
	before, err := searchCampaign(o, weakened)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "S1",
		Title: "Adversarial evasion frontier: largest undetected attack per track × channel, before/after catalog strengthening",
		Columns: []string{"track", "channel",
			"evading (pre-A15)", "certificate (pre-A15)",
			"evading (full)", "certificate (full)", "frontier"},
		Notes: []string{
			fmt.Sprintf("tracks %v, %s controller, seed %d, %.0f s/run, descent budget %d per track × channel",
				after.Tracks, after.Controller, after.Seed, after.Duration, after.Budget),
			"pre-A15 = full catalog minus the A15 lattice detector (the catalog that left the M1 sub-noise quantize survivor alive)",
			"certificate = smallest detected neighbor of the evading attack, with the assertions that caught it",
			fmt.Sprintf("probe runs: %d pre-A15 + %d full (plus %d baselines each)",
				before.TotalEvals, after.TotalEvals, len(after.Tracks)),
		},
	}
	for _, bp := range before.Frontier {
		ap, ok := after.PointFor(bp.Track, bp.Channel)
		if !ok {
			return nil, fmt.Errorf("harness: S1 frontier point %s/%s missing from the full-catalog run", bp.Track, bp.Channel)
		}
		verdict := "unchanged"
		switch {
		case bp.Evading > 0 && ap.Evading == 0:
			verdict = "closed"
		case ap.Evading < bp.Evading:
			verdict = "retreated"
		case ap.Evading > bp.Evading:
			verdict = "ADVANCED"
		}
		t.Rows = append(t.Rows, []string{
			bp.Track, bp.Channel,
			frontierCell(bp), certificateCell(bp),
			frontierCell(ap), certificateCell(ap),
			verdict,
		})
	}
	return t, nil
}

// frontierCell renders one point's evading magnitude.
func frontierCell(p search.FrontierPoint) string {
	if p.Evading == 0 {
		return "none (" + p.Status + ")"
	}
	return strconv.FormatFloat(p.Evading, 'g', 4, 64)
}

// certificateCell renders one point's minimality certificate.
func certificateCell(p search.FrontierPoint) string {
	if p.Detected == 0 {
		return "-"
	}
	s := strconv.FormatFloat(p.Detected, 'g', 4, 64)
	if len(p.DetectedBy) > 0 {
		s += fmt.Sprintf(" %v", p.DetectedBy)
	}
	return s
}
