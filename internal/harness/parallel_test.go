package harness

import (
	"bytes"
	"runtime"
	"sync/atomic"
	"testing"
)

// render regenerates one experiment with the given worker count and
// returns the rendered bytes.
func render(t *testing.T, id string, workers int) []byte {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	o := quick()
	o.Workers = workers
	tb, err := e.Run(o)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", id, workers, err)
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelDeterminism is the core guarantee of the runner rewiring:
// the rendered output of every parallelised experiment is byte-identical
// for workers=1, workers=4 and workers=GOMAXPROCS. T1 exercises the
// campaignGrid path, F5 the custom-config grid path, X5 the mixed
// clean/attacked grid path, S1 the adversarial-search frontier (sequential
// descent inside each track × channel pair, pairs fanned across the pool).
func TestParallelDeterminism(t *testing.T) {
	for _, id := range []string{"T1", "F5", "X5", "S1"} {
		want := render(t, id, 1)
		for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
			if got := render(t, id, workers); !bytes.Equal(got, want) {
				t.Errorf("%s: workers=%d output differs from workers=1:\n--- workers=1\n%s\n--- workers=%d\n%s",
					id, workers, want, workers, got)
			}
		}
	}
}

// TestParallelProgress checks the per-batch progress callback reaches the
// full grid size (T1 quick: 12 classes × 1 seed).
func TestParallelProgress(t *testing.T) {
	o := quick()
	o.Workers = 4
	var last int64
	o.Progress = func(done, total int) {
		atomic.StoreInt64(&last, int64(done))
		if done > total {
			t.Errorf("progress done=%d exceeds total=%d", done, total)
		}
	}
	if _, err := Table1DetectionMatrix(o); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&last); got != 12 {
		t.Errorf("final progress count = %d, want 12 (classes × seeds)", got)
	}
}
