// Package harness defines and runs the reproduction experiments: every
// table (T1–T6) and figure (F1–F6) in the evaluation, each regenerated as a
// renderable Table from fresh simulation runs. See DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for expected-vs-measured records.
//
// The scenario grids behind the experiments — every (track × controller ×
// attack × seed) cell — are embarrassingly parallel, so each experiment
// fans its runs across an internal/runner worker pool (Options.Workers,
// default GOMAXPROCS). Results are collected index-ordered, which keeps
// every rendered table byte-identical to the sequential workers=1 path.
package harness

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"adassure/internal/attacks"
	"adassure/internal/core"
	"adassure/internal/events"
	"adassure/internal/forensics"
	"adassure/internal/obs"
	"adassure/internal/runner"
	"adassure/internal/sim"
	"adassure/internal/track"
	"adassure/internal/vehicle"
)

// Table is a rendered experiment result: an identifier, column headers and
// string rows, plus free-form notes (assumptions, units).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Options configures an experiment run.
type Options struct {
	// Seeds is the number of random seeds per configuration (default 3).
	Seeds int
	// Quick shortens run durations for smoke testing and benchmarks.
	Quick bool
	// Controller is the default lateral controller (default "pure-pursuit").
	Controller string
	// Workers is the scenario-execution pool size (default
	// runtime.GOMAXPROCS(0)). Every experiment produces identical output
	// for any value, including 1 — see internal/runner.
	Workers int
	// Progress, when non-nil, receives (done, total) completion counts
	// for each scenario batch an experiment fans out (an experiment may
	// run several batches, so the count restarts per batch).
	Progress func(done, total int)
	// Obs, when non-nil, aggregates runtime metrics across every scenario
	// an experiment runs: runner job stats, sim step histograms and the
	// per-assertion monitoring cost (see internal/obs). Metrics never feed
	// back into rendered tables, so attaching a registry cannot perturb
	// the byte-identical-output guarantee. F4 is the exception: it always
	// measures on its own private registry so its reported numbers are not
	// polluted by (and do not pollute) the shared one.
	Obs *obs.Registry
	// Events, when non-nil, records the structured event timeline of every
	// scenario an experiment fans out (scenario lifecycle, attack windows,
	// violation episodes, guard intervals) plus the runner's per-worker job
	// spans. Tracks are scoped "<class>/<controller>/s<seed>/" so the cells
	// of a grid stay distinct on one shared recorder. Like Obs, attaching a
	// recorder never changes the rendered tables.
	Events *events.Recorder
	// BundleDir, when non-empty, writes one forensic bundle JSON per
	// violation episode of every campaign cell into the directory (created
	// on demand), named <class>_<controller>_seed<seed>[_guard]_<bundle>.
	BundleDir string
}

func (o *Options) defaults() {
	if o.Seeds <= 0 {
		o.Seeds = 3
	}
	if o.Controller == "" {
		o.Controller = "pure-pursuit"
	}
}

// standard run geometry shared by the experiments.
const (
	attackOnset = 20.0
	attackEnd   = 50.0
)

func (o Options) duration() float64 {
	if o.Quick {
		return 55
	}
	return 70
}

// campaignRun executes one attacked (or clean) run with a fresh catalog
// monitor and returns the result plus monitor.
func campaignRun(o Options, tr *track.Track, class attacks.Class, controller string, seed int64, guard sim.GuardConfig) (*sim.Result, *core.Monitor, error) {
	camp, err := attacks.Standard(class, attacks.Window{Start: attackOnset, End: attackEnd}, seed)
	if err != nil {
		return nil, nil, err
	}
	cellID := fmt.Sprintf("%s_%s_seed%d", class, controller, seed)
	if guard.Enabled {
		cellID += "_guard"
	}
	mon := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true})
	res, err := sim.Run(sim.Config{
		Track:        tr,
		Controller:   controller,
		Vehicle:      vehicle.ShuttleParams(),
		Seed:         seed,
		Duration:     o.duration(),
		Campaign:     camp,
		Monitor:      mon,
		Guard:        guard,
		DisableTrace: false,
		Obs:          o.Obs,
		Events:       o.Events,
		EventScope:   cellID + "/",
	})
	if err != nil {
		return nil, nil, err
	}
	if o.BundleDir != "" {
		if err := writeCellBundles(o, tr, camp, cellID, controller, seed, res); err != nil {
			return nil, nil, err
		}
	}
	return res, mon, nil
}

// writeCellBundles emits the forensic bundles of one campaign cell into
// Options.BundleDir. Filenames embed the cell ID plus the bundle's own
// canonical name, so concurrent grid workers never collide and the same
// cell re-run by a later experiment overwrites deterministically.
func writeCellBundles(o Options, tr *track.Track, camp attacks.Campaign, cellID, controller string, seed int64, res *sim.Result) error {
	if len(res.Violations) == 0 {
		return nil
	}
	var attack *forensics.AttackInfo
	if win, ok := camp.ActiveWindow(); ok {
		attack = &forensics.AttackInfo{
			Name: camp.Name(), Class: string(camp.Class()),
			Start: win.Start, End: win.End,
		}
	}
	bundles := forensics.Build(forensics.Input{
		Scenario: map[string]string{
			"track":      tr.Name(),
			"controller": controller,
			"attack":     string(camp.Class()),
			"seed":       fmt.Sprintf("%d", seed),
		},
		Violations: res.Violations,
		Trace:      res.Trace,
		Frames:     res.Frames,
		Attack:     attack,
		Obs:        o.Obs,
	})
	if err := os.MkdirAll(o.BundleDir, 0o755); err != nil {
		return fmt.Errorf("harness: create bundle dir: %w", err)
	}
	for i := range bundles {
		b := &bundles[i]
		path := filepath.Join(o.BundleDir, cellID+"_"+b.Filename())
		f, err := os.Create(path)
		if err == nil {
			err = b.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return fmt.Errorf("harness: write bundle: %w", err)
		}
	}
	return nil
}

// urbanTrack builds the workhorse scenario route.
func urbanTrack() (*track.Track, error) { return track.UrbanLoop(6) }

// grid fans one batch of independent scenario jobs across the worker
// pool and returns the outputs index-ordered, so every consumer can
// aggregate in job order and produce output identical to the sequential
// path. All simulation state (monitors, sensors, RNGs) is constructed
// inside the job; the only values shared across goroutines are immutable
// (the track and the options).
func grid[I, O any](o Options, jobs []I, fn func(I) (O, error)) ([]O, error) {
	return runner.Map(runner.Options{Workers: o.Workers, OnProgress: o.Progress, Obs: o.Obs, Events: o.Events}, jobs,
		func(_ context.Context, _ int, j I) (O, error) { return fn(j) })
}

// campaignJob is one cell of a (class × controller × seed × guard)
// experiment grid, executed by campaignRun.
type campaignJob struct {
	class      attacks.Class
	controller string
	seed       int64
	guard      sim.GuardConfig
}

// campaignOut pairs a run result with its catalog monitor.
type campaignOut struct {
	res *sim.Result
	mon *core.Monitor
}

// campaignGrid fans campaignRun over the job grid.
func campaignGrid(o Options, tr *track.Track, jobs []campaignJob) ([]campaignOut, error) {
	return grid(o, jobs, func(j campaignJob) (campaignOut, error) {
		res, mon, err := campaignRun(o, tr, j.class, j.controller, j.seed, j.guard)
		return campaignOut{res: res, mon: mon}, err
	})
}

// seedJobs builds the per-seed job column for one (class, controller,
// guard) configuration, seeds 1..n.
func seedJobs(class attacks.Class, controller string, n int, guard sim.GuardConfig) []campaignJob {
	jobs := make([]campaignJob, 0, n)
	for seed := int64(1); seed <= int64(n); seed++ {
		jobs = append(jobs, campaignJob{class: class, controller: controller, seed: seed, guard: guard})
	}
	return jobs
}

// Experiment couples an ID with its generator, for the registry consumed by
// the CLI and the benches.
type Experiment struct {
	ID  string
	Run func(Options) (*Table, error)
}

// All returns the experiment registry in report order.
func All() []Experiment {
	return []Experiment{
		{"T1", Table1DetectionMatrix},
		{"T2", Table2DetectionLatency},
		{"T3", Table3DetectionRates},
		{"T4", Table4DiagnosisAccuracy},
		{"T5", Table5ControllerComparison},
		{"T6", Table6DebugLoop},
		{"F1", Figure1CrossTrackSeries},
		{"F2", Figure2Trajectory},
		{"F3", Figure3LatencyCDF},
		{"F4", Figure4MonitorOverhead},
		{"F5", Figure5ThresholdAblation},
		{"F6", Figure6DebounceAblation},
		{"X1", ExtensionX1GuardAblation},
		{"X2", ExtensionX2DriftRateSweep},
		{"X3", ExtensionX3StepMagnitudeSweep},
		{"X4", ExtensionX4AssertionUtility},
		{"X5", ExtensionX5FusionAblation},
		{"M1", ExperimentM1MutationKillMatrix},
		{"S1", ExperimentS1EvasionFrontier},
	}
}

// ByID returns one experiment from the registry.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}
