package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quick() Options { return Options{Quick: true, Seeds: 1} }

// cell returns the table cell at (row, col name).
func cell(t *testing.T, tb *Table, row int, col string) string {
	t.Helper()
	for i, c := range tb.Columns {
		if c == col {
			if row >= len(tb.Rows) || i >= len(tb.Rows[row]) {
				t.Fatalf("%s: cell (%d, %s) out of range", tb.ID, row, col)
			}
			return tb.Rows[row][i]
		}
	}
	t.Fatalf("%s: no column %q in %v", tb.ID, col, tb.Columns)
	return ""
}

// rowByFirst returns the row whose first cell equals key.
func rowByFirst(t *testing.T, tb *Table, key string) int {
	t.Helper()
	for i, r := range tb.Rows {
		if len(r) > 0 && r[0] == key {
			return i
		}
	}
	t.Fatalf("%s: no row %q", tb.ID, key)
	return -1
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSuffix(s, "×"), "%"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID: "TX", Title: "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TX — demo", "a    long-column", "333  4", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 19 {
		t.Fatalf("registry has %d experiments, want 19", len(all))
	}
	want := []string{"T1", "T2", "T3", "T4", "T5", "T6", "F1", "F2", "F3", "F4", "F5", "F6", "X1", "X2", "X3", "X4", "X5", "M1", "S1"}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
	}
	if _, err := ByID("t2"); err != nil {
		t.Error("ByID should be case-insensitive")
	}
	if _, err := ByID("T9"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestT1ShapeDetectionMatrix(t *testing.T) {
	tb, err := Table1DetectionMatrix(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Fatalf("T1 rows = %d, want 12 attack classes", len(tb.Rows))
	}
	// Every attack row must have at least one X (everything is detected).
	for _, row := range tb.Rows {
		found := false
		for _, c := range row[1:] {
			if c == "X" {
				found = true
			}
		}
		if !found {
			t.Errorf("T1: attack %s has no detecting assertion", row[0])
		}
	}
	// The drift row must include A13 — the headline detector.
	r := rowByFirst(t, tb, "gnss-drift-spoof")
	if cell(t, tb, r, "A13") != "X" {
		t.Error("T1: drift spoof not detected by A13")
	}
	// Dropout must include A5.
	r = rowByFirst(t, tb, "gnss-dropout")
	if cell(t, tb, r, "A5") != "X" {
		t.Error("T1: dropout not detected by A5")
	}
}

func TestT2ShapeLatencyOrdering(t *testing.T) {
	tb, err := Table2DetectionLatency(quick())
	if err != nil {
		t.Fatal(err)
	}
	lat := func(attack string) float64 {
		return parseF(t, cell(t, tb, rowByFirst(t, tb, attack), "mean latency (s)"))
	}
	step := lat("gnss-step-spoof")
	drift := lat("gnss-drift-spoof")
	freeze := lat("gnss-freeze")
	if !(step < freeze && freeze < drift) {
		t.Errorf("T2 latency ordering violated: step=%.2f freeze=%.2f drift=%.2f", step, freeze, drift)
	}
	if step > 0.5 {
		t.Errorf("T2: step latency %.2f s too slow", step)
	}
	if drift < 2 {
		t.Errorf("T2: drift latency %.2f s implausibly fast", drift)
	}
	// All classes detected.
	for _, row := range tb.Rows {
		if det := cell(t, tb, rowByFirst(t, tb, row[0]), "detected"); !strings.HasPrefix(det, "1/") {
			t.Errorf("T2: %s detected = %s", row[0], det)
		}
	}
}

func TestT3ShapeCleanHasNoFalsePositives(t *testing.T) {
	tb, err := Table3DetectionRates(quick())
	if err != nil {
		t.Fatal(err)
	}
	r := rowByFirst(t, tb, "none")
	if fp := parseF(t, cell(t, tb, r, "FP/run (pre-onset)")); fp != 0 {
		t.Errorf("T3: clean FP/run = %g, want 0", fp)
	}
	for _, row := range tb.Rows[1:] {
		if rate := cell(t, tb, rowByFirst(t, tb, row[0]), "detection rate"); rate != "100%" {
			t.Errorf("T3: %s rate = %s", row[0], rate)
		}
	}
}

func TestT6ShapeGuardImproves(t *testing.T) {
	tb, err := Table6DebugLoop(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, attack := range []string{"gnss-step-spoof", "gnss-drift-spoof", "gnss-freeze", "gnss-replay"} {
		r := rowByFirst(t, tb, attack)
		imp := parseF(t, cell(t, tb, r, "improvement"))
		if imp < 1.5 {
			t.Errorf("T6: %s improvement %.1f× below 1.5×", attack, imp)
		}
	}
}

func TestF1ShapeSilentFailure(t *testing.T) {
	tb, err := Figure1CrossTrackSeries(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Mid-attack (t ≈ 30-35 s) the true CTE must be large while the
	// believed CTE stays small.
	var worstTrue, worstBelievedMidAttack float64
	for i := range tb.Rows {
		ts := parseF(t, cell(t, tb, i, "t (s)"))
		if ts < 28 || ts > 38 {
			continue
		}
		tc := parseF(t, cell(t, tb, i, "true CTE (m)"))
		bc := parseF(t, cell(t, tb, i, "believed CTE (m)"))
		if a := abs(tc); a > worstTrue {
			worstTrue = a
		}
		if a := abs(bc); a > worstBelievedMidAttack {
			worstBelievedMidAttack = a
		}
	}
	if worstTrue < 3 {
		t.Errorf("F1: true CTE only %.2f m mid-attack", worstTrue)
	}
	if worstBelievedMidAttack > 1.0 {
		t.Errorf("F1: believed CTE %.2f m mid-attack — should stay near zero", worstBelievedMidAttack)
	}
}

func TestF4ShapeOverheadGrowsWithCatalog(t *testing.T) {
	tb, err := Figure4MonitorOverhead(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("F4 rows = %d", len(tb.Rows))
	}
	prev := -1.0
	for i := range tb.Rows {
		ns := parseF(t, cell(t, tb, i, "ns/frame"))
		if ns < prev*0.5 { // allow jitter but not inversion
			t.Errorf("F4: overhead not growing: row %d = %g ns after %g", i, ns, prev)
		}
		prev = ns
	}
	// Full catalog must stay far below the 50 ms control budget.
	full := parseF(t, cell(t, tb, len(tb.Rows)-1, "ns/frame"))
	if full > 1e6 {
		t.Errorf("F4: full catalog %g ns/frame exceeds 1 ms", full)
	}
}

func TestF5ShapeThresholdTradeoff(t *testing.T) {
	tb, err := Figure5ThresholdAblation(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Tightest scale has more FPs than scale 1; scale 1 has none.
	tight := parseF(t, cell(t, tb, rowByFirst(t, tb, "0.50"), "FP/run (clean)"))
	nominal := parseF(t, cell(t, tb, rowByFirst(t, tb, "1.00"), "FP/run (clean)"))
	if tight <= nominal {
		t.Errorf("F5: FP(0.5)=%g should exceed FP(1.0)=%g", tight, nominal)
	}
	if nominal != 0 {
		t.Errorf("F5: FP at scale 1 = %g, want 0", nominal)
	}
	// Latency grows with scale.
	latTight := parseF(t, cell(t, tb, rowByFirst(t, tb, "0.50"), "drift latency (s)"))
	latLoose := parseF(t, cell(t, tb, rowByFirst(t, tb, "1.50"), "drift latency (s)"))
	if latTight >= latLoose {
		t.Errorf("F5: latency should grow with scale: %.2f vs %.2f", latTight, latLoose)
	}
}

func TestF6ShapeDebounceTradeoff(t *testing.T) {
	tb, err := Figure6DebounceAblation(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Step latency grows with window size.
	lat1 := parseF(t, cell(t, tb, rowByFirst(t, tb, "1-of-1"), "step latency (s)"))
	lat8 := parseF(t, cell(t, tb, rowByFirst(t, tb, "6-of-8"), "step latency (s)"))
	if lat1 > lat8 {
		t.Errorf("F6: latency should grow with window: 1-of-1=%.2f vs 6-of-8=%.2f", lat1, lat8)
	}
	for i := range tb.Rows {
		if det := cell(t, tb, i, "step detected"); !strings.HasPrefix(det, "1/") {
			t.Errorf("F6: row %d step not detected (%s)", i, det)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestT4ShapeDiagnosisAccuracy(t *testing.T) {
	tb, err := Table4DiagnosisAccuracy(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Last row is the overall summary; accuracy must clear the CI bar.
	overall := tb.Rows[len(tb.Rows)-1]
	if overall[0] != "overall" {
		t.Fatalf("last row = %v", overall)
	}
	if top1 := parseF(t, overall[1]); top1 < 80 {
		t.Errorf("T4 overall top-1 %.0f%% below 80%%", top1)
	}
	if top2 := parseF(t, overall[2]); top2 < 95 {
		t.Errorf("T4 overall top-2 %.0f%% below 95%%", top2)
	}
}

func TestT5ShapeControllerComparison(t *testing.T) {
	tb, err := Table5ControllerComparison(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("T5 rows = %d, want 4 controllers", len(tb.Rows))
	}
	for i := range tb.Rows {
		clean := parseF(t, cell(t, tb, i, "clean"))
		drift := parseF(t, cell(t, tb, i, "drift-spoof"))
		if clean > 1.0 {
			t.Errorf("T5: %s clean CTE %.2f m", tb.Rows[i][0], clean)
		}
		// The attack dwarfs clean tracking error for every controller.
		if drift < clean*5 {
			t.Errorf("T5: %s drift CTE %.2f not ≫ clean %.2f", tb.Rows[i][0], drift, clean)
		}
		if v := cell(t, tb, i, "violations (clean)"); v != "0" {
			t.Errorf("T5: %s clean violations = %s", tb.Rows[i][0], v)
		}
	}
}

func TestF2ShapeTrajectoryDrag(t *testing.T) {
	tb, err := Figure2Trajectory(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Mid-attack the estimate must sit ~5 m from the truth in y (the step
	// spoof magnitude), with the GNSS track agreeing with the estimate.
	var checked bool
	for i := range tb.Rows {
		ts := parseF(t, cell(t, tb, i, "t (s)"))
		if ts < 30 || ts > 40 {
			continue
		}
		ty := parseF(t, cell(t, tb, i, "true y"))
		ey := parseF(t, cell(t, tb, i, "est y"))
		gy := parseF(t, cell(t, tb, i, "gnss y"))
		if d := abs(ey - ty); d < 3 || d > 7 {
			t.Errorf("F2 t=%.1f: est-truth gap %.1f m, want ~5", ts, d)
		}
		if d := abs(ey - gy); d > 1.5 {
			t.Errorf("F2 t=%.1f: est should follow the spoofed GNSS (gap %.1f)", ts, d)
		}
		checked = true
	}
	if !checked {
		t.Error("F2: no mid-attack rows found")
	}
}

func TestF3ShapeLatencyCDF(t *testing.T) {
	tb, err := Figure3LatencyCDF(quick())
	if err != nil {
		t.Fatal(err)
	}
	// CDF fractions must be non-decreasing per attack and end at 1.0.
	last := map[string]float64{}
	final := map[string]float64{}
	for i := range tb.Rows {
		name := tb.Rows[i][0]
		frac := parseF(t, cell(t, tb, i, "CDF"))
		if frac+1e-9 < last[name] {
			t.Errorf("F3: %s CDF decreasing", name)
		}
		last[name] = frac
		final[name] = frac
	}
	for name, f := range final {
		if f < 0.999 {
			t.Errorf("F3: %s CDF ends at %.2f, want 1.0", name, f)
		}
	}
	// Step saturates faster than drift: compare the max latency values.
	var stepMax, driftMax float64
	for i := range tb.Rows {
		lat := parseF(t, cell(t, tb, i, "latency (s)"))
		switch tb.Rows[i][0] {
		case "step-spoof":
			if lat > stepMax {
				stepMax = lat
			}
		case "drift-spoof":
			if lat > driftMax {
				driftMax = lat
			}
		}
	}
	if stepMax >= driftMax {
		t.Errorf("F3: step max latency %.2f should be below drift %.2f", stepMax, driftMax)
	}
}
