package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden from the current output")

// goldenIDs is every experiment whose quick-mode rendering is fully
// deterministic at a fixed seed. F1/F2 are excluded because their sampled
// series are too long to make useful golden files, and F4 because it
// reports wall-clock timing.
var goldenIDs = []string{
	"T1", "T2", "T3", "T4", "T5", "T6",
	"F3", "F5", "F6",
	"X1", "X2", "X3", "X4", "X5",
	"M1", "S1",
}

// goldenOpts is the fixed configuration the golden files were generated
// with: quick mode, one seed. Workers is left at the default because every
// experiment renders byte-identically for any worker count.
func goldenOpts() Options { return Options{Quick: true, Seeds: 1} }

// TestGolden locks the rendered output of every deterministic experiment
// to a committed snapshot, so any behavioural drift — a threshold nudge, a
// changed debounce, a reordered row — shows up as a byte diff in review.
// Regenerate after an intentional change with:
//
//	go test ./internal/harness -run TestGolden -update
func TestGolden(t *testing.T) {
	for _, id := range goldenIDs {
		t.Run(id, func(t *testing.T) {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			tb, err := e.Run(goldenOpts())
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tb.Render(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", id+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output drifted from %s (regenerate with -update if intentional)\n--- want\n%s\n--- got\n%s",
					id, path, want, buf.Bytes())
			}
		})
	}
}
