package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenSurvivors locks the M1 campaign's surviving-mutant report — the
// ranked list of fault classes the assertion catalog missed — to a committed
// snapshot, alongside the kill-matrix golden TestGolden covers. The name
// prefix keeps it inside `make golden` / `make golden-update`.
func TestGoldenSurvivors(t *testing.T) {
	rep, err := mutationCampaign(goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteSurvivorReport(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "M1-survivors.txt")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("survivor report drifted from %s (regenerate with -update if intentional)\n--- want\n%s\n--- got\n%s",
			path, want, buf.Bytes())
	}
}

// TestM1KillMatrixShape sanity-checks the rendered M1 table: one row per
// default-grid mutant, identity all dots, and at least one X per controller
// mutant row.
func TestM1KillMatrixShape(t *testing.T) {
	tb, err := ExperimentM1MutationKillMatrix(goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("M1 rendered no rows")
	}
	for _, row := range tb.Rows {
		mutant, kind := row[0], row[1]
		marks := 0
		for _, cell := range row[2 : len(row)-4] {
			if cell == "X" {
				marks++
			}
		}
		switch {
		case mutant == "identity" && marks != 0:
			t.Errorf("identity row has %d kill marks", marks)
		case mutant != "identity" && kind == "controller" && marks == 0:
			t.Errorf("controller mutant %s row has no kill marks", mutant)
		}
	}
}
