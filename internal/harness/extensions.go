package harness

import (
	"fmt"

	"adassure/internal/attacks"
	"adassure/internal/core"
	"adassure/internal/coverage"
	"adassure/internal/geom"
	"adassure/internal/metrics"
	"adassure/internal/sim"
)

// ExtensionX1GuardAblation is X1: ablating the guard's components
// (DESIGN.md §6 choice 3) — gate only, staleness only, assertion trigger
// only, and the full stack — against the two attacks that separate them
// (step spoof: gate-detectable; drift spoof: assertion-only).
func ExtensionX1GuardAblation(o Options) (*Table, error) {
	o.defaults()
	tr, err := urbanTrack()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "X1",
		Title: "Guard-component ablation (mean max |true CTE|, m)",
		Columns: []string{
			"guard configuration", "step-spoof", "drift-spoof",
		},
		Notes: []string{
			"gate = χ² innovation gate + reject-streak fallback; stale = GNSS-silence fallback; assert = assertion-triggered latched fallback",
			"expected shape: the gate alone contains the step spoof but not the drift; only the assertion trigger contains the drift",
		},
	}
	type variant struct {
		name  string
		guard sim.GuardConfig
	}
	variants := []variant{
		{"none (unguarded)", sim.GuardConfig{}},
		// Gate only: disable the staleness trigger by pushing it out of
		// reach, no assertion trigger.
		{"gate only", sim.GuardConfig{Enabled: true, StaleAfter: 1e9}},
		// Staleness only: disable the gate by setting an enormous χ².
		{"staleness only", sim.GuardConfig{Enabled: true, GateThreshold: 1e12}},
		// Assertion trigger only.
		{"assertion only", sim.GuardConfig{Enabled: true, GateThreshold: 1e12, StaleAfter: 1e9, AssertionTrigger: true}},
		{"full guard", sim.GuardConfig{Enabled: true, AssertionTrigger: true}},
	}
	classes := []attacks.Class{attacks.ClassStepSpoof, attacks.ClassDriftSpoof}
	var jobs []campaignJob
	for _, v := range variants {
		for _, class := range classes {
			jobs = append(jobs, seedJobs(class, o.Controller, o.Seeds, v.guard)...)
		}
	}
	outs, err := campaignGrid(o, tr, jobs)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, v := range variants {
		row := []string{v.name}
		for range classes {
			var sum float64
			for si := 0; si < o.Seeds; si++ {
				sum += outs[idx].res.MaxTrueCTE
				idx++
			}
			row = append(row, fmt.Sprintf("%.2f", sum/float64(o.Seeds)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// ExtensionX2DriftRateSweep is X2: detection latency and physical impact
// as a function of the drift rate — locating the crossover where the drift
// becomes fast enough for the jump/innovation detectors to take over from
// A13.
func ExtensionX2DriftRateSweep(o Options) (*Table, error) {
	o.defaults()
	tr, err := urbanTrack()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "X2",
		Title: "Drift-rate sweep: detection latency and impact vs spoof aggressiveness",
		Columns: []string{
			"drift rate (m/s)", "mean latency (s)", "first assertion", "max |true CTE| (m)", "detected",
		},
		Notes: []string{
			"expected shape: latency falls with rate; the first detector crosses over from A13 (slow) to A10/A1 (fast); impact peaks at intermediate rates (slow enough to evade, fast enough to matter)",
		},
	}
	rates := []float64{0.1, 0.25, 0.5, 1.0, 2.0, 4.0}
	type cell struct {
		rate float64
		seed int64
	}
	type outcome struct {
		det metrics.Detection
		cte float64
	}
	var jobs []cell
	for _, rate := range rates {
		for seed := int64(1); seed <= int64(o.Seeds); seed++ {
			jobs = append(jobs, cell{rate: rate, seed: seed})
		}
	}
	outs, err := grid(o, jobs, func(c cell) (outcome, error) {
		drift, err := attacks.NewDriftSpoof(attacks.Window{Start: attackOnset, End: attackEnd}, geom.V(0, 1), c.rate, 15)
		if err != nil {
			return outcome{}, err
		}
		mon := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true})
		res, err := sim.Run(sim.Config{
			Track: tr, Controller: o.Controller, Seed: c.seed, Duration: o.duration(),
			Campaign: attacks.Campaign{GNSS: drift}, Monitor: mon, DisableTrace: true, Obs: o.Obs,
		})
		if err != nil {
			return outcome{}, err
		}
		return outcome{det: metrics.Detect(mon.Violations(), attackOnset), cte: res.MaxTrueCTE}, nil
	})
	if err != nil {
		return nil, err
	}
	for ri, rate := range rates {
		var ds []metrics.Detection
		firstBy := map[string]int{}
		var worst float64
		for si := 0; si < o.Seeds; si++ {
			out := outs[ri*o.Seeds+si]
			ds = append(ds, out.det)
			if out.det.Detected {
				firstBy[out.det.ByID]++
			}
			if out.cte > worst {
				worst = out.cte
			}
		}
		r := metrics.Aggregate(ds)
		best, bestN := "-", 0
		for id, n := range firstBy {
			if n > bestN || (n == bestN && id < best) {
				best, bestN = id, n
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", rate),
			fmt.Sprintf("%.2f", r.MeanLatency),
			best,
			fmt.Sprintf("%.2f", worst),
			fmt.Sprintf("%d/%d", r.Detected, r.Runs),
		})
	}
	return t, nil
}

// ExtensionX4AssertionUtility is X4: the assertion-quality analysis — per
// assertion, how much detection weight it carries over the full campaign
// corpus (first-detector counts, label coverage, sole detections, false
// positives), plus dead-assertion and redundancy findings.
func ExtensionX4AssertionUtility(o Options) (*Table, error) {
	o.defaults()
	tr, err := urbanTrack()
	if err != nil {
		return nil, err
	}
	classes := append([]attacks.Class{attacks.ClassNone}, attacks.StandardClasses()...)
	var jobs []campaignJob
	for _, class := range classes {
		jobs = append(jobs, seedJobs(class, o.Controller, o.Seeds, sim.GuardConfig{})...)
	}
	outs, err := campaignGrid(o, tr, jobs)
	if err != nil {
		return nil, err
	}
	var runs []coverage.Run
	for ci, class := range classes {
		for si := 0; si < o.Seeds; si++ {
			onset := attackOnset
			if class == attacks.ClassNone {
				onset = -1
			}
			runs = append(runs, coverage.Run{
				Label: string(class), Onset: onset, Violations: outs[ci*o.Seeds+si].mon.Violations(),
			})
		}
	}
	registered := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true}).AssertionIDs()
	rep, err := coverage.Analyze(runs, registered)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "X4",
		Title: "Assertion-catalog utility over the campaign corpus",
		Columns: []string{
			"assertion", "episodes", "runs fired", "labels", "first detector", "sole detector", "FPs", "mean latency (s)",
		},
		Notes: []string{
			fmt.Sprintf("corpus: %d runs (%d classes + clean, %d seeds)", rep.Runs, len(classes)-1, o.Seeds),
			"expected shape: A1/A5/A10/A13 carry the first-detector weight; zero FPs; controller-weakness assertions (A6/A8/A11) stay silent on this channel-attack corpus",
		},
	}
	for _, s := range rep.PerAssertion {
		t.Rows = append(t.Rows, []string{
			s.ID,
			fmt.Sprintf("%d", s.Episodes),
			fmt.Sprintf("%d", s.RunsFired),
			fmt.Sprintf("%d", s.LabelsCovered),
			fmt.Sprintf("%d", s.FirstDetector),
			fmt.Sprintf("%d", s.SoleDetector),
			fmt.Sprintf("%d", s.FalsePositives),
			fmt.Sprintf("%.2f", s.MeanLatency),
		})
	}
	if len(rep.Dead) > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("never fired on this corpus: %v (catalog kept for controller-weakness coverage)", rep.Dead))
	}
	for _, p := range rep.Redundant {
		t.Notes = append(t.Notes, fmt.Sprintf("near-redundant pair: %s ~ %s (jaccard %.2f)", p.A, p.B, p.Jaccard))
	}
	return t, nil
}

// ExtensionX5FusionAblation is X5: the EKF vs fixed-gain complementary
// filter comparison — clean tracking quality and how detection shifts when
// the localizer provides no innovation statistic (A10 unavailable).
func ExtensionX5FusionAblation(o Options) (*Table, error) {
	o.defaults()
	tr, err := urbanTrack()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "X5",
		Title: "Fusion ablation: EKF vs complementary filter",
		Columns: []string{
			"localizer", "clean RMS CTE (m)", "clean violations",
			"step latency (s)", "step first", "drift latency (s)", "drift first",
		},
		Notes: []string{
			"the complementary filter exposes no χ² innovation, so A10 is inapplicable — detection must come from the redundant cross-checks",
			"expected shape: comparable clean tracking; step detection holds via A1 regardless of localizer",
			"finding: the gated heading blend of the complementary filter is NOT dragged by a drift spoof the way the EKF's cross-covariances are, so A13 loses its online signal — only the offline safety envelope (A12) catches the drift. The EKF's 'weakness' (heading drag) is exactly what makes the drift observable online.",
		},
	}
	locs := []string{"ekf", "complementary"}
	attacked := []attacks.Class{attacks.ClassStepSpoof, attacks.ClassDriftSpoof}
	type cell struct {
		loc   string
		class attacks.Class // ClassNone marks the clean tracking run
		seed  int64
	}
	type outcome struct {
		rms  float64
		viol int
		det  metrics.Detection
	}
	var jobs []cell
	for _, loc := range locs {
		for seed := int64(1); seed <= int64(o.Seeds); seed++ {
			jobs = append(jobs, cell{loc: loc, class: attacks.ClassNone, seed: seed})
		}
		for _, class := range attacked {
			for seed := int64(1); seed <= int64(o.Seeds); seed++ {
				jobs = append(jobs, cell{loc: loc, class: class, seed: seed})
			}
		}
	}
	outs, err := grid(o, jobs, func(c cell) (outcome, error) {
		mon := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true})
		cfg := sim.Config{
			Track: tr, Controller: o.Controller, Seed: c.seed, Duration: o.duration(),
			Localizer: c.loc, Monitor: mon, DisableTrace: true, Obs: o.Obs,
		}
		if c.class != attacks.ClassNone {
			camp, err := attacks.Standard(c.class, attacks.Window{Start: attackOnset, End: attackEnd}, c.seed)
			if err != nil {
				return outcome{}, err
			}
			cfg.Campaign = camp
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return outcome{}, err
		}
		return outcome{
			rms:  res.RMSTrueCTE,
			viol: len(mon.Violations()),
			det:  metrics.Detect(mon.Violations(), attackOnset),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, loc := range locs {
		var rms float64
		var cleanViol int
		det := map[attacks.Class]metrics.Rates{}
		first := map[attacks.Class]string{}
		for si := 0; si < o.Seeds; si++ {
			rms += outs[idx].rms
			cleanViol += outs[idx].viol
			idx++
		}
		rms /= float64(o.Seeds)
		for _, class := range attacked {
			var ds []metrics.Detection
			firstBy := map[string]int{}
			for si := 0; si < o.Seeds; si++ {
				d := outs[idx].det
				idx++
				ds = append(ds, d)
				if d.Detected {
					firstBy[d.ByID]++
				}
			}
			det[class] = metrics.Aggregate(ds)
			best, bestN := "-", 0
			for id, n := range firstBy {
				if n > bestN || (n == bestN && id < best) {
					best, bestN = id, n
				}
			}
			first[class] = best
		}
		t.Rows = append(t.Rows, []string{
			loc,
			fmt.Sprintf("%.3f", rms),
			fmt.Sprintf("%d", cleanViol),
			fmt.Sprintf("%.2f", det[attacks.ClassStepSpoof].MeanLatency),
			first[attacks.ClassStepSpoof],
			fmt.Sprintf("%.2f", det[attacks.ClassDriftSpoof].MeanLatency),
			first[attacks.ClassDriftSpoof],
		})
	}
	return t, nil
}

// ExtensionX3StepMagnitudeSweep is X3: the detection floor — how small a
// step spoof still gets caught, and by what.
func ExtensionX3StepMagnitudeSweep(o Options) (*Table, error) {
	o.defaults()
	tr, err := urbanTrack()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "X3",
		Title: "Step-magnitude sweep: detection floor of the catalog",
		Columns: []string{
			"step (m)", "detected", "mean latency (s)", "first assertion",
		},
		Notes: []string{
			"expected shape: sub-noise steps (≲3σ of GNSS noise) are indistinguishable and harmless; above ~1 m the innovation gate reacts, above ~1.5 m the jump detector leads",
		},
	}
	mags := []float64{0.25, 0.5, 1.0, 2.0, 5.0, 10.0}
	type cell struct {
		mag  float64
		seed int64
	}
	var jobs []cell
	for _, mag := range mags {
		for seed := int64(1); seed <= int64(o.Seeds); seed++ {
			jobs = append(jobs, cell{mag: mag, seed: seed})
		}
	}
	outs, err := grid(o, jobs, func(c cell) (metrics.Detection, error) {
		step, err := attacks.NewStepSpoof(attacks.Window{Start: attackOnset, End: attackEnd}, geom.V(0, c.mag))
		if err != nil {
			return metrics.Detection{}, err
		}
		mon := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true})
		if _, err := sim.Run(sim.Config{
			Track: tr, Controller: o.Controller, Seed: c.seed, Duration: o.duration(),
			Campaign: attacks.Campaign{GNSS: step}, Monitor: mon, DisableTrace: true, Obs: o.Obs,
		}); err != nil {
			return metrics.Detection{}, err
		}
		return metrics.Detect(mon.Violations(), attackOnset), nil
	})
	if err != nil {
		return nil, err
	}
	for mi, mag := range mags {
		var ds []metrics.Detection
		firstBy := map[string]int{}
		for si := 0; si < o.Seeds; si++ {
			d := outs[mi*o.Seeds+si]
			ds = append(ds, d)
			if d.Detected {
				firstBy[d.ByID]++
			}
		}
		r := metrics.Aggregate(ds)
		best, bestN := "-", 0
		for id, n := range firstBy {
			if n > bestN || (n == bestN && id < best) {
				best, bestN = id, n
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", mag),
			fmt.Sprintf("%d/%d", r.Detected, r.Runs),
			fmt.Sprintf("%.2f", r.MeanLatency),
			best,
		})
	}
	return t, nil
}
