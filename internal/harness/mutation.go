package harness

import (
	"fmt"
	"strconv"

	"adassure/internal/mutate"
)

// mutationDuration mirrors the campaign defaults used for the goldens:
// quick mode matches the shortest duration at which every non-identity
// controller mutant of the default grid is still killed.
func mutationDuration(o Options) float64 {
	if o.Quick {
		return 40
	}
	return 60
}

// mutationCampaign runs the default-grid campaign behind M1 with the
// experiment options applied.
func mutationCampaign(o Options) (*mutate.Report, error) {
	o.defaults()
	return mutate.Run(mutate.Config{
		Controller: o.Controller,
		Seed:       1,
		Duration:   mutationDuration(o),
		Workers:    o.Workers,
		Obs:        o.Obs,
		Events:     o.Events,
		Progress:   o.Progress,
	})
}

// ExperimentM1MutationKillMatrix regenerates M1: the mutation-testing kill
// matrix that scores the assertion catalog. One row per mutant of the
// default grid; an X marks each assertion that killed the mutant (fired on
// the mutated run but not on the clean baseline of the same track and
// seed). The identity row is the soundness guard: it must stay all dots.
func ExperimentM1MutationKillMatrix(o Options) (*Table, error) {
	o.defaults()
	rep, err := mutationCampaign(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "M1",
		Title:   "Mutation kill matrix: assertion × mutant (any track, vs per-track baseline)",
		Columns: append(append([]string{"mutant", "kind"}, rep.Assertions...), "killed", "first", "latency (s)", "max |cte| (m)"),
		Notes: []string{
			fmt.Sprintf("tracks %v, %s controller, seed %d, %.0f s/run; mutants active from t=0",
				rep.Tracks, rep.Controller, rep.Seed, rep.Duration),
			fmt.Sprintf("mutation score %.0f%% of non-identity mutants killed; survivors ranked in the survivor report",
				100*rep.MutationScore),
			"latency = raise time of the first kill-qualifying violation across tracks",
		},
	}
	for _, s := range rep.Scores {
		row := []string{s.Mutant, string(s.Kind)}
		for _, id := range rep.Assertions {
			cell := "."
			if rep.Killed(s.Mutant, id) {
				cell = "X"
			}
			row = append(row, cell)
		}
		killed := "no"
		first := "-"
		latency := "-"
		if s.Killed {
			killed = "yes"
			first = s.FirstKill
			latency = strconv.FormatFloat(s.Latency, 'f', 2, 64)
		}
		row = append(row, killed, first, latency, strconv.FormatFloat(s.MaxTrueCTE, 'f', 2, 64))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
