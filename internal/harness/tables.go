package harness

import (
	"fmt"
	"sort"

	"adassure/internal/attacks"
	"adassure/internal/diagnosis"
	"adassure/internal/metrics"
	"adassure/internal/sim"
)

// Table1DetectionMatrix regenerates T1: which assertions fire for which
// attack class (✓ when the assertion fired post-onset in a majority of
// seeds). This is the paper-style assertion-coverage matrix.
func Table1DetectionMatrix(o Options) (*Table, error) {
	o.defaults()
	tr, err := urbanTrack()
	if err != nil {
		return nil, err
	}
	ids := []string{"A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "A10", "A11", "A12", "A13", "A14", "A15"}
	t := &Table{
		ID:      "T1",
		Title:   "Detection matrix: assertion × attack class (majority of seeds, post-onset)",
		Columns: append([]string{"attack"}, ids...),
		Notes: []string{
			fmt.Sprintf("urban-loop, %s controller, %d seeds, attack window [%g, %g) s", o.Controller, o.Seeds, attackOnset, attackEnd),
			"A12 is the offline ground-truth safety envelope (simulation only)",
		},
	}
	classes := attacks.StandardClasses()
	var jobs []campaignJob
	for _, class := range classes {
		jobs = append(jobs, seedJobs(class, o.Controller, o.Seeds, sim.GuardConfig{})...)
	}
	outs, err := campaignGrid(o, tr, jobs)
	if err != nil {
		return nil, err
	}
	for ci, class := range classes {
		hits := map[string]int{}
		for si := 0; si < o.Seeds; si++ {
			mon := outs[ci*o.Seeds+si].mon
			seen := map[string]bool{}
			for _, v := range mon.Violations() {
				if v.T >= attackOnset && !seen[v.AssertionID] {
					seen[v.AssertionID] = true
					hits[v.AssertionID]++
				}
			}
		}
		row := []string{string(class)}
		for _, id := range ids {
			cell := "."
			if hits[id]*2 > o.Seeds {
				cell = "X"
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table2DetectionLatency regenerates T2: per attack class, the first-firing
// assertion and the detection latency statistics across seeds.
func Table2DetectionLatency(o Options) (*Table, error) {
	o.defaults()
	tr, err := urbanTrack()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "T2",
		Title:   "Detection latency per attack class",
		Columns: []string{"attack", "first assertion", "mean latency (s)", "median (s)", "p90 (s)", "detected"},
		Notes: []string{
			"latency = first post-onset violation time − onset",
			"expected ordering: step/replay ≪ freeze/delay/dropout < drift",
		},
	}
	classes := attacks.StandardClasses()
	var jobs []campaignJob
	for _, class := range classes {
		jobs = append(jobs, seedJobs(class, o.Controller, o.Seeds, sim.GuardConfig{})...)
	}
	outs, err := campaignGrid(o, tr, jobs)
	if err != nil {
		return nil, err
	}
	for ci, class := range classes {
		var ds []metrics.Detection
		firstBy := map[string]int{}
		for si := 0; si < o.Seeds; si++ {
			mon := outs[ci*o.Seeds+si].mon
			d := metrics.Detect(mon.Violations(), attackOnset)
			ds = append(ds, d)
			if d.Detected {
				firstBy[d.ByID]++
			}
		}
		r := metrics.Aggregate(ds)
		best, bestN := "-", 0
		for id, n := range firstBy {
			if n > bestN || (n == bestN && id < best) {
				best, bestN = id, n
			}
		}
		t.Rows = append(t.Rows, []string{
			string(class), best,
			fmt.Sprintf("%.2f", r.MeanLatency),
			fmt.Sprintf("%.2f", r.MedianLatency),
			fmt.Sprintf("%.2f", r.P90Latency),
			fmt.Sprintf("%d/%d", r.Detected, r.Runs),
		})
	}
	return t, nil
}

// Table3DetectionRates regenerates T3: detection rate and false-positive
// rate across randomized runs, plus clean-run false alarms.
func Table3DetectionRates(o Options) (*Table, error) {
	o.defaults()
	tr, err := urbanTrack()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "T3",
		Title:   "Detection and false-positive rates",
		Columns: []string{"attack", "runs", "detection rate", "FP/run (pre-onset)"},
		Notes:   []string{"clean row: all violations count as false positives"},
	}
	seeds := o.Seeds
	if !o.Quick && seeds < 5 {
		seeds = 5
	}
	classes := append([]attacks.Class{attacks.ClassNone}, attacks.StandardClasses()...)
	var jobs []campaignJob
	for _, class := range classes {
		jobs = append(jobs, seedJobs(class, o.Controller, seeds, sim.GuardConfig{})...)
	}
	outs, err := campaignGrid(o, tr, jobs)
	if err != nil {
		return nil, err
	}
	for ci, class := range classes {
		var ds []metrics.Detection
		for si := 0; si < seeds; si++ {
			mon := outs[ci*seeds+si].mon
			onset := attackOnset
			if class == attacks.ClassNone {
				onset = -1
			}
			ds = append(ds, metrics.Detect(mon.Violations(), onset))
		}
		r := metrics.Aggregate(ds)
		rate := fmt.Sprintf("%.0f%%", r.DetectionRate*100)
		if class == attacks.ClassNone {
			rate = "n/a"
		}
		t.Rows = append(t.Rows, []string{
			string(class), fmt.Sprintf("%d", r.Runs), rate, fmt.Sprintf("%.2f", r.FPPerRun),
		})
	}
	return t, nil
}

// Table4DiagnosisAccuracy regenerates T4: top-1/top-2 root-cause accuracy
// per attack class, with the most common misdiagnosis.
func Table4DiagnosisAccuracy(o Options) (*Table, error) {
	o.defaults()
	tr, err := urbanTrack()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "T4",
		Title:   "Root-cause diagnosis accuracy",
		Columns: []string{"attack", "top-1", "top-2", "most common top-1"},
	}
	classes := attacks.StandardClasses()
	var jobs []campaignJob
	for _, class := range classes {
		jobs = append(jobs, seedJobs(class, o.Controller, o.Seeds, sim.GuardConfig{})...)
	}
	outs, err := campaignGrid(o, tr, jobs)
	if err != nil {
		return nil, err
	}
	var overall1, overall2, total int
	for ci, class := range classes {
		top1, top2 := 0, 0
		preds := map[string]int{}
		for si := 0; si < o.Seeds; si++ {
			mon := outs[ci*o.Seeds+si].mon
			hyps := diagnosis.Diagnose(mon.Violations())
			preds[string(hyps[0].Cause)]++
			if string(hyps[0].Cause) == string(class) {
				top1++
				top2++
			} else if len(hyps) > 1 && string(hyps[1].Cause) == string(class) {
				top2++
			}
			total++
		}
		overall1 += top1
		overall2 += top2
		common, commonN := "-", 0
		var keys []string
		for k := range preds {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if preds[k] > commonN {
				common, commonN = k, preds[k]
			}
		}
		t.Rows = append(t.Rows, []string{
			string(class),
			fmt.Sprintf("%d/%d", top1, o.Seeds),
			fmt.Sprintf("%d/%d", top2, o.Seeds),
			common,
		})
	}
	t.Rows = append(t.Rows, []string{
		"overall",
		fmt.Sprintf("%.0f%%", 100*float64(overall1)/float64(total)),
		fmt.Sprintf("%.0f%%", 100*float64(overall2)/float64(total)),
		"",
	})
	return t, nil
}

// Table5ControllerComparison regenerates T5: tracking quality and attack
// vulnerability per lateral controller.
func Table5ControllerComparison(o Options) (*Table, error) {
	o.defaults()
	tr, err := urbanTrack()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "T5",
		Title: "Controller comparison: clean tracking vs attack-induced deviation (max |true CTE|, m)",
		Columns: []string{
			"controller", "clean", "drift-spoof", "step-spoof", "violations (clean)",
		},
		Notes: []string{"per-controller weakness signatures appear in the clean-violations column and in the relative attack deviations"},
	}
	controllers := []string{"pure-pursuit", "stanley", "pid-lateral", "lqr-mpc"}
	classes := []attacks.Class{attacks.ClassNone, attacks.ClassDriftSpoof, attacks.ClassStepSpoof}
	var jobs []campaignJob
	for _, ctrl := range controllers {
		for _, class := range classes {
			jobs = append(jobs, seedJobs(class, ctrl, o.Seeds, sim.GuardConfig{})...)
		}
	}
	outs, err := campaignGrid(o, tr, jobs)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, ctrl := range controllers {
		cells := map[string]float64{}
		var cleanViol int
		for _, class := range classes {
			var worst float64
			for si := 0; si < o.Seeds; si++ {
				out := outs[idx]
				idx++
				if out.res.MaxTrueCTE > worst {
					worst = out.res.MaxTrueCTE
				}
				if class == attacks.ClassNone {
					cleanViol += len(out.mon.Violations())
				}
			}
			cells[string(class)] = worst
		}
		t.Rows = append(t.Rows, []string{
			ctrl,
			fmt.Sprintf("%.2f", cells[string(attacks.ClassNone)]),
			fmt.Sprintf("%.2f", cells[string(attacks.ClassDriftSpoof)]),
			fmt.Sprintf("%.2f", cells[string(attacks.ClassStepSpoof)]),
			fmt.Sprintf("%d", cleanViol),
		})
	}
	return t, nil
}

// Table6DebugLoop regenerates T6: the methodology's payoff — max true CTE
// and violation counts for the unguarded stack vs the assertion-guarded
// stack, per attack class.
func Table6DebugLoop(o Options) (*Table, error) {
	o.defaults()
	tr, err := urbanTrack()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "T6",
		Title: "Debug loop: unguarded vs assertion-guarded stack (max |true CTE|, m)",
		Columns: []string{
			"attack", "unguarded", "guarded", "improvement", "fallback time (s)",
		},
		Notes: []string{
			"guard = χ²-gated fusion + staleness trigger + assertion-triggered latched fallback with MRM stop",
		},
	}
	classes := []attacks.Class{
		attacks.ClassStepSpoof, attacks.ClassDriftSpoof, attacks.ClassReplay,
		attacks.ClassFreeze, attacks.ClassDropout, attacks.ClassMeander,
	}
	guardOn := sim.GuardConfig{Enabled: true, AssertionTrigger: true}
	var jobs []campaignJob
	for _, class := range classes {
		for seed := int64(1); seed <= int64(o.Seeds); seed++ {
			jobs = append(jobs,
				campaignJob{class: class, controller: o.Controller, seed: seed},
				campaignJob{class: class, controller: o.Controller, seed: seed, guard: guardOn},
			)
		}
	}
	outs, err := campaignGrid(o, tr, jobs)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, class := range classes {
		var unguarded, guarded, fb float64
		for si := 0; si < o.Seeds; si++ {
			unguarded += outs[idx].res.MaxTrueCTE
			gres := outs[idx+1].res
			guarded += gres.MaxTrueCTE
			fb += gres.FallbackTime
			idx += 2
		}
		n := float64(o.Seeds)
		unguarded /= n
		guarded /= n
		fb /= n
		improvement := "-"
		if guarded > 0 {
			improvement = fmt.Sprintf("%.1f×", unguarded/guarded)
		}
		t.Rows = append(t.Rows, []string{
			string(class),
			fmt.Sprintf("%.2f", unguarded),
			fmt.Sprintf("%.2f", guarded),
			improvement,
			fmt.Sprintf("%.1f", fb),
		})
	}
	return t, nil
}
