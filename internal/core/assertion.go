package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"adassure/internal/events"
	"adassure/internal/obs"
)

// Severity grades a violation's safety relevance.
type Severity int

// Severity levels.
const (
	Info Severity = iota
	Warning
	Critical
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Outcome is one assertion evaluation on one frame.
type Outcome struct {
	// OK is true when the invariant holds on this frame.
	OK bool
	// Margin is how far inside (positive) or outside (negative) the bound
	// the observed value sits, in the assertion's native unit. Used by the
	// threshold-ablation experiments.
	Margin float64
	// Evidence carries the named values the assertion examined. It is a
	// compact value type (see Evidence) so returning an Outcome performs no
	// heap allocation; the monitor materialises a map only when a violation
	// is raised.
	Evidence Evidence
	// Skip indicates the assertion was not applicable this frame (e.g. no
	// fresh measurement); skipped frames do not advance the debouncer.
	Skip bool
}

// Assertion is one runtime invariant over the frame stream. Implementations
// may keep history between frames and must support Reset for reuse across
// runs.
type Assertion interface {
	// ID is the catalog identifier, e.g. "A1".
	ID() string
	// Name is a short slug, e.g. "position-jump".
	Name() string
	// Description states the invariant for reports.
	Description() string
	// Severity grades the invariant.
	Severity() Severity
	// Eval checks the invariant on a frame.
	Eval(f Frame) Outcome
	// Reset clears history for a new run.
	Reset()
}

// Violation is one raised assertion episode, with evidence from the frame
// that crossed the debounce threshold.
type Violation struct {
	AssertionID string
	Name        string
	Severity    Severity
	// T is the time the debounced violation was raised.
	T float64
	// FirstBreach is the time of the first failing frame in the episode.
	FirstBreach float64
	// Message is a human-readable account.
	Message string
	// Evidence snapshots the values behind the decision.
	Evidence map[string]float64
	// Duration is how long the episode lasted (raise until the window ran
	// fully clean). Zero while the episode is still open at end of run.
	Duration float64
}

// Debounce is the k-of-n policy: an episode is raised when at least K of
// the last N applicable frames failed. N=K=1 raises immediately.
type Debounce struct {
	K, N int
}

// Validate checks the policy.
func (d Debounce) Validate() error {
	if d.N < 1 || d.K < 1 || d.K > d.N {
		return fmt.Errorf("core: invalid debounce %d-of-%d", d.K, d.N)
	}
	return nil
}

// monitored pairs an assertion with its debounce state.
type monitored struct {
	a           Assertion
	deb         Debounce
	history     []bool // ring of last N applicability-filtered results
	pos         int
	filled      int
	inEpisode   bool
	firstBreach float64
	everFailed  bool
	openIdx     int // index into Monitor.violations of the open episode

	// Observability handles, resolved once by Monitor.Attach (nil when the
	// monitor is uninstrumented — every operation on them is then a no-op).
	evalNS *obs.Histogram
	evals  *obs.Counter
	raised *obs.Counter
}

func (m *monitored) reset() {
	m.a.Reset()
	m.history = make([]bool, m.deb.N)
	m.pos, m.filled = 0, 0
	m.inEpisode = false
	m.everFailed = false
	m.firstBreach = -1
	m.openIdx = -1
}

// push records a pass/fail and returns the number of failures in the
// current window and the window fill.
func (m *monitored) push(fail bool) (fails, filled int) {
	m.history[m.pos] = fail
	m.pos = (m.pos + 1) % m.deb.N
	if m.filled < m.deb.N {
		m.filled++
	}
	for i := 0; i < m.filled; i++ {
		if m.history[i] {
			fails++
		}
	}
	return fails, m.filled
}

// Monitor evaluates a set of assertions over the frame stream, applying
// per-assertion debouncing, and accumulates violations. One violation is
// recorded per failure episode (an episode ends when a full window passes
// clean). Not safe for concurrent use.
type Monitor struct {
	entries    []*monitored
	violations []Violation
	frames     int
	skippedBad int

	// Observability (nil registry = uninstrumented, the default).
	obs        *obs.Registry
	stepNS     *obs.Histogram
	framesCtr  *obs.Counter
	skippedCtr *obs.Counter
	violCtr    *obs.Counter

	// Event timeline (nil recorder = no recording, the default). Episodes
	// appear as spans on track "<scope>assertion/<ID>".
	events  *events.Recorder
	evScope string

	// Episode hooks (nil = none, the default). onOpen fires when a
	// debounced episode is raised, onClose when its window runs fully
	// clean again; see SetEpisodeHooks.
	onOpen  func(Violation)
	onClose func(Violation)
}

// NewMonitor builds an empty monitor.
func NewMonitor() *Monitor { return &Monitor{} }

// Attach wires the monitor to a metrics registry: every Step records the
// whole-step latency (monitor.step_ns), per-assertion evaluation latency
// (monitor.<ID>.eval_ns) and eval counts, and raised-violation counters —
// the numbers behind the "monitoring is cheap enough to run online" claim.
// Attach(nil) detaches. The per-assertion attribution uses chained clock
// reads (one per assertion per frame, not two), and includes the debounce
// bookkeeping for that assertion; at sub-100 ns evals the ~25 ns clock read
// itself is a visible fraction of the reported cost.
func (m *Monitor) Attach(r *obs.Registry) *Monitor {
	m.obs = r
	m.stepNS = r.Histogram("monitor.step_ns")
	m.framesCtr = r.Counter("monitor.frames")
	m.skippedCtr = r.Counter("monitor.frames_skipped")
	m.violCtr = r.Counter("monitor.violations")
	for _, e := range m.entries {
		e.attach(r)
	}
	return m
}

// attach resolves (or clears, for a nil registry) one entry's handles.
func (e *monitored) attach(r *obs.Registry) {
	e.evalNS = r.Histogram("monitor." + e.a.ID() + ".eval_ns")
	e.evals = r.Counter("monitor." + e.a.ID() + ".evals")
	e.raised = r.Counter("monitor." + e.a.ID() + ".violations")
}

// AttachEvents wires the monitor to an event recorder: every violation
// episode becomes a span on track "<scope>assertion/<ID>" — opened at the
// debounced raise, closed when the window runs fully clean (or by
// FinishEvents at end of run). The scope prefix keeps tracks distinct
// when many scenarios share one recorder. AttachEvents(nil, "") detaches;
// a detached monitor pays one nil check per episode transition, nothing
// per frame.
func (m *Monitor) AttachEvents(rec *events.Recorder, scope string) *Monitor {
	m.events = rec
	m.evScope = scope
	return m
}

// SetEpisodeHooks registers callbacks invoked synchronously from Step at
// episode transitions: open fires with the just-raised violation (its
// Duration still zero), close fires with the completed violation after its
// Duration is stamped. Episodes still open when the stream ends see no
// close call — their recorded Duration stays zero, exactly as in the batch
// record. This is the seam the streaming session (internal/stream) builds
// its event feed and incremental diagnosis on; a nil hook costs one branch
// per episode transition and nothing per frame. Hooks survive Reset.
func (m *Monitor) SetEpisodeHooks(open, close func(Violation)) *Monitor {
	m.onOpen = open
	m.onClose = close
	return m
}

// FinishEvents closes the event spans of episodes still open at end of
// run, stamping them with the final timestamp and an open=1 attribute so
// the timeline distinguishes "cleared" from "still failing at cutoff".
func (m *Monitor) FinishEvents(t float64) {
	if m.events == nil {
		return
	}
	for _, e := range m.entries {
		if e.inEpisode {
			m.events.End(events.CatViolation, m.evScope+"assertion/"+e.a.ID(),
				e.a.ID()+" "+e.a.Name(), t, map[string]float64{"open": 1})
		}
	}
}

// Add registers an assertion under a debounce policy. It returns the
// monitor for chaining and panics on an invalid policy or duplicate ID —
// monitor assembly is static configuration.
func (m *Monitor) Add(a Assertion, deb Debounce) *Monitor {
	if err := deb.Validate(); err != nil {
		panic(err)
	}
	for _, e := range m.entries {
		if e.a.ID() == a.ID() {
			panic(fmt.Sprintf("core: duplicate assertion %s", a.ID()))
		}
	}
	e := &monitored{a: a, deb: deb}
	e.reset()
	if m.obs != nil {
		e.attach(m.obs)
	}
	m.entries = append(m.entries, e)
	return m
}

// Step evaluates every assertion on the frame.
func (m *Monitor) Step(f Frame) {
	m.frames++
	m.framesCtr.Inc()
	if !f.Finite() {
		m.skippedBad++
		m.skippedCtr.Inc()
		return
	}
	// Chained timestamps: with a registry attached, one clock read per
	// assertion attributes eval + bookkeeping cost to that assertion and the
	// first-to-last span to monitor.step_ns. Without one, the loop pays a
	// single nil check per assertion.
	var start, prev time.Time
	if m.obs != nil {
		start = time.Now()
		prev = start
	}
	for _, e := range m.entries {
		m.apply(e, f, e.a.Eval(f))
		if m.obs != nil {
			now := time.Now()
			e.evalNS.Observe(now.Sub(prev).Nanoseconds())
			e.evals.Inc()
			prev = now
		}
	}
	if m.obs != nil {
		m.stepNS.Observe(time.Since(start).Nanoseconds())
	}
}

// apply pushes one evaluation outcome through an entry's debounce window
// and episode bookkeeping.
func (m *Monitor) apply(e *monitored, f Frame, out Outcome) {
	if out.Skip {
		return
	}
	if !out.OK && !e.inEpisode && e.firstBreachUnset() {
		e.firstBreach = f.T
	}
	fails, filled := e.push(!out.OK)
	switch {
	case !e.inEpisode && filled >= e.deb.K && fails >= e.deb.K:
		e.inEpisode = true
		e.everFailed = true
		if e.firstBreach > f.T || e.firstBreachUnset() {
			e.firstBreach = f.T
		}
		e.openIdx = len(m.violations)
		m.violations = append(m.violations, Violation{
			AssertionID: e.a.ID(),
			Name:        e.a.Name(),
			Severity:    e.a.Severity(),
			T:           f.T,
			FirstBreach: e.firstBreach,
			Message:     fmt.Sprintf("%s: %s (%d of last %d frames failing)", e.a.ID(), e.a.Description(), fails, filled),
			Evidence:    out.Evidence.Map(),
		})
		e.raised.Inc()
		m.violCtr.Inc()
		if m.onOpen != nil {
			m.onOpen(m.violations[e.openIdx])
		}
		if m.events != nil {
			m.events.Begin(events.CatViolation, m.evScope+"assertion/"+e.a.ID(),
				e.a.ID()+" "+e.a.Name(), f.T, map[string]float64{
					"first_breach": e.firstBreach,
					"severity":     float64(e.a.Severity()),
				})
		}
	case e.inEpisode && fails == 0 && filled == e.deb.N:
		// Window fully clean: episode over; re-arm.
		e.inEpisode = false
		e.firstBreach = -1
		if e.openIdx >= 0 {
			m.violations[e.openIdx].Duration = f.T - m.violations[e.openIdx].T
			if m.onClose != nil {
				m.onClose(m.violations[e.openIdx])
			}
			e.openIdx = -1
		}
		if m.events != nil {
			m.events.End(events.CatViolation, m.evScope+"assertion/"+e.a.ID(),
				e.a.ID()+" "+e.a.Name(), f.T, nil)
		}
	case !e.inEpisode && fails == 0:
		e.firstBreach = -1
	}
}

func (e *monitored) firstBreachUnset() bool { return e.firstBreach < 0 }

// Violations returns the violations recorded so far, in raise order.
func (m *Monitor) Violations() []Violation {
	out := make([]Violation, len(m.violations))
	copy(out, m.violations)
	return out
}

// NumViolations returns how many violations have been recorded so far
// without copying the record — the per-step poll used by the simulation
// guard loop (Violations copies, which would cost one allocation per
// control step).
func (m *Monitor) NumViolations() int { return len(m.violations) }

// ViolationAt returns the i-th recorded violation (raise order). Together
// with NumViolations it lets callers scan new violations incrementally
// without allocating a snapshot.
func (m *Monitor) ViolationAt(i int) Violation { return m.violations[i] }

// FiredIDs returns the sorted set of assertion IDs with ≥1 violation.
func (m *Monitor) FiredIDs() []string {
	set := map[string]bool{}
	for _, v := range m.violations {
		set[v.AssertionID] = true
	}
	ids := make([]string, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// FirstViolation returns the earliest-raised violation, if any.
func (m *Monitor) FirstViolation() (Violation, bool) {
	if len(m.violations) == 0 {
		return Violation{}, false
	}
	best := m.violations[0]
	for _, v := range m.violations[1:] {
		if v.T < best.T {
			best = v
		}
	}
	return best, true
}

// FirstViolationAfter returns the earliest violation raised at or after t.
func (m *Monitor) FirstViolationAfter(t float64) (Violation, bool) {
	found := false
	var best Violation
	for _, v := range m.violations {
		if v.T >= t && (!found || v.T < best.T) {
			best, found = v, true
		}
	}
	return best, found
}

// Frames returns how many frames the monitor has processed, and how many
// were skipped as non-finite.
func (m *Monitor) Frames() (processed, skipped int) { return m.frames, m.skippedBad }

// AssertionIDs returns the registered assertion IDs in registration order.
func (m *Monitor) AssertionIDs() []string {
	ids := make([]string, len(m.entries))
	for i, e := range m.entries {
		ids[i] = e.a.ID()
	}
	return ids
}

// Reset clears all state for a fresh run (registered assertions stay).
func (m *Monitor) Reset() {
	for _, e := range m.entries {
		e.reset()
	}
	m.violations = nil
	m.frames = 0
	m.skippedBad = 0
}

// --- DSL building blocks -------------------------------------------------

// Extractor pulls one value from a frame; ok=false means not applicable on
// this frame (the debouncer then skips it).
type Extractor func(f Frame) (v float64, ok bool)

// funcAssertion adapts a closure to the Assertion interface.
type funcAssertion struct {
	id, name, desc string
	sev            Severity
	eval           func(f Frame) Outcome
	reset          func()
}

func (a *funcAssertion) ID() string          { return a.id }
func (a *funcAssertion) Name() string        { return a.name }
func (a *funcAssertion) Description() string { return a.desc }
func (a *funcAssertion) Severity() Severity  { return a.sev }
func (a *funcAssertion) Eval(f Frame) Outcome {
	return a.eval(f)
}
func (a *funcAssertion) Reset() {
	if a.reset != nil {
		a.reset()
	}
}

// NewAssertion wraps an evaluation closure as an Assertion. reset may be
// nil for stateless assertions.
func NewAssertion(id, name, desc string, sev Severity, eval func(f Frame) Outcome, reset func()) Assertion {
	if id == "" || name == "" || eval == nil {
		panic("core: NewAssertion requires id, name and eval")
	}
	return &funcAssertion{id: id, name: name, desc: desc, sev: sev, eval: eval, reset: reset}
}

// Bound asserts lo ≤ ex(f) ≤ hi on every applicable frame. Use ±Inf for a
// one-sided bound.
func Bound(id, name, desc string, sev Severity, ex Extractor, lo, hi float64) Assertion {
	if lo > hi {
		panic(fmt.Sprintf("core: Bound %s has inverted bounds", id))
	}
	return NewAssertion(id, name, desc, sev, func(f Frame) Outcome {
		v, ok := ex(f)
		if !ok {
			return Outcome{Skip: true}
		}
		margin := math.Min(v-lo, hi-v)
		return Outcome{
			OK:       v >= lo && v <= hi,
			Margin:   margin,
			Evidence: Ev("value", v).And("lo", lo).And("hi", hi),
		}
	}, nil)
}

// Rate asserts |d ex/dt| ≤ maxRate between consecutive applicable frames.
func Rate(id, name, desc string, sev Severity, ex Extractor, maxRate float64) Assertion {
	if maxRate <= 0 {
		panic(fmt.Sprintf("core: Rate %s needs a positive bound", id))
	}
	var prevV, prevT float64
	var has bool
	return NewAssertion(id, name, desc, sev, func(f Frame) Outcome {
		v, ok := ex(f)
		if !ok {
			return Outcome{Skip: true}
		}
		if !has {
			prevV, prevT, has = v, f.T, true
			return Outcome{Skip: true}
		}
		dt := f.T - prevT
		if dt <= 0 {
			return Outcome{Skip: true}
		}
		rate := math.Abs(v-prevV) / dt
		prevV, prevT = v, f.T
		return Outcome{
			OK:       rate <= maxRate,
			Margin:   maxRate - rate,
			Evidence: Ev("rate", rate).And("max", maxRate),
		}
	}, func() { has = false })
}

// Consistency asserts |a(f) − b(f)| ≤ tol whenever both extractors apply.
// diff may be overridden (e.g. angular difference); nil means plain
// subtraction.
func Consistency(id, name, desc string, sev Severity, a, b Extractor, diff func(x, y float64) float64, tol float64) Assertion {
	if tol <= 0 {
		panic(fmt.Sprintf("core: Consistency %s needs a positive tolerance", id))
	}
	if diff == nil {
		diff = func(x, y float64) float64 { return x - y }
	}
	return NewAssertion(id, name, desc, sev, func(f Frame) Outcome {
		x, ok1 := a(f)
		y, ok2 := b(f)
		if !ok1 || !ok2 {
			return Outcome{Skip: true}
		}
		d := math.Abs(diff(x, y))
		return Outcome{
			OK:       d <= tol,
			Margin:   tol - d,
			Evidence: Ev("a", x).And("b", y).And("diff", d).And("tol", tol),
		}
	}, nil)
}

// WindowCount asserts that a per-frame event (pred) occurs at most maxCount
// times within any sliding window of the given duration.
func WindowCount(id, name, desc string, sev Severity, pred func(f Frame) (event, ok bool), window float64, maxCount int) Assertion {
	if window <= 0 || maxCount < 0 {
		panic(fmt.Sprintf("core: WindowCount %s needs positive window and non-negative count", id))
	}
	var times []float64
	return NewAssertion(id, name, desc, sev, func(f Frame) Outcome {
		event, ok := pred(f)
		if !ok {
			return Outcome{Skip: true}
		}
		if event {
			times = append(times, f.T)
		}
		// Evict old events, compacting in place so the slice's backing array
		// is reused instead of walking forward through fresh allocations.
		cut := f.T - window
		i := 0
		for i < len(times) && times[i] < cut {
			i++
		}
		if i > 0 {
			n := copy(times, times[i:])
			times = times[:n]
		}
		n := len(times)
		return Outcome{
			OK:       n <= maxCount,
			Margin:   float64(maxCount - n),
			Evidence: Ev("count", float64(n)).And("max", float64(maxCount)).And("window", window),
		}
	}, func() { times = nil })
}
