package core

import (
	"math"
	"testing"
	"testing/quick"
)

func testLimits() Limits {
	return DefaultLimits(8, 2.5, 2, 0.55, 0.8, 2.8)
}

// goodFrame builds a nominal in-motion frame at time t: on path, fresh
// sensors, consistent speeds and headings.
func goodFrame(t float64) Frame {
	return Frame{
		T: t, Dt: 0.05,
		EstX: 5 * t, EstY: 0, EstHeading: 0, EstSpeed: 5, EstYawRate: 0,
		GNSSX: 5 * t, GNSSY: 0, GNSSSpeed: 5, GNSSCourse: 0, GNSSAge: 0.02, GNSSValid: true,
		IMUHeading: 0, IMUYawRate: 0, IMUAccel: 0, IMUAge: 0.01,
		OdomSpeed: 5, OdomAge: 0.01,
		CmdSteer: 0, CmdAccel: 0,
		RefS: 5 * t, CTE: 0.05, HeadingErr: 0.01, Curvature: 0,
		TargetSpeed: 5, Progress: 5 * t,
		NIS: 1, NISFresh: true, RejectStreak: 0,
		TrueX: 5 * t, TrueY: 0, TrueHeading: 0, TrueSpeed: 5, TrueCTE: 0.05,
	}
}

func TestCatalogCleanStream(t *testing.T) {
	m := NewCatalogMonitor(CatalogConfig{Limits: testLimits(), IncludeGroundTruth: true})
	for i := 0; i < 400; i++ {
		m.Step(goodFrame(float64(i) * 0.05))
	}
	if n := len(m.Violations()); n != 0 {
		t.Fatalf("clean synthetic stream raised %d violations: %v", n, m.FiredIDs())
	}
}

func TestCatalogIDsAndSizes(t *testing.T) {
	entries := NewCatalog(CatalogConfig{Limits: testLimits()})
	if len(entries) != 14 {
		t.Fatalf("online catalog has %d entries, want 14", len(entries))
	}
	withGT := NewCatalog(CatalogConfig{Limits: testLimits(), IncludeGroundTruth: true})
	if len(withGT) != 15 {
		t.Fatalf("ground-truth catalog has %d entries, want 15", len(withGT))
	}
	seen := map[string]bool{}
	for _, e := range withGT {
		if e.Assertion.ID() == "" || e.Assertion.Name() == "" || e.Assertion.Description() == "" {
			t.Errorf("catalog entry %q missing metadata", e.Assertion.ID())
		}
		if seen[e.Assertion.ID()] {
			t.Errorf("duplicate id %s", e.Assertion.ID())
		}
		seen[e.Assertion.ID()] = true
		if err := e.Debounce.Validate(); err != nil {
			t.Errorf("%s: %v", e.Assertion.ID(), err)
		}
	}
	for _, id := range []string{"A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "A10", "A11", "A12", "A13", "A14", "A15"} {
		if !seen[id] {
			t.Errorf("catalog missing %s", id)
		}
	}
}

// runCatalog feeds frames and returns fired IDs.
func runCatalog(t *testing.T, frames []Frame) []string {
	t.Helper()
	m := NewCatalogMonitor(CatalogConfig{Limits: testLimits(), IncludeGroundTruth: true})
	for _, f := range frames {
		m.Step(f)
	}
	return m.FiredIDs()
}

func contains(ids []string, id string) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func TestA1FiresOnPositionJump(t *testing.T) {
	var frames []Frame
	for i := 0; i < 40; i++ {
		f := goodFrame(float64(i) * 0.05)
		if i == 30 {
			f.GNSSY += 8 // 8 m teleport between fixes
		}
		frames = append(frames, f)
	}
	if ids := runCatalog(t, frames); !contains(ids, "A1") {
		t.Errorf("A1 silent on 8 m jump: fired %v", ids)
	}
}

func TestA1IgnoresSameFixAcrossFrames(t *testing.T) {
	// Same fix fresh on two consecutive frames must not imply motion.
	lim := testLimits()
	a := A1PositionJump(lim, 1)
	f1 := goodFrame(1.0)
	f1.GNSSAge = 0.0
	a.Eval(f1) // seeds history
	f2 := goodFrame(1.05)
	f2.GNSSX = f1.GNSSX // same fix content
	f2.GNSSAge = 0.05   // same fix, older
	if out := a.Eval(f2); !out.Skip {
		t.Errorf("same fix should be skipped, got %+v", out)
	}
}

func TestA2FiresOnCrossTrack(t *testing.T) {
	var frames []Frame
	for i := 0; i < 60; i++ {
		f := goodFrame(float64(i) * 0.05)
		if i > 30 {
			f.CTE = 2.2
		}
		frames = append(frames, f)
	}
	if ids := runCatalog(t, frames); !contains(ids, "A2") {
		t.Errorf("A2 silent on 2.2 m CTE: fired %v", ids)
	}
}

func TestA2SkipsWhenStationary(t *testing.T) {
	a := A2CrossTrack(testLimits(), 1)
	f := goodFrame(0)
	f.EstSpeed = 0.1
	f.CTE = 50
	if out := a.Eval(f); !out.Skip {
		t.Error("A2 should skip when stationary")
	}
}

func TestA3FiresOnCourseDivergence(t *testing.T) {
	var frames []Frame
	for i := 0; i < 60; i++ {
		f := goodFrame(float64(i) * 0.05)
		if i > 30 {
			f.GNSSCourse = 1.2 // course 1.2 rad off IMU heading 0
		}
		frames = append(frames, f)
	}
	if ids := runCatalog(t, frames); !contains(ids, "A3") {
		t.Errorf("A3 silent on course divergence: fired %v", ids)
	}
}

func TestA3SkipsDuringHardYaw(t *testing.T) {
	a := A3HeadingConsistency(testLimits(), 1)
	f := goodFrame(0)
	f.IMUYawRate = 0.5
	f.GNSSCourse = 2
	if out := a.Eval(f); !out.Skip {
		t.Error("A3 should skip during hard yaw")
	}
}

func TestA4FiresOnSpeedMismatch(t *testing.T) {
	var frames []Frame
	for i := 0; i < 60; i++ {
		f := goodFrame(float64(i) * 0.05)
		if i > 30 {
			f.GNSSSpeed = 0.1 // frozen fix: derived speed collapses
		}
		frames = append(frames, f)
	}
	if ids := runCatalog(t, frames); !contains(ids, "A4") {
		t.Errorf("A4 silent on speed mismatch: fired %v", ids)
	}
}

func TestA5FiresOnStaleGNSS(t *testing.T) {
	var frames []Frame
	for i := 0; i < 60; i++ {
		f := goodFrame(float64(i) * 0.05)
		if i > 30 {
			f.GNSSAge = 0.8
		}
		frames = append(frames, f)
	}
	if ids := runCatalog(t, frames); !contains(ids, "A5") {
		t.Errorf("A5 silent on stale fix: fired %v", ids)
	}
}

func TestA6FiresOnUnexplainedSteering(t *testing.T) {
	var frames []Frame
	for i := 0; i < 60; i++ {
		f := goodFrame(float64(i) * 0.05)
		if i > 30 {
			f.CmdSteer = 0.5 // hard steer on a straight with tiny errors
		}
		frames = append(frames, f)
	}
	if ids := runCatalog(t, frames); !contains(ids, "A6") {
		t.Errorf("A6 silent on unexplained steering: fired %v", ids)
	}
}

func TestA6AllowsSteeringForUpcomingCorner(t *testing.T) {
	a := A6SteeringCurvature(testLimits(), 1)
	f := goodFrame(0)
	f.CurvAheadMax = 0.15 // corner ahead
	f.CmdSteer = math.Atan(0.15 * 2.8)
	if out := a.Eval(f); !out.OK {
		t.Errorf("anticipatory steering should pass: %+v", out)
	}
}

func TestA7FiresOnLateralAccel(t *testing.T) {
	var frames []Frame
	for i := 0; i < 60; i++ {
		f := goodFrame(float64(i) * 0.05)
		if i > 30 {
			f.EstSpeed = 7
			f.EstYawRate = 1.0 // 7 m/s² lateral
		}
		frames = append(frames, f)
	}
	if ids := runCatalog(t, frames); !contains(ids, "A7") {
		t.Errorf("A7 silent on 7 m/s² lateral: fired %v", ids)
	}
}

func TestA8FiresOnJerk(t *testing.T) {
	var frames []Frame
	for i := 0; i < 60; i++ {
		f := goodFrame(float64(i) * 0.05)
		if i >= 30 && i%2 == 0 {
			f.CmdAccel = 1.5
		} else if i >= 30 {
			f.CmdAccel = -3
		}
		frames = append(frames, f)
	}
	if ids := runCatalog(t, frames); !contains(ids, "A8") {
		t.Errorf("A8 silent on slamming accel: fired %v", ids)
	}
}

func TestA9FiresOnProgressRegression(t *testing.T) {
	var frames []Frame
	for i := 0; i < 60; i++ {
		f := goodFrame(float64(i) * 0.05)
		if i > 30 {
			f.Progress -= 20 // teleported backward along the route
		}
		frames = append(frames, f)
	}
	if ids := runCatalog(t, frames); !contains(ids, "A9") {
		t.Errorf("A9 silent on progress regression: fired %v", ids)
	}
}

func TestA10FiresOnHighNIS(t *testing.T) {
	var frames []Frame
	for i := 0; i < 60; i++ {
		f := goodFrame(float64(i) * 0.05)
		if i > 30 {
			f.NIS = 200
		}
		frames = append(frames, f)
	}
	if ids := runCatalog(t, frames); !contains(ids, "A10") {
		t.Errorf("A10 silent on NIS 200: fired %v", ids)
	}
}

func TestA10SkipsStaleNIS(t *testing.T) {
	a := A10InnovationGate(testLimits(), 1)
	f := goodFrame(0)
	f.NIS = 500
	f.NISFresh = false
	if out := a.Eval(f); !out.Skip {
		t.Error("A10 should skip when no update was attempted")
	}
}

func TestA11FiresOnOscillation(t *testing.T) {
	var frames []Frame
	steer := 0.2
	for i := 0; i < 120; i++ {
		f := goodFrame(float64(i) * 0.05)
		if i > 30 {
			steer = -steer
			f.CmdSteer = steer
		}
		frames = append(frames, f)
	}
	if ids := runCatalog(t, frames); !contains(ids, "A11") {
		t.Errorf("A11 silent on bang-bang steering: fired %v", ids)
	}
}

func TestA12FiresOnTrueDeviation(t *testing.T) {
	var frames []Frame
	for i := 0; i < 60; i++ {
		f := goodFrame(float64(i) * 0.05)
		if i > 30 {
			f.TrueCTE = 5 // physically off the corridor, belief fine
		}
		frames = append(frames, f)
	}
	ids := runCatalog(t, frames)
	if !contains(ids, "A12") {
		t.Errorf("A12 silent on true deviation: fired %v", ids)
	}
}

func TestA13FiresOnHeadingDrag(t *testing.T) {
	var frames []Frame
	for i := 0; i < 400; i++ {
		f := goodFrame(float64(i) * 0.05)
		if i > 100 {
			f.EstHeading = 0.15 // fused heading dragged; IMU stays at 0
		}
		frames = append(frames, f)
	}
	if ids := runCatalog(t, frames); !contains(ids, "A13") {
		t.Errorf("A13 silent on fused-heading drag: fired %v", ids)
	}
}

func TestThresholdScaleLoosens(t *testing.T) {
	// With a large threshold scale, the CTE breach that fires at scale 1
	// stays silent.
	mk := func(scale float64) []string {
		m := NewCatalogMonitor(CatalogConfig{Limits: testLimits(), ThresholdScale: scale})
		for i := 0; i < 60; i++ {
			f := goodFrame(float64(i) * 0.05)
			if i > 30 {
				f.CTE = 2.2
			}
			m.Step(f)
		}
		return m.FiredIDs()
	}
	if ids := mk(1); !contains(ids, "A2") {
		t.Fatalf("scale 1 should fire A2: %v", ids)
	}
	if ids := mk(3); contains(ids, "A2") {
		t.Errorf("scale 3 should not fire A2: %v", ids)
	}
}

func TestDebounceOverride(t *testing.T) {
	// Forcing 1-of-1 should raise A2 on the very first breach frame.
	m := NewCatalogMonitor(CatalogConfig{Limits: testLimits(), Debounce: Debounce{K: 1, N: 1}})
	f := goodFrame(0)
	f.CTE = 3
	m.Step(f)
	if !contains(m.FiredIDs(), "A2") {
		t.Error("1-of-1 override should fire immediately")
	}
}

func TestFrameFinite(t *testing.T) {
	f := goodFrame(0)
	if !f.Finite() {
		t.Error("good frame reported non-finite")
	}
	f.EstHeading = math.Inf(1)
	if f.Finite() {
		t.Error("infinite heading reported finite")
	}
}

func TestDefaultLimits(t *testing.T) {
	lim := DefaultLimits(8, 2.5, 2, 0.55, 0.8, 2.8)
	if lim.CTEBound != 1.5 || lim.NISGate != 9.21 || lim.MaxSensorAge != 0.5 {
		t.Errorf("defaults wrong: %+v", lim)
	}
}

// TestCatalogRobustToArbitraryFrames fuzzes the full catalog with random
// (including non-finite) frame contents: the monitor must never panic and
// must keep producing finite evidence.
func TestCatalogRobustToArbitraryFrames(t *testing.T) {
	m := NewCatalogMonitor(CatalogConfig{Limits: testLimits(), IncludeGroundTruth: true})
	f := func(vals [24]float64, flags uint8) bool {
		fr := Frame{
			T: math.Abs(vals[0]), Dt: 0.05,
			EstX: vals[1], EstY: vals[2], EstHeading: vals[3], EstSpeed: vals[4],
			EstYawRate: vals[5], EstPosStdDev: vals[6],
			GNSSX: vals[7], GNSSY: vals[8], GNSSSpeed: vals[9], GNSSCourse: vals[10],
			GNSSAge: math.Abs(vals[11]), GNSSValid: flags&1 != 0,
			IMUHeading: vals[12], IMUYawRate: vals[13], IMUAccel: vals[14], IMUAge: math.Abs(vals[15]),
			OdomSpeed: vals[16], OdomAge: math.Abs(vals[17]),
			CmdSteer: vals[18], CmdAccel: vals[19],
			RefS: vals[20], CTE: vals[21], HeadingErr: vals[22], Curvature: vals[23],
			NISFresh: flags&2 != 0,
		}
		m.Step(fr) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// latticeFrame builds an in-motion frame at step i whose GNSS position is
// the true diagonal trajectory plus deterministic pseudo-noise, optionally
// snapped to a q-metre grid (q <= 0 leaves the feed continuous).
func latticeFrame(i int, q float64) Frame {
	t := float64(i) * 0.05
	// Deterministic sub-noise-scale dither standing in for receiver noise.
	nx := 0.12 * math.Sin(13.7*float64(i)+0.3)
	ny := 0.12 * math.Sin(9.1*float64(i)+1.1)
	gx := 3.5*t + nx
	gy := 3.5*t + ny
	if q > 0 {
		gx = math.Round(gx/q) * q
		gy = math.Round(gy/q) * q
	}
	f := goodFrame(t)
	f.EstX, f.EstY, f.EstHeading = 3.5*t, 3.5*t, math.Pi/4
	f.TrueX, f.TrueY, f.TrueHeading = 3.5*t, 3.5*t, math.Pi/4
	f.GNSSX, f.GNSSY, f.GNSSCourse = gx, gy, math.Pi/4
	f.IMUHeading = math.Pi / 4
	f.Progress = 5 * t
	return f
}

// TestA15FiresOnQuantizedFeed: positions snapped to a 0.25 m grid — well
// below the receiver noise floor — put every consecutive-fix delta on
// exact multiples of the pitch, and the lattice detector must fire even
// though every amplitude-based check stays quiet.
func TestA15FiresOnQuantizedFeed(t *testing.T) {
	for _, q := range []float64{0.05, 0.25, 1.0} {
		var frames []Frame
		for i := 0; i < 200; i++ {
			frames = append(frames, latticeFrame(i, q))
		}
		if ids := runCatalog(t, frames); !contains(ids, "A15") {
			t.Errorf("A15 silent on %g m quantization lattice: fired %v", q, ids)
		}
	}
}

// TestA15QuietOnContinuousFeed: the same trajectory with continuous noisy
// positions must not trip the lattice detector — the folded GCD of
// incommensurate deltas collapses far below the grid floor.
func TestA15QuietOnContinuousFeed(t *testing.T) {
	var frames []Frame
	for i := 0; i < 400; i++ {
		frames = append(frames, latticeFrame(i, 0))
	}
	if ids := runCatalog(t, frames); contains(ids, "A15") {
		t.Error("A15 fired on a continuous noisy feed (false positive)")
	}
}

// TestA15QuietOnConstantDeltas: dead-constant motion (goodFrame's exact
// 0.25 m steps with zero noise) has a large GCD by construction but only
// one distinct multiple — the degenerate-lattice guard must hold it back.
func TestA15QuietOnConstantDeltas(t *testing.T) {
	var frames []Frame
	for i := 0; i < 400; i++ {
		frames = append(frames, goodFrame(float64(i)*0.05))
	}
	if ids := runCatalog(t, frames); contains(ids, "A15") {
		t.Error("A15 fired on constant-delta motion (degenerate lattice)")
	}
}
