package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// frameAt builds a minimal finite frame at time t.
func frameAt(t float64) Frame {
	return Frame{T: t, Dt: 0.05, EstSpeed: 5, GNSSValid: true}
}

func TestSeverityString(t *testing.T) {
	if Info.String() != "info" || Warning.String() != "warning" || Critical.String() != "critical" {
		t.Error("severity strings wrong")
	}
	if Severity(99).String() == "" {
		t.Error("unknown severity should still render")
	}
}

func TestDebounceValidate(t *testing.T) {
	for _, bad := range []Debounce{{0, 1}, {1, 0}, {3, 2}, {-1, 5}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("debounce %+v accepted", bad)
		}
	}
	if err := (Debounce{2, 3}).Validate(); err != nil {
		t.Errorf("valid debounce rejected: %v", err)
	}
}

// failWhen builds an assertion failing when the frame's CTE exceeds 1.
func failWhen() Assertion {
	return Bound("T1", "test-bound", "test", Warning,
		func(f Frame) (float64, bool) { return f.CTE, true }, -1, 1)
}

func TestMonitorImmediateDebounce(t *testing.T) {
	m := NewMonitor().Add(failWhen(), Debounce{K: 1, N: 1})
	f := frameAt(0)
	f.CTE = 0.5
	m.Step(f)
	if len(m.Violations()) != 0 {
		t.Fatal("violation on passing frame")
	}
	f.T = 0.05
	f.CTE = 2
	m.Step(f)
	vs := m.Violations()
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %d", len(vs))
	}
	v := vs[0]
	if v.AssertionID != "T1" || v.T != 0.05 || v.FirstBreach != 0.05 {
		t.Errorf("violation metadata wrong: %+v", v)
	}
	if v.Evidence["value"] != 2 {
		t.Errorf("evidence missing: %v", v.Evidence)
	}
}

func TestMonitorKofNDebounce(t *testing.T) {
	m := NewMonitor().Add(failWhen(), Debounce{K: 3, N: 4})
	// Two failing frames then two passing: no violation.
	times := 0.0
	step := func(cte float64) {
		f := frameAt(times)
		f.CTE = cte
		m.Step(f)
		times += 0.05
	}
	step(2)
	step(2)
	step(0)
	step(0)
	if len(m.Violations()) != 0 {
		t.Fatal("2-of-4 should not raise at K=3")
	}
	// Three failures within the window raise exactly once.
	step(2)
	step(2)
	step(2)
	step(2)
	if n := len(m.Violations()); n != 1 {
		t.Fatalf("want 1 violation, got %d", n)
	}
	// Episode continues: no duplicate raises while failing.
	step(2)
	step(2)
	if n := len(m.Violations()); n != 1 {
		t.Fatalf("episode should not re-raise, got %d", n)
	}
	// Full clean window ends the episode; next burst re-raises.
	step(0)
	step(0)
	step(0)
	step(0)
	step(2)
	step(2)
	step(2)
	if n := len(m.Violations()); n != 2 {
		t.Fatalf("want 2 violations after re-arm, got %d", n)
	}
}

func TestMonitorFirstBreachPrecedesRaise(t *testing.T) {
	m := NewMonitor().Add(failWhen(), Debounce{K: 3, N: 3})
	for i, cte := range []float64{2, 2, 2} {
		f := frameAt(float64(i) * 0.05)
		f.CTE = cte
		m.Step(f)
	}
	v := m.Violations()[0]
	if v.FirstBreach != 0 {
		t.Errorf("first breach = %g, want 0 (first failing frame)", v.FirstBreach)
	}
	if v.T != 0.10 {
		t.Errorf("raise time = %g, want 0.10", v.T)
	}
}

func TestMonitorSkipDoesNotAdvance(t *testing.T) {
	// Assertion applicable only when GNSSValid.
	a := Bound("T2", "gated", "gated", Warning, func(f Frame) (float64, bool) {
		if !f.GNSSValid {
			return 0, false
		}
		return f.CTE, true
	}, -1, 1)
	m := NewMonitor().Add(a, Debounce{K: 2, N: 2})
	f := frameAt(0)
	f.CTE = 5
	m.Step(f) // fail 1
	f.T = 0.05
	f.GNSSValid = false
	m.Step(f) // skipped — must not count as pass or fail
	f.T = 0.10
	f.GNSSValid = true
	m.Step(f) // fail 2 → raise
	if len(m.Violations()) != 1 {
		t.Fatalf("skip frame broke debouncing: %d violations", len(m.Violations()))
	}
}

func TestMonitorSkipsNonFiniteFrames(t *testing.T) {
	m := NewMonitor().Add(failWhen(), Debounce{K: 1, N: 1})
	f := frameAt(0)
	f.EstX = math.NaN()
	f.CTE = 100
	m.Step(f)
	if len(m.Violations()) != 0 {
		t.Error("non-finite frame should be skipped entirely")
	}
	if _, skipped := m.Frames(); skipped != 1 {
		t.Errorf("skipped count = %d", skipped)
	}
}

func TestMonitorDuplicateIDPanics(t *testing.T) {
	m := NewMonitor().Add(failWhen(), Debounce{K: 1, N: 1})
	defer func() {
		if recover() == nil {
			t.Error("duplicate assertion ID should panic")
		}
	}()
	m.Add(failWhen(), Debounce{K: 1, N: 1})
}

func TestMonitorReset(t *testing.T) {
	m := NewMonitor().Add(failWhen(), Debounce{K: 1, N: 1})
	f := frameAt(0)
	f.CTE = 3
	m.Step(f)
	if len(m.Violations()) != 1 {
		t.Fatal("setup failed")
	}
	m.Reset()
	if len(m.Violations()) != 0 {
		t.Error("Reset did not clear violations")
	}
	if p, _ := m.Frames(); p != 0 {
		t.Error("Reset did not clear frame count")
	}
	if len(m.AssertionIDs()) != 1 {
		t.Error("Reset should keep registered assertions")
	}
}

func TestFirstViolationQueries(t *testing.T) {
	m := NewMonitor().
		Add(failWhen(), Debounce{K: 1, N: 1}).
		Add(Bound("T3", "b", "b", Critical, func(f Frame) (float64, bool) { return f.EstSpeed, true }, 0, 4), Debounce{K: 1, N: 1})
	f := frameAt(1.0)
	f.CTE = 5 // T1 fails; EstSpeed=5 > 4 → T3 fails too
	m.Step(f)
	v, ok := m.FirstViolation()
	if !ok || v.T != 1.0 {
		t.Fatalf("FirstViolation = %+v, %v", v, ok)
	}
	if _, ok := m.FirstViolationAfter(2.0); ok {
		t.Error("FirstViolationAfter(2) should be empty")
	}
	if v, ok := m.FirstViolationAfter(0.5); !ok || v.T != 1.0 {
		t.Error("FirstViolationAfter(0.5) wrong")
	}
	ids := m.FiredIDs()
	if len(ids) != 2 || ids[0] != "T1" || ids[1] != "T3" {
		t.Errorf("FiredIDs = %v", ids)
	}
}

func TestBoundMargin(t *testing.T) {
	a := Bound("B", "b", "b", Info, func(f Frame) (float64, bool) { return f.CTE, true }, -1, 1)
	f := frameAt(0)
	f.CTE = 0.4
	out := a.Eval(f)
	if !out.OK || math.Abs(out.Margin-0.6) > 1e-12 {
		t.Errorf("margin = %g, want 0.6", out.Margin)
	}
	f.CTE = 1.5
	out = a.Eval(f)
	if out.OK || math.Abs(out.Margin+0.5) > 1e-12 {
		t.Errorf("outside margin = %g, want -0.5", out.Margin)
	}
}

func TestBoundPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inverted bounds should panic")
		}
	}()
	Bound("B", "b", "b", Info, func(f Frame) (float64, bool) { return 0, true }, 1, -1)
}

func TestRateAssertion(t *testing.T) {
	a := Rate("R", "r", "r", Info, func(f Frame) (float64, bool) { return f.CmdAccel, true }, 10)
	f := frameAt(0)
	f.CmdAccel = 0
	if out := a.Eval(f); !out.Skip {
		t.Error("first frame should be skipped")
	}
	f = frameAt(0.1)
	f.CmdAccel = 0.5 // rate 5 ≤ 10
	if out := a.Eval(f); !out.OK || out.Skip {
		t.Errorf("rate 5 should pass: %+v", out)
	}
	f = frameAt(0.2)
	f.CmdAccel = 2.5 // rate 20 > 10
	if out := a.Eval(f); out.OK {
		t.Error("rate 20 should fail")
	}
	a.Reset()
	f = frameAt(0.3)
	if out := a.Eval(f); !out.Skip {
		t.Error("Reset should clear history")
	}
}

func TestConsistencyAssertion(t *testing.T) {
	a := Consistency("C", "c", "c", Info,
		func(f Frame) (float64, bool) { return f.GNSSSpeed, f.GNSSValid },
		func(f Frame) (float64, bool) { return f.OdomSpeed, true },
		nil, 1.0)
	f := frameAt(0)
	f.GNSSSpeed, f.OdomSpeed = 5, 5.5
	if out := a.Eval(f); !out.OK {
		t.Error("0.5 diff within tol 1 should pass")
	}
	f.OdomSpeed = 7
	if out := a.Eval(f); out.OK {
		t.Error("2.0 diff should fail")
	}
	f.GNSSValid = false
	if out := a.Eval(f); !out.Skip {
		t.Error("inapplicable extractor should skip")
	}
}

func TestWindowCountAssertion(t *testing.T) {
	a := WindowCount("W", "w", "w", Info,
		func(f Frame) (bool, bool) { return f.CmdSteer > 0, true }, 1.0, 2)
	step := func(t0, steer float64) Outcome {
		f := frameAt(t0)
		f.CmdSteer = steer
		return a.Eval(f)
	}
	step(0.0, 1)
	step(0.1, 1)
	if out := step(0.2, 1); out.OK {
		t.Error("3 events in 1 s window should exceed max 2")
	}
	// After the window slides past the burst, the count drops.
	if out := step(1.5, 0); !out.OK {
		t.Errorf("old events should be evicted: %+v", out)
	}
}

func TestMonitorDeterminismProperty(t *testing.T) {
	mk := func() *Monitor {
		return NewMonitor().Add(failWhen(), Debounce{K: 2, N: 3})
	}
	f := func(ctes []float64) bool {
		if len(ctes) == 0 {
			return true
		}
		a, b := mk(), mk()
		for i, c := range ctes {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				c = 0
			}
			fr := frameAt(float64(i) * 0.05)
			fr.CTE = c
			a.Step(fr)
			b.Step(fr)
		}
		va, vb := a.Violations(), b.Violations()
		if len(va) != len(vb) {
			return false
		}
		for i := range va {
			if va[i].T != vb[i].T || va[i].AssertionID != vb[i].AssertionID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewAssertionValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty id should panic")
		}
	}()
	NewAssertion("", "x", "x", Info, func(f Frame) Outcome { return Outcome{OK: true} }, nil)
}

func TestViolationsJSONRoundtrip(t *testing.T) {
	vs := []Violation{
		{AssertionID: "A1", Name: "position-jump", Severity: Critical, T: 20.05,
			FirstBreach: 20.05, Message: "m", Evidence: map[string]float64{"x": 1.5}, Duration: 0.3},
		{AssertionID: "A5", Name: "stale-sensor", Severity: Warning, T: 30},
	}
	var buf bytes.Buffer
	if err := WriteViolationsJSON(&buf, vs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadViolationsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].AssertionID != "A1" || got[0].Evidence["x"] != 1.5 || got[1].T != 30 {
		t.Errorf("roundtrip = %+v", got)
	}
	// nil record serialises to an empty array, not null.
	buf.Reset()
	if err := WriteViolationsJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("nil record = %q", buf.String())
	}
	if _, err := ReadViolationsJSON(strings.NewReader("{oops")); err == nil {
		t.Error("corrupt JSON accepted")
	}
}
