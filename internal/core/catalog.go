package core

import (
	"fmt"
	"math"
	"sort"
)

// CatalogConfig tunes the built-in assertion catalog.
type CatalogConfig struct {
	// Limits scales the thresholds to the platform envelope.
	Limits Limits
	// ThresholdScale multiplies every numeric threshold (1 = catalog
	// defaults). The sensitivity-ablation experiment sweeps it.
	ThresholdScale float64
	// Debounce overrides the per-assertion default policies when N > 0.
	Debounce Debounce
	// IncludeGroundTruth adds A12, which reads simulation ground truth and
	// is unavailable on a real platform without instrumentation.
	IncludeGroundTruth bool
}

func (c *CatalogConfig) defaults() {
	if c.ThresholdScale <= 0 {
		c.ThresholdScale = 1
	}
	if c.Limits.MaxSpeed <= 0 {
		c.Limits = DefaultLimits(8, 2.5, 2, 0.55, 0.8, 2.8)
	}
}

// freshGNSS reports whether a new fix was delivered within this frame's
// control period.
func freshGNSS(f Frame) bool { return f.GNSSValid && f.GNSSAge <= f.Dt+1e-9 }

// NewCatalog instantiates the built-in assertions A1–A15 with the given
// configuration, each paired with its default debounce policy.
func NewCatalog(cfg CatalogConfig) []CatalogEntry {
	cfg.defaults()
	lim := cfg.Limits
	k := cfg.ThresholdScale
	deb := func(def Debounce) Debounce {
		if cfg.Debounce.N > 0 {
			return cfg.Debounce
		}
		return def
	}

	entries := []CatalogEntry{
		{A1PositionJump(lim, k), deb(Debounce{K: 1, N: 1})},
		{A2CrossTrack(lim, k), deb(Debounce{K: 4, N: 5})},
		{A3HeadingConsistency(lim, k), deb(Debounce{K: 3, N: 4})},
		{A4SpeedConsistency(lim, k), deb(Debounce{K: 3, N: 4})},
		{A5StaleSensor(lim, k), deb(Debounce{K: 2, N: 2})},
		{A6SteeringCurvature(lim, k), deb(Debounce{K: 5, N: 6})},
		{A7LateralAccel(lim, k), deb(Debounce{K: 3, N: 4})},
		{A8Jerk(lim, k), deb(Debounce{K: 3, N: 4})},
		{A9ProgressMonotone(lim, k), deb(Debounce{K: 1, N: 1})},
		{A10InnovationGate(lim, k), deb(Debounce{K: 2, N: 3})},
		{A11Oscillation(lim, k), deb(Debounce{K: 1, N: 1})},
		{A13HeadingReference(lim, k), deb(Debounce{K: 4, N: 5})},
		{A14ActuatorResponse(lim, k), deb(Debounce{K: 4, N: 5})},
		{A15LatticeConsistency(lim, k), deb(Debounce{K: 2, N: 3})},
	}
	if cfg.IncludeGroundTruth {
		entries = append(entries, CatalogEntry{A12SafetyEnvelope(lim, k), deb(Debounce{K: 3, N: 4})})
	}
	return entries
}

// CatalogEntry pairs an assertion with its default debounce policy.
type CatalogEntry struct {
	Assertion Assertion
	Debounce  Debounce
}

// NewCatalogMonitor builds a Monitor loaded with the configured catalog.
func NewCatalogMonitor(cfg CatalogConfig) *Monitor {
	m := NewMonitor()
	for _, e := range NewCatalog(cfg) {
		m.Add(e.Assertion, e.Debounce)
	}
	return m
}

// NewCatalogMonitorWith builds a Monitor loaded with the configured
// catalog, optionally restricted to an explicit assertion-ID subset (nil
// or empty loads everything). Assertions are added in catalog order so the
// evaluation order — and therefore the violation record — is independent
// of how the caller listed the IDs. IDs the config does not produce (e.g.
// "A12" without ground truth enabled) are an error rather than a silent
// no-op.
func NewCatalogMonitorWith(cfg CatalogConfig, ids []string) (*Monitor, error) {
	entries := NewCatalog(cfg)
	m := NewMonitor()
	if len(ids) == 0 {
		for _, e := range entries {
			m.Add(e.Assertion, e.Debounce)
		}
		return m, nil
	}
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	for _, e := range entries {
		if want[e.Assertion.ID()] {
			m.Add(e.Assertion, e.Debounce)
			delete(want, e.Assertion.ID())
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for id := range want {
			unknown = append(unknown, id)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("core: unknown catalog assertion(s) %v", unknown)
	}
	return m, nil
}

// A1PositionJump asserts that consecutive GNSS fixes are kinematically
// reachable: the implied speed between fixes must not exceed the vehicle
// envelope (with margin). Catches step spoofs and replay onsets.
func A1PositionJump(lim Limits, k float64) Assertion {
	maxImplied := (lim.MaxSpeed*1.5 + 2) * k
	var px, py, pt float64
	var has bool
	return NewAssertion("A1", "position-jump",
		fmt.Sprintf("implied GNSS speed between fixes <= %.1f m/s", maxImplied), Critical,
		func(f Frame) Outcome {
			if !freshGNSS(f) {
				return Outcome{Skip: true}
			}
			// Key on the fix's own timestamp, not the frame's: a fix can be
			// "fresh" on two consecutive control frames, and comparing it
			// against itself over half a period would double the implied
			// speed.
			tFix := f.T - f.GNSSAge
			if !has {
				px, py, pt, has = f.GNSSX, f.GNSSY, tFix, true
				return Outcome{Skip: true}
			}
			dt := tFix - pt
			if dt <= 1e-6 {
				return Outcome{Skip: true} // same fix as last frame
			}
			implied := math.Hypot(f.GNSSX-px, f.GNSSY-py) / dt
			px, py, pt = f.GNSSX, f.GNSSY, tFix
			return Outcome{
				OK:       implied <= maxImplied,
				Margin:   maxImplied - implied,
				Evidence: Ev("implied_speed", implied).And("max", maxImplied),
			}
		}, func() { has = false })
}

// A2CrossTrack asserts the estimated cross-track error stays inside the
// lane-keeping bound while the vehicle is in motion. Catches drift spoofs
// (the vehicle physically leaves the lane while believing otherwise, or
// vice versa) and controller tracking weaknesses.
func A2CrossTrack(lim Limits, k float64) Assertion {
	bound := lim.CTEBound * k
	return Bound("A2", "cross-track-bound",
		fmt.Sprintf("|cross-track error| <= %.2f m while moving", bound), Critical,
		func(f Frame) (float64, bool) {
			if f.EstSpeed < 0.5 {
				return 0, false
			}
			return f.CTE, true
		}, -bound, bound)
}

// A3HeadingConsistency asserts the GNSS course over ground agrees with the
// IMU heading while moving. Catches position spoofs (the spoofed track's
// course diverges from inertial heading) and IMU bias faults.
func A3HeadingConsistency(lim Limits, k float64) Assertion {
	tol := lim.HeadingTol * k
	return Consistency("A3", "heading-consistency",
		fmt.Sprintf("|GNSS course - IMU heading| <= %.2f rad while moving", tol), Warning,
		func(f Frame) (float64, bool) {
			// Course over ground is a chord direction: during hard yaw it
			// legitimately lags the instantaneous heading by ~ω·baseline/2,
			// so the check only applies in near-straight motion at speed.
			if !freshGNSS(f) || f.EstSpeed < 2 || math.Abs(f.IMUYawRate) > 0.3 {
				return 0, false
			}
			return f.GNSSCourse, true
		},
		func(f Frame) (float64, bool) {
			if f.IMUAge > lim.MaxSensorAge {
				return 0, false
			}
			return f.IMUHeading, true
		},
		angleDiff, tol)
}

// A4SpeedConsistency asserts GNSS-derived speed agrees with wheel odometry.
// Catches freezes (derived speed collapses to zero), replays and spoofs
// (derived speed inflates) and odometry scaling faults.
func A4SpeedConsistency(lim Limits, k float64) Assertion {
	tol := lim.SpeedTol * k
	return Consistency("A4", "speed-consistency",
		fmt.Sprintf("|GNSS speed - odometry speed| <= %.2f m/s", tol), Warning,
		func(f Frame) (float64, bool) {
			// The receiver-derived speed is a chord average over ~1 s; under
			// hard acceleration it legitimately lags the instantaneous wheel
			// speed by ~a/2, so the check applies in quasi-steady motion.
			if !freshGNSS(f) || math.Abs(f.IMUAccel) > 1.0 {
				return 0, false
			}
			return f.GNSSSpeed, true
		},
		func(f Frame) (float64, bool) {
			if f.OdomAge > lim.MaxSensorAge {
				return 0, false
			}
			return f.OdomSpeed, true
		},
		nil, tol)
}

// A5StaleSensor asserts the GNSS channel keeps delivering: the age of the
// newest delivered fix must stay below the staleness bound. Catches
// dropouts/DoS and added delay.
func A5StaleSensor(lim Limits, k float64) Assertion {
	maxAge := lim.MaxSensorAge * k
	return Bound("A5", "stale-sensor",
		fmt.Sprintf("GNSS fix age <= %.2f s", maxAge), Warning,
		func(f Frame) (float64, bool) { return f.GNSSAge, true },
		math.Inf(-1), maxAge)
}

// A6SteeringCurvature asserts the commanded steering stays consistent with
// the path geometry plus a correction proportional to the tracking errors.
// A large unexplained steering command indicates the controller is reacting
// to corrupted localization or has an internal defect.
func A6SteeringCurvature(lim Limits, k float64) Assertion {
	slack := 0.25 * k // rad of unexplained steering allowed
	return NewAssertion("A6", "steering-curvature",
		fmt.Sprintf("steer within geometric band of upcoming curvature + %.2f rad + error terms", slack), Warning,
		func(f Frame) Outcome {
			// Below ~1.5 m/s every geometric controller is legitimately
			// twitchy (spawn transients, Stanley's 1/v gain), so the check
			// applies only in motion.
			if f.EstSpeed < 1.5 {
				return Outcome{Skip: true}
			}
			// Geometric steering band implied by the curvature the vehicle
			// is in or about to enter (controllers legitimately anticipate
			// the upcoming arc).
			lo := math.Atan(f.CurvAheadMin * lim.Wheelbase)
			hi := math.Atan(f.CurvAheadMax * lim.Wheelbase)
			if lo > hi {
				lo, hi = hi, lo
			}
			// Corrections the tracking errors justify.
			allowance := slack + 0.6*math.Abs(f.CTE) + 0.8*math.Abs(f.HeadingErr)
			var dev float64
			switch {
			case f.CmdSteer < lo:
				dev = lo - f.CmdSteer
			case f.CmdSteer > hi:
				dev = f.CmdSteer - hi
			}
			return Outcome{
				OK:       dev <= allowance,
				Margin:   allowance - dev,
				Evidence: Ev("deviation", dev).And("allowance", allowance).And("band_lo", lo).And("band_hi", hi),
			}
		}, nil)
}

// A7LateralAccel asserts the realised lateral acceleration v·ω stays inside
// the comfort/safety envelope. Catches spoof-induced swerves and unsafe
// speed plans.
func A7LateralAccel(lim Limits, k float64) Assertion {
	// 1.7× the comfort envelope: the speed plan targets the envelope
	// itself, so realistic overshoot peaks ~1.5×; a spoof-induced swerve
	// at speed lands well above 2×.
	bound := lim.MaxLatAccel * 1.7 * k
	return Bound("A7", "lateral-accel",
		fmt.Sprintf("|v·yawrate| <= %.2f m/s²", bound), Critical,
		func(f Frame) (float64, bool) {
			return f.EstSpeed * f.EstYawRate, true
		}, -bound, bound)
}

// A8Jerk asserts the commanded longitudinal jerk stays inside the comfort
// envelope. Catches oscillating/unstable longitudinal control.
func A8Jerk(lim Limits, k float64) Assertion {
	// 5× the comfort jerk: deep braking into a hairpin legitimately
	// produces short spikes of a few× the comfort value; a localization
	// jolt slams the whole accel envelope in one step and lands far above
	// this bound.
	bound := lim.MaxJerk * 5 * k
	return Rate("A8", "jerk-bound",
		fmt.Sprintf("|d(accel)/dt| <= %.1f m/s³", bound), Warning,
		func(f Frame) (float64, bool) { return f.CmdAccel, true },
		bound)
}

// A9ProgressMonotone asserts route progress never jumps backward by more
// than the tolerance in a single step. Catches replays (projection snaps
// back) and teleporting spoofs.
func A9ProgressMonotone(lim Limits, k float64) Assertion {
	tol := 2.0 * k // metres of admissible regression (projection jitter)
	var prev float64
	var has bool
	return NewAssertion("A9", "progress-monotone",
		fmt.Sprintf("route progress regression <= %.1f m per step", tol), Critical,
		func(f Frame) Outcome {
			if !has {
				prev, has = f.Progress, true
				return Outcome{Skip: true}
			}
			drop := prev - f.Progress
			prev = f.Progress
			return Outcome{
				OK:       drop <= tol,
				Margin:   tol - drop,
				Evidence: Ev("regression", drop).And("tol", tol),
			}
		}, func() { has = false })
}

// A10InnovationGate asserts the fusion filter's GNSS innovation stays under
// the χ² gate. The catch-all consistency check: any measurement stream that
// disagrees with the filter's short-horizon prediction trips it.
func A10InnovationGate(lim Limits, k float64) Assertion {
	gate := lim.NISGate * k
	return Bound("A10", "innovation-gate",
		fmt.Sprintf("GNSS NIS <= %.2f", gate), Warning,
		func(f Frame) (float64, bool) {
			if !f.NISFresh {
				return 0, false
			}
			return f.NIS, true
		},
		math.Inf(-1), gate)
}

// A11Oscillation asserts the steering command does not change sign more
// than a bounded number of times within a sliding window — the instability
// signature of badly tuned lateral controllers at speed.
func A11Oscillation(lim Limits, k float64) Assertion {
	const window = 2.0
	maxChanges := int(math.Max(2, 10*k))
	var prevSteer float64
	var has bool
	return WindowCount("A11", "oscillation-bound",
		fmt.Sprintf("steering sign changes <= %d per %.0f s", maxChanges, window), Warning,
		func(f Frame) (bool, bool) {
			if f.EstSpeed < 1 {
				return false, false
			}
			event := false
			if has && prevSteer*f.CmdSteer < 0 && math.Abs(f.CmdSteer-prevSteer) > 0.08 {
				event = true
			}
			prevSteer, has = f.CmdSteer, true
			return event, true
		}, window, maxChanges)
}

// A12SafetyEnvelope is the offline ground-truth assertion: the vehicle's
// true cross-track deviation must stay inside the physical safety corridor
// regardless of what the stack believes. Only evaluable in simulation or
// on instrumented test ranges.
func A12SafetyEnvelope(lim Limits, k float64) Assertion {
	bound := lim.CTEBound * 2.5 * k
	return Bound("A12", "safety-envelope",
		fmt.Sprintf("|true cross-track deviation| <= %.2f m", bound), Critical,
		func(f Frame) (float64, bool) {
			if f.TrueSpeed < 0.5 {
				return 0, false
			}
			return f.TrueCTE, true
		}, -bound, bound)
}

// A13HeadingReference asserts that the fused heading stays consistent with
// the platform's independent heading reference (here the IMU's integrated
// heading channel; on a production vehicle, a dual-antenna GNSS compass or
// magnetometer). The fused heading is only legitimately rotated by the
// gyro, so a localization channel dragging the estimate sideways — the
// signature of a slow drift spoof, which the χ² gate can never see —
// accumulates a persistent divergence between the two. An exponential
// moving average (τ ≈ 3 s) separates the persistent divergence from
// per-sample noise.
func A13HeadingReference(lim Limits, k float64) Assertion {
	const tau = 3.0
	tol := 0.05 * k // rad of persistent divergence allowed
	ema := 0.0
	var lastT float64
	var has bool
	return NewAssertion("A13", "heading-reference",
		fmt.Sprintf("EMA|fused heading - IMU heading| <= %.3f rad", tol), Critical,
		func(f Frame) Outcome {
			if f.IMUAge > lim.MaxSensorAge {
				return Outcome{Skip: true}
			}
			d := angleDiff(f.EstHeading, f.IMUHeading)
			if !has {
				lastT, has = f.T, true
				ema = d
				return Outcome{Skip: true}
			}
			alpha := (f.T - lastT) / tau
			if alpha > 1 {
				alpha = 1
			}
			lastT = f.T
			ema += (d - ema) * alpha
			dev := math.Abs(ema)
			return Outcome{
				OK:       dev <= tol,
				Margin:   tol - dev,
				Evidence: Ev("ema_divergence", ema).And("instant", d).And("tol", tol),
			}
		}, func() { ema = 0; has = false })
}

// A14ActuatorResponse asserts that the vehicle's measured yaw response
// matches what the commanded steering should produce (kinematically,
// ω ≈ v·tan(δ)/L). A persistent residual means the actuation path is not
// executing the controller's command — a stuck or offset steering fault.
// An EMA (τ ≈ 2 s) absorbs the actuator's legitimate lag transients.
func A14ActuatorResponse(lim Limits, k float64) Assertion {
	const (
		tau    = 2.0  // residual EMA time constant, s
		actLag = 0.25 // modelled first-order actuator response, s
	)
	tol := 0.12 * k // rad/s of persistent yaw-rate residual allowed
	ema := 0.0
	filtSteer := 0.0
	var lastT float64
	var has bool
	return NewAssertion("A14", "actuator-response",
		fmt.Sprintf("EMA|measured yaw - commanded yaw| <= %.2f rad/s", tol), Critical,
		func(f Frame) Outcome {
			if !has {
				lastT, has = f.T, true
				filtSteer = f.CmdSteer
				return Outcome{Skip: true}
			}
			dt := f.T - lastT
			lastT = f.T
			// The actuator follows the command with a first-order lag; the
			// expectation must model that, or every fast slew (corner
			// entry) produces a spurious transient residual.
			filtSteer += (f.CmdSteer - filtSteer) * (1 - math.Exp(-dt/actLag))
			if f.EstSpeed < 1.5 || f.IMUAge > lim.MaxSensorAge {
				return Outcome{Skip: true}
			}
			expected := f.EstSpeed * math.Tan(filtSteer) / lim.Wheelbase
			residual := f.IMUYawRate - expected
			alpha := dt / tau
			if alpha > 1 {
				alpha = 1
			}
			ema += (residual - ema) * alpha
			dev := math.Abs(ema)
			return Outcome{
				OK:       dev <= tol,
				Margin:   tol - dev,
				Evidence: Ev("ema_residual", ema).And("expected_yaw", expected).And("measured_yaw", f.IMUYawRate).And("tol", tol),
			}
		}, func() { ema = 0; filtSteer = 0; has = false })
}

// A15LatticeConsistency asserts that GNSS fixes do not land on a spatial
// lattice: the approximate greatest common divisor of the recent position
// deltas between consecutive fixes must stay below the grid floor. Real
// receiver noise is continuous, so the folded GCD of genuine fixes
// collapses toward the tolerance; a quantized feed (a truncated
// fixed-point conversion upstream) snaps every delta onto exact multiples
// of the grid pitch, which survives the fold no matter how far below the
// noise floor the pitch sits. This is the detector for the sub-noise
// quantization fault that evades every amplitude-based check — a 0.25 m
// grid is invisible to A1/A10 margins sized for metre-scale spoofs.
func A15LatticeConsistency(lim Limits, k float64) Assertion {
	const (
		window   = 16   // pooled x+y deltas retained
		minFill  = 12   // deltas required before judging
		eps      = 1e-6 // Euclid termination / float-fuzz tolerance
		minStep  = 1e-3 // deltas below this are "no motion on this axis"
		stallMin = 0.15 // expected axis motion above which a zero delta is a stall
		maxStall = 6    // stalled-axis observations per window that imply a coarse grid
	)
	minGrid := 0.02 * k
	var buf [window]float64  // recent nonzero per-axis deltas
	var stalls [window]uint8 // per-fix count of stalled axes (0..2)
	var n, next int          // delta ring fill / cursor
	var sn, snext int        // stall ring fill / cursor
	var px, py, pt float64
	var has bool
	return NewAssertion("A15", "gnss-lattice",
		fmt.Sprintf("GCD of consecutive GNSS position deltas < %.3f m (no quantization lattice)", minGrid), Warning,
		func(f Frame) Outcome {
			if !freshGNSS(f) {
				return Outcome{Skip: true}
			}
			tFix := f.T - f.GNSSAge
			if !has {
				px, py, pt, has = f.GNSSX, f.GNSSY, tFix, true
				return Outcome{Skip: true}
			}
			dtFix := tFix - pt
			if dtFix <= 1e-6 {
				return Outcome{Skip: true} // same fix as last frame
			}
			// Expected per-axis travel between fixes, from the fused state:
			// a near-zero delta despite commanded motion is a stalled axis —
			// the between-jumps phase of a coarse grid.
			mx := math.Abs(math.Cos(f.EstHeading)) * f.EstSpeed * dtFix
			my := math.Abs(math.Sin(f.EstHeading)) * f.EstSpeed * dtFix
			dx, dy := math.Abs(f.GNSSX-px), math.Abs(f.GNSSY-py)
			px, py, pt = f.GNSSX, f.GNSSY, tFix
			var stalled uint8
			for _, a := range [2]struct{ d, m float64 }{{dx, mx}, {dy, my}} {
				if a.d < minStep {
					if a.m > stallMin {
						stalled++
					}
					continue
				}
				buf[next] = a.d
				next = (next + 1) % window
				if n < window {
					n++
				}
			}
			stalls[snext] = stalled
			snext = (snext + 1) % window
			if sn < window {
				sn++
			}
			if n < minFill {
				return Outcome{Skip: true}
			}
			g := buf[0]
			for i := 1; i < n; i++ {
				g = realGCD(g, buf[i], eps)
			}
			// A lattice needs corroboration beyond a common divisor: either
			// two distinct multiples in the window (a stretch of identical
			// deltas has a large GCD by construction and proves nothing), or
			// repeated stalled axes (coarse grids step one pitch at a time,
			// freezing the reported position between boundary crossings).
			distinct := 0
			if g > eps {
				var seen [window]int64
				for i := 0; i < n; i++ {
					q := int64(math.Round(buf[i] / g))
					dup := false
					for j := 0; j < distinct; j++ {
						if seen[j] == q {
							dup = true
							break
						}
					}
					if !dup {
						seen[distinct] = q
						distinct++
					}
				}
			}
			stallSum := 0
			for i := 0; i < sn; i++ {
				stallSum += int(stalls[i])
			}
			pitch := g
			if distinct < 2 && stallSum < maxStall {
				pitch = 0 // degenerate: no lattice evidence
			}
			return Outcome{
				OK:       pitch < minGrid,
				Margin:   minGrid - pitch,
				Evidence: Ev("lattice_pitch", pitch).And("gcd", g).And("min_grid", minGrid).And("stalled", float64(stallSum)),
			}
		}, func() { n, next, sn, snext, has = 0, 0, 0, 0, false })
}

// realGCD folds the Euclidean algorithm over positive reals: the result
// divides both inputs to within eps. For inputs that are exact multiples
// of a common pitch it returns (a multiple of) that pitch; for
// incommensurate inputs it collapses toward eps.
func realGCD(a, b, eps float64) float64 {
	for b > eps {
		a, b = b, math.Mod(a, b)
	}
	return a
}

// angleDiff is the angular difference used by heading-consistency checks.
func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	switch {
	case d > math.Pi:
		d -= 2 * math.Pi
	case d < -math.Pi:
		d += 2 * math.Pi
	}
	return d
}
