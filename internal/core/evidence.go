package core

// evidenceCap is the most named values one assertion outcome carries. The
// largest built-in evidence sets (A6, A14, Consistency) hold four; the cap
// is a compile-time property of the catalog, not a tunable.
const evidenceCap = 4

// evidenceKV is one named value inside an Evidence set.
type evidenceKV struct {
	Key string
	Val float64
}

// Evidence is a fixed-capacity set of named values attached to an assertion
// outcome. It is a plain value type: building one performs no heap
// allocation, which keeps the per-frame assertion-eval path allocation-free
// (the previous map[string]float64 representation cost one map per
// evaluation, the single largest allocator in the monitor hot loop). The
// map form is materialised only when a violation is actually raised — see
// Evidence.Map and Monitor.apply.
type Evidence struct {
	n  int
	kv [evidenceCap]evidenceKV
}

// Ev starts an evidence set with one named value. Chain further values with
// And:
//
//	core.Ev("value", v).And("lo", lo).And("hi", hi)
func Ev(key string, v float64) Evidence {
	var e Evidence
	return e.And(key, v)
}

// And returns a copy of the set extended with one more named value. It
// panics past the capacity: evidence shapes are static per assertion, so an
// overflow is a programming error that any test run surfaces immediately.
func (e Evidence) And(key string, v float64) Evidence {
	if e.n >= evidenceCap {
		panic("core: evidence overflow — raise evidenceCap")
	}
	e.kv[e.n] = evidenceKV{Key: key, Val: v}
	e.n++
	return e
}

// Len returns the number of named values in the set.
func (e Evidence) Len() int { return e.n }

// Get returns the named value, if present.
func (e Evidence) Get(key string) (float64, bool) {
	for i := 0; i < e.n; i++ {
		if e.kv[i].Key == key {
			return e.kv[i].Val, true
		}
	}
	return 0, false
}

// Map materialises the set as a map for violation records and JSON export.
// An empty set yields nil, matching the legacy "no evidence" encoding.
func (e Evidence) Map() map[string]float64 {
	if e.n == 0 {
		return nil
	}
	m := make(map[string]float64, e.n)
	for i := 0; i < e.n; i++ {
		m[e.kv[i].Key] = e.kv[i].Val
	}
	return m
}
