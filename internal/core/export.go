package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteViolationsJSON serialises a violation record for external tooling
// (dashboards, ticket attachments). The format is a stable JSON array of
// Violation objects.
func WriteViolationsJSON(w io.Writer, vs []Violation) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if vs == nil {
		vs = []Violation{}
	}
	if err := enc.Encode(vs); err != nil {
		return fmt.Errorf("core: encode violations: %w", err)
	}
	return nil
}

// ReadViolationsJSON parses a record written by WriteViolationsJSON.
func ReadViolationsJSON(r io.Reader) ([]Violation, error) {
	var vs []Violation
	if err := json.NewDecoder(r).Decode(&vs); err != nil {
		return nil, fmt.Errorf("core: decode violations: %w", err)
	}
	return vs, nil
}
