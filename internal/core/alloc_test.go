package core

import "testing"

// The monitor's steady-state contract is zero heap allocation: evidence is
// carried in the fixed-capacity Evidence value type and only materialised
// to a map when a violation is actually raised. These tests pin that
// contract so a future convenience change (say, reintroducing a map literal
// in an assertion body) fails loudly instead of silently costing ~27
// allocations per control step again.

// TestAssertionEvalAllocs checks every catalog assertion evaluates a
// nominal frame without allocating.
func TestAssertionEvalAllocs(t *testing.T) {
	entries := NewCatalog(CatalogConfig{Limits: testLimits(), IncludeGroundTruth: true})
	f := goodFrame(3)
	for _, e := range entries {
		a := e.Assertion
		// Warm any internal state (EMA filters, rate trackers).
		for i := 0; i < 10; i++ {
			a.Eval(goodFrame(float64(i) * 0.05))
		}
		allocs := testing.AllocsPerRun(200, func() { _ = a.Eval(f) })
		if allocs > 0 {
			t.Errorf("%s: Eval allocates %.1f objects/op in steady state, want 0", a.ID(), allocs)
		}
	}
}

// TestMonitorStepAllocs checks a full-catalog monitor step on a clean
// stream (debounce bookkeeping included) allocates nothing.
func TestMonitorStepAllocs(t *testing.T) {
	m := NewCatalogMonitor(CatalogConfig{Limits: testLimits(), IncludeGroundTruth: true})
	tt := 0.0
	for i := 0; i < 100; i++ {
		m.Step(goodFrame(tt))
		tt += 0.05
	}
	allocs := testing.AllocsPerRun(200, func() {
		m.Step(goodFrame(tt))
		tt += 0.05
	})
	if allocs > 0 {
		t.Errorf("monitor step allocates %.1f objects/op in steady state, want 0", allocs)
	}
}
