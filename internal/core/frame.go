// Package core is ADAssure's primary contribution: a runtime-assertion
// framework for autonomous-driving control stacks. It defines the signal
// frame sampled every control step, a small assertion DSL (bound, rate,
// consistency and window predicates with k-of-n debouncing), the built-in
// assertion catalog A1–A12, and the monitor engine that evaluates the
// catalog online and emits violations with attached evidence.
//
// The methodology: run a scenario with the Monitor attached, collect the
// violation record, feed it to the diagnosis engine (package diagnosis) to
// rank root causes, fix the controller or fusion configuration, and re-run
// to confirm the violations clear.
package core

import "math"

// Frame is one control-period sample of every signal the assertion catalog
// ranges over. The simulation engine (or, on a real platform, the logging
// bridge) fills one Frame per control step.
type Frame struct {
	// T is the frame timestamp in seconds; Dt the control period.
	T, Dt float64

	// Localization estimate (what the controller believes).
	EstX, EstY   float64
	EstHeading   float64
	EstSpeed     float64
	EstYawRate   float64
	EstPosStdDev float64

	// Latest GNSS fix as delivered (post-attack), and its age.
	GNSSX, GNSSY float64
	GNSSSpeed    float64
	GNSSCourse   float64
	GNSSAge      float64
	GNSSValid    bool

	// Latest IMU reading and its age.
	IMUHeading float64
	IMUYawRate float64
	IMUAccel   float64
	IMUAge     float64

	// Latest wheel-odometry reading and its age.
	OdomSpeed float64
	OdomAge   float64

	// Controller output this step.
	CmdSteer float64
	CmdAccel float64

	// Reference-tracking quantities computed from the estimate.
	RefS        float64 // arc position of the projection
	CTE         float64 // signed cross-track error (estimate vs path)
	HeadingErr  float64 // estimate heading − path heading
	Curvature   float64 // path curvature at the projection
	TargetSpeed float64
	Progress    float64 // cumulative route progress, m
	// CurvAheadMin/Max bound the path curvature over the window the
	// controller is reacting to (slightly behind to one lookahead ahead of
	// the projection); assertion A6 checks steering against this band.
	CurvAheadMin, CurvAheadMax float64

	// Fusion innovation statistics (assertion A10).
	NIS          float64
	NISFresh     bool // true if a GNSS update was attempted this step
	RejectStreak int

	// Ground truth, available in simulation (and in instrumented test-track
	// runs). Online assertions must not read these; the offline assertion
	// A12 and the metrics layer do.
	TrueX, TrueY float64
	TrueHeading  float64
	TrueSpeed    float64
	TrueCTE      float64
}

// Limits carries the vehicle/track envelope the catalog's thresholds are
// scaled by, so assertions transfer between platforms without retuning.
type Limits struct {
	MaxSpeed     float64 // m/s
	MaxLatAccel  float64 // m/s²
	MaxJerk      float64 // m/s³
	MaxSteer     float64 // rad
	MaxSteerRate float64 // rad/s
	Wheelbase    float64 // m
	// CTEBound is the lane-keeping tolerance in metres (default 1.5).
	CTEBound float64
	// HeadingTol is the admissible GNSS-vs-IMU heading divergence (default
	// 0.45 rad, covering course-chord lag plus IMU heading bias walk).
	HeadingTol float64
	// SpeedTol is the admissible GNSS-vs-odometry speed divergence in m/s
	// (default 1.0).
	SpeedTol float64
	// MaxSensorAge is the staleness bound for sensor delivery (default
	// 0.5 s, covering several GNSS periods).
	MaxSensorAge float64
	// NISGate is the χ² threshold assertion A10 checks against (default
	// 9.21, the 99th percentile at 2 DOF).
	NISGate float64
}

// DefaultLimits derives assertion limits from the vehicle envelope.
func DefaultLimits(maxSpeed, maxLatAccel, maxJerk, maxSteer, maxSteerRate, wheelbase float64) Limits {
	return Limits{
		MaxSpeed:     maxSpeed,
		MaxLatAccel:  maxLatAccel,
		MaxJerk:      maxJerk,
		MaxSteer:     maxSteer,
		MaxSteerRate: maxSteerRate,
		Wheelbase:    wheelbase,
		CTEBound:     1.5,
		HeadingTol:   0.45,
		SpeedTol:     1.5,
		MaxSensorAge: 0.5,
		NISGate:      9.21,
	}
}

// Finite reports whether the frame's core estimate signals are finite;
// non-finite frames indicate an instrumentation bug and are skipped by the
// monitor with a diagnostic.
func (f Frame) Finite() bool {
	for _, v := range []float64{f.T, f.EstX, f.EstY, f.EstHeading, f.EstSpeed, f.CmdSteer, f.CmdAccel} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
