package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adassure/internal/obs"
)

// waitTerminal polls a job to a terminal state with a deadline.
func waitTerminal(t *testing.T, j *Job, within time.Duration) State {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if st := j.State(); st.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %s", j.ID, j.State(), within)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestJobLifecycleDone(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager(Config{
		Workers: 2,
		Obs:     reg,
		Exec: func(ctx context.Context, job *Job) (Result, error) {
			return Result{Body: []byte("body-" + job.Key), Status: 200, Cache: "miss"}, nil
		},
	})
	defer m.Close(context.Background())

	j, err := m.Submit("payload", "k1", "trace1")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if len(j.ID) != 32 {
		t.Fatalf("job ID %q is not 32 hex chars", j.ID)
	}
	if st := waitTerminal(t, j, 2*time.Second); st != StateDone {
		t.Fatalf("state = %s, want done", st)
	}
	res, ok := j.ResultIfDone()
	if !ok || string(res.Body) != "body-k1" || res.Status != 200 || res.Cache != "miss" {
		t.Fatalf("result = %+v ok=%v", res, ok)
	}
	snap := j.Snapshot()
	if snap.State != StateDone || snap.Key != "k1" || snap.TraceID != "trace1" || snap.Cache != "miss" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if got := reg.Counter("jobs.done").Value(); got != 1 {
		t.Fatalf("jobs.done = %d", got)
	}
	// Event log: queued → started → done, seq 1..3.
	events, follow := j.EventsSince(0)
	if follow != nil {
		t.Fatal("terminal job returned a follow channel")
	}
	kinds := []string{}
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Fatalf("seq gap at %d: %+v", i, e)
		}
		kinds = append(kinds, e.Kind)
	}
	want := []string{EventQueued, EventStarted, EventDone}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
}

func TestJobFailureAfterRetries(t *testing.T) {
	reg := obs.NewRegistry()
	var calls atomic.Int64
	transient := errors.New("backend busy")
	m := NewManager(Config{
		Workers:    1,
		Attempts:   3,
		RetryDelay: time.Millisecond,
		Obs:        reg,
		Exec: func(ctx context.Context, job *Job) (Result, error) {
			calls.Add(1)
			return Result{Body: []byte(`{"error":"busy"}`), Status: 429}, transient
		},
		Retryable: func(err error) bool { return errors.Is(err, transient) },
	})
	defer m.Close(context.Background())

	j, _ := m.Submit(nil, "k", "")
	if st := waitTerminal(t, j, 2*time.Second); st != StateFailed {
		t.Fatalf("state = %s, want failed", st)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("exec attempts = %d, want 3", got)
	}
	if got := reg.Counter("jobs.retries").Value(); got != 2 {
		t.Fatalf("jobs.retries = %d, want 2", got)
	}
	snap := j.Snapshot()
	if snap.Attempts != 3 || snap.Error == "" || snap.Status != 429 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// The error body is exposed like a result for the /result endpoint.
	res, ok := j.ResultIfDone()
	if !ok || res.Status != 429 {
		t.Fatalf("failed-job result = %+v ok=%v", res, ok)
	}
}

func TestNonRetryableFailsFirstAttempt(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(Config{
		Workers:    1,
		Attempts:   5,
		RetryDelay: time.Millisecond,
		Exec: func(ctx context.Context, job *Job) (Result, error) {
			calls.Add(1)
			return Result{}, errors.New("permanent")
		},
		Retryable: func(error) bool { return false },
	})
	defer m.Close(context.Background())
	j, _ := m.Submit(nil, "k", "")
	if st := waitTerminal(t, j, 2*time.Second); st != StateFailed {
		t.Fatalf("state = %s", st)
	}
	if calls.Load() != 1 {
		t.Fatalf("attempts = %d, want 1", calls.Load())
	}
}

func TestCancelQueuedJob(t *testing.T) {
	block := make(chan struct{})
	m := NewManager(Config{
		Workers:    1,
		QueueDepth: 8,
		Exec: func(ctx context.Context, job *Job) (Result, error) {
			<-block
			return Result{Status: 200}, nil
		},
	})
	defer func() { close(block); m.Close(context.Background()) }()

	// First job occupies the single worker; the second stays queued.
	m.Submit(nil, "running", "")
	j2, _ := m.Submit(nil, "queued", "")
	time.Sleep(10 * time.Millisecond)

	snap, ok, err := m.Cancel(j2.ID)
	if err != nil || !ok || snap.State != StateCancelled {
		t.Fatalf("Cancel queued: snap=%+v ok=%v err=%v", snap, ok, err)
	}
	// The dispatcher must skip it, not run it.
	time.Sleep(10 * time.Millisecond)
	if st := j2.State(); st != StateCancelled {
		t.Fatalf("state after skip = %s", st)
	}
	if _, ok := j2.ResultIfDone(); ok {
		t.Fatal("cancelled job reported a result")
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	m := NewManager(Config{
		Workers: 1,
		Exec: func(ctx context.Context, job *Job) (Result, error) {
			close(started)
			<-ctx.Done()
			return Result{}, ctx.Err()
		},
	})
	defer m.Close(context.Background())

	j, _ := m.Submit(nil, "k", "")
	<-started
	if _, ok, err := m.Cancel(j.ID); err != nil || !ok {
		t.Fatalf("Cancel running: ok=%v err=%v", ok, err)
	}
	if st := waitTerminal(t, j, 2*time.Second); st != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st)
	}
}

func TestCancelUnknownJob(t *testing.T) {
	m := NewManager(Config{Exec: func(context.Context, *Job) (Result, error) { return Result{}, nil }})
	defer m.Close(context.Background())
	if _, _, err := m.Cancel("deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel unknown: %v, want ErrNotFound", err)
	}
}

func TestQueueFullRejects(t *testing.T) {
	block := make(chan struct{})
	reg := obs.NewRegistry()
	m := NewManager(Config{
		Workers:    1,
		QueueDepth: 2,
		Obs:        reg,
		Exec: func(ctx context.Context, job *Job) (Result, error) {
			<-block
			return Result{Status: 200}, nil
		},
	})
	defer func() { close(block); m.Close(context.Background()) }()

	// 1 running + 2 queued fit; the 4th must be rejected.
	var lastErr error
	for i := 0; i < 4; i++ {
		_, lastErr = m.Submit(nil, fmt.Sprint(i), "")
		if i < 3 && lastErr != nil {
			t.Fatalf("Submit %d: %v", i, lastErr)
		}
		if i == 0 {
			// Let the worker pick up the first job so capacity is deterministic.
			deadline := time.Now().Add(time.Second)
			for m.Running() == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		}
	}
	if !errors.Is(lastErr, ErrQueueFull) {
		t.Fatalf("4th submit: %v, want ErrQueueFull", lastErr)
	}
	if reg.Counter("jobs.rejected").Value() != 1 {
		t.Fatalf("jobs.rejected = %d", reg.Counter("jobs.rejected").Value())
	}
}

func TestRetentionEvictsOldestFinished(t *testing.T) {
	m := NewManager(Config{
		Workers:   2,
		Retention: 4,
		Exec: func(ctx context.Context, job *Job) (Result, error) {
			return Result{Status: 200}, nil
		},
	})
	defer m.Close(context.Background())

	var ids []string
	for i := 0; i < 10; i++ {
		j, err := m.Submit(nil, fmt.Sprint(i), "")
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		waitTerminal(t, j, 2*time.Second)
		ids = append(ids, j.ID)
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Fatal("oldest finished job survived retention")
	}
	if _, ok := m.Get(ids[9]); !ok {
		t.Fatal("newest finished job evicted")
	}
}

// TestEventsFollow subscribes mid-run and receives the remaining events
// through the notify channel.
func TestEventsFollow(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	m := NewManager(Config{
		Workers: 1,
		Exec: func(ctx context.Context, job *Job) (Result, error) {
			close(started)
			<-release
			return Result{Status: 200, Cache: "miss"}, nil
		},
	})
	defer m.Close(context.Background())

	j, _ := m.Submit(nil, "k", "")
	<-started

	events, follow := j.EventsSince(0)
	if len(events) != 2 { // queued, started
		t.Fatalf("events mid-run = %d, want 2", len(events))
	}
	if follow == nil {
		t.Fatal("running job returned nil follow channel")
	}
	close(release)
	select {
	case <-follow:
	case <-time.After(2 * time.Second):
		t.Fatal("follow channel never fired")
	}
	rest, follow2 := j.EventsSince(events[len(events)-1].Seq)
	if len(rest) != 1 || rest[0].Kind != EventDone {
		t.Fatalf("tail events = %+v", rest)
	}
	if follow2 != nil {
		t.Fatal("terminal job still follows")
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	var ran atomic.Int64
	m := NewManager(Config{
		Workers: 1,
		Exec: func(ctx context.Context, job *Job) (Result, error) {
			time.Sleep(5 * time.Millisecond)
			ran.Add(1)
			return Result{Status: 200}, nil
		},
	})
	var jobs []*Job
	for i := 0; i < 5; i++ {
		j, err := m.Submit(nil, fmt.Sprint(i), "")
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		jobs = append(jobs, j)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if ran.Load() != 5 {
		t.Fatalf("ran %d jobs through Close, want 5 (queue drains)", ran.Load())
	}
	if _, err := m.Submit(nil, "late", ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	for _, j := range jobs {
		if st := j.State(); st != StateDone {
			t.Fatalf("job %s state %s after drain", j.ID, st)
		}
	}
}

func TestConcurrentSubmitPollCancel(t *testing.T) {
	m := NewManager(Config{
		Workers:    4,
		QueueDepth: 256,
		Retention:  512,
		Exec: func(ctx context.Context, job *Job) (Result, error) {
			return Result{Status: 200, Body: []byte(job.Key)}, nil
		},
	})
	defer m.Close(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				j, err := m.Submit(nil, fmt.Sprintf("%d-%d", w, i), "")
				if err != nil {
					continue // queue-full under contention is legal
				}
				m.Get(j.ID)
				j.Snapshot()
				if i%5 == 0 {
					m.Cancel(j.ID)
				}
			}
		}(w)
	}
	wg.Wait()
}
