// Package jobs is the asynchronous job tier of the serving stack: a
// bounded queue of scenario-execution jobs with explicit lifecycle
// states, per-job cancellation, retry of retryable failures, a typed
// event log per job (streamed as NDJSON by the service layer, the same
// framing the streaming monitor events use) and bounded retention of
// finished jobs for polling.
//
// The manager is execution-agnostic: it owns states, queueing, events
// and retention, while the configured Exec hook does the work — the
// standalone service executes on its local cache/single-flight/pool
// path, the fleet coordinator forwards over the consistent-hash ring.
// Both expose the identical HTTP job API on top of this one type.
//
// Lifecycle:
//
//	queued ──▶ running ──▶ done
//	   │          ├──────▶ failed      (Exec error, retries exhausted)
//	   └──────────┴──────▶ cancelled   (DELETE /v1/jobs/{id})
//
// Admission never blocks: Submit either enqueues or fails immediately
// with ErrQueueFull, mirroring the simulation pool's backpressure
// contract so the HTTP layer can answer 429 + Retry-After.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"adassure/internal/obs"
)

// State is one of the five job lifecycle states.
type State string

// The job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// ErrQueueFull is returned by Submit when the job queue is at capacity.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed is returned by Submit after Close started.
var ErrClosed = errors.New("jobs: manager closed")

// ErrNotFound is returned for an unknown (or expired-from-retention)
// job ID.
var ErrNotFound = errors.New("jobs: unknown job")

// Result is the outcome an Exec hook reports for a finished job.
type Result struct {
	// Body is the response document, byte-identical to what the
	// synchronous execution path would have produced.
	Body []byte
	// Status is the HTTP status the body corresponds to.
	Status int
	// Cache is the cache disposition of the execution ("hit", "miss",
	// "coalesced", "store", or empty when not applicable).
	Cache string
	// Worker names the backend that executed the job (fleet mode; empty
	// when executed locally).
	Worker string
}

// Event is one entry of a job's event log, streamed as NDJSON from
// GET /v1/jobs/{id}/events. Seq numbers events from 1 per job.
type Event struct {
	Seq     int64  `json:"seq"`
	Kind    string `json:"event"`
	State   State  `json:"state"`
	Attempt int    `json:"attempt,omitempty"`
	Detail  string `json:"detail,omitempty"`
	// ElapsedMS is milliseconds since the job was submitted.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// Event kinds.
const (
	EventQueued    = "queued"
	EventStarted   = "started"
	EventRetrying  = "retrying"
	EventDone      = "done"
	EventFailed    = "failed"
	EventCancelled = "cancelled"
)

// Job is one asynchronous execution. All exported accessors are safe
// for concurrent use; the struct's fields are owned by the manager.
type Job struct {
	// ID is the 32-hex-char job handle (not content-addressed: two
	// submissions of the same request are two jobs, likely one cache hit).
	ID string
	// Key is the content address of the canonical request the job runs.
	Key string
	// Payload is the canonical request, opaque to the manager.
	Payload any
	// TraceID correlates the job with the submitting request's trace.
	TraceID string

	created time.Time

	mu       sync.Mutex
	state    State
	attempts int
	result   Result
	errMsg   string
	events   []Event
	// notify is closed and replaced on every event append, so followers
	// can wait for "something changed" without polling.
	notify chan struct{}

	cancelled atomic.Bool
	runCtx    context.Context
	cancel    context.CancelFunc
}

// newID returns a 32-hex-char random job handle.
func newID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: read random id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Snapshot is the poll view of a job (the GET /v1/jobs/{id} body).
type Snapshot struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Key      string `json:"key"`
	TraceID  string `json:"trace_id,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	// Cache/Status/Worker are set once the job is done.
	Cache  string `json:"cache,omitempty"`
	Status int    `json:"status,omitempty"`
	Worker string `json:"worker,omitempty"`
	Error  string `json:"error,omitempty"`
	// Events is the number of events recorded so far.
	Events int64 `json:"events"`
}

// Snapshot returns the job's poll view.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	snap := Snapshot{
		ID:       j.ID,
		State:    j.state,
		Key:      j.Key,
		TraceID:  j.TraceID,
		Attempts: j.attempts,
		Error:    j.errMsg,
		Events:   int64(len(j.events)),
	}
	if j.state == StateDone || j.state == StateFailed {
		snap.Cache = j.result.Cache
		snap.Status = j.result.Status
		snap.Worker = j.result.Worker
	}
	return snap
}

// ResultIfDone returns the job's result once the job is terminal with a
// body (done, or failed with an error document). ok is false while the
// job is still queued or running, and for cancelled jobs.
func (j *Job) ResultIfDone() (Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if (j.state == StateDone || j.state == StateFailed) && j.result.Status != 0 {
		return j.result, true
	}
	return Result{}, false
}

// EventsSince returns the recorded events after seq, plus a channel that
// is closed when another event arrives (nil when the job is terminal —
// nothing further will arrive).
func (j *Job) EventsSince(seq int64) ([]Event, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	for _, e := range j.events {
		if e.Seq > seq {
			out = append(out, e)
		}
	}
	if j.state.Terminal() {
		return out, nil
	}
	return out, j.notify
}

// appendEvent records one event and wakes followers. Caller holds j.mu.
func (j *Job) appendEventLocked(kind string, attempt int, detail string) {
	j.events = append(j.events, Event{
		Seq:       int64(len(j.events) + 1),
		Kind:      kind,
		State:     j.state,
		Attempt:   attempt,
		Detail:    detail,
		ElapsedMS: time.Since(j.created).Milliseconds(),
	})
	close(j.notify)
	j.notify = make(chan struct{})
}

// Config tunes a Manager.
type Config struct {
	// Workers is the number of dispatcher goroutines executing jobs
	// (default 2). In the standalone service each dispatcher occupies one
	// simulation-pool slot while its job runs, so Workers ≤ pool workers
	// keeps synchronous traffic from being starved.
	Workers int
	// QueueDepth bounds jobs admitted but not yet dispatched
	// (default 8×Workers). A full queue rejects Submit with ErrQueueFull.
	QueueDepth int
	// Retention bounds finished jobs kept for polling (default 256);
	// beyond it the oldest finished jobs are forgotten FIFO. Queued and
	// running jobs are never dropped.
	Retention int
	// Attempts is the execution budget per job when Retryable reports an
	// error as transient (default 3).
	Attempts int
	// RetryDelay is the base backoff between attempts, doubled each retry
	// (default 100ms).
	RetryDelay time.Duration
	// Exec performs one execution attempt. Required.
	Exec func(ctx context.Context, job *Job) (Result, error)
	// Retryable classifies an Exec error as transient (worth another
	// attempt) — e.g. local pool or remote worker backpressure. Nil means
	// no error is retryable.
	Retryable func(error) bool
	// Obs receives jobs.submitted/done/failed/cancelled/retries counters
	// and the jobs.queued/running gauges. Nil-safe.
	Obs *obs.Registry
	// Logger receives one record per terminal job. Nil discards.
	Logger *slog.Logger
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8 * c.Workers
	}
	if c.Retention <= 0 {
		c.Retention = 256
	}
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 100 * time.Millisecond
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
}

// Manager owns the job queue, lifecycle and retention.
type Manager struct {
	cfg   Config
	queue chan *Job
	wg    sync.WaitGroup

	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // FIFO of terminal job IDs for retention eviction
	closed   bool

	submitted *obs.Counter
	done      *obs.Counter
	failed    *obs.Counter
	cancelled *obs.Counter
	retries   *obs.Counter
	rejected  *obs.Counter
	queuedGau *obs.Gauge
	runGau    *obs.Gauge
	running   atomic.Int64
}

// NewManager starts the dispatchers and returns the manager.
func NewManager(cfg Config) *Manager {
	cfg.defaults()
	if cfg.Exec == nil {
		panic("jobs: Config.Exec is required")
	}
	m := &Manager{
		cfg:   cfg,
		queue: make(chan *Job, cfg.QueueDepth),
		jobs:  map[string]*Job{},

		submitted: cfg.Obs.Counter("jobs.submitted"),
		done:      cfg.Obs.Counter("jobs.done"),
		failed:    cfg.Obs.Counter("jobs.failed"),
		cancelled: cfg.Obs.Counter("jobs.cancelled"),
		retries:   cfg.Obs.Counter("jobs.retries"),
		rejected:  cfg.Obs.Counter("jobs.rejected"),
		queuedGau: cfg.Obs.Gauge("jobs.queued"),
		runGau:    cfg.Obs.Gauge("jobs.running"),
	}
	m.baseCtx, m.cancel = context.WithCancel(context.Background())
	m.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go m.dispatch()
	}
	return m
}

// QueueLen reports jobs admitted but not yet dispatched.
func (m *Manager) QueueLen() int { return len(m.queue) }

// QueueCap reports the admission-queue capacity.
func (m *Manager) QueueCap() int { return cap(m.queue) }

// Running reports jobs currently executing.
func (m *Manager) Running() int { return int(m.running.Load()) }

// Submit admits one job. payload is the canonical request (opaque to
// the manager), key its content address, traceID the submitting
// request's trace (may be empty).
func (m *Manager) Submit(payload any, key, traceID string) (*Job, error) {
	j := &Job{
		ID:      newID(),
		Key:     key,
		Payload: payload,
		TraceID: traceID,
		created: time.Now(),
		state:   StateQueued,
		notify:  make(chan struct{}),
	}
	j.runCtx, j.cancel = context.WithCancel(m.baseCtx)
	j.mu.Lock()
	j.appendEventLocked(EventQueued, 0, "")
	j.mu.Unlock()

	// The non-blocking send happens under mu so Close cannot close the
	// queue between the closed check and the send.
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		j.cancel()
		return nil, ErrClosed
	}
	select {
	case m.queue <- j:
		m.jobs[j.ID] = j
		m.mu.Unlock()
		m.submitted.Inc()
		m.queuedGau.Set(float64(len(m.queue)))
		return j, nil
	default:
		m.mu.Unlock()
		j.cancel()
		m.rejected.Inc()
		return nil, ErrQueueFull
	}
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job. Queued jobs transition to
// cancelled immediately (the dispatcher skips them); running jobs have
// their context cancelled and transition when Exec returns. Terminal
// jobs are unaffected (ok reports whether a cancellation was applied).
func (m *Manager) Cancel(id string) (snap Snapshot, ok bool, err error) {
	m.mu.Lock()
	j, found := m.jobs[id]
	m.mu.Unlock()
	if !found {
		return Snapshot{}, false, ErrNotFound
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.cancelled.Store(true)
		j.state = StateCancelled
		j.appendEventLocked(EventCancelled, j.attempts, "cancelled while queued")
		j.mu.Unlock()
		j.cancel()
		m.cancelled.Inc()
		m.retire(j)
		return j.Snapshot(), true, nil
	case StateRunning:
		j.cancelled.Store(true)
		j.mu.Unlock()
		j.cancel() // Exec observes ctx.Done and returns; dispatcher finishes the state
		return j.Snapshot(), true, nil
	default:
		j.mu.Unlock()
		return j.Snapshot(), false, nil
	}
}

// retire moves a terminal job into the retention FIFO, evicting the
// oldest finished jobs beyond the retention bound.
func (m *Manager) retire(j *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finished = append(m.finished, j.ID)
	for len(m.finished) > m.cfg.Retention {
		victim := m.finished[0]
		m.finished = m.finished[1:]
		delete(m.jobs, victim)
	}
}

// dispatch is one worker loop: pop, run (with retries), finish.
func (m *Manager) dispatch() {
	defer m.wg.Done()
	for j := range m.queue {
		m.queuedGau.Set(float64(len(m.queue)))
		m.runJob(j)
	}
}

// runJob executes one job through its attempt budget.
func (m *Manager) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.appendEventLocked(EventStarted, 1, "")
	ctx := j.runCtx
	j.mu.Unlock()

	m.running.Add(1)
	m.runGau.Set(float64(m.running.Load()))
	defer func() {
		m.running.Add(-1)
		m.runGau.Set(float64(m.running.Load()))
	}()

	delay := m.cfg.RetryDelay
	var res Result
	var err error
	for attempt := 1; ; attempt++ {
		j.mu.Lock()
		j.attempts = attempt
		j.mu.Unlock()
		res, err = m.cfg.Exec(ctx, j)
		if err == nil || ctx.Err() != nil || attempt >= m.cfg.Attempts ||
			m.cfg.Retryable == nil || !m.cfg.Retryable(err) {
			break
		}
		m.retries.Inc()
		j.mu.Lock()
		j.appendEventLocked(EventRetrying, attempt, err.Error())
		j.mu.Unlock()
		select {
		case <-time.After(delay):
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		delay *= 2
	}

	j.mu.Lock()
	switch {
	case j.cancelled.Load() || (err != nil && errors.Is(err, context.Canceled)):
		j.state = StateCancelled
		if err != nil {
			j.errMsg = err.Error()
		} else {
			j.errMsg = "cancelled"
		}
		j.appendEventLocked(EventCancelled, j.attempts, j.errMsg)
		m.cancelled.Inc()
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
		j.result = res // may carry an error body + status from the exec layer
		j.appendEventLocked(EventFailed, j.attempts, j.errMsg)
		m.failed.Inc()
	default:
		j.state = StateDone
		j.result = res
		j.appendEventLocked(EventDone, j.attempts, res.Cache)
		m.done.Inc()
	}
	state, attempts := j.state, j.attempts
	j.mu.Unlock()
	j.cancel()
	m.retire(j)
	m.cfg.Logger.Info("job finished",
		slog.String("job_id", j.ID),
		slog.String("state", string(state)),
		slog.Int("attempts", attempts),
		slog.String("trace_id", j.TraceID),
	)
}

// Close stops admission, waits for dispatched jobs to finish executing
// (queued jobs still run — the queue is drained, mirroring the
// simulation pool's contract), or cancels everything when ctx expires.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.cancel()
		return nil
	case <-ctx.Done():
		m.cancel() // abort running Execs
		<-done
		return ctx.Err()
	}
}
