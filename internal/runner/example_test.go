package runner_test

import (
	"context"
	"fmt"

	"adassure/internal/runner"
)

// Map fans a job grid across the pool; results come back in job order no
// matter how many workers run or in what order they finish.
func ExampleMap() {
	seeds := []int64{1, 2, 3, 4}
	out, err := runner.Map(runner.Options{Workers: 4}, seeds,
		func(_ context.Context, _ int, seed int64) (int64, error) {
			return seed * seed, nil // stand-in for one simulation run
		})
	if err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output:
	// [1 4 9 16]
}

// Run is the index-only variant, for jobs derived from closure scope.
func ExampleRun() {
	out, err := runner.Run(runner.Options{Workers: 2}, 3,
		func(_ context.Context, i int) (string, error) {
			return fmt.Sprintf("experiment-%d", i), nil
		})
	if err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output:
	// [experiment-0 experiment-1 experiment-2]
}
