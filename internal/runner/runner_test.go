package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapIndexOrdered checks the core determinism contract: results land
// at their job index for every worker count, even when jobs finish out of
// order.
func TestMapIndexOrdered(t *testing.T) {
	jobs := make([]int, 64)
	for i := range jobs {
		jobs[i] = i
	}
	for _, workers := range []int{1, 2, 4, 7, 64, 200} {
		out, err := Map(Options{Workers: workers}, jobs, func(_ context.Context, idx, job int) (string, error) {
			// Stagger completion so later indices often finish first.
			time.Sleep(time.Duration((job%5)*50) * time.Microsecond)
			return fmt.Sprintf("job-%d", job), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != len(jobs) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(out), len(jobs))
		}
		for i, s := range out {
			if want := fmt.Sprintf("job-%d", i); s != want {
				t.Errorf("workers=%d: out[%d] = %q, want %q", workers, i, s, want)
			}
		}
	}
}

// TestRunMatchesSequential checks workers=N output equals the workers=1
// output element-for-element.
func TestRunMatchesSequential(t *testing.T) {
	fn := func(_ context.Context, i int) (int, error) { return i*i + 3, nil }
	seq, err := Run(Options{Workers: 1}, 50, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(Options{Workers: runtime.GOMAXPROCS(0) + 3}, 50, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("out[%d]: sequential %d != parallel %d", i, seq[i], par[i])
		}
	}
}

// TestPanicRecovery checks a panicking job becomes a structured *JobError
// instead of crashing the process, and that the campaign reports it.
func TestPanicRecovery(t *testing.T) {
	jobs := []int{0, 1, 2, 3}
	_, err := Map(Options{Workers: 2}, jobs, func(_ context.Context, _, job int) (int, error) {
		if job == 2 {
			panic("scenario blew up")
		}
		return job, nil
	})
	if err == nil {
		t.Fatal("want error from panicking job")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %T: %v", err, err)
	}
	if !je.Panicked {
		t.Error("JobError.Panicked = false, want true")
	}
	if je.Index != 2 {
		t.Errorf("JobError.Index = %d, want 2", je.Index)
	}
	if !strings.Contains(err.Error(), "scenario blew up") {
		t.Errorf("error %q does not carry the panic value", err)
	}
}

// TestFirstErrorWins checks the reported failure is the lowest-indexed
// one, independent of completion order.
func TestFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(Options{Workers: 1}, 8, func(_ context.Context, i int) (int, error) {
		if i >= 3 {
			return 0, boom
		}
		return i, nil
	})
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %T", err)
	}
	if je.Index != 3 {
		t.Errorf("JobError.Index = %d, want 3", je.Index)
	}
	if !errors.Is(err, boom) {
		t.Error("errors.Is(err, boom) = false, want true")
	}
}

// TestErrorCancelsPending checks that after one job fails, undispatched
// jobs are skipped rather than executed.
func TestErrorCancelsPending(t *testing.T) {
	var ran int64
	_, err := Run(Options{Workers: 1}, 100, func(_ context.Context, i int) (int, error) {
		atomic.AddInt64(&ran, 1)
		if i == 0 {
			return 0, errors.New("fail fast")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := atomic.LoadInt64(&ran); n != 1 {
		t.Errorf("%d jobs ran after the first failure, want 1", n)
	}
}

// TestContextCancellation checks an already-cancelled context stops the
// pool before any job runs and surfaces context.Canceled.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	_, err := Run(Options{Workers: 4, Context: ctx}, 16, func(_ context.Context, i int) (int, error) {
		atomic.AddInt64(&ran, 1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := atomic.LoadInt64(&ran); n != 0 {
		t.Errorf("%d jobs ran under a cancelled context, want 0", n)
	}
}

// TestMidRunCancellation checks cancelling while jobs are in flight stops
// dispatch of the remainder.
func TestMidRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int64
	_, err := Run(Options{Workers: 1, Context: ctx}, 100, func(_ context.Context, i int) (int, error) {
		if atomic.AddInt64(&ran, 1) == 3 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := atomic.LoadInt64(&ran); n != 3 {
		t.Errorf("%d jobs ran, want 3 (dispatch stops after cancel)", n)
	}
}

// TestProgressCallback checks completions are reported monotonically up
// to the total.
func TestProgressCallback(t *testing.T) {
	const n = 40
	var calls []int
	_, err := Run(Options{
		Workers:    4,
		OnProgress: func(done, total int) { calls = append(calls, done) },
	}, n, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != n {
		t.Fatalf("OnProgress called %d times, want %d", len(calls), n)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("OnProgress call %d reported done=%d, want %d", i, d, i+1)
		}
	}
}

// TestEmptyAndDefaults checks the zero-job and zero-value-Options paths.
func TestEmptyAndDefaults(t *testing.T) {
	out, err := Map(Options{}, nil, func(_ context.Context, _ int, _ struct{}) (int, error) {
		t.Error("job function ran for an empty grid")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty grid: out=%v err=%v", out, err)
	}
	// Zero-value Options must fall back to GOMAXPROCS workers and a
	// background context.
	res, err := Run(Options{}, 3, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[2] != 2 {
		t.Fatalf("defaults run: got %v", res)
	}
}

// TestPartialResultsOnError checks the successful slots survive a
// failure elsewhere in the grid.
func TestPartialResultsOnError(t *testing.T) {
	out, err := Run(Options{Workers: 1}, 4, func(_ context.Context, i int) (int, error) {
		if i == 2 {
			return 0, errors.New("nope")
		}
		return i + 10, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if out[0] != 10 || out[1] != 11 {
		t.Errorf("completed results lost: %v", out)
	}
}
