package runner

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"adassure/internal/obs"
)

// Pool is the serving-side counterpart of Map/Run: a persistent worker
// pool with a bounded admission queue, built for long-running processes
// (the adassure-server) that accept work continuously rather than fanning
// out one finite grid.
//
// The contract:
//
//   - Admission never blocks. TrySubmit either enqueues the job or fails
//     immediately with ErrQueueFull / ErrPoolClosed, so the caller can
//     apply backpressure (HTTP 429 + Retry-After) instead of stacking
//     unbounded goroutines behind a mutex.
//   - Jobs carry their own context. The pool passes the submit-time ctx
//     through untouched; per-request deadlines and cancellations are the
//     caller's to arrange and reach the job unchanged.
//   - Close drains. After Close returns, every admitted job has finished;
//     queued jobs are executed, not dropped. Jobs admitted before Close
//     therefore behave exactly as if the pool were still open.
//   - A panicking job does not kill its worker: the panic is recovered,
//     counted (runner.pool.panics) and reported to the job's OnPanic hook
//     so the submitter can fail its own waiters.
type Pool struct {
	queue chan poolJob
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool

	submitted *obs.Counter
	rejected  *obs.Counter
	completed *obs.Counter
	panics    *obs.Counter
	queueGau  *obs.Gauge
	waitNS    *obs.Histogram
	jobNS     *obs.Histogram

	log *slog.Logger
}

type poolJob struct {
	ctx     context.Context
	fn      func(ctx context.Context)
	onPanic func(recovered any)
	at      time.Time
}

// ErrQueueFull is returned by TrySubmit when the admission queue is at
// capacity — the caller should shed load (HTTP 429) rather than wait.
var ErrQueueFull = errors.New("runner: admission queue full")

// ErrPoolClosed is returned by TrySubmit after Close started.
var ErrPoolClosed = errors.New("runner: pool closed")

// PoolOptions configures a Pool.
type PoolOptions struct {
	// Workers is the number of executing goroutines (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (jobs admitted but not yet
	// picked up by a worker; default 2×Workers). Depth 0 is valid after
	// defaulting only through the default path; explicit negative values
	// are clamped to the default.
	QueueDepth int
	// Obs, when non-nil, receives pool metrics: runner.pool.submitted /
	// rejected / completed / panics counters, the runner.pool.queue_depth
	// gauge (sampled at every admission and completion), and the
	// runner.pool.queue_wait_ns and runner.pool.job_ns histograms.
	Obs *obs.Registry
	// Logger, when non-nil, receives pool lifecycle records: one per
	// recovered job panic (error level) and one when Close has drained the
	// queue (info level). Nil discards.
	Logger *slog.Logger
}

// NewPool starts the workers and returns the pool.
func NewPool(opts PoolOptions) *Pool {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 2 * opts.Workers
	}
	p := &Pool{
		queue:     make(chan poolJob, opts.QueueDepth),
		submitted: opts.Obs.Counter("runner.pool.submitted"),
		rejected:  opts.Obs.Counter("runner.pool.rejected"),
		completed: opts.Obs.Counter("runner.pool.completed"),
		panics:    opts.Obs.Counter("runner.pool.panics"),
		queueGau:  opts.Obs.Gauge("runner.pool.queue_depth"),
		waitNS:    opts.Obs.Histogram("runner.pool.queue_wait_ns"),
		jobNS:     opts.Obs.Histogram("runner.pool.job_ns"),
		log:       opts.Logger,
	}
	if p.log == nil {
		p.log = slog.New(slog.DiscardHandler)
	}
	timed := opts.Obs != nil
	p.wg.Add(opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		go func() {
			defer p.wg.Done()
			for job := range p.queue {
				p.queueGau.Set(float64(len(p.queue)))
				var start time.Time
				if timed {
					start = time.Now()
					p.waitNS.Observe(start.Sub(job.at).Nanoseconds())
				}
				p.runOne(job)
				if timed {
					p.jobNS.Observe(time.Since(start).Nanoseconds())
				}
				p.completed.Inc()
			}
		}()
	}
	return p
}

// runOne executes one job with panic isolation.
func (p *Pool) runOne(job poolJob) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Inc()
			p.log.Error("pool job panicked", slog.Any("recovered", r))
			if job.onPanic != nil {
				job.onPanic(fmt.Errorf("runner: pool job panicked: %v\n%s", r, trimStack(debug.Stack())))
			}
		}
	}()
	job.fn(job.ctx)
}

// TrySubmit admits fn for execution with ctx, without blocking: it
// returns ErrQueueFull when the admission queue is at capacity and
// ErrPoolClosed after Close. onPanic (optional) is invoked with the
// recovered value if fn panics, so the submitter can unblock anyone
// waiting on fn's result.
func (p *Pool) TrySubmit(ctx context.Context, fn func(ctx context.Context), onPanic func(recovered any)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.rejected.Inc()
		return ErrPoolClosed
	}
	select {
	case p.queue <- poolJob{ctx: ctx, fn: fn, onPanic: onPanic, at: time.Now()}:
		p.submitted.Inc()
		p.queueGau.Set(float64(len(p.queue)))
		return nil
	default:
		p.rejected.Inc()
		return ErrQueueFull
	}
}

// QueueLen reports how many admitted jobs are waiting for a worker.
func (p *Pool) QueueLen() int { return len(p.queue) }

// Cap reports the admission-queue capacity.
func (p *Pool) Cap() int { return cap(p.queue) }

// Close stops admission, drains the queue and waits for every in-flight
// job to finish. It is idempotent. Jobs that should stop early must be
// cancelled through their own submit-time contexts — Close itself never
// cancels work.
func (p *Pool) Close() {
	p.mu.Lock()
	first := !p.closed
	if first {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
	if first {
		p.log.Info("pool drained",
			slog.Int64("completed", p.completed.Value()),
			slog.Int64("panics", p.panics.Value()))
	}
}
