// Package runner is the scenario-execution engine of the experiment
// harness: a worker pool that fans a grid of independent jobs — one
// (track × controller × attack × seed) simulation each — across
// GOMAXPROCS goroutines while keeping the result stream deterministic.
//
// The contract every consumer relies on:
//
//   - Results are index-ordered: results[i] is the output of jobs[i]
//     regardless of the worker count or of the order in which workers
//     happened to finish. A deterministic job function therefore yields
//     byte-identical downstream output for any Workers value, including 1.
//   - A job that panics does not kill the campaign: the panic is
//     recovered and converted into a *JobError carrying the job index and
//     a stack excerpt.
//   - The first failure cancels the run: jobs not yet started are skipped
//     and the pool drains. The returned error is always the failure with
//     the lowest job index, so the reported error is stable across worker
//     counts whenever a single job is at fault.
//   - Cancelling Options.Context stops dispatch; the pool returns a
//     *JobError wrapping the context error.
//
// The pool is deliberately minimal — no shared queues or batching layers;
// dispatch is a single atomic counter, which benchmarks faster than a
// channel feed for the coarse-grained (tens of milliseconds to seconds)
// jobs the harness runs.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"adassure/internal/events"
	"adassure/internal/obs"
)

// Options configures one pool run.
type Options struct {
	// Workers is the goroutine count (default runtime.GOMAXPROCS(0)).
	// Workers=1 reproduces the sequential path exactly.
	Workers int
	// Context cancels the run early when done (default context.Background()).
	Context context.Context
	// OnProgress, when non-nil, is invoked after every job completion with
	// the number of finished jobs and the total. Calls are serialized, so
	// the callback needs no locking of its own, but it must be cheap — it
	// sits on the result path of every worker.
	OnProgress func(done, total int)
	// Obs, when non-nil, receives pool metrics: runner.jobs_completed and
	// runner.jobs_failed counters, a runner.job_ns histogram of per-job
	// wall time, and runner.queue_wait_ns — how long each job sat queued
	// before a worker picked it up (dispatch time minus pool start). The
	// registry is shared safely across workers.
	Obs *obs.Registry
	// Events, when non-nil, receives one wall-clock span per job on track
	// "runner/worker-<w>" — one timeline lane per pool worker, failed jobs
	// flagged with failed=1. The recorder is shared safely across workers;
	// nil adds nothing to the dispatch path.
	Events *events.Recorder
}

func (o *Options) defaults() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
}

// JobError is the failure of one job in the grid.
type JobError struct {
	// Index is the position of the failed job in the input slice.
	Index int
	// Err is the job's own error, the recovered panic, or the context
	// error for jobs skipped after cancellation.
	Err error
	// Panicked marks errors recovered from a panicking job.
	Panicked bool
}

// Error implements error.
func (e *JobError) Error() string {
	if e.Panicked {
		return fmt.Sprintf("runner: job %d panicked: %v", e.Index, e.Err)
	}
	return fmt.Sprintf("runner: job %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// Map executes fn once per job across the worker pool and returns the
// outputs index-ordered. On failure it returns the lowest-indexed
// *JobError together with the partial results (failed or skipped slots
// hold the zero value of O).
func Map[I, O any](opts Options, jobs []I, fn func(ctx context.Context, index int, job I) (O, error)) ([]O, error) {
	return Run(opts, len(jobs), func(ctx context.Context, i int) (O, error) {
		return fn(ctx, i, jobs[i])
	})
}

// Run is the index-only variant of Map: it executes fn for every index in
// [0, n) across the pool. Use it when the job inputs live in closure
// scope rather than a slice.
func Run[O any](opts Options, n int, fn func(ctx context.Context, index int) (O, error)) ([]O, error) {
	opts.defaults()
	results := make([]O, n)
	errs := make([]*JobError, n)
	if n == 0 {
		return results, nil
	}
	workers := opts.Workers
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(opts.Context)
	defer cancel()

	// Pool metrics: handles resolved once; nil registry → nil handles →
	// every record below is a single-branch no-op and the clock is never
	// read.
	var (
		completed = opts.Obs.Counter("runner.jobs_completed")
		failed    = opts.Obs.Counter("runner.jobs_failed")
		jobNS     = opts.Obs.Histogram("runner.job_ns")
		queueNS   = opts.Obs.Histogram("runner.queue_wait_ns")
		poolStart time.Time
	)
	if opts.Obs != nil {
		poolStart = time.Now()
	}

	var (
		next int64      = -1 // atomic dispatch cursor
		done int             // completion count, guarded by mu
		mu   sync.Mutex      // serializes OnProgress and done
		wg   sync.WaitGroup
	)

	runOne := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &JobError{
					Index:    i,
					Err:      fmt.Errorf("%v\n%s", r, trimStack(debug.Stack())),
					Panicked: true,
				}
			}
		}()
		out, err := fn(ctx, i)
		if err != nil {
			return &JobError{Index: i, Err: err}
		}
		results[i] = out
		return nil
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			var workerTrack string
			if opts.Events != nil {
				workerTrack = fmt.Sprintf("runner/worker-%d", w)
			}
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = &JobError{Index: i, Err: err}
					continue
				}
				var jobStart time.Time
				if opts.Obs != nil {
					jobStart = time.Now()
					queueNS.Observe(jobStart.Sub(poolStart).Nanoseconds())
				}
				if opts.Events != nil {
					opts.Events.Begin(events.CatRunner, workerTrack,
						fmt.Sprintf("job %d", i), events.NoSimTime, nil)
				}
				err := runOne(i)
				if opts.Obs != nil {
					jobNS.Observe(time.Since(jobStart).Nanoseconds())
				}
				if opts.Events != nil {
					var attrs map[string]float64
					if err != nil {
						attrs = map[string]float64{"failed": 1}
					}
					opts.Events.End(events.CatRunner, workerTrack,
						fmt.Sprintf("job %d", i), events.NoSimTime, attrs)
				}
				if err != nil {
					failed.Inc()
					errs[i] = err.(*JobError)
					cancel()
					continue
				}
				completed.Inc()
				mu.Lock()
				done++
				if opts.OnProgress != nil {
					opts.OnProgress(done, n)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	for _, e := range errs {
		if e != nil {
			return results, e
		}
	}
	return results, nil
}

// trimStack cuts a debug.Stack dump down to a handful of frames so a
// JobError stays readable inside a rendered campaign report.
func trimStack(stack []byte) []byte {
	const maxLen = 1024
	if len(stack) > maxLen {
		return append(stack[:maxLen:maxLen], []byte("...")...)
	}
	return stack
}
