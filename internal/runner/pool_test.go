package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adassure/internal/obs"
)

// TestPoolExecutesAllAdmitted: every successfully admitted job runs
// exactly once, and Close drains the queue before returning.
func TestPoolExecutesAllAdmitted(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 4, QueueDepth: 64})
	var ran atomic.Int64
	admitted := 0
	for i := 0; i < 50; i++ {
		err := p.TrySubmit(context.Background(), func(context.Context) {
			ran.Add(1)
		}, nil)
		if err == nil {
			admitted++
		} else if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	p.Close()
	if got := ran.Load(); got != int64(admitted) {
		t.Fatalf("admitted %d jobs, ran %d", admitted, got)
	}
}

// TestPoolQueueFull: with workers wedged and the queue at capacity,
// TrySubmit sheds load immediately instead of blocking.
func TestPoolQueueFull(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 2, Obs: reg})
	release := make(chan struct{})
	var wedge sync.WaitGroup
	wedge.Add(1)
	// Wedge the single worker.
	if err := p.TrySubmit(context.Background(), func(context.Context) {
		wedge.Done()
		<-release
	}, nil); err != nil {
		t.Fatalf("wedge submit: %v", err)
	}
	wedge.Wait() // worker is now busy; the queue is empty
	for i := 0; i < 2; i++ {
		if err := p.TrySubmit(context.Background(), func(context.Context) { <-release }, nil); err != nil {
			t.Fatalf("fill submit %d: %v", i, err)
		}
	}
	start := time.Now()
	err := p.TrySubmit(context.Background(), func(context.Context) {}, nil)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("TrySubmit blocked instead of failing fast")
	}
	if got := reg.Counter("runner.pool.rejected").Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	close(release)
	p.Close()
	if got := reg.Counter("runner.pool.completed").Value(); got != 3 {
		t.Fatalf("completed counter = %d, want 3", got)
	}
}

// TestPoolClosedRejects: admission after Close fails with ErrPoolClosed.
func TestPoolClosedRejects(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 1})
	p.Close()
	if err := p.TrySubmit(context.Background(), func(context.Context) {}, nil); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("want ErrPoolClosed, got %v", err)
	}
	p.Close() // idempotent
}

// TestPoolPanicIsolation: a panicking job is recovered, reported through
// OnPanic, counted, and the worker survives to run later jobs.
func TestPoolPanicIsolation(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 8, Obs: reg})
	panicked := make(chan any, 1)
	if err := p.TrySubmit(context.Background(), func(context.Context) {
		panic("boom")
	}, func(r any) { panicked <- r }); err != nil {
		t.Fatalf("submit: %v", err)
	}
	var ran atomic.Bool
	if err := p.TrySubmit(context.Background(), func(context.Context) { ran.Store(true) }, nil); err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	p.Close()
	select {
	case r := <-panicked:
		if r == nil {
			t.Fatal("OnPanic got nil")
		}
	default:
		t.Fatal("OnPanic was not invoked")
	}
	if !ran.Load() {
		t.Fatal("worker died after panic: follow-up job never ran")
	}
	if got := reg.Counter("runner.pool.panics").Value(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
}

// TestPoolJobContext: the submit-time context reaches the job unchanged,
// so per-request deadlines propagate.
func TestPoolJobContext(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 1})
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sawCancelled := make(chan bool, 1)
	if err := p.TrySubmit(ctx, func(ctx context.Context) {
		sawCancelled <- ctx.Err() != nil
	}, nil); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if !<-sawCancelled {
		t.Fatal("job context lost its cancellation")
	}
}

// TestPoolConcurrentSubmitClose hammers admission from many goroutines
// racing Close — run under -race this is the data-race gate for the
// serving path.
func TestPoolConcurrentSubmitClose(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 4, QueueDepth: 16})
	var ran, admitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := p.TrySubmit(context.Background(), func(context.Context) { ran.Add(1) }, nil); err == nil {
					admitted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	p.Close()
	if ran.Load() != admitted.Load() {
		t.Fatalf("admitted %d, ran %d", admitted.Load(), ran.Load())
	}
}
