package diagnosis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"adassure/internal/core"
)

// Segment is one temporally-coherent group of violations with its own
// diagnosis — the unit of analysis for drives containing multiple
// incidents.
type Segment struct {
	// Start and End bound the segment (first raise to last episode end,
	// or last raise when the final episode is still open).
	Start, End float64
	// Violations are the episodes assigned to the segment.
	Violations []core.Violation
	// Hypotheses is the ranked diagnosis of this segment alone.
	Hypotheses []Hypothesis
}

// SegmentOptions tunes the segmentation.
type SegmentOptions struct {
	// QuietGap is the minimum violation-free time that separates two
	// incidents (default 5 s).
	QuietGap float64
}

// Segmentize splits a violation record into incident segments separated by
// quiet gaps and diagnoses each — the multi-incident extension of
// Diagnose. Violations must be in raise order (as the Monitor records
// them). An empty record yields no segments.
func Segmentize(vs []core.Violation, opts SegmentOptions) []Segment {
	if opts.QuietGap <= 0 {
		opts.QuietGap = 5
	}
	if len(vs) == 0 {
		return nil
	}
	var segs []Segment
	cur := Segment{Start: vs[0].T, End: segEnd(vs[0])}
	cur.Violations = append(cur.Violations, vs[0])
	for _, v := range vs[1:] {
		if v.T-cur.End > opts.QuietGap {
			segs = append(segs, cur)
			cur = Segment{Start: v.T, End: segEnd(v)}
			cur.Violations = []core.Violation{v}
			continue
		}
		cur.Violations = append(cur.Violations, v)
		if e := segEnd(v); e > cur.End {
			cur.End = e
		}
	}
	segs = append(segs, cur)
	for i := range segs {
		segs[i].Hypotheses = Diagnose(segs[i].Violations)
	}
	return segs
}

// segEnd returns when a violation episode stopped contributing activity:
// its close time when known, otherwise the raise time.
func segEnd(v core.Violation) float64 {
	if v.Duration > 0 && !math.IsInf(v.Duration, 1) {
		return v.T + v.Duration
	}
	return v.T
}

// SegmentReport renders a multi-incident debugging report.
func SegmentReport(vs []core.Violation, opts SegmentOptions) string {
	segs := Segmentize(vs, opts)
	var b strings.Builder
	b.WriteString("ADAssure multi-incident report\n==============================\n")
	if len(segs) == 0 {
		b.WriteString("No violations recorded: nominal run.\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%d incident segment(s) found.\n", len(segs))
	for i, s := range segs {
		fmt.Fprintf(&b, "\nincident %d: t=%.2f–%.2f s, %d episodes\n", i+1, s.Start, s.End, len(s.Violations))
		ids := map[string]int{}
		for _, v := range s.Violations {
			ids[v.AssertionID]++
		}
		fmt.Fprintf(&b, "  assertions: %s\n", compactCounts(ids))
		top := s.Hypotheses[0]
		fmt.Fprintf(&b, "  diagnosis: %s (%.0f%%) — %s\n", top.Cause, top.Confidence*100, top.Rationale)
	}
	return b.String()
}

func compactCounts(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s×%d", k, m[k])
	}
	return strings.Join(parts, " ")
}
