package diagnosis

import (
	"math/rand"
	"reflect"
	"testing"

	"adassure/internal/core"
)

// TestRunningSignatureMatchesExtract is the incremental-diagnosis
// equivalence property: for randomized episode streams (random assertion
// IDs, strictly increasing raise times, arbitrary open/close interleaving,
// some episodes left open), feeding the transitions through a
// RunningSignature yields exactly the Signature Extract computes from the
// equivalent batch record — and therefore the same ranked hypotheses.
func TestRunningSignatureMatchesExtract(t *testing.T) {
	ids := []string{"A1", "A2", "A3", "A4", "A5", "A9", "A10", "A13", "A14"}
	rng := rand.New(rand.NewSource(42))

	for trial := 0; trial < 200; trial++ {
		run := NewRunningSignature()
		var batch []core.Violation
		type openEp struct{ idx int }
		var open []openEp

		tNow := 0.0
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			tNow += 0.05 + rng.Float64()*3
			switch {
			case len(open) > 0 && rng.Float64() < 0.4:
				// Close a random open episode.
				k := rng.Intn(len(open))
				ep := open[k]
				open = append(open[:k], open[k+1:]...)
				d := tNow - batch[ep.idx].T
				batch[ep.idx].Duration = d
				run.CloseEpisode(batch[ep.idx].AssertionID, d)
			default:
				// Raise a new episode.
				v := core.Violation{
					AssertionID: ids[rng.Intn(len(ids))],
					T:           tNow,
					FirstBreach: tNow - 0.1,
				}
				batch = append(batch, v)
				run.Observe(v) // Duration zero: open, exactly as raised
				open = append(open, openEp{idx: len(batch) - 1})
			}
		}

		want := Extract(batch)
		got := run.Signature()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: incremental signature diverged\n got: %+v\nwant: %+v", trial, got, want)
		}
		if hg, hw := run.Diagnose(), Diagnose(batch); !reflect.DeepEqual(hg, hw) {
			t.Fatalf("trial %d: incremental diagnosis diverged\n got: %+v\nwant: %+v", trial, hg, hw)
		}
	}
}

// TestRunningSignatureOpenEpisodes pins the open-episode bookkeeping:
// open episodes count as +Inf max duration (Extract's Duration == 0
// convention), closing them replaces the Inf with the real duration, and
// unmatched closes are ignored.
func TestRunningSignatureOpenEpisodes(t *testing.T) {
	run := NewRunningSignature()
	run.Observe(core.Violation{AssertionID: "A5", T: 10})
	if got := run.OpenEpisodes(); got != 1 {
		t.Fatalf("open episodes = %d, want 1", got)
	}
	if sig := run.Signature(); !isInf(sig.MaxDuration["A5"]) {
		t.Fatalf("open episode max duration = %v, want +Inf", sig.MaxDuration["A5"])
	}
	run.CloseEpisode("A5", 7.5)
	if got := run.OpenEpisodes(); got != 0 {
		t.Fatalf("open episodes after close = %d, want 0", got)
	}
	if sig := run.Signature(); sig.MaxDuration["A5"] != 7.5 {
		t.Fatalf("closed max duration = %v, want 7.5", sig.MaxDuration["A5"])
	}
	run.CloseEpisode("A5", 99) // unmatched: no open episode left
	if got := run.OpenEpisodes(); got != 0 {
		t.Fatalf("open episodes after unmatched close = %d, want 0", got)
	}
	if run.Total() != 1 {
		t.Fatalf("total = %d, want 1", run.Total())
	}
}

// TestDiagnoseSignatureEmpty pins the no-violation path both entry points
// share: a single certain CauseNone.
func TestDiagnoseSignatureEmpty(t *testing.T) {
	hyps := NewRunningSignature().Diagnose()
	if len(hyps) != 1 || hyps[0].Cause != CauseNone || hyps[0].Confidence != 1 {
		t.Fatalf("empty diagnosis = %+v, want single CauseNone@1", hyps)
	}
	if want := Diagnose(nil); !reflect.DeepEqual(hyps, want) {
		t.Fatalf("empty incremental diagnosis %+v != batch %+v", hyps, want)
	}
}

func isInf(v float64) bool { return v > 1e308 && v+1 == v }
