package diagnosis

import (
	"testing"

	"adassure/internal/attacks"
	"adassure/internal/core"
	"adassure/internal/sim"
	"adassure/internal/track"
)

// TestDiagnosisAccuracyEndToEnd scores the diagnosis engine against
// simulated attack campaigns with known ground truth — the integration-level
// acceptance test behind experiment T4.
func TestDiagnosisAccuracyEndToEnd(t *testing.T) {
	tr, err := track.UrbanLoop(6)
	if err != nil {
		t.Fatal(err)
	}
	top1, top2, total := 0, 0, 0
	for _, class := range attacks.StandardClasses() {
		for seed := int64(1); seed <= 3; seed++ {
			camp, err := attacks.Standard(class, attacks.Window{Start: 20, End: 50}, seed)
			if err != nil {
				t.Fatal(err)
			}
			mon := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true})
			if _, err := sim.Run(sim.Config{
				Track: tr, Controller: "pure-pursuit", Seed: seed, Duration: 70,
				Campaign: camp, Monitor: mon, DisableTrace: true,
			}); err != nil {
				t.Fatal(err)
			}
			hyps := Diagnose(mon.Violations())
			total++
			if string(hyps[0].Cause) == string(class) {
				top1++
				top2++
			} else if len(hyps) > 1 && string(hyps[1].Cause) == string(class) {
				top2++
				t.Logf("%s seed=%d diagnosed as %s (truth at rank 2)", class, seed, hyps[0].Cause)
			} else {
				t.Logf("%s seed=%d diagnosed as %s (truth below rank 2)", class, seed, hyps[0].Cause)
			}
		}
	}
	t.Logf("diagnosis accuracy: top-1 %d/%d, top-2 %d/%d", top1, total, top2, total)
	if float64(top1)/float64(total) < 0.8 {
		t.Errorf("top-1 accuracy %d/%d below 80%%", top1, total)
	}
	if float64(top2)/float64(total) < 0.95 {
		t.Errorf("top-2 accuracy %d/%d below 95%%", top2, total)
	}
}

// TestCleanRunDiagnosesNone confirms that nominal runs produce the
// CauseNone diagnosis — the methodology's false-alarm guard.
func TestCleanRunDiagnosesNone(t *testing.T) {
	tr, err := track.UrbanLoop(6)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		mon := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true})
		if _, err := sim.Run(sim.Config{
			Track: tr, Controller: "lqr-mpc", Seed: seed, Duration: 60,
			Monitor: mon, DisableTrace: true,
		}); err != nil {
			t.Fatal(err)
		}
		hyps := Diagnose(mon.Violations())
		if hyps[0].Cause != CauseNone {
			t.Errorf("seed %d: clean run diagnosed as %s", seed, hyps[0].Cause)
		}
	}
}
