// Package diagnosis is the second half of the ADAssure methodology: it maps
// the violation record produced by the core monitor to a ranked list of
// root-cause hypotheses (attack classes and controller weaknesses), each
// with a human-readable rationale. The mapping encodes the catalog's
// designed detection semantics — which assertions fire first, which co-fire
// and which stay silent for each cause — as a weighted rule table.
package diagnosis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"adassure/internal/core"
	"adassure/internal/events"
)

// Cause identifies a diagnosed root cause. The attack causes match the
// attack-injection classes so experiments can score diagnosis accuracy
// against ground truth.
type Cause string

// Diagnosable causes.
const (
	CauseNone           Cause = "none"
	CauseStepSpoof      Cause = "gnss-step-spoof"
	CauseDriftSpoof     Cause = "gnss-drift-spoof"
	CauseReplay         Cause = "gnss-replay"
	CauseFreeze         Cause = "gnss-freeze"
	CauseDelay          Cause = "gnss-delay"
	CauseDropout        Cause = "gnss-dropout"
	CauseNoiseInflation Cause = "gnss-noise-inflation"
	CauseMeander        Cause = "gnss-meander"
	CauseIMUHeadingBias Cause = "imu-heading-bias"
	CauseOdomScale      Cause = "odom-scale"
	// A quantized/truncated position feed (sub-noise or coarse grid).
	CauseQuantizedFeed Cause = "gnss-quantized-feed"
	// Actuation-path faults.
	CauseStuckSteer  Cause = "actuator-stuck-steer"
	CauseSteerOffset Cause = "actuator-steer-offset"
	// Controller weaknesses (no attack present).
	CauseCtrlOscillation Cause = "controller-oscillation"
	CauseCtrlTracking    Cause = "controller-tracking"
)

// Signature is the feature vector extracted from a violation record.
type Signature struct {
	// Episodes counts violation episodes per assertion ID.
	Episodes map[string]int
	// FirstID is the assertion that raised the earliest violation.
	FirstID string
	// FirstT is the time of the earliest violation.
	FirstT float64
	// Order lists assertion IDs by time of their first violation.
	Order []string
	// Total is the total episode count.
	Total int
	// MaxDuration is the longest episode duration per assertion ID.
	// Episodes still open at end of run count as +Inf.
	MaxDuration map[string]float64
}

// Extract builds a Signature from a violation record.
func Extract(vs []core.Violation) Signature {
	sig := Signature{Episodes: map[string]int{}, MaxDuration: map[string]float64{}, FirstT: math.Inf(1)}
	first := map[string]float64{}
	for _, v := range vs {
		sig.Episodes[v.AssertionID]++
		sig.Total++
		d := v.Duration
		if d == 0 {
			d = math.Inf(1) // episode still open at end of run
		}
		if d > sig.MaxDuration[v.AssertionID] {
			sig.MaxDuration[v.AssertionID] = d
		}
		if t, ok := first[v.AssertionID]; !ok || v.T < t {
			first[v.AssertionID] = v.T
		}
		if v.T < sig.FirstT {
			sig.FirstT = v.T
			sig.FirstID = v.AssertionID
		}
	}
	for id := range first {
		sig.Order = append(sig.Order, id)
	}
	sort.Slice(sig.Order, func(i, j int) bool { return first[sig.Order[i]] < first[sig.Order[j]] })
	if sig.Total == 0 {
		sig.FirstT = 0
	}
	return sig
}

// Hypothesis is one ranked root-cause candidate.
type Hypothesis struct {
	Cause      Cause
	Confidence float64 // normalised to [0, 1] across the returned list
	Rationale  string
}

// rule describes the expected violation signature of one cause.
type rule struct {
	cause Cause
	// firstAnyOf: the earliest violation should come from one of these
	// (strong evidence, weighted heavily).
	firstAnyOf []string
	// present assertions add their weight when fired.
	present map[string]float64
	// absent assertions subtract their weight when fired.
	absent map[string]float64
	// minEpisodes adds evidence when an assertion's episode count reaches
	// the threshold (captures "repeated episodes" signatures).
	minEpisodes map[string]int
	// maxEpisodes subtracts evidence when exceeded.
	maxEpisodes map[string]int
	// minDuration adds evidence when the assertion's longest episode
	// reaches the threshold (and subtracts it when the assertion fired but
	// only briefly); maxDuration is the converse.
	minDuration map[string]float64
	maxDuration map[string]float64
	rationale   string
}

// ruleTable encodes the catalog's designed detection semantics. The
// comments state the physical reasoning; the weights express how
// distinctive each piece of evidence is.
var ruleTable = []rule{
	{
		cause:      CauseStepSpoof,
		firstAnyOf: []string{"A1"},
		present:    map[string]float64{"A1": 2, "A10": 1.5, "A2": 1, "A13": 0.5, "A4": 0.5},
		absent:     map[string]float64{"A5": 2, "A9": 1.5},
		maxEpisodes: map[string]int{
			"A1": 4, // a step is one or two discrete jumps, not a stream
		},
		rationale: "instant kinematically-impossible jump (A1) with innovation spike (A10) and believed lane departure (A2), without staleness or progress regression",
	},
	{
		cause:      CauseDriftSpoof,
		firstAnyOf: []string{"A13", "A12", "A2"},
		present:    map[string]float64{"A13": 2.5, "A2": 1, "A12": 1},
		absent:     map[string]float64{"A5": 2, "A9": 1.5, "A1": 0.5},
		rationale:  "fused heading diverges slowly from the inertial reference (A13) long before any jump detector reacts — the gradual-drift signature",
	},
	{
		cause:      CauseReplay,
		firstAnyOf: []string{"A1", "A9"},
		present:    map[string]float64{"A9": 2.5, "A1": 1.5, "A10": 1, "A4": 0.5},
		absent:     map[string]float64{"A5": 2},
		rationale:  "route progress regresses (A9): the position stream revisits already-driven ground, with a jump at splice points (A1)",
	},
	{
		cause:      CauseFreeze,
		firstAnyOf: []string{"A10", "A4"},
		present:    map[string]float64{"A4": 2, "A10": 2, "A12": 0.5},
		absent:     map[string]float64{"A1": 1.5, "A5": 2, "A9": 1, "A11": 0.5},
		maxEpisodes: map[string]int{
			"A10": 4, // one sustained inconsistency, not repeated tugging
		},
		rationale: "fixes keep arriving but stop moving: GNSS-derived speed collapses against odometry (A4) while the filter's innovation grows in one sustained episode (A10), with no jump and no staleness",
	},
	{
		cause:       CauseDelay,
		firstAnyOf:  []string{"A5"},
		present:     map[string]float64{"A5": 2, "A9": 1.5, "A10": 1, "A13": 0.5},
		absent:      map[string]float64{},
		maxDuration: map[string]float64{"A5": 5},
		minEpisodes: map[string]int{"A10": 4},
		rationale:   "brief delivery gap at onset (A5) followed by stale-content artifacts — lagged positions keep arriving and keep disagreeing with the filter (many A10) and regress progress (A9)",
	},
	{
		cause:       CauseDropout,
		firstAnyOf:  []string{"A5"},
		present:     map[string]float64{"A5": 3},
		absent:      map[string]float64{"A9": 1.5, "A10": 1, "A1": 0.5, "A2": 1},
		minDuration: map[string]float64{"A5": 5},
		rationale:   "the channel goes silent and stays silent (one long A5 episode) while almost nothing else fires until delivery resumes",
	},
	{
		cause:      CauseNoiseInflation,
		firstAnyOf: []string{"A1", "A10"},
		present:    map[string]float64{"A1": 1.5, "A10": 1.5, "A4": 1},
		absent:     map[string]float64{"A5": 2, "A9": 1},
		minEpisodes: map[string]int{
			"A1": 4, // scattered large errors trip the jump detector repeatedly
		},
		rationale: "repeated, uncorrelated jump and innovation episodes (many A1/A10) — scatter, not a coherent trajectory manipulation",
	},
	{
		cause:      CauseMeander,
		firstAnyOf: []string{"A10", "A1", "A2"},
		present:    map[string]float64{"A10": 1.5, "A2": 1.5, "A7": 1, "A13": 1, "A1": 0.5},
		absent:     map[string]float64{"A5": 2, "A9": 1},
		minEpisodes: map[string]int{
			"A10": 5, // each oscillation period re-trips the innovation gate
			"A13": 3, // and re-drags the fused heading
		},
		maxEpisodes: map[string]int{
			"A1": 6,
		},
		rationale: "periodic lane-bound and innovation episodes with lateral-acceleration spikes — an oscillating position offset steering the controller",
	},
	{
		cause:      CauseIMUHeadingBias,
		firstAnyOf: []string{"A13", "A3"},
		present:    map[string]float64{"A13": 2, "A3": 2},
		absent:     map[string]float64{"A1": 1.5, "A10": 1.5, "A5": 2, "A4": 1, "A2": 0.5},
		rationale:  "heading references disagree (A13/A3) while every position-channel check stays quiet — the fault is in the heading channel itself",
	},
	{
		cause:      CauseOdomScale,
		firstAnyOf: []string{"A4"},
		present:    map[string]float64{"A4": 2.5, "A10": 1},
		absent:     map[string]float64{"A1": 1.5, "A5": 2, "A13": 1, "A3": 1, "A2": 0.5, "A12": 1},
		minEpisodes: map[string]int{
			"A10": 5, // the biased speed channel keeps tugging the filter
		},
		rationale: "speed references disagree (A4) and the biased channel repeatedly tugs the filter (many A10) while position, heading and lane checks stay quiet — a wheel-speed scaling fault",
	},
	{
		cause:      CauseQuantizedFeed,
		firstAnyOf: []string{"A15"},
		present:    map[string]float64{"A15": 3.5},
		absent:     map[string]float64{"A5": 2, "A9": 1, "A13": 1},
		rationale:  "GNSS position deltas land on an exact spatial lattice (A15) — a quantized or truncated fixed-point position feed upstream of fusion",
	},
	{
		cause:      CauseStuckSteer,
		firstAnyOf: []string{"A14"},
		present:    map[string]float64{"A14": 2.5, "A2": 1.5, "A12": 1, "A6": 0.5},
		absent:     map[string]float64{"A1": 1.5, "A10": 1.5, "A5": 2, "A4": 1, "A13": 1, "A3": 1},
		minEpisodes: map[string]int{
			"A14": 1, // the actuation-response residual is mandatory
			"A2":  1, // and the un-steered vehicle actually departs the lane
		},
		rationale: "the vehicle's yaw response stops following the steering command (A14) and it physically departs the lane (A2) while every sensor cross-check agrees — the actuation path is latched",
	},
	{
		cause:      CauseSteerOffset,
		firstAnyOf: []string{"A14"},
		present:    map[string]float64{"A14": 3.5},
		absent:     map[string]float64{"A1": 1.5, "A10": 1.5, "A5": 2, "A4": 1, "A13": 1, "A3": 1, "A2": 1.5, "A12": 1.5},
		rationale:  "a persistent bias between commanded and measured yaw (A14) that the controller silently compensates — tracking stays fine, so the fault is a constant actuation offset",
	},
	{
		cause:      CauseCtrlOscillation,
		firstAnyOf: []string{"A11", "A7"},
		present:    map[string]float64{"A11": 2.5, "A8": 0.5, "A7": 1},
		absent:     map[string]float64{"A1": 2, "A5": 2, "A10": 1.5, "A13": 1.5, "A4": 1, "A14": 1},
		rationale:  "steering oscillation or excess lateral acceleration (A11/A7) with clean sensor-consistency checks — a controller tuning weakness, not an attack",
	},
	{
		cause:      CauseCtrlTracking,
		firstAnyOf: []string{"A2", "A6", "A12"},
		present:    map[string]float64{"A2": 2, "A6": 1, "A12": 1},
		absent:     map[string]float64{"A1": 2, "A5": 2, "A10": 1.5, "A13": 1.5, "A4": 1, "A3": 1, "A14": 1.5},
		rationale:  "lane-keeping bound exceeded (A2) while all sensor cross-checks agree — the controller itself cannot hold the path",
	},
}

// Diagnose ranks root-cause hypotheses for a violation record. An empty
// record yields a single high-confidence CauseNone.
func Diagnose(vs []core.Violation) []Hypothesis {
	return DiagnoseSignature(Extract(vs))
}

// DiagnoseSignature ranks root-cause hypotheses for an already-extracted
// signature. Diagnose is Extract + DiagnoseSignature; the streaming
// monitor calls this directly with an incrementally-maintained signature
// (see RunningSignature) so rolling diagnosis over an unbounded stream
// needs no replay of the violation record.
func DiagnoseSignature(sig Signature) []Hypothesis {
	if sig.Total == 0 {
		return []Hypothesis{{Cause: CauseNone, Confidence: 1, Rationale: "no assertion violations recorded"}}
	}
	type scored struct {
		h Hypothesis
		s float64
	}
	var out []scored
	for _, r := range ruleTable {
		s := r.score(sig)
		out = append(out, scored{h: Hypothesis{Cause: r.cause, Rationale: r.rationale}, s: s})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].s > out[j].s })
	// Softmax-style normalisation over positive part for readable
	// confidences.
	var sum float64
	for _, c := range out {
		if c.s > 0 {
			sum += c.s
		}
	}
	hyps := make([]Hypothesis, 0, len(out))
	for _, c := range out {
		conf := 0.0
		if sum > 0 && c.s > 0 {
			conf = c.s / sum
		}
		h := c.h
		h.Confidence = conf
		hyps = append(hyps, h)
	}
	return hyps
}

func (r rule) score(sig Signature) float64 {
	var s float64
	for _, id := range r.firstAnyOf {
		if sig.FirstID == id {
			s += 3
			break
		}
	}
	for id, w := range r.present {
		if sig.Episodes[id] > 0 {
			s += w
		}
	}
	for id, w := range r.absent {
		if sig.Episodes[id] > 0 {
			s -= w
		}
	}
	for id, n := range r.minEpisodes {
		if sig.Episodes[id] >= n {
			s += 1
		} else {
			s -= 1
		}
	}
	for id, n := range r.maxEpisodes {
		if sig.Episodes[id] > n {
			s -= 1.5
		}
	}
	for id, d := range r.minDuration {
		if sig.Episodes[id] == 0 {
			continue
		}
		if sig.MaxDuration[id] >= d {
			s += 1.5
		} else {
			s -= 1.5
		}
	}
	for id, d := range r.maxDuration {
		if sig.Episodes[id] == 0 {
			continue
		}
		if sig.MaxDuration[id] <= d {
			s += 1.5
		} else {
			s -= 1.5
		}
	}
	return s
}

// RecordHypotheses emits the top-ranked hypotheses onto an event
// timeline as instants at time t on track "<scope>diagnosis" — one per
// hypothesis, carrying its rank and confidence — so the diagnosis sits on
// the same timeline as the violations it explains. A nil recorder is a
// no-op.
func RecordHypotheses(rec *events.Recorder, scope string, t float64, hyps []Hypothesis, topN int) {
	if rec == nil || len(hyps) == 0 {
		return
	}
	if topN <= 0 || topN > len(hyps) {
		topN = len(hyps)
	}
	for i, h := range hyps[:topN] {
		rec.Instant(events.CatDiagnosis, scope+"diagnosis", string(h.Cause), t,
			map[string]float64{"rank": float64(i + 1), "confidence": h.Confidence})
	}
}

// Report renders a human-readable debugging report for a violation record:
// the violation timeline, the extracted signature and the ranked causes.
func Report(vs []core.Violation, topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ADAssure debugging report\n=========================\n")
	if len(vs) == 0 {
		b.WriteString("No violations recorded: nominal run.\n")
		return b.String()
	}
	fmt.Fprintf(&b, "\nViolation timeline (%d episodes):\n", len(vs))
	shown := vs
	const maxShown = 20
	if len(shown) > maxShown {
		shown = shown[:maxShown]
	}
	for _, v := range shown {
		fmt.Fprintf(&b, "  t=%7.2fs  %-4s %-24s [%s] %s\n", v.T, v.AssertionID, v.Name, v.Severity, v.Message)
	}
	if len(vs) > maxShown {
		fmt.Fprintf(&b, "  … %d more\n", len(vs)-maxShown)
	}
	sig := Extract(vs)
	fmt.Fprintf(&b, "\nSignature: first=%s at t=%.2fs, order=%s\n", sig.FirstID, sig.FirstT, strings.Join(sig.Order, "→"))

	hyps := Diagnose(vs)
	if topN <= 0 || topN > len(hyps) {
		topN = len(hyps)
	}
	fmt.Fprintf(&b, "\nRanked root-cause hypotheses:\n")
	for i, h := range hyps[:topN] {
		fmt.Fprintf(&b, "  %d. %-24s %5.1f%%  %s\n", i+1, h.Cause, h.Confidence*100, h.Rationale)
	}
	return b.String()
}
