package diagnosis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"adassure/internal/core"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden from the current output")

// goldenRecords are fixed synthetic violation records with recognisable
// attack signatures, so the full Report rendering — timeline, signature
// line, ranked hypotheses with confidences and rationales — is locked
// byte-for-byte. The records are hand-written rather than simulated so
// this suite pins the *renderer and ranking*, independent of simulator
// drift (the harness golden suite covers the end-to-end path).
func goldenRecords() map[string][]core.Violation {
	v := func(id, name string, sev core.Severity, t, breach, dur float64, msg string) core.Violation {
		return core.Violation{
			AssertionID: id, Name: name, Severity: sev,
			T: t, FirstBreach: breach, Duration: dur, Message: msg,
		}
	}
	return map[string][]core.Violation{
		"empty": nil,
		"drift_spoof": {
			v("A13", "heading-reference", core.Critical, 26.50, 26.35, 15.65,
				"A13: EMA|fused heading - IMU heading| <= 0.050 rad (4 of last 5 frames failing)"),
			v("A12", "safety-envelope", core.Critical, 27.80, 27.70, 11.35,
				"A12: |true CTE| <= 3.00 m (2 of last 3 frames failing)"),
			v("A2", "cross-track-bound", core.Critical, 50.20, 50.05, 0,
				"A2: |estimated CTE| <= 1.50 m (3 of last 4 frames failing)"),
		},
		"step_spoof": {
			v("A1", "position-jump", core.Critical, 20.05, 20.05, 0.10,
				"A1: GNSS jump implies 42.0 m/s >> speed envelope"),
			v("A10", "innovation-gate", core.Warning, 20.10, 20.05, 1.05,
				"A10: NIS 51.2 > gate 9.21 (3 of last 4 frames failing)"),
			v("A2", "cross-track-bound", core.Critical, 20.40, 20.25, 5.00,
				"A2: |estimated CTE| <= 1.50 m (3 of last 4 frames failing)"),
		},
		"sensor_freeze": {
			v("A5", "gnss-freshness", core.Warning, 31.00, 30.55, 0,
				"A5: GNSS age 0.55 s > 0.50 s"),
			v("A6", "stale-repeat", core.Warning, 31.50, 31.00, 0,
				"A6: identical fix repeated 10 times"),
		},
	}
}

// TestGoldenReport locks diagnosis.Report's full rendering to committed
// snapshots. Regenerate after an intentional change with:
//
//	go test ./internal/diagnosis -run TestGoldenReport -update
func TestGoldenReport(t *testing.T) {
	for name, vs := range goldenRecords() {
		t.Run(name, func(t *testing.T) {
			got := Report(vs, 3)
			path := filepath.Join("testdata", "golden", fmt.Sprintf("report_%s.txt", name))
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("report drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
