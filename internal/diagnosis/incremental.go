package diagnosis

import (
	"math"
	"sort"

	"adassure/internal/core"
)

// RunningSignature maintains a violation signature incrementally, one
// episode transition at a time, in O(registered assertions) memory — the
// piece that lets the streaming monitor (internal/stream) run rolling
// diagnosis over an unbounded frame stream without replaying the
// violation record.
//
// The contract, enforced by TestRunningSignatureMatchesExtract and the
// stream package's differential suite: after observing the same episode
// transitions the batch monitor produced, Signature() is semantically
// identical to Extract over the batch record — open episodes count their
// longest duration as +Inf exactly like Extract treats Duration == 0 —
// and Diagnose() therefore ranks the same hypotheses with the same
// confidences.
type RunningSignature struct {
	episodes  map[string]int
	closedMax map[string]float64 // longest closed episode per assertion
	open      map[string]int     // currently-open episode count per assertion
	firstSeen map[string]float64 // time of each assertion's first violation
	order     []string           // assertion IDs in first-violation order
	firstID   string
	firstT    float64
	total     int
}

// NewRunningSignature builds an empty running signature.
func NewRunningSignature() *RunningSignature {
	return &RunningSignature{
		episodes:  map[string]int{},
		closedMax: map[string]float64{},
		open:      map[string]int{},
		firstSeen: map[string]float64{},
		firstT:    math.Inf(1),
	}
}

// Observe records one raised violation. Call it at episode open with the
// violation exactly as the monitor recorded it (Duration zero while the
// episode is open; a violation that already carries a final duration —
// e.g. when replaying a finished batch record — is folded in as closed).
func (r *RunningSignature) Observe(v core.Violation) {
	r.episodes[v.AssertionID]++
	r.total++
	if v.Duration > 0 {
		if v.Duration > r.closedMax[v.AssertionID] {
			r.closedMax[v.AssertionID] = v.Duration
		}
	} else {
		r.open[v.AssertionID]++
	}
	if t, ok := r.firstSeen[v.AssertionID]; !ok || v.T < t {
		if !ok {
			r.order = append(r.order, v.AssertionID)
		}
		r.firstSeen[v.AssertionID] = v.T
	}
	if v.T < r.firstT {
		r.firstT = v.T
		r.firstID = v.AssertionID
	}
}

// CloseEpisode records that one of the assertion's open episodes finished
// with the given duration. Unmatched closes (no open episode) are ignored
// rather than corrupting the open count.
func (r *RunningSignature) CloseEpisode(assertionID string, duration float64) {
	if r.open[assertionID] == 0 {
		return
	}
	r.open[assertionID]--
	if duration > r.closedMax[assertionID] {
		r.closedMax[assertionID] = duration
	}
}

// Total returns the number of episodes observed so far.
func (r *RunningSignature) Total() int { return r.total }

// OpenEpisodes returns how many observed episodes are still open.
func (r *RunningSignature) OpenEpisodes() int {
	n := 0
	for _, c := range r.open {
		n += c
	}
	return n
}

// Signature materialises the current state as a batch-equivalent
// Signature value. Assertions with an open episode report a MaxDuration
// of +Inf, mirroring Extract's treatment of a zero recorded duration.
func (r *RunningSignature) Signature() Signature {
	sig := Signature{
		Episodes:    make(map[string]int, len(r.episodes)),
		MaxDuration: make(map[string]float64, len(r.episodes)),
		FirstID:     r.firstID,
		FirstT:      r.firstT,
		Total:       r.total,
	}
	for id, n := range r.episodes {
		sig.Episodes[id] = n
		d := r.closedMax[id]
		if r.open[id] > 0 {
			d = math.Inf(1)
		}
		sig.MaxDuration[id] = d
	}
	sig.Order = append(sig.Order, r.order...)
	sort.SliceStable(sig.Order, func(i, j int) bool {
		return r.firstSeen[sig.Order[i]] < r.firstSeen[sig.Order[j]]
	})
	if sig.Total == 0 {
		sig.FirstT = 0
	}
	return sig
}

// Diagnose ranks root-cause hypotheses for the current signature — the
// rolling-diagnosis entry point. Identical to Diagnose over the violation
// record that produced the observed transitions.
func (r *RunningSignature) Diagnose() []Hypothesis {
	return DiagnoseSignature(r.Signature())
}
