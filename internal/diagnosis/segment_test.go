package diagnosis

import (
	"strings"
	"testing"

	"adassure/internal/attacks"
	"adassure/internal/core"
	"adassure/internal/geom"
	"adassure/internal/sim"
	"adassure/internal/track"
)

func TestSegmentizeEmpty(t *testing.T) {
	if segs := Segmentize(nil, SegmentOptions{}); segs != nil {
		t.Errorf("empty record produced segments: %v", segs)
	}
}

func TestSegmentizeSplitsOnQuietGap(t *testing.T) {
	vs := []core.Violation{
		v("A1", 20.0, 0.3),
		v("A10", 20.2, 1.0),
		// 15 s quiet gap.
		v("A5", 36.5, 8),
		v("A4", 37.0, 7),
	}
	segs := Segmentize(vs, SegmentOptions{QuietGap: 5})
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	if len(segs[0].Violations) != 2 || len(segs[1].Violations) != 2 {
		t.Errorf("segment sizes %d/%d", len(segs[0].Violations), len(segs[1].Violations))
	}
	if segs[0].Start != 20.0 || segs[1].Start != 36.5 {
		t.Errorf("segment starts %g/%g", segs[0].Start, segs[1].Start)
	}
	// Episode durations extend the segment end.
	if segs[1].End < 44 {
		t.Errorf("segment 2 end %g should include the 8 s A5 episode", segs[1].End)
	}
	// Each segment carries its own diagnosis.
	if len(segs[0].Hypotheses) == 0 || len(segs[1].Hypotheses) == 0 {
		t.Fatal("segments missing hypotheses")
	}
}

func TestSegmentizeMergesWithinGap(t *testing.T) {
	vs := []core.Violation{
		v("A1", 20, 0.3),
		v("A2", 23, 2),
		v("A10", 26, 1),
	}
	if segs := Segmentize(vs, SegmentOptions{QuietGap: 5}); len(segs) != 1 {
		t.Errorf("contiguous violations split into %d segments", len(segs))
	}
}

// TestSegmentizeTwoAttackDrive runs a real drive with a sequential
// campaign (step spoof, then long dropout) and checks that segmentation
// recovers both incidents with correct per-segment diagnoses.
func TestSegmentizeTwoAttackDrive(t *testing.T) {
	tr, err := track.UrbanLoop(6)
	if err != nil {
		t.Fatal(err)
	}
	step, err := attacks.NewStepSpoof(attacks.Window{Start: 20, End: 28}, geom.V(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	drop, err := attacks.NewDropout(attacks.Window{Start: 55, End: 80}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := attacks.NewSequence(step, drop)
	if err != nil {
		t.Fatal(err)
	}
	mon := core.NewCatalogMonitor(core.CatalogConfig{IncludeGroundTruth: true})
	if _, err := sim.Run(sim.Config{
		Track: tr, Controller: "pure-pursuit", Seed: 1, Duration: 95,
		Campaign: attacks.Campaign{GNSS: seq}, Monitor: mon, DisableTrace: true,
	}); err != nil {
		t.Fatal(err)
	}
	segs := Segmentize(mon.Violations(), SegmentOptions{QuietGap: 8})
	if len(segs) < 2 {
		t.Fatalf("found %d segments, want >= 2 (violations: %d)", len(segs), len(mon.Violations()))
	}
	// First incident diagnosed as the step spoof, a later one as dropout.
	if got := segs[0].Hypotheses[0].Cause; got != CauseStepSpoof {
		t.Errorf("incident 1 diagnosed as %s, want step spoof", got)
	}
	foundDropout := false
	for _, s := range segs[1:] {
		if s.Hypotheses[0].Cause == CauseDropout {
			foundDropout = true
		}
	}
	if !foundDropout {
		causes := []Cause{}
		for _, s := range segs[1:] {
			causes = append(causes, s.Hypotheses[0].Cause)
		}
		t.Errorf("no later segment diagnosed as dropout (got %v)", causes)
	}
}

func TestSegmentReport(t *testing.T) {
	if r := SegmentReport(nil, SegmentOptions{}); !strings.Contains(r, "nominal") {
		t.Error("empty report should say nominal")
	}
	vs := []core.Violation{
		v("A1", 20, 0.3),
		v("A5", 40, 10),
	}
	r := SegmentReport(vs, SegmentOptions{QuietGap: 5})
	for _, want := range []string{"2 incident segment(s)", "incident 1", "incident 2", "A1×1", "A5×1", "diagnosis:"} {
		if !strings.Contains(r, want) {
			t.Errorf("segment report missing %q:\n%s", want, r)
		}
	}
}
