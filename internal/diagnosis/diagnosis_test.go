package diagnosis

import (
	"math"
	"strings"
	"testing"

	"adassure/internal/core"
)

func v(id string, t, dur float64) core.Violation {
	return core.Violation{AssertionID: id, Name: id, Severity: core.Warning, T: t, FirstBreach: t, Duration: dur}
}

func TestExtractSignature(t *testing.T) {
	vs := []core.Violation{
		v("A5", 20.5, 30),
		v("A4", 21.0, 2),
		v("A5", 55.0, 1),
	}
	sig := Extract(vs)
	if sig.Total != 3 {
		t.Errorf("total = %d", sig.Total)
	}
	if sig.Episodes["A5"] != 2 || sig.Episodes["A4"] != 1 {
		t.Errorf("episodes = %v", sig.Episodes)
	}
	if sig.FirstID != "A5" || sig.FirstT != 20.5 {
		t.Errorf("first = %s@%g", sig.FirstID, sig.FirstT)
	}
	if len(sig.Order) != 2 || sig.Order[0] != "A5" || sig.Order[1] != "A4" {
		t.Errorf("order = %v", sig.Order)
	}
	if sig.MaxDuration["A5"] != 30 {
		t.Errorf("max duration A5 = %g", sig.MaxDuration["A5"])
	}
}

func TestExtractOpenEpisodeIsInfinite(t *testing.T) {
	sig := Extract([]core.Violation{v("A5", 10, 0)})
	if !math.IsInf(sig.MaxDuration["A5"], 1) {
		t.Errorf("open episode duration = %g, want +Inf", sig.MaxDuration["A5"])
	}
}

func TestDiagnoseEmptyIsNone(t *testing.T) {
	hyps := Diagnose(nil)
	if len(hyps) != 1 || hyps[0].Cause != CauseNone || hyps[0].Confidence != 1 {
		t.Errorf("empty diagnosis = %+v", hyps)
	}
}

func TestDiagnoseSyntheticSignatures(t *testing.T) {
	cases := []struct {
		name string
		vs   []core.Violation
		want Cause
	}{
		{
			name: "step spoof: A1 first with innovation and lane breach",
			vs: []core.Violation{
				v("A1", 20.05, 0.3), v("A10", 20.1, 1), v("A2", 20.3, 2),
				v("A13", 20.8, 1), v("A4", 20.2, 1),
			},
			want: CauseStepSpoof,
		},
		{
			name: "drift: A13 first, late, no jumps",
			vs: []core.Violation{
				v("A13", 26.5, 10), v("A2", 29, 5), v("A12", 28, 8),
			},
			want: CauseDriftSpoof,
		},
		{
			name: "replay: progress regression dominates",
			vs: []core.Violation{
				v("A1", 20.05, 0.2), v("A9", 20.1, 0.1), v("A9", 21.2, 0.1),
				v("A9", 22.4, 0.1), v("A10", 20.2, 3),
			},
			want: CauseReplay,
		},
		{
			name: "freeze: speed collapse plus one sustained innovation episode",
			vs: []core.Violation{
				v("A10", 20.2, 25), v("A4", 20.5, 25), v("A12", 30, 10),
			},
			want: CauseFreeze,
		},
		{
			name: "dropout: one long silence",
			vs:   []core.Violation{v("A5", 20.55, 30), v("A3", 51, 1), v("A4", 51, 1)},
			want: CauseDropout,
		},
		{
			name: "delay: brief silence then repeated disagreement",
			vs: []core.Violation{
				v("A5", 20.55, 1.2), v("A10", 21.5, 1), v("A10", 23, 1), v("A10", 25, 1),
				v("A10", 27, 1), v("A9", 22, 0.3), v("A2", 24, 2),
			},
			want: CauseDelay,
		},
		{
			name: "noise: many scattered jumps",
			vs: []core.Violation{
				v("A1", 20.05, 0.1), v("A1", 20.6, 0.1), v("A1", 21.3, 0.1), v("A1", 22.0, 0.1),
				v("A1", 23.1, 0.1), v("A4", 20.5, 10), v("A10", 20.3, 0.5),
			},
			want: CauseNoiseInflation,
		},
		{
			name: "imu heading bias: heading channels only",
			vs:   []core.Violation{v("A13", 20.6, 5), v("A3", 21, 25), v("A3", 30, 5)},
			want: CauseIMUHeadingBias,
		},
		{
			name: "odom scale: speed disagreement with repeated filter tugging",
			vs: []core.Violation{
				v("A4", 20.15, 25), v("A10", 21, 0.5), v("A10", 22, 0.5), v("A10", 23, 0.5),
				v("A10", 24, 0.5), v("A10", 25, 0.5), v("A10", 26, 0.5),
			},
			want: CauseOdomScale,
		},
		{
			name: "controller oscillation: A11 alone",
			vs:   []core.Violation{v("A11", 30, 2), v("A11", 35, 2), v("A11", 42, 1)},
			want: CauseCtrlOscillation,
		},
		{
			name: "controller tracking: A2 with clean sensors",
			vs:   []core.Violation{v("A2", 25, 4), v("A6", 25.5, 3), v("A12", 26, 4)},
			want: CauseCtrlTracking,
		},
	}
	for _, c := range cases {
		hyps := Diagnose(c.vs)
		if hyps[0].Cause != c.want {
			t.Errorf("%s: top-1 = %s (%.0f%%), want %s", c.name, hyps[0].Cause, hyps[0].Confidence*100, c.want)
		}
	}
}

func TestDiagnoseConfidencesNormalised(t *testing.T) {
	hyps := Diagnose([]core.Violation{v("A1", 20, 1), v("A10", 20.1, 1)})
	var sum float64
	for _, h := range hyps {
		if h.Confidence < 0 || h.Confidence > 1 {
			t.Errorf("confidence %g out of range", h.Confidence)
		}
		sum += h.Confidence
	}
	if sum > 1.0001 {
		t.Errorf("confidences sum to %g > 1", sum)
	}
	// Ranked descending.
	for i := 1; i < len(hyps); i++ {
		if hyps[i].Confidence > hyps[i-1].Confidence+1e-12 {
			t.Error("hypotheses not sorted by confidence")
		}
	}
}

func TestReportRendering(t *testing.T) {
	r := Report(nil, 3)
	if !strings.Contains(r, "nominal") {
		t.Error("empty report should say nominal")
	}
	vs := []core.Violation{v("A5", 20.55, 30), v("A4", 51, 1)}
	r = Report(vs, 3)
	for _, want := range []string{"A5", "Ranked root-cause", "gnss-dropout", "Signature"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
	// Long records are truncated.
	var many []core.Violation
	for i := 0; i < 50; i++ {
		many = append(many, v("A1", float64(i), 0.1))
	}
	r = Report(many, 2)
	if !strings.Contains(r, "more") {
		t.Error("long report should truncate the timeline")
	}
}
