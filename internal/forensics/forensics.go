// Package forensics builds the violation-triggered forensic bundles of
// the ADAssure debugging methodology: for every assertion-violation
// episode of a run it assembles one self-contained JSON artifact holding
// everything an engineer needs to root-cause the episode without
// rerunning the simulation — the ±window slice of the signal trace, the
// monitor frames inside the window, the attack state active at the
// violation instant, the assertion's evaluation history from the metrics
// registry, and the top-ranked diagnosis hypotheses. It is the
// violation-cause-analysis layer between the raw violation record
// (internal/core) and the human: aggregate metrics say *how often* an
// assertion fired; a bundle shows *what the signals were doing* when it
// did.
package forensics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"adassure/internal/core"
	"adassure/internal/diagnosis"
	"adassure/internal/obs"
	"adassure/internal/trace"
)

// Schema is the current bundle schema identifier.
const Schema = "adassure/bundle/v1"

// DefaultHalfWindow is the default half-width (s) of the evidence window
// around the violation raise instant.
const DefaultHalfWindow = 2.0

// AttackInfo snapshots the campaign state relative to one violation.
type AttackInfo struct {
	// Name and Class identify the injected attack instance.
	Name  string `json:"name"`
	Class string `json:"class"`
	// Start/End are the configured activation window (End 0 = open).
	Start float64 `json:"start"`
	End   float64 `json:"end,omitempty"`
	// ActiveAtViolation reports whether the attack window contained the
	// violation raise instant.
	ActiveAtViolation bool `json:"active_at_violation"`
}

// EvalHistory is the assertion's evaluation record pulled from the obs
// registry: how many frames it judged, how often it raised, and the
// latency distribution of its Eval — the cost side of the episode.
type EvalHistory struct {
	Evals      int64                `json:"evals"`
	Violations int64                `json:"violations"`
	EvalNS     obs.HistogramSummary `json:"eval_ns"`
}

// Window is the closed evidence interval [T0, T1] of a bundle.
type Window struct {
	T0 float64 `json:"t0"`
	T1 float64 `json:"t1"`
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t float64) bool { return t >= w.T0 && t <= w.T1 }

// Bundle is one self-contained forensic artifact for one violation
// episode.
type Bundle struct {
	Schema string `json:"schema"`
	// TraceID names the distributed trace of the run that produced the
	// bundle, linking the artifact back to its request's span tree in
	// /debug/traces (empty when the run was untraced).
	TraceID string `json:"trace_id,omitempty"`
	// Scenario carries the run metadata (track, controller, attack, seed…).
	Scenario map[string]string `json:"scenario,omitempty"`
	// Index is the episode's position in the run's violation record.
	Index int `json:"index"`
	// Violation is the episode itself, with its evidence snapshot.
	Violation core.Violation `json:"violation"`
	// Window is the evidence interval around the raise instant.
	Window Window `json:"window"`
	// Trace is the window slice of the run's signal trace (nil when the
	// run recorded no trace).
	Trace *trace.Trace `json:"trace,omitempty"`
	// Frames are the monitor frames inside the window (empty when the run
	// did not record frames). These are the violating frames: the episode's
	// raise instant always falls inside the window.
	Frames []core.Frame `json:"frames,omitempty"`
	// Attack is the campaign state (nil for clean runs).
	Attack *AttackInfo `json:"attack,omitempty"`
	// EvalHistory is the assertion's evaluation record (nil without a
	// registry).
	EvalHistory *EvalHistory `json:"eval_history,omitempty"`
	// Hypotheses are the top-ranked root-cause candidates for the whole
	// run's violation record at bundle-build time.
	Hypotheses []diagnosis.Hypothesis `json:"hypotheses,omitempty"`
}

// Input is everything Build needs, all optional except Violations: absent
// pieces (no trace, no frames, no registry, clean run) simply leave the
// corresponding bundle sections empty.
type Input struct {
	// TraceID is the executing run's trace ID, copied into every bundle.
	TraceID string
	// Scenario metadata copied into every bundle.
	Scenario map[string]string
	// Violations is the run's episode record; one bundle per entry.
	Violations []core.Violation
	// Trace is the run's signal trace.
	Trace *trace.Trace
	// Frames is the run's recorded frame stream.
	Frames []core.Frame
	// Attack describes the injected campaign (nil = clean).
	Attack *AttackInfo
	// Obs is the run's metrics registry for per-assertion eval history.
	Obs *obs.Registry
	// Hypotheses is the run's ranked diagnosis; when nil it is derived
	// from Violations.
	Hypotheses []diagnosis.Hypothesis
	// HalfWindow is the evidence half-width in seconds (default
	// DefaultHalfWindow).
	HalfWindow float64
	// TopHypotheses bounds the embedded hypothesis list (default 3).
	TopHypotheses int
}

// Build assembles one bundle per violation episode. The returned slice is
// in violation-record order; an empty record yields nil.
func Build(in Input) []Bundle {
	if len(in.Violations) == 0 {
		return nil
	}
	if in.HalfWindow <= 0 {
		in.HalfWindow = DefaultHalfWindow
	}
	if in.TopHypotheses <= 0 {
		in.TopHypotheses = 3
	}
	hyps := in.Hypotheses
	if hyps == nil {
		hyps = diagnosis.Diagnose(in.Violations)
	}
	if len(hyps) > in.TopHypotheses {
		hyps = hyps[:in.TopHypotheses]
	}

	out := make([]Bundle, 0, len(in.Violations))
	for i, v := range in.Violations {
		// The window is anchored on the raise instant but always extended
		// back to the first breach, so the evidence that accumulated into
		// the debounced raise is never cut off.
		t0 := v.T - in.HalfWindow
		if v.FirstBreach >= 0 && v.FirstBreach < t0 {
			t0 = v.FirstBreach
		}
		if t0 < 0 {
			t0 = 0
		}
		win := Window{T0: t0, T1: v.T + in.HalfWindow}
		v.Evidence = sanitizeEvidence(v.Evidence)
		b := Bundle{
			Schema:     Schema,
			TraceID:    in.TraceID,
			Scenario:   in.Scenario,
			Index:      i,
			Violation:  v,
			Window:     win,
			Attack:     attackAt(in.Attack, v.T),
			Hypotheses: hyps,
		}
		if in.Trace != nil {
			b.Trace = in.Trace.Slice(win.T0, win.T1)
		}
		for _, f := range in.Frames {
			if win.Contains(f.T) {
				b.Frames = append(b.Frames, f)
			}
		}
		if in.Obs != nil {
			id := v.AssertionID
			b.EvalHistory = &EvalHistory{
				Evals:      in.Obs.Counter("monitor." + id + ".evals").Value(),
				Violations: in.Obs.Counter("monitor." + id + ".violations").Value(),
				EvalNS:     in.Obs.Histogram("monitor." + id + ".eval_ns").Summary(),
			}
		}
		out = append(out, b)
	}
	return out
}

// sanitizeEvidence makes an evidence map JSON-representable: one-sided
// assertion bounds snapshot ±Inf thresholds (e.g. "any value below hi"),
// which encoding/json rejects, so infinities are clamped to ±MaxFloat64
// and NaN entries dropped. The original map is never mutated.
func sanitizeEvidence(ev map[string]float64) map[string]float64 {
	clean := true
	for _, val := range ev {
		if math.IsNaN(val) || math.IsInf(val, 0) {
			clean = false
			break
		}
	}
	if clean {
		return ev
	}
	cp := make(map[string]float64, len(ev))
	for k, val := range ev {
		switch {
		case math.IsNaN(val):
		case math.IsInf(val, 1):
			cp[k] = math.MaxFloat64
		case math.IsInf(val, -1):
			cp[k] = -math.MaxFloat64
		default:
			cp[k] = val
		}
	}
	return cp
}

// attackAt stamps the per-violation activity flag onto a copy of the
// campaign info.
func attackAt(a *AttackInfo, t float64) *AttackInfo {
	if a == nil {
		return nil
	}
	cp := *a
	cp.ActiveAtViolation = t >= a.Start && (a.End == 0 || t < a.End)
	return &cp
}

// Filename returns the canonical on-disk name for a bundle:
// bundle_<index>_<assertion>_t<raise>.json — sortable, collision-free
// within a run.
func (b *Bundle) Filename() string {
	return fmt.Sprintf("bundle_%03d_%s_t%07.2fs.json", b.Index, b.Violation.AssertionID, b.Violation.T)
}

// WriteJSON serialises the bundle as indented JSON.
func (b *Bundle) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return fmt.Errorf("forensics: encode bundle: %w", err)
	}
	return nil
}

// ReadJSON parses a bundle previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Bundle, error) {
	var b Bundle
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("forensics: decode bundle: %w", err)
	}
	if b.Schema != Schema {
		return nil, fmt.Errorf("forensics: unsupported schema %q (want %q)", b.Schema, Schema)
	}
	return &b, nil
}

// Render writes the human-readable account of a bundle (the
// `adassure-trace bundle` view): the violation, its evidence, the window,
// attack state, eval history, per-signal window statistics and the
// ranked hypotheses.
func (b *Bundle) Render(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "forensic bundle #%d — %s (%s)\n", b.Index, b.Violation.AssertionID, b.Violation.Name)
	fmt.Fprintf(&sb, "================================================\n")
	if len(b.Scenario) > 0 {
		keys := make([]string, 0, len(b.Scenario))
		for k := range b.Scenario {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%s", k, b.Scenario[k])
		}
		fmt.Fprintf(&sb, "scenario: %s\n", strings.Join(parts, " "))
	}
	v := b.Violation
	fmt.Fprintf(&sb, "violation: raised t=%.2fs (first breach t=%.2fs, duration %.2fs) [%s]\n",
		v.T, v.FirstBreach, v.Duration, v.Severity)
	fmt.Fprintf(&sb, "  %s\n", v.Message)
	if len(v.Evidence) > 0 {
		keys := make([]string, 0, len(v.Evidence))
		for k := range v.Evidence {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "  evidence %-12s %g\n", k, v.Evidence[k])
		}
	}
	fmt.Fprintf(&sb, "window: [%.2f, %.2f] s\n", b.Window.T0, b.Window.T1)
	if b.Attack != nil {
		state := "inactive"
		if b.Attack.ActiveAtViolation {
			state = "ACTIVE"
		}
		fmt.Fprintf(&sb, "attack: %s (%s), window [%g, %g) s — %s at violation\n",
			b.Attack.Name, b.Attack.Class, b.Attack.Start, b.Attack.End, state)
	}
	if b.EvalHistory != nil {
		fmt.Fprintf(&sb, "eval history: %d evals, %d violations, eval p50 %.0f ns / p99 %.0f ns\n",
			b.EvalHistory.Evals, b.EvalHistory.Violations, b.EvalHistory.EvalNS.P50, b.EvalHistory.EvalNS.P99)
	}
	if len(b.Frames) > 0 {
		fmt.Fprintf(&sb, "frames in window: %d\n", len(b.Frames))
	}
	if b.Trace != nil {
		fmt.Fprintf(&sb, "signals in window:\n")
		fmt.Fprintf(&sb, "  %-16s %8s %12s %12s %12s\n", "signal", "samples", "min", "max", "mean")
		for _, sig := range b.Trace.Signals() {
			st := b.Trace.SignalStats(sig)
			fmt.Fprintf(&sb, "  %-16s %8d %12.4f %12.4f %12.4f\n", sig, st.Count, st.Min, st.Max, st.Mean)
		}
	}
	if len(b.Hypotheses) > 0 {
		fmt.Fprintf(&sb, "ranked root-cause hypotheses:\n")
		for i, h := range b.Hypotheses {
			fmt.Fprintf(&sb, "  %d. %-24s %5.1f%%  %s\n", i+1, h.Cause, h.Confidence*100, h.Rationale)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
