package forensics_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"adassure"
	"adassure/internal/core"
	"adassure/internal/forensics"
	"adassure/internal/trace"
)

// attackedRun executes the canonical drift-spoof scenario with frames,
// metrics and a cached result shared across the tests in this file.
var attackedRun = func() func(t *testing.T) *adassure.ScenarioResult {
	var cached *adassure.ScenarioResult
	return func(t *testing.T) *adassure.ScenarioResult {
		t.Helper()
		if cached != nil {
			return cached
		}
		scn := adassure.Scenario{
			Attack:       adassure.AttackDriftSpoof,
			Seed:         1,
			Duration:     55,
			RecordFrames: true,
			Obs:          adassure.NewRegistry(),
		}
		out, err := scn.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Violations) == 0 {
			t.Fatal("attacked run raised no violations")
		}
		cached = out
		return out
	}
}()

// TestBundleWindowContainsViolation is the acceptance criterion: every
// bundle's evidence window provably contains the violation instant — in
// the declared window, in the trace slice's time span and in the frame
// subset.
func TestBundleWindowContainsViolation(t *testing.T) {
	out := attackedRun(t)
	bundles := out.ForensicBundles(0)
	if len(bundles) != len(out.Violations) {
		t.Fatalf("got %d bundles for %d violations", len(bundles), len(out.Violations))
	}
	for _, b := range bundles {
		v := b.Violation
		if !b.Window.Contains(v.T) {
			t.Errorf("bundle %d: window [%.2f, %.2f] misses raise t=%.2f", b.Index, b.Window.T0, b.Window.T1, v.T)
		}
		if v.FirstBreach >= 0 && !b.Window.Contains(v.FirstBreach) {
			t.Errorf("bundle %d: window misses first breach t=%.2f", b.Index, v.FirstBreach)
		}
		if b.Trace == nil {
			t.Fatalf("bundle %d: no trace slice", b.Index)
		}
		// The trace slice must cover the raise instant: some signal sample
		// at or after it, and one at or before it.
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, sig := range b.Trace.Signals() {
			st := b.Trace.SignalStats(sig)
			if st.Count == 0 {
				continue
			}
			for _, s := range b.Trace.Samples(sig) {
				if s.T < lo {
					lo = s.T
				}
				if s.T > hi {
					hi = s.T
				}
			}
		}
		if !(lo <= v.T && v.T <= hi) {
			t.Errorf("bundle %d: trace span [%.2f, %.2f] does not contain violation t=%.2f", b.Index, lo, hi, v.T)
		}
		if len(b.Frames) == 0 {
			t.Errorf("bundle %d: no frames in window", b.Index)
		}
		for _, f := range b.Frames {
			if !b.Window.Contains(f.T) {
				t.Errorf("bundle %d: frame t=%.2f outside window", b.Index, f.T)
			}
		}
		if b.Attack == nil {
			t.Fatalf("bundle %d: attack info missing on attacked run", b.Index)
		}
		if b.EvalHistory == nil || b.EvalHistory.Evals == 0 {
			t.Errorf("bundle %d: eval history missing or empty: %+v", b.Index, b.EvalHistory)
		}
		if len(b.Hypotheses) == 0 || len(b.Hypotheses) > 3 {
			t.Errorf("bundle %d: hypotheses count %d, want 1..3", b.Index, len(b.Hypotheses))
		}
	}
}

// TestBundleJSONRoundTrip writes each bundle and reads it back, checking
// the loaded artifact is usable standalone.
func TestBundleJSONRoundTrip(t *testing.T) {
	out := attackedRun(t)
	for _, b := range out.ForensicBundles(0) {
		var buf bytes.Buffer
		if err := b.WriteJSON(&buf); err != nil {
			t.Fatalf("bundle %d: write: %v", b.Index, err)
		}
		got, err := forensics.ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("bundle %d: read: %v", b.Index, err)
		}
		if got.Schema != forensics.Schema || got.Index != b.Index {
			t.Fatalf("bundle %d: header mismatch: %+v", b.Index, got)
		}
		if got.Violation.AssertionID != b.Violation.AssertionID || got.Violation.T != b.Violation.T {
			t.Errorf("bundle %d: violation drifted: %+v vs %+v", b.Index, got.Violation, b.Violation)
		}
		if got.Window != b.Window {
			t.Errorf("bundle %d: window drifted", b.Index)
		}
		if len(got.Frames) != len(b.Frames) {
			t.Errorf("bundle %d: frames %d != %d", b.Index, len(got.Frames), len(b.Frames))
		}
		if (got.Trace == nil) != (b.Trace == nil) {
			t.Fatalf("bundle %d: trace presence changed", b.Index)
		}
		if got.Trace != nil {
			if len(got.Trace.Signals()) != len(b.Trace.Signals()) {
				t.Errorf("bundle %d: trace signals %d != %d", b.Index, len(got.Trace.Signals()), len(b.Trace.Signals()))
			}
		}
		// The render must work on the re-read bundle (the offline use case).
		var render bytes.Buffer
		if err := got.Render(&render); err != nil {
			t.Fatalf("bundle %d: render after round trip: %v", b.Index, err)
		}
		if !strings.Contains(render.String(), b.Violation.AssertionID) {
			t.Errorf("bundle %d: render missing assertion ID", b.Index)
		}
	}
}

func TestReadJSONRejectsWrongSchema(t *testing.T) {
	if _, err := forensics.ReadJSON(strings.NewReader(`{"schema":"other/v1"}`)); err == nil {
		t.Fatal("accepted wrong schema")
	}
	if _, err := forensics.ReadJSON(strings.NewReader(`garbage`)); err == nil {
		t.Fatal("accepted non-JSON input")
	}
}

// TestBuildSanitizesEvidence pins the fix for one-sided assertion bounds:
// ±Inf thresholds in the evidence map must not poison the JSON encoding.
func TestBuildSanitizesEvidence(t *testing.T) {
	tr := trace.New()
	tr.Record("x", 1.0, 2.0)
	bundles := forensics.Build(forensics.Input{
		Violations: []core.Violation{{
			AssertionID: "A10", T: 1.0, FirstBreach: 0.9,
			Evidence: map[string]float64{"lo": math.Inf(-1), "hi": 3.5, "bad": math.NaN()},
		}},
		Trace: tr,
	})
	if len(bundles) != 1 {
		t.Fatalf("got %d bundles", len(bundles))
	}
	var buf bytes.Buffer
	if err := bundles[0].WriteJSON(&buf); err != nil {
		t.Fatalf("bundle with infinite evidence failed to encode: %v", err)
	}
	ev := bundles[0].Violation.Evidence
	if ev["lo"] != -math.MaxFloat64 || ev["hi"] != 3.5 {
		t.Errorf("evidence not clamped: %v", ev)
	}
	if _, ok := ev["bad"]; ok {
		t.Errorf("NaN evidence survived: %v", ev)
	}
}

// TestWindowExtendsToFirstBreach checks the window anchors on the raise
// but never cuts off the breach evidence, and is clamped at t=0.
func TestWindowExtendsToFirstBreach(t *testing.T) {
	bundles := forensics.Build(forensics.Input{
		Violations: []core.Violation{
			{AssertionID: "A1", T: 10, FirstBreach: 3},
			{AssertionID: "A2", T: 0.5, FirstBreach: 0.2},
		},
		HalfWindow: 2,
	})
	if got := bundles[0].Window; got.T0 != 3 || got.T1 != 12 {
		t.Errorf("window = [%.1f, %.1f], want [3, 12] (extended to first breach)", got.T0, got.T1)
	}
	if got := bundles[1].Window; got.T0 != 0 || got.T1 != 2.5 {
		t.Errorf("window = [%.1f, %.1f], want [0, 2.5] (clamped at 0)", got.T0, got.T1)
	}
}
