package control

import (
	"math"
	"testing"

	"adassure/internal/fusion"
	"adassure/internal/geom"
	"adassure/internal/planner"
	"adassure/internal/track"
	"adassure/internal/vehicle"
)

// driveLoop runs a lateral controller closed-loop against the kinematic
// plant with perfect localization, returning the max |CTE| after an initial
// settling distance and the number of steering sign changes per second.
func driveLoop(t *testing.T, ctrl Lateral, tr *track.Track, p vehicle.Params, dur float64) (maxCTE, signChangesPerSec float64) {
	t.Helper()
	model := vehicle.NewKinematic(p)
	sp, err := planner.NewSpeedProfile(tr.Path(), tr.SpeedLimit(), p)
	if err != nil {
		t.Fatal(err)
	}
	speedCtl := NewSpeedPID(p)
	ctrl.Reset()
	speedCtl.Reset()

	progress, err := planner.NewProgress(tr.Path())
	if err != nil {
		t.Fatal(err)
	}
	start := tr.StartPose()
	st := vehicle.State{X: start.Pos.X, Y: start.Pos.Y, Heading: start.Heading, Speed: 1}
	const dt = 0.02
	settle := 5.0 // seconds before CTE counts
	var prevSteer float64
	var signChanges int
	elapsed := settle
	for tm := 0.0; tm < dur && !progress.Finished(); tm += dt {
		elapsed = tm
		est := fusion.Estimate{
			T:       tm,
			Pose:    geom.Pose{Pos: geom.V(st.X, st.Y), Heading: st.Heading},
			Speed:   st.Speed,
			YawRate: st.YawRate,
		}
		s, cte := tr.Path().Project(est.Pose.Pos)
		progress.Observe(s)
		steer := ctrl.Steer(est, tr.Path(), dt)
		accel := speedCtl.Accel(st.Speed, sp.TargetAt(s), dt)
		st = model.Step(st, vehicle.Command{Steer: steer, Accel: accel}, dt)
		if tm > settle {
			if a := math.Abs(cte); a > maxCTE {
				maxCTE = a
			}
			if prevSteer*steer < 0 && math.Abs(steer-prevSteer) > 0.01 {
				signChanges++
			}
		}
		prevSteer = steer
	}
	if elapsed <= settle {
		t.Fatalf("route finished before the settling window (%.1fs)", elapsed)
	}
	return maxCTE, float64(signChanges) / (elapsed - settle)
}

func tracksFor(t *testing.T) []*track.Track {
	t.Helper()
	var out []*track.Track
	mk := func(tr *track.Track, err error) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tr)
	}
	mk(track.Circle(25, 6))
	mk(track.UrbanLoop(6))
	mk(track.FigureEight(30, 6))
	mk(track.SCurve(8, 6))
	return out
}

func TestAllControllersTrackStandardRoutes(t *testing.T) {
	p := vehicle.ShuttleParams()
	for _, ctrl := range All(p) {
		for _, tr := range tracksFor(t) {
			maxCTE, _ := driveLoop(t, ctrl, tr, p, 90)
			if maxCTE > 1.0 {
				t.Errorf("%s on %s: max CTE %.2f m exceeds 1 m", ctrl.Name(), tr.Name(), maxCTE)
			}
			if maxCTE == 0 {
				t.Errorf("%s on %s: CTE identically zero — loop not exercising the plant", ctrl.Name(), tr.Name())
			}
		}
	}
}

func TestPurePursuitCutsCornersMoreThanLQR(t *testing.T) {
	// The documented pure-pursuit weakness — corner-cutting — scales with
	// lookahead distance, i.e. with speed. Drive the hairpin fast enough
	// that the lookahead chord spans a significant arc.
	p := vehicle.SedanParams()
	tr, err := track.Hairpin(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	ppCTE, _ := driveLoop(t, NewPurePursuit(p), tr, p, 60)
	lqrCTE, _ := driveLoop(t, NewLQRMPC(p), tr, p, 60)
	if ppCTE <= lqrCTE {
		t.Errorf("expected pure pursuit (%.3f m) to cut the hairpin more than LQR (%.3f m)", ppCTE, lqrCTE)
	}
}

func TestStanleyOscillatesAtHighSpeed(t *testing.T) {
	p := vehicle.SedanParams()
	tr, err := track.Straight(600, 22)
	if err != nil {
		t.Fatal(err)
	}
	_, stanleyOsc := driveLoop(t, NewStanley(p), tr, p, 30)
	_, lqrOsc := driveLoop(t, NewLQRMPC(p), tr, p, 30)
	// The documented Stanley weakness: steering sign-change rate at speed.
	if stanleyOsc <= lqrOsc {
		t.Logf("stanley=%.2f/s lqr=%.2f/s", stanleyOsc, lqrOsc)
	}
	if stanleyOsc > 5 { // should oscillate but not be unstable on a straight
		t.Errorf("stanley oscillation %.2f/s looks unstable", stanleyOsc)
	}
}

func TestControllersRecoverFromLateralOffset(t *testing.T) {
	p := vehicle.ShuttleParams()
	tr, err := track.Straight(300, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, ctrl := range All(p) {
		ctrl.Reset()
		model := vehicle.NewKinematic(p)
		st := vehicle.State{X: 0, Y: 3, Heading: 0, Speed: 4} // 3 m off the path
		speedCtl := NewSpeedPID(p)
		const dt = 0.02
		var finalCTE float64
		for tm := 0.0; tm < 30; tm += dt {
			est := fusion.Estimate{Pose: geom.Pose{Pos: geom.V(st.X, st.Y), Heading: st.Heading}, Speed: st.Speed, YawRate: st.YawRate}
			steer := ctrl.Steer(est, tr.Path(), dt)
			accel := speedCtl.Accel(st.Speed, 4, dt)
			st = model.Step(st, vehicle.Command{Steer: steer, Accel: accel}, dt)
			_, finalCTE = tr.Path().Project(geom.V(st.X, st.Y))
		}
		if math.Abs(finalCTE) > 0.3 {
			t.Errorf("%s failed to converge from 3 m offset: final CTE %.3f", ctrl.Name(), finalCTE)
		}
	}
}

func TestSteerOutputsFinite(t *testing.T) {
	p := vehicle.ShuttleParams()
	tr, err := track.UrbanLoop(6)
	if err != nil {
		t.Fatal(err)
	}
	// Degenerate inputs: zero speed, far off path, reversed heading.
	ests := []fusion.Estimate{
		{Pose: geom.NewPose(0, 0, 0), Speed: 0},
		{Pose: geom.NewPose(500, 500, math.Pi), Speed: 8},
		{Pose: geom.NewPose(45, 35, -math.Pi/2), Speed: 0.001},
	}
	for _, ctrl := range All(p) {
		ctrl.Reset()
		for _, est := range ests {
			if d := ctrl.Steer(est, tr.Path(), 0.02); math.IsNaN(d) || math.IsInf(d, 0) {
				t.Errorf("%s returned non-finite steer for %v", ctrl.Name(), est.Pose)
			}
		}
	}
}

func TestSpeedPIDConvergesToTarget(t *testing.T) {
	p := vehicle.ShuttleParams()
	model := vehicle.NewKinematic(p)
	ctl := NewSpeedPID(p)
	st := vehicle.State{Speed: 0}
	const dt = 0.02
	for tm := 0.0; tm < 20; tm += dt {
		st = model.Step(st, vehicle.Command{Accel: ctl.Accel(st.Speed, 5, dt)}, dt)
	}
	if math.Abs(st.Speed-5) > 0.15 {
		t.Errorf("speed %.3f after 20 s, want ~5", st.Speed)
	}
	// Deceleration.
	for tm := 0.0; tm < 20; tm += dt {
		st = model.Step(st, vehicle.Command{Accel: ctl.Accel(st.Speed, 2, dt)}, dt)
	}
	if math.Abs(st.Speed-2) > 0.15 {
		t.Errorf("speed %.3f after decel, want ~2", st.Speed)
	}
}

func TestSpeedPIDRespectsEnvelope(t *testing.T) {
	p := vehicle.ShuttleParams()
	ctl := NewSpeedPID(p)
	if a := ctl.Accel(0, 100, 0.02); a > p.MaxAccel+1e-9 {
		t.Errorf("accel %g exceeds envelope %g", a, p.MaxAccel)
	}
	ctl.Reset()
	if a := ctl.Accel(100, 0, 0.02); a < -p.MaxBrake-1e-9 {
		t.Errorf("brake %g exceeds envelope %g", a, p.MaxBrake)
	}
}

func TestPIDLateralIntegratorClamped(t *testing.T) {
	p := vehicle.ShuttleParams()
	c := NewPIDLateral(p)
	tr, err := track.Straight(300, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Hold a constant large offset for a long time: integrator must clamp.
	est := fusion.Estimate{Pose: geom.NewPose(50, 10, 0), Speed: 4}
	for i := 0; i < 10000; i++ {
		c.Steer(est, tr.Path(), 0.02)
	}
	if math.Abs(c.integral) > c.IntegralLimit+1e-9 {
		t.Errorf("integrator %g escaped clamp %g", c.integral, c.IntegralLimit)
	}
	c.Reset()
	if c.integral != 0 || c.hasPrev {
		t.Error("Reset did not clear state")
	}
}

func TestLQRGainCache(t *testing.T) {
	p := vehicle.ShuttleParams()
	c := NewLQRMPC(p)
	g1 := c.gainFor(3.0)
	g2 := c.gainFor(3.1) // same 0.5 m/s bucket
	if g1 != g2 {
		t.Error("same-bucket speeds produced different gains")
	}
	g3 := c.gainFor(6.0)
	if g1 == g3 {
		t.Error("distinct speeds produced identical gains")
	}
	// Gains must be stabilising in sign: positive error (left of path)
	// should produce negative (rightward) steering.
	est := fusion.Estimate{Pose: geom.NewPose(0, 2, 0), Speed: 4}
	tr, err := track.Straight(300, 6)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.Steer(est, tr.Path(), 0.02); d >= 0 {
		t.Errorf("LQR steer %g should be negative for +2 m CTE", d)
	}
}

func TestByName(t *testing.T) {
	p := vehicle.ShuttleParams()
	for _, want := range []string{"pure-pursuit", "stanley", "pid-lateral", "lqr-mpc"} {
		c, err := ByName(want, p)
		if err != nil || c.Name() != want {
			t.Errorf("ByName(%q) = %v, %v", want, c, err)
		}
	}
	if _, err := ByName("nope", p); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestAllReturnsFourDistinct(t *testing.T) {
	cs := All(vehicle.ShuttleParams())
	if len(cs) != 4 {
		t.Fatalf("All returned %d controllers", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if seen[c.Name()] {
			t.Errorf("duplicate controller %s", c.Name())
		}
		seen[c.Name()] = true
	}
}
