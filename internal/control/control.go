// Package control implements the driving-control algorithms under debug:
// four lateral controllers (Pure Pursuit, Stanley, lateral PID, and an
// LQR-based linear MPC) and a longitudinal PID speed controller. Each
// lateral controller has a distinct, well-known weakness signature that the
// ADAssure assertion catalog is designed to surface — corner-cutting for
// Pure Pursuit, high-speed oscillation for Stanley, phase lag for PID —
// which is the substance of the debugging methodology.
package control

import (
	"fmt"
	"math"

	"adassure/internal/fusion"
	"adassure/internal/geom"
	"adassure/internal/vehicle"
)

// Lateral computes a steering command from the localization estimate and
// the reference path. Implementations keep internal state (integrators,
// previous errors) and are reset per run.
type Lateral interface {
	// Name identifies the controller in reports.
	Name() string
	// Steer returns the desired steering angle in radians for the current
	// estimate. dt is the control period.
	Steer(est fusion.Estimate, path geom.Path, dt float64) float64
	// Reset clears internal state for a fresh run.
	Reset()
}

// refErrors computes the standard tracking errors of an estimate against
// a path: arc position, signed cross-track error, heading error and path
// curvature at the projection.
func refErrors(est fusion.Estimate, path geom.Path) (s, cte, headingErr, kappa float64) {
	s, cte = path.Project(est.Pose.Pos)
	headingErr = geom.AngleDiff(est.Pose.Heading, path.HeadingAt(s))
	kappa = path.CurvatureAt(s)
	return s, cte, headingErr, kappa
}

// PurePursuit is the classic geometric path tracker: steer toward a point
// a speed-scaled lookahead distance ahead on the path.
//
// Known weakness (surfaced by assertion A2 on tight curvature): the chord
// to the lookahead point cuts corners, so cross-track error grows with
// curvature and lookahead distance.
type PurePursuit struct {
	params vehicle.Params
	// LookaheadGain scales lookahead with speed: Ld = gain·v + Min.
	LookaheadGain float64
	// MinLookahead floors the lookahead distance in metres.
	MinLookahead float64
}

// NewPurePursuit builds a pure-pursuit controller with standard tuning.
func NewPurePursuit(p vehicle.Params) *PurePursuit {
	return &PurePursuit{params: p, LookaheadGain: 0.8, MinLookahead: 2.5}
}

// Name implements Lateral.
func (c *PurePursuit) Name() string { return "pure-pursuit" }

// Reset implements Lateral.
func (c *PurePursuit) Reset() {}

// Steer implements Lateral.
func (c *PurePursuit) Steer(est fusion.Estimate, path geom.Path, dt float64) float64 {
	ld := math.Max(c.MinLookahead, c.LookaheadGain*est.Speed)
	s, _ := path.Project(est.Pose.Pos)
	target := path.PointAt(s + ld)
	// Angle to target in the body frame.
	local := est.Pose.TransformTo(target)
	dist := local.Norm()
	if dist < 1e-6 {
		return 0
	}
	alpha := math.Atan2(local.Y, local.X)
	// Pure-pursuit law: δ = atan(2 L sin α / Ld).
	return math.Atan2(2*c.params.Wheelbase*math.Sin(alpha), dist)
}

// Stanley is the Stanley front-axle controller: heading error plus
// arctangent cross-track correction.
//
// Known weakness (surfaced by assertion A11): the cross-track term's gain
// effectively grows with 1/v — at higher speed the correction lags and the
// controller oscillates, especially with noisy localization.
type Stanley struct {
	params vehicle.Params
	// Gain is the cross-track gain k in atan(k·e / (v + Soft)).
	Gain float64
	// Soft regularises the low-speed division.
	Soft float64
}

// NewStanley builds a Stanley controller with standard tuning.
func NewStanley(p vehicle.Params) *Stanley {
	return &Stanley{params: p, Gain: 1.8, Soft: 1.0}
}

// Name implements Lateral.
func (c *Stanley) Name() string { return "stanley" }

// Reset implements Lateral.
func (c *Stanley) Reset() {}

// Steer implements Lateral.
func (c *Stanley) Steer(est fusion.Estimate, path geom.Path, dt float64) float64 {
	// Stanley operates on the front axle; project the front-axle position.
	front := est.Pose.Pos.Add(est.Pose.Forward().Scale(c.params.Wheelbase))
	s, cte := path.Project(front)
	headingErr := geom.AngleDiff(path.HeadingAt(s), est.Pose.Heading)
	// cte sign: positive = vehicle left of path; steer right (negative).
	cross := math.Atan2(c.Gain*-cte, est.Speed+c.Soft)
	return headingErr + cross
}

// PIDLateral steers proportionally to cross-track error with integral and
// derivative terms, plus a curvature feedforward.
//
// Known weakness: pure error feedback reacts after the error exists; the
// integrator winds up under a sustained spoof-induced offset, producing a
// slow, persistent bias (surfaced by A2/A8 in combination).
type PIDLateral struct {
	params     vehicle.Params
	Kp, Ki, Kd float64
	integral   float64
	hasPrev    bool
	// IntegralLimit clamps the integrator (anti-windup).
	IntegralLimit float64
	// DerivAlpha low-pass filters the derivative term (0..1, 1 = raw);
	// the raw derivative amplifies localization noise unusably.
	DerivAlpha float64
	derivState float64
}

// NewPIDLateral builds a lateral PID controller with standard tuning.
// pidDesignSpeed is the speed the PID gains are tuned at; the effective
// loop gain of the lateral error dynamics grows with speed, so the output
// is scheduled by designSpeed/v above it.
const pidDesignSpeed = 3.0

func NewPIDLateral(p vehicle.Params) *PIDLateral {
	return &PIDLateral{params: p, Kp: 0.4, Ki: 0.02, Kd: 0.5, IntegralLimit: 2.0, DerivAlpha: 0.35}
}

// Name implements Lateral.
func (c *PIDLateral) Name() string { return "pid-lateral" }

// Reset implements Lateral.
func (c *PIDLateral) Reset() {
	c.integral = 0
	c.hasPrev = false
	c.derivState = 0
}

// Steer implements Lateral.
func (c *PIDLateral) Steer(est fusion.Estimate, path geom.Path, dt float64) float64 {
	_, cte, headingErr, kappa := refErrors(est, path)
	err := -cte // steer right when left of path
	c.integral = geom.Clamp(c.integral+err*dt, -c.IntegralLimit, c.IntegralLimit)
	// Derivative of the cross-track error, computed geometrically
	// (ė = v·sin θe) rather than by differencing the noisy measurement —
	// numeric differentiation of localization output is unusable at 20 Hz.
	raw := -est.Speed * math.Sin(headingErr)
	c.derivState += (raw - c.derivState) * c.DerivAlpha
	c.hasPrev = true
	// Curvature feedforward: the steady-state steering for the path arc.
	// The controller remains pure error feedback on the cross-track
	// channel — its characteristic (and its weakness: integrator windup
	// under sustained offsets).
	ff := math.Atan(kappa * c.params.Wheelbase)
	gain := 1.0
	if est.Speed > pidDesignSpeed {
		gain = pidDesignSpeed / est.Speed
	}
	return ff + gain*(c.Kp*err+c.Ki*c.integral+c.Kd*c.derivState)
}

// LQRMPC is an unconstrained receding-horizon tracker: a discrete-time LQR
// over the lateral error dynamics [e, ė, θe, θ̇e], with the gain recomputed
// per speed bucket by backward Riccati recursion over a finite horizon —
// i.e. the analytic solution of the linear MPC problem without actuator
// constraints (constraints are enforced downstream by the plant's
// saturation).
type LQRMPC struct {
	params vehicle.Params
	// Horizon is the Riccati recursion depth (control steps).
	Horizon int
	// Dt is the prediction discretisation.
	Dt float64
	// Q penalises [e, ė, θe, θ̇e]; R penalises steering.
	Qe, Qde, Qth, Qdth, R float64

	gains map[int][4]float64 // speed bucket (0.5 m/s) → gain row
}

// NewLQRMPC builds the LQR/MPC controller with standard tuning.
func NewLQRMPC(p vehicle.Params) *LQRMPC {
	return &LQRMPC{
		params: p, Horizon: 50, Dt: 0.05,
		Qe: 1.0, Qde: 0.1, Qth: 0.8, Qdth: 0.1, R: 6.0,
		gains: make(map[int][4]float64),
	}
}

// Name implements Lateral.
func (c *LQRMPC) Name() string { return "lqr-mpc" }

// Reset implements Lateral.
func (c *LQRMPC) Reset() {} // gains cache is speed-keyed and run-independent

// gainFor returns the LQR gain row for a speed, cached per 0.5 m/s bucket.
func (c *LQRMPC) gainFor(v float64) [4]float64 {
	if v < 0.5 {
		v = 0.5
	}
	bucket := int(v / 0.5)
	if g, ok := c.gains[bucket]; ok {
		return g
	}
	g := c.solveRiccati(float64(bucket)*0.5 + 0.25)
	c.gains[bucket] = g
	return g
}

// solveRiccati performs the backward recursion for the kinematic lateral
// error model at speed v and returns K of u = -K·x.
func (c *LQRMPC) solveRiccati(v float64) [4]float64 {
	dt := c.Dt
	L := c.params.Wheelbase
	// Kinematic lateral error dynamics discretised:
	//   e'   = e + v·θe·dt
	//   θe'  = θe + (v/L)·δ·dt  (relative to path curvature, handled by FF)
	// Augmented with first-difference states for damping.
	A := fusion.NewMat(4, 4)
	A.Set(0, 0, 1)
	A.Set(0, 1, dt)
	A.Set(1, 2, v)
	A.Set(2, 2, 1)
	A.Set(2, 3, dt)
	B := fusion.NewMat(4, 1)
	B.Set(3, 0, v/L)

	Q := fusion.NewMat(4, 4)
	Q.Set(0, 0, c.Qe)
	Q.Set(1, 1, c.Qde)
	Q.Set(2, 2, c.Qth)
	Q.Set(3, 3, c.Qdth)
	R := fusion.NewMat(1, 1)
	R.Set(0, 0, c.R)

	P := Q.Clone()
	for i := 0; i < c.Horizon; i++ {
		BtP := B.T().Mul(P)
		S := BtP.Mul(B).Add(R)
		K := S.Inv().Mul(BtP).Mul(A)
		AmBK := A.Sub(B.Mul(K))
		P = AmBK.T().Mul(P).Mul(AmBK).Add(Q).Add(K.T().Mul(R).Mul(K)).Symmetrize()
	}
	BtP := B.T().Mul(P)
	S := BtP.Mul(B).Add(R)
	K := S.Inv().Mul(BtP).Mul(A)
	return [4]float64{K.At(0, 0), K.At(0, 1), K.At(0, 2), K.At(0, 3)}
}

// Steer implements Lateral.
func (c *LQRMPC) Steer(est fusion.Estimate, path geom.Path, dt float64) float64 {
	_, cte, headingErr, kappa := refErrors(est, path)
	v := math.Max(est.Speed, 0.5)
	k := c.gainFor(v)
	// Error-state vector: [e, ė, θe, θ̇e] with rates from current kinematics.
	eDot := v * math.Sin(headingErr)
	thDot := est.YawRate - v*kappa
	x := [4]float64{cte, eDot, headingErr, thDot}
	var u float64
	for i := range k {
		u -= k[i] * x[i]
	}
	ff := math.Atan(kappa * c.params.Wheelbase)
	return ff + u
}

// Longitudinal computes acceleration commands tracking a target speed.
// *SpeedPID is the production implementation; the interface exists so the
// simulator can accept an instrumented or mutated wrapper without the
// pristine controller changing.
type Longitudinal interface {
	// Name identifies the controller in reports.
	Name() string
	// Accel returns the acceleration command tracking targetSpeed.
	Accel(currentSpeed, targetSpeed, dt float64) float64
	// Reset clears internal state for a fresh run.
	Reset()
}

// SpeedPID is the longitudinal controller: PID on speed error with
// anti-windup, returning an acceleration command.
type SpeedPID struct {
	Kp, Ki, Kd    float64
	IntegralLimit float64
	integral      float64
	prevErr       float64
	hasPrev       bool
	maxAccel      float64
	maxBrake      float64
}

var _ Longitudinal = (*SpeedPID)(nil)

// NewSpeedPID builds the speed controller for a vehicle's accel envelope.
func NewSpeedPID(p vehicle.Params) *SpeedPID {
	return &SpeedPID{
		Kp: 1.2, Ki: 0.15, Kd: 0.0, IntegralLimit: 2.0,
		maxAccel: p.MaxAccel, maxBrake: p.MaxBrake,
	}
}

// Name identifies the controller in reports.
func (c *SpeedPID) Name() string { return "speed-pid" }

// Reset clears the integrator.
func (c *SpeedPID) Reset() {
	c.integral = 0
	c.prevErr = 0
	c.hasPrev = false
}

// Accel returns the acceleration command tracking targetSpeed.
func (c *SpeedPID) Accel(currentSpeed, targetSpeed, dt float64) float64 {
	err := targetSpeed - currentSpeed
	c.integral = geom.Clamp(c.integral+err*dt, -c.IntegralLimit, c.IntegralLimit)
	var deriv float64
	if c.hasPrev && dt > 0 {
		deriv = (err - c.prevErr) / dt
	}
	c.prevErr = err
	c.hasPrev = true
	return geom.Clamp(c.Kp*err+c.Ki*c.integral+c.Kd*deriv, -c.maxBrake, c.maxAccel)
}

// All returns one instance of every lateral controller for the comparison
// experiments, in stable order.
func All(p vehicle.Params) []Lateral {
	return []Lateral{NewPurePursuit(p), NewStanley(p), NewPIDLateral(p), NewLQRMPC(p)}
}

// ByName constructs a lateral controller by its Name string.
func ByName(name string, p vehicle.Params) (Lateral, error) {
	for _, c := range All(p) {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("control: unknown controller %q", name)
}
