package fusion

import (
	"math"

	"adassure/internal/geom"
	"adassure/internal/sensors"
)

// Localizer is the estimation interface the simulation engine drives: IMU
// prediction, odometry and GNSS updates, and a fused estimate. The EKF is
// the reference implementation; Complementary is the lightweight
// alternative many low-cost platforms actually ship.
type Localizer interface {
	// PredictIMU propagates the estimate with an inertial reading.
	PredictIMU(r sensors.IMUReading)
	// UpdateOdom fuses a wheel-speed reading.
	UpdateOdom(r sensors.OdomReading)
	// UpdateGNSS fuses a position fix, returning the consistency statistic
	// (χ² NIS where available) and whether the fix was accepted.
	UpdateGNSS(fix sensors.GNSSFix) (nis float64, accepted bool)
	// Estimate returns the current fused estimate.
	Estimate() Estimate
	// LastNIS returns the most recent GNSS consistency statistic and its
	// acceptance; implementations without an innovation model return
	// (0, true) and the A10 assertion stays inapplicable.
	LastNIS() (nis float64, accepted bool)
	// RejectStreak returns consecutive GNSS rejections (0 where gating is
	// unsupported).
	RejectStreak() int
}

// Complementary is a fixed-gain complementary filter: dead reckoning from
// gyro + odometry, pulled toward each GNSS fix by constant blend gains. It
// has no covariance, no innovation statistic and no gate — the trade-off
// the fusion-ablation experiment (X5) quantifies.
type Complementary struct {
	t       float64
	pose    geom.Pose
	speed   float64
	yawRate float64

	// PosGain and HeadingGain are the per-fix blend factors (defaults
	// 0.35 and 0.1).
	PosGain     float64
	HeadingGain float64

	// fixHist is the ~1 s course baseline: heading corrections derived
	// from a single-period chord would be noise-dominated.
	fixHist []stampedFix
}

type stampedFix struct {
	t float64
	p geom.Vec2
}

// NewComplementary starts the filter at a pose and speed.
func NewComplementary(t0 float64, pose geom.Pose, speed float64) *Complementary {
	return &Complementary{t: t0, pose: pose, speed: speed, PosGain: 0.35, HeadingGain: 0.1}
}

// PredictIMU implements Localizer.
func (c *Complementary) PredictIMU(r sensors.IMUReading) {
	if !r.Valid || r.T <= c.t {
		return
	}
	dt := r.T - c.t
	c.t = r.T
	c.yawRate = r.YawRate
	thMid := c.pose.Heading + r.YawRate*dt/2
	c.pose.Pos = c.pose.Pos.Add(geom.V(math.Cos(thMid), math.Sin(thMid)).Scale(c.speed * dt))
	c.pose.Heading = geom.NormalizeAngle(c.pose.Heading + r.YawRate*dt)
}

// UpdateOdom implements Localizer.
func (c *Complementary) UpdateOdom(r sensors.OdomReading) {
	if r.Valid {
		c.speed = r.Speed
	}
}

// UpdateGNSS implements Localizer: blend toward the fix, and nudge the
// heading toward the course implied by consecutive fixes while moving.
func (c *Complementary) UpdateGNSS(fix sensors.GNSSFix) (float64, bool) {
	if !fix.Valid {
		return 0, false
	}
	c.pose.Pos = c.pose.Pos.Lerp(fix.Pos, c.PosGain)
	c.fixHist = append(c.fixHist, stampedFix{t: fix.T, p: fix.Pos})
	for len(c.fixHist) > 1 && fix.T-c.fixHist[0].t > 1.05 {
		c.fixHist = c.fixHist[1:]
	}
	// The chord course lags the instantaneous heading by ~ω·baseline/2, so
	// heading corrections only apply in near-straight motion; through
	// corners the gyro-integrated heading carries on its own.
	if oldest := c.fixHist[0]; fix.T-oldest.t > 0.5 && math.Abs(c.yawRate) < 0.08 {
		d := fix.Pos.Sub(oldest.p)
		dt := fix.T - oldest.t
		if d.Norm()/dt > 1 { // course defined only in motion
			course := d.Angle()
			c.pose.Heading = geom.NormalizeAngle(
				c.pose.Heading + geom.AngleDiff(course, c.pose.Heading)*c.HeadingGain)
		}
	}
	return 0, true
}

// Estimate implements Localizer. PosStdDev is unavailable (no covariance).
func (c *Complementary) Estimate() Estimate {
	return Estimate{T: c.t, Pose: c.pose, Speed: c.speed, YawRate: c.yawRate, PosStdDev: math.NaN()}
}

// LastNIS implements Localizer: no innovation model.
func (c *Complementary) LastNIS() (float64, bool) { return 0, true }

// RejectStreak implements Localizer: no gate.
func (c *Complementary) RejectStreak() int { return 0 }

var (
	_ Localizer = (*EKF)(nil)
	_ Localizer = (*Complementary)(nil)
)
