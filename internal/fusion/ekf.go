// Package fusion implements the localization stack the controllers consume:
// an extended Kalman filter over [x, y, heading, speed] fed by IMU
// (prediction) and GNSS/odometry (updates), with χ²-gated innovations, plus
// a dead-reckoning fallback. The innovation statistics it exposes feed the
// A10 InnovationGate assertion; the gating switch is the "guard" the
// debug-loop experiment toggles.
package fusion

import (
	"fmt"
	"math"

	"adassure/internal/geom"
	"adassure/internal/sensors"
)

// Estimate is the fused localization output consumed by the controllers.
type Estimate struct {
	T       float64
	Pose    geom.Pose
	Speed   float64
	YawRate float64
	// PosStdDev is the 1-σ position uncertainty (geometric mean of the two
	// axes), handy for monitoring.
	PosStdDev float64
}

// EKFConfig parameterises the filter.
type EKFConfig struct {
	// Process noise (continuous-time spectral densities, discretised by dt).
	PosProcNoise     float64 // m²/s  (default 0.05)
	HeadingProcNoise float64 // rad²/s (default 0.01)
	SpeedProcNoise   float64 // (m/s)²/s (default 0.5)

	// Measurement noise (1-σ).
	GNSSPosStdDev  float64 // m (default 0.2)
	OdomSpeedStdev float64 // m/s (default 0.05)

	// GateThreshold is the χ² gate on the normalised innovation squared.
	// GNSS position updates are 2-DOF: 9.21 ≈ 99th percentile. Zero
	// disables gating (the unguarded configuration in the experiments).
	GateThreshold float64
	// InitialPosStdDev seeds the covariance (default 1 m).
	InitialPosStdDev float64
}

func (c *EKFConfig) defaults() {
	if c.PosProcNoise <= 0 {
		c.PosProcNoise = 0.05
	}
	if c.HeadingProcNoise <= 0 {
		c.HeadingProcNoise = 0.01
	}
	if c.SpeedProcNoise <= 0 {
		c.SpeedProcNoise = 0.5
	}
	if c.GNSSPosStdDev <= 0 {
		c.GNSSPosStdDev = 0.2
	}
	if c.OdomSpeedStdev <= 0 {
		c.OdomSpeedStdev = 0.05
	}
	if c.InitialPosStdDev <= 0 {
		c.InitialPosStdDev = 1
	}
}

// DefaultGate is the 99th-percentile χ² threshold for the 2-DOF GNSS
// position innovation.
const DefaultGate = 9.21

// EKF is an extended Kalman filter over the state [x, y, θ, v].
// It is not safe for concurrent use.
type EKF struct {
	cfg EKFConfig

	x Mat // 4×1 state
	p Mat // 4×4 covariance
	t float64

	yawRate float64 // latest IMU yaw rate, for the estimate output

	lastNIS      float64 // latest GNSS normalised innovation squared
	lastAccepted bool
	rejectStreak int
	initialized  bool
}

// NewEKF builds a filter initialised at the given pose and speed.
func NewEKF(cfg EKFConfig, t0 float64, pose geom.Pose, speed float64) *EKF {
	cfg.defaults()
	f := &EKF{cfg: cfg, x: NewMat(4, 1), p: Eye(4), t: t0, initialized: true}
	f.x.Set(0, 0, pose.Pos.X)
	f.x.Set(1, 0, pose.Pos.Y)
	f.x.Set(2, 0, pose.Heading)
	f.x.Set(3, 0, speed)
	s2 := cfg.InitialPosStdDev * cfg.InitialPosStdDev
	f.p.Set(0, 0, s2)
	f.p.Set(1, 1, s2)
	f.p.Set(2, 2, 0.05)
	f.p.Set(3, 3, 0.25)
	f.lastAccepted = true
	return f
}

// Time returns the filter's current time.
func (f *EKF) Time() float64 { return f.t }

// PredictIMU propagates the state to reading time using the IMU's yaw rate
// and longitudinal acceleration. Out-of-order readings are ignored.
func (f *EKF) PredictIMU(r sensors.IMUReading) {
	if !r.Valid || r.T <= f.t {
		return
	}
	dt := r.T - f.t
	f.t = r.T
	f.yawRate = r.YawRate

	th := f.x.At(2, 0)
	v := f.x.At(3, 0)
	// Midpoint heading for the position propagation.
	thMid := th + r.YawRate*dt/2
	f.x.Set(0, 0, f.x.At(0, 0)+v*math.Cos(thMid)*dt)
	f.x.Set(1, 0, f.x.At(1, 0)+v*math.Sin(thMid)*dt)
	f.x.Set(2, 0, geom.NormalizeAngle(th+r.YawRate*dt))
	f.x.Set(3, 0, math.Max(0, v+r.Accel*dt))

	// Jacobian of the motion model wrt the state.
	F := Eye(4)
	F.Set(0, 2, -v*math.Sin(thMid)*dt)
	F.Set(0, 3, math.Cos(thMid)*dt)
	F.Set(1, 2, v*math.Cos(thMid)*dt)
	F.Set(1, 3, math.Sin(thMid)*dt)

	Q := NewMat(4, 4)
	Q.Set(0, 0, f.cfg.PosProcNoise*dt)
	Q.Set(1, 1, f.cfg.PosProcNoise*dt)
	Q.Set(2, 2, f.cfg.HeadingProcNoise*dt)
	Q.Set(3, 3, f.cfg.SpeedProcNoise*dt)

	f.p = F.Mul(f.p).Mul(F.T()).Add(Q).Symmetrize()
}

// UpdateGNSS fuses a position fix. It returns the normalised innovation
// squared (NIS) and whether the measurement was accepted. With gating
// enabled, measurements whose NIS exceeds the threshold are rejected and
// do not perturb the state — the fusion-level "guard".
func (f *EKF) UpdateGNSS(fix sensors.GNSSFix) (nis float64, accepted bool) {
	if !fix.Valid {
		return 0, false
	}
	// H selects [x, y].
	H := NewMat(2, 4)
	H.Set(0, 0, 1)
	H.Set(1, 1, 1)
	R := NewMat(2, 2)
	r2 := f.cfg.GNSSPosStdDev * f.cfg.GNSSPosStdDev
	R.Set(0, 0, r2)
	R.Set(1, 1, r2)

	// Innovation.
	y := NewMat(2, 1)
	y.Set(0, 0, fix.Pos.X-f.x.At(0, 0))
	y.Set(1, 0, fix.Pos.Y-f.x.At(1, 0))

	S := H.Mul(f.p).Mul(H.T()).Add(R)
	SInv := S.Inv()
	nisM := y.T().Mul(SInv).Mul(y)
	nis = nisM.At(0, 0)
	f.lastNIS = nis

	if f.cfg.GateThreshold > 0 && nis > f.cfg.GateThreshold {
		f.lastAccepted = false
		f.rejectStreak++
		return nis, false
	}
	f.lastAccepted = true
	f.rejectStreak = 0

	K := f.p.Mul(H.T()).Mul(SInv)
	dx := K.Mul(y)
	f.x = f.x.Add(dx)
	f.x.Set(2, 0, geom.NormalizeAngle(f.x.At(2, 0)))
	f.x.Set(3, 0, math.Max(0, f.x.At(3, 0)))
	f.p = Eye(4).Sub(K.Mul(H)).Mul(f.p).Symmetrize()
	return nis, true
}

// UpdateOdom fuses a wheel-speed measurement (1-DOF, ungated — wheel odometry
// is the trusted channel in this stack).
func (f *EKF) UpdateOdom(r sensors.OdomReading) {
	if !r.Valid {
		return
	}
	H := NewMat(1, 4)
	H.Set(0, 3, 1)
	R := NewMat(1, 1)
	R.Set(0, 0, f.cfg.OdomSpeedStdev*f.cfg.OdomSpeedStdev)
	y := NewMat(1, 1)
	y.Set(0, 0, r.Speed-f.x.At(3, 0))
	S := H.Mul(f.p).Mul(H.T()).Add(R)
	K := f.p.Mul(H.T()).Mul(S.Inv())
	f.x = f.x.Add(K.Mul(y))
	f.x.Set(3, 0, math.Max(0, f.x.At(3, 0)))
	f.p = Eye(4).Sub(K.Mul(H)).Mul(f.p).Symmetrize()
}

// Estimate returns the current fused estimate.
func (f *EKF) Estimate() Estimate {
	sx := math.Sqrt(math.Max(0, f.p.At(0, 0)))
	sy := math.Sqrt(math.Max(0, f.p.At(1, 1)))
	return Estimate{
		T:         f.t,
		Pose:      geom.Pose{Pos: geom.V(f.x.At(0, 0), f.x.At(1, 0)), Heading: f.x.At(2, 0)},
		Speed:     f.x.At(3, 0),
		YawRate:   f.yawRate,
		PosStdDev: math.Sqrt(sx * sy),
	}
}

// LastNIS returns the normalised innovation squared of the most recent GNSS
// update attempt, and whether it was accepted. Feeds assertion A10.
func (f *EKF) LastNIS() (nis float64, accepted bool) { return f.lastNIS, f.lastAccepted }

// RejectStreak returns how many consecutive GNSS updates the gate has
// rejected — the signal the guarded stack uses to fall back to dead
// reckoning and brake.
func (f *EKF) RejectStreak() int { return f.rejectStreak }

// Covariance returns a copy of the covariance matrix (for tests and
// diagnostics).
func (f *EKF) Covariance() Mat { return f.p.Clone() }

// String implements fmt.Stringer.
func (f *EKF) String() string {
	e := f.Estimate()
	return fmt.Sprintf("ekf{t=%.2f %s v=%.2f σ=%.2f}", e.T, e.Pose, e.Speed, e.PosStdDev)
}

// DeadReckoner integrates IMU heading and odometry speed from a reference
// pose — the fallback localizer when GNSS is rejected or absent.
type DeadReckoner struct {
	t       float64
	pose    geom.Pose
	speed   float64
	yawRate float64
	init    bool
}

// NewDeadReckoner starts dead reckoning from the given pose and speed.
func NewDeadReckoner(t0 float64, pose geom.Pose, speed float64) *DeadReckoner {
	return &DeadReckoner{t: t0, pose: pose, speed: speed, init: true}
}

// Reset re-anchors the reckoner (e.g. to the latest trusted EKF estimate).
func (d *DeadReckoner) Reset(t float64, pose geom.Pose, speed float64) {
	d.t, d.pose, d.speed, d.init = t, pose, speed, true
}

// StepIMU advances the pose using an IMU reading.
func (d *DeadReckoner) StepIMU(r sensors.IMUReading) {
	if !d.init || !r.Valid || r.T <= d.t {
		return
	}
	dt := r.T - d.t
	d.t = r.T
	d.yawRate = r.YawRate
	thMid := d.pose.Heading + r.YawRate*dt/2
	d.pose.Pos = d.pose.Pos.Add(geom.V(math.Cos(thMid), math.Sin(thMid)).Scale(d.speed * dt))
	d.pose.Heading = geom.NormalizeAngle(d.pose.Heading + r.YawRate*dt)
	d.speed = math.Max(0, d.speed+r.Accel*dt)
}

// ObserveOdom snaps the speed to a wheel-odometry reading.
func (d *DeadReckoner) ObserveOdom(r sensors.OdomReading) {
	if r.Valid {
		d.speed = r.Speed
	}
}

// Estimate returns the dead-reckoned estimate.
func (d *DeadReckoner) Estimate() Estimate {
	return Estimate{T: d.t, Pose: d.pose, Speed: d.speed, YawRate: d.yawRate, PosStdDev: math.Inf(1)}
}
